#!/usr/bin/env python3
"""Perf-regression gate over the committed benchmark snapshots.

Two modes:

* default: Bechamel microbenchmarks (``BENCH_bechamel.json``) — host-side
  ns/run estimates, noisy, gated loosely (default 25%).
* ``--macro``: the seeded macro-bench suite (``BENCH_macro.json``, written
  by ``dsm bench --out``) — *simulated* per-case wall clock, deterministic
  per tie seed, so the gate can be tight (CI uses 2%).  The per-case value
  is the mean ``time_us`` over the snapshot's seeds.

Either way the gate fails when a case slowed down by more than the
threshold; improvements past the threshold are reported too (refresh the
baseline to bank them).  Cases present on only one side are reported but
never fail, so the suite can grow — and ``--quick`` subsets can gate
against the full committed baseline — without lockstep edits.

Usage: bench_gate.py [--macro] BASELINE FRESH [--threshold PCT]

The threshold can also be set through the ``BENCH_GATE_PCT`` environment
variable (an explicit ``--threshold`` still wins), so CI can loosen or
tighten the gate without editing the workflow-pinned command line.
"""

import argparse
import json
import os
import sys

MACRO_SCHEMA = "dsm-bench-macro/1"


def load_estimates(path):
    with open(path) as f:
        snapshot = json.load(f)
    estimates = snapshot.get("estimates")
    if not isinstance(estimates, dict) or not estimates:
        sys.exit(f"bench_gate: {path}: no estimates object")
    return snapshot.get("unit", "?"), estimates, {}


def load_macro(path):
    with open(path) as f:
        snapshot = json.load(f)
    schema = snapshot.get("schema")
    if schema != MACRO_SCHEMA:
        sys.exit(f"bench_gate: {path}: schema {schema!r}, expected {MACRO_SCHEMA!r}")
    cases = {}
    tails = {}
    for case in snapshot.get("cases", []):
        samples = case.get("samples", [])
        if samples:
            cases[case["id"]] = sum(s["time_us"] for s in samples) / len(samples)
            # fault_p999_us comes from the telemetry sketch; absent in
            # snapshots written before it joined the schema (reads as 0).
            tails[case["id"]] = (
                sum(s.get("fault_p999_us", 0.0) for s in samples) / len(samples)
            )
    if not cases:
        sys.exit(f"bench_gate: {path}: no cases with samples")
    return "simulated us", cases, tails


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("baseline")
    ap.add_argument("fresh")
    ap.add_argument("--macro", action="store_true",
                    help="compare dsm-bench-macro snapshots (mean simulated "
                         "time_us per case) instead of Bechamel estimates")
    env_pct = os.environ.get("BENCH_GATE_PCT")
    try:
        default_pct = float(env_pct) if env_pct else 25.0
    except ValueError:
        sys.exit(f"bench_gate: BENCH_GATE_PCT={env_pct!r} is not a number")
    ap.add_argument("--threshold", type=float, default=default_pct,
                    help="max tolerated slowdown, percent "
                         "(default: $BENCH_GATE_PCT or 25)")
    args = ap.parse_args()

    load = load_macro if args.macro else load_estimates
    unit, base, base_tails = load(args.baseline)
    _, fresh, fresh_tails = load(args.fresh)

    failures = []
    improvements = []
    print(f"{'case':48s} {'baseline':>12s} {'fresh':>12s} {'delta':>8s}  ({unit})")
    for name in sorted(base):
        if name not in fresh:
            print(f"{name:48s} {base[name]:12.1f} {'gone':>12s}")
            continue
        delta = (fresh[name] - base[name]) / base[name] * 100.0
        flag = ""
        if delta > args.threshold:
            flag = "  << REGRESSION"
            failures.append((name, delta))
        elif delta < -args.threshold:
            flag = "  << improvement"
            improvements.append((name, delta))
        print(f"{name:48s} {base[name]:12.1f} {fresh[name]:12.1f} {delta:+7.1f}%{flag}")
    for name in sorted(set(fresh) - set(base)):
        print(f"{name:48s} {'new':>12s} {fresh[name]:12.1f}")

    # Advisory only: the extreme fault-latency tail (sketch-backed p99.9) is
    # informative but quantized by the sketch's relative-error bound, so a
    # tail move never fails the gate — it is printed for the human reading
    # the CI log.
    tail_moves = [
        (name, base_tails[name], fresh_tails[name])
        for name in sorted(set(base_tails) & set(fresh_tails))
        if base_tails[name] > 0.0
        and abs(fresh_tails[name] - base_tails[name]) / base_tails[name] * 100.0
        > args.threshold
    ]
    if tail_moves:
        print(f"\nbench_gate: advisory — fault_p999_us moved more than "
              f"{args.threshold:.0f}% (never fails the gate):")
        for name, b, f in tail_moves:
            print(f"  {name}: {b:.1f} -> {f:.1f} "
                  f"({(f - b) / b * 100.0:+.1f}%)")

    if improvements:
        print(f"\nbench_gate: {len(improvements)} case(s) improved more than "
              f"{args.threshold:.0f}% — consider refreshing the baseline:")
        for name, delta in improvements:
            print(f"  {name}: {delta:+.1f}%")
    if failures:
        print(f"\nbench_gate: {len(failures)} case(s) regressed more than "
              f"{args.threshold:.0f}%:", file=sys.stderr)
        for name, delta in failures:
            print(f"  {name}: {delta:+.1f}%", file=sys.stderr)
        sys.exit(1)
    print(f"\nbench_gate: OK ({len(base)} cases within {args.threshold:.0f}%)")


if __name__ == "__main__":
    main()

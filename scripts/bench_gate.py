#!/usr/bin/env python3
"""Perf-regression gate over the Bechamel microbenchmark snapshot.

Compares a fresh ``BENCH_bechamel.json`` against the committed baseline and
fails when any case slowed down by more than the threshold (default 25%).
Cases present on only one side are reported but never fail the gate, so the
suite can grow without lockstep baseline edits.

Usage: bench_gate.py BASELINE FRESH [--threshold PCT]

The threshold can also be set through the ``BENCH_GATE_PCT`` environment
variable (an explicit ``--threshold`` still wins), so CI can loosen or
tighten the gate without editing the workflow-pinned command line.
"""

import argparse
import json
import os
import sys


def load_estimates(path):
    with open(path) as f:
        snapshot = json.load(f)
    estimates = snapshot.get("estimates")
    if not isinstance(estimates, dict) or not estimates:
        sys.exit(f"bench_gate: {path}: no estimates object")
    return snapshot.get("unit", "?"), estimates


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("baseline")
    ap.add_argument("fresh")
    env_pct = os.environ.get("BENCH_GATE_PCT")
    try:
        default_pct = float(env_pct) if env_pct else 25.0
    except ValueError:
        sys.exit(f"bench_gate: BENCH_GATE_PCT={env_pct!r} is not a number")
    ap.add_argument("--threshold", type=float, default=default_pct,
                    help="max tolerated slowdown, percent "
                         "(default: $BENCH_GATE_PCT or 25)")
    args = ap.parse_args()

    unit, base = load_estimates(args.baseline)
    _, fresh = load_estimates(args.fresh)

    failures = []
    print(f"{'case':48s} {'baseline':>12s} {'fresh':>12s} {'delta':>8s}  ({unit})")
    for name in sorted(base):
        if name not in fresh:
            print(f"{name:48s} {base[name]:12.1f} {'gone':>12s}")
            continue
        delta = (fresh[name] - base[name]) / base[name] * 100.0
        flag = ""
        if delta > args.threshold:
            flag = "  << REGRESSION"
            failures.append((name, delta))
        print(f"{name:48s} {base[name]:12.1f} {fresh[name]:12.1f} {delta:+7.1f}%{flag}")
    for name in sorted(set(fresh) - set(base)):
        print(f"{name:48s} {'new':>12s} {fresh[name]:12.1f}")

    if failures:
        print(f"\nbench_gate: {len(failures)} case(s) regressed more than "
              f"{args.threshold:.0f}%:", file=sys.stderr)
        for name, delta in failures:
            print(f"  {name}: {delta:+.1f}%", file=sys.stderr)
        sys.exit(1)
    print(f"\nbench_gate: OK ({len(base)} cases within {args.threshold:.0f}%)")


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Perf-regression gate over the Bechamel microbenchmark snapshot.

Compares a fresh ``BENCH_bechamel.json`` against the committed baseline and
fails when any case slowed down by more than the threshold (default 25%).
Cases present on only one side are reported but never fail the gate, so the
suite can grow without lockstep baseline edits.

Usage: bench_gate.py BASELINE FRESH [--threshold PCT]
"""

import argparse
import json
import sys


def load_estimates(path):
    with open(path) as f:
        snapshot = json.load(f)
    estimates = snapshot.get("estimates")
    if not isinstance(estimates, dict) or not estimates:
        sys.exit(f"bench_gate: {path}: no estimates object")
    return snapshot.get("unit", "?"), estimates


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("baseline")
    ap.add_argument("fresh")
    ap.add_argument("--threshold", type=float, default=25.0,
                    help="max tolerated slowdown, percent (default 25)")
    args = ap.parse_args()

    unit, base = load_estimates(args.baseline)
    _, fresh = load_estimates(args.fresh)

    failures = []
    print(f"{'case':48s} {'baseline':>12s} {'fresh':>12s} {'delta':>8s}  ({unit})")
    for name in sorted(base):
        if name not in fresh:
            print(f"{name:48s} {base[name]:12.1f} {'gone':>12s}")
            continue
        delta = (fresh[name] - base[name]) / base[name] * 100.0
        flag = ""
        if delta > args.threshold:
            flag = "  << REGRESSION"
            failures.append((name, delta))
        print(f"{name:48s} {base[name]:12.1f} {fresh[name]:12.1f} {delta:+7.1f}%{flag}")
    for name in sorted(set(fresh) - set(base)):
        print(f"{name:48s} {'new':>12s} {fresh[name]:12.1f}")

    if failures:
        print(f"\nbench_gate: {len(failures)} case(s) regressed more than "
              f"{args.threshold:.0f}%:", file=sys.stderr)
        for name, delta in failures:
            print(f"  {name}: {delta:+.1f}%", file=sys.stderr)
        sys.exit(1)
    print(f"\nbench_gate: OK ({len(base)} cases within {args.threshold:.0f}%)")


if __name__ == "__main__":
    main()

(* The benchmark harness: one runner per table/figure of the paper, plus a
   Bechamel suite measuring the simulator itself.

     dune exec bench/main.exe            -- everything, in paper order
     dune exec bench/main.exe -- table3  -- a single experiment
     dune exec bench/main.exe -- bechamel
     dune exec bench/main.exe -- bechamel --filter diff/  -- a subset

   Experiments: micro table2 table3 table4 fig4 fig5 splash ablation.

   Each experiment also writes its results as BENCH_<name>.json in the
   current directory, so successive runs leave a machine-readable perf
   trajectory. *)

open Dsmpm2_sim
open Dsmpm2_experiments

let ppf = Format.std_formatter

let section title f =
  Format.fprintf ppf "@.=== %s ===@." title;
  (match f () with
  | None -> ()
  | Some json ->
      let file = "BENCH_" ^ title ^ ".json" in
      Json.to_file file json;
      Format.fprintf ppf "[wrote %s]@." file);
  Format.pp_print_flush ppf ()

let run_micro () =
  let t = Micro.run () in
  Micro.print ppf t;
  Some (Micro.to_json t)

let run_table2 () =
  let t = Table2_inventory.run () in
  Table2_inventory.print ppf t;
  Some (Table2_inventory.to_json t)

let run_fault_cost policy () =
  let t = Fault_cost.run policy in
  Fault_cost.print ppf t;
  Some (Fault_cost.to_json t)

let run_table3 = run_fault_cost Fault_cost.Page_transfer
let run_table4 = run_fault_cost Fault_cost.Thread_migration

let run_fig4 () =
  let t = Fig4_tsp.run () in
  Fig4_tsp.print ppf t;
  Some (Fig4_tsp.to_json t)

let run_fig5 () =
  let t = Fig5_coloring.run () in
  Fig5_coloring.print ppf t;
  Some (Fig5_coloring.to_json t)

let run_splash () =
  let t = Splash.run () in
  Splash.print ppf t;
  Some (Splash.to_json t)

let run_ablation () =
  let t = Ablation.run () in
  Ablation.print ppf t;
  Some (Ablation.to_json t)

let run_litmus () =
  let t = Litmus.run () in
  Litmus.print ppf t;
  Some (Litmus.to_json t)

let run_patterns () =
  let t = Sharing_patterns.run () in
  Sharing_patterns.print ppf t;
  Some (Sharing_patterns.to_json t)

(* Bechamel micro-benchmarks of the simulator itself: how fast the host can
   execute one simulated cold read fault and one simulated TSP solve.  These
   measure the reproduction platform, not the paper's system. *)
let bechamel_tests ?filter () =
  let open Bechamel in
  let open Dsmpm2_net in
  let open Dsmpm2_core in
  let open Dsmpm2_protocols in
  let fault_once policy () =
    let dsm = Dsm.create ~nodes:2 ~driver:Driver.bip_myrinet () in
    let ids = Builtin.register_all dsm in
    let protocol =
      match policy with
      | `Page -> ids.Builtin.li_hudak
      | `Migrate -> ids.Builtin.migrate_thread
    in
    let x = Dsm.malloc dsm ~protocol ~home:(Dsm.On_node 1) 8 in
    ignore (Dsm.spawn dsm ~node:0 (fun () -> ignore (Dsm.read_int dsm x)));
    Dsm.run dsm
  in
  let tsp_small () =
    ignore
      (Dsmpm2_apps.Tsp.run { Dsmpm2_apps.Tsp.default with Dsmpm2_apps.Tsp.cities = 10 })
  in
  (* Monitoring-disabled overhead: the same simulated workload with the
     monitor explicitly off must cost the same as never mentioning it —
     Trace.recordf and Monitor.emit call sites are supposed to be free. *)
  let fault_once_monitored enabled () =
    let dsm = Dsm.create ~nodes:2 ~driver:Driver.bip_myrinet () in
    let ids = Builtin.register_all dsm in
    Monitor.enable dsm enabled;
    let x = Dsm.malloc dsm ~protocol:ids.Builtin.li_hudak ~home:(Dsm.On_node 1) 8 in
    ignore (Dsm.spawn dsm ~node:0 (fun () -> ignore (Dsm.read_int dsm x)));
    Dsm.run dsm
  in
  (* Hot-path kernels: diff computation (word-scan vs the byte-at-a-time
     reference), the frame-store word-access fast path, and a raw network
     send.  These are the paths the release/fault machinery hammers, so
     their host-side cost bounds how large a simulated run can get. *)
  let open Dsmpm2_mem in
  let sparse_page () =
    let twin = Bytes.make 4096 '\000' in
    let current = Bytes.copy twin in
    (* 8 single-word writes scattered across the page: the sparse-write
       shape of a release in a fine-grain-sharing application. *)
    List.iter
      (fun off -> Bytes.set_int64_le current off 0x5aL)
      [ 0; 512; 1024; 1536; 2048; 2560; 3072; 4088 ];
    (twin, current)
  in
  let twin_sparse, current_sparse = sparse_page () in
  let diff_sparse () =
    ignore (Diff.compute ~page:0 ~twin:twin_sparse ~current:current_sparse)
  in
  let diff_sparse_bytewise () =
    ignore (Diff.compute_bytewise ~page:0 ~twin:twin_sparse ~current:current_sparse)
  in
  let geo = Page.geometry ~size:4096 in
  let fs = Frame_store.create ~geometry:geo in
  Frame_store.write_int fs ~addr:0 1;
  let frame_read_hot () =
    let acc = ref 0 in
    for _ = 1 to 64 do
      acc := !acc + Frame_store.read_int fs ~addr:0
    done;
    Sys.opaque_identity !acc |> ignore
  in
  let network_send () =
    let eng = Engine.create () in
    let net = Dsmpm2_net.Network.create eng ~driver:Dsmpm2_net.Driver.bip_myrinet ~nodes:2 in
    for _ = 1 to 64 do
      Dsmpm2_net.Network.send net ~src:0 ~dst:1 ~cost:Dsmpm2_net.Driver.Request ignore
    done;
    Engine.run eng
  in
  let named =
    [
      ("sim/read_fault_page_transfer", fault_once `Page);
      ("sim/read_fault_thread_migration", fault_once `Migrate);
      ("sim/read_fault_monitor_disabled", fault_once_monitored false);
      ("sim/read_fault_monitor_enabled", fault_once_monitored true);
      ("sim/tsp_10_cities_li_hudak", tsp_small);
      ("diff/compute_4k_sparse", diff_sparse);
      ("diff/compute_4k_sparse_bytewise", diff_sparse_bytewise);
      ("frame/read_int_hot_x64", frame_read_hot);
      ("net/send_request_x64", network_send);
    ]
  in
  let contains ~sub s =
    let n = String.length sub and m = String.length s in
    let rec at i = i + n <= m && (String.sub s i n = sub || at (i + 1)) in
    n = 0 || at 0
  in
  let selected =
    match filter with
    | None -> named
    | Some sub -> List.filter (fun (name, _) -> contains ~sub name) named
  in
  if selected = [] then begin
    Format.fprintf ppf "bechamel: no test matches the filter; known:@.";
    List.iter (fun (name, _) -> Format.fprintf ppf "  %s@." name) named;
    exit 1
  end;
  Test.make_grouped ~name:"dsmpm2"
    (List.map (fun (name, f) -> Test.make ~name (Staged.stage f)) selected)

let run_bechamel ?filter () =
  let open Bechamel in
  let open Toolkit in
  let instances = Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 1.0) ~kde:(Some 100) () in
  let raw = Benchmark.all cfg instances (bechamel_tests ?filter ()) in
  let results =
    List.map (fun instance -> Analyze.all (Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]) instance raw) instances
  in
  let results = Analyze.merge (Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]) instances results in
  let estimates = ref [] in
  Hashtbl.iter
    (fun measure by_test ->
      Hashtbl.iter
        (fun test result ->
          match Bechamel.Analyze.OLS.estimates result with
          | Some [ est ] ->
              Format.fprintf ppf "%-40s %12.1f ns/run (%s)@." test est measure;
              estimates := (test, est) :: !estimates
          | _ -> Format.fprintf ppf "%-40s (no estimate)@." test)
        by_test)
    results;
  let estimates = List.sort (fun (a, _) (b, _) -> compare a b) !estimates in
  (* The word-scan diff kernel exists to beat the byte-scan reference on the
     sparse-write page; surface the ratio so regressions are visible in the
     committed artifact. *)
  (match
     ( List.assoc_opt "dsmpm2/diff/compute_4k_sparse" estimates,
       List.assoc_opt "dsmpm2/diff/compute_4k_sparse_bytewise" estimates )
   with
  | Some fast, Some slow when fast > 0. ->
      Format.fprintf ppf "diff word-scan speedup over bytewise: %.1fx@." (slow /. fast)
  | _ -> ());
  Some
    (Json.Obj
       [
         ("unit", Json.String "ns/run");
         ( "estimates",
           Json.Obj (List.map (fun (test, est) -> (test, Json.Float est)) estimates)
         );
       ])

let all =
  [
    ("micro", run_micro);
    ("table2", run_table2);
    ("table3", run_table3);
    ("table4", run_table4);
    ("fig4", run_fig4);
    ("fig5", run_fig5);
    ("splash", run_splash);
    ("ablation", run_ablation);
    ("litmus", run_litmus);
    ("patterns", run_patterns);
  ]

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  (* `--filter SUBSTR` restricts the bechamel suite to matching test names
     (CI uses this to smoke the hot-path kernels without the full quota). *)
  let rec split_filter acc = function
    | [] -> (List.rev acc, None)
    | "--filter" :: sub :: rest -> (List.rev_append acc rest, Some sub)
    | "--filter" :: [] ->
        Format.fprintf ppf "--filter needs an argument@.";
        exit 1
    | a :: rest -> split_filter (a :: acc) rest
  in
  let names, filter = split_filter [] args in
  if filter <> None && not (List.mem "bechamel" names) then begin
    Format.fprintf ppf "--filter only applies to the bechamel suite@.";
    exit 1
  end;
  match names with
  | [] ->
      Format.fprintf ppf
        "DSM-PM2 reproduction bench: regenerating every table and figure@.";
      List.iter (fun (name, f) -> section name f) all
  | names ->
      List.iter
        (fun name ->
          match List.assoc_opt name all with
          | Some f -> section name f
          | None when name = "bechamel" ->
              section "bechamel" (run_bechamel ?filter)
          | None ->
              Format.fprintf ppf "unknown experiment %S; known: %s bechamel@." name
                (String.concat " " (List.map fst all));
              exit 1)
        names

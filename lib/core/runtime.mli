(** The DSM-PM2 runtime state: everything the generic core and the protocols
    share.

    One [Runtime.t] models one application run on one cluster: a PM2 runtime
    (threads + network + RPC), a page table and frame store per node, the
    protocol registry, the synchronization-object directories and the cost
    model.  The user-facing API lives in {!Dsm}; protocol implementations use
    this module together with {!Protocol_lib} and {!Dsm_comm}. *)

open Dsmpm2_sim
open Dsmpm2_pm2
open Dsmpm2_mem

type costs = {
  page_fault_us : float;
      (** catching and decoding the access fault (paper: 11 us) *)
  protocol_server_us : float;
      (** owner/home-side request processing (half of the paper's 26 us) *)
  protocol_client_us : float;
      (** requester-side page installation (other half of the 26 us) *)
  migration_protocol_us : float;
      (** protocol overhead of a migration-based fault (paper: < 1 us) *)
  inline_check_us : float;
      (** one [java_ic] locality check (a few cycles on a 450 MHz PII) *)
}

val default_costs : costs

type lock_state = {
  lock_id : int;
  lock_manager : int;  (** managing node *)
  mutable lock_protocol : int;
  (* manager-side state: *)
  mutable lock_held : bool;
  mutable lock_holder : int;  (** tid of the current holder, -1 if free *)
  lock_queue : Marcel.Cond.t;
  lock_mutex : Marcel.Mutex.t;
  mutable lock_acquisitions : int;
  mutable lock_ext : Page_table.ext;
      (** protocol-specific lock state (e.g. entry-consistency bindings) *)
}

type barrier_state = {
  barrier_id : int;
  barrier_manager : int;
  barrier_parties : int;
  mutable barrier_protocol : int;
  (* manager-side state: *)
  mutable barrier_arrived : int;
  mutable barrier_generation : int;
  barrier_cond : Marcel.Cond.t;
  barrier_mutex : Marcel.Mutex.t;
}

type services = {
  srv_request : Rpc.service;
  srv_send_page : Rpc.service;
  srv_invalidate : Rpc.service;
  srv_diffs : Rpc.service;
  srv_lock_acquire : Rpc.service;
  srv_lock_release : Rpc.service;
  srv_barrier : Rpc.service;
}

type attachment = ..
(** Open slot for layers above the runtime to park per-DSM state without a
    dependency from [Runtime] on them.  [Telemetry] extends this with its
    engine and recovers it by pattern match ([Telemetry.find]). *)

type t = {
  pm2 : Pm2.t;
  geo : Page.geometry;
  tables : Page_table.t array;
  stores : Frame_store.t array;
  registry : t Protocol.registry;
  mutable default_protocol : int;
  costs : costs;
  instr : Stats.t;
  metrics : Metrics.t;
      (** labeled (per-node, per-protocol) counters and latency histograms *)
  instr_h : Instrument.handles;
      (** pre-resolved hot-path counters/spans, interned at {!create} *)
  mutable services : services option;  (** set once by {!Dsm_comm.init} *)
  locks : (int, lock_state) Hashtbl.t;
  mutable next_lock : int;
  barriers : (int, barrier_state) Hashtbl.t;
  mutable next_barrier : int;
  mutable fault_loop_limit : int;
      (** safety bound on fault-retry iterations per access *)
  diff_handlers : (int, diff_handler) Hashtbl.t;
      (** per-protocol diff processing, see {!Dsm_comm.set_diff_handler} *)
  diffs_batch_handlers : (int, diffs_handler) Hashtbl.t;
      (** per-protocol whole-batch diff processing, preferred over
          [diff_handlers] when present; see {!Dsm_comm.set_diffs_handler} *)
  mutable history : History.t option;
      (** when set, the access and sync paths record every shared operation
          for the conformance checker (see [Dsm.enable_history]) *)
  mutable watch : watch_hooks option;
      (** when set, the sync client paths report blocking/waking threads to
          the live watchdog (see [Watchdog.attach]) *)
  mutable telemetry : attachment option;
      (** the online telemetry engine, when one is attached (see
          [Telemetry.attach]); the runtime itself never reads it *)
}

and diff_handler = t -> node:int -> diff:Diff.t -> sender:int -> release:bool -> unit

and diffs_handler =
  t -> node:int -> diffs:Diff.t list -> sender:int -> release:bool -> unit
(** Handles one arriving [Diffs] message's whole batch for a protocol: the
    batch form lets a home apply every diff and then issue {e one} batched
    invalidation per copyset node instead of one per page. *)

and watch_hooks = {
  wh_wait : node:int -> tid:int -> target:int -> unit;
      (** a client thread is about to block: [target] is a lock id
          ([>= 0]) or an encoded barrier id ([< 0], decode with
          [Dsm_sync.hook_target]) *)
  wh_wake : node:int -> tid:int -> target:int -> unit;
      (** the same thread resumed (lock granted / barrier released) *)
  wh_rearm : unit -> unit;
      (** called at the start of every [Dsm.run] so a watchdog whose timer
          stopped when a previous run drained can re-arm itself *)
}
(** Live-watchdog callbacks.  All arguments are immediate ints: a notify
    call allocates nothing, watcher attached or not. *)

val create : ?costs:costs -> Pm2.t -> t
val nodes : t -> int
val marcel : t -> Marcel.t
val engine : t -> Engine.t
val rpc : t -> Rpc.t
val self_node : t -> int
val table : t -> int -> Page_table.t
val store : t -> int -> Frame_store.t
val proto : t -> int -> t Protocol.t
val services : t -> services
(** @raise Failure if {!Dsm_comm.init} has not run. *)

val entry : t -> node:int -> page:int -> Page_table.entry
(** Shorthand for [Page_table.find (table t node) page]. *)

val lock_state : t -> int -> lock_state
val barrier_state : t -> int -> barrier_state

val notify_wait : t -> node:int -> tid:int -> target:int -> unit
val notify_wake : t -> node:int -> tid:int -> target:int -> unit
val notify_rearm : t -> unit
(** Watch-hook dispatch; no-ops (and allocation-free) when [watch] is
    unset. *)

val record_history : t -> start:Time.t -> History.kind -> unit
(** Appends to the conformance history (no-op when recording is off).  Must
    be called from the thread that performed the operation; [start] is when
    the operation began, the finish time is now. *)

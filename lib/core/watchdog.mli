(** Live observability: a periodic in-run health monitor.

    Everything else in the monitoring stack ({!Monitor}, the analyzer, the
    conformance checker) speaks only after the run ends — useless for a hung
    run.  The watchdog samples the runtime {e while the workload executes},
    on an engine-driven timer built from {!Dsmpm2_sim.Engine.periodic}
    observer events, so attaching it never perturbs a seeded schedule.  Each
    sample:

    - audits page-table coherence invariants across nodes (exactly one
      self-owner per page, writable frames only at the owner, copyset
      members really hold readable frames — protocol-aware via
      {!Protocol.strict_coherence}, and skipping pages with a fault in
      flight so legal transients never alarm);
    - maintains a lock/barrier wait-for graph from the {!Dsm_sync} client
      hooks and reports cycles (deadlock) and threads blocked beyond a
      simulated-time threshold (stalls);
    - drains the online telemetry engine ({!Telemetry}, attached on demand)
      for page-thrash findings, hot-page accounting and protocol advice —
      telemetry observes every trace emission at the source, so these stay
      exact under trace sampling and flight-recorder eviction;
    - snapshots interval rates (faults/s, messages/s, bytes/s per node,
      faults per protocol) into a bounded ring of time-series points.

    Findings become {!alert}s, forwarded to the trace as typed
    [Trace.Alert] events (so they flow through JSONL/Chrome exports and
    [dsm analyze]) and collected here for the [dsm watch] dashboard and the
    JSON health report. *)

open Dsmpm2_sim

type severity = Info | Warning | Critical

val severity_to_string : severity -> string

type alert = {
  al_at_us : float;
  al_severity : severity;
  al_kind : string;
      (** dotted taxonomy: "invariant.owner" / "invariant.copyset" /
          "invariant.home" / "invariant.protocol" (critical),
          "deadlock.cycle" / "deadlock.stall" (critical),
          "stall.lock" / "stall.barrier" / "thrash.page" (warning),
          "advice.page" (info, a page's observed sharing pattern suggests a
          different protocol — detail names the page, the pattern and the
          recommended [~protocol] attribute); with a
          fault plan installed ({!Dsm.inject_faults}) also "node.dead"
          (warning, a node entered a crash window), "node.restart" (info),
          "node.partitioned" (info, the plan started dropping traffic) and
          "rpc.retry_storm" (warning, retransmissions over
          {!config.retry_storm} in one interval) *)
  al_node : int;  (** node concerned, [-1] for run-wide findings *)
  al_detail : string;
}

type node_rates = {
  nr_node : int;
  nr_faults_s : float;  (** faults per simulated second over the interval *)
  nr_msgs_s : float;
  nr_bytes_s : float;
}

type sample = {
  sp_at_us : float;
  sp_events : int;  (** engine events executed so far *)
  sp_live_fibers : int;
  sp_rates : node_rates array;
  sp_proto_faults : (string * int) list;
      (** interval fault counts per protocol, sorted by name *)
  sp_hot_pages : (int * int) list;
      (** (page, transfers) this interval, hottest first, top 5 *)
  sp_alerts : int;  (** alerts raised during this interval *)
}

type config = {
  interval : Time.t;  (** sampling period (simulated time) *)
  stall : Time.t;  (** blocked longer than this => stall warning *)
  thrash_window : int;  (** transfers per page kept in the sliding window *)
  thrash_span : Time.t;
      (** a full window spanning less than this => thrash warning *)
  ring_capacity : int;  (** time-series points retained *)
  audits : bool;  (** run the page-table invariant audits *)
  retry_storm : int;
      (** RPC retransmissions within one interval above which a
          "rpc.retry_storm" warning fires (fault plans only) *)
}

val default_config : config
(** 200 us interval, 20 ms stall threshold, 8-transfer window over 300 us,
    64-point ring, audits on, retry-storm threshold 8. *)

type t

val attach : ?config:config -> Runtime.t -> t
(** Installs the watchdog on a runtime: registers the {!Runtime.watch_hooks}
    and arms the periodic sampler.  Call before [Dsm.run]; the timer stops
    itself when a run drains (or deadlocks) and re-arms on the next
    [Dsm.run].  At most one watchdog per runtime
    (raises [Invalid_argument] on a second attach).  Reuses an already
    attached {!Telemetry} engine, otherwise attaches one carrying this
    config's thrash parameters. *)

val telemetry : t -> Telemetry.t
(** The telemetry engine the watchdog drains each tick. *)

val set_on_sample : t -> (sample -> unit) -> unit
(** Called after every sample — the live dashboard hook. *)

val alerts : t -> alert list
(** Chronological. *)

val alert_counts : t -> int * int * int
(** [(info, warning, critical)]. *)

val samples : t -> sample list
(** The retained time series, chronological (at most
    [config.ring_capacity] points). *)

val samples_taken : t -> int
val pages_audited : t -> int
(** Pages that passed through the invariant audit (transient pages with a
    fault in flight are skipped and not counted). *)

val forward_alert : Runtime.t -> alert -> unit
(** Emits an alert into the runtime's trace as a [Trace.Alert] event.  A
    no-op that allocates nothing when monitoring is disabled — the property
    pinned by the allocation smoke test. *)

val alert_to_json : alert -> Json.t
val sample_to_json : sample -> Json.t

val health_json : t -> Json.t
(** The stable health report: run metadata ({!Monitor.run_meta}, under
    ["meta"]), simulated time, sample/audit counts,
    [healthy] (no critical alerts), per-severity alert counts, the full
    alert list and the retained time series. *)

val pp_sample : Format.formatter -> t * sample -> unit
(** One dashboard frame: header line, per-node rate table, interval fault
    mix and hottest pages. *)

val pp_summary : Format.formatter -> t -> unit
(** End-of-run alert summary. *)

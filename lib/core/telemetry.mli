(** Online telemetry engine: streaming sharing classifiers and latency
    sketches over the live event stream.

    The post-mortem analyzer ({!Dsmpm2_experiments.Analyze}) answers "what
    did this run do" after the fact by replaying the whole stored trace.
    This module answers the same questions {e while the run executes}, in
    O(1) incremental work per event and without requiring the trace to be
    stored at all: it subscribes to the trace's observer slot
    ({!Dsmpm2_sim.Trace.set_observer}), which sees every emission before
    the sampler drops it and before the flight recorder evicts it.  A run
    with an aggressive sampling rate and a tiny ring therefore still gets
    exact per-page classifications and full-population latency sketches —
    the basis of [dsm top].

    The observer callback does pure bookkeeping: no engine events, no
    shared RNG draws, no allocation visible to the schedule.  Attaching
    telemetry never changes a seeded run's schedule fingerprint.

    The classification logic itself lives in {!Pages}, a pure streaming
    accumulator shared with the post-mortem analyzer — both views are the
    same code, so on an unsampled run the final online classification is
    identical to the post-mortem one by construction. *)

open Dsmpm2_sim

(** {2 Sharing patterns}

    The canonical definition; [Analyze.pattern] re-exports this type. *)

type pattern =
  | Private  (** one accessing node *)
  | Read_mostly  (** replicated, never written remotely *)
  | Single_writer  (** one writer, occasional remote readers *)
  | Producer_consumer  (** one writer, readers repeatedly re-fetch *)
  | Migratory  (** write access hands off between nodes serially *)
  | False_sharing  (** concurrent diffs from distinct nodes on one page *)
  | Mixed  (** multiple writers without a clean handoff pattern *)

val pattern_to_string : pattern -> string

val recommended_protocol : pattern -> string option
(** The advisor's mapping (see [Analyze.recommended_protocol]): migratory →
    [migrate_thread], false sharing → [hbrc_mw], read-mostly and
    producer-consumer → [write_update], single writer → [erc_sw]; [None]
    for private/mixed. *)

type profile = {
  pr_page : int;
  pr_protocol : string;
  pr_pattern : pattern;
  pr_read_faults : int;
  pr_write_faults : int;
  pr_readers : int list;  (** nodes that read-faulted, sorted *)
  pr_writers : int list;  (** nodes that write-faulted or sent diffs, sorted *)
  pr_diff_senders : int list;  (** distinct nodes whose diffs touched the page *)
  pr_transfers : int;  (** whole-page sends *)
  pr_bytes : int;  (** page-send bytes plus attributed diff bytes *)
  pr_invalidations : int;
}

(** {2 The streaming classifier}

    A pure per-page accumulator: feed it trace events in any order
    consistent with the stream and ask for classifications at any point.
    O(1) amortized per event (handoffs are counted against the last writer
    instead of replaying a write sequence; reader/writer sets are hash
    sets).  No engine, no clock, no randomness. *)
module Pages : sig
  type t

  val create : unit -> t

  val feed : t -> Trace.event -> unit
  (** Folds one event in.  Only [Fault], [Page_send], [Page_install],
      [Invalidate] and [Diff] events carry classification evidence; every
      other constructor is ignored. *)

  val classify : t -> int -> pattern option
  (** The page's current pattern, [None] when the page was never seen. *)

  val profile : t -> int -> profile option

  val profiles : t -> profile list
  (** Every tracked page, ranked by total faults then bytes moved
      descending (ties by page ascending) — the heatmap order. *)

  val pages : t -> int list
  (** Tracked page ids, sorted. *)
end

(** {2 The attached engine} *)

type config = {
  thrash_window : int;  (** installs per page examined for ping-pong *)
  thrash_span : Time.t;  (** window duration qualifying as thrashing *)
  advice_min_faults : int;
      (** fault evidence required before advising a protocol change *)
  open_horizon : Time.t;
      (** fault spans still unresolved after this long are abandoned
          (crashed or starved operations must not leak accounting) *)
}

val default_config : config
(** Thrash parameters match [Watchdog.default_config] (8 installs within
    300 us); [advice_min_faults = 4]; [open_horizon = 50 ms]. *)

type thrash_report = {
  th_page : int;
  th_count : int;  (** installs inside the qualifying window *)
  th_nodes : int list;  (** distinct installing nodes, sorted *)
  th_span : Time.t;  (** observed window duration *)
}

type advice = {
  av_page : int;
  av_pattern : pattern;
  av_current : string;  (** protocol the page runs *)
  av_recommended : string;
}

type interval = {
  iv_installs : (int * int) list;
      (** page → installs this interval, most active first *)
  iv_reclassified : int;  (** pages whose pattern changed this interval *)
  iv_thrash : thrash_report list;  (** chronological *)
  iv_advice : advice list;  (** newly issued, by page *)
}
(** What {!end_interval} drains: the watchdog turns these into alerts and
    its per-tick hot-page sample. *)

type t

val attach : ?config:config -> Runtime.t -> t
(** Attaches the telemetry engine: extends the runtime's attachment slot
    and subscribes to the trace observer.  Events are only observed while
    monitoring is enabled ([Monitor.enable]).  Raises [Invalid_argument]
    if telemetry is already attached or the trace observer slot is taken. *)

val find : Runtime.t -> t option
(** The engine attached to this runtime, if any. *)

val detach : t -> unit
(** Releases the observer slot and the runtime attachment. *)

val config : t -> config
val events_seen : t -> int
(** Events observed (the full emission stream, not just stored events). *)

val pages : t -> Pages.t
(** The live classifier (shared state — read, don't feed). *)

val classification : t -> (int * pattern) list
(** Every tracked page's current pattern, sorted by page — what the
    agreement test compares against [Analyze]. *)

val node_faults : t -> int array
(** Faults observed per node, indexed by node id. *)

val protocols : t -> (string * int * Sketch.t) list
(** Per-protocol [(name, faults, latency sketch)] sorted by name.  The
    sketch holds completed fault latencies in microseconds (fault event to
    the span's page install or migration). *)

val fault_sketch : t -> Sketch.t
(** A fresh merge of every protocol's latency sketch — the cluster-wide
    fault-latency distribution. *)

val fault_percentile : t -> float -> float
(** [fault_percentile t p] in microseconds from {!fault_sketch}
    ([p] in [0..100]); 0 when no fault completed yet. *)

val reclassifications : t -> int
(** Total classification churn: pattern changes after a page's first
    classification. *)

val intervals : t -> int
(** {!end_interval} calls so far. *)

val end_interval : t -> interval
(** Drains and resets the per-interval state (installs, touched pages,
    thrash findings, fresh advice); also expires fault spans older than
    [open_horizon].  Called by the watchdog once per tick. *)

val to_json : ?meta:Run_meta.t -> t -> Json.t
(** Stable snapshot ([dsm top --out]): meta, totals, per-protocol sketch
    percentiles, the page heatmap with classifications, classification
    churn, trace accounting (recorded/stored/evicted/capacity/sampled_out)
    and issued advice. *)

val pp_top : ?top:int -> Format.formatter -> t -> unit
(** The [dsm top] frame: cluster rollup (fault count and sketch
    percentiles), per-protocol lines, per-node fault counts, the [top]
    (default 10) hottest pages with patterns and recommendations, and
    trace-pressure accounting. *)

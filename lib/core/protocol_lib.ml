open Dsmpm2_sim
open Dsmpm2_pm2
open Dsmpm2_mem

let charge_span rt key us =
  Marcel.compute (Runtime.marcel rt) us;
  Stats.add_span rt.Runtime.instr key (Time.of_us us)

let server_overhead rt =
  charge_span rt Instrument.stage_overhead_server rt.Runtime.costs.protocol_server_us

let client_overhead rt =
  charge_span rt Instrument.stage_overhead_client rt.Runtime.costs.protocol_client_us

let migration_overhead rt =
  charge_span rt Instrument.stage_overhead_client rt.Runtime.costs.migration_protocol_us

let with_entry rt (e : Page_table.entry) f =
  let marcel = Runtime.marcel rt in
  Marcel.Mutex.lock marcel e.entry_mutex;
  Fun.protect ~finally:(fun () -> Marcel.Mutex.unlock marcel e.entry_mutex) f

let wait_while_faulting rt (e : Page_table.entry) =
  let marcel = Runtime.marcel rt in
  while e.faulting do
    Marcel.Cond.wait marcel e.fault_done e.entry_mutex
  done

let complete_fault rt (e : Page_table.entry) =
  (* Pin the page until the faulting thread has retried its access, so a
     queued remote request cannot snatch the page first (the retry happens
     inside the fault handler in a SIGSEGV-based implementation). *)
  if e.faulting then e.pinned <- true;
  e.faulting <- false;
  Marcel.Cond.broadcast (Runtime.marcel rt) e.fault_done

let wait_for_service rt (e : Page_table.entry) =
  let marcel = Runtime.marcel rt in
  while e.faulting || e.pinned do
    Marcel.Cond.wait marcel e.fault_done e.entry_mutex
  done

let unpin rt (e : Page_table.entry) =
  if e.pinned then begin
    e.pinned <- false;
    Marcel.Cond.broadcast (Runtime.marcel rt) e.fault_done
  end

let fetch_page rt ~node ~page ~mode ~from =
  let e = Runtime.entry rt ~node ~page in
  with_entry rt e (fun () ->
      if e.faulting then
        (* Coalesce with the in-flight fault; the caller re-checks rights. *)
        wait_while_faulting rt e
      else begin
        e.faulting <- true;
        Dsm_comm.send_request rt ~to_:from ~page ~mode ~requester:node;
        wait_while_faulting rt e
      end)

let install_page rt ~node (msg : Protocol.page_message) =
  (* The message's [data] was copied out of the sender's frame at send time
     and is read nowhere else, so the receiver adopts it instead of copying
     again: one copy per transfer, not two. *)
  Frame_store.install_owned (Runtime.store rt node) msg.Protocol.page
    msg.Protocol.data;
  let e = Runtime.entry rt ~node ~page:msg.Protocol.page in
  e.rights <- msg.Protocol.grant

let invalidate_copies_many rt ~pages_by_target =
  let node = Runtime.self_node rt in
  let marcel = Runtime.marcel rt in
  let merged = Hashtbl.create 8 in
  List.iter
    (fun (target, pages) ->
      if target <> node then
        Hashtbl.replace merged target
          (List.rev_append pages
             (Option.value ~default:[] (Hashtbl.find_opt merged target))))
    pages_by_target;
  let batches =
    Hashtbl.fold
      (fun target pages acc ->
        match List.sort_uniq compare pages with
        | [] -> acc
        | pages -> (target, pages) :: acc)
      merged []
    |> List.sort (fun (a, _) (b, _) -> compare a b)
  in
  (* Helper threads have their own tids, so the caller's span would be lost;
     capture it here and thread it through explicitly. *)
  let span = Monitor.current_span rt in
  match batches with
  | [] -> ()
  | [ (target, pages) ] -> Dsm_comm.call_invalidate_batch rt ~span ~to_:target ~pages ()
  | batches ->
      let helpers =
        List.map
          (fun (target, pages) ->
            Marcel.spawn marcel ~node (fun () ->
                Dsm_comm.call_invalidate_batch rt ~span ~to_:target ~pages ()))
          batches
      in
      List.iter (fun th -> Marcel.join marcel th) helpers

let invalidate_copies rt ~page ~targets =
  invalidate_copies_many rt
    ~pages_by_target:
      (List.map (fun target -> (target, [ page ])) (List.sort_uniq compare targets))

let send_diffs_grouped rt ~release diffs_with_home =
  let node = Runtime.self_node rt in
  let marcel = Runtime.marcel rt in
  let by_home = Hashtbl.create 4 in
  List.iter
    (fun (home, d) ->
      Hashtbl.replace by_home home
        (d :: Option.value ~default:[] (Hashtbl.find_opt by_home home)))
    diffs_with_home;
  let batches =
    Hashtbl.fold (fun home diffs acc -> (home, List.rev diffs) :: acc) by_home []
    |> List.sort (fun (a, _) (b, _) -> compare a b)
  in
  match batches with
  | [] -> ()
  | [ (home, diffs) ] -> Dsm_comm.call_diffs rt ~to_:home ~diffs ~release
  | batches ->
      let helpers =
        List.map
          (fun (home, diffs) ->
            Marcel.spawn marcel ~node (fun () ->
                Dsm_comm.call_diffs rt ~to_:home ~diffs ~release))
          batches
      in
      List.iter (fun th -> Marcel.join marcel th) helpers

let push_diffs rt ~targets ~diffs ~release =
  let node = Runtime.self_node rt in
  let marcel = Runtime.marcel rt in
  let targets = List.sort_uniq compare (List.filter (fun n -> n <> node) targets) in
  match targets with
  | [] -> ()
  | [ target ] -> Dsm_comm.call_diffs rt ~to_:target ~diffs ~release
  | targets ->
      let helpers =
        List.map
          (fun target ->
            Marcel.spawn marcel ~node (fun () ->
                Dsm_comm.call_diffs rt ~to_:target ~diffs ~release))
          targets
      in
      List.iter (fun th -> Marcel.join marcel th) helpers

let drop_copy rt ~node ~page =
  let e = Runtime.entry rt ~node ~page in
  e.rights <- Access.No_access;
  e.twin <- None;
  Frame_store.drop (Runtime.store rt node) page

let make_twin rt ~node (e : Page_table.entry) =
  e.twin <- Some (Diff.make_twin (Frame_store.frame (Runtime.store rt node) e.page))

let diff_against_twin rt ~node (e : Page_table.entry) =
  match e.twin with
  | None -> None
  | Some twin ->
      let current = Frame_store.frame (Runtime.store rt node) e.page in
      let diff = Diff.compute ~page:e.page ~twin ~current in
      if Diff.is_empty diff then None else Some diff

let group_by_home rt ~node pages =
  let tbl = Hashtbl.create 8 in
  List.iter
    (fun page ->
      let e = Runtime.entry rt ~node ~page in
      let existing = Option.value ~default:[] (Hashtbl.find_opt tbl e.home) in
      Hashtbl.replace tbl e.home (page :: existing))
    pages;
  Hashtbl.fold (fun home pages acc -> (home, List.rev pages) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

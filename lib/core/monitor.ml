open Dsmpm2_sim
open Dsmpm2_net
open Dsmpm2_pm2

let trace rt = Pm2.trace rt.Runtime.pm2
let enable rt on = Trace.enable (trace rt) on
let enabled rt = Trace.enabled (trace rt)
let metrics rt = rt.Runtime.metrics
let events rt = Trace.events (trace rt)

let record rt ~category fmt =
  Trace.recordf (trace rt) (Runtime.engine rt) ~category fmt

(* --- spans ---

   The span of the operation a Marcel thread is currently working on; set
   by the fault path and by the RPC handlers from the span carried in the
   incoming message, so one remote access keeps one id across nodes. *)

let self_tid rt = Marcel.tid (Marcel.self (Runtime.marcel rt))
let new_span rt = Trace.new_span (trace rt)
let current_span rt = Trace.thread_span (trace rt) ~tid:(self_tid rt)

let with_thread_span rt span f =
  let tr = trace rt in
  if not (Trace.enabled tr) then f ()
  else begin
    let tid = self_tid rt in
    let previous = Trace.thread_span tr ~tid in
    Trace.set_thread_span tr ~tid span;
    Fun.protect ~finally:(fun () -> Trace.set_thread_span tr ~tid previous) f
  end

let emit rt ?span event =
  let tr = trace rt in
  if Trace.enabled tr then
    let span = match span with Some s -> s | None -> current_span rt in
    Trace.emit tr (Runtime.engine rt) ~span event

type summary_line = {
  category : string;
  events : int;
  first_us : float;
  last_us : float;
}

let summary rt =
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun e ->
      let cat = e.Trace.category in
      let first, last, n =
        match Hashtbl.find_opt tbl cat with
        | Some (f, l, n) -> (min f e.Trace.at, max l e.Trace.at, n + 1)
        | None -> (e.Trace.at, e.Trace.at, 1)
      in
      Hashtbl.replace tbl cat (first, last, n))
    (Trace.entries (trace rt));
  Hashtbl.fold
    (fun category (first, last, events) acc ->
      { category; events; first_us = Time.to_us first; last_us = Time.to_us last } :: acc)
    tbl []
  (* Count descending, then category name ascending: ties used to fall back
     to hashtable iteration order, which is seed-dependent. *)
  |> List.sort (fun a b ->
         let c = compare b.events a.events in
         if c <> 0 then c else String.compare a.category b.category)

let report ppf rt =
  Format.fprintf ppf "Post-mortem monitoring report@.";
  Format.fprintf ppf "%-16s %8s %12s %12s@." "category" "events" "first(us)" "last(us)";
  List.iter
    (fun l ->
      Format.fprintf ppf "%-16s %8d %12.1f %12.1f@." l.category l.events l.first_us
        l.last_us)
    (summary rt);
  Format.fprintf ppf "@.Per-stage costs (us):@.";
  Format.fprintf ppf "%-28s %8s %10s %10s %10s %10s %10s@." "stage" "samples"
    "mean" "p50" "p90" "p99" "max";
  List.iter
    (fun s ->
      if s.Stats.sm_samples > 0 then
        Format.fprintf ppf "%-28s %8d %10.1f %10.1f %10.1f %10.1f %10.1f@."
          s.Stats.sm_name s.Stats.sm_samples
          (Time.to_us s.Stats.sm_mean)
          (Time.to_us s.Stats.sm_p50)
          (Time.to_us s.Stats.sm_p90)
          (Time.to_us s.Stats.sm_p99)
          (Time.to_us s.Stats.sm_max))
    (Stats.span_summaries rt.Runtime.instr)

(* --- JSON snapshot --- *)

(* The run's identity, embedded in every export so baselines are
   self-describing and `dsm diff` can refuse apples-to-oranges
   comparisons.  Everything but the protocol and case id is read off the
   runtime; those two are properties of what the caller ran, not of the
   stack, so they are parameters. *)
let run_meta ?protocol ?case rt =
  Run_meta.with_git
    (Run_meta.v
       ?tie_seed:(Engine.tie_seed (Runtime.engine rt))
       ~driver:(Pm2.driver rt.Runtime.pm2).Dsmpm2_net.Driver.name
       ?protocol
       ~nodes:(Runtime.nodes rt)
       ?case ())

let to_json ?experiment ?meta rt =
  let net = Pm2.network rt.Runtime.pm2 in
  let tr = trace rt in
  let meta =
    match meta with Some m -> m | None -> run_meta ?case:experiment rt
  in
  Json.Obj
    (List.concat
       [
         (match experiment with
         | Some e -> [ ("experiment", Json.String e) ]
         | None -> []);
         [ ("meta", Run_meta.to_json meta) ];
         [
           ("sim_time_us", Json.Float (Pm2.now_us rt.Runtime.pm2));
           ("nodes", Json.Int (Runtime.nodes rt));
           ("migrations", Json.Int (Pm2.migrations rt.Runtime.pm2));
           ("stats", Stats.to_json rt.Runtime.instr);
           ("metrics", Metrics.to_json rt.Runtime.metrics);
           ( "network",
             Json.Obj
               [
                 ("messages", Json.Int (Network.messages_sent net));
                 ("bytes", Json.Int (Network.bytes_sent net));
                 ("loopback", Json.Int (Network.loopback_sent net));
                 ("dropped", Json.Int (Network.messages_dropped net));
                 ( "dropped_by_kind",
                   Json.Obj
                     (List.map
                        (fun (kind, n) -> (kind, Json.Int n))
                        (Network.dropped_by_kind net)) );
                 ("stats", Stats.to_json (Network.stats net));
                 ("metrics", Metrics.to_json (Network.metrics net));
               ] );
           ("trace_events", Json.Int (Trace.length tr));
           ( "trace",
             Json.Obj
               [
                 ("events", Json.Int (Trace.length tr));
                 ("recorded", Json.Int (Trace.recorded tr));
                 ("evicted", Json.Int (Trace.evicted tr));
                 ( "capacity",
                   match Trace.capacity tr with
                   | Some c -> Json.Int c
                   | None -> Json.Null );
                 ("sampled_out", Json.Int (Trace.sampled_out tr));
               ] );
         ];
       ])

(* --- Prometheus text exposition ---

   One scrape surface for the whole runtime: the per-node/per-protocol DSM
   registry, the network's per-source registry, and a synthesized run-wide
   registry for the scalar counters that live outside any Metrics group —
   loopback traffic, fault-plan drops (total and per message kind) and the
   flight recorder's eviction count. *)

let to_prometheus ppf rt =
  let net = Pm2.network rt.Runtime.pm2 in
  let tr = trace rt in
  Metrics.to_prometheus ppf (metrics rt);
  Metrics.to_prometheus ppf (Network.metrics net);
  let extra = Metrics.create () in
  Metrics.add extra "net.loopback" (Network.loopback_sent net);
  Metrics.add extra "net.dropped" (Network.messages_dropped net);
  List.iter
    (fun (kind, n) -> Metrics.add extra (kind ^ ".dropped") n)
    (Network.dropped_by_kind net);
  Metrics.add extra "trace.evicted" (Trace.evicted tr);
  Metrics.to_prometheus ppf extra

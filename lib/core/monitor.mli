(** Post-mortem monitoring, the PM2 feature the paper's evaluation leans on:
    "very precise post-mortem monitoring tools are available in the PM2
    platform, providing the user with valuable information on the time spent
    within each elementary function".

    When enabled, the DSM layers record every protocol-level event (faults,
    requests served, pages sent, invalidations, diffs, lock and barrier
    traffic) as typed {!Dsmpm2_sim.Trace.event}s into the runtime's trace;
    after the run, [report] summarises them per category, [to_json] exports
    a stable metrics snapshot, and the raw trace remains available for
    fine-grained inspection or export (JSONL, Chrome trace). *)

open Dsmpm2_sim

val enable : Runtime.t -> bool -> unit
val enabled : Runtime.t -> bool

val trace : Runtime.t -> Trace.t
(** The raw event log (chronological). *)

val events : Runtime.t -> (Trace.entry * Trace.event) list
(** The typed events, chronological — what the post-mortem analyzer
    ([Dsmpm2_experiments.Analyze]) consumes on a live runtime. *)

val metrics : Runtime.t -> Metrics.t
(** The labeled (node, protocol) metrics registry. *)

val record :
  Runtime.t -> category:string -> ('a, Format.formatter, unit, unit) format4 -> 'a
(** Free-form trace line; free when disabled. *)

val emit : Runtime.t -> ?span:int -> Trace.event -> unit
(** Records a typed event; the span defaults to {!current_span}.  No-op
    when disabled, but hot call sites should guard with {!enabled} so the
    event value is not even allocated. *)

(** {2 Span context} *)

val new_span : Runtime.t -> int
(** A fresh causal span id ([Trace.no_span] while monitoring is off). *)

val current_span : Runtime.t -> int
(** The span the calling Marcel thread is working on, or [Trace.no_span]. *)

val with_thread_span : Runtime.t -> int -> (unit -> 'a) -> 'a
(** Runs [f] with the calling thread's span set (restored afterwards). *)

(** {2 Reports} *)

type summary_line = {
  category : string;
  events : int;
  first_us : float;
  last_us : float;
}

val summary : Runtime.t -> summary_line list
(** Event counts and activity window per category, sorted by count
    (descending) with ties broken by category name (ascending) — fully
    deterministic. *)

val report : Format.formatter -> Runtime.t -> unit
(** The post-mortem report: the per-category summary followed by the
    per-stage latency distribution (mean/p50/p90/p99/max) accumulated by
    the instrumentation layer. *)

val run_meta : ?protocol:string -> ?case:string -> Runtime.t -> Run_meta.t
(** The run's identity ({!Dsmpm2_sim.Run_meta}): git revision (best
    effort), engine tie seed, driver name and node count read off the
    runtime, plus the caller-supplied protocol and case id. *)

val to_json : ?experiment:string -> ?meta:Run_meta.t -> Runtime.t -> Json.t
(** Stable machine-readable snapshot: run metadata (under ["meta"]; defaults
    to {!run_meta} with [case] = [experiment]), simulated time, migrations,
    the instrumentation counters and span summaries (with percentiles), the
    labeled metrics registry, and the network-layer series — including
    loopback traffic, fault-plan drops (total and per message kind) and the
    flight recorder's ["trace"] accounting (stored/recorded/evicted/
    capacity). *)

val to_prometheus : Format.formatter -> Runtime.t -> unit
(** Prometheus text exposition of the whole runtime: the DSM metrics
    registry ({!metrics}), the network's per-source registry, and a
    synthesized run-wide registry carrying [dsm_net_loopback_total],
    [dsm_net_dropped_total], per-kind [dsm_msg_<kind>_dropped_total] and
    [dsm_trace_evicted_total]. *)

(** The DSM communication module: message constructors, RPC services and
    their dispatch to protocol actions.

    This is the second half of the paper's generic core (Section 2.2): it
    provides the "limited set of communication routines" all page-based DSM
    protocols need — requesting a page, sending a page, invalidating,
    sending diffs — implemented on PM2's RPC mechanism, and dispatches each
    incoming message to the per-page protocol's server action.

    Diff application is protocol-sensitive (a home receiving release-time
    diffs may have to invalidate third-party copies), so protocols may
    override the default apply-only behaviour with [set_diff_handler]. *)

open Dsmpm2_sim
open Dsmpm2_pm2
open Dsmpm2_mem

(** The DSM message vocabulary, as extensions of the RPC payload type.
    Requests and invalidations carry the causal span id of the fault that
    triggered them, so the whole remote access can be followed across
    nodes in the trace. *)
type Rpc.payload +=
  | Page_request of {
      page : int;
      mode : Access.mode;
      requester : int;
      sent_at : Time.t;
      span : int;
    }
  | Page_data of Protocol.page_message
  | Invalidate of { page : int; sender : int; span : int }
  | Invalidate_batch of { pages : int list; sender : int; span : int }
      (** every page this sender wants invalidated on the destination,
          coalesced into one control message (see {!call_invalidate_batch}) *)
  | Diffs of { diffs : Diff.t list; sender : int; release : bool }
  | Lock_op of { lock : int; node : int; tid : int }
  | Barrier_wait of { barrier : int; node : int }
  | Ack
  | Lock_error of string
      (** reply to an invalid lock release; see {!Dsm_sync.Lock_error} *)

val init : Runtime.t -> unit
(** Registers all DSM services with the runtime's RPC layer.  Must be called
    exactly once, before any shared allocation. *)

(** {1 Senders} — used by {!Protocol_lib} and protocol implementations. *)

val send_request :
  Runtime.t -> to_:int -> page:int -> mode:Access.mode -> requester:int -> unit
(** One-way page request (cost: one control message).  May be called from a
    handler thread to forward a request along the probable-owner chain. *)

val send_page :
  Runtime.t ->
  to_:int ->
  page:int ->
  grant:Access.t ->
  ownership:bool ->
  copyset:int list ->
  req_mode:Access.mode ->
  unit
(** Sends this node's current copy of [page] (cost: one bulk transfer of a
    page).  Dispatches to the receiver protocol's [receive_page_server]. *)

val call_invalidate : Runtime.t -> ?span:int -> to_:int -> page:int -> unit -> unit
(** Synchronous invalidation (waits for the ack).  [span] defaults to the
    calling thread's current span; pass it explicitly when fanning out
    from helper threads. *)

val call_invalidate_batch :
  Runtime.t -> ?span:int -> to_:int -> pages:int list -> unit -> unit
(** Synchronous invalidation of every page in [pages] on [to_] with a single
    control message — one RPC per destination node instead of one per page.
    No-op on []; a singleton degrades to {!call_invalidate}.  Bumps
    [invalidate.sent] once per page but [invalidate.rpc] once per message. *)

val call_diffs : Runtime.t -> to_:int -> diffs:Diff.t list -> release:bool -> unit
(** Sends diffs to their (common) home node and waits for the ack.  The home
    applies them via the diff handler of each page's protocol. *)

type diff_handler =
  Runtime.t -> node:int -> diff:Diff.t -> sender:int -> release:bool -> unit

val set_diff_handler : Runtime.t -> protocol:int -> diff_handler -> unit
(** Overrides diff processing for pages of [protocol].  The default handler
    applies the diff to the local frame under the entry mutex. *)

type diffs_handler =
  Runtime.t -> node:int -> diffs:Diff.t list -> sender:int -> release:bool -> unit

val set_diffs_handler : Runtime.t -> protocol:int -> diffs_handler -> unit
(** Batch form of {!set_diff_handler}: the handler receives every diff of an
    arriving [Diffs] message destined to [protocol] at once (order
    preserved), letting it coalesce its follow-up work — e.g. one batched
    invalidation per copyset node for the whole release instead of one RPC
    per (page, target).  When both handlers are registered the batch one
    wins. *)

val apply_diff_locally : Runtime.t -> node:int -> Diff.t -> unit
(** The default behaviour, exposed so custom handlers can reuse it. *)

(** The DSM protocol library layer: thread-safe toolbox routines from which
    consistency protocols are assembled (paper Section 2.2).

    The routines encapsulate the "subtle synchronization problems" the paper
    says the generic core solves once for everybody: per-page fault
    coalescing, entry-mutex discipline, parallel invalidation with acks, and
    the cost-model charging that makes the Table 3/4 breakdowns come out. *)

open Dsmpm2_mem

val server_overhead : Runtime.t -> unit
(** Charges the owner/home-side protocol processing cost (CPU) and records
    it under {!Instrument.stage_overhead_server}. *)

val client_overhead : Runtime.t -> unit
(** Charges the requester-side installation cost (CPU) and records it under
    {!Instrument.stage_overhead_client}. *)

val migration_overhead : Runtime.t -> unit
(** Charges the (tiny) protocol cost of a migration-based fault. *)

val with_entry : Runtime.t -> Page_table.entry -> (unit -> 'a) -> 'a
(** Runs [f] with the entry mutex held (released on exception). *)

val wait_while_faulting : Runtime.t -> Page_table.entry -> unit
(** Blocks (entry mutex held on entry and exit) while a local fault
    transaction is in progress on the page. *)

val fetch_page : Runtime.t -> node:int -> page:int -> mode:Access.mode -> from:int -> unit
(** The standard coalesced fault transaction: marks the entry as faulting,
    sends a page request for [mode] to [from], and blocks until the page
    arrives ([receive_page_server] must call {!complete_fault}).  If another
    local thread already has a fault in flight on this page, waits for it
    instead of issuing a second request (faults coalesce per node).  Callers
    must re-check access rights afterwards (the granted rights may not cover
    [mode]). *)

val complete_fault : Runtime.t -> Page_table.entry -> unit
(** Clears the faulting flag, pins the entry for the local retry, and wakes
    every thread blocked in {!fetch_page}.  Must be called with the entry
    mutex held. *)

val wait_for_service : Runtime.t -> Page_table.entry -> unit
(** Blocks (entry mutex held) while a local fault is in flight {e or} a just
    granted page is still pinned awaiting its local retry.  Request servers
    must use this rather than {!wait_while_faulting}: otherwise two nodes
    write-faulting on the same page can steal the page from each other
    forever, each losing it before its own thread retries the access. *)

val unpin : Runtime.t -> Page_table.entry -> unit
(** Releases the service pin (normally done by the access path after the
    retried access succeeds). *)

val install_page : Runtime.t -> node:int -> Protocol.page_message -> unit
(** Adopts the received page data into the node's frame store (the message's
    buffer is never read again, so no further copy is made) and sets the
    granted access rights (entry mutex must be held). *)

val invalidate_copies : Runtime.t -> page:int -> targets:int list -> unit
(** Invalidates [targets] in parallel and waits for all acks.  The calling
    node is filtered out. *)

val invalidate_copies_many :
  Runtime.t -> pages_by_target:(int * int list) list -> unit
(** Batched invalidation: for each [(target, pages)] association, sends a
    {e single} invalidation RPC carrying the whole page list, all targets in
    parallel, and waits for every ack — O(copyset) messages per release
    instead of O(pages x copyset).  The calling node is filtered out,
    duplicate targets are merged, duplicate pages deduplicated, and empty
    page lists dropped.  Must not be called with any target's entry mutex
    held (the invalidated node may flush diffs back). *)

val send_diffs_grouped : Runtime.t -> release:bool -> (int * Diff.t) list -> unit
(** Groups [(home, diff)] pairs by home and sends each home {e one}
    release-path diffs message (all homes in parallel), waiting for every
    ack.  Diff order per home follows the input order. *)

val push_diffs : Runtime.t -> targets:int list -> diffs:Diff.t list -> release:bool -> unit
(** Pushes the same diffs to every target in parallel and waits for all
    acks (the write-update fan-out).  The calling node is filtered out. *)

val drop_copy : Runtime.t -> node:int -> page:int -> unit
(** Discards the local copy: rights to [No_access], frame dropped, twin
    cleared (entry mutex must be held). *)

val make_twin : Runtime.t -> node:int -> Page_table.entry -> unit
(** Snapshots the current frame as the entry's twin. *)

val diff_against_twin : Runtime.t -> node:int -> Page_table.entry -> Diff.t option
(** The diff of the current frame against the twin; [None] when no twin
    exists or nothing changed. *)

val group_by_home : Runtime.t -> node:int -> int list -> (int * int list) list
(** Partitions pages by their home node: [(home, pages)] assoc list, sorted
    by home. *)

open Dsmpm2_sim
open Dsmpm2_net
open Dsmpm2_pm2
open Dsmpm2_mem

type severity = Info | Warning | Critical

let severity_to_string = function
  | Info -> "info"
  | Warning -> "warning"
  | Critical -> "critical"

type alert = {
  al_at_us : float;
  al_severity : severity;
  al_kind : string;
  al_node : int;
  al_detail : string;
}

type node_rates = {
  nr_node : int;
  nr_faults_s : float;
  nr_msgs_s : float;
  nr_bytes_s : float;
}

type sample = {
  sp_at_us : float;
  sp_events : int;
  sp_live_fibers : int;
  sp_rates : node_rates array;
  sp_proto_faults : (string * int) list;
  sp_hot_pages : (int * int) list;
  sp_alerts : int;
}

type config = {
  interval : Time.t;
  stall : Time.t;
  thrash_window : int;
  thrash_span : Time.t;
  ring_capacity : int;
  audits : bool;
  retry_storm : int;
}

let default_config =
  {
    interval = Time.of_us 200.;
    stall = Time.of_us 20_000.;
    thrash_window = 8;
    thrash_span = Time.of_us 300.;
    ring_capacity = 64;
    audits = true;
    retry_storm = 8;
  }

type t = {
  rt : Runtime.t;
  cfg : config;
  tele : Telemetry.t;
      (* the online telemetry engine: thrash detection, per-page
         classification and hot-page accounting all come from it *)
  waiters : (int, int * Time.t * int) Hashtbl.t;
      (* blocked tid -> (target, since, node); target as in Runtime.watch_hooks *)
  thread_node : (int, int) Hashtbl.t;  (* last known node of a tid *)
  reported : (string, unit) Hashtbl.t;  (* alert dedup keys *)
  mutable alerts_rev : alert list;  (* newest first *)
  mutable alert_count : int;
  mutable crit_count : int;
  mutable warn_count : int;
  mutable info_count : int;
  mutable prev_alerts : int;  (* alert_count at the previous sample *)
  ring : sample option array;
  mutable ring_len : int;
  mutable ring_next : int;
  mutable prev_at : Time.t;
  prev_node_faults : int array;
  prev_node_msgs : int array;
  prev_node_bytes : int array;
  prev_proto_faults : (string, int) Hashtbl.t;
  mutable samples_taken : int;
  mutable pages_audited : int;
  mutable armed : bool;
  mutable on_sample : (sample -> unit) option;
  prev_down : bool array;  (* per node: was inside a crash window last tick *)
  mutable prev_dropped : int;  (* network drop count at the previous tick *)
  mutable prev_retrans : int;  (* RPC retransmissions at the previous tick *)
}

(* --- alerts --- *)

(* The one choke point through which watchdog findings reach the trace.
   The [Monitor.enabled] guard means the [Trace.Alert] value is never even
   allocated while monitoring is off (pinned by the allocation smoke test);
   the explicit [no_span] matters because the watchdog runs in plain event
   context, where the default thread-span lookup would fault. *)
let forward_alert rt a =
  if Monitor.enabled rt then
    Monitor.emit rt ~span:Trace.no_span
      (Trace.Alert
         {
           severity = severity_to_string a.al_severity;
           kind = a.al_kind;
           node = a.al_node;
           detail = a.al_detail;
         })

let raise_alert w ?(node = -1) ~severity ~kind detail =
  let a =
    {
      al_at_us = Pm2.now_us w.rt.Runtime.pm2;
      al_severity = severity;
      al_kind = kind;
      al_node = node;
      al_detail = detail;
    }
  in
  w.alerts_rev <- a :: w.alerts_rev;
  w.alert_count <- w.alert_count + 1;
  (match severity with
  | Critical -> w.crit_count <- w.crit_count + 1
  | Warning -> w.warn_count <- w.warn_count + 1
  | Info -> w.info_count <- w.info_count + 1);
  forward_alert w.rt a

(* Raise each distinct finding once: the sampler would otherwise repeat a
   persistent violation every tick. *)
let once w key f =
  if not (Hashtbl.mem w.reported key) then begin
    Hashtbl.add w.reported key ();
    f ()
  end

let alerts w = List.rev w.alerts_rev
let telemetry w = w.tele
let alert_counts w = (w.info_count, w.warn_count, w.crit_count)
let samples_taken w = w.samples_taken
let pages_audited w = w.pages_audited
let set_on_sample w f = w.on_sample <- Some f

let samples w =
  let cap = Array.length w.ring in
  let start = (w.ring_next - w.ring_len + cap) mod cap in
  List.init w.ring_len (fun i ->
      match w.ring.((start + i) mod cap) with
      | Some s -> s
      | None -> assert false)

let push_ring w s =
  let cap = Array.length w.ring in
  w.ring.(w.ring_next) <- Some s;
  w.ring_next <- (w.ring_next + 1) mod cap;
  if w.ring_len < cap then w.ring_len <- w.ring_len + 1

(* --- wait-for graph --- *)

let on_wait w ~node ~tid ~target =
  Hashtbl.replace w.thread_node tid node;
  Hashtbl.replace w.waiters tid (target, Engine.now (Runtime.engine w.rt), node)

let on_wake w ~node ~tid ~target:_ =
  Hashtbl.replace w.thread_node tid node;
  Hashtbl.remove w.waiters tid

let target_name target =
  match Dsm_sync.hook_target target with
  | `Lock l -> Printf.sprintf "lock %d" l
  | `Barrier b -> Printf.sprintf "barrier %d" b

let node_of_tid w tid =
  Option.value ~default:(-1) (Hashtbl.find_opt w.thread_node tid)

(* [chain] is [(tid, lock); ...]: each thread waits for its lock, whose
   holder is the next thread (cyclically).  Named in full — both locks and
   both waiting nodes — because the deadlock regression asserts on them. *)
let report_cycle w chain =
  let locks = List.sort_uniq compare (List.map snd chain) in
  let key =
    "deadlock:" ^ String.concat "," (List.map string_of_int locks)
  in
  once w key (fun () ->
      let desc =
        String.concat " -> "
          (List.map
             (fun (tid, lock) ->
               Printf.sprintf "thread %d (node %d) waits for lock %d" tid
                 (node_of_tid w tid) lock)
             chain)
      in
      raise_alert w ~severity:Critical ~kind:"deadlock.cycle"
        (Printf.sprintf "%s -> back to thread %d" desc (fst (List.hd chain))))

(* Follow waiting-thread -> wanted-lock -> holding-thread edges.  Client
   wait hooks provide the first kind of edge, the managers' [lock_state]
   directories the second; barrier waits have no single holder and end a
   chain.  A self-edge (a thread "holding" the lock it waits for) is the
   grant-in-flight transient, not a deadlock, and cycles are only reported
   through two or more threads. *)
let detect_cycles w =
  let rt = w.rt in
  let next tid =
    match Hashtbl.find_opt w.waiters tid with
    | None -> None
    | Some (target, _, _) when target < 0 -> None
    | Some (lock, _, _) -> (
        match Hashtbl.find_opt rt.Runtime.locks lock with
        | Some ls when ls.Runtime.lock_held && ls.Runtime.lock_holder >= 0 ->
            Some (lock, ls.Runtime.lock_holder)
        | _ -> None)
  in
  Hashtbl.iter
    (fun tid0 _ ->
      let rec follow tid path steps =
        if steps <= 64 then
          match next tid with
          | None -> ()
          | Some (lock, holder) ->
              if holder = tid then ()
              else if holder = tid0 && path <> [] then
                report_cycle w (List.rev ((tid, lock) :: path))
              else if List.exists (fun (t, _) -> t = holder) ((tid, lock) :: path)
              then () (* a cycle not through tid0: found from its own start *)
              else follow holder ((tid, lock) :: path) (steps + 1)
      in
      follow tid0 [] 0)
    w.waiters

let check_stalls w now =
  Hashtbl.iter
    (fun tid (target, since, node) ->
      let waited = Time.(now - since) in
      if waited >= w.cfg.stall then
        let kind = if target < 0 then "stall.barrier" else "stall.lock" in
        once w (Printf.sprintf "%s:%d:%d" kind tid target) (fun () ->
            raise_alert w ~node ~severity:Warning ~kind
              (Printf.sprintf "thread %d on node %d blocked on %s for %.0f us"
                 tid node (target_name target) (Time.to_us waited))))
    w.waiters

(* --- telemetry drain ---

   Thrash detection and hot-page accounting come from the telemetry
   engine, which observes every trace emission at the source (before
   sampling and ring eviction) instead of rescanning stored events: the
   findings stay exact on runs where the flight recorder or the sampler
   would have starved a trace-scanning loop.  The watchdog's job is
   reduced to turning interval findings into alerts. *)

let drain_telemetry w =
  let iv = Telemetry.end_interval w.tele in
  List.iter
    (fun (r : Telemetry.thrash_report) ->
      raise_alert w ~severity:Warning ~kind:"thrash.page"
        (Printf.sprintf
           "page %d ping-ponged %d times across nodes [%s] within %.0f us"
           r.Telemetry.th_page r.Telemetry.th_count
           (String.concat "," (List.map string_of_int r.Telemetry.th_nodes))
           (Time.to_us r.Telemetry.th_span)))
    iv.Telemetry.iv_thrash;
  List.iter
    (fun (a : Telemetry.advice) ->
      raise_alert w ~severity:Info ~kind:"advice.page"
        (Printf.sprintf "page %d looks %s under %s: allocate with ~protocol:%s"
           a.Telemetry.av_page
           (Telemetry.pattern_to_string a.Telemetry.av_pattern)
           a.Telemetry.av_current a.Telemetry.av_recommended))
    iv.Telemetry.iv_advice;
  iv

(* --- page-table invariant audits --- *)

let audit w =
  let rt = w.rt in
  let n = Runtime.nodes rt in
  List.iter
    (fun (e0 : Page_table.entry) ->
      let page = e0.Page_table.page in
      let entries =
        Array.init n (fun node -> Page_table.find_opt (Runtime.table rt node) page)
      in
      let transient =
        Array.exists
          (function
            | Some (e : Page_table.entry) ->
                e.Page_table.faulting || e.Page_table.pinned
            | None -> false)
          entries
      in
      (* A page with a fault in flight anywhere is mid-transition: every
         legal protocol transient (ownership transfer, invalidation sweep,
         copyset update) happens under some node's faulting/pinned flag, so
         skipping those pages makes the audit transient-free. *)
      if not transient then begin
        w.pages_audited <- w.pages_audited + 1;
        Array.iteri
          (fun node -> function
            | None -> ()
            | Some (e : Page_table.entry) ->
                if e.Page_table.protocol <> e0.Page_table.protocol then
                  once w (Printf.sprintf "inv.proto:%d:%d" page node) (fun () ->
                      raise_alert w ~node ~severity:Critical
                        ~kind:"invariant.protocol"
                        (Printf.sprintf
                           "page %d: node %d maps protocol %d but node 0 maps \
                            %d"
                           page node e.Page_table.protocol
                           e0.Page_table.protocol));
                if e.Page_table.home <> e0.Page_table.home then
                  once w (Printf.sprintf "inv.home:%d:%d" page node) (fun () ->
                      raise_alert w ~node ~severity:Critical ~kind:"invariant.home"
                        (Printf.sprintf
                           "page %d: node %d believes home is %d but node 0 \
                            says %d"
                           page node e.Page_table.home e0.Page_table.home)))
          entries;
        let proto = Runtime.proto rt e0.Page_table.protocol in
        (* The MRSW invariants below assume ownership-based coherence.  A
           per-access protocol (one that revokes rights after every read,
           i.e. [on_local_read] is set — the quorum family) enforces its
           model by majority intersection instead: there is no standing
           owner, and a writer briefly holds a writable frame away from the
           nominal owner while its propagation round is in flight.  Those
           are legal states, so such protocols are exempt. *)
        if
          Protocol.strict_coherence proto.Protocol.model
          && proto.Protocol.on_local_read = None
        then begin
          let owners = ref [] in
          Array.iteri
            (fun node -> function
              | Some (e : Page_table.entry) when e.Page_table.prob_owner = node
                ->
                  owners := node :: !owners
              | _ -> ())
            entries;
          match List.rev !owners with
          | [ owner ] ->
              let oe =
                match entries.(owner) with Some e -> e | None -> assert false
              in
              Array.iteri
                (fun node -> function
                  | Some (e : Page_table.entry) when node <> owner ->
                      if Access.allows e.Page_table.rights Access.Write then
                        once w (Printf.sprintf "inv.owner.w:%d:%d" page node)
                          (fun () ->
                            raise_alert w ~node ~severity:Critical
                              ~kind:"invariant.owner"
                              (Printf.sprintf
                                 "page %d: node %d holds a writable frame but \
                                  the owner is node %d"
                                 page node owner))
                      else if
                        oe.Page_table.rights = Access.Read_write
                        && e.Page_table.rights <> Access.No_access
                      then
                        once w (Printf.sprintf "inv.owner.x:%d:%d" page node)
                          (fun () ->
                            raise_alert w ~node ~severity:Critical
                              ~kind:"invariant.owner"
                              (Printf.sprintf
                                 "page %d: owner %d is in write mode but node \
                                  %d still has %s rights"
                                 page owner node
                                 (Access.to_string e.Page_table.rights)))
                  | _ -> ())
                entries;
              List.iter
                (fun c ->
                  if c <> owner && c >= 0 && c < n then
                    match entries.(c) with
                    | Some (e : Page_table.entry) ->
                        if
                          (not (Access.allows e.Page_table.rights Access.Read))
                          || not (Frame_store.has_frame (Runtime.store rt c) page)
                        then
                          once w (Printf.sprintf "inv.copyset:%d:%d" page c)
                            (fun () ->
                              raise_alert w ~node:c ~severity:Critical
                                ~kind:"invariant.copyset"
                                (Printf.sprintf
                                   "page %d: node %d is in the owner's copyset \
                                    but holds %s rights%s"
                                   page c
                                   (Access.to_string e.Page_table.rights)
                                   (if
                                      Frame_store.has_frame (Runtime.store rt c)
                                        page
                                    then ""
                                    else " and no frame")))
                    | None -> ())
                oe.Page_table.copyset
          | [] ->
              once w (Printf.sprintf "inv.owner0:%d" page) (fun () ->
                  raise_alert w ~severity:Critical ~kind:"invariant.owner"
                    (Printf.sprintf "page %d: no node believes it is the owner"
                       page))
          | many ->
              once w (Printf.sprintf "inv.ownerN:%d" page) (fun () ->
                  raise_alert w ~severity:Critical ~kind:"invariant.owner"
                    (Printf.sprintf "page %d: multiple self-owners: [%s]" page
                       (String.concat "," (List.map string_of_int many))))
        end
      end)
    (Page_table.entries (Runtime.table rt 0))

(* --- fault-plan health (only active when a plan is installed) --- *)

let check_faults w now =
  let rt = w.rt in
  let net = Pm2.network rt.Runtime.pm2 in
  let plan = Network.fault_plan net in
  if Fault_plan.has_faults plan then begin
    for node = 0 to Runtime.nodes rt - 1 do
      let down = Fault_plan.is_down plan ~node now in
      if down && not w.prev_down.(node) then
        raise_alert w ~node ~severity:Warning ~kind:"node.dead"
          (Printf.sprintf "node %d entered a crash window (restarts at %.1f us)"
             node
             (Time.to_us (Fault_plan.up_at plan ~node ~now)))
      else if (not down) && w.prev_down.(node) then
        raise_alert w ~node ~severity:Info ~kind:"node.restart"
          (Printf.sprintf "node %d restarted" node);
      w.prev_down.(node) <- down
    done;
    let dropped = Network.messages_dropped net in
    if dropped > w.prev_dropped then
      once w "fault.partition" (fun () ->
          raise_alert w ~severity:Info ~kind:"node.partitioned"
            (Printf.sprintf
               "fault plan is dropping traffic (%d messages so far: %d seeded \
                losses, %d crash blackholes)"
               dropped
               (Fault_plan.messages_lost plan)
               (Fault_plan.messages_blackholed plan)));
    w.prev_dropped <- dropped;
    let retrans = Rpc.retransmissions (Runtime.rpc rt) in
    if retrans - w.prev_retrans > w.cfg.retry_storm then
      once w "fault.retry_storm" (fun () ->
          raise_alert w ~severity:Warning ~kind:"rpc.retry_storm"
            (Printf.sprintf
               "%d RPC retransmissions within one %.0f us interval (threshold \
                %d): calls are hammering an unreachable node"
               (retrans - w.prev_retrans)
               (Time.to_us w.cfg.interval)
               w.cfg.retry_storm));
    w.prev_retrans <- retrans
  end

(* --- interval rates --- *)

let snapshot w now ~installs =
  let rt = w.rt in
  let nodes = Runtime.nodes rt in
  let dt_s = Time.to_us Time.(now - w.prev_at) /. 1e6 in
  let node_faults = Array.make nodes 0 in
  let proto_faults : (string, int) Hashtbl.t = Hashtbl.create 8 in
  List.iter
    (fun ((l : Metrics.labels), s) ->
      let f =
        Stats.count s Instrument.m_read_faults
        + Stats.count s Instrument.m_write_faults
      in
      if f > 0 then begin
        (match l.Metrics.lbl_node with
        | Some nd when nd >= 0 && nd < nodes ->
            node_faults.(nd) <- node_faults.(nd) + f
        | _ -> ());
        match l.Metrics.lbl_protocol with
        | Some p ->
            Hashtbl.replace proto_faults p
              (f + Option.value ~default:0 (Hashtbl.find_opt proto_faults p))
        | None -> ()
      end)
    (Metrics.all rt.Runtime.metrics);
  let net = Pm2.network rt.Runtime.pm2 in
  let node_msgs = Array.make nodes 0 in
  let node_bytes = Array.make nodes 0 in
  List.iter
    (fun ((l : Metrics.labels), s) ->
      match l.Metrics.lbl_node with
      | Some nd when nd >= 0 && nd < nodes ->
          node_msgs.(nd) <- node_msgs.(nd) + Stats.count s "net.sent";
          node_bytes.(nd) <- node_bytes.(nd) + Stats.count s "net.bytes"
      | _ -> ())
    (Metrics.all (Network.metrics net));
  let rate prev cur =
    if dt_s <= 0. then 0. else float_of_int (cur - prev) /. dt_s
  in
  let rates =
    Array.init nodes (fun nd ->
        {
          nr_node = nd;
          nr_faults_s = rate w.prev_node_faults.(nd) node_faults.(nd);
          nr_msgs_s = rate w.prev_node_msgs.(nd) node_msgs.(nd);
          nr_bytes_s = rate w.prev_node_bytes.(nd) node_bytes.(nd);
        })
  in
  let proto_list =
    Hashtbl.fold
      (fun p cur acc ->
        let prev =
          Option.value ~default:0 (Hashtbl.find_opt w.prev_proto_faults p)
        in
        if cur - prev > 0 then (p, cur - prev) :: acc else acc)
      proto_faults []
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)
  in
  Array.blit node_faults 0 w.prev_node_faults 0 nodes;
  Array.blit node_msgs 0 w.prev_node_msgs 0 nodes;
  Array.blit node_bytes 0 w.prev_node_bytes 0 nodes;
  Hashtbl.iter (Hashtbl.replace w.prev_proto_faults) proto_faults;
  (* [installs] arrives sorted (most active first) from the telemetry
     interval. *)
  let hot = List.filteri (fun i _ -> i < 5) installs in
  w.prev_at <- now;
  let eng = Runtime.engine rt in
  let s =
    {
      sp_at_us = Time.to_us now;
      sp_events = Engine.events_executed eng;
      sp_live_fibers = Engine.live_fibers eng;
      sp_rates = rates;
      sp_proto_faults = proto_list;
      sp_hot_pages = hot;
      sp_alerts = w.alert_count - w.prev_alerts;
    }
  in
  w.prev_alerts <- w.alert_count;
  s

(* --- the sampler --- *)

let tick w =
  let rt = w.rt in
  let eng = Runtime.engine rt in
  let now = Engine.now eng in
  w.samples_taken <- w.samples_taken + 1;
  let iv = drain_telemetry w in
  check_stalls w now;
  detect_cycles w;
  check_faults w now;
  if w.cfg.audits then audit w;
  let s = snapshot w now ~installs:iv.Telemetry.iv_installs in
  push_ring w s;
  (match w.on_sample with Some f -> f s | None -> ());
  let live = Engine.live_fibers eng in
  let pending = Engine.pending_events eng in
  if pending = 0 && live > 0 then begin
    (* Nothing left in the queue but fibers remain: the exact condition
       under which [Engine.run] raises [Stalled] once we step aside.  Name
       what we know, then stop re-arming so the stall surfaces. *)
    if
      not
        (List.exists
           (fun a -> a.al_kind = "deadlock.cycle")
           w.alerts_rev)
    then begin
      let blocked =
        Hashtbl.fold
          (fun tid (target, _, node) acc ->
            Printf.sprintf "thread %d (node %d) on %s" tid node
              (target_name target)
            :: acc)
          w.waiters []
      in
      let detail =
        if blocked = [] then
          Printf.sprintf "%d fibers blocked outside DSM synchronization" live
        else
          Printf.sprintf "%d fibers blocked: %s" live
            (String.concat "; " (List.sort String.compare blocked))
      in
      raise_alert w ~severity:Critical ~kind:"deadlock.stall" detail
    end;
    w.armed <- false;
    false
  end
  else if pending = 0 && live = 0 then begin
    (* Run drained; [Dsm.run] re-arms us if another phase starts. *)
    w.armed <- false;
    false
  end
  else true

let arm w =
  if not w.armed then begin
    w.armed <- true;
    Engine.periodic (Runtime.engine w.rt) ~interval:w.cfg.interval (fun () ->
        tick w)
  end

let attach ?(config = default_config) rt =
  (match rt.Runtime.watch with
  | Some _ -> invalid_arg "Watchdog.attach: a watchdog is already attached"
  | None -> ());
  if config.ring_capacity <= 0 then
    invalid_arg "Watchdog.attach: ring_capacity must be positive";
  let nodes = Runtime.nodes rt in
  (* The watchdog consumes an attached telemetry engine rather than
     scanning the trace itself; reuse one if present (keeping whatever
     config it was given), otherwise attach one carrying our thrash
     parameters. *)
  let tele =
    match Telemetry.find rt with
    | Some t -> t
    | None ->
        Telemetry.attach
          ~config:
            {
              Telemetry.default_config with
              Telemetry.thrash_window = config.thrash_window;
              thrash_span = config.thrash_span;
            }
          rt
  in
  let w =
    {
      rt;
      cfg = config;
      tele;
      waiters = Hashtbl.create 32;
      thread_node = Hashtbl.create 32;
      reported = Hashtbl.create 32;
      alerts_rev = [];
      alert_count = 0;
      crit_count = 0;
      warn_count = 0;
      info_count = 0;
      prev_alerts = 0;
      ring = Array.make config.ring_capacity None;
      ring_len = 0;
      ring_next = 0;
      prev_at = Engine.now (Runtime.engine rt);
      prev_node_faults = Array.make nodes 0;
      prev_node_msgs = Array.make nodes 0;
      prev_node_bytes = Array.make nodes 0;
      prev_proto_faults = Hashtbl.create 8;
      samples_taken = 0;
      pages_audited = 0;
      armed = false;
      on_sample = None;
      prev_down = Array.make nodes false;
      prev_dropped = 0;
      prev_retrans = 0;
    }
  in
  rt.Runtime.watch <-
    Some
      {
        Runtime.wh_wait = (fun ~node ~tid ~target -> on_wait w ~node ~tid ~target);
        wh_wake = (fun ~node ~tid ~target -> on_wake w ~node ~tid ~target);
        wh_rearm = (fun () -> arm w);
      };
  arm w;
  w

(* --- reports --- *)

let alert_to_json a =
  Json.Obj
    [
      ("at_us", Json.Float a.al_at_us);
      ("severity", Json.String (severity_to_string a.al_severity));
      ("kind", Json.String a.al_kind);
      ("node", Json.Int a.al_node);
      ("detail", Json.String a.al_detail);
    ]

let sample_to_json s =
  Json.Obj
    [
      ("at_us", Json.Float s.sp_at_us);
      ("events", Json.Int s.sp_events);
      ("live_fibers", Json.Int s.sp_live_fibers);
      ( "nodes",
        Json.List
          (Array.to_list
             (Array.map
                (fun r ->
                  Json.Obj
                    [
                      ("node", Json.Int r.nr_node);
                      ("faults_s", Json.Float r.nr_faults_s);
                      ("msgs_s", Json.Float r.nr_msgs_s);
                      ("bytes_s", Json.Float r.nr_bytes_s);
                    ])
                s.sp_rates)) );
      ( "protocol_faults",
        Json.Obj (List.map (fun (p, c) -> (p, Json.Int c)) s.sp_proto_faults) );
      ( "hot_pages",
        Json.List
          (List.map
             (fun (p, c) ->
               Json.Obj [ ("page", Json.Int p); ("transfers", Json.Int c) ])
             s.sp_hot_pages) );
      ("alerts", Json.Int s.sp_alerts);
    ]

let health_json w =
  Json.Obj
    [
      ("meta", Run_meta.to_json (Monitor.run_meta w.rt));
      ("sim_time_us", Json.Float (Pm2.now_us w.rt.Runtime.pm2));
      ("samples", Json.Int w.samples_taken);
      ("pages_audited", Json.Int w.pages_audited);
      ("healthy", Json.Bool (w.crit_count = 0));
      ( "alert_counts",
        Json.Obj
          [
            ("info", Json.Int w.info_count);
            ("warning", Json.Int w.warn_count);
            ("critical", Json.Int w.crit_count);
            ("total", Json.Int w.alert_count);
          ] );
      ("alerts", Json.List (List.rev_map alert_to_json w.alerts_rev));
      ("timeseries", Json.List (List.map sample_to_json (samples w)));
    ]

let pp_sample ppf (w, s) =
  Format.fprintf ppf "t=%10.1f us  events=%-9d live=%-4d alerts=%d@."
    s.sp_at_us s.sp_events s.sp_live_fibers w.alert_count;
  Format.fprintf ppf "  %-6s %12s %12s %14s@." "node" "faults/s" "msgs/s"
    "bytes/s";
  Array.iter
    (fun r ->
      Format.fprintf ppf "  %-6d %12.0f %12.0f %14.0f@." r.nr_node
        r.nr_faults_s r.nr_msgs_s r.nr_bytes_s)
    s.sp_rates;
  if s.sp_proto_faults <> [] then
    Format.fprintf ppf "  interval faults: %s@."
      (String.concat ", "
         (List.map
            (fun (p, c) -> Printf.sprintf "%s=%d" p c)
            s.sp_proto_faults));
  if s.sp_hot_pages <> [] then
    Format.fprintf ppf "  hot pages: %s@."
      (String.concat ", "
         (List.map
            (fun (p, c) -> Printf.sprintf "%d (%d transfers)" p c)
            s.sp_hot_pages))

let pp_summary ppf w =
  Format.fprintf ppf "Watchdog: %d samples, %d page audits, %d alerts@."
    w.samples_taken w.pages_audited w.alert_count;
  if w.alert_count = 0 then Format.fprintf ppf "  no findings: run is healthy@."
  else
    List.iter
      (fun a ->
        Format.fprintf ppf "  [%-8s] %8.1f us  %-18s %s@."
          (severity_to_string a.al_severity)
          a.al_at_us a.al_kind a.al_detail)
      (alerts w)

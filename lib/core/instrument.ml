open Dsmpm2_sim

let stage_fault = "stage.fault"
let stage_request = "stage.request"
let stage_transfer = "stage.transfer"
let stage_overhead_server = "stage.overhead_server"
let stage_overhead_client = "stage.overhead_client"
let stage_migration = "stage.migration"
let stage_total = "stage.total"
let read_faults = "fault.read"
let write_faults = "fault.write"
let pages_sent = "page.sent"
let invalidations = "invalidate.sent"
let diffs_sent = "diff.sent"
let diff_bytes = "diff.bytes"
let check_misses = "check.miss"
let inline_checks = "check.count"
let lock_wait = "sync.lock.wait"
let barrier_wait = "sync.barrier.wait"

(* Labeled metric names (per-node / per-protocol series in the runtime's
   Metrics registry). *)
let m_fault_latency = "dsm.fault.latency"
let m_read_faults = "dsm.fault.read"
let m_write_faults = "dsm.fault.write"
let m_pages_sent = "dsm.page.sent"
let m_page_transfer = "dsm.page.transfer"
let m_invalidations = "dsm.invalidate"
let m_diffs = "dsm.diff"
let m_lock_wait = "dsm.lock.wait"
let m_barrier_wait = "dsm.barrier.wait"

let row ppf stats name key =
  Format.fprintf ppf "%-20s %8.1f@." name (Time.to_us (Stats.span_mean stats key))

let pp_page_breakdown ppf stats =
  row ppf stats "Page fault" stage_fault;
  row ppf stats "Request page" stage_request;
  row ppf stats "Page transfer" stage_transfer;
  Format.fprintf ppf "%-20s %8.1f@." "Protocol overhead"
    (Time.to_us (Stats.span_mean stats stage_overhead_server)
    +. Time.to_us (Stats.span_mean stats stage_overhead_client));
  row ppf stats "Total" stage_total

let pp_migration_breakdown ppf stats =
  row ppf stats "Page fault" stage_fault;
  row ppf stats "Thread migration" stage_migration;
  row ppf stats "Protocol overhead" stage_overhead_client;
  row ppf stats "Total" stage_total

let stages =
  [
    stage_fault;
    stage_request;
    stage_transfer;
    stage_overhead_server;
    stage_overhead_client;
    stage_migration;
    stage_total;
  ]

let pp_stage_percentiles ppf stats =
  Format.fprintf ppf "%-28s %8s %10s %10s %10s %10s@." "stage" "samples" "p50"
    "p90" "p99" "max";
  List.iter
    (fun key ->
      let s = Stats.span_summary stats key in
      if s.Stats.sm_samples > 0 then
        Format.fprintf ppf "%-28s %8d %10.1f %10.1f %10.1f %10.1f@." key
          s.Stats.sm_samples
          (Time.to_us s.Stats.sm_p50)
          (Time.to_us s.Stats.sm_p90)
          (Time.to_us s.Stats.sm_p99)
          (Time.to_us s.Stats.sm_max))
    stages

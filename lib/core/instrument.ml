open Dsmpm2_sim

let stage_fault = "stage.fault"
let stage_request = "stage.request"
let stage_transfer = "stage.transfer"
let stage_overhead_server = "stage.overhead_server"
let stage_overhead_client = "stage.overhead_client"
let stage_migration = "stage.migration"
let stage_total = "stage.total"
let read_faults = "fault.read"
let write_faults = "fault.write"
let pages_sent = "page.sent"
let invalidations = "invalidate.sent"
let invalidate_rpcs = "invalidate.rpc"
let diffs_sent = "diff.sent"
let diff_bytes = "diff.bytes"
let check_misses = "check.miss"
let inline_checks = "check.count"
let lock_wait = "sync.lock.wait"
let barrier_wait = "sync.barrier.wait"

(* Labeled metric names (per-node / per-protocol series in the runtime's
   Metrics registry). *)
let m_fault_latency = "dsm.fault.latency"
let m_read_faults = "dsm.fault.read"
let m_write_faults = "dsm.fault.write"
let m_pages_sent = "dsm.page.sent"
let m_page_transfer = "dsm.page.transfer"
let m_invalidations = "dsm.invalidate"
let m_diffs = "dsm.diff"
let m_lock_wait = "dsm.lock.wait"
let m_barrier_wait = "dsm.barrier.wait"

(* Pre-resolved handles for the per-message/per-fault hot paths: interned
   once at runtime creation, so a send or fault bumps cells instead of
   hashing metric names.  The per-node arrays are the (node)-labeled
   Metrics series for the two counters the senders touch on every call. *)
type handles = {
  h_read_faults : Stats.counter;
  h_write_faults : Stats.counter;
  h_inline_checks : Stats.counter;
  h_check_misses : Stats.counter;
  h_pages_sent : Stats.counter;
  h_invalidations : Stats.counter;
  h_invalidate_rpcs : Stats.counter;
  h_diffs_sent : Stats.counter;
  h_diff_bytes : Stats.counter;
  h_stage_fault : Stats.histogram;
  h_stage_request : Stats.histogram;
  h_stage_transfer : Stats.histogram;
  h_stage_total : Stats.histogram;
  hm_invalidations : Stats.counter array; (* per node: m_invalidations *)
  hm_diffs : Stats.counter array; (* per node: m_diffs *)
}

let intern stats metrics ~nodes =
  let node_group node = Metrics.group metrics (Metrics.labels ~node ()) in
  {
    h_read_faults = Stats.counter stats read_faults;
    h_write_faults = Stats.counter stats write_faults;
    h_inline_checks = Stats.counter stats inline_checks;
    h_check_misses = Stats.counter stats check_misses;
    h_pages_sent = Stats.counter stats pages_sent;
    h_invalidations = Stats.counter stats invalidations;
    h_invalidate_rpcs = Stats.counter stats invalidate_rpcs;
    h_diffs_sent = Stats.counter stats diffs_sent;
    h_diff_bytes = Stats.counter stats diff_bytes;
    h_stage_fault = Stats.histogram stats stage_fault;
    h_stage_request = Stats.histogram stats stage_request;
    h_stage_transfer = Stats.histogram stats stage_transfer;
    h_stage_total = Stats.histogram stats stage_total;
    hm_invalidations =
      Array.init nodes (fun n -> Stats.counter (node_group n) m_invalidations);
    hm_diffs = Array.init nodes (fun n -> Stats.counter (node_group n) m_diffs);
  }

let row ppf stats name key =
  Format.fprintf ppf "%-20s %8.1f@." name (Time.to_us (Stats.span_mean stats key))

let pp_page_breakdown ppf stats =
  row ppf stats "Page fault" stage_fault;
  row ppf stats "Request page" stage_request;
  row ppf stats "Page transfer" stage_transfer;
  Format.fprintf ppf "%-20s %8.1f@." "Protocol overhead"
    (Time.to_us (Stats.span_mean stats stage_overhead_server)
    +. Time.to_us (Stats.span_mean stats stage_overhead_client));
  row ppf stats "Total" stage_total

let pp_migration_breakdown ppf stats =
  row ppf stats "Page fault" stage_fault;
  row ppf stats "Thread migration" stage_migration;
  row ppf stats "Protocol overhead" stage_overhead_client;
  row ppf stats "Total" stage_total

let stages =
  [
    stage_fault;
    stage_request;
    stage_transfer;
    stage_overhead_server;
    stage_overhead_client;
    stage_migration;
    stage_total;
  ]

let pp_stage_percentiles ppf stats =
  Format.fprintf ppf "%-28s %8s %10s %10s %10s %10s@." "stage" "samples" "p50"
    "p90" "p99" "max";
  List.iter
    (fun key ->
      let s = Stats.span_summary stats key in
      if s.Stats.sm_samples > 0 then
        Format.fprintf ppf "%-28s %8d %10.1f %10.1f %10.1f %10.1f@." key
          s.Stats.sm_samples
          (Time.to_us s.Stats.sm_p50)
          (Time.to_us s.Stats.sm_p90)
          (Time.to_us s.Stats.sm_p99)
          (Time.to_us s.Stats.sm_max))
    stages

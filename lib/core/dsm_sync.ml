open Dsmpm2_sim
open Dsmpm2_net
open Dsmpm2_pm2

exception Lock_error of string

(* Barrier hooks borrow the lock-hook entry points with a synthetic id from
   a disjoint namespace: real lock ids are non-negative, barrier hook ids are
   strictly negative, so the two can never collide in a protocol's
   hook-state tables. *)
let barrier_hook_id bid = -bid - 1
let hook_target id = if id < 0 then `Barrier (-id - 1) else `Lock id

let lock_create (rt : Runtime.t) ?protocol ?manager () =
  let id = rt.next_lock in
  rt.next_lock <- id + 1;
  let lock =
    {
      Runtime.lock_id = id;
      lock_manager = (match manager with Some m -> m | None -> id mod Runtime.nodes rt);
      lock_protocol =
        (match protocol with Some p -> p | None -> rt.Runtime.default_protocol);
      lock_held = false;
      lock_holder = -1;
      lock_queue = Marcel.Cond.create ();
      lock_mutex = Marcel.Mutex.create ();
      lock_acquisitions = 0;
      lock_ext = Page_table.No_ext;
    }
  in
  Hashtbl.add rt.Runtime.locks id lock;
  id

let lock_acquire rt id =
  let ls = Runtime.lock_state rt id in
  let node = Runtime.self_node rt in
  let tid = Marcel.tid (Marcel.self (Runtime.marcel rt)) in
  let services = Runtime.services rt in
  let started = Engine.now (Runtime.engine rt) in
  (* Client-side request/granted pair: the gap is this node's observed lock
     wait (manager queueing plus network), the raw material of the
     analyzer's per-lock contention profile. *)
  if Monitor.enabled rt then
    Monitor.emit rt (Trace.Lock { node; lock = id; op = "request" });
  Runtime.notify_wait rt ~node ~tid ~target:id;
  ignore
    (Rpc.call (Runtime.rpc rt) ~dst:ls.Runtime.lock_manager
       ~service:services.Runtime.srv_lock_acquire ~cost:Driver.Request
       (Dsm_comm.Lock_op { lock = id; node; tid }));
  Runtime.notify_wake rt ~node ~tid ~target:id;
  if Monitor.enabled rt then
    Monitor.emit rt (Trace.Lock { node; lock = id; op = "granted" });
  let proto = Runtime.proto rt ls.Runtime.lock_protocol in
  proto.Protocol.lock_acquire rt ~node ~lock:id;
  Runtime.record_history rt ~start:started (History.Acquire { lock = id });
  let waited = Time.(Engine.now (Runtime.engine rt) - started) in
  Stats.add_span rt.Runtime.instr Instrument.lock_wait waited;
  Metrics.observe rt.Runtime.metrics ~node Instrument.m_lock_wait waited

let lock_release rt id =
  let ls = Runtime.lock_state rt id in
  let node = Runtime.self_node rt in
  let started = Engine.now (Runtime.engine rt) in
  (* The hold ends when release processing starts (the protocol's flush
     runs on the holder's time, not the next waiter's). *)
  if Monitor.enabled rt then
    Monitor.emit rt (Trace.Lock { node; lock = id; op = "released" });
  let proto = Runtime.proto rt ls.Runtime.lock_protocol in
  proto.Protocol.lock_release rt ~node ~lock:id;
  (* Record before the manager round-trip: the release's place in the
     history must precede the acquire of whoever the manager grants the
     lock to next (the grant can overtake our reply on the wire). *)
  Runtime.record_history rt ~start:started (History.Release { lock = id });
  let tid = Marcel.tid (Marcel.self (Runtime.marcel rt)) in
  let services = Runtime.services rt in
  match
    Rpc.call (Runtime.rpc rt) ~dst:ls.Runtime.lock_manager
      ~service:services.Runtime.srv_lock_release ~cost:Driver.Request
      (Dsm_comm.Lock_op { lock = id; node; tid })
  with
  | Dsm_comm.Lock_error msg -> raise (Lock_error msg)
  | _ -> ()

let with_lock rt id f =
  lock_acquire rt id;
  Fun.protect ~finally:(fun () -> lock_release rt id) f

let lock_acquisitions rt id = (Runtime.lock_state rt id).Runtime.lock_acquisitions

let barrier_create (rt : Runtime.t) ?protocol ?manager ~parties () =
  if parties <= 0 then invalid_arg "Dsm_sync.barrier_create: parties must be positive";
  let id = rt.next_barrier in
  rt.next_barrier <- id + 1;
  let barrier =
    {
      Runtime.barrier_id = id;
      barrier_manager = (match manager with Some m -> m | None -> id mod Runtime.nodes rt);
      barrier_parties = parties;
      barrier_protocol =
        (match protocol with Some p -> p | None -> rt.Runtime.default_protocol);
      barrier_arrived = 0;
      barrier_generation = 0;
      barrier_cond = Marcel.Cond.create ();
      barrier_mutex = Marcel.Mutex.create ();
    }
  in
  Hashtbl.add rt.Runtime.barriers id barrier;
  id

let barrier_wait rt id =
  let bs = Runtime.barrier_state rt id in
  let node = Runtime.self_node rt in
  let proto = Runtime.proto rt bs.Runtime.barrier_protocol in
  let hook = barrier_hook_id id in
  proto.Protocol.lock_release rt ~node ~lock:hook;
  let services = Runtime.services rt in
  let started = Engine.now (Runtime.engine rt) in
  let tid = Marcel.tid (Marcel.self (Runtime.marcel rt)) in
  Runtime.notify_wait rt ~node ~tid ~target:hook;
  ignore
    (Rpc.call (Runtime.rpc rt) ~dst:bs.Runtime.barrier_manager
       ~service:services.Runtime.srv_barrier ~cost:Driver.Request
       (Dsm_comm.Barrier_wait { barrier = id; node }));
  Runtime.notify_wake rt ~node ~tid ~target:hook;
  let waited = Time.(Engine.now (Runtime.engine rt) - started) in
  Stats.add_span rt.Runtime.instr Instrument.barrier_wait waited;
  Metrics.observe rt.Runtime.metrics ~node Instrument.m_barrier_wait waited;
  proto.Protocol.lock_acquire rt ~node ~lock:hook;
  Runtime.record_history rt ~start:started
    (History.Barrier { barrier = id; parties = bs.Runtime.barrier_parties })

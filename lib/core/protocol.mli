(** The protocol policy layer: a consistency protocol is a set of 8 actions.

    This is the paper's Table 1 verbatim.  Designing a protocol in DSM-PM2
    consists of providing these routines (built from the {!Protocol_lib}
    toolbox or from scratch) and registering the record; the generic core
    calls them automatically:

    - [read_fault] / [write_fault] run on the faulting node, in the faulting
      thread, when an access lacks rights;
    - [read_server] / [write_server] run on a node receiving a request for
      read/write access (in a fresh handler thread);
    - [invalidate_server] runs on receiving an invalidation request;
    - [receive_page_server] runs on receiving a page;
    - [lock_acquire] runs after a DSM lock has been acquired (and after a
      barrier releases);
    - [lock_release] runs before a DSM lock is released (and before a barrier
      is entered).

    The record is polymorphic in the runtime type ['rt] to break the module
    cycle between the registry (below the runtime) and the built-in protocols
    (above it); everywhere in this code base ['rt] is {!Runtime.t}. *)

open Dsmpm2_sim
open Dsmpm2_mem

type detection = Page_fault | Inline_check
(** How accesses to shared data are checked.  [Page_fault] charges the fault
    cost only on misses (the default); [Inline_check] charges a per-access
    locality check and no fault cost — the paper's [java_ic] vs [java_pf]
    distinction (Section 3.3). *)

type model = Sequential | Release | Java
(** The consistency contract a protocol declares, checked by the {!History}
    conformance checker:

    - [Sequential]: every read returns the most recent write in a single
      total order consistent with both program order and real time (per
      location) — the Li-Hudak family's guarantee.
    - [Release]: reads may be stale between synchronization points; a read
      must still return a write that is not overwritten in the
      happens-before order induced by program order, lock release→acquire
      pairs and barriers (DRF programs observe sequential consistency).
    - [Java]: the Java memory model as used by Hyperion — checked with the
      same happens-before rule as [Release]; main-memory propagation is only
      guaranteed at monitor operations. *)

val model_to_string : model -> string

val strict_coherence : model -> bool
(** Whether the model promises single-writer/multiple-reader page coherence
    at {e every} instant ([Sequential] only).  The live watchdog audits
    ownership uniqueness, writable-frame exclusivity and copyset/frame
    agreement only for protocols whose model passes this test: relaxed
    models legitimately keep stale replicas and conservative copysets
    between synchronization points.  Per-access quorum protocols (those
    with [on_local_read] set, e.g. [sc_abd]) are additionally exempt — they
    promise sequential consistency through majority intersection, with no
    standing owner for the audit to check. *)

type page_message = {
  page : int;
  data : bytes;
  grant : Access.t;  (** rights the receiver may install *)
  ownership : bool;  (** whether page ownership transfers with the copy *)
  copyset : int list;  (** transferred with ownership (MRSW protocols) *)
  sender : int;
  req_mode : Access.mode;  (** the mode of the fault being satisfied *)
  sent_at : Time.t;  (** instrumentation: transfer-stage timing *)
  span : int;  (** trace span of the originating fault, [Trace.no_span] if none *)
}

type 'rt t = {
  name : string;
  detection : detection;
  model : model;  (** the consistency contract the protocol promises *)
  read_fault : 'rt -> node:int -> page:int -> unit;
  write_fault : 'rt -> node:int -> page:int -> unit;
  read_server : 'rt -> node:int -> page:int -> requester:int -> unit;
  write_server : 'rt -> node:int -> page:int -> requester:int -> unit;
  invalidate_server : 'rt -> node:int -> page:int -> sender:int -> unit;
  receive_page_server : 'rt -> node:int -> msg:page_message -> unit;
  lock_acquire : 'rt -> node:int -> lock:int -> unit;
  lock_release : 'rt -> node:int -> lock:int -> unit;
  on_local_write :
    ('rt -> node:int -> page:int -> offset:int -> value:int -> unit) option;
      (** Not one of the paper's 8 actions: in DSM-PM2 proper, the Java
          protocols record modifications inside Hyperion's [put] access
          primitive.  This optional hook is that integration point — the
          core write path calls it after every successful shared write so
          that on-the-fly diff recording also works through the plain
          [Dsm.write_*] API.  [None] for all non-recording protocols. *)
  on_local_read : ('rt -> node:int -> page:int -> unit) option;
      (** Called by the core read path after every successful shared read.
          Lets a per-access protocol (the quorum-based [sc_abd]) revoke the
          rights it granted so the next read faults again and re-runs its
          quorum round.  [None] for all page-grain protocols. *)
  on_page_init : ('rt -> node:int -> page:int -> unit) option;
      (** Called once per (node, page) when a page enters the protocol's
          custody: at [Dsm.malloc] for pages created under the protocol, and
          for every page after [Dsm.switch_protocol] consolidates into it.
          Runs in plain (non-fiber) context during setup; must not block.
          [sc_abd] uses it to seed its replica tags and clear the
          default home-node access rights.  [None] elsewhere. *)
}

type 'rt registry

val no_action : 'rt -> node:int -> lock:int -> unit
(** A lock hook that does nothing (strong-consistency protocols). *)

val create_registry : unit -> 'rt registry

val register : 'rt registry -> 'rt t -> int
(** [dsm_create_protocol]: returns the new protocol's identifier. *)

val find : 'rt registry -> int -> 'rt t
(** @raise Invalid_argument on an unknown id. *)

val find_by_name : 'rt registry -> string -> (int * 'rt t) option
val count : 'rt registry -> int
val all : 'rt registry -> (int * 'rt t) list

open Dsmpm2_sim
open Dsmpm2_mem

type detection = Page_fault | Inline_check
type model = Sequential | Release | Java

let model_to_string = function
  | Sequential -> "sequential"
  | Release -> "release"
  | Java -> "java"

let strict_coherence = function Sequential -> true | Release | Java -> false

type page_message = {
  page : int;
  data : bytes;
  grant : Access.t;
  ownership : bool;
  copyset : int list;
  sender : int;
  req_mode : Access.mode;
  sent_at : Time.t;
  span : int;
}

type 'rt t = {
  name : string;
  detection : detection;
  model : model;
  read_fault : 'rt -> node:int -> page:int -> unit;
  write_fault : 'rt -> node:int -> page:int -> unit;
  read_server : 'rt -> node:int -> page:int -> requester:int -> unit;
  write_server : 'rt -> node:int -> page:int -> requester:int -> unit;
  invalidate_server : 'rt -> node:int -> page:int -> sender:int -> unit;
  receive_page_server : 'rt -> node:int -> msg:page_message -> unit;
  lock_acquire : 'rt -> node:int -> lock:int -> unit;
  lock_release : 'rt -> node:int -> lock:int -> unit;
  on_local_write :
    ('rt -> node:int -> page:int -> offset:int -> value:int -> unit) option;
  on_local_read : ('rt -> node:int -> page:int -> unit) option;
  on_page_init : ('rt -> node:int -> page:int -> unit) option;
}

type 'rt registry = { mutable protocols : 'rt t array }

let no_action _ ~node:_ ~lock:_ = ()
let create_registry () = { protocols = [||] }

let register reg proto =
  let id = Array.length reg.protocols in
  reg.protocols <- Array.append reg.protocols [| proto |];
  id

let find reg id =
  if id < 0 || id >= Array.length reg.protocols then
    invalid_arg (Printf.sprintf "Protocol.find: unknown protocol id %d" id);
  reg.protocols.(id)

let find_by_name reg name =
  let rec search i =
    if i >= Array.length reg.protocols then None
    else if String.equal reg.protocols.(i).name name then Some (i, reg.protocols.(i))
    else search (i + 1)
  in
  search 0

let count reg = Array.length reg.protocols

let all reg = Array.to_list (Array.mapi (fun i p -> (i, p)) reg.protocols)

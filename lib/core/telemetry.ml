open Dsmpm2_sim
open Dsmpm2_pm2

(* --- sharing patterns (canonical; Analyze re-exports) --- *)

type pattern =
  | Private
  | Read_mostly
  | Single_writer
  | Producer_consumer
  | Migratory
  | False_sharing
  | Mixed

let pattern_to_string = function
  | Private -> "private"
  | Read_mostly -> "read-mostly"
  | Single_writer -> "single-writer"
  | Producer_consumer -> "producer-consumer"
  | Migratory -> "migratory"
  | False_sharing -> "false-sharing"
  | Mixed -> "mixed"

(* Pattern -> built-in protocol, following the paper's Table 2 roles:
   migratory data wants the accessing thread moved to it; false sharing
   wants a multiple-writer diff protocol; read-mostly and producer-consumer
   pages want updates pushed instead of replicas invalidated; a single
   writer with a private working set fits eager release consistency. *)
let recommended_protocol = function
  | Migratory -> Some "migrate_thread"
  | False_sharing -> Some "hbrc_mw"
  | Read_mostly -> Some "write_update"
  | Producer_consumer -> Some "write_update"
  | Single_writer -> Some "erc_sw"
  | Private | Mixed -> None

type profile = {
  pr_page : int;
  pr_protocol : string;
  pr_pattern : pattern;
  pr_read_faults : int;
  pr_write_faults : int;
  pr_readers : int list;
  pr_writers : int list;
  pr_diff_senders : int list;
  pr_transfers : int;
  pr_bytes : int;
  pr_invalidations : int;
}

(* --- the streaming classifier --- *)

module Pages = struct
  (* The accumulator keeps exactly the evidence the post-mortem heuristic
     needs, in streaming form: reader/writer/differ node {e sets} instead
     of occurrence lists, and the write sequence reduced to its last
     writer plus a running handoff count — a transition [n <> last] in the
     chronological write sequence is counted the moment it happens, which
     is precisely what replaying the sequence afterwards would count. *)
  type acc = {
    mutable c_protocol : string;
    mutable c_read_faults : int;
    mutable c_write_faults : int;
    c_readers : (int, unit) Hashtbl.t;
    c_writers : (int, unit) Hashtbl.t;
    c_differs : (int, unit) Hashtbl.t;
    mutable c_diffs : int; (* diffs received (one per Diff per page) *)
    mutable c_transfers : int;
    mutable c_send_bytes : int;
    mutable c_diff_bytes : int;
    mutable c_invalidations : int;
    mutable c_last_writer : int; (* -1 before the first write *)
    mutable c_handoffs : int; (* writer changes in the chronological order *)
  }

  type t = { tbl : (int, acc) Hashtbl.t }

  let create () = { tbl = Hashtbl.create 64 }

  let acc t page =
    match Hashtbl.find_opt t.tbl page with
    | Some a -> a
    | None ->
        let a =
          {
            c_protocol = "?";
            c_read_faults = 0;
            c_write_faults = 0;
            c_readers = Hashtbl.create 4;
            c_writers = Hashtbl.create 4;
            c_differs = Hashtbl.create 4;
            c_diffs = 0;
            c_transfers = 0;
            c_send_bytes = 0;
            c_diff_bytes = 0;
            c_invalidations = 0;
            c_last_writer = -1;
            c_handoffs = 0;
          }
        in
        Hashtbl.add t.tbl page a;
        a

  let note_write a node =
    Hashtbl.replace a.c_writers node ();
    if a.c_last_writer >= 0 && node <> a.c_last_writer then
      a.c_handoffs <- a.c_handoffs + 1;
    a.c_last_writer <- node

  let feed t ev =
    match ev with
    | Trace.Fault { node; page; protocol; mode } ->
        let a = acc t page in
        a.c_protocol <- protocol;
        if mode = "write" then begin
          a.c_write_faults <- a.c_write_faults + 1;
          note_write a node
        end
        else begin
          a.c_read_faults <- a.c_read_faults + 1;
          Hashtbl.replace a.c_readers node ()
        end
    | Trace.Page_send { page; protocol; bytes; _ } ->
        let a = acc t page in
        a.c_protocol <- protocol;
        a.c_transfers <- a.c_transfers + 1;
        a.c_send_bytes <- a.c_send_bytes + bytes
    | Trace.Page_install { page; protocol; _ } ->
        (* No classification evidence, but the protocol name is fresher. *)
        (acc t page).c_protocol <- protocol
    | Trace.Invalidate { page; protocol; _ } ->
        let a = acc t page in
        a.c_protocol <- protocol;
        a.c_invalidations <- a.c_invalidations + 1
    | Trace.Diff { page_list; bytes; sender; protocol; _ } ->
        let n = max 1 (List.length page_list) in
        List.iter
          (fun page ->
            let a = acc t page in
            a.c_protocol <- protocol;
            Hashtbl.replace a.c_differs sender ();
            a.c_diffs <- a.c_diffs + 1;
            a.c_diff_bytes <- a.c_diff_bytes + (bytes / n);
            note_write a sender)
          page_list
    | _ -> ()

  (* The classification heuristic, identical to the post-mortem analyzer's
     (in evidence-strength order):
     - one accessing node: private;
     - diffs from >= 2 nodes: tolerated false sharing;
     - no writers: read-mostly replication;
     - single writer with remote readers that repeatedly re-fetch:
       producer-consumer; single writer otherwise;
     - >= 2 writers: migratory when write access demonstrably hands off
       between nodes at least twice, otherwise mixed. *)
  let classify_acc a =
    let accessors = Hashtbl.copy a.c_readers in
    Hashtbl.iter (fun k () -> Hashtbl.replace accessors k ()) a.c_writers;
    if Hashtbl.length accessors <= 1 then Private
    else if Hashtbl.length a.c_differs >= 2 then False_sharing
    else
      match Hashtbl.length a.c_writers with
      | 0 -> Read_mostly
      | 1 ->
          let w = Hashtbl.fold (fun k () _ -> k) a.c_writers (-1) in
          let remote_readers =
            Hashtbl.fold (fun r () any -> any || r <> w) a.c_readers false
          in
          let produces = a.c_write_faults + a.c_diffs in
          if remote_readers && produces >= 2 && a.c_read_faults >= 2 then
            Producer_consumer
          else Single_writer
      | _ -> if a.c_handoffs >= 2 then Migratory else Mixed

  let sorted_keys tbl =
    Hashtbl.fold (fun k () acc -> k :: acc) tbl [] |> List.sort compare

  let profile_acc page a =
    {
      pr_page = page;
      pr_protocol = a.c_protocol;
      pr_pattern = classify_acc a;
      pr_read_faults = a.c_read_faults;
      pr_write_faults = a.c_write_faults;
      pr_readers = sorted_keys a.c_readers;
      pr_writers = sorted_keys a.c_writers;
      pr_diff_senders = sorted_keys a.c_differs;
      pr_transfers = a.c_transfers;
      pr_bytes = a.c_send_bytes + a.c_diff_bytes;
      pr_invalidations = a.c_invalidations;
    }

  let classify t page = Option.map classify_acc (Hashtbl.find_opt t.tbl page)
  let profile t page =
    Option.map (profile_acc page) (Hashtbl.find_opt t.tbl page)

  let profiles t =
    Hashtbl.fold (fun page a acc -> profile_acc page a :: acc) t.tbl []
    |> List.sort (fun a b ->
           compare
             (b.pr_read_faults + b.pr_write_faults, b.pr_bytes, a.pr_page)
             (a.pr_read_faults + a.pr_write_faults, a.pr_bytes, b.pr_page))

  let pages t = Hashtbl.fold (fun p _ acc -> p :: acc) t.tbl [] |> List.sort compare
end

(* --- the attached engine --- *)

type config = {
  thrash_window : int;
  thrash_span : Time.t;
  advice_min_faults : int;
  open_horizon : Time.t;
}

let default_config =
  {
    thrash_window = 8;
    thrash_span = Time.of_us 300.;
    advice_min_faults = 4;
    open_horizon = Time.of_us 50_000.;
  }

type thrash_report = {
  th_page : int;
  th_count : int;
  th_nodes : int list;
  th_span : Time.t;
}

type advice = {
  av_page : int;
  av_pattern : pattern;
  av_current : string;
  av_recommended : string;
}

type interval = {
  iv_installs : (int * int) list;
  iv_reclassified : int;
  iv_thrash : thrash_report list;
  iv_advice : advice list;
}

type proto_stats = { mutable pf_faults : int; pf_sketch : Sketch.t }

type t = {
  rt : Runtime.t;
  cfg : config;
  pgs : Pages.t;
  mutable seen : int; (* events observed, pre-sampling *)
  nd_faults : int array;
  protos : (string, proto_stats) Hashtbl.t;
  open_faults : (int, Time.t * string) Hashtbl.t; (* span -> (start, proto) *)
  class_cache : (int, pattern) Hashtbl.t; (* last known pattern per page *)
  mutable reclass_total : int;
  windows : (int, (Time.t * int) list ref) Hashtbl.t;
      (* page -> recent installs (at, node), newest first, <= thrash_window *)
  thrash_last : (int, Time.t) Hashtbl.t; (* page -> last thrash report *)
  mutable pending_thrash : thrash_report list; (* newest first *)
  advised : (int, string) Hashtbl.t; (* page -> recommendation issued *)
  interval_touched : (int, unit) Hashtbl.t;
  interval_installs : (int, int) Hashtbl.t;
  mutable interval_count : int;
}

(* Thrashing: the same windowed ping-pong detector the watchdog used to run
   over stored trace events, now fed from the live stream — [thrash_window]
   installs of one page within [thrash_span] across >= 2 nodes, re-reported
   only after a quiet period longer than the span. *)
let note_install t ~page ~node at =
  Hashtbl.replace t.interval_installs page
    (1 + Option.value ~default:0 (Hashtbl.find_opt t.interval_installs page));
  let win =
    match Hashtbl.find_opt t.windows page with
    | Some r -> r
    | None ->
        let r = ref [] in
        Hashtbl.add t.windows page r;
        r
  in
  let rec trim n = function
    | [] -> []
    | x :: rest -> if n <= 0 then [] else x :: trim (n - 1) rest
  in
  win := trim t.cfg.thrash_window ((at, node) :: !win);
  let entries = !win in
  if List.length entries >= t.cfg.thrash_window then begin
    let newest = fst (List.hd entries) in
    let oldest = fst (List.nth entries (List.length entries - 1)) in
    let span = Time.(newest - oldest) in
    let distinct = List.sort_uniq compare (List.map snd entries) in
    let last =
      Option.value ~default:Time.zero (Hashtbl.find_opt t.thrash_last page)
    in
    let quiet = Time.(newest - last) in
    if
      span <= t.cfg.thrash_span
      && List.length distinct >= 2
      && ((not (Hashtbl.mem t.thrash_last page)) || quiet > t.cfg.thrash_span)
    then begin
      Hashtbl.replace t.thrash_last page newest;
      t.pending_thrash <-
        {
          th_page = page;
          th_count = List.length entries;
          th_nodes = distinct;
          th_span = span;
        }
        :: t.pending_thrash
    end
  end

let touch t page = Hashtbl.replace t.interval_touched page ()

let proto_stats t name =
  match Hashtbl.find_opt t.protos name with
  | Some ps -> ps
  | None ->
      let ps = { pf_faults = 0; pf_sketch = Sketch.create () } in
      Hashtbl.add t.protos name ps;
      ps

(* The observer callback: pure bookkeeping, O(1) amortized per event.  No
   engine interaction, no shared RNG — attaching telemetry cannot perturb a
   seeded schedule. *)
let on_event t (entry : Trace.entry) ev =
  t.seen <- t.seen + 1;
  Pages.feed t.pgs ev;
  match ev with
  | Trace.Fault { node; page; protocol; _ } ->
      touch t page;
      if node >= 0 && node < Array.length t.nd_faults then
        t.nd_faults.(node) <- t.nd_faults.(node) + 1;
      let ps = proto_stats t protocol in
      ps.pf_faults <- ps.pf_faults + 1;
      if
        entry.Trace.span <> Trace.no_span
        && not (Hashtbl.mem t.open_faults entry.Trace.span)
      then
        Hashtbl.add t.open_faults entry.Trace.span (entry.Trace.at, protocol)
  | Trace.Page_install { node; page; _ } ->
      touch t page;
      note_install t ~page ~node entry.Trace.at;
      (match Hashtbl.find_opt t.open_faults entry.Trace.span with
      | Some (start, proto) ->
          Hashtbl.remove t.open_faults entry.Trace.span;
          Sketch.add (proto_stats t proto).pf_sketch
            (Time.to_us Time.(entry.Trace.at - start))
      | None -> ())
  | Trace.Migration _ -> (
      match Hashtbl.find_opt t.open_faults entry.Trace.span with
      | Some (start, proto) ->
          Hashtbl.remove t.open_faults entry.Trace.span;
          Sketch.add (proto_stats t proto).pf_sketch
            (Time.to_us Time.(entry.Trace.at - start))
      | None -> ())
  | Trace.Page_send { page; _ } | Trace.Invalidate { page; _ } ->
      touch t page
  | Trace.Diff { page_list; _ } -> List.iter (touch t) page_list
  | _ -> ()

(* --- attachment --- *)

type Runtime.attachment += Tele of t

let attach ?(config = default_config) rt =
  (match rt.Runtime.telemetry with
  | Some _ -> invalid_arg "Telemetry.attach: telemetry is already attached"
  | None -> ());
  let t =
    {
      rt;
      cfg = config;
      pgs = Pages.create ();
      seen = 0;
      nd_faults = Array.make (Runtime.nodes rt) 0;
      protos = Hashtbl.create 8;
      open_faults = Hashtbl.create 64;
      class_cache = Hashtbl.create 64;
      reclass_total = 0;
      windows = Hashtbl.create 64;
      thrash_last = Hashtbl.create 16;
      pending_thrash = [];
      advised = Hashtbl.create 16;
      interval_touched = Hashtbl.create 64;
      interval_installs = Hashtbl.create 64;
      interval_count = 0;
    }
  in
  Trace.set_observer (Monitor.trace rt) (fun entry ev -> on_event t entry ev);
  rt.Runtime.telemetry <- Some (Tele t);
  t

let find rt =
  match rt.Runtime.telemetry with Some (Tele t) -> Some t | _ -> None

let detach t =
  Trace.clear_observer (Monitor.trace t.rt);
  t.rt.Runtime.telemetry <- None

let config t = t.cfg
let events_seen t = t.seen
let pages t = t.pgs
let node_faults t = t.nd_faults
let reclassifications t = t.reclass_total
let intervals t = t.interval_count

let classification t =
  List.filter_map
    (fun page ->
      Option.map (fun p -> (page, p)) (Pages.classify t.pgs page))
    (Pages.pages t.pgs)

let protocols t =
  Hashtbl.fold (fun name ps acc -> (name, ps.pf_faults, ps.pf_sketch) :: acc)
    t.protos []
  |> List.sort (fun (a, _, _) (b, _, _) -> String.compare a b)

let fault_sketch t =
  Hashtbl.fold
    (fun _ ps acc ->
      Sketch.merge_into acc ps.pf_sketch;
      acc)
    t.protos (Sketch.create ())

let fault_percentile t p = Sketch.percentile (fault_sketch t) p

(* --- interval drain --- *)

let end_interval t =
  t.interval_count <- t.interval_count + 1;
  let now = Engine.now (Runtime.engine t.rt) in
  (* Abandon fault spans that never resolved (crashed or starved
     operations): without a horizon the open table would leak on faulted
     runs, and a stale open could mis-attribute a reused span id. *)
  let stale =
    Hashtbl.fold
      (fun span (start, _) acc ->
        if Time.(now - start) > t.cfg.open_horizon then span :: acc else acc)
      t.open_faults []
  in
  List.iter (Hashtbl.remove t.open_faults) stale;
  (* Classification churn and fresh advice, over the pages touched this
     interval only. *)
  let reclass = ref 0 in
  let fresh_advice = ref [] in
  Hashtbl.iter
    (fun page () ->
      match Pages.profile t.pgs page with
      | None -> ()
      | Some pr ->
          (match Hashtbl.find_opt t.class_cache page with
          | Some old when old <> pr.pr_pattern ->
              incr reclass;
              Hashtbl.replace t.class_cache page pr.pr_pattern
          | Some _ -> ()
          | None -> Hashtbl.add t.class_cache page pr.pr_pattern);
          if pr.pr_read_faults + pr.pr_write_faults >= t.cfg.advice_min_faults
          then
            match recommended_protocol pr.pr_pattern with
            | Some r
              when r <> pr.pr_protocol
                   && Hashtbl.find_opt t.advised page <> Some r ->
                Hashtbl.replace t.advised page r;
                fresh_advice :=
                  {
                    av_page = page;
                    av_pattern = pr.pr_pattern;
                    av_current = pr.pr_protocol;
                    av_recommended = r;
                  }
                  :: !fresh_advice
            | _ -> ())
    t.interval_touched;
  t.reclass_total <- t.reclass_total + !reclass;
  let installs =
    Hashtbl.fold (fun p c acc -> (p, c) :: acc) t.interval_installs []
    |> List.sort (fun (pa, ca) (pb, cb) ->
           let c = compare cb ca in
           if c <> 0 then c else compare pa pb)
  in
  let iv =
    {
      iv_installs = installs;
      iv_reclassified = !reclass;
      iv_thrash = List.rev t.pending_thrash;
      iv_advice =
        List.sort (fun a b -> compare a.av_page b.av_page) !fresh_advice;
    }
  in
  t.pending_thrash <- [];
  Hashtbl.reset t.interval_touched;
  Hashtbl.reset t.interval_installs;
  iv

(* --- snapshots --- *)

let advice_list t =
  Hashtbl.fold
    (fun page r acc ->
      match Pages.profile t.pgs page with
      | Some pr ->
          {
            av_page = page;
            av_pattern = pr.pr_pattern;
            av_current = pr.pr_protocol;
            av_recommended = r;
          }
          :: acc
      | None -> acc)
    t.advised []
  |> List.sort (fun a b -> compare a.av_page b.av_page)

let profile_to_json p =
  Json.Obj
    [
      ("page", Json.Int p.pr_page);
      ("protocol", Json.String p.pr_protocol);
      ("pattern", Json.String (pattern_to_string p.pr_pattern));
      ("read_faults", Json.Int p.pr_read_faults);
      ("write_faults", Json.Int p.pr_write_faults);
      ("readers", Json.List (List.map (fun n -> Json.Int n) p.pr_readers));
      ("writers", Json.List (List.map (fun n -> Json.Int n) p.pr_writers));
      ( "diff_senders",
        Json.List (List.map (fun n -> Json.Int n) p.pr_diff_senders) );
      ("transfers", Json.Int p.pr_transfers);
      ("bytes", Json.Int p.pr_bytes);
      ("invalidations", Json.Int p.pr_invalidations);
    ]

let to_json ?meta t =
  let rt = t.rt in
  let tr = Monitor.trace rt in
  let meta = match meta with Some m -> m | None -> Monitor.run_meta rt in
  Json.Obj
    [
      ("meta", Run_meta.to_json meta);
      ("sim_time_us", Json.Float (Pm2.now_us rt.Runtime.pm2));
      ("events_seen", Json.Int t.seen);
      ("intervals", Json.Int t.interval_count);
      ("reclassifications", Json.Int t.reclass_total);
      ( "node_faults",
        Json.List (Array.to_list (Array.map (fun n -> Json.Int n) t.nd_faults))
      );
      ( "protocols",
        Json.List
          (List.map
             (fun (name, faults, sk) ->
               Json.Obj
                 [
                   ("protocol", Json.String name);
                   ("faults", Json.Int faults);
                   ("latency_us", Sketch.to_json sk);
                 ])
             (protocols t)) );
      ("fault_latency_us", Sketch.to_json (fault_sketch t));
      ("pages", Json.List (List.map profile_to_json (Pages.profiles t.pgs)));
      ( "advice",
        Json.List
          (List.map
             (fun a ->
               Json.Obj
                 [
                   ("page", Json.Int a.av_page);
                   ("pattern", Json.String (pattern_to_string a.av_pattern));
                   ("current", Json.String a.av_current);
                   ("recommended", Json.String a.av_recommended);
                 ])
             (advice_list t)) );
      ( "trace",
        Json.Obj
          [
            ("recorded", Json.Int (Trace.recorded tr));
            ("stored", Json.Int (Trace.length tr));
            ("evicted", Json.Int (Trace.evicted tr));
            ( "capacity",
              match Trace.capacity tr with
              | Some c -> Json.Int c
              | None -> Json.Null );
            ("sampled_out", Json.Int (Trace.sampled_out tr));
          ] );
    ]

let pp_top ?(top = 10) ppf t =
  let rt = t.rt in
  let tr = Monitor.trace rt in
  Format.fprintf ppf "t=%10.1f us  events=%-9d pages=%-5d reclass=%d@."
    (Pm2.now_us rt.Runtime.pm2) t.seen
    (List.length (Pages.pages t.pgs))
    t.reclass_total;
  let cluster = fault_sketch t in
  if Sketch.count cluster > 0 then
    Format.fprintf ppf
      "cluster faults: %d done  p50 %8.1f  p90 %8.1f  p99 %8.1f  p999 %8.1f \
       us@."
      (Sketch.count cluster)
      (Sketch.percentile cluster 50.)
      (Sketch.percentile cluster 90.)
      (Sketch.percentile cluster 99.)
      (Sketch.percentile cluster 99.9);
  List.iter
    (fun (name, faults, sk) ->
      if Sketch.count sk > 0 then
        Format.fprintf ppf
          "  %-16s faults=%-7d p50 %8.1f  p99 %8.1f  p999 %8.1f us@." name
          faults
          (Sketch.percentile sk 50.)
          (Sketch.percentile sk 99.)
          (Sketch.percentile sk 99.9)
      else Format.fprintf ppf "  %-16s faults=%-7d@." name faults)
    (protocols t);
  Format.fprintf ppf "node faults:";
  Array.iteri (fun nd f -> Format.fprintf ppf " %d:%d" nd f) t.nd_faults;
  Format.fprintf ppf "@.";
  let hot = Pages.profiles t.pgs in
  if hot <> [] then begin
    Format.fprintf ppf "hot pages:@.";
    List.iteri
      (fun i p ->
        if i < top then
          Format.fprintf ppf
            "  page %-5d %-17s rf=%-6d wf=%-6d xfers=%-6d bytes=%-9d%s@."
            p.pr_page
            (pattern_to_string p.pr_pattern)
            p.pr_read_faults p.pr_write_faults p.pr_transfers p.pr_bytes
            (match recommended_protocol p.pr_pattern with
            | Some r when r <> p.pr_protocol -> " -> " ^ r
            | _ -> ""))
      hot
  end;
  Format.fprintf ppf "trace: recorded=%d stored=%d evicted=%d sampled_out=%d%s@."
    (Trace.recorded tr) (Trace.length tr) (Trace.evicted tr)
    (Trace.sampled_out tr)
    (match Trace.capacity tr with
    | Some c -> Printf.sprintf " cap=%d" c
    | None -> "")

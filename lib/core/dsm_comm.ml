open Dsmpm2_sim
open Dsmpm2_net
open Dsmpm2_pm2
open Dsmpm2_mem

type Rpc.payload +=
  | Page_request of {
      page : int;
      mode : Access.mode;
      requester : int;
      sent_at : Time.t;
      span : int;
    }
  | Page_data of Protocol.page_message
  | Invalidate of { page : int; sender : int; span : int }
  | Invalidate_batch of { pages : int list; sender : int; span : int }
  | Diffs of { diffs : Diff.t list; sender : int; release : bool }
  | Lock_op of { lock : int; node : int; tid : int }
  | Barrier_wait of { barrier : int; node : int }
  | Ack
  | Lock_error of string

type diff_handler =
  Runtime.t -> node:int -> diff:Diff.t -> sender:int -> release:bool -> unit

type diffs_handler =
  Runtime.t -> node:int -> diffs:Diff.t list -> sender:int -> release:bool -> unit

let set_diff_handler (rt : Runtime.t) ~protocol handler =
  Hashtbl.replace rt.diff_handlers protocol handler

let set_diffs_handler (rt : Runtime.t) ~protocol handler =
  Hashtbl.replace rt.diffs_batch_handlers protocol handler

let apply_diff_locally (rt : Runtime.t) ~node (diff : Diff.t) =
  let e = Runtime.entry rt ~node ~page:diff.Diff.page in
  let marcel = Runtime.marcel rt in
  Marcel.Mutex.lock marcel e.Page_table.entry_mutex;
  Diff.apply diff (Frame_store.frame (Runtime.store rt node) diff.Diff.page);
  Marcel.Mutex.unlock marcel e.Page_table.entry_mutex

let proto_name rt (e : Page_table.entry) =
  (Runtime.proto rt e.Page_table.protocol).Protocol.name

(* --- service handlers (each runs in a fresh Marcel thread on the
   destination node) --- *)

let handler_node rt = Marcel.node (Marcel.self (Runtime.marcel rt))

let on_request rt ~src:_ payload =
  match payload with
  | Page_request { page; mode; requester; sent_at; span } ->
      let node = handler_node rt in
      Monitor.with_thread_span rt span (fun () ->
          let e = Runtime.entry rt ~node ~page in
          if Monitor.enabled rt then
            Monitor.emit rt ~span
              (Trace.Page_request
                 {
                   node;
                   page;
                   protocol = proto_name rt e;
                   mode = Access.mode_to_string mode;
                   requester;
                 });
          (* Record the request-propagation stage when this node is (likely)
             the final server; forwarded requests are re-stamped per hop. *)
          if e.Page_table.prob_owner = node || e.Page_table.home = node then
            Stats.record rt.Runtime.instr_h.Instrument.h_stage_request
              Time.(Engine.now (Runtime.engine rt) - sent_at);
          let proto = Runtime.proto rt e.Page_table.protocol in
          (match mode with
          | Access.Read -> proto.Protocol.read_server rt ~node ~page ~requester
          | Access.Write -> proto.Protocol.write_server rt ~node ~page ~requester);
          (Ack, Driver.Request))
  | _ -> invalid_arg "Dsm_comm: bad payload for request service"

let on_send_page rt ~src:_ payload =
  match payload with
  | Page_data msg ->
      let node = handler_node rt in
      Monitor.with_thread_span rt msg.Protocol.span (fun () ->
          let e = Runtime.entry rt ~node ~page:msg.Protocol.page in
          let protocol = proto_name rt e in
          if Monitor.enabled rt then
            Monitor.emit rt ~span:msg.Protocol.span
              (Trace.Page_install
                 {
                   node;
                   page = msg.Protocol.page;
                   protocol;
                   sender = msg.Protocol.sender;
                   grant = Access.to_string msg.Protocol.grant;
                 });
          let transfer = Time.(Engine.now (Runtime.engine rt) - msg.Protocol.sent_at) in
          Stats.record rt.Runtime.instr_h.Instrument.h_stage_transfer transfer;
          Metrics.observe rt.Runtime.metrics ~node ~protocol
            Instrument.m_page_transfer transfer;
          let proto = Runtime.proto rt e.Page_table.protocol in
          proto.Protocol.receive_page_server rt ~node ~msg;
          (Ack, Driver.Request))
  | _ -> invalid_arg "Dsm_comm: bad payload for send_page service"

let invalidate_one rt ~node ~span ~sender page =
  let e = Runtime.entry rt ~node ~page in
  if Monitor.enabled rt then
    Monitor.emit rt ~span
      (Trace.Invalidate { node; page; protocol = proto_name rt e; sender });
  let proto = Runtime.proto rt e.Page_table.protocol in
  proto.Protocol.invalidate_server rt ~node ~page ~sender

let on_invalidate rt ~src:_ payload =
  match payload with
  | Invalidate { page; sender; span } ->
      let node = handler_node rt in
      Monitor.with_thread_span rt span (fun () ->
          invalidate_one rt ~node ~span ~sender page;
          (Ack, Driver.Request))
  | Invalidate_batch { pages; sender; span } ->
      let node = handler_node rt in
      Monitor.with_thread_span rt span (fun () ->
          List.iter (invalidate_one rt ~node ~span ~sender) pages;
          (Ack, Driver.Request))
  | _ -> invalid_arg "Dsm_comm: bad payload for invalidate service"

let on_diffs rt ~src:_ payload =
  match payload with
  | Diffs { diffs; sender; release } ->
      let node = handler_node rt in
      (* Partition the batch by protocol (order-preserving) so a protocol's
         batch handler sees the whole message at once — that is what lets a
         home coalesce the resulting third-party invalidations into one RPC
         per copyset node instead of one per page. *)
      let groups =
        List.fold_left
          (fun acc diff ->
            let e = Runtime.entry rt ~node ~page:diff.Diff.page in
            let proto = e.Page_table.protocol in
            match acc with
            | (p, ds) :: rest when p = proto -> (p, diff :: ds) :: rest
            | _ -> (proto, [ diff ]) :: acc)
          [] diffs
      in
      List.iter
        (fun (protocol, rev_ds) ->
          let ds = List.rev rev_ds in
          (* One trace event per protocol group, with the page list, so the
             post-mortem analyzer can attribute diff traffic per page and
             per protocol. *)
          if Monitor.enabled rt then
            Monitor.emit rt
              (Trace.Diff
                 {
                   node;
                   pages = List.length ds;
                   page_list = List.map (fun d -> d.Diff.page) ds;
                   bytes = List.fold_left (fun acc d -> acc + Diff.wire_bytes d) 0 ds;
                   sender;
                   release;
                   protocol = (Runtime.proto rt protocol).Protocol.name;
                 });
          match Hashtbl.find_opt rt.Runtime.diffs_batch_handlers protocol with
          | Some handler -> handler rt ~node ~diffs:ds ~sender ~release
          | None -> (
              match Hashtbl.find_opt rt.Runtime.diff_handlers protocol with
              | Some handler ->
                  List.iter (fun diff -> handler rt ~node ~diff ~sender ~release) ds
              | None -> List.iter (apply_diff_locally rt ~node) ds))
        (List.rev groups);
      (Ack, Driver.Request)
  | _ -> invalid_arg "Dsm_comm: bad payload for diffs service"

let on_lock_acquire rt ~src:_ payload =
  match payload with
  | Lock_op { lock; node; tid } ->
      if Monitor.enabled rt then
        Monitor.emit rt (Trace.Lock { node; lock; op = "acquire" });
      let ls = Runtime.lock_state rt lock in
      let marcel = Runtime.marcel rt in
      Marcel.Mutex.lock marcel ls.Runtime.lock_mutex;
      while ls.Runtime.lock_held do
        Marcel.Cond.wait marcel ls.Runtime.lock_queue ls.Runtime.lock_mutex
      done;
      ls.Runtime.lock_held <- true;
      ls.Runtime.lock_holder <- tid;
      ls.Runtime.lock_acquisitions <- ls.Runtime.lock_acquisitions + 1;
      Marcel.Mutex.unlock marcel ls.Runtime.lock_mutex;
      (Ack, Driver.Request)
  | _ -> invalid_arg "Dsm_comm: bad payload for lock_acquire service"

let on_lock_release rt ~src:_ payload =
  match payload with
  | Lock_op { lock; node; tid } ->
      if Monitor.enabled rt then
        Monitor.emit rt (Trace.Lock { node; lock; op = "release" });
      let ls = Runtime.lock_state rt lock in
      let marcel = Runtime.marcel rt in
      Marcel.Mutex.lock marcel ls.Runtime.lock_mutex;
      (* A bad release is the releasing thread's bug, not the cluster's:
         report it back over the RPC instead of killing the manager node
         (and with it the whole simulation).  The lock state is untouched,
         so every other thread keeps running. *)
      let error =
        if not ls.Runtime.lock_held then
          Some (Printf.sprintf "DSM lock %d: release while free" lock)
        else if ls.Runtime.lock_holder <> tid then
          Some
            (Printf.sprintf "DSM lock %d: thread %d released a lock held by thread %d"
               lock tid ls.Runtime.lock_holder)
        else None
      in
      (match error with
      | Some _ -> ()
      | None ->
          ls.Runtime.lock_held <- false;
          ls.Runtime.lock_holder <- -1;
          Marcel.Cond.signal marcel ls.Runtime.lock_queue);
      Marcel.Mutex.unlock marcel ls.Runtime.lock_mutex;
      (match error with
      | Some msg -> (Lock_error msg, Driver.Request)
      | None -> (Ack, Driver.Request))
  | _ -> invalid_arg "Dsm_comm: bad payload for lock_release service"

let on_barrier rt ~src:_ payload =
  match payload with
  | Barrier_wait { barrier; node } ->
      if Monitor.enabled rt then Monitor.emit rt (Trace.Barrier { node; barrier });
      let bs = Runtime.barrier_state rt barrier in
      let marcel = Runtime.marcel rt in
      Marcel.Mutex.lock marcel bs.Runtime.barrier_mutex;
      let generation = bs.Runtime.barrier_generation in
      bs.Runtime.barrier_arrived <- bs.Runtime.barrier_arrived + 1;
      if bs.Runtime.barrier_arrived = bs.Runtime.barrier_parties then begin
        bs.Runtime.barrier_arrived <- 0;
        bs.Runtime.barrier_generation <- generation + 1;
        Marcel.Cond.broadcast marcel bs.Runtime.barrier_cond
      end
      else
        while bs.Runtime.barrier_generation = generation do
          Marcel.Cond.wait marcel bs.Runtime.barrier_cond bs.Runtime.barrier_mutex
        done;
      Marcel.Mutex.unlock marcel bs.Runtime.barrier_mutex;
      (Ack, Driver.Request)
  | _ -> invalid_arg "Dsm_comm: bad payload for barrier service"

let init (rt : Runtime.t) =
  (match rt.Runtime.services with
  | Some _ -> invalid_arg "Dsm_comm.init: already initialised"
  | None -> ());
  let rpc = Runtime.rpc rt in
  let services =
    {
      Runtime.srv_request = Rpc.register rpc ~name:"dsm.request" (on_request rt);
      srv_send_page = Rpc.register rpc ~name:"dsm.send_page" (on_send_page rt);
      srv_invalidate = Rpc.register rpc ~name:"dsm.invalidate" (on_invalidate rt);
      srv_diffs = Rpc.register rpc ~name:"dsm.diffs" (on_diffs rt);
      srv_lock_acquire = Rpc.register rpc ~name:"dsm.lock_acquire" (on_lock_acquire rt);
      srv_lock_release = Rpc.register rpc ~name:"dsm.lock_release" (on_lock_release rt);
      srv_barrier = Rpc.register rpc ~name:"dsm.barrier" (on_barrier rt);
    }
  in
  rt.Runtime.services <- Some services

(* --- senders --- *)

let send_request rt ~to_ ~page ~mode ~requester =
  let srv = (Runtime.services rt).Runtime.srv_request in
  Rpc.oneway (Runtime.rpc rt) ~dst:to_ ~service:srv ~cost:Driver.Request
    (Page_request
       {
         page;
         mode;
         requester;
         sent_at = Engine.now (Runtime.engine rt);
         span = Monitor.current_span rt;
       })

let send_page rt ~to_ ~page ~grant ~ownership ~copyset ~req_mode =
  let node = Runtime.self_node rt in
  let data = Bytes.copy (Frame_store.frame (Runtime.store rt node) page) in
  let span = Monitor.current_span rt in
  let msg =
    {
      Protocol.page;
      data;
      grant;
      ownership;
      copyset;
      sender = node;
      req_mode;
      sent_at = Engine.now (Runtime.engine rt);
      span;
    }
  in
  Stats.bump rt.Runtime.instr_h.Instrument.h_pages_sent;
  let protocol = proto_name rt (Runtime.entry rt ~node ~page) in
  Metrics.incr rt.Runtime.metrics ~node ~protocol Instrument.m_pages_sent;
  if Monitor.enabled rt then
    Monitor.emit rt ~span
      (Trace.Page_send
         {
           node;
           page;
           protocol;
           dst = to_;
           bytes = Bytes.length data;
           grant = Access.to_string grant;
         });
  let srv = (Runtime.services rt).Runtime.srv_send_page in
  Rpc.oneway (Runtime.rpc rt) ~dst:to_ ~service:srv
    ~cost:(Driver.Bulk (Bytes.length data))
    (Page_data msg)

let call_invalidate rt ?span ~to_ ~page () =
  let node = Runtime.self_node rt in
  let h = rt.Runtime.instr_h in
  let span = match span with Some s -> s | None -> Monitor.current_span rt in
  Stats.bump h.Instrument.h_invalidations;
  Stats.bump h.Instrument.h_invalidate_rpcs;
  Stats.bump h.Instrument.hm_invalidations.(node);
  let srv = (Runtime.services rt).Runtime.srv_invalidate in
  ignore
    (Rpc.call (Runtime.rpc rt) ~dst:to_ ~service:srv ~cost:Driver.Request
       (Invalidate { page; sender = node; span }))

let call_invalidate_batch rt ?span ~to_ ~pages () =
  match pages with
  | [] -> ()
  | [ page ] -> call_invalidate rt ?span ~to_ ~page ()
  | pages ->
      let node = Runtime.self_node rt in
      let h = rt.Runtime.instr_h in
      let span = match span with Some s -> s | None -> Monitor.current_span rt in
      let n = List.length pages in
      Stats.bump_by h.Instrument.h_invalidations n;
      Stats.bump h.Instrument.h_invalidate_rpcs;
      Stats.bump_by h.Instrument.hm_invalidations.(node) n;
      let srv = (Runtime.services rt).Runtime.srv_invalidate in
      ignore
        (Rpc.call (Runtime.rpc rt) ~dst:to_ ~service:srv ~cost:Driver.Request
           (Invalidate_batch { pages; sender = node; span }))

let call_diffs rt ~to_ ~diffs ~release =
  let node = Runtime.self_node rt in
  let h = rt.Runtime.instr_h in
  let bytes = List.fold_left (fun acc d -> acc + Diff.wire_bytes d) 0 diffs in
  Stats.bump_by h.Instrument.h_diffs_sent (List.length diffs);
  Stats.bump_by h.Instrument.h_diff_bytes bytes;
  Stats.bump_by h.Instrument.hm_diffs.(node) (List.length diffs);
  let srv = (Runtime.services rt).Runtime.srv_diffs in
  ignore
    (Rpc.call (Runtime.rpc rt) ~dst:to_ ~service:srv ~cost:(Driver.Bulk bytes)
       (Diffs { diffs; sender = node; release }))

(** The DSM page manager's distributed table (one instance per node).

    Following the paper's design discussion (Section 2.2), the entry layout
    carries the fields "common to virtually all protocols" — access rights,
    probable owner, home node, copyset, the protocol id — plus an {e
    extensible} slot ([ext], and a per-node [node_ext] map) so that "new
    information fields can be added, as needed by the protocols of interest"
    without touching the generic core.  A field may have different semantics
    in different protocols and may be left unused by some (e.g. [prob_owner]
    is the dynamic-manager chain for [li_hudak] but frozen at [home] for the
    home-based protocols).

    Entries also carry the fault-coalescing state ([faulting] + condition)
    that makes the table safe for an arbitrary number of concurrent threads
    per node: concurrent faults on one page coalesce, faults on different
    pages proceed in parallel. *)

open Dsmpm2_sim
open Dsmpm2_pm2

type ext = ..
(** Protocol-specific page or node state. *)

type ext += No_ext

type entry = {
  page : int;
  mutable rights : Dsmpm2_mem.Access.t;
  mutable prob_owner : int;
  mutable home : int;
  mutable copyset : int list;  (** sorted, without duplicates *)
  mutable protocol : int;
  mutable faulting : bool;  (** a local fault is in progress on this page *)
  mutable pinned : bool;
      (** a fault was just satisfied and the faulting thread has not yet
          retried its access; remote services must wait (see
          {!Protocol_lib.wait_for_service}) so the local access cannot be
          starved by back-to-back ownership requests *)
  fault_done : Marcel.Cond.t;
  entry_mutex : Marcel.Mutex.t;  (** serialises server-side transitions *)
  mutable twin : bytes option;
  mutable ext : ext;
}

type t

exception Not_mapped of int
(** Raised when touching a page no allocation ever declared: the simulated
    equivalent of a segmentation fault outside the DSM area. *)

val create : node:int -> t
val node : t -> int

val set_metrics : t -> Metrics.t -> unit
(** Attaches the runtime's metrics registry; [declare] then counts mapped
    pages per node ("page.mapped"). *)

val declare :
  t ->
  page:int ->
  home:int ->
  owner:int ->
  protocol:int ->
  rights:Dsmpm2_mem.Access.t ->
  entry
(** Adds an entry for [page]; raises [Invalid_argument] if already present. *)

val find : t -> int -> entry
(** @raise Not_mapped if the page was never declared. *)

val find_opt : t -> int -> entry option
val mem : t -> int -> bool
val entries : t -> entry list
(** Sorted by page number. *)

val copyset_add : entry -> int -> unit
val copyset_remove : entry -> int -> unit

val node_ext : t -> protocol:int -> ext
(** Per-(node, protocol) state; [No_ext] when never set. *)

val set_node_ext : t -> protocol:int -> ext -> unit

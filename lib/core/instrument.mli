(** Well-known instrumentation keys and report formatting.

    The DSM layers time each stage of a remote access with the names below;
    the Table 3 / Table 4 benches print breakdowns straight from these
    counters.  All stages are {!Dsmpm2_sim.Stats} duration spans. *)

open Dsmpm2_sim

val stage_fault : string
(** Page-fault detection (signal catch + decode in the paper): 11 us. *)

val stage_request : string
(** Page request propagation, including forwarding hops. *)

val stage_transfer : string
(** Page (or migration payload) transfer time. *)

val stage_overhead_server : string
(** Owner/home-side protocol processing. *)

val stage_overhead_client : string
(** Requester-side page installation and table update. *)

val stage_migration : string
(** Thread-migration time (Table 4). *)

val stage_total : string
(** Whole fault, detection to resumed access. *)

val read_faults : string
val write_faults : string
val pages_sent : string

val invalidations : string
(** Pages invalidated (one per (page, target) pair, batched or not). *)

val invalidate_rpcs : string
(** Invalidation RPCs put on the wire: with batching, one per target node
    per release/flush — the message-economy counter. *)

val diffs_sent : string
val diff_bytes : string
val check_misses : string
val inline_checks : string

val lock_wait : string
(** Client-observed DSM lock acquisition latency (request to grant). *)

val barrier_wait : string
(** Client-observed barrier latency (arrival to release). *)

(** {2 Labeled metric names}

    Series recorded in the runtime's {!Dsmpm2_sim.Metrics} registry with
    node and protocol labels. *)

val m_fault_latency : string
(** Whole-fault latency histogram, per (node, protocol). *)

val m_read_faults : string
val m_write_faults : string
val m_pages_sent : string
val m_page_transfer : string
(** Transfer-stage latency histogram, per (node, protocol). *)

val m_invalidations : string
val m_diffs : string
val m_lock_wait : string
val m_barrier_wait : string

(** {2 Interned hot-path handles}

    Pre-resolved {!Dsmpm2_sim.Stats} cells for the counters and spans the
    per-message and per-fault paths touch.  Interned once per runtime (at
    {!Runtime.create} time), so bumping them is an array/cell write with no
    string hashing.  Handles stay valid across [Stats.reset] /
    [Metrics.reset]. *)

type handles = {
  h_read_faults : Stats.counter;
  h_write_faults : Stats.counter;
  h_inline_checks : Stats.counter;
  h_check_misses : Stats.counter;
  h_pages_sent : Stats.counter;
  h_invalidations : Stats.counter;
  h_invalidate_rpcs : Stats.counter;
  h_diffs_sent : Stats.counter;
  h_diff_bytes : Stats.counter;
  h_stage_fault : Stats.histogram;
  h_stage_request : Stats.histogram;
  h_stage_transfer : Stats.histogram;
  h_stage_total : Stats.histogram;
  hm_invalidations : Stats.counter array;  (** per node: {!m_invalidations} *)
  hm_diffs : Stats.counter array;  (** per node: {!m_diffs} *)
}

val intern : Stats.t -> Metrics.t -> nodes:int -> handles
(** Resolve every handle against the given registries.  The per-node arrays
    are indexed by node id in [0, nodes). *)

val stages : string list
(** All stage span names, in pipeline order. *)

val pp_page_breakdown : Format.formatter -> Stats.t -> unit
(** Mean per-stage costs in the row layout of the paper's Table 3. *)

val pp_migration_breakdown : Format.formatter -> Stats.t -> unit
(** Mean per-stage costs in the row layout of the paper's Table 4. *)

val pp_stage_percentiles : Format.formatter -> Stats.t -> unit
(** The latency distribution (p50/p90/p99/max) of every stage with
    samples — the tail-latency view the mean-only tables hide. *)

open Dsmpm2_sim
open Dsmpm2_pm2
open Dsmpm2_mem

type costs = {
  page_fault_us : float;
  protocol_server_us : float;
  protocol_client_us : float;
  migration_protocol_us : float;
  inline_check_us : float;
}

let default_costs =
  {
    page_fault_us = 11.;
    protocol_server_us = 13.;
    protocol_client_us = 13.;
    migration_protocol_us = 1.;
    inline_check_us = 0.05;
  }

type lock_state = {
  lock_id : int;
  lock_manager : int;
  mutable lock_protocol : int;
  mutable lock_held : bool;
  mutable lock_holder : int;
  lock_queue : Marcel.Cond.t;
  lock_mutex : Marcel.Mutex.t;
  mutable lock_acquisitions : int;
  mutable lock_ext : Page_table.ext;
}

type barrier_state = {
  barrier_id : int;
  barrier_manager : int;
  barrier_parties : int;
  mutable barrier_protocol : int;
  mutable barrier_arrived : int;
  mutable barrier_generation : int;
  barrier_cond : Marcel.Cond.t;
  barrier_mutex : Marcel.Mutex.t;
}

type services = {
  srv_request : Rpc.service;
  srv_send_page : Rpc.service;
  srv_invalidate : Rpc.service;
  srv_diffs : Rpc.service;
  srv_lock_acquire : Rpc.service;
  srv_lock_release : Rpc.service;
  srv_barrier : Rpc.service;
}

(* Open slot for layers above the runtime (Telemetry) to park per-DSM
   state without a dependency from [Runtime] on them: each layer extends
   the variant with its own constructor and pattern-matches it back out. *)
type attachment = ..

type t = {
  pm2 : Pm2.t;
  geo : Page.geometry;
  tables : Page_table.t array;
  stores : Frame_store.t array;
  registry : t Protocol.registry;
  mutable default_protocol : int;
  costs : costs;
  instr : Stats.t;
  metrics : Metrics.t;
  instr_h : Instrument.handles;
  mutable services : services option;
  locks : (int, lock_state) Hashtbl.t;
  mutable next_lock : int;
  barriers : (int, barrier_state) Hashtbl.t;
  mutable next_barrier : int;
  mutable fault_loop_limit : int;
  diff_handlers : (int, diff_handler) Hashtbl.t;
  diffs_batch_handlers : (int, diffs_handler) Hashtbl.t;
  mutable history : History.t option;
  mutable watch : watch_hooks option;
  mutable telemetry : attachment option;
}

and diff_handler = t -> node:int -> diff:Diff.t -> sender:int -> release:bool -> unit

and diffs_handler =
  t -> node:int -> diffs:Diff.t list -> sender:int -> release:bool -> unit

and watch_hooks = {
  wh_wait : node:int -> tid:int -> target:int -> unit;
  wh_wake : node:int -> tid:int -> target:int -> unit;
  wh_rearm : unit -> unit;
}

let create ?(costs = default_costs) pm2 =
  let n = Pm2.nodes pm2 in
  let geo = Page.geometry ~size:(Isoalloc.page_size (Pm2.iso pm2)) in
  let metrics = Metrics.create () in
  let instr = Stats.create () in
  {
    pm2;
    geo;
    tables =
      Array.init n (fun node ->
          let table = Page_table.create ~node in
          Page_table.set_metrics table metrics;
          table);
    stores = Array.init n (fun _ -> Frame_store.create ~geometry:geo);
    registry = Protocol.create_registry ();
    default_protocol = 0;
    costs;
    instr;
    metrics;
    instr_h = Instrument.intern instr metrics ~nodes:n;
    services = None;
    locks = Hashtbl.create 16;
    next_lock = 0;
    barriers = Hashtbl.create 16;
    next_barrier = 0;
    fault_loop_limit = 1000;
    diff_handlers = Hashtbl.create 8;
    diffs_batch_handlers = Hashtbl.create 8;
    history = None;
    watch = None;
    telemetry = None;
  }

(* The notify helpers take unboxed labeled ints, so a call site costs one
   option match and nothing else while no watcher is attached. *)
let notify_wait t ~node ~tid ~target =
  match t.watch with None -> () | Some w -> w.wh_wait ~node ~tid ~target

let notify_wake t ~node ~tid ~target =
  match t.watch with None -> () | Some w -> w.wh_wake ~node ~tid ~target

let notify_rearm t =
  match t.watch with None -> () | Some w -> w.wh_rearm ()

let nodes t = Pm2.nodes t.pm2
let marcel t = Pm2.marcel t.pm2
let engine t = Pm2.engine t.pm2
let rpc t = Pm2.rpc t.pm2
let self_node t = Pm2.self_node t.pm2
let table t node = t.tables.(node)
let store t node = t.stores.(node)
let proto t id = Protocol.find t.registry id

let services t =
  match t.services with
  | Some s -> s
  | None -> failwith "Runtime.services: Dsm_comm.init has not run"

let entry t ~node ~page = Page_table.find t.tables.(node) page

let lock_state t id =
  match Hashtbl.find_opt t.locks id with
  | Some l -> l
  | None -> invalid_arg (Printf.sprintf "Runtime.lock_state: unknown lock %d" id)

let barrier_state t id =
  match Hashtbl.find_opt t.barriers id with
  | Some b -> b
  | None -> invalid_arg (Printf.sprintf "Runtime.barrier_state: unknown barrier %d" id)

let record_history t ~start kind =
  match t.history with
  | None -> ()
  | Some h ->
      History.record h
        ~tid:(Marcel.tid (Marcel.self (marcel t)))
        ~node:(self_node t) ~start
        ~finish:(Engine.now (engine t))
        kind

(** Execution-history recording and consistency checking.

    The conformance harness records every shared read, write and
    synchronization operation an application performs, then validates the
    finished history against the consistency model the page protocol
    declares ({!Protocol.model}).  Recording is off by default
    (see [Dsm.enable_history]) and piggybacks on the access paths, so an
    unchecked run pays nothing.

    The checker builds the happens-before order from program order, lock
    release-to-acquire edges and barrier generations, treats the initial
    zero value of every word as a virtual write that happens-before
    everything, and flags each read that no write in the history can legally
    explain:

    - all models: a read may not return a write that another visible write
      overwrote in happens-before order, and when a read's source write is
      unambiguous, later reads of that thread may not step causally
      backwards past it;
    - [Sequential] additionally enforces the per-location real-time rule: a
      write that completed entirely before the read began masks every write
      that completed entirely before it. *)

open Dsmpm2_sim

type kind =
  | Read of { addr : int; value : int }
  | Write of { addr : int; value : int }
  | Acquire of { lock : int }
  | Release of { lock : int }
  | Barrier of { barrier : int; parties : int }

type op = {
  index : int;  (** global record order; the checker's notion of "before" *)
  tid : int;
  node : int;  (** node the operation completed on *)
  start : Time.t;
  mutable finish : Time.t;  (** widened by {!extend_finish} for blocking hooks *)
  kind : kind;
}

type t

val create : unit -> t

val record :
  t -> tid:int -> node:int -> start:Time.t -> finish:Time.t -> kind -> unit

val length : t -> int

val extend_finish : t -> tid:int -> Time.t -> unit
(** Widens the real-time window of thread [tid]'s most recent op to end no
    earlier than the given time.  The core write path uses it after a
    blocking [on_local_write] hook (the quorum protocols' put round) so the
    write's window covers its whole propagation — required for the
    [Sequential] per-location real-time rule to hold for protocols whose
    writes only take effect at quorum.  Widening can only relax that rule,
    so it is always sound. *)

val ops : t -> op list
(** In record order. *)

val fingerprint : t -> int
(** Order-sensitive hash of the whole history; two runs with the same seed
    must produce the same fingerprint (the replay-determinism check). *)

val op_to_string : op -> string
val kind_to_string : kind -> string

type violation = {
  v_op : op;  (** the read the checker could not explain *)
  v_message : string;
  v_witnesses : op list;
      (** the minimized evidence: every write to the offending address, in
          record order *)
}

val violation_to_string : violation -> string

val check : model:Protocol.model -> t -> violation list
(** Validates a completed history; returns the violations in record order
    (empty for a conforming run). *)

(** DSM synchronization objects with consistency hooks.

    Locks and barriers are the synchronization points at which weak
    consistency models take their consistency actions (paper Section 2.2).
    Each object lives on a manager node and is driven by RPC; around every
    operation the protocol's [lock_acquire]/[lock_release] actions run on
    the {e client} node:

    - lock acquire: manager grant first, then the [lock_acquire] action;
    - lock release: the [lock_release] action first, then the manager
      release;
    - barrier: [lock_release] before arriving, [lock_acquire] after the
      barrier opens (a barrier is a release followed by an acquire).

    The hook receives a synthetic negative id for barriers so protocols can
    tell the two apart if they care. *)

val lock_create : Runtime.t -> ?protocol:int -> ?manager:int -> unit -> int
(** [manager] defaults to [id mod nodes]; [protocol] (whose hooks the lock
    triggers) defaults to the runtime's default protocol at creation time. *)

exception Lock_error of string
(** A release the manager rejected: released while free, or released by a
    thread that does not hold the lock.  Raised in the releasing fiber (the
    error travels back over the release RPC); the manager's state is
    untouched and every other node keeps running. *)

val lock_acquire : Runtime.t -> int -> unit

val lock_release : Runtime.t -> int -> unit
(** @raise Lock_error on release-while-free or wrong-holder release. *)

val with_lock : Runtime.t -> int -> (unit -> 'a) -> 'a

val lock_acquisitions : Runtime.t -> int -> int
(** How many times the lock was granted (for tests and reports). *)

val barrier_create : Runtime.t -> ?protocol:int -> ?manager:int -> parties:int -> unit -> int
val barrier_wait : Runtime.t -> int -> unit

val barrier_hook_id : int -> int
(** The synthetic lock id passed to protocol hooks for barrier [bid].
    Always strictly negative, so it can never collide with a real lock id
    (which are non-negative) in a protocol's hook-state tables. *)

val hook_target : int -> [ `Lock of int | `Barrier of int ]
(** Decodes the id a [lock_acquire]/[lock_release] hook received back to
    the synchronization object that triggered it. *)

open Dsmpm2_sim
open Dsmpm2_pm2

type ext = ..
type ext += No_ext

type entry = {
  page : int;
  mutable rights : Dsmpm2_mem.Access.t;
  mutable prob_owner : int;
  mutable home : int;
  mutable copyset : int list;
  mutable protocol : int;
  mutable faulting : bool;
  mutable pinned : bool;
  fault_done : Marcel.Cond.t;
  entry_mutex : Marcel.Mutex.t;
  mutable twin : bytes option;
  mutable ext : ext;
}

type t = {
  table_node : int;
  entries : (int, entry) Hashtbl.t;
  node_exts : (int, ext) Hashtbl.t;
  mutable table_metrics : Metrics.t option;
}

exception Not_mapped of int

let create ~node =
  {
    table_node = node;
    entries = Hashtbl.create 256;
    node_exts = Hashtbl.create 8;
    table_metrics = None;
  }

let node t = t.table_node
let set_metrics t m = t.table_metrics <- Some m

let declare t ~page ~home ~owner ~protocol ~rights =
  if Hashtbl.mem t.entries page then
    invalid_arg (Printf.sprintf "Page_table.declare: page %d already mapped" page);
  (match t.table_metrics with
  | Some m -> Metrics.incr m ~node:t.table_node "page.mapped"
  | None -> ());
  let entry =
    {
      page;
      rights;
      prob_owner = owner;
      home;
      copyset = [];
      protocol;
      faulting = false;
      pinned = false;
      fault_done = Marcel.Cond.create ();
      entry_mutex = Marcel.Mutex.create ();
      twin = None;
      ext = No_ext;
    }
  in
  Hashtbl.add t.entries page entry;
  entry

let find t page =
  match Hashtbl.find_opt t.entries page with
  | Some e -> e
  | None -> raise (Not_mapped page)

let find_opt t page = Hashtbl.find_opt t.entries page
let mem t page = Hashtbl.mem t.entries page

let entries t =
  Hashtbl.fold (fun _ e acc -> e :: acc) t.entries []
  |> List.sort (fun a b -> compare a.page b.page)

let copyset_add e n =
  if not (List.mem n e.copyset) then
    e.copyset <- List.sort compare (n :: e.copyset)

let copyset_remove e n = e.copyset <- List.filter (fun m -> m <> n) e.copyset

let node_ext t ~protocol =
  match Hashtbl.find_opt t.node_exts protocol with Some e -> e | None -> No_ext

let set_node_ext t ~protocol ext = Hashtbl.replace t.node_exts protocol ext

(** DSM-PM2: the user-facing programming interface.

    Mirrors the paper's [pm2_dsm_*]/[dsm_*] API: build a runtime for a
    cluster, register (or pick built-in) consistency protocols, allocate
    shared memory — statically or with [malloc] and per-region protocol
    attributes — spawn threads on nodes, and access shared data with
    [read_int]/[write_int].  Access detection is performed in software: every
    access checks the local page-table entry and triggers the page protocol's
    fault action on a miss, charging the paper's fault cost (or, for
    inline-check protocols, a per-access locality-check cost).

    A typical program:
    {[
      let dsm = Dsm.create ~nodes:4 ~driver:Dsmpm2_net.Driver.bip_myrinet () in
      let li_hudak = Dsmpm2_protocols.Builtin.register_all dsm |> ... in
      Dsm.set_default_protocol dsm li_hudak;
      let x = Dsm.malloc dsm 8 in
      for node = 0 to 3 do
        ignore (Dsm.spawn dsm ~node (fun () -> ... Dsm.read_int dsm x ...))
      done;
      Dsm.run dsm
    ]} *)

open Dsmpm2_sim
open Dsmpm2_net
open Dsmpm2_pm2
open Dsmpm2_mem

type t = Runtime.t

val create :
  ?costs:Runtime.costs ->
  ?tie_seed:int ->
  ?jitter:(src:int -> dst:int -> Time.t -> Time.t) ->
  ?page_size:int ->
  nodes:int ->
  driver:Driver.t ->
  unit ->
  t
(** Builds the full stack (engine, Marcel, network, RPC, DSM services) for a
    simulated cluster of [nodes] nodes over [driver].  [tie_seed] enables
    seeded schedule perturbation (see {!Engine.create}): each seed explores a
    distinct legal interleaving of same-time events and replays identically,
    the foundation of the [dsm_cli check] conformance harness. *)

val pm2 : t -> Pm2.t
val nodes : t -> int
val stats : t -> Stats.t
val engine : t -> Engine.t

(** {1 Protocols} *)

val create_protocol : t -> t Protocol.t -> int
(** [dsm_create_protocol]: registers a protocol and returns its id. *)

val set_default_protocol : t -> int -> unit
(** [pm2_dsm_set_default_protocol]. *)

val default_protocol : t -> int
val protocol_by_name : t -> string -> int option
val protocol_name : t -> int -> string

(** {1 Shared memory} *)

type home_policy =
  | Round_robin  (** page [i] of the region lives on node [i mod nodes] *)
  | On_node of int  (** all pages on one node *)
  | Block  (** contiguous chunks of pages per node *)

val malloc : t -> ?protocol:int -> ?home:home_policy -> int -> int
(** [dsm_malloc]: allocates [size] bytes of shared memory (rounded up to
    whole pages, so regions never share a page) and returns the start
    address, valid on every node (iso-address).  [protocol] is the region's
    creation attribute, defaulting to the default protocol; [home] places
    the pages (default [Round_robin]). *)

val region_pages : t -> addr:int -> size:int -> int list
(** Page numbers backing a region, for reports and tests. *)

type attr = { attr_protocol : int option; attr_home : home_policy }
(** [dsm_attr_t]: allocation attributes, as in the paper's
    [dsm_attr_set_protocol] example. *)

val attr : ?protocol:int -> ?home:home_policy -> unit -> attr
val malloc_attr : t -> attr -> int -> int
(** [dsm_malloc(size, &attr)]. *)

val switch_protocol : t -> addr:int -> size:int -> protocol:int -> unit
(** Re-associates a memory area with another protocol.  The paper (Section
    2.3) notes this "can be achieved through a careful synchronization at
    the program level ... one has to keep the corresponding memory area from
    being accessed by the application threads during the protocol switch,
    since this operation involves modifications in the distributed page
    table on all nodes".  This call performs those table modifications: it
    consolidates each page's authoritative copy on its home node, drops
    every replica, clears owner chains and copysets, and installs the new
    protocol id on every node.

    The caller is responsible for quiescence (e.g. via a barrier): the call
    raises [Invalid_argument] if any page of the area has a fault in flight
    or an unflushed twin (release the enclosing locks first). *)

val read_int : t -> int -> int
(** Reads the shared 8-byte word at the address, from the calling thread's
    node, faulting (and running protocol actions) as needed. *)

val write_int : t -> int -> int -> unit
val read_byte : t -> int -> int
val write_byte : t -> int -> int -> unit

val ensure_access : t -> addr:int -> mode:Access.mode -> unit
(** The access-detection path, exposed for compiler-target use: guarantees
    the calling thread's node holds rights for [mode] on the page of [addr]
    before returning (the paper's get/put primitives build on this). *)

val unsafe_peek : t -> node:int -> int -> int
(** Reads a word directly from one node's frame store, without rights
    checks, protocol actions or cost charging.  For tests and debugging
    only: this is the post-mortem view of one node's memory. *)

val unsafe_rights : t -> node:int -> addr:int -> Access.t

(** {1 Conformance history} *)

val enable_history : t -> History.t
(** Turns on execution-history recording (idempotent): from now on every
    shared read/write (at word granularity) and every lock/barrier operation
    is logged with its thread, node and time window.  Feed the completed
    history to {!History.check} with the protocol's declared
    {!Protocol.model} to validate a run.  Call before {!run}. *)

val history : t -> History.t option

(** {1 Synchronization} *)

val lock_create : t -> ?protocol:int -> ?manager:int -> unit -> int
val lock_acquire : t -> int -> unit
val lock_release : t -> int -> unit
val with_lock : t -> int -> (unit -> 'a) -> 'a
val barrier_create : t -> ?protocol:int -> ?manager:int -> parties:int -> unit -> int
val barrier_wait : t -> int -> unit

(** {1 Fault injection} *)

val inject_faults : t -> ?retry:Rpc.retry_policy -> Fault_plan.t -> unit
(** Installs a fault schedule before {!run}: the network starts consulting
    the plan (crash blackholes, seeded message loss — see
    {!Network.set_fault_plan}), the engine gates fiber slices so threads on
    a crashed node freeze for the window and resume at restart, and the RPC
    layer arms reply deadlines with seeded retransmission ([retry], default
    {!Rpc.default_retry}, salted from the plan's seed) so calls into dead
    nodes fail fast with {!Rpc.Timeout} instead of suspending forever.

    Injecting a plan with no faults ({!Fault_plan.has_faults} [= false])
    uninstalls everything: no gate, no deadlines, no RNG draws — the run is
    bit-for-bit the schedule it would be without this call. *)

val fault_plan : t -> Fault_plan.t
(** The installed plan ({!Fault_plan.none} by default). *)

(** {1 Threads and execution} *)

val spawn :
  t ->
  ?stack_bytes:int ->
  ?attached_bytes:int ->
  ?migratable:bool ->
  node:int ->
  (unit -> unit) ->
  Marcel.thread

val join : t -> Marcel.thread -> unit
val self_node : t -> int

val charge : t -> float -> unit
(** Accrue [us] microseconds of application CPU work on the calling thread
    (paid lazily; see {!Marcel.charge}).  Also a preemptive-migration safe
    point: a pending load-balancer move is honoured here. *)

val compute : t -> float -> unit

val run : ?limit:Time.t -> t -> unit
val now_us : t -> float

exception Fault_storm of { addr : int; mode : Access.mode; attempts : int }
(** An access re-faulted more than the runtime's fault-loop limit: almost
    certainly a protocol bug (rights never become sufficient). *)

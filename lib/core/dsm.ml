open Dsmpm2_sim
open Dsmpm2_pm2
open Dsmpm2_mem

type t = Runtime.t

exception Fault_storm of { addr : int; mode : Access.mode; attempts : int }

let create ?costs ?tie_seed ?jitter ?page_size ~nodes ~driver () =
  let pm2 = Pm2.create ?tie_seed ?jitter ?page_size ~nodes ~driver () in
  let rt = Runtime.create ?costs pm2 in
  Dsm_comm.init rt;
  rt

let pm2 (rt : t) = rt.Runtime.pm2
let nodes = Runtime.nodes
let stats (rt : t) = rt.Runtime.instr
let engine = Runtime.engine

(* --- protocols --- *)

let create_protocol (rt : t) proto = Protocol.register rt.Runtime.registry proto

let set_default_protocol (rt : t) id =
  ignore (Runtime.proto rt id);
  rt.Runtime.default_protocol <- id

let default_protocol (rt : t) = rt.Runtime.default_protocol

let protocol_by_name (rt : t) name =
  Option.map fst (Protocol.find_by_name rt.Runtime.registry name)

let protocol_name (rt : t) id = (Runtime.proto rt id).Protocol.name

(* --- shared memory --- *)

type home_policy = Round_robin | On_node of int | Block

let malloc (rt : t) ?protocol ?(home = Round_robin) size =
  if size <= 0 then invalid_arg "Dsm.malloc: size must be positive";
  let protocol =
    match protocol with Some p -> p | None -> rt.Runtime.default_protocol
  in
  ignore (Runtime.proto rt protocol);
  let n = Runtime.nodes rt in
  let page_size = Page.size rt.Runtime.geo in
  let npages = (size + page_size - 1) / page_size in
  let addr = Isoalloc.alloc_pages (Pm2.iso rt.Runtime.pm2) npages in
  let first_page = Page.page_of_addr rt.Runtime.geo addr in
  for i = 0 to npages - 1 do
    let page = first_page + i in
    let home_node =
      match home with
      | Round_robin -> i mod n
      | On_node node ->
          if node < 0 || node >= n then invalid_arg "Dsm.malloc: home node out of range";
          node
      | Block -> min (n - 1) (i * n / npages)
    in
    for node = 0 to n - 1 do
      let rights = if node = home_node then Access.Read_write else Access.No_access in
      ignore
        (Page_table.declare rt.Runtime.tables.(node) ~page ~home:home_node
           ~owner:home_node ~protocol ~rights)
    done;
    (* Materialise the reference copy eagerly so sends always find a frame. *)
    ignore (Frame_store.frame rt.Runtime.stores.(home_node) page);
    (match (Runtime.proto rt protocol).Protocol.on_page_init with
    | None -> ()
    | Some init -> for node = 0 to n - 1 do init rt ~node ~page done)
  done;
  addr

let region_pages (rt : t) ~addr ~size =
  Page.pages_of_range rt.Runtime.geo ~addr ~len:size

type attr = { attr_protocol : int option; attr_home : home_policy }

let attr ?protocol ?(home = Round_robin) () =
  { attr_protocol = protocol; attr_home = home }

let malloc_attr rt a size = malloc rt ?protocol:a.attr_protocol ~home:a.attr_home size

let switch_protocol (rt : t) ~addr ~size ~protocol =
  ignore (Runtime.proto rt protocol);
  let pages = region_pages rt ~addr ~size in
  let n = Runtime.nodes rt in
  (* Pass 1: the area must be quiescent on every node. *)
  List.iter
    (fun page ->
      for node = 0 to n - 1 do
        let e = Runtime.entry rt ~node ~page in
        if e.Page_table.faulting || e.Page_table.pinned then
          invalid_arg
            (Printf.sprintf
               "Dsm.switch_protocol: page %d has a fault in flight on node %d" page
               node);
        if e.Page_table.twin <> None then
          invalid_arg
            (Printf.sprintf
               "Dsm.switch_protocol: page %d has an unflushed twin on node %d \
                (release enclosing locks first)"
               page node)
      done)
    pages;
  (* Pass 2: consolidate the authoritative copy on the home and reset the
     distributed table to the post-allocation state under the new id. *)
  List.iter
    (fun page ->
      let home = (Runtime.entry rt ~node:0 ~page).Page_table.home in
      let authoritative =
        let rec find node =
          if node >= n then home
          else if
            (Runtime.entry rt ~node ~page).Page_table.rights = Access.Read_write
          then node
          else find (node + 1)
        in
        find 0
      in
      if authoritative <> home then
        Frame_store.install (Runtime.store rt home) page
          (Frame_store.frame (Runtime.store rt authoritative) page);
      for node = 0 to n - 1 do
        let e = Runtime.entry rt ~node ~page in
        e.Page_table.protocol <- protocol;
        e.Page_table.prob_owner <- home;
        e.Page_table.copyset <- [];
        e.Page_table.rights <-
          (if node = home then Access.Read_write else Access.No_access);
        if node <> home then Frame_store.drop (Runtime.store rt node) page
      done;
      match (Runtime.proto rt protocol).Protocol.on_page_init with
      | None -> ()
      | Some init -> for node = 0 to n - 1 do init rt ~node ~page done)
    pages

(* --- access detection --- *)

let ensure_access (rt : t) ~addr ~mode =
  let marcel = Runtime.marcel rt in
  let h = rt.Runtime.instr_h in
  let rec attempt n =
    if n > rt.Runtime.fault_loop_limit then
      raise (Fault_storm { addr; mode; attempts = n });
    let node = Runtime.self_node rt in
    let page = Page.page_of_addr rt.Runtime.geo addr in
    let e = Runtime.entry rt ~node ~page in
    let proto = Runtime.proto rt e.Page_table.protocol in
    (match proto.Protocol.detection with
    | Protocol.Inline_check ->
        Stats.bump h.Instrument.h_inline_checks;
        Marcel.charge marcel rt.Runtime.costs.inline_check_us
    | Protocol.Page_fault -> ());
    if Access.allows e.Page_table.rights mode then Protocol_lib.unpin rt e
    else begin
      let started = Engine.now (Runtime.engine rt) in
      (match proto.Protocol.detection with
      | Protocol.Page_fault ->
          Stats.bump
            (match mode with
            | Access.Read -> h.Instrument.h_read_faults
            | Access.Write -> h.Instrument.h_write_faults);
          Metrics.incr rt.Runtime.metrics ~node ~protocol:proto.Protocol.name
            (match mode with
            | Access.Read -> Instrument.m_read_faults
            | Access.Write -> Instrument.m_write_faults);
          Marcel.compute marcel rt.Runtime.costs.page_fault_us;
          Stats.record h.Instrument.h_stage_fault
            (Time.of_us rt.Runtime.costs.page_fault_us)
      | Protocol.Inline_check -> Stats.bump h.Instrument.h_check_misses);
      (* Each fault is the root of a causal span: the request, transfer and
         install events it triggers — locally and on remote nodes — carry
         the same id. *)
      let span = Monitor.new_span rt in
      if Monitor.enabled rt then
        Monitor.emit rt ~span
          (Trace.Fault
             {
               node;
               page;
               protocol = proto.Protocol.name;
               mode = Access.mode_to_string mode;
             });
      Monitor.with_thread_span rt span (fun () ->
          match mode with
          | Access.Read -> proto.Protocol.read_fault rt ~node ~page
          | Access.Write -> proto.Protocol.write_fault rt ~node ~page);
      let latency = Time.(Engine.now (Runtime.engine rt) - started) in
      Stats.record h.Instrument.h_stage_total latency;
      Metrics.observe rt.Runtime.metrics ~node ~protocol:proto.Protocol.name
        Instrument.m_fault_latency latency;
      attempt (n + 1)
    end
  in
  attempt 0

let post_read (rt : t) ~node ~addr =
  let page = Page.page_of_addr rt.Runtime.geo addr in
  let e = Runtime.entry rt ~node ~page in
  match (Runtime.proto rt e.Page_table.protocol).Protocol.on_local_read with
  | None -> ()
  | Some hook -> hook rt ~node ~page

let read_int rt addr =
  let start = Engine.now (Runtime.engine rt) in
  ensure_access rt ~addr ~mode:Access.Read;
  let node = Runtime.self_node rt in
  let value = Frame_store.read_int (Runtime.store rt node) ~addr in
  Runtime.record_history rt ~start (History.Read { addr; value });
  post_read rt ~node ~addr;
  value

let post_write (rt : t) ~node ~addr ~value =
  let page = Page.page_of_addr rt.Runtime.geo addr in
  let e = Runtime.entry rt ~node ~page in
  (match (Runtime.proto rt e.Page_table.protocol).Protocol.on_local_write with
  | None -> ()
  | Some hook ->
      hook rt ~node ~page ~offset:(Page.offset_of_addr rt.Runtime.geo addr) ~value);
  (* A blocking hook (the quorum protocols' put round) means the write only
     takes effect now; widen its recorded real-time window to match. *)
  match rt.Runtime.history with
  | None -> ()
  | Some h ->
      History.extend_finish h
        ~tid:(Marcel.tid (Marcel.self (Runtime.marcel rt)))
        (Engine.now (Runtime.engine rt))

let write_int rt addr value =
  let start = Engine.now (Runtime.engine rt) in
  ensure_access rt ~addr ~mode:Access.Write;
  let node = Runtime.self_node rt in
  Frame_store.write_int (Runtime.store rt node) ~addr value;
  (* Record before [post_write]: propagation (update pushes, diff flushes)
     may block, and a remote read of the propagated value must find this
     write already in the history. *)
  Runtime.record_history rt ~start (History.Write { addr; value });
  post_write rt ~node ~addr ~value

let read_byte rt addr =
  let start = Engine.now (Runtime.engine rt) in
  ensure_access rt ~addr ~mode:Access.Read;
  let node = Runtime.self_node rt in
  let b = Frame_store.read_byte (Runtime.store rt node) ~addr in
  (* History works at word granularity; report the containing word. *)
  let word_addr = addr land lnot 7 in
  let value = Frame_store.read_int (Runtime.store rt node) ~addr:word_addr in
  Runtime.record_history rt ~start (History.Read { addr = word_addr; value });
  post_read rt ~node ~addr:word_addr;
  b

let write_byte rt addr value =
  let start = Engine.now (Runtime.engine rt) in
  ensure_access rt ~addr ~mode:Access.Write;
  let node = Runtime.self_node rt in
  Frame_store.write_byte (Runtime.store rt node) ~addr value;
  (* Record at word granularity: report the containing word's new value. *)
  let word_addr = addr land lnot 7 in
  let value = Frame_store.read_int (Runtime.store rt node) ~addr:word_addr in
  Runtime.record_history rt ~start (History.Write { addr = word_addr; value });
  post_write rt ~node ~addr:word_addr ~value

let unsafe_peek (rt : t) ~node addr =
  Frame_store.read_int (Runtime.store rt node) ~addr

let unsafe_rights (rt : t) ~node ~addr =
  let page = Page.page_of_addr rt.Runtime.geo addr in
  (Runtime.entry rt ~node ~page).Page_table.rights

(* --- conformance history --- *)

let enable_history (rt : t) =
  match rt.Runtime.history with
  | Some h -> h
  | None ->
      let h = History.create () in
      rt.Runtime.history <- Some h;
      h

let history (rt : t) = rt.Runtime.history

(* --- synchronization --- *)

let lock_create = Dsm_sync.lock_create
let lock_acquire = Dsm_sync.lock_acquire
let lock_release = Dsm_sync.lock_release
let with_lock = Dsm_sync.with_lock
let barrier_create = Dsm_sync.barrier_create
let barrier_wait = Dsm_sync.barrier_wait

(* --- threads and execution --- *)

let spawn (rt : t) ?stack_bytes ?attached_bytes ?migratable ~node f =
  Pm2.spawn rt.Runtime.pm2 ?stack_bytes ?attached_bytes ?migratable ~node f

let join rt th = Marcel.join (Runtime.marcel rt) th
let self_node = Runtime.self_node
let charge rt us =
  Marcel.charge (Runtime.marcel rt) us;
  Pm2.migrate_if_requested rt.Runtime.pm2

let compute rt us =
  Marcel.compute (Runtime.marcel rt) us;
  Pm2.migrate_if_requested rt.Runtime.pm2
(* --- fault injection --- *)

let inject_faults (rt : t) ?(retry = Rpc.default_retry) plan =
  let net = Pm2.network rt.Runtime.pm2 in
  Dsmpm2_net.Network.set_fault_plan net plan;
  if Fault_plan.has_faults plan then begin
    let marcel = Runtime.marcel rt in
    (* The gate is consulted at fiber-slice execution time: a slice about to
       run on a crashed node is parked (re-queued at the window's end)
       instead of executing — freeze-and-resume crash semantics.  Fibers
       that are not Marcel threads (drivers, observers) keep running. *)
    Engine.set_gate (Runtime.engine rt) (fun fid now ->
        match Marcel.node_of_fiber marcel fid with
        | None -> None
        | Some node ->
            if Fault_plan.is_down plan ~node now then
              Some (Fault_plan.up_at plan ~node ~now)
            else None);
    Rpc.set_retry (Runtime.rpc rt) ~seed:(Fault_plan.seed plan) (Some retry);
    (* Make the crash windows first-class in the trace: a Crash event when
       each window opens (carrying its scheduled end) and a Restart when it
       closes.  Scheduled as observer events — no tie-key draws — so the
       seeded schedule is bit-for-bit identical with or without them, and
       only when tracing is already on so unmonitored runs gain no events
       at all (their end times must not move). *)
    let eng = Runtime.engine rt in
    let tr = Pm2.trace rt.Runtime.pm2 in
    if Trace.enabled tr then
      List.iter
        (fun w ->
          let node = w.Fault_plan.w_node in
          if w.Fault_plan.w_down >= Engine.now eng then
            Engine.at_observer eng w.Fault_plan.w_down (fun () ->
                if Trace.enabled tr then
                  Trace.emit tr eng
                    (Trace.Crash { node; up = w.Fault_plan.w_up }));
          if w.Fault_plan.w_up >= Engine.now eng then
            Engine.at_observer eng w.Fault_plan.w_up (fun () ->
                if Trace.enabled tr then Trace.emit tr eng (Trace.Restart { node })))
        (Fault_plan.windows plan)
  end
  else begin
    (* An empty plan must leave every schedule bit-for-bit intact: no gate
       (zero extra tie draws) and no reply deadlines (zero extra events). *)
    Engine.clear_gate (Runtime.engine rt);
    Rpc.set_retry (Runtime.rpc rt) None
  end

let fault_plan (rt : t) =
  Dsmpm2_net.Network.fault_plan (Pm2.network rt.Runtime.pm2)

let run ?limit (rt : t) =
  (* An attached watchdog stops its timer when a run drains; re-arm it for
     this run (no-op without a watcher). *)
  Runtime.notify_rearm rt;
  Pm2.run ?limit rt.Runtime.pm2
let now_us (rt : t) = Pm2.now_us rt.Runtime.pm2

open Dsmpm2_sim

type kind =
  | Read of { addr : int; value : int }
  | Write of { addr : int; value : int }
  | Acquire of { lock : int }
  | Release of { lock : int }
  | Barrier of { barrier : int; parties : int }

type op = {
  index : int;
  tid : int;
  node : int;
  start : Time.t;
  mutable finish : Time.t;
  kind : kind;
}

type t = { mutable rev_ops : op list; mutable count : int }

let create () = { rev_ops = []; count = 0 }

let record t ~tid ~node ~start ~finish kind =
  let op = { index = t.count; tid; node; start; finish; kind } in
  t.count <- t.count + 1;
  t.rev_ops <- op :: t.rev_ops

let length t = t.count
let ops t = List.rev t.rev_ops

(* Blocking protocols (the quorum family) only learn an operation's true
   completion time after its record went in: the core records the frame
   update first, then runs the protocol's propagation hook, then extends the
   op's real-time window to cover it.  Widening [finish] is sound for the
   checker — it can only make the Sequential per-location real-time rule
   weaker (fewer masked writes), never manufacture a violation. *)
let extend_finish t ~tid finish =
  match List.find_opt (fun o -> o.tid = tid) t.rev_ops with
  | Some o -> if finish > o.finish then o.finish <- finish
  | None -> ()

let kind_to_string = function
  | Read { addr; value } -> Printf.sprintf "read  [0x%x] -> %d" addr value
  | Write { addr; value } -> Printf.sprintf "write [0x%x] <- %d" addr value
  | Acquire { lock } -> Printf.sprintf "acquire lock %d" lock
  | Release { lock } -> Printf.sprintf "release lock %d" lock
  | Barrier { barrier; parties } ->
      Printf.sprintf "barrier %d (%d parties)" barrier parties

let op_to_string o =
  Printf.sprintf "#%d t%d@n%d [%s..%s] %s" o.index o.tid o.node
    (Format.asprintf "%a" Time.pp o.start)
    (Format.asprintf "%a" Time.pp o.finish)
    (kind_to_string o.kind)

let fingerprint t =
  List.fold_left
    (fun acc o ->
      let h = Hashtbl.hash (o.index, o.tid, o.node, o.start, o.finish, o.kind) in
      (acc * 1_000_003) lxor h)
    0 (ops t)

(* --- checking --- *)

type violation = { v_op : op; v_message : string; v_witnesses : op list }

let violation_to_string v =
  Printf.sprintf "%s: %s%s" (op_to_string v.v_op) v.v_message
    (String.concat ""
       (List.map (fun w -> "\n    " ^ op_to_string w) v.v_witnesses))

(* Vector clocks over dense thread indices. *)
module Vc = struct
  type t = int array

  let create n = Array.make n 0
  let copy = Array.copy
  let bump vc i = vc.(i) <- vc.(i) + 1

  let join dst src =
    Array.iteri (fun i v -> if v > dst.(i) then dst.(i) <- v) src

  (* [hb a b]: everything [a]'s owner (index [ai]) had seen when [a] was
     snapshotted is included in [b] — i.e. a happens-before (or equals) b. *)
  let hb a ~ai b = a.(ai) <= b.(ai)
end

(* An analysed write: its place in the happens-before order plus its real-time
   window.  The initial zero value of every word is a virtual write that
   happens-before everything. *)
type wrec = {
  w_op : op option; (* None for the virtual initial write *)
  w_value : int;
  w_clock : Vc.t;
  w_ti : int; (* dense thread index; -1 for the virtual write *)
}

let check ~model t =
  let history = ops t in
  (* Dense thread numbering. *)
  let tids = Hashtbl.create 16 in
  List.iter
    (fun o -> if not (Hashtbl.mem tids o.tid) then Hashtbl.add tids o.tid (Hashtbl.length tids))
    history;
  let nthreads = max 1 (Hashtbl.length tids) in
  let ti o = Hashtbl.find tids o.tid in
  (* Pass 1: chunk each barrier's records, in history order, into
     generations of [parties] and collect each generation's thread set.
     Every party's pre-barrier ops precede every record of the generation
     (all parties arrive before any is released), so when the first record
     of a generation is reached in pass 2, joining the member threads'
     clocks yields exactly the join of their pre-barrier histories. *)
  let barrier_seen = Hashtbl.create 8 (* barrier -> records so far *) in
  let generation_of = Hashtbl.create 16 (* op index -> (barrier, gen) *) in
  let members = Hashtbl.create 8 (* (barrier, gen) -> thread index list *) in
  List.iter
    (fun o ->
      match o.kind with
      | Barrier { barrier; parties } ->
          let seen =
            match Hashtbl.find_opt barrier_seen barrier with Some n -> n | None -> 0
          in
          Hashtbl.replace barrier_seen barrier (seen + 1);
          let gen = seen / parties in
          Hashtbl.replace generation_of o.index (barrier, gen);
          let key = (barrier, gen) in
          let prev = match Hashtbl.find_opt members key with Some l -> l | None -> [] in
          Hashtbl.replace members key (ti o :: prev)
      | _ -> ())
    history;
  (* Pass 2: walk the history in record order maintaining per-thread vector
     clocks, happens-before edges through locks and barriers, and the set of
     analysed writes per address; validate each read as it appears. *)
  let clocks = Array.init nthreads (fun _ -> Vc.create nthreads) in
  let last_release = Hashtbl.create 8 (* lock -> released clock *) in
  let generation_clock = Hashtbl.create 8 (* (barrier, gen) -> joined clock *) in
  let writes : (int, wrec list) Hashtbl.t = Hashtbl.create 64 in
  let writes_to addr =
    match Hashtbl.find_opt writes addr with
    | Some ws -> ws
    | None ->
        (* First touch: seed the virtual initial write of value 0. *)
        let ws = [ { w_op = None; w_value = 0; w_clock = Vc.create nthreads; w_ti = -1 } ] in
        Hashtbl.replace writes addr ws;
        ws
  in
  let violations = ref [] in
  let w_hb a b =
    (* virtual write happens-before everything; nothing precedes it *)
    match (a.w_ti, b.w_ti) with
    | -1, _ -> true
    | _, -1 -> false
    | ai, _ -> Vc.hb a.w_clock ~ai b.w_clock
  in
  let check_read o ~addr ~value reader_clock =
    (* [writes_to addr] only holds writes recorded before this read, and a
       write is recorded the instant its frame update lands — before any
       propagation — so every write the read could have observed is here. *)
    let ws = writes_to addr in
    let matching = List.filter (fun w -> w.w_value = value) ws in
    let fresh_enough w =
      (* Rejected if some other write both came after w in happens-before
         order and is itself visible to the reader (w is covered). *)
      not
        (List.exists
           (fun w' ->
             w' != w && w_hb w w'
             &&
             match w'.w_op with
             | None -> false
             | Some _ -> Vc.hb w'.w_clock ~ai:w'.w_ti reader_clock)
           ws)
    in
    let sc_legal w =
      match model with
      | Protocol.Release | Protocol.Java -> true
      | Protocol.Sequential -> (
          (* Per-location real-time rule: w is stale if another write to the
             same address completed entirely after w and entirely before the
             read began. *)
          match w.w_op with
          | None ->
              not (List.exists
                     (fun w' ->
                       match w'.w_op with
                       | Some wo' -> wo'.finish < o.start
                       | None -> false)
                     ws)
          | Some wo ->
              not
                (List.exists
                   (fun w' ->
                     match w'.w_op with
                     | Some wo' -> wo.finish < wo'.start && wo'.finish < o.start
                     | None -> false)
                   ws))
    in
    let legal = List.filter (fun w -> fresh_enough w && sc_legal w) matching in
    (match legal with
    | [ { w_op = Some _; w_clock; _ } ] ->
        (* Unambiguous reads-from edge: the reader now causally depends on
           the write it observed, so later reads of this thread may not step
           back to writes that happen-before it. *)
        Vc.join reader_clock w_clock
    | _ -> ());
    if legal = [] then begin
      let witnesses =
        List.filter_map (fun w -> w.w_op) ws
        |> List.sort (fun a b -> compare a.index b.index)
      in
      let message =
        if matching = [] then
          Printf.sprintf "no write of value %d to [0x%x] exists in the history" value addr
        else
          Printf.sprintf
            "value %d at [0x%x] is stale under the %s model (every matching write \
             is overwritten or out of real-time order)"
            value addr
            (Protocol.model_to_string model)
      in
      violations := { v_op = o; v_message = message; v_witnesses = witnesses } :: !violations
    end
  in
  List.iter
    (fun o ->
      let i = ti o in
      let clock = clocks.(i) in
      match o.kind with
      | Read { addr; value } ->
          Vc.bump clock i;
          check_read o ~addr ~value clock
      | Write { addr; value } ->
          Vc.bump clock i;
          let ws = writes_to addr in
          Hashtbl.replace writes addr
            ({ w_op = Some o; w_value = value; w_clock = Vc.copy clock; w_ti = i } :: ws)
      | Acquire { lock } ->
          (match Hashtbl.find_opt last_release lock with
          | Some released -> Vc.join clock released
          | None -> ());
          Vc.bump clock i
      | Release { lock } ->
          Vc.bump clock i;
          Hashtbl.replace last_release lock (Vc.copy clock)
      | Barrier _ ->
          let key = Hashtbl.find generation_of o.index in
          let gen_clock =
            match Hashtbl.find_opt generation_clock key with
            | Some c -> c
            | None ->
                let c = Vc.create nthreads in
                List.iter (fun m -> Vc.join c clocks.(m)) (Hashtbl.find members key);
                Hashtbl.replace generation_clock key c;
                c
          in
          Vc.join clock gen_clock;
          Vc.bump clock i)
    history;
  List.rev !violations

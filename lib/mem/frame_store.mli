(** Per-node physical page frames.

    Each node materialises frames lazily (a frame appears the first time the
    node touches or receives the page) and reads/writes DSM words — 8-byte
    little-endian integers — at byte offsets inside them.  Dropping a frame
    models an invalidation that discards the local copy. *)

type t

val create : geometry:Page.geometry -> t
val geometry : t -> Page.geometry

val has_frame : t -> int -> bool
val frame : t -> int -> bytes
(** Returns the frame for the page, creating a zeroed one if absent.
    Repeated access to the same page hits a one-entry cache and skips the
    hash probe. *)

val peek : t -> int -> bytes option
(** The frame if present, without creating it. *)

val install : t -> int -> bytes -> unit
(** Replaces (or creates) the frame with a copy of [bytes] (which must have
    page length).  Use when the caller keeps or may mutate [bytes]. *)

val install_owned : t -> int -> bytes -> unit
(** Ownership-transferring install: the store adopts [bytes] as the frame
    without copying.  The caller must not retain or mutate [bytes]
    afterwards.  This is the simulated-wire fast path — a page message's
    payload is exclusively owned by the receiver on delivery, so a transfer
    costs one copy (at send) instead of two. *)

val drop : t -> int -> unit
val frame_count : t -> int

val read_int : t -> addr:int -> int
(** Reads the 8-byte word at [addr] ([addr] must be 8-aligned). *)

val write_int : t -> addr:int -> int -> unit

val read_byte : t -> addr:int -> int
val write_byte : t -> addr:int -> int -> unit

val copy_page : bytes -> bytes

(** Page twins and diffs, the multiple-writer machinery of [hbrc_mw] and the
    Java protocols.

    A {e twin} is a snapshot of a page taken before local writes; a {e diff}
    is the compact list of byte ranges where the current page departs from
    its twin.  Diffs travel to the page's home node, which applies them to
    the reference copy.  Word-granularity diffs ([of_words]) implement the
    paper's "on-the-fly diff recording" used by [java_ic]/[java_pf]. *)

type t = { page : int; ranges : (int * bytes) list }
(** Ranges are (offset, data), sorted by offset, non-overlapping,
    non-adjacent. *)

val make_twin : bytes -> bytes
(** A snapshot copy of the page. *)

val compute : page:int -> twin:bytes -> current:bytes -> t
(** Byte ranges where [current] differs from [twin].  Equal regions are
    scanned 8 bytes at a time ([Bytes.get_int64_le]); byte granularity is
    paid only inside differing words, so the cost of diffing a sparsely
    written page is dominated by [size / 8] word compares. *)

val compute_bytewise : page:int -> twin:bytes -> current:bytes -> t
(** The byte-at-a-time reference kernel with identical semantics to
    {!compute} (maximal runs of differing bytes).  Exposed as the
    executable specification for property tests and as the baseline of the
    diff-compute microbench; protocol code should call {!compute}. *)

val of_words : geometry:Page.geometry -> page:int -> (int * int) list -> t
(** [(offset, value)] word-granularity write records.  Offsets must be
    8-aligned and in page range.  Duplicate offsets are legal and resolve
    last-write-wins: the record appearing {e later in the caller's list}
    overwrites earlier ones, matching program order of an on-the-fly write
    log ([java_ic]/[java_pf] replay). *)

val apply : t -> bytes -> unit
(** Patches the target page in place. *)

val merge : t -> t -> t
(** [merge older newer]: the effect of applying [older] then [newer],
    normalised. Pages must match. *)

val is_empty : t -> bool
val range_count : t -> int

val payload_bytes : t -> int
(** Bytes of modified data carried by the diff. *)

val wire_bytes : t -> int
(** Modelled wire size: payload plus an 8-byte header per range (offset +
    length). *)

val pp : Format.formatter -> t -> unit

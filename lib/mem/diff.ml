type t = { page : int; ranges : (int * bytes) list }

let make_twin = Bytes.copy

(* Reference kernel: byte-at-a-time scan for maximal runs of differing
   bytes.  Kept as the executable specification of [compute] (property
   tests assert equivalence) and as the baseline of the Bechamel
   diff-compute case. *)
let compute_bytewise ~page ~twin ~current =
  let n = Bytes.length twin in
  if Bytes.length current <> n then invalid_arg "Diff.compute: length mismatch";
  let rec scan i acc =
    if i >= n then List.rev acc
    else if Bytes.get twin i = Bytes.get current i then scan (i + 1) acc
    else begin
      let j = ref i in
      while !j < n && Bytes.get twin !j <> Bytes.get current !j do incr j done;
      let data = Bytes.sub current i (!j - i) in
      scan !j ((i, data) :: acc)
    end
  in
  { page; ranges = scan 0 [] }

(* Word-granular kernel: equal regions — the overwhelming majority of a
   page under sparse writes — are skipped 8 bytes per compare via
   [Bytes.get_int64_le]; byte granularity is only paid inside and at the
   edges of a differing word.  Semantics are identical to
   [compute_bytewise]: maximal runs of differing bytes. *)
let compute ~page ~twin ~current =
  let n = Bytes.length twin in
  if Bytes.length current <> n then invalid_arg "Diff.compute: length mismatch";
  let word_limit = n - 7 in
  (* First index >= i where the bytes differ, or n. *)
  let rec skip_equal i =
    if i < word_limit then
      if Int64.equal (Bytes.get_int64_le twin i) (Bytes.get_int64_le current i)
      then skip_equal (i + 8)
      else first_diff i
    else tail_skip i
  and first_diff i =
    (* A differing byte is guaranteed in [i, i+8). *)
    if Bytes.get twin i = Bytes.get current i then first_diff (i + 1) else i
  and tail_skip i =
    if i >= n then n
    else if Bytes.get twin i = Bytes.get current i then tail_skip (i + 1)
    else i
  in
  (* First index >= i where the bytes are equal again, or n. *)
  let rec run_end i =
    if i >= n then n
    else if Bytes.get twin i = Bytes.get current i then i
    else run_end (i + 1)
  in
  let rec scan i acc =
    let i = skip_equal i in
    if i >= n then List.rev acc
    else begin
      let j = run_end (i + 1) in
      scan j ((i, Bytes.sub current i (j - i)) :: acc)
    end
  in
  { page; ranges = scan 0 [] }

(* Normalises a list of (offset, data) patches into sorted, coalesced,
   non-overlapping ranges; later patches win where they overlap earlier
   ones.  Run-merge over a sorted segment list: memory is proportional to
   the patch data, never to the spanned width (the previous implementation
   allocated a [bytes] + [bool array] scratch pair covering the whole
   min..max extent, pathological for two distant one-byte patches). *)
let normalise patches =
  let patches = List.filter (fun (_, d) -> Bytes.length d > 0) patches in
  (* Insert a patch into a sorted list of disjoint segments, trimming the
     overlapped parts of existing (earlier, hence losing) segments. *)
  let insert segs (o, d) =
    let e = o + Bytes.length d in
    let rec go = function
      | [] -> [ (o, d) ]
      | ((o', d') as seg) :: rest ->
          let e' = o' + Bytes.length d' in
          if e' <= o then seg :: go rest
          else if e <= o' then (o, d) :: seg :: rest
          else begin
            (* Overlap: keep the old segment's non-overlapped flanks. *)
            let rest =
              if e < e' then (e, Bytes.sub d' (e - o') (e' - e)) :: rest else rest
            in
            let tail = go rest in
            if o' < o then (o', Bytes.sub d' 0 (o - o')) :: tail else tail
          end
    in
    go segs
  in
  let segs = List.fold_left insert [] patches in
  (* Merge adjacent segments into maximal runs. *)
  match segs with
  | [] -> []
  | [ _ ] as one -> one
  | (o0, d0) :: rest ->
      let buf = Buffer.create (Bytes.length d0) in
      Buffer.add_bytes buf d0;
      let rec go start acc = function
        | [] -> List.rev ((start, Buffer.to_bytes buf) :: acc)
        | (o, d) :: rest ->
            if o = start + Buffer.length buf then begin
              Buffer.add_bytes buf d;
              go start acc rest
            end
            else begin
              let finished = (start, Buffer.to_bytes buf) in
              Buffer.clear buf;
              Buffer.add_bytes buf d;
              go o (finished :: acc) rest
            end
      in
      go o0 [] rest

let of_words ~geometry ~page words =
  let size = Page.size geometry in
  let patches =
    List.map
      (fun (off, v) ->
        if off land 7 <> 0 || off < 0 || off + 8 > size then
          invalid_arg "Diff.of_words: bad offset";
        let d = Bytes.create 8 in
        Bytes.set_int64_le d 0 (Int64.of_int v);
        (off, d))
      words
  in
  { page; ranges = normalise patches }

let apply t target =
  List.iter
    (fun (off, data) ->
      if off < 0 || off + Bytes.length data > Bytes.length target then
        invalid_arg "Diff.apply: range out of bounds";
      Bytes.blit data 0 target off (Bytes.length data))
    t.ranges

let merge older newer =
  if older.page <> newer.page then invalid_arg "Diff.merge: page mismatch";
  { page = older.page; ranges = normalise (older.ranges @ newer.ranges) }

let is_empty t = t.ranges = []
let range_count t = List.length t.ranges
let payload_bytes t = List.fold_left (fun a (_, d) -> a + Bytes.length d) 0 t.ranges
let wire_bytes t = payload_bytes t + (8 * range_count t)

let pp ppf t =
  Format.fprintf ppf "diff(page %d:" t.page;
  List.iter (fun (o, d) -> Format.fprintf ppf " %d+%d" o (Bytes.length d)) t.ranges;
  Format.fprintf ppf ")"

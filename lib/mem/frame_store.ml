type t = {
  geo : Page.geometry;
  frames : (int, bytes) Hashtbl.t;
  (* One-entry cache over [frames]: the word-access fast path hits the same
     page repeatedly (array sweeps, spin loops), so the common case skips
     the Hashtbl probe entirely.  [last_page = -1] means empty. *)
  mutable last_page : int;
  mutable last_frame : bytes;
}

let create ~geometry =
  {
    geo = geometry;
    frames = Hashtbl.create 64;
    last_page = -1;
    last_frame = Bytes.empty;
  }

let geometry t = t.geo
let has_frame t page = Hashtbl.mem t.frames page

let frame t page =
  if t.last_page = page then t.last_frame
  else begin
    let b =
      match Hashtbl.find_opt t.frames page with
      | Some b -> b
      | None ->
          let b = Bytes.make (Page.size t.geo) '\000' in
          Hashtbl.add t.frames page b;
          b
    in
    t.last_page <- page;
    t.last_frame <- b;
    b
  end

let peek t page =
  if t.last_page = page then Some t.last_frame else Hashtbl.find_opt t.frames page

(* Installing takes over as the cached entry: the next access is almost
   always to the page that just arrived. *)
let install_owned t page data =
  if Bytes.length data <> Page.size t.geo then
    invalid_arg "Frame_store.install_owned: wrong page length";
  Hashtbl.replace t.frames page data;
  t.last_page <- page;
  t.last_frame <- data

let install t page data =
  if Bytes.length data <> Page.size t.geo then
    invalid_arg "Frame_store.install: wrong page length";
  install_owned t page (Bytes.copy data)

let drop t page =
  Hashtbl.remove t.frames page;
  if t.last_page = page then begin
    t.last_page <- -1;
    t.last_frame <- Bytes.empty
  end

let frame_count t = Hashtbl.length t.frames

let check_word_aligned addr =
  if addr land 7 <> 0 then
    invalid_arg (Printf.sprintf "Frame_store: unaligned word access at %#x" addr)

let read_int t ~addr =
  check_word_aligned addr;
  let b = frame t (Page.page_of_addr t.geo addr) in
  Int64.to_int (Bytes.get_int64_le b (Page.offset_of_addr t.geo addr))

let write_int t ~addr v =
  check_word_aligned addr;
  let b = frame t (Page.page_of_addr t.geo addr) in
  Bytes.set_int64_le b (Page.offset_of_addr t.geo addr) (Int64.of_int v)

let read_byte t ~addr =
  let b = frame t (Page.page_of_addr t.geo addr) in
  Char.code (Bytes.get b (Page.offset_of_addr t.geo addr))

let write_byte t ~addr v =
  if v < 0 || v > 255 then invalid_arg "Frame_store.write_byte: out of range";
  let b = frame t (Page.page_of_addr t.geo addr) in
  Bytes.set b (Page.offset_of_addr t.geo addr) (Char.chr v)

let copy_page = Bytes.copy

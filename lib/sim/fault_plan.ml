(* Seeded fault schedules: node crash/restart windows plus per-message loss.

   The plan is decided up front (windows) or drawn in send order from a
   private salted stream (loss), exactly like Network.seeded_jitter: a given
   seed always replays the identical failure schedule, so `dsm check` can
   sweep failure schedules the way it sweeps tie seeds.  A plan with no
   windows and zero loss never touches its RNG, which keeps the no-fault
   path bit-for-bit schedule-neutral. *)

type window = { w_node : int; w_down : Time.t; w_up : Time.t }

type t = {
  seed : int;
  windows : window list;  (* sorted by w_down *)
  loss_pct : float;
  loss_rng : Rng.t;  (* drawn once per cross-node send, in send order *)
  mutable dropped_by_loss : int;
  mutable dropped_by_crash : int;
}

(* Salt the seed (differently from seeded_jitter's 0x5bd1) so the loss
   stream never correlates with a tie-break or jitter stream built from the
   same user-level seed. *)
let salted seed = Rng.int (Rng.create ~seed) 0x3FFFFFFF + 0x7f4a

let create ?(windows = []) ?(loss_pct = 0.) ?(seed = 0) () =
  if loss_pct < 0. || loss_pct > 100. then
    invalid_arg "Fault_plan.create: loss_pct must be in [0, 100]";
  List.iter
    (fun w ->
      if w.w_up <= w.w_down then
        invalid_arg "Fault_plan.create: window must end after it starts")
    windows;
  {
    seed;
    windows = List.sort (fun a b -> compare a.w_down b.w_down) windows;
    loss_pct;
    loss_rng = Rng.create ~seed:(salted seed);
    dropped_by_loss = 0;
    dropped_by_crash = 0;
  }

let none = create ()

let seeded ~nodes ~seed ?(crashes = 2) ?(loss_pct = 0.) ?(protect = [])
    ?(down_us = 300.) ?(horizon_us = 4000.) () =
  if nodes <= 0 then invalid_arg "Fault_plan.seeded: nodes must be positive";
  if crashes < 0 then invalid_arg "Fault_plan.seeded: negative crash count";
  if down_us <= 0. || horizon_us <= 0. then
    invalid_arg "Fault_plan.seeded: durations must be positive";
  let victims =
    List.filter (fun n -> not (List.mem n protect)) (List.init nodes Fun.id)
  in
  if crashes > 0 && victims = [] then
    invalid_arg "Fault_plan.seeded: every node is protected";
  (* Windows are drawn from their own salted stream (double salt so it also
     differs from the loss stream) and never overlap in time: at most one
     node is down at any instant, which keeps every schedule within the
     minority-crash budget a quorum protocol tolerates (for nodes >= 3). *)
  let rng = Rng.create ~seed:(salted (salted seed)) in
  let slice = horizon_us /. float_of_int (max 1 crashes) in
  let windows =
    List.init crashes (fun i ->
        let node = List.nth victims (Rng.int rng (List.length victims)) in
        let lo = float_of_int i *. slice in
        let start = lo +. Rng.float rng (Stdlib.max 1. (slice -. down_us)) in
        {
          w_node = node;
          w_down = Time.of_us start;
          w_up = Time.of_us (start +. down_us);
        })
  in
  create ~windows ~loss_pct ~seed ()

let seed t = t.seed
let windows t = t.windows
let loss_pct t = t.loss_pct
let has_faults t = t.windows <> [] || t.loss_pct > 0.
let messages_lost t = t.dropped_by_loss
let messages_blackholed t = t.dropped_by_crash

let is_down t ~node time =
  List.exists
    (fun w -> w.w_node = node && time >= w.w_down && time < w.w_up)
    t.windows

let up_at t ~node ~now =
  List.fold_left
    (fun acc w ->
      if w.w_node = node && now >= w.w_down && now < w.w_up then
        Time.max acc w.w_up
      else acc)
    now t.windows

(* One draw per call, in call order — callers must only consult this when
   loss is actually enabled so a lossless plan stays draw-free. *)
let loses_message t =
  t.loss_pct > 0. && Rng.float t.loss_rng 100. < t.loss_pct

let note_loss t = t.dropped_by_loss <- t.dropped_by_loss + 1
let note_blackhole t = t.dropped_by_crash <- t.dropped_by_crash + 1

let window_to_string w =
  Printf.sprintf "node %d down %.0f..%.0fus" w.w_node (Time.to_us w.w_down)
    (Time.to_us w.w_up)

let to_string t =
  if not (has_faults t) then "no faults"
  else
    Printf.sprintf "loss=%.1f%% windows=[%s]" t.loss_pct
      (String.concat "; " (List.map window_to_string t.windows))

(* DDSketch-style log-bucketed quantile summary.  A positive value v maps
   to bucket ceil(ln v / ln gamma); every value in bucket i lies in
   (gamma^(i-1), gamma^i], and the bucket midpoint estimate
   2*gamma^i/(gamma+1) is within relative error (gamma-1)/(gamma+1) = alpha
   of any of them.  Counts live in a sparse table, so memory tracks the
   data's dynamic range, not the sample count, and merging is bucket-wise
   addition — exactly the stream-concatenation semantics the property tests
   pin. *)

(* Values at or below this threshold are counted exactly in a dedicated
   zero bucket: the log mapping cannot represent 0, and latencies this far
   below one nanosecond are noise. *)
let zero_threshold = 1e-9

type t = {
  a_alpha : float;
  gamma : float;
  inv_log_gamma : float;
  mutable n : int;
  mutable zeros : int; (* samples in [0, zero_threshold] *)
  mutable total : float;
  mutable lo : float;
  mutable hi : float;
  counts : (int, int ref) Hashtbl.t; (* log-bucket index -> samples *)
}

let create ?(alpha = 0.01) () =
  if not (alpha > 0. && alpha < 1.) then
    invalid_arg "Sketch.create: alpha must be in (0, 1)";
  let gamma = (1. +. alpha) /. (1. -. alpha) in
  {
    a_alpha = alpha;
    gamma;
    inv_log_gamma = 1. /. log gamma;
    n = 0;
    zeros = 0;
    total = 0.;
    lo = infinity;
    hi = neg_infinity;
    counts = Hashtbl.create 64;
  }

let alpha t = t.a_alpha

let bucket_of t v = int_of_float (Float.ceil (log v *. t.inv_log_gamma))

let add t v =
  let v = Float.max 0. v in
  t.n <- t.n + 1;
  t.total <- t.total +. v;
  if v < t.lo then t.lo <- v;
  if v > t.hi then t.hi <- v;
  if v <= zero_threshold then t.zeros <- t.zeros + 1
  else
    let i = bucket_of t v in
    match Hashtbl.find_opt t.counts i with
    | Some r -> incr r
    | None -> Hashtbl.add t.counts i (ref 1)

let count t = t.n
let sum t = t.total
let mean t = if t.n = 0 then 0. else t.total /. float_of_int t.n
let min_value t = if t.n = 0 then 0. else t.lo
let max_value t = if t.n = 0 then 0. else t.hi
let buckets t = Hashtbl.length t.counts + if t.zeros > 0 then 1 else 0

(* The value estimate for bucket i: the point whose relative distance to
   both bucket edges is alpha. *)
let estimate t i =
  2. *. exp (float_of_int i *. log t.gamma) /. (t.gamma +. 1.)

let quantile t q =
  if t.n = 0 then 0.
  else begin
    let q = Float.max 0. (Float.min 1. q) in
    (* Lower nearest-rank: the exact answer is the rank-th smallest sample
       (0-based); the zero bucket sorts below every log bucket. *)
    let rank = int_of_float (Float.floor (q *. float_of_int (t.n - 1))) in
    if rank < t.zeros then t.lo
    else begin
      let idx =
        Hashtbl.fold (fun i _ acc -> i :: acc) t.counts []
        |> List.sort compare
      in
      let rec walk seen = function
        | [] -> t.hi
        | i :: rest ->
            let seen = seen + !(Hashtbl.find t.counts i) in
            if seen > rank - t.zeros then estimate t i else walk seen rest
      in
      let v = walk 0 idx in
      (* Clamping to the observed range only ever moves the estimate toward
         the exact sample, so the alpha bound survives. *)
      Float.max t.lo (Float.min t.hi v)
    end
  end

let percentile t p = quantile t (p /. 100.)

let merge_into dst src =
  if dst.a_alpha <> src.a_alpha then
    invalid_arg "Sketch.merge: accuracy targets differ";
  dst.n <- dst.n + src.n;
  dst.zeros <- dst.zeros + src.zeros;
  dst.total <- dst.total +. src.total;
  if src.lo < dst.lo then dst.lo <- src.lo;
  if src.hi > dst.hi then dst.hi <- src.hi;
  Hashtbl.iter
    (fun i r ->
      match Hashtbl.find_opt dst.counts i with
      | Some d -> d := !d + !r
      | None -> Hashtbl.add dst.counts i (ref !r))
    src.counts

let merge a b =
  let t = create ~alpha:a.a_alpha () in
  merge_into t a;
  merge_into t b;
  t

let to_json t =
  Json.Obj
    [
      ("count", Json.Int t.n);
      ("sum", Json.Float t.total);
      ("min", Json.Float (min_value t));
      ("max", Json.Float (max_value t));
      ("p50", Json.Float (percentile t 50.));
      ("p90", Json.Float (percentile t 90.));
      ("p99", Json.Float (percentile t 99.));
      ("p999", Json.Float (percentile t 99.9));
    ]

let pp ppf t =
  Format.fprintf ppf
    "%d samples in %d buckets: p50 %.3f p90 %.3f p99 %.3f p999 %.3f max %.3f"
    t.n (buckets t) (percentile t 50.) (percentile t 90.) (percentile t 99.)
    (percentile t 99.9) (max_value t)

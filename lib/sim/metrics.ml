type labels = { lbl_node : int option; lbl_protocol : string option }

let no_labels = { lbl_node = None; lbl_protocol = None }
let labels ?node ?protocol () = { lbl_node = node; lbl_protocol = protocol }

let compare_labels a b =
  let c = Option.compare Int.compare a.lbl_node b.lbl_node in
  if c <> 0 then c else Option.compare String.compare a.lbl_protocol b.lbl_protocol

type t = { groups : (labels, Stats.t) Hashtbl.t }

let create () = { groups = Hashtbl.create 16 }

let group t labels =
  match Hashtbl.find_opt t.groups labels with
  | Some s -> s
  | None ->
      let s = Stats.create () in
      Hashtbl.add t.groups labels s;
      s

let stats t ?node ?protocol () = group t (labels ?node ?protocol ())
let incr t ?node ?protocol name = Stats.incr (stats t ?node ?protocol ()) name
let add t ?node ?protocol name n = Stats.add (stats t ?node ?protocol ()) name n

let observe t ?node ?protocol name dt =
  Stats.add_span (stats t ?node ?protocol ()) name dt

let count t ?node ?protocol name = Stats.count (stats t ?node ?protocol ()) name

let percentile t ?node ?protocol name p =
  Stats.span_percentile (stats t ?node ?protocol ()) name p

let all t =
  Hashtbl.fold (fun labels s acc -> (labels, s) :: acc) t.groups []
  |> List.sort (fun (a, _) (b, _) -> compare_labels a b)

let total t name =
  Hashtbl.fold (fun _ s acc -> acc + Stats.count s name) t.groups 0

let samples t name =
  Hashtbl.fold (fun _ s acc -> acc + Stats.span_samples s name) t.groups 0

(* Reset shard-by-shard rather than dropping the groups: pre-resolved group
   handles (Network, Instrument interning) must stay wired to the live
   series. *)
let reset t = Hashtbl.iter (fun _ s -> Stats.reset s) t.groups

let labels_to_json l =
  Json.Obj
    (List.concat
       [
         (match l.lbl_node with Some n -> [ ("node", Json.Int n) ] | None -> []);
         (match l.lbl_protocol with
         | Some p -> [ ("protocol", Json.String p) ]
         | None -> []);
       ])

let to_json t =
  Json.List
    (List.map
       (fun (l, s) ->
         Json.Obj [ ("labels", labels_to_json l); ("stats", Stats.to_json s) ])
       (all t))

let pp_labels ppf l =
  let parts =
    List.concat
      [
        (match l.lbl_node with Some n -> [ Printf.sprintf "node=%d" n ] | None -> []);
        (match l.lbl_protocol with
        | Some p -> [ Printf.sprintf "protocol=%s" p ]
        | None -> []);
      ]
  in
  Format.fprintf ppf "{%s}" (String.concat "," parts)

let pp ppf t =
  List.iter
    (fun (l, s) -> Format.fprintf ppf "%a@.%a" pp_labels l Stats.pp s)
    (all t)

type labels = { lbl_node : int option; lbl_protocol : string option }

let no_labels = { lbl_node = None; lbl_protocol = None }
let labels ?node ?protocol () = { lbl_node = node; lbl_protocol = protocol }

let compare_labels a b =
  let c = Option.compare Int.compare a.lbl_node b.lbl_node in
  if c <> 0 then c else Option.compare String.compare a.lbl_protocol b.lbl_protocol

type t = { groups : (labels, Stats.t) Hashtbl.t }

let create () = { groups = Hashtbl.create 16 }

let group t labels =
  match Hashtbl.find_opt t.groups labels with
  | Some s -> s
  | None ->
      let s = Stats.create () in
      Hashtbl.add t.groups labels s;
      s

let stats t ?node ?protocol () = group t (labels ?node ?protocol ())
let incr t ?node ?protocol name = Stats.incr (stats t ?node ?protocol ()) name
let add t ?node ?protocol name n = Stats.add (stats t ?node ?protocol ()) name n

let observe t ?node ?protocol name dt =
  Stats.add_span (stats t ?node ?protocol ()) name dt

let count t ?node ?protocol name = Stats.count (stats t ?node ?protocol ()) name

let percentile t ?node ?protocol name p =
  Stats.span_percentile (stats t ?node ?protocol ()) name p

let all t =
  Hashtbl.fold (fun labels s acc -> (labels, s) :: acc) t.groups []
  |> List.sort (fun (a, _) (b, _) -> compare_labels a b)

let total t name =
  Hashtbl.fold (fun _ s acc -> acc + Stats.count s name) t.groups 0

let samples t name =
  Hashtbl.fold (fun _ s acc -> acc + Stats.span_samples s name) t.groups 0

(* Reset shard-by-shard rather than dropping the groups: pre-resolved group
   handles (Network, Instrument interning) must stay wired to the live
   series. *)
let reset t = Hashtbl.iter (fun _ s -> Stats.reset s) t.groups

let labels_to_json l =
  Json.Obj
    (List.concat
       [
         (match l.lbl_node with Some n -> [ ("node", Json.Int n) ] | None -> []);
         (match l.lbl_protocol with
         | Some p -> [ ("protocol", Json.String p) ]
         | None -> []);
       ])

let to_json t =
  Json.List
    (List.map
       (fun (l, s) ->
         Json.Obj [ ("labels", labels_to_json l); ("stats", Stats.to_json s) ])
       (all t))

(* Cluster rollup: every group's series merged into one Stats snapshot
   (exact — the fixed histogram buckets add bucket-wise), the basis of the
   cluster line in `dsm top`. *)
let rollup t =
  Hashtbl.fold (fun _ s acc -> Stats.merge acc s) t.groups (Stats.create ())

(* --- Prometheus text exposition ---

   Counters become [dsm_<name>_total] (counter type); duration series
   become true histograms in microseconds — cumulative [_bucket{le=...}]
   lines straight off the fixed Stats buckets plus [_sum]/[_count] — so
   scrapes aggregate across nodes and over time with histogram_quantile
   instead of the unmergeable summary quantiles we used to emit.  The node
   and protocol labels map straight onto Prometheus labels, so the same
   questions the JSON snapshot answers ("p99 fault latency of hbrc_mw on
   node 3") are one PromQL selector away. *)

let prom_name name =
  let b = Bytes.of_string name in
  Bytes.iteri
    (fun i c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' -> ()
      | _ -> Bytes.set b i '_')
    b;
  let s = Bytes.to_string b in
  if String.length s >= 4 && String.sub s 0 4 = "dsm_" then s else "dsm_" ^ s

let prom_labels ?le l =
  let parts =
    List.concat
      [
        (match l.lbl_node with
        | Some n -> [ Printf.sprintf "node=\"%d\"" n ]
        | None -> []);
        (match l.lbl_protocol with
        | Some p -> [ Printf.sprintf "protocol=\"%s\"" p ]
        | None -> []);
        (match le with
        | Some b -> [ Printf.sprintf "le=\"%s\"" b ]
        | None -> []);
      ]
  in
  match parts with [] -> "" | _ -> "{" ^ String.concat "," parts ^ "}"

let to_prometheus ppf t =
  let groups = all t in
  let uniq names = List.sort_uniq String.compare names in
  let counter_names =
    uniq (List.concat_map (fun (_, s) -> List.map fst (Stats.counters s)) groups)
  in
  let span_names =
    uniq
      (List.concat_map
         (fun (_, s) -> List.map (fun (n, _, _) -> n) (Stats.spans s))
         groups)
  in
  List.iter
    (fun name ->
      let metric = prom_name name ^ "_total" in
      Format.fprintf ppf "# HELP %s Events counted under %S.@." metric name;
      Format.fprintf ppf "# TYPE %s counter@." metric;
      List.iter
        (fun (l, s) ->
          if List.mem_assoc name (Stats.counters s) then
            Format.fprintf ppf "%s%s %d@." metric (prom_labels l)
              (Stats.count s name))
        groups)
    counter_names;
  List.iter
    (fun name ->
      let metric = prom_name name ^ "_us" in
      Format.fprintf ppf "# HELP %s Duration of %S in microseconds.@." metric
        name;
      Format.fprintf ppf "# TYPE %s histogram@." metric;
      List.iter
        (fun (l, s) ->
          let sm = Stats.span_summary s name in
          if sm.Stats.sm_samples > 0 then begin
            let hist = Stats.span_histogram s name in
            let cum = ref 0 in
            Array.iteri
              (fun i (bound, c) ->
                cum := !cum + c;
                let le =
                  if i < Array.length Stats.bucket_bounds then
                    Printf.sprintf "%g" (Time.to_us bound)
                  else "+Inf"
                in
                Format.fprintf ppf "%s_bucket%s %d@." metric
                  (prom_labels ~le l) !cum)
              hist;
            Format.fprintf ppf "%s_sum%s %g@." metric (prom_labels l)
              (Time.to_us sm.Stats.sm_total);
            Format.fprintf ppf "%s_count%s %d@." metric (prom_labels l)
              sm.Stats.sm_samples
          end)
        groups)
    span_names

let pp_labels ppf l =
  let parts =
    List.concat
      [
        (match l.lbl_node with Some n -> [ Printf.sprintf "node=%d" n ] | None -> []);
        (match l.lbl_protocol with
        | Some p -> [ Printf.sprintf "protocol=%s" p ]
        | None -> []);
      ]
  in
  Format.fprintf ppf "{%s}" (String.concat "," parts)

let pp ppf t =
  List.iter
    (fun (l, s) -> Format.fprintf ppf "%a@.%a" pp_labels l Stats.pp s)
    (all t)

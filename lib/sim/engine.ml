type event = { time : Time.t; seq : int; tie : int; action : unit -> unit }

type t = {
  mutable clock : Time.t;
  queue : event Heap.t;
  mutable seq : int;
  mutable live : int;
  mutable executed : int;
  mutable next_fiber : int;
  mutable current : int option;
  tie_rng : Rng.t option;
      (* schedule perturbation: when set, same-time events are ordered by a
         seed-driven tie key instead of insertion order *)
  tie_seed : int option;
  mutable gate : (int -> Time.t -> Time.t option) option;
      (* fault injection: consulted at execution time before each fiber
         slice; [Some until] parks the slice until that instant *)
  mutable parked : int;
}

exception Stalled of int

type _ Effect.t += Suspend : ((unit -> unit) -> unit) -> unit Effect.t

let cmp_event a b =
  let c = compare a.time b.time in
  if c <> 0 then c
  else
    let c = compare a.tie b.tie in
    if c <> 0 then c else compare a.seq b.seq

let create ?tie_seed () =
  {
    clock = Time.zero;
    queue = Heap.create ~cmp:cmp_event;
    seq = 0;
    live = 0;
    executed = 0;
    next_fiber = 0;
    current = None;
    tie_rng = Option.map (fun seed -> Rng.create ~seed) tie_seed;
    tie_seed;
    gate = None;
    parked = 0;
  }

let now t = t.clock
let live_fibers t = t.live
let events_executed t = t.executed
let current_fiber t = t.current
let tie_seed t = t.tie_seed

let at t time action =
  if time < t.clock then
    invalid_arg
      (Printf.sprintf "Engine.at: time %d is in the past (now %d)" time t.clock);
  let seq = t.seq in
  t.seq <- seq + 1;
  (* The tie key is drawn in scheduling order, so a given seed always maps
     the same (deterministic) sequence of [at] calls to the same ordering:
     every perturbed run replays exactly from its seed. *)
  let tie = match t.tie_rng with None -> 0 | Some rng -> Rng.int rng 0x40000000 in
  Heap.add t.queue { time; seq; tie; action }

let after t dt action = at t Time.(t.clock + dt) action

(* --- fault gate --- *)

let set_gate t g = t.gate <- Some g
let clear_gate t = t.gate <- None
let parked_count t = t.parked

(* Wraps a fiber slice (body start or resumed continuation) so the gate is
   consulted at *execution* time, when the fiber's host node is known to
   whoever installed the gate.  On [None] the slice runs untouched — the
   no-fault path costs one option match and draws nothing, so an installed
   but empty plan is bit-for-bit schedule-neutral.  On [Some until] the
   slice is re-scheduled at [until] (and re-checked there, in case windows
   chain), which is exactly "fibers on a crashed node are parked and
   respawned on restart". *)
let rec gated t fid action () =
  match t.gate with
  | None -> action ()
  | Some g -> (
      match g fid t.clock with
      | None -> action ()
      | Some until ->
          t.parked <- t.parked + 1;
          let until =
            if until <= t.clock then Time.(t.clock + Time.of_ns 1) else until
          in
          at t until (gated t fid action))

(* Observer events: scheduled with the maximal tie key and without drawing
   from the perturbation RNG, so they run after every same-time workload
   event and attaching them leaves a seeded schedule bit-for-bit intact
   (the tie-key stream only advances for workload events). *)
let at_observer t time action =
  if time < t.clock then
    invalid_arg
      (Printf.sprintf "Engine.at_observer: time %d is in the past (now %d)" time
         t.clock);
  let seq = t.seq in
  t.seq <- seq + 1;
  Heap.add t.queue { time; seq; tie = max_int; action }

let periodic t ~interval tick =
  if interval <= Time.zero then
    invalid_arg "Engine.periodic: interval must be positive";
  let rec arm () =
    at_observer t Time.(t.clock + interval) (fun () -> if tick () then arm ())
  in
  arm ()

let pending_events t = Heap.length t.queue

(* Runs a slice of fiber [fid]'s code (its body or a resumed continuation)
   with [current] set for the duration, so that thread packages built on top
   can implement "self". *)
let in_fiber t fid f =
  let prev = t.current in
  t.current <- Some fid;
  Fun.protect ~finally:(fun () -> t.current <- prev) f

(* Runs [f] as the body of fiber [fid] under the Suspend handler.  The fiber
   accounting ([live]) brackets the whole fiber lifetime: a suspended fiber
   remains live until its continuation eventually terminates. *)
let start_fiber t fid f =
  let open Effect.Deep in
  let handler =
    {
      retc = (fun () -> t.live <- t.live - 1);
      exnc =
        (fun e ->
          t.live <- t.live - 1;
          raise e);
      effc =
        (fun (type a) (eff : a Effect.t) ->
          match eff with
          | Suspend register ->
              Some
                (fun (k : (a, unit) continuation) ->
                  let resumed = ref false in
                  let resume () =
                    if !resumed then invalid_arg "Engine: fiber resumed twice";
                    resumed := true;
                    at t t.clock
                      (gated t fid (fun () ->
                           in_fiber t fid (fun () -> continue k ())))
                  in
                  register resume)
          | _ -> None);
    }
  in
  in_fiber t fid (fun () -> match_with f () handler)

let spawn t f =
  let fid = t.next_fiber in
  t.next_fiber <- fid + 1;
  t.live <- t.live + 1;
  after t Time.zero (gated t fid (fun () -> start_fiber t fid f));
  fid

let suspend _t register = Effect.perform (Suspend register)
let sleep t dt = suspend t (fun resume -> after t dt resume)

let run ?limit t =
  let continue_ = ref true in
  while !continue_ do
    match Heap.peek t.queue with
    | None ->
        if t.live > 0 then raise (Stalled t.live);
        continue_ := false
    | Some ev ->
        (match limit with
        | Some l when ev.time > l -> continue_ := false
        | Some _ | None ->
            (match Heap.pop t.queue with
            | None -> assert false
            | Some ev ->
                t.clock <- ev.time;
                t.executed <- t.executed + 1;
                ev.action ()))
  done

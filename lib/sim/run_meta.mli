(** Self-describing run metadata for exported JSON artifacts.

    Every exporter ({!Dsmpm2_core.Monitor.to_json}, the watchdog health
    report, [dsm analyze --out], the macro-bench suite) embeds one of these
    under a ["meta"] key: the git revision the binary was built from (best
    effort), the engine tie seed, the network driver, the protocol, the
    cluster size and a free-form case identifier.  [dsm diff] uses
    {!compatible} to refuse comparing artifacts produced under different
    identities — only the git revision is allowed to differ, since
    different code revisions are the whole point of a diff. *)

type t = {
  rm_git_rev : string option;
  rm_tie_seed : int option;
  rm_driver : string option;
  rm_protocol : string option;
  rm_nodes : int option;
  rm_case : string option;
}

val empty : t
val equal : t -> t -> bool

val v :
  ?git_rev:string ->
  ?tie_seed:int ->
  ?driver:string ->
  ?protocol:string ->
  ?nodes:int ->
  ?case:string ->
  unit ->
  t

val current_git_rev : unit -> string option
(** The commit the working tree points at, found by walking up from the
    current directory to [.git/HEAD] (one level of [ref:] indirection
    resolved); the [DSM_GIT_REV] environment variable overrides.  Cached
    after the first call. *)

val with_git : t -> t
(** Fills [rm_git_rev] from {!current_git_rev} when unset. *)

val to_json : t -> Json.t
(** An object holding only the fields that are set. *)

val of_json : Json.t -> (t, string) result
(** Tolerant inverse: missing fields load as [None]. *)

val compatible : baseline:t -> fresh:t -> (unit, string) result
(** [Ok] when every identity field present on both sides agrees (tie seed,
    driver, protocol, nodes, case).  The git revision never participates.
    [Error] names each mismatching field with both values. *)

val pp : Format.formatter -> t -> unit

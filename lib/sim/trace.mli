(** Post-mortem event trace with typed events and causal span ids.

    The paper highlights PM2's "very precise post-mortem monitoring tools"
    as part of the platform's value; this module is their equivalent.  When
    enabled, components record timestamped {e typed} events (faults, page
    requests and transfers, invalidations, diffs, lock and barrier traffic,
    thread migrations); after the run the trace can be dumped as text,
    JSONL or Chrome [trace_event] JSON, filtered by category or span, or
    hashed (the hash is used by the determinism tests: same seed => same
    trace).

    A {e span id} links every event belonging to one logical operation: a
    remote access carries its span from fault detection through request
    forwarding, page transfer and install, across nodes.  Free-form
    [record]/[recordf] lines are still supported and become [Message]
    events. *)

type event =
  | Fault of { node : int; page : int; protocol : string; mode : string }
      (** [mode] is ["read"] or ["write"]. *)
  | Page_request of {
      node : int;  (** serving node *)
      page : int;
      protocol : string;
      mode : string;
      requester : int;
    }
  | Page_send of {
      node : int;  (** sending node *)
      page : int;
      protocol : string;
      dst : int;
      bytes : int;
      grant : string;  (** access granted to the receiver *)
    }
  | Page_install of {
      node : int;  (** installing node *)
      page : int;
      protocol : string;
      sender : int;
      grant : string;
    }
  | Invalidate of { node : int; page : int; protocol : string; sender : int }
  | Diff of {
      node : int;  (** receiving node (the home applying the batch) *)
      pages : int;  (** batch size, [List.length page_list] *)
      page_list : int list;  (** the diffed pages, so traffic is attributable *)
      bytes : int;  (** wire bytes of the whole batch *)
      sender : int;
      release : bool;
      protocol : string;  (** the pages' protocol (batches are split per protocol) *)
    }
  | Lock of { node : int; lock : int; op : string }
  | Barrier of { node : int; barrier : int }
  | Migration of { thread : int; src : int; dst : int }
  | Alert of { severity : string; kind : string; node : int; detail : string }
      (** Watchdog finding.  [severity] is one of {!alert_severities};
          [kind] is a dotted taxonomy name ("invariant.owner",
          "deadlock.cycle", "stall.lock", "thrash.page", ...); [node] is the
          node the finding concerns or [-1] for run-wide findings; [detail]
          carries the human-readable evidence. *)
  | Drop of { src : int; dst : int; kind : string }
      (** A message lost by the fault plan's seeded per-message loss draw
          ([Network.send]).  [kind] is the message-kind name
          ("msg.request", "msg.bulk", ...); the span is the operation the
          message belonged to, so the blame engine can tie the loss to the
          access it starved. *)
  | Blackhole of { src : int; dst : int; kind : string; down : int }
      (** A message swallowed by a crash window: [down] is the crashed node
          ([src] at send time or [dst] at arrival time). *)
  | Crash of { node : int; up : Time.t }
      (** A fault-plan crash window opening on [node]; [up] is the window's
          scheduled end, so a post-mortem trace carries the full bounds. *)
  | Restart of { node : int }  (** The crash window on [node] closing. *)
  | Rpc_retry of { service : string; src : int; dst : int; attempt : int }
      (** A retransmission going out after a reply deadline expired
          ([Rpc.call]); [attempt] counts the attempts already made. *)
  | Message of { category : string; message : string }
      (** Free-form compatibility events from [record]/[recordf]. *)

val no_span : int
(** The span id of events outside any operation ([-1]). *)

val alert_severities : string list
(** The valid [Alert] severities, mildest first:
    [["info"; "warning"; "critical"]]. *)

val valid_severity : string -> bool
(** Whether a string is a member of {!alert_severities}.  {!event_of_json}
    rejects alert objects whose severity fails this check. *)

val event_category : event -> string
(** The legacy category name ("fault", "request", "page", ...) used by the
    text renderer and per-category summaries. *)

val event_message : event -> string
(** The legacy human-readable rendering. *)

val event_node : event -> int
(** The node an event belongs to, or [-1] when it has no natural node
    (free-form messages). *)

type entry = { at : Time.t; span : int; category : string; message : string }

type t

val create : ?enabled:bool -> unit -> t
val enable : t -> bool -> unit
val enabled : t -> bool

(** {2 Flight recorder}

    By default a trace grows without bound.  {!set_capacity} turns it into a
    bounded ring: the newest [n] events are kept, older ones are evicted
    (counted by {!evicted}), and memory stays constant for arbitrarily long
    runs.  Attaching or resizing the recorder never touches the engine — a
    seeded schedule is bit-for-bit identical with and without it. *)

val set_capacity : t -> int -> unit
(** Bounds the trace to the newest [n] events ([n > 0]; raises
    [Invalid_argument] otherwise).  Shrinking below the current size drops
    the oldest entries immediately. *)

val capacity : t -> int option
(** The configured bound, or [None] for an unbounded trace. *)

val recorded : t -> int
(** Events ever recorded, including evicted ones; monotonic.  This is the
    cursor space of {!recent}. *)

val evicted : t -> int
(** Events overwritten by the ring ([recorded - length]); 0 while
    unbounded. *)

val set_autodump : t -> string -> unit
(** Arms the flight-recorder dump: the first critical [Alert] recorded
    after this call writes the whole trace to the given path with
    {!save_jsonl} (gzip for [.gz] paths) and disarms.  Re-arming resets the
    fired flag. *)

val autodump_path : t -> string option
val autodump_fired : t -> bool

(** {2 Observer & sampling}

    One subscriber may observe the live event stream at emit time — before
    the sampler's keep/drop decision and before the flight recorder evicts
    anything — so online consumers ({!Telemetry}) see every event while
    stored history stays bounded.  Observers must be passive (no engine
    events, no shared RNG draws): under that contract attaching one never
    perturbs a seeded schedule.

    Sampling is deterministic and head-based: one seeded draw per span id
    decides the fate of the whole operation, so kept spans are kept {e
    entirely} (causal chains stay whole for [dsm explain]) and the same
    (seed, span) always decides the same way, independent of emission order
    — sampled runs remain replayable.  Alerts, fault-plan events ([Drop],
    [Blackhole], [Crash], [Restart], [Rpc_retry]), free-form [Message]s and
    events outside any span are always kept. *)

val set_observer : t -> (entry -> event -> unit) -> unit
(** Attaches the observer.  Raises [Invalid_argument] when one is already
    attached (there is exactly one slot; compose externally if needed). *)

val clear_observer : t -> unit

val set_sampling : t -> seed:int -> keep_pct:float -> unit
(** Enables head-based span sampling: a span is stored with probability
    [keep_pct]% under a pure function of [(seed, span id)].  Raises
    [Invalid_argument] unless [0 <= keep_pct <= 100].  [keep_pct = 100.]
    keeps everything; [0.] keeps only the always-kept kinds. *)

val sampling : t -> (int * float) option
(** The configured [(seed, keep_pct)], or [None] when unsampled. *)

val span_kept : t -> int -> bool
(** Whether the sampler keeps the given span id ([true] when unsampled or
    for [no_span]) — the deterministic per-span decision, exposed so tests
    and tools can predict a sampled trace's contents. *)

val sampled_out : t -> int
(** Events dropped by the sampler since creation (monotonic, reset by
    {!clear}).  Disjoint from {!evicted}: sampled-out events were never
    stored and do not advance {!recorded}. *)

(** {2 Span context}

    All span bookkeeping is a no-op while the trace is disabled. *)

val new_span : t -> int
(** A fresh span id ([no_span] when disabled). *)

val set_thread_span : t -> tid:int -> int -> unit
(** Associates the active span with a Marcel thread; passing [no_span]
    clears the association. *)

val clear_thread_span : t -> tid:int -> unit

val thread_span : t -> tid:int -> int
(** The thread's active span, or [no_span]. *)

(** {2 Recording} *)

val emit : t -> Engine.t -> ?span:int -> event -> unit
(** No-op when the trace is disabled.  Call sites on hot paths should guard
    with {!enabled} so the event itself is not even allocated. *)

val record : t -> Engine.t -> category:string -> string -> unit
(** No-op when the trace is disabled. *)

val recordf :
  t -> Engine.t -> category:string -> ('a, Format.formatter, unit, unit) format4 -> 'a
(** Like [record] with a format string; the message is only built when the
    trace is enabled. *)

(** {2 Inspection} *)

val entries : t -> entry list
(** In chronological order. *)

val events : t -> (entry * event) list
(** In chronological order, with the typed event. *)

val by_category : t -> string -> entry list

val by_span : t -> int -> (entry * event) list
(** Every event of one logical operation, chronological. *)

val spans : t -> (int * (entry * event) list) list
(** Every span's events grouped (chronological within a group), ordered by
    first appearance — each group is one logical operation's full chain. *)

val length : t -> int
(** Number of events currently stored ([<= recorded] once the flight
    recorder evicts); O(1). *)

val recent : t -> since:int -> (entry * event) list
(** [recent t ~since] returns the events recorded after cursor [since],
    chronological — the watchdog's incremental feed.  The cursor counts
    ever-recorded events ({!recorded}), so it stays correct across ring
    eviction: events already overwritten are silently skipped.  Cost and
    allocation are proportional to the number of fresh events, not the
    whole trace (a call with nothing new allocates nothing); call with
    [since = recorded t] from the previous read. *)

val hash : t -> int
(** Order-sensitive digest of the whole trace. *)

val pp : Format.formatter -> t -> unit

val clear : t -> unit
(** Drops all entries and resets span allocation. *)

(** {2 Exporters} *)

val event_to_json : at:Time.t -> span:int -> event -> Json.t
(** One flat object: [at_ns], [span], ["type"] plus the event's fields. *)

val event_of_json : Json.t -> (Time.t * int * event) option
(** Inverse of {!event_to_json}; [None] on unknown or malformed input. *)

val to_jsonl : Format.formatter -> t -> unit
(** One {!event_to_json} object per line, chronological. *)

val of_events : (Time.t * int * event) list -> t
(** Rebuilds a (disabled, post-mortem) trace from chronological typed
    events; inspection and export behave as on a live trace. *)

val of_jsonl : string -> (t, string) result
(** [of_jsonl contents] re-loads a {!to_jsonl} dump (the whole file as one
    string).  Blank lines are skipped; [Error] carries the first offending
    line's number.  Inverse of {!to_jsonl}: exporting the result re-prints
    the same lines. *)

val chrome_json : t -> Json.t
(** The whole trace as a Chrome [trace_event] document: instant events with
    the node as [pid], the span as [tid], and node/page/protocol/span in
    [args] — loadable in chrome://tracing or Perfetto. *)

val to_chrome : Format.formatter -> t -> unit

val save_jsonl : string -> t -> unit
(** Writes the {!to_jsonl} dump to a file; a path ending in [.gz] is
    gzip-compressed ({!Gzip.write_file}), so large macro-run artifacts stay
    small in CI. *)

val load_jsonl : string -> (t, string) result
(** Reads a JSONL dump back from a file, transparently decompressing gzip
    contents (sniffed by magic bytes, not just the [.gz] extension), then
    {!of_jsonl}.  Errors are prefixed with the path. *)

(* Self-describing run metadata, embedded in every JSON artifact the
   observability stack exports.  A baseline that knows which git revision,
   tie seed, driver, protocol and cluster size produced it can be compared
   months later — and `dsm diff` can refuse apples-to-oranges comparisons
   instead of printing nonsense deltas. *)

type t = {
  rm_git_rev : string option;
  rm_tie_seed : int option;
  rm_driver : string option;
  rm_protocol : string option;
  rm_nodes : int option;
  rm_case : string option;
}

let empty =
  {
    rm_git_rev = None;
    rm_tie_seed = None;
    rm_driver = None;
    rm_protocol = None;
    rm_nodes = None;
    rm_case = None;
  }

let v ?git_rev ?tie_seed ?driver ?protocol ?nodes ?case () =
  {
    rm_git_rev = git_rev;
    rm_tie_seed = tie_seed;
    rm_driver = driver;
    rm_protocol = protocol;
    rm_nodes = nodes;
    rm_case = case;
  }

let equal = ( = )

(* --- git revision discovery ---

   Best effort and cached: walk up from the current directory looking for
   .git/HEAD, resolving one level of "ref:" indirection.  DSM_GIT_REV
   overrides (useful when running from an exported tarball in CI). *)

let read_first_line path =
  try
    In_channel.with_open_text path (fun ic ->
        match In_channel.input_line ic with
        | Some l -> Some (String.trim l)
        | None -> None)
  with Sys_error _ -> None

let resolve_head dir =
  match read_first_line (Filename.concat dir "HEAD") with
  | None -> None
  | Some head ->
      if String.length head > 5 && String.sub head 0 5 = "ref: " then
        let ref_path = String.sub head 5 (String.length head - 5) in
        read_first_line (Filename.concat dir ref_path)
      else Some head

let detect_git_rev () =
  match Sys.getenv_opt "DSM_GIT_REV" with
  | Some rev when rev <> "" -> Some rev
  | _ ->
      let rec walk dir depth =
        if depth > 6 then None
        else
          let git = Filename.concat dir ".git" in
          if Sys.file_exists git && Sys.is_directory git then resolve_head git
          else
            let parent = Filename.dirname dir in
            if parent = dir then None else walk parent (depth + 1)
      in
      (try walk (Sys.getcwd ()) 0 with Sys_error _ -> None)

let git_rev_cache = lazy (detect_git_rev ())
let current_git_rev () = Lazy.force git_rev_cache

let with_git t =
  match t.rm_git_rev with
  | Some _ -> t
  | None -> { t with rm_git_rev = current_git_rev () }

(* --- JSON --- *)

let to_json t =
  let opt name conv = function Some v -> [ (name, conv v) ] | None -> [] in
  Json.Obj
    (List.concat
       [
         opt "git_rev" (fun s -> Json.String s) t.rm_git_rev;
         opt "tie_seed" (fun i -> Json.Int i) t.rm_tie_seed;
         opt "driver" (fun s -> Json.String s) t.rm_driver;
         opt "protocol" (fun s -> Json.String s) t.rm_protocol;
         opt "nodes" (fun i -> Json.Int i) t.rm_nodes;
         opt "case" (fun s -> Json.String s) t.rm_case;
       ])

let of_json json =
  match json with
  | Json.Obj _ ->
      let str name = Option.bind (Json.member name json) Json.to_str in
      let int name = Option.bind (Json.member name json) Json.to_int in
      Ok
        {
          rm_git_rev = str "git_rev";
          rm_tie_seed = int "tie_seed";
          rm_driver = str "driver";
          rm_protocol = str "protocol";
          rm_nodes = int "nodes";
          rm_case = str "case";
        }
  | _ -> Error "run metadata is not an object"

(* --- compatibility ---

   Two artifacts are comparable when every identity field present on BOTH
   sides agrees.  The git revision is exempt: differing code revisions are
   exactly what a diff is for.  A field missing on either side is tolerated
   (older artifacts carry less metadata). *)

let compatible ~baseline ~fresh =
  let mismatch name show a b =
    match (a, b) with
    | Some x, Some y when x <> y -> [ Printf.sprintf "%s %s vs %s" name (show x) (show y) ]
    | _ -> []
  in
  let s x = x in
  let problems =
    List.concat
      [
        mismatch "tie_seed" string_of_int baseline.rm_tie_seed fresh.rm_tie_seed;
        mismatch "driver" s baseline.rm_driver fresh.rm_driver;
        mismatch "protocol" s baseline.rm_protocol fresh.rm_protocol;
        mismatch "nodes" string_of_int baseline.rm_nodes fresh.rm_nodes;
        mismatch "case" s baseline.rm_case fresh.rm_case;
      ]
  in
  match problems with
  | [] -> Ok ()
  | ps -> Error ("metadata mismatch: " ^ String.concat ", " ps)

let pp ppf t =
  let field name = function
    | Some v -> Some (Printf.sprintf "%s=%s" name v)
    | None -> None
  in
  let fields =
    List.filter_map Fun.id
      [
        field "git" t.rm_git_rev;
        field "seed" (Option.map string_of_int t.rm_tie_seed);
        field "driver" t.rm_driver;
        field "protocol" t.rm_protocol;
        field "nodes" (Option.map string_of_int t.rm_nodes);
        field "case" t.rm_case;
      ]
  in
  Format.pp_print_string ppf
    (match fields with [] -> "(no metadata)" | fs -> String.concat " " fs)

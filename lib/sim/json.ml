type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

(* --- printing --- *)

let escape buf s =
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s

let float_repr x =
  if Float.is_integer x && Float.abs x < 1e15 then Printf.sprintf "%.1f" x
  else Printf.sprintf "%.6g" x

let rec write buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float x ->
      if not (Float.is_finite x) then
        (* JSON has no nan/inf; degrade to null rather than emit garbage. *)
        Buffer.add_string buf "null"
      else Buffer.add_string buf (float_repr x)
  | String s ->
      Buffer.add_char buf '"';
      escape buf s;
      Buffer.add_char buf '"'
  | List xs ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i x ->
          if i > 0 then Buffer.add_char buf ',';
          write buf x)
        xs;
      Buffer.add_char buf ']'
  | Obj fields ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          Buffer.add_char buf '"';
          escape buf k;
          Buffer.add_string buf "\":";
          write buf v)
        fields;
      Buffer.add_char buf '}'

let to_string t =
  let buf = Buffer.create 256 in
  write buf t;
  Buffer.contents buf

let pp ppf t = Format.pp_print_string ppf (to_string t)

(* Pretty printing with two-space indentation, for human-facing files. *)
let rec write_pretty buf indent = function
  | List (_ :: _ as xs) ->
      let pad = String.make indent ' ' in
      Buffer.add_string buf "[\n";
      List.iteri
        (fun i x ->
          if i > 0 then Buffer.add_string buf ",\n";
          Buffer.add_string buf pad;
          Buffer.add_string buf "  ";
          write_pretty buf (indent + 2) x)
        xs;
      Buffer.add_char buf '\n';
      Buffer.add_string buf pad;
      Buffer.add_char buf ']'
  | Obj (_ :: _ as fields) ->
      let pad = String.make indent ' ' in
      Buffer.add_string buf "{\n";
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_string buf ",\n";
          Buffer.add_string buf pad;
          Buffer.add_string buf "  \"";
          escape buf k;
          Buffer.add_string buf "\": ";
          write_pretty buf (indent + 2) v)
        fields;
      Buffer.add_char buf '\n';
      Buffer.add_string buf pad;
      Buffer.add_char buf '}'
  | t -> write buf t

let to_string_pretty t =
  let buf = Buffer.create 1024 in
  write_pretty buf 0 t;
  Buffer.contents buf

let to_file path t =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc (to_string_pretty t);
      output_char oc '\n')

(* --- parsing (recursive descent; enough for this library's own output) --- *)

exception Parse_error of string

type cursor = { src : string; mutable pos : int }

let peek c = if c.pos < String.length c.src then Some c.src.[c.pos] else None

let skip_ws c =
  while
    c.pos < String.length c.src
    && match c.src.[c.pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false
  do
    c.pos <- c.pos + 1
  done

let fail c msg = raise (Parse_error (Printf.sprintf "%s at offset %d" msg c.pos))

let expect c ch =
  match peek c with
  | Some x when x = ch -> c.pos <- c.pos + 1
  | _ -> fail c (Printf.sprintf "expected %c" ch)

let literal c word value =
  let n = String.length word in
  if c.pos + n <= String.length c.src && String.sub c.src c.pos n = word then begin
    c.pos <- c.pos + n;
    value
  end
  else fail c (Printf.sprintf "expected %s" word)

let parse_string_body c =
  let buf = Buffer.create 16 in
  let rec loop () =
    match peek c with
    | None -> fail c "unterminated string"
    | Some '"' -> c.pos <- c.pos + 1
    | Some '\\' -> (
        c.pos <- c.pos + 1;
        match peek c with
        | Some '"' -> Buffer.add_char buf '"'; c.pos <- c.pos + 1; loop ()
        | Some '\\' -> Buffer.add_char buf '\\'; c.pos <- c.pos + 1; loop ()
        | Some '/' -> Buffer.add_char buf '/'; c.pos <- c.pos + 1; loop ()
        | Some 'n' -> Buffer.add_char buf '\n'; c.pos <- c.pos + 1; loop ()
        | Some 'r' -> Buffer.add_char buf '\r'; c.pos <- c.pos + 1; loop ()
        | Some 't' -> Buffer.add_char buf '\t'; c.pos <- c.pos + 1; loop ()
        | Some 'b' -> Buffer.add_char buf '\b'; c.pos <- c.pos + 1; loop ()
        | Some 'u' ->
            if c.pos + 5 > String.length c.src then fail c "bad \\u escape";
            let hex = String.sub c.src (c.pos + 1) 4 in
            let code =
              try int_of_string ("0x" ^ hex) with _ -> fail c "bad \\u escape"
            in
            (* ASCII only; non-ASCII escapes degrade to '?'. *)
            Buffer.add_char buf (if code < 0x80 then Char.chr code else '?');
            c.pos <- c.pos + 5;
            loop ()
        | _ -> fail c "bad escape")
    | Some ch ->
        Buffer.add_char buf ch;
        c.pos <- c.pos + 1;
        loop ()
  in
  loop ();
  Buffer.contents buf

let parse_number c =
  let start = c.pos in
  let is_num_char ch =
    match ch with
    | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
    | _ -> false
  in
  while c.pos < String.length c.src && is_num_char c.src.[c.pos] do
    c.pos <- c.pos + 1
  done;
  let s = String.sub c.src start (c.pos - start) in
  match int_of_string_opt s with
  | Some i -> Int i
  | None -> (
      match float_of_string_opt s with
      | Some f -> Float f
      | None -> fail c "bad number")

let rec parse_value c =
  skip_ws c;
  match peek c with
  | None -> fail c "unexpected end of input"
  | Some 'n' -> literal c "null" Null
  | Some 't' -> literal c "true" (Bool true)
  | Some 'f' -> literal c "false" (Bool false)
  | Some '"' ->
      c.pos <- c.pos + 1;
      String (parse_string_body c)
  | Some '[' ->
      c.pos <- c.pos + 1;
      skip_ws c;
      if peek c = Some ']' then begin
        c.pos <- c.pos + 1;
        List []
      end
      else
        let rec items acc =
          let v = parse_value c in
          skip_ws c;
          match peek c with
          | Some ',' ->
              c.pos <- c.pos + 1;
              items (v :: acc)
          | Some ']' ->
              c.pos <- c.pos + 1;
              List (List.rev (v :: acc))
          | _ -> fail c "expected , or ]"
        in
        items []
  | Some '{' ->
      c.pos <- c.pos + 1;
      skip_ws c;
      if peek c = Some '}' then begin
        c.pos <- c.pos + 1;
        Obj []
      end
      else
        let field () =
          skip_ws c;
          expect c '"';
          let k = parse_string_body c in
          skip_ws c;
          expect c ':';
          let v = parse_value c in
          (k, v)
        in
        let rec fields acc =
          let kv = field () in
          skip_ws c;
          match peek c with
          | Some ',' ->
              c.pos <- c.pos + 1;
              fields (kv :: acc)
          | Some '}' ->
              c.pos <- c.pos + 1;
              Obj (List.rev (kv :: acc))
          | _ -> fail c "expected , or }"
        in
        fields []
  | Some _ -> parse_number c

let of_string s =
  let c = { src = s; pos = 0 } in
  try
    let v = parse_value c in
    skip_ws c;
    if c.pos <> String.length s then Error "trailing garbage" else Ok v
  with Parse_error msg -> Error msg

(* --- accessors --- *)

let member name = function
  | Obj fields -> List.assoc_opt name fields
  | _ -> None

let to_int = function Int i -> Some i | _ -> None
let to_float = function Float f -> Some f | Int i -> Some (float_of_int i) | _ -> None
let to_str = function String s -> Some s | _ -> None
let to_bool = function Bool b -> Some b | _ -> None
let to_list = function List xs -> Some xs | _ -> None

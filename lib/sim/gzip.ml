(* A self-contained gzip codec so large trace/bench artifacts stay small in
   CI without pulling a compression dependency into the tree.

   The writer emits RFC 1952 containers around RFC 1951 *stored* blocks:
   byte-identical input, a few bytes of framing per 64 KiB, and every
   external gzip tool can read the result.  The reader implements the full
   inflate algorithm (stored, fixed-Huffman and dynamic-Huffman blocks), so
   it also loads artifacts recompressed by gzip/zlib at any level, and
   verifies the trailing CRC32 and length. *)

(* --- CRC32 (the gzip polynomial, reflected) --- *)

let crc_table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref n in
         for _ = 0 to 7 do
           c := if !c land 1 = 1 then 0xedb88320 lxor (!c lsr 1) else !c lsr 1
         done;
         !c))

let crc32 s =
  let table = Lazy.force crc_table in
  let c = ref 0xffffffff in
  String.iter
    (fun ch -> c := table.((!c lxor Char.code ch) land 0xff) lxor (!c lsr 8))
    s;
  !c lxor 0xffffffff

(* --- sniffing --- *)

let is_gzip s = String.length s >= 2 && s.[0] = '\x1f' && s.[1] = '\x8b'
let gzip_path path = Filename.check_suffix path ".gz"

(* --- compression: stored deflate blocks in a gzip container --- *)

let compress input =
  let buf = Buffer.create (String.length input + 64) in
  let byte b = Buffer.add_char buf (Char.chr (b land 0xff)) in
  let le16 v = byte v; byte (v lsr 8) in
  let le32 v = le16 (v land 0xffff); le16 ((v lsr 16) land 0xffff) in
  (* header: magic, deflate method, no flags, no mtime, no extra flags,
     "unknown" OS *)
  byte 0x1f; byte 0x8b; byte 0x08; byte 0x00;
  le32 0; byte 0x00; byte 0xff;
  let n = String.length input in
  let max_block = 0xffff in
  let rec blocks off =
    let len = min max_block (n - off) in
    let final = off + len >= n in
    byte (if final then 1 else 0);  (* BFINAL, BTYPE=00 (stored) *)
    le16 len;
    le16 (lnot len);
    Buffer.add_substring buf input off len;
    if not final then blocks (off + len)
  in
  blocks 0;
  le32 (crc32 input);
  le32 (n land 0xffffffff);
  Buffer.contents buf

(* --- decompression: full inflate --- *)

exception Corrupt of string

type bits = { data : string; mutable pos : int; mutable bit : int }

let byte_at r i =
  if i >= String.length r.data then raise (Corrupt "truncated stream");
  Char.code r.data.[i]

let get_bit r =
  let b = (byte_at r r.pos lsr r.bit) land 1 in
  if r.bit = 7 then begin r.bit <- 0; r.pos <- r.pos + 1 end
  else r.bit <- r.bit + 1;
  b

let get_bits r n =
  let v = ref 0 in
  for i = 0 to n - 1 do
    v := !v lor (get_bit r lsl i)
  done;
  !v

let align_byte r = if r.bit > 0 then begin r.bit <- 0; r.pos <- r.pos + 1 end

(* Canonical Huffman decoding from code lengths, bit by bit (RFC 1951
   section 3.2.2): per length, track the first code and the symbol offset. *)
type huffman = { counts : int array; symbols : int array }

let build_huffman lengths =
  let max_bits = 15 in
  let counts = Array.make (max_bits + 1) 0 in
  Array.iter (fun l -> if l > 0 then counts.(l) <- counts.(l) + 1) lengths;
  let offsets = Array.make (max_bits + 2) 0 in
  for l = 1 to max_bits do
    offsets.(l + 1) <- offsets.(l) + counts.(l)
  done;
  let symbols = Array.make offsets.(max_bits + 1) 0 in
  Array.iteri
    (fun sym l ->
      if l > 0 then begin
        symbols.(offsets.(l)) <- sym;
        offsets.(l) <- offsets.(l) + 1
      end)
    lengths;
  { counts; symbols }

let decode r h =
  let code = ref 0 and first = ref 0 and index = ref 0 in
  let rec go len =
    if len > 15 then raise (Corrupt "bad Huffman code");
    code := !code lor get_bit r;
    let count = h.counts.(len) in
    if !code - !first < count then h.symbols.(!index + (!code - !first))
    else begin
      index := !index + count;
      first := (!first + count) lsl 1;
      code := !code lsl 1;
      go (len + 1)
    end
  in
  go 1

let length_base =
  [| 3; 4; 5; 6; 7; 8; 9; 10; 11; 13; 15; 17; 19; 23; 27; 31; 35; 43; 51; 59;
     67; 83; 99; 115; 131; 163; 195; 227; 258 |]

let length_extra =
  [| 0; 0; 0; 0; 0; 0; 0; 0; 1; 1; 1; 1; 2; 2; 2; 2; 3; 3; 3; 3; 4; 4; 4; 4;
     5; 5; 5; 5; 0 |]

let dist_base =
  [| 1; 2; 3; 4; 5; 7; 9; 13; 17; 25; 33; 49; 65; 97; 129; 193; 257; 385;
     513; 769; 1025; 1537; 2049; 3073; 4097; 6145; 8193; 12289; 16385; 24577 |]

let dist_extra =
  [| 0; 0; 0; 0; 1; 1; 2; 2; 3; 3; 4; 4; 5; 5; 6; 6; 7; 7; 8; 8; 9; 9; 10;
     10; 11; 11; 12; 12; 13; 13 |]

let fixed_lit =
  lazy
    (build_huffman
       (Array.init 288 (fun i ->
            if i < 144 then 8 else if i < 256 then 9 else if i < 280 then 7 else 8)))

let fixed_dist = lazy (build_huffman (Array.make 30 5))

let inflate_block r out lit dist =
  let rec loop () =
    let sym = decode r lit in
    if sym < 256 then begin
      Buffer.add_char out (Char.chr sym);
      loop ()
    end
    else if sym > 256 then begin
      if sym > 285 then raise (Corrupt "bad length symbol");
      let idx = sym - 257 in
      let len = length_base.(idx) + get_bits r length_extra.(idx) in
      let dsym = decode r dist in
      if dsym > 29 then raise (Corrupt "bad distance symbol");
      let d = dist_base.(dsym) + get_bits r dist_extra.(dsym) in
      let start = Buffer.length out - d in
      if start < 0 then raise (Corrupt "distance before start of output");
      (* Byte-by-byte so overlapping copies replicate, as deflate requires. *)
      for i = start to start + len - 1 do
        Buffer.add_char out (Buffer.nth out i)
      done;
      loop ()
    end
    (* sym = 256: end of block *)
  in
  loop ()

let code_length_order =
  [| 16; 17; 18; 0; 8; 7; 9; 6; 10; 5; 11; 4; 12; 3; 13; 2; 14; 1; 15 |]

let read_dynamic_tables r =
  let hlit = get_bits r 5 + 257 in
  let hdist = get_bits r 5 + 1 in
  let hclen = get_bits r 4 + 4 in
  let cl_lengths = Array.make 19 0 in
  for i = 0 to hclen - 1 do
    cl_lengths.(code_length_order.(i)) <- get_bits r 3
  done;
  let cl = build_huffman cl_lengths in
  let lengths = Array.make (hlit + hdist) 0 in
  let i = ref 0 in
  while !i < hlit + hdist do
    let sym = decode r cl in
    if sym < 16 then begin
      lengths.(!i) <- sym;
      incr i
    end
    else begin
      let repeat, value =
        match sym with
        | 16 ->
            if !i = 0 then raise (Corrupt "repeat with no previous length");
            (3 + get_bits r 2, lengths.(!i - 1))
        | 17 -> (3 + get_bits r 3, 0)
        | 18 -> (11 + get_bits r 7, 0)
        | _ -> raise (Corrupt "bad code-length symbol")
      in
      if !i + repeat > hlit + hdist then raise (Corrupt "length overflow");
      for _ = 1 to repeat do
        lengths.(!i) <- value;
        incr i
      done
    end
  done;
  ( build_huffman (Array.sub lengths 0 hlit),
    build_huffman (Array.sub lengths hlit hdist) )

let inflate r out =
  let rec block () =
    let final = get_bit r = 1 in
    (match get_bits r 2 with
    | 0 ->
        align_byte r;
        let len = byte_at r r.pos lor (byte_at r (r.pos + 1) lsl 8) in
        let nlen = byte_at r (r.pos + 2) lor (byte_at r (r.pos + 3) lsl 8) in
        if len land 0xffff <> lnot nlen land 0xffff then
          raise (Corrupt "stored-block length check failed");
        r.pos <- r.pos + 4;
        if r.pos + len > String.length r.data then
          raise (Corrupt "truncated stored block");
        Buffer.add_substring out r.data r.pos len;
        r.pos <- r.pos + len
    | 1 -> inflate_block r out (Lazy.force fixed_lit) (Lazy.force fixed_dist)
    | 2 ->
        let lit, dist = read_dynamic_tables r in
        inflate_block r out lit dist
    | _ -> raise (Corrupt "reserved block type"));
    if not final then block ()
  in
  block ()

let decompress input =
  try
    let n = String.length input in
    if not (is_gzip input) then raise (Corrupt "not a gzip stream (bad magic)");
    if n < 18 then raise (Corrupt "truncated gzip stream");
    if Char.code input.[2] <> 8 then raise (Corrupt "unknown compression method");
    let flg = Char.code input.[3] in
    let pos = ref 10 in
    let u8 () =
      if !pos >= n then raise (Corrupt "truncated gzip header");
      let b = Char.code input.[!pos] in
      incr pos;
      b
    in
    if flg land 0x04 <> 0 then begin
      (* FEXTRA *)
      let xlen = u8 () lor (u8 () lsl 8) in
      pos := !pos + xlen
    end;
    if flg land 0x08 <> 0 then while u8 () <> 0 do () done;  (* FNAME *)
    if flg land 0x10 <> 0 then while u8 () <> 0 do () done;  (* FCOMMENT *)
    if flg land 0x02 <> 0 then pos := !pos + 2;  (* FHCRC *)
    let r = { data = input; pos = !pos; bit = 0 } in
    let out = Buffer.create (4 * n) in
    inflate r out;
    align_byte r;
    if r.pos + 8 > n then raise (Corrupt "missing gzip trailer");
    let le32 off =
      Char.code input.[off]
      lor (Char.code input.[off + 1] lsl 8)
      lor (Char.code input.[off + 2] lsl 16)
      lor (Char.code input.[off + 3] lsl 24)
    in
    let contents = Buffer.contents out in
    if le32 r.pos <> crc32 contents then raise (Corrupt "CRC32 mismatch");
    if le32 (r.pos + 4) <> Buffer.length out land 0xffffffff then
      raise (Corrupt "length mismatch");
    Ok contents
  with Corrupt msg -> Error msg

(* --- whole-file helpers --- *)

let write_file path contents =
  let data = if gzip_path path then compress contents else contents in
  Out_channel.with_open_bin path (fun oc -> Out_channel.output_string oc data)

let read_file path =
  match In_channel.with_open_bin path In_channel.input_all with
  | contents ->
      if is_gzip contents then decompress contents else Ok contents
  | exception Sys_error msg -> Error msg

(** Deterministic discrete-event simulation engine with effect-based fibers.

    The engine owns a virtual clock and an event queue ordered by
    [(time, sequence number)], so two runs over the same inputs execute events
    in exactly the same order.  Code running inside the engine is organised as
    {e fibers}: lightweight cooperative threads implemented with OCaml 5
    effect handlers.  A fiber suspends by capturing its continuation and
    handing a resume thunk to whoever will wake it (a timer, a message
    delivery, a mutex holder, ...).  Resumption is always mediated by the
    event queue: calling the thunk schedules the continuation at the current
    virtual time rather than running it inline, which keeps stack discipline
    simple and execution order deterministic.

    This module plays the role of the operating-system kernel in the paper's
    stack: everything above (Marcel threads, Madeleine messaging, the DSM
    protocols) is built from [spawn], [suspend] and [after]. *)

type t

val create : ?tie_seed:int -> unit -> t
(** [tie_seed] enables {e schedule perturbation}: events scheduled for the
    same virtual time are ordered by a seed-driven tie key instead of FIFO
    insertion order.  Causality is preserved (an event only enters the queue
    once its creator has run, and distinct times still order by time), so
    every seed is a legal interleaving of the same program — and because the
    tie keys are drawn deterministically, the same seed always replays the
    identical schedule.  Omit it for the classic deterministic FIFO order. *)

val tie_seed : t -> int option
(** The perturbation seed this engine was created with, if any. *)

val now : t -> Time.t
(** Current virtual time. *)

val at : t -> Time.t -> (unit -> unit) -> unit
(** [at t time f] schedules [f] to run at absolute virtual [time] (which must
    not be in the past). *)

val after : t -> Time.t -> (unit -> unit) -> unit
(** [after t dt f] schedules [f] at [now t + dt]. *)

val at_observer : t -> Time.t -> (unit -> unit) -> unit
(** Like {!at}, but as an {e observer} event: it carries the maximal tie
    key and never draws from the schedule-perturbation RNG, so it runs
    after every same-time workload event and attaching it to a seeded run
    leaves the workload's schedule bit-for-bit identical.  Used by the
    fault injector to stamp crash-window Crash/Restart events into the
    trace without perturbing the schedule under test. *)

val periodic : t -> interval:Time.t -> (unit -> bool) -> unit
(** [periodic t ~interval tick] runs [tick] every [interval] of virtual time
    for as long as it returns [true] — the heartbeat the online watchdog is
    built on.  The timer is an {e observer}: its events carry the maximal
    tie key and never draw from the schedule-perturbation RNG, so they run
    after every same-time workload event and attaching a periodic observer
    to a seeded run leaves the workload's schedule bit-for-bit identical.
    Raises [Invalid_argument] on a non-positive interval. *)

val set_gate : t -> (int -> Time.t -> Time.t option) -> unit
(** Installs the fault-injection gate.  Before each fiber slice (a fiber's
    first body event or any resumed continuation) runs, the gate receives
    the fiber id and the current virtual time; returning [Some until] parks
    the slice and re-schedules it (and re-consults the gate) at [until] —
    this is how a crashed node's fibers freeze until its restart.  A gate
    returning [None] adds no events and draws nothing from the tie-key
    stream, so an installed but quiescent gate leaves seeded schedules
    bit-for-bit intact.  The gate is consulted at execution time, never at
    scheduling time, so it may depend on mappings (fiber -> node) that are
    only registered after [spawn] returns. *)

val clear_gate : t -> unit

val parked_count : t -> int
(** Number of times the gate parked a fiber slice so far. *)

val pending_events : t -> int
(** Events currently queued.  Inside a [periodic] tick this counts everyone
    {e else}: the tick's own event has been popped and the re-arm is only
    scheduled after the tick returns, so [pending_events t = 0] with
    [live_fibers t > 0] means no event can ever wake the remaining fibers —
    exactly the condition under which {!run} would raise {!Stalled}. *)

val spawn : t -> (unit -> unit) -> int
(** [spawn t f] schedules a new fiber running [f] at the current time and
    returns its fiber id.  While the fiber (or one of its resumed
    continuations) is executing, [current_fiber t] returns this id. *)

val current_fiber : t -> int option
(** The id of the fiber whose code is executing right now, or [None] when
    running in plain event context (timer callbacks, message deliveries). *)

val suspend : t -> ((unit -> unit) -> unit) -> unit
(** [suspend t register] suspends the calling fiber.  [register] receives a
    resume thunk; calling the thunk (at most once) schedules the fiber's
    continuation at the virtual time of the call.  Must be called from within
    a fiber. *)

val sleep : t -> Time.t -> unit
(** Suspends the calling fiber for [dt] of virtual time. *)

val run : ?limit:Time.t -> t -> unit
(** Executes events until the queue drains or the clock would pass [limit].
    Raises [Stalled] if fibers remain suspended with an empty queue and a
    positive count of live fibers (i.e. a deadlock in simulated code). *)

exception Stalled of int
(** Raised by [run] when [n] fibers are still alive but no event can wake
    them. *)

val live_fibers : t -> int
(** Number of spawned fibers that have neither finished nor died. *)

val events_executed : t -> int
(** Total events executed so far; a cheap progress/complexity metric. *)

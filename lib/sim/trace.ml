type event =
  | Fault of { node : int; page : int; protocol : string; mode : string }
  | Page_request of {
      node : int;
      page : int;
      protocol : string;
      mode : string;
      requester : int;
    }
  | Page_send of {
      node : int;
      page : int;
      protocol : string;
      dst : int;
      bytes : int;
      grant : string;
    }
  | Page_install of {
      node : int;
      page : int;
      protocol : string;
      sender : int;
      grant : string;
    }
  | Invalidate of { node : int; page : int; protocol : string; sender : int }
  | Diff of {
      node : int;
      pages : int;
      page_list : int list;
      bytes : int;
      sender : int;
      release : bool;
      protocol : string;
    }
  | Lock of { node : int; lock : int; op : string }
  | Barrier of { node : int; barrier : int }
  | Migration of { thread : int; src : int; dst : int }
  | Alert of { severity : string; kind : string; node : int; detail : string }
  | Message of { category : string; message : string }

let no_span = -1

let alert_severities = [ "info"; "warning"; "critical" ]
let valid_severity s = List.mem s alert_severities

let event_category = function
  | Fault _ -> "fault"
  | Page_request _ -> "request"
  | Page_send _ -> "page.send"
  | Page_install _ -> "page"
  | Invalidate _ -> "invalidate"
  | Diff _ -> "diff"
  | Lock _ -> "lock"
  | Barrier _ -> "barrier"
  | Migration _ -> "migrate"
  | Alert _ -> "alert"
  | Message { category; _ } -> category

let event_message = function
  | Fault { node; page; protocol; mode } ->
      Printf.sprintf "node %d: %s fault on page %d (%s)" node mode page protocol
  | Page_request { node; page; mode; requester; protocol = _ } ->
      Printf.sprintf "node %d: %s request for page %d from %d" node mode page
        requester
  | Page_send { node; page; dst; bytes; grant; protocol = _ } ->
      Printf.sprintf "node %d: page %d sent to %d (%s, %d bytes)" node page dst
        grant bytes
  | Page_install { node; page; sender; grant; protocol = _ } ->
      Printf.sprintf "node %d: page %d received from %d (%s)" node page sender grant
  | Invalidate { node; page; sender; protocol = _ } ->
      Printf.sprintf "node %d: invalidate page %d (from %d)" node page sender
  | Lock { node; lock; op } -> Printf.sprintf "lock %d: %s by node %d" lock op node
  | Barrier { node; barrier } ->
      Printf.sprintf "barrier %d: node %d arrived" barrier node
  | Diff { node; pages; bytes; sender; release; protocol; page_list = _ } ->
      Printf.sprintf "node %d: %d %s diff(s) from %d (%d bytes)%s" node pages
        protocol sender bytes
        (if release then " (release)" else "")
  | Migration { thread; src; dst } ->
      Printf.sprintf "thread %d: node %d -> %d" thread src dst
  | Alert { severity; kind; node; detail } ->
      Printf.sprintf "ALERT[%s] %s%s: %s" severity kind
        (if node < 0 then "" else Printf.sprintf " (node %d)" node)
        detail
  | Message { message; _ } -> message

(* The node a trace event belongs to, for the Chrome exporter's process
   lanes; -1 when the event has no natural node. *)
let event_node = function
  | Fault { node; _ }
  | Page_request { node; _ }
  | Page_send { node; _ }
  | Page_install { node; _ }
  | Invalidate { node; _ }
  | Diff { node; _ }
  | Lock { node; _ }
  | Barrier { node; _ } -> node
  | Migration { src; _ } -> src
  | Alert { node; _ } -> node
  | Message _ -> -1

type entry = { at : Time.t; span : int; category : string; message : string }

type t = {
  mutable on : bool;
  mutable entries : (entry * event) list; (* newest first *)
  mutable count : int; (* length of [entries], maintained on every mutation *)
  mutable next_span : int;
  thread_spans : (int, int) Hashtbl.t; (* tid -> active span *)
}

let create ?(enabled = false) () =
  {
    on = enabled;
    entries = [];
    count = 0;
    next_span = 0;
    thread_spans = Hashtbl.create 16;
  }

let enable t b = t.on <- b
let enabled t = t.on

(* --- span context ---

   Span ids link the events of one logical operation (a remote access
   followed from fault detection through request, transfer and install).
   The id is carried across nodes inside protocol messages and, within a
   node, attached to the Marcel thread doing the work.  All bookkeeping is
   skipped while the trace is disabled so the hot paths stay free. *)

let new_span t =
  if not t.on then no_span
  else begin
    let s = t.next_span in
    t.next_span <- s + 1;
    s
  end

let set_thread_span t ~tid span =
  if t.on then
    if span = no_span then Hashtbl.remove t.thread_spans tid
    else Hashtbl.replace t.thread_spans tid span

let clear_thread_span t ~tid = Hashtbl.remove t.thread_spans tid

let thread_span t ~tid =
  if not t.on then no_span
  else Option.value ~default:no_span (Hashtbl.find_opt t.thread_spans tid)

(* --- recording --- *)

let emit t eng ?(span = no_span) ev =
  if t.on then begin
    let entry =
      {
        at = Engine.now eng;
        span;
        category = event_category ev;
        message = event_message ev;
      }
    in
    t.entries <- (entry, ev) :: t.entries;
    t.count <- t.count + 1
  end

let record t eng ~category message =
  if t.on then begin
    t.entries <-
      ( { at = Engine.now eng; span = no_span; category; message },
        Message { category; message } )
      :: t.entries;
    t.count <- t.count + 1
  end

let recordf t eng ~category fmt =
  if t.on then
    Format.kasprintf
      (fun message ->
        t.entries <-
          ( { at = Engine.now eng; span = no_span; category; message },
            Message { category; message } )
          :: t.entries;
        t.count <- t.count + 1)
      fmt
  else Format.ikfprintf (fun _ -> ()) Format.str_formatter fmt

let entries t = List.rev_map fst t.entries
let events t = List.rev_map (fun (e, ev) -> (e, ev)) t.entries
let by_category t c = List.filter (fun e -> String.equal e.category c) (entries t)
let by_span t s = List.filter (fun (e, _) -> e.span = s) (events t)
let length t = t.count

(* The events recorded after the first [since] ones, chronological: the
   watchdog's incremental feed.  Cost is proportional to the increment, not
   to the whole trace, because [entries] is newest-first. *)
let recent t ~since =
  let fresh = t.count - since in
  if fresh <= 0 then []
  else begin
    let rec take acc n = function
      | x :: rest when n > 0 -> take (x :: acc) (n - 1) rest
      | _ -> acc
    in
    take [] fresh t.entries
  end

(* Every span's events grouped together (chronological inside each group),
   ordered by each span's first event — the analyzer's raw material. *)
let spans t =
  let tbl = Hashtbl.create 64 in
  let order = ref [] in
  List.iter
    (fun ((e, _) as x) ->
      if e.span <> no_span then begin
        (match Hashtbl.find_opt tbl e.span with
        | Some rev -> Hashtbl.replace tbl e.span (x :: rev)
        | None ->
            order := e.span :: !order;
            Hashtbl.replace tbl e.span [ x ])
      end)
    (events t);
  List.rev_map (fun s -> (s, List.rev (Hashtbl.find tbl s))) !order

(* Rebuild a trace from typed events, e.g. re-loaded from a JSONL dump.
   The result is a disabled (post-mortem) trace: inspection and export work,
   recording would need [enable]. *)
let of_events evs =
  let t = create ~enabled:false () in
  let max_span = ref (-1) in
  t.entries <-
    List.rev_map
      (fun (at, span, ev) ->
        if span > !max_span then max_span := span;
        ({ at; span; category = event_category ev; message = event_message ev }, ev))
      evs;
  t.count <- List.length t.entries;
  t.next_span <- !max_span + 1;
  t

let hash t =
  List.fold_left
    (fun acc (e, _) -> Hashtbl.hash (acc, e.at, e.category, e.message))
    0 t.entries

let pp ppf t =
  List.iter
    (fun e -> Format.fprintf ppf "[%a] %-12s %s@." Time.pp e.at e.category e.message)
    (entries t)

let clear t =
  t.entries <- [];
  t.count <- 0;
  t.next_span <- 0;
  Hashtbl.reset t.thread_spans

(* --- JSON export --- *)

let event_fields = function
  | Fault { node; page; protocol; mode } ->
      [
        ("type", Json.String "fault");
        ("node", Json.Int node);
        ("page", Json.Int page);
        ("protocol", Json.String protocol);
        ("mode", Json.String mode);
      ]
  | Page_request { node; page; protocol; mode; requester } ->
      [
        ("type", Json.String "page_request");
        ("node", Json.Int node);
        ("page", Json.Int page);
        ("protocol", Json.String protocol);
        ("mode", Json.String mode);
        ("requester", Json.Int requester);
      ]
  | Page_send { node; page; protocol; dst; bytes; grant } ->
      [
        ("type", Json.String "page_send");
        ("node", Json.Int node);
        ("page", Json.Int page);
        ("protocol", Json.String protocol);
        ("dst", Json.Int dst);
        ("bytes", Json.Int bytes);
        ("grant", Json.String grant);
      ]
  | Page_install { node; page; protocol; sender; grant } ->
      [
        ("type", Json.String "page_install");
        ("node", Json.Int node);
        ("page", Json.Int page);
        ("protocol", Json.String protocol);
        ("sender", Json.Int sender);
        ("grant", Json.String grant);
      ]
  | Invalidate { node; page; protocol; sender } ->
      [
        ("type", Json.String "invalidate");
        ("node", Json.Int node);
        ("page", Json.Int page);
        ("protocol", Json.String protocol);
        ("sender", Json.Int sender);
      ]
  | Diff { node; pages; page_list; bytes; sender; release; protocol } ->
      [
        ("type", Json.String "diff");
        ("node", Json.Int node);
        ("pages", Json.Int pages);
        ("page_list", Json.List (List.map (fun p -> Json.Int p) page_list));
        ("bytes", Json.Int bytes);
        ("sender", Json.Int sender);
        ("release", Json.Bool release);
        ("protocol", Json.String protocol);
      ]
  | Lock { node; lock; op } ->
      [
        ("type", Json.String "lock");
        ("node", Json.Int node);
        ("lock", Json.Int lock);
        ("op", Json.String op);
      ]
  | Barrier { node; barrier } ->
      [
        ("type", Json.String "barrier");
        ("node", Json.Int node);
        ("barrier", Json.Int barrier);
      ]
  | Migration { thread; src; dst } ->
      [
        ("type", Json.String "migration");
        ("thread", Json.Int thread);
        ("src", Json.Int src);
        ("dst", Json.Int dst);
      ]
  | Alert { severity; kind; node; detail } ->
      [
        ("type", Json.String "alert");
        ("severity", Json.String severity);
        ("kind", Json.String kind);
        ("node", Json.Int node);
        ("detail", Json.String detail);
      ]
  | Message { category; message } ->
      [
        ("type", Json.String "message");
        ("category", Json.String category);
        ("message", Json.String message);
      ]

let event_to_json ~at ~span ev =
  Json.Obj (("at_ns", Json.Int at) :: ("span", Json.Int span) :: event_fields ev)

let event_of_json j =
  let int name = Json.member name j |> Option.map (fun v -> Json.to_int v) in
  let geti name = Option.join (int name) in
  let gets name = Option.join (Json.member name j |> Option.map Json.to_str) in
  let getb name = Option.join (Json.member name j |> Option.map Json.to_bool) in
  let ( let* ) = Option.bind in
  let* at = geti "at_ns" in
  let* span = geti "span" in
  let* ev =
    let* ty = gets "type" in
    match ty with
    | "fault" ->
        let* node = geti "node" in
        let* page = geti "page" in
        let* protocol = gets "protocol" in
        let* mode = gets "mode" in
        Some (Fault { node; page; protocol; mode })
    | "page_request" ->
        let* node = geti "node" in
        let* page = geti "page" in
        let* protocol = gets "protocol" in
        let* mode = gets "mode" in
        let* requester = geti "requester" in
        Some (Page_request { node; page; protocol; mode; requester })
    | "page_send" ->
        let* node = geti "node" in
        let* page = geti "page" in
        let* protocol = gets "protocol" in
        let* dst = geti "dst" in
        let* bytes = geti "bytes" in
        let* grant = gets "grant" in
        Some (Page_send { node; page; protocol; dst; bytes; grant })
    | "page_install" ->
        let* node = geti "node" in
        let* page = geti "page" in
        let* protocol = gets "protocol" in
        let* sender = geti "sender" in
        let* grant = gets "grant" in
        Some (Page_install { node; page; protocol; sender; grant })
    | "invalidate" ->
        let* node = geti "node" in
        let* page = geti "page" in
        let* protocol = gets "protocol" in
        let* sender = geti "sender" in
        Some (Invalidate { node; page; protocol; sender })
    | "diff" ->
        let* node = geti "node" in
        let* pages = geti "pages" in
        let* page_list =
          let* items = Option.join (Json.member "page_list" j |> Option.map Json.to_list) in
          List.fold_right
            (fun item acc ->
              let* acc = acc in
              let* p = Json.to_int item in
              Some (p :: acc))
            items (Some [])
        in
        let* bytes = geti "bytes" in
        let* sender = geti "sender" in
        let* release = getb "release" in
        let* protocol = gets "protocol" in
        Some (Diff { node; pages; page_list; bytes; sender; release; protocol })
    | "lock" ->
        let* node = geti "node" in
        let* lock = geti "lock" in
        let* op = gets "op" in
        Some (Lock { node; lock; op })
    | "barrier" ->
        let* node = geti "node" in
        let* barrier = geti "barrier" in
        Some (Barrier { node; barrier })
    | "migration" ->
        let* thread = geti "thread" in
        let* src = geti "src" in
        let* dst = geti "dst" in
        Some (Migration { thread; src; dst })
    | "alert" ->
        let* severity = gets "severity" in
        if not (valid_severity severity) then None
        else
          let* kind = gets "kind" in
          let* node = geti "node" in
          let* detail = gets "detail" in
          Some (Alert { severity; kind; node; detail })
    | "message" ->
        let* category = gets "category" in
        let* message = gets "message" in
        Some (Message { category; message })
    | _ -> None
  in
  Some (at, span, ev)

let to_jsonl ppf t =
  List.iter
    (fun (e, ev) ->
      Format.fprintf ppf "%s@."
        (Json.to_string (event_to_json ~at:e.at ~span:e.span ev)))
    (events t)

(* Inverse of [to_jsonl] over a whole dump (the file's contents, one JSON
   object per line).  Blank lines are skipped; the first malformed line
   aborts the load with its line number. *)
let of_jsonl contents =
  let rec parse acc lineno = function
    | [] -> Ok (of_events (List.rev acc))
    | line :: rest -> (
        if String.trim line = "" then parse acc (lineno + 1) rest
        else
          match Json.of_string (String.trim line) with
          | Error msg -> Error (Printf.sprintf "line %d: %s" lineno msg)
          | Ok j -> (
              match event_of_json j with
              | None -> Error (Printf.sprintf "line %d: not a trace event" lineno)
              | Some (at, span, ev) -> parse ((at, span, ev) :: acc) (lineno + 1) rest))
  in
  parse [] 1 (String.split_on_char '\n' contents)

(* Chrome trace_event format (chrome://tracing, Perfetto): one instant
   event per trace entry, with the simulated node as the process lane and
   the span id as the thread lane so causally linked events line up. *)
let chrome_json t =
  let trace_events =
    List.map
      (fun (e, ev) ->
        let node = event_node ev in
        Json.Obj
          [
            ("name", Json.String (event_category ev));
            ("ph", Json.String "i");
            ("s", Json.String "t");
            ("ts", Json.Float (Time.to_us e.at));
            ("pid", Json.Int (if node < 0 then 0 else node));
            ("tid", Json.Int (if e.span = no_span then 0 else e.span));
            ( "args",
              Json.Obj
                (("span", Json.Int e.span)
                :: ("detail", Json.String e.message)
                :: event_fields ev) );
          ])
      (events t)
  in
  Json.Obj
    [
      ("traceEvents", Json.List trace_events);
      ("displayTimeUnit", Json.String "ms");
    ]

let to_chrome ppf t = Format.fprintf ppf "%s@." (Json.to_string (chrome_json t))

(* --- gzip-transparent file round trip ---

   Large macro-run dumps are kept compressed in CI; a ".gz" path writes a
   gzip container (Gzip.compress) and loading sniffs the magic bytes, so a
   dump renamed across the boundary still loads. *)

let save_jsonl path t =
  let buf = Buffer.create 4096 in
  let ppf = Format.formatter_of_buffer buf in
  to_jsonl ppf t;
  Format.pp_print_flush ppf ();
  Gzip.write_file path (Buffer.contents buf)

let load_jsonl path =
  match Gzip.read_file path with
  | Error msg -> Error (Printf.sprintf "%s: %s" path msg)
  | Ok contents -> (
      match of_jsonl contents with
      | Ok t -> Ok t
      | Error msg -> Error (Printf.sprintf "%s: %s" path msg))

type event =
  | Fault of { node : int; page : int; protocol : string; mode : string }
  | Page_request of {
      node : int;
      page : int;
      protocol : string;
      mode : string;
      requester : int;
    }
  | Page_send of {
      node : int;
      page : int;
      protocol : string;
      dst : int;
      bytes : int;
      grant : string;
    }
  | Page_install of {
      node : int;
      page : int;
      protocol : string;
      sender : int;
      grant : string;
    }
  | Invalidate of { node : int; page : int; protocol : string; sender : int }
  | Diff of {
      node : int;
      pages : int;
      page_list : int list;
      bytes : int;
      sender : int;
      release : bool;
      protocol : string;
    }
  | Lock of { node : int; lock : int; op : string }
  | Barrier of { node : int; barrier : int }
  | Migration of { thread : int; src : int; dst : int }
  | Alert of { severity : string; kind : string; node : int; detail : string }
  | Drop of { src : int; dst : int; kind : string }
  | Blackhole of { src : int; dst : int; kind : string; down : int }
  | Crash of { node : int; up : Time.t }
  | Restart of { node : int }
  | Rpc_retry of { service : string; src : int; dst : int; attempt : int }
  | Message of { category : string; message : string }

let no_span = -1

let alert_severities = [ "info"; "warning"; "critical" ]
let valid_severity s = List.mem s alert_severities

let event_category = function
  | Fault _ -> "fault"
  | Page_request _ -> "request"
  | Page_send _ -> "page.send"
  | Page_install _ -> "page"
  | Invalidate _ -> "invalidate"
  | Diff _ -> "diff"
  | Lock _ -> "lock"
  | Barrier _ -> "barrier"
  | Migration _ -> "migrate"
  | Alert _ -> "alert"
  | Drop _ -> "drop"
  | Blackhole _ -> "blackhole"
  | Crash _ -> "crash"
  | Restart _ -> "restart"
  | Rpc_retry _ -> "rpc.retry"
  | Message { category; _ } -> category

let event_message = function
  | Fault { node; page; protocol; mode } ->
      Printf.sprintf "node %d: %s fault on page %d (%s)" node mode page protocol
  | Page_request { node; page; mode; requester; protocol = _ } ->
      Printf.sprintf "node %d: %s request for page %d from %d" node mode page
        requester
  | Page_send { node; page; dst; bytes; grant; protocol = _ } ->
      Printf.sprintf "node %d: page %d sent to %d (%s, %d bytes)" node page dst
        grant bytes
  | Page_install { node; page; sender; grant; protocol = _ } ->
      Printf.sprintf "node %d: page %d received from %d (%s)" node page sender grant
  | Invalidate { node; page; sender; protocol = _ } ->
      Printf.sprintf "node %d: invalidate page %d (from %d)" node page sender
  | Lock { node; lock; op } -> Printf.sprintf "lock %d: %s by node %d" lock op node
  | Barrier { node; barrier } ->
      Printf.sprintf "barrier %d: node %d arrived" barrier node
  | Diff { node; pages; bytes; sender; release; protocol; page_list = _ } ->
      Printf.sprintf "node %d: %d %s diff(s) from %d (%d bytes)%s" node pages
        protocol sender bytes
        (if release then " (release)" else "")
  | Migration { thread; src; dst } ->
      Printf.sprintf "thread %d: node %d -> %d" thread src dst
  | Alert { severity; kind; node; detail } ->
      Printf.sprintf "ALERT[%s] %s%s: %s" severity kind
        (if node < 0 then "" else Printf.sprintf " (node %d)" node)
        detail
  | Drop { src; dst; kind } ->
      Printf.sprintf "link %d->%d: %s dropped (seeded loss)" src dst kind
  | Blackhole { src; dst; kind; down } ->
      Printf.sprintf "link %d->%d: %s blackholed (node %d down)" src dst kind down
  | Crash { node; up } ->
      Printf.sprintf "node %d: crashed (down until %.0fus)" node (Time.to_us up)
  | Restart { node } -> Printf.sprintf "node %d: restarted" node
  | Rpc_retry { service; src; dst; attempt } ->
      Printf.sprintf "rpc %s: retransmission #%d on link %d->%d" service attempt
        src dst
  | Message { message; _ } -> message

(* The node a trace event belongs to, for the Chrome exporter's process
   lanes; -1 when the event has no natural node. *)
let event_node = function
  | Fault { node; _ }
  | Page_request { node; _ }
  | Page_send { node; _ }
  | Page_install { node; _ }
  | Invalidate { node; _ }
  | Diff { node; _ }
  | Lock { node; _ }
  | Barrier { node; _ } -> node
  | Migration { src; _ } -> src
  | Alert { node; _ } -> node
  | Drop { src; _ } -> src
  | Blackhole { down; _ } -> down
  | Crash { node; _ } -> node
  | Restart { node } -> node
  | Rpc_retry { src; _ } -> src
  | Message _ -> -1

type entry = { at : Time.t; span : int; category : string; message : string }

(* Storage is a growable circular buffer so the flight recorder
   ([set_capacity]) can overwrite the oldest entry in O(1) while the
   unbounded default keeps amortized O(1) appends.  [total] counts every
   event ever recorded (monotonic, survives eviction): it is the cursor
   space of [recent ~since] and the base of the [evicted] accounting. *)
type t = {
  mutable on : bool;
  mutable buf : (entry * event) array;
  mutable start : int; (* index of the oldest stored entry *)
  mutable len : int; (* number of stored entries *)
  mutable total : int; (* events ever recorded, monotonic *)
  mutable cap : int option; (* flight-recorder bound; [None] = unbounded *)
  mutable next_span : int;
  thread_spans : (int, int) Hashtbl.t; (* tid -> active span *)
  mutable autodump : string option; (* dump target armed on critical alerts *)
  mutable autodump_fired : bool;
  mutable observer : (entry -> event -> unit) option;
      (* sees every emission, before sampling and before ring eviction *)
  mutable sampling : (int * float) option; (* (seed, keep percentage) *)
  mutable sampled_out : int; (* events dropped by the sampler, monotonic *)
}

let dummy_slot =
  ( { at = Time.zero; span = no_span; category = ""; message = "" },
    Message { category = ""; message = "" } )

let create ?(enabled = false) () =
  {
    on = enabled;
    buf = Array.make 16 dummy_slot;
    start = 0;
    len = 0;
    total = 0;
    cap = None;
    next_span = 0;
    thread_spans = Hashtbl.create 16;
    autodump = None;
    autodump_fired = false;
    observer = None;
    sampling = None;
    sampled_out = 0;
  }

let enable t b = t.on <- b
let enabled t = t.on

(* --- flight recorder --- *)

let capacity t = t.cap
let recorded t = t.total
let evicted t = t.total - t.len

let set_capacity t n =
  if n <= 0 then invalid_arg "Trace.set_capacity: capacity must be positive";
  let keep = min t.len n in
  let old_n = Array.length t.buf in
  let nb = Array.make n dummy_slot in
  (* Keep the newest [keep] entries: a shrinking recorder forgets the
     oldest history first, exactly as steady-state eviction would. *)
  for i = 0 to keep - 1 do
    nb.(i) <- t.buf.((t.start + (t.len - keep) + i) mod old_n)
  done;
  t.buf <- nb;
  t.start <- 0;
  t.len <- keep;
  t.cap <- Some n

let set_autodump t path =
  t.autodump <- Some path;
  t.autodump_fired <- false

let autodump_path t = t.autodump
let autodump_fired t = t.autodump_fired

(* --- observer & head-based sampling ---

   The single observer slot sees every emission at emit time, before the
   sampler's keep/drop decision and before the flight recorder evicts
   anything: a subscriber (Telemetry) gets the complete event stream while
   storage stays bounded.  Observers must be passive — no engine events, no
   shared RNG draws — so attaching one never perturbs a seeded schedule.

   Sampling is head-based per span: one seeded draw on the span id decides
   the whole operation's fate, so a kept span is kept with every event and
   [dsm explain] still sees whole causal chains.  The draw is a pure
   function of (sampling seed, span id) — independent of emission order,
   wall clock and engine state — so sampled runs stay replayable.  Rare,
   high-signal kinds (alerts, fault-plan events, RPC retries) and free-form
   messages always keep; events outside any span ([no_span]) always keep. *)

let set_observer t f =
  match t.observer with
  | Some _ -> invalid_arg "Trace.set_observer: an observer is already attached"
  | None -> t.observer <- Some f

let clear_observer t = t.observer <- None

let set_sampling t ~seed ~keep_pct =
  if not (keep_pct >= 0. && keep_pct <= 100.) then
    invalid_arg "Trace.set_sampling: keep_pct must be within [0, 100]";
  t.sampling <- Some (seed, keep_pct)

let sampling t = t.sampling
let sampled_out t = t.sampled_out

let always_keep = function
  | Alert _ | Drop _ | Blackhole _ | Crash _ | Restart _ | Rpc_retry _
  | Message _ -> true
  | Fault _ | Page_request _ | Page_send _ | Page_install _ | Invalidate _
  | Diff _ | Lock _ | Barrier _ | Migration _ -> false

let span_kept t span =
  match t.sampling with
  | None -> true
  | Some (seed, keep_pct) ->
      span = no_span
      || Rng.float (Rng.create ~seed:(Hashtbl.hash (seed, span))) 100. < keep_pct

let sample_keep t span ev = always_keep ev || span_kept t span

(* Forward reference to [save_jsonl], which needs the exporters defined
   below; resolved at module initialization.  Keeps the autodump trigger
   inside [push] without reordering the whole file. *)
let autodump_impl : (string -> t -> unit) ref = ref (fun _ _ -> ())

let get t i = t.buf.((t.start + i) mod Array.length t.buf)

let grow t =
  let n = Array.length t.buf in
  let n' = max 16 (2 * n) in
  let n' = match t.cap with Some c -> min n' c | None -> n' in
  if n' > n then begin
    let nb = Array.make n' dummy_slot in
    for i = 0 to t.len - 1 do
      nb.(i) <- t.buf.((t.start + i) mod n)
    done;
    t.buf <- nb;
    t.start <- 0
  end

let push t x =
  (match t.cap with
  | Some cap when t.len >= cap ->
      (* Full ring: overwrite the oldest entry in place. *)
      t.buf.(t.start) <- x;
      t.start <- (t.start + 1) mod Array.length t.buf;
      t.total <- t.total + 1
  | _ ->
      if t.len = Array.length t.buf then grow t;
      t.buf.((t.start + t.len) mod Array.length t.buf) <- x;
      t.len <- t.len + 1;
      t.total <- t.total + 1);
  (* Flight-recorder dump: the first critical alert freezes the evidence
     to disk while the ring still holds the events leading up to it. *)
  match t.autodump with
  | Some path when not t.autodump_fired -> (
      match snd x with
      | Alert { severity = "critical"; _ } ->
          t.autodump_fired <- true;
          !autodump_impl path t
      | _ -> ())
  | _ -> ()

(* --- span context ---

   Span ids link the events of one logical operation (a remote access
   followed from fault detection through request, transfer and install).
   The id is carried across nodes inside protocol messages and, within a
   node, attached to the Marcel thread doing the work.  All bookkeeping is
   skipped while the trace is disabled so the hot paths stay free. *)

let new_span t =
  if not t.on then no_span
  else begin
    let s = t.next_span in
    t.next_span <- s + 1;
    s
  end

let set_thread_span t ~tid span =
  if t.on then
    if span = no_span then Hashtbl.remove t.thread_spans tid
    else Hashtbl.replace t.thread_spans tid span

let clear_thread_span t ~tid = Hashtbl.remove t.thread_spans tid

let thread_span t ~tid =
  if not t.on then no_span
  else Option.value ~default:no_span (Hashtbl.find_opt t.thread_spans tid)

(* --- recording --- *)

(* The single choke point of live recording: the observer sees the event
   unconditionally, then the sampler decides whether storage does. *)
let submit t entry ev =
  (match t.observer with Some f -> f entry ev | None -> ());
  if sample_keep t entry.span ev then push t (entry, ev)
  else t.sampled_out <- t.sampled_out + 1

let emit t eng ?(span = no_span) ev =
  if t.on then
    submit t
      {
        at = Engine.now eng;
        span;
        category = event_category ev;
        message = event_message ev;
      }
      ev

let record t eng ~category message =
  if t.on then
    submit t
      { at = Engine.now eng; span = no_span; category; message }
      (Message { category; message })

let recordf t eng ~category fmt =
  if t.on then
    Format.kasprintf
      (fun message ->
        submit t
          { at = Engine.now eng; span = no_span; category; message }
          (Message { category; message }))
      fmt
  else Format.ikfprintf (fun _ -> ()) Format.str_formatter fmt

let events t =
  let rec build i acc = if i < 0 then acc else build (i - 1) (get t i :: acc) in
  build (t.len - 1) []

let entries t = List.map fst (events t)
let by_category t c = List.filter (fun e -> String.equal e.category c) (entries t)
let by_span t s = List.filter (fun (e, _) -> e.span = s) (events t)
let length t = t.len

(* The events recorded after cursor [since], chronological: the watchdog's
   incremental feed.  [since] counts ever-recorded events ({!recorded}), so
   the cursor stays correct when the flight recorder evicts entries — a
   caller that fell behind an eviction simply misses the overwritten events
   (they are gone) and resumes at the oldest survivor.  Cost and allocation
   are proportional to the increment; a call with nothing new returns []
   without allocating. *)
let recent t ~since =
  let first_stored = t.total - t.len in
  let from = if since < first_stored then first_stored else since in
  let fresh = t.total - from in
  if fresh <= 0 then []
  else begin
    let stop = t.len - fresh in
    let rec build i acc = if i < stop then acc else build (i - 1) (get t i :: acc) in
    build (t.len - 1) []
  end

(* Every span's events grouped together (chronological inside each group),
   ordered by each span's first event — the analyzer's raw material. *)
let spans t =
  let tbl = Hashtbl.create 64 in
  let order = ref [] in
  List.iter
    (fun ((e, _) as x) ->
      if e.span <> no_span then begin
        match Hashtbl.find_opt tbl e.span with
        | Some rev -> Hashtbl.replace tbl e.span (x :: rev)
        | None ->
            order := e.span :: !order;
            Hashtbl.replace tbl e.span [ x ]
      end)
    (events t);
  List.rev_map (fun s -> (s, List.rev (Hashtbl.find tbl s))) !order

(* Rebuild a trace from typed events, e.g. re-loaded from a JSONL dump.
   The result is a disabled (post-mortem) trace: inspection and export work,
   recording would need [enable]. *)
let of_events evs =
  let t = create ~enabled:false () in
  let max_span = ref (-1) in
  List.iter
    (fun (at, span, ev) ->
      if span > !max_span then max_span := span;
      push t
        ({ at; span; category = event_category ev; message = event_message ev }, ev))
    evs;
  t.next_span <- !max_span + 1;
  t

let hash t =
  let acc = ref 0 in
  for i = 0 to t.len - 1 do
    let e, _ = get t i in
    acc := Hashtbl.hash (!acc, e.at, e.category, e.message)
  done;
  !acc

let pp ppf t =
  List.iter
    (fun e -> Format.fprintf ppf "[%a] %-12s %s@." Time.pp e.at e.category e.message)
    (entries t)

let clear t =
  Array.fill t.buf 0 (Array.length t.buf) dummy_slot;
  t.start <- 0;
  t.len <- 0;
  t.total <- 0;
  t.next_span <- 0;
  t.autodump_fired <- false;
  t.sampled_out <- 0;
  Hashtbl.reset t.thread_spans

(* --- JSON export --- *)

let event_fields = function
  | Fault { node; page; protocol; mode } ->
      [
        ("type", Json.String "fault");
        ("node", Json.Int node);
        ("page", Json.Int page);
        ("protocol", Json.String protocol);
        ("mode", Json.String mode);
      ]
  | Page_request { node; page; protocol; mode; requester } ->
      [
        ("type", Json.String "page_request");
        ("node", Json.Int node);
        ("page", Json.Int page);
        ("protocol", Json.String protocol);
        ("mode", Json.String mode);
        ("requester", Json.Int requester);
      ]
  | Page_send { node; page; protocol; dst; bytes; grant } ->
      [
        ("type", Json.String "page_send");
        ("node", Json.Int node);
        ("page", Json.Int page);
        ("protocol", Json.String protocol);
        ("dst", Json.Int dst);
        ("bytes", Json.Int bytes);
        ("grant", Json.String grant);
      ]
  | Page_install { node; page; protocol; sender; grant } ->
      [
        ("type", Json.String "page_install");
        ("node", Json.Int node);
        ("page", Json.Int page);
        ("protocol", Json.String protocol);
        ("sender", Json.Int sender);
        ("grant", Json.String grant);
      ]
  | Invalidate { node; page; protocol; sender } ->
      [
        ("type", Json.String "invalidate");
        ("node", Json.Int node);
        ("page", Json.Int page);
        ("protocol", Json.String protocol);
        ("sender", Json.Int sender);
      ]
  | Diff { node; pages; page_list; bytes; sender; release; protocol } ->
      [
        ("type", Json.String "diff");
        ("node", Json.Int node);
        ("pages", Json.Int pages);
        ("page_list", Json.List (List.map (fun p -> Json.Int p) page_list));
        ("bytes", Json.Int bytes);
        ("sender", Json.Int sender);
        ("release", Json.Bool release);
        ("protocol", Json.String protocol);
      ]
  | Lock { node; lock; op } ->
      [
        ("type", Json.String "lock");
        ("node", Json.Int node);
        ("lock", Json.Int lock);
        ("op", Json.String op);
      ]
  | Barrier { node; barrier } ->
      [
        ("type", Json.String "barrier");
        ("node", Json.Int node);
        ("barrier", Json.Int barrier);
      ]
  | Migration { thread; src; dst } ->
      [
        ("type", Json.String "migration");
        ("thread", Json.Int thread);
        ("src", Json.Int src);
        ("dst", Json.Int dst);
      ]
  | Alert { severity; kind; node; detail } ->
      [
        ("type", Json.String "alert");
        ("severity", Json.String severity);
        ("kind", Json.String kind);
        ("node", Json.Int node);
        ("detail", Json.String detail);
      ]
  | Drop { src; dst; kind } ->
      [
        ("type", Json.String "drop");
        ("src", Json.Int src);
        ("dst", Json.Int dst);
        ("kind", Json.String kind);
      ]
  | Blackhole { src; dst; kind; down } ->
      [
        ("type", Json.String "blackhole");
        ("src", Json.Int src);
        ("dst", Json.Int dst);
        ("kind", Json.String kind);
        ("down", Json.Int down);
      ]
  | Crash { node; up } ->
      [
        ("type", Json.String "crash");
        ("node", Json.Int node);
        ("up_ns", Json.Int up);
      ]
  | Restart { node } ->
      [ ("type", Json.String "restart"); ("node", Json.Int node) ]
  | Rpc_retry { service; src; dst; attempt } ->
      [
        ("type", Json.String "rpc_retry");
        ("service", Json.String service);
        ("src", Json.Int src);
        ("dst", Json.Int dst);
        ("attempt", Json.Int attempt);
      ]
  | Message { category; message } ->
      [
        ("type", Json.String "message");
        ("category", Json.String category);
        ("message", Json.String message);
      ]

let event_to_json ~at ~span ev =
  Json.Obj (("at_ns", Json.Int at) :: ("span", Json.Int span) :: event_fields ev)

let event_of_json j =
  let int name = Json.member name j |> Option.map (fun v -> Json.to_int v) in
  let geti name = Option.join (int name) in
  let gets name = Option.join (Json.member name j |> Option.map Json.to_str) in
  let getb name = Option.join (Json.member name j |> Option.map Json.to_bool) in
  let ( let* ) = Option.bind in
  let* at = geti "at_ns" in
  let* span = geti "span" in
  let* ev =
    let* ty = gets "type" in
    match ty with
    | "fault" ->
        let* node = geti "node" in
        let* page = geti "page" in
        let* protocol = gets "protocol" in
        let* mode = gets "mode" in
        Some (Fault { node; page; protocol; mode })
    | "page_request" ->
        let* node = geti "node" in
        let* page = geti "page" in
        let* protocol = gets "protocol" in
        let* mode = gets "mode" in
        let* requester = geti "requester" in
        Some (Page_request { node; page; protocol; mode; requester })
    | "page_send" ->
        let* node = geti "node" in
        let* page = geti "page" in
        let* protocol = gets "protocol" in
        let* dst = geti "dst" in
        let* bytes = geti "bytes" in
        let* grant = gets "grant" in
        Some (Page_send { node; page; protocol; dst; bytes; grant })
    | "page_install" ->
        let* node = geti "node" in
        let* page = geti "page" in
        let* protocol = gets "protocol" in
        let* sender = geti "sender" in
        let* grant = gets "grant" in
        Some (Page_install { node; page; protocol; sender; grant })
    | "invalidate" ->
        let* node = geti "node" in
        let* page = geti "page" in
        let* protocol = gets "protocol" in
        let* sender = geti "sender" in
        Some (Invalidate { node; page; protocol; sender })
    | "diff" ->
        let* node = geti "node" in
        let* pages = geti "pages" in
        let* page_list =
          let* items = Option.join (Json.member "page_list" j |> Option.map Json.to_list) in
          List.fold_right
            (fun item acc ->
              let* acc = acc in
              let* p = Json.to_int item in
              Some (p :: acc))
            items (Some [])
        in
        let* bytes = geti "bytes" in
        let* sender = geti "sender" in
        let* release = getb "release" in
        let* protocol = gets "protocol" in
        Some (Diff { node; pages; page_list; bytes; sender; release; protocol })
    | "lock" ->
        let* node = geti "node" in
        let* lock = geti "lock" in
        let* op = gets "op" in
        Some (Lock { node; lock; op })
    | "barrier" ->
        let* node = geti "node" in
        let* barrier = geti "barrier" in
        Some (Barrier { node; barrier })
    | "migration" ->
        let* thread = geti "thread" in
        let* src = geti "src" in
        let* dst = geti "dst" in
        Some (Migration { thread; src; dst })
    | "alert" ->
        let* severity = gets "severity" in
        if not (valid_severity severity) then None
        else
          let* kind = gets "kind" in
          let* node = geti "node" in
          let* detail = gets "detail" in
          Some (Alert { severity; kind; node; detail })
    | "drop" ->
        let* src = geti "src" in
        let* dst = geti "dst" in
        let* kind = gets "kind" in
        Some (Drop { src; dst; kind })
    | "blackhole" ->
        let* src = geti "src" in
        let* dst = geti "dst" in
        let* kind = gets "kind" in
        let* down = geti "down" in
        Some (Blackhole { src; dst; kind; down })
    | "crash" ->
        let* node = geti "node" in
        let* up = geti "up_ns" in
        Some (Crash { node; up })
    | "restart" ->
        let* node = geti "node" in
        Some (Restart { node })
    | "rpc_retry" ->
        let* service = gets "service" in
        let* src = geti "src" in
        let* dst = geti "dst" in
        let* attempt = geti "attempt" in
        Some (Rpc_retry { service; src; dst; attempt })
    | "message" ->
        let* category = gets "category" in
        let* message = gets "message" in
        Some (Message { category; message })
    | _ -> None
  in
  Some (at, span, ev)

let to_jsonl ppf t =
  List.iter
    (fun (e, ev) ->
      Format.fprintf ppf "%s@."
        (Json.to_string (event_to_json ~at:e.at ~span:e.span ev)))
    (events t)

(* Inverse of [to_jsonl] over a whole dump (the file's contents, one JSON
   object per line).  Blank lines are skipped; the first malformed line
   aborts the load with its line number. *)
let of_jsonl contents =
  let rec parse acc lineno = function
    | [] -> Ok (of_events (List.rev acc))
    | line :: rest -> (
        if String.trim line = "" then parse acc (lineno + 1) rest
        else
          match Json.of_string (String.trim line) with
          | Error msg -> Error (Printf.sprintf "line %d: %s" lineno msg)
          | Ok j -> (
              match event_of_json j with
              | None -> Error (Printf.sprintf "line %d: not a trace event" lineno)
              | Some (at, span, ev) -> parse ((at, span, ev) :: acc) (lineno + 1) rest))
  in
  parse [] 1 (String.split_on_char '\n' contents)

(* Chrome trace_event format (chrome://tracing, Perfetto): one instant
   event per trace entry, with the simulated node as the process lane and
   the span id as the thread lane so causally linked events line up. *)
let chrome_json t =
  let trace_events =
    List.map
      (fun (e, ev) ->
        let node = event_node ev in
        Json.Obj
          [
            ("name", Json.String (event_category ev));
            ("ph", Json.String "i");
            ("s", Json.String "t");
            ("ts", Json.Float (Time.to_us e.at));
            ("pid", Json.Int (if node < 0 then 0 else node));
            ("tid", Json.Int (if e.span = no_span then 0 else e.span));
            ( "args",
              Json.Obj
                (("span", Json.Int e.span)
                :: ("detail", Json.String e.message)
                :: event_fields ev) );
          ])
      (events t)
  in
  Json.Obj
    [
      ("traceEvents", Json.List trace_events);
      ("displayTimeUnit", Json.String "ms");
    ]

let to_chrome ppf t = Format.fprintf ppf "%s@." (Json.to_string (chrome_json t))

(* --- gzip-transparent file round trip ---

   Large macro-run dumps are kept compressed in CI; a ".gz" path writes a
   gzip container (Gzip.compress) and loading sniffs the magic bytes, so a
   dump renamed across the boundary still loads. *)

let save_jsonl path t =
  let buf = Buffer.create 4096 in
  let ppf = Format.formatter_of_buffer buf in
  to_jsonl ppf t;
  Format.pp_print_flush ppf ();
  Gzip.write_file path (Buffer.contents buf)

let () = autodump_impl := save_jsonl

let load_jsonl path =
  match Gzip.read_file path with
  | Error msg -> Error (Printf.sprintf "%s: %s" path msg)
  | Ok contents -> (
      match of_jsonl contents with
      | Ok t -> Ok t
      | Error msg -> Error (Printf.sprintf "%s: %s" path msg))

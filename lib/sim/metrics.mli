(** A typed metrics registry: {!Stats} sharded by label set.

    The observability layer labels each counter and latency histogram with
    the node it happened on and the consistency protocol that caused it, so
    questions like "what is the p99 fault latency of [hbrc_mw] on node 3"
    can be answered post-mortem.  A label set maps to one {!Stats.t}; the
    unlabeled group ([no_labels]) holds process-wide series. *)

type labels = { lbl_node : int option; lbl_protocol : string option }

val no_labels : labels
val labels : ?node:int -> ?protocol:string -> unit -> labels

type t

val create : unit -> t

val group : t -> labels -> Stats.t
(** The stats shard for a label set, created on first use.  The returned
    shard is a stable handle: pre-resolve it (plus {!Stats.counter} /
    {!Stats.histogram} handles inside it) on hot paths instead of paying a
    label hash per event.  Handles survive {!reset}. *)

val incr : t -> ?node:int -> ?protocol:string -> string -> unit
val add : t -> ?node:int -> ?protocol:string -> string -> int -> unit

val observe : t -> ?node:int -> ?protocol:string -> string -> Time.t -> unit
(** Files a duration sample into the labeled histogram. *)

val count : t -> ?node:int -> ?protocol:string -> string -> int
val percentile : t -> ?node:int -> ?protocol:string -> string -> float -> Time.t

val total : t -> string -> int
(** Sum of a counter across every label group. *)

val samples : t -> string -> int
(** Sum of a span's sample count across every label group. *)

val all : t -> (labels * Stats.t) list
(** Deterministically ordered (by node, then protocol). *)

val reset : t -> unit
(** Zeroes every shard in place; group handles stay valid. *)

val rollup : t -> Stats.t
(** A fresh {!Stats.t} merging every label group ({!Stats.merge} pairwise):
    the cluster-wide view behind the summary line of [dsm top].  Exact for
    counters and histogram buckets; the registry is not modified. *)

val labels_to_json : labels -> Json.t
val to_json : t -> Json.t
(** [[{"labels": {...}, "stats": {...}}, ...]] in {!all} order. *)

val to_prometheus : Format.formatter -> t -> unit
(** Prometheus text exposition of the whole registry.  Each counter [name]
    becomes [dsm_<sanitized name>_total] (with [# HELP] / [# TYPE counter]
    headers and [node]/[protocol] labels, one sample per label group
    holding the counter); each duration series becomes a true histogram
    [dsm_<sanitized name>_us] in microseconds — cumulative
    [_bucket{le="..."}] samples straight off the fixed {!Stats} buckets
    (overflow as [le="+Inf"]) plus [_sum] and [_count] — so scrapes
    aggregate across nodes and over time with [histogram_quantile].
    Metric families and label groups appear in deterministic order (names
    sorted, groups in {!all} order). *)

val pp_labels : Format.formatter -> labels -> unit
val pp : Format.formatter -> t -> unit

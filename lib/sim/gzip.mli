(** A dependency-free gzip (RFC 1952) codec for large observability
    artifacts: trace dumps and macro-bench baselines compress to a fraction
    of their JSON size, so they stay cheap to keep in CI.

    {!compress} wraps the input in {e stored} deflate blocks — no actual
    compression ratio beyond framing, but byte-exact, fast, and readable by
    every gzip implementation; re-compress with the system [gzip] when disk
    size matters more than speed.  {!decompress} implements full inflate
    (stored, fixed- and dynamic-Huffman blocks) and therefore reads both our
    own output and externally compressed files, verifying the CRC32 and
    length trailer. *)

val compress : string -> string
(** A valid gzip stream containing the input verbatim (stored blocks). *)

val decompress : string -> (string, string) result
(** Inflates a gzip stream; [Error] describes the first corruption found
    (bad magic, bad Huffman data, CRC or length mismatch, truncation). *)

val is_gzip : string -> bool
(** Whether the bytes start with the gzip magic ([0x1f 0x8b]). *)

val gzip_path : string -> bool
(** Whether the path ends in [.gz]. *)

val write_file : string -> string -> unit
(** Writes contents to a file, gzip-compressing when the path ends in
    [.gz]. *)

val read_file : string -> (string, string) result
(** Reads a whole file, transparently decompressing when the contents are
    gzip (sniffed by magic bytes, so a misnamed [.gz] still loads). *)

(* Fixed latency-histogram buckets: a 1-2-5 progression from 500 ns to 1 s.
   Samples above the last bound land in an overflow bucket whose effective
   upper edge is the observed maximum. *)
let bucket_bounds =
  [|
    500; 1_000; 2_000; 5_000; 10_000; 20_000; 50_000; 100_000; 200_000;
    500_000; 1_000_000; 2_000_000; 5_000_000; 10_000_000; 20_000_000;
    50_000_000; 100_000_000; 200_000_000; 500_000_000; 1_000_000_000;
  |]

let nbuckets = Array.length bucket_bounds + 1

type span = {
  mutable sp_total : Time.t;
  mutable sp_samples : int;
  mutable sp_max : Time.t;
  sp_buckets : int array;
}

type t = {
  counts : (string, int ref) Hashtbl.t;
  durations : (string, span) Hashtbl.t;
}

type counter = int ref
type histogram = span

let create () = { counts = Hashtbl.create 16; durations = Hashtbl.create 16 }

let counter t name =
  match Hashtbl.find_opt t.counts name with
  | Some r -> r
  | None ->
      let r = ref 0 in
      Hashtbl.add t.counts name r;
      r

let bump (c : counter) = Stdlib.incr c
let bump_by (c : counter) n = c := !c + n
let counter_value (c : counter) = !c

let incr t name = Stdlib.incr (counter t name)
let add t name n = counter t name := !(counter t name) + n
let count t name = match Hashtbl.find_opt t.counts name with Some r -> !r | None -> 0

let span t name =
  match Hashtbl.find_opt t.durations name with
  | Some s -> s
  | None ->
      let s =
        {
          sp_total = Time.zero;
          sp_samples = 0;
          sp_max = Time.zero;
          sp_buckets = Array.make nbuckets 0;
        }
      in
      Hashtbl.add t.durations name s;
      s

let bucket_index dt =
  let rec go i =
    if i >= Array.length bucket_bounds then i
    else if dt <= bucket_bounds.(i) then i
    else go (i + 1)
  in
  go 0

let histogram t name = span t name

let record (s : histogram) dt =
  s.sp_total <- Time.(s.sp_total + dt);
  s.sp_samples <- s.sp_samples + 1;
  if dt > s.sp_max then s.sp_max <- dt;
  let i = bucket_index dt in
  s.sp_buckets.(i) <- s.sp_buckets.(i) + 1

let add_span t name dt = record (span t name) dt

let span_total t name =
  match Hashtbl.find_opt t.durations name with
  | Some s -> s.sp_total
  | None -> Time.zero

let span_samples t name =
  match Hashtbl.find_opt t.durations name with Some s -> s.sp_samples | None -> 0

let span_max t name =
  match Hashtbl.find_opt t.durations name with Some s -> s.sp_max | None -> Time.zero

let span_mean t name =
  match Hashtbl.find_opt t.durations name with
  | None -> Time.zero
  | Some s -> if s.sp_samples = 0 then Time.zero else s.sp_total / s.sp_samples

let percentile_of_span s p =
  if s.sp_samples = 0 then Time.zero
  else begin
    let p = Float.max 0. (Float.min 100. p) in
    let rank =
      Stdlib.max 1 (int_of_float (Float.ceil (p /. 100. *. float_of_int s.sp_samples)))
    in
    let rec walk i seen =
      if i >= nbuckets then s.sp_max
      else
        let seen = seen + s.sp_buckets.(i) in
        if seen >= rank then
          if i < Array.length bucket_bounds then Stdlib.min bucket_bounds.(i) s.sp_max
          else s.sp_max
        else walk (i + 1) seen
    in
    walk 0 0
  end

let span_percentile t name p =
  match Hashtbl.find_opt t.durations name with
  | None -> Time.zero
  | Some s -> percentile_of_span s p

let span_histogram t name =
  match Hashtbl.find_opt t.durations name with
  | None -> [||]
  | Some s ->
      Array.init nbuckets (fun i ->
          let bound =
            if i < Array.length bucket_bounds then bucket_bounds.(i) else s.sp_max
          in
          (bound, s.sp_buckets.(i)))

type span_summary = {
  sm_name : string;
  sm_samples : int;
  sm_total : Time.t;
  sm_mean : Time.t;
  sm_p50 : Time.t;
  sm_p90 : Time.t;
  sm_p99 : Time.t;
  sm_max : Time.t;
}

let summary_of_span name s =
  {
    sm_name = name;
    sm_samples = s.sp_samples;
    sm_total = s.sp_total;
    sm_mean = (if s.sp_samples = 0 then Time.zero else s.sp_total / s.sp_samples);
    sm_p50 = percentile_of_span s 50.;
    sm_p90 = percentile_of_span s 90.;
    sm_p99 = percentile_of_span s 99.;
    sm_max = s.sp_max;
  }

let span_summary t name =
  match Hashtbl.find_opt t.durations name with
  | Some s -> summary_of_span name s
  | None ->
      {
        sm_name = name;
        sm_samples = 0;
        sm_total = Time.zero;
        sm_mean = Time.zero;
        sm_p50 = Time.zero;
        sm_p90 = Time.zero;
        sm_p99 = Time.zero;
        sm_max = Time.zero;
      }

let span_summaries t =
  Hashtbl.fold (fun name s acc -> summary_of_span name s :: acc) t.durations []
  |> List.sort (fun a b -> String.compare a.sm_name b.sm_name)

let counters t =
  Hashtbl.fold (fun k r acc -> (k, !r) :: acc) t.counts []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let spans t =
  Hashtbl.fold (fun k s acc -> (k, s.sp_total, s.sp_samples) :: acc) t.durations []
  |> List.sort (fun (a, _, _) (b, _, _) -> String.compare a b)

let reset t =
  (* Zero in place rather than dropping the tables: interned handles
     ({!counter}, {!histogram}) must stay live across a reset, so the next
     bump lands in the series being snapshotted, not in a detached cell. *)
  Hashtbl.iter (fun _ r -> r := 0) t.counts;
  Hashtbl.iter
    (fun _ s ->
      s.sp_total <- Time.zero;
      s.sp_samples <- 0;
      s.sp_max <- Time.zero;
      Array.fill s.sp_buckets 0 (Array.length s.sp_buckets) 0)
    t.durations

(* Bucket-wise merge is exact because every [t] shares the same fixed
   [bucket_bounds]: no re-bucketing, no alignment error.  The result is a
   fresh snapshot — neither input is modified, and interned handles of the
   inputs keep feeding the inputs. *)
let merge a b =
  let t = create () in
  let add_counts src =
    Hashtbl.iter (fun name r -> add t name !r) src.counts
  in
  add_counts a;
  add_counts b;
  let add_spans src =
    Hashtbl.iter
      (fun name (s : span) ->
        let d = span t name in
        d.sp_total <- Time.(d.sp_total + s.sp_total);
        d.sp_samples <- d.sp_samples + s.sp_samples;
        if s.sp_max > d.sp_max then d.sp_max <- s.sp_max;
        for i = 0 to nbuckets - 1 do
          d.sp_buckets.(i) <- d.sp_buckets.(i) + s.sp_buckets.(i)
        done)
      src.durations
  in
  add_spans a;
  add_spans b;
  t

let summary_to_json s =
  Json.Obj
    [
      ("name", Json.String s.sm_name);
      ("samples", Json.Int s.sm_samples);
      ("total_us", Json.Float (Time.to_us s.sm_total));
      ("mean_us", Json.Float (Time.to_us s.sm_mean));
      ("p50_us", Json.Float (Time.to_us s.sm_p50));
      ("p90_us", Json.Float (Time.to_us s.sm_p90));
      ("p99_us", Json.Float (Time.to_us s.sm_p99));
      ("max_us", Json.Float (Time.to_us s.sm_max));
    ]

let to_json t =
  Json.Obj
    [
      ( "counters",
        Json.Obj (List.map (fun (k, v) -> (k, Json.Int v)) (counters t)) );
      ("spans", Json.List (List.map summary_to_json (span_summaries t)));
    ]

let pp ppf t =
  List.iter (fun (k, v) -> Format.fprintf ppf "%-32s %d@." k v) (counters t);
  List.iter
    (fun s ->
      Format.fprintf ppf "%-32s %a (%d samples, p50 %a p99 %a max %a)@." s.sm_name
        Time.pp s.sm_total s.sm_samples Time.pp s.sm_p50 Time.pp s.sm_p99 Time.pp
        s.sm_max)
    (span_summaries t)

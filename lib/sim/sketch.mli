(** Mergeable quantile sketch with a guaranteed relative-error bound.

    A DDSketch-style log-bucketed summary of a non-negative sample stream:
    each positive value lands in the bucket [i = ceil (log_gamma v)] with
    [gamma = (1 + alpha) / (1 - alpha)], so any quantile estimate is within
    relative error [alpha] of the exact sample at that rank.  The structure
    is fully deterministic — no randomness, and bucket counts are
    insertion-order independent — so {!merge} of two sketches is
    observationally identical to feeding the concatenated stream, and a
    sketch built across nodes equals the sketch of the cluster-wide stream.
    These are the two properties the QCheck suite pins.

    Memory is bounded by the dynamic range of the data: roughly
    [ln (max/min) / ln gamma] buckets (about 115 per decade at the default
    [alpha = 0.01]), independent of the number of samples.  This replaces
    the ad-hoc fixed-bucket percentile math for fault/RPC latency rollups
    wherever tails beyond p99 matter ([Telemetry], [dsm top],
    [dsm bench]'s [fault_p999]). *)

type t

val create : ?alpha:float -> unit -> t
(** A fresh sketch with relative-accuracy target [alpha] (default [0.01],
    i.e. 1%).  Raises [Invalid_argument] unless [0 < alpha < 1]. *)

val alpha : t -> float

val add : t -> float -> unit
(** Inserts one sample.  Negative values are clamped to zero; values below
    [1e-9] are counted exactly in a dedicated zero bucket. *)

val count : t -> int
val sum : t -> float
val mean : t -> float
(** 0 when empty. *)

val min_value : t -> float
val max_value : t -> float
(** 0 when empty. *)

val quantile : t -> float -> float
(** [quantile t q] with [q] in [[0, 1]] (clamped): an estimate [x] of the
    exact sample [v] at rank [floor (q * (count - 1))] with
    [|x - v| <= alpha * v] for positive [v].  Estimates are clamped to the
    observed [[min, max]].  0 when empty. *)

val percentile : t -> float -> float
(** [percentile t p] is [quantile t (p /. 100.)] — the convention used by
    the rest of the metrics stack ([p = 99.9] for p999). *)

val merge : t -> t -> t
(** A fresh sketch holding both inputs' samples; neither input is
    modified.  Observationally equivalent to feeding the concatenated
    streams into one sketch.  Raises [Invalid_argument] when the two
    accuracy targets differ. *)

val merge_into : t -> t -> unit
(** [merge_into dst src] folds [src]'s samples into [dst] in place. *)

val buckets : t -> int
(** Number of occupied log buckets — the memory bound, for tests and
    accounting. *)

val to_json : t -> Json.t
(** Stable snapshot: count, sum, min/max and the standard percentile
    ladder (p50/p90/p99/p999), all as numbers. *)

val pp : Format.formatter -> t -> unit

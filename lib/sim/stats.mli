(** Named counters and duration accumulators with latency histograms.

    Used by the DSM instrumentation layer to reproduce the per-step cost
    breakdowns of the paper's Tables 3 and 4, and by benches for message and
    fault counts.  Every duration span also feeds a fixed-bucket histogram
    so tail latencies (p50/p90/p99/max) are available, not just means. *)

type t

val create : unit -> t

val incr : t -> string -> unit
val add : t -> string -> int -> unit
val count : t -> string -> int
(** 0 when the counter was never touched. *)

val add_span : t -> string -> Time.t -> unit
(** Accumulates a duration under [name], bumps its sample count, and files
    the sample into the histogram bucket containing it. *)

(** {1 Interned handles}

    Hot paths (one bump per simulated message) intern the name once and
    then update through the handle — an increment on a shared cell instead
    of a string hash per event.  Handles stay valid across {!reset}: a
    reset zeroes the series in place. *)

type counter
(** A pre-resolved counter cell; shared with the string-keyed API ([incr]
    and [bump] on the same name update the same cell). *)

val counter : t -> string -> counter
(** Interns (creating if needed) the counter named [name]. *)

val bump : counter -> unit
val bump_by : counter -> int -> unit
val counter_value : counter -> int

type histogram
(** A pre-resolved duration series (total/samples/max plus buckets). *)

val histogram : t -> string -> histogram
(** Interns (creating if needed) the duration series named [name]. *)

val record : histogram -> Time.t -> unit
(** Equivalent to {!add_span} on the interned name, without the lookup. *)

val span_total : t -> string -> Time.t
val span_mean : t -> string -> Time.t
(** 0 when no samples were recorded (never a division by zero). *)

val span_samples : t -> string -> int
val span_max : t -> string -> Time.t

val span_percentile : t -> string -> float -> Time.t
(** [span_percentile t name p] estimates the [p]-th percentile ([0..100],
    clamped) from the histogram: the upper edge of the bucket holding the
    rank-⌈p/100·n⌉ sample, capped at the observed maximum.  0 when no
    samples were recorded. *)

val bucket_bounds : Time.t array
(** The shared bucket upper edges, a 1-2-5 progression from 500 ns to 1 s;
    one overflow bucket follows the last edge. *)

val span_histogram : t -> string -> (Time.t * int) array
(** [(upper_edge, count)] per bucket (the overflow bucket reports the
    observed maximum as its edge); [[||]] when the span does not exist. *)

type span_summary = {
  sm_name : string;
  sm_samples : int;
  sm_total : Time.t;
  sm_mean : Time.t;
  sm_p50 : Time.t;
  sm_p90 : Time.t;
  sm_p99 : Time.t;
  sm_max : Time.t;
}

val span_summary : t -> string -> span_summary
(** All-zero summary when the span does not exist. *)

val span_summaries : t -> span_summary list
(** Sorted by name. *)

val counters : t -> (string * int) list
(** Sorted by name. *)

val spans : t -> (string * Time.t * int) list
(** [(name, total, samples)], sorted by name. *)

val reset : t -> unit
(** Clears every counter, duration and histogram bucket in place.  Interned
    {!counter}/{!histogram} handles survive a reset and keep feeding the
    (now zeroed) series. *)

val merge : t -> t -> t
(** A fresh [t] holding both inputs' series: counters are summed, span
    totals and sample counts are summed, maxima take the larger input, and
    the fixed-bucket histograms are added bucket-wise (exact — every [t]
    shares {!bucket_bounds}, so there is no re-bucketing).  Neither input
    is modified; merging with a fresh [create ()] is the identity.  This is
    how per-node registries roll up into the cluster view of [dsm top]. *)

val summary_to_json : span_summary -> Json.t
val to_json : t -> Json.t
(** [{"counters": {...}, "spans": [{name, samples, total_us, mean_us,
    p50_us, p90_us, p99_us, max_us}, ...]}] — the stable snapshot format
    consumed by [BENCH_*.json] and [Monitor.to_json]. *)

val pp : Format.formatter -> t -> unit

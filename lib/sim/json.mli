(** A minimal JSON representation for the observability exporters.

    The container deliberately carries no external JSON dependency, so the
    trace and metrics exporters build values of this type and print them
    with {!to_string}.  The parser exists for the round-trip tests and for
    external tooling written against the JSONL trace dump; it handles
    exactly the subset this library emits (ASCII strings, flat escapes). *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val to_string : t -> string
(** Compact single-line rendering.  [Float nan/inf] degrade to [null]. *)

val to_string_pretty : t -> string
(** Two-space indented rendering for files meant to be read by humans. *)

val to_file : string -> t -> unit
(** Writes {!to_string_pretty} plus a trailing newline to [path]. *)

val pp : Format.formatter -> t -> unit

val of_string : string -> (t, string) result
(** Recursive-descent parser for this module's own output. *)

val member : string -> t -> t option
(** Field lookup; [None] on non-objects and missing fields. *)

val to_int : t -> int option
val to_float : t -> float option
(** Accepts both [Int] and [Float]. *)

val to_str : t -> string option
val to_bool : t -> bool option
val to_list : t -> t list option

(** Seeded fault schedules: crash/restart windows and message loss.

    A fault plan is the failure-injection counterpart of
    [Network.seeded_jitter]: a deterministic schedule of node crash windows
    plus a per-message loss probability whose draws come from a private
    salted {!Rng} stream in send order.  The same seed always replays the
    identical failure schedule, so the conformance checker can sweep failure
    schedules exactly the way it sweeps engine tie seeds.

    Crash semantics are freeze-and-resume with blackholed traffic: while a
    node is inside one of its down windows, the engine parks every fiber
    hosted there (they resume at the window's end) and the network drops
    every message sent from or delivered to it.  A plan with no windows and
    zero loss never draws from its RNG and never perturbs a schedule. *)

type window = { w_node : int; w_down : Time.t; w_up : Time.t }
(** [w_node] is unreachable in the half-open interval [\[w_down, w_up)]. *)

type t

val none : t
(** The empty plan: no crashes, no loss.  [has_faults none = false]. *)

val create : ?windows:window list -> ?loss_pct:float -> ?seed:int -> unit -> t
(** An explicit plan.  [loss_pct] (default 0) is the percentage of
    cross-node messages dropped, drawn in send order from a stream salted
    from [seed] (default 0).  Raises [Invalid_argument] on a loss
    percentage outside [0, 100] or an empty window. *)

val seeded :
  nodes:int ->
  seed:int ->
  ?crashes:int ->
  ?loss_pct:float ->
  ?protect:int list ->
  ?down_us:float ->
  ?horizon_us:float ->
  unit ->
  t
(** [seeded ~nodes ~seed ()] generates a schedule of [crashes] (default 2)
    crash windows of [down_us] (default 300) microseconds each, placed at
    seeded positions within [\[0, horizon_us)] (default 4000) so that no two
    windows overlap in time — at most one node is down at any instant,
    which keeps every generated schedule within the minority-crash budget a
    majority-quorum protocol tolerates (for [nodes >= 3]).  Nodes listed in
    [protect] (default none) are never crashed — use it to shield lock and
    barrier managers whose loss no protocol survives. *)

val seed : t -> int
val windows : t -> window list
(** Sorted by start time. *)

val loss_pct : t -> float

val has_faults : t -> bool
(** Whether the plan can ever drop a message or crash a node. *)

val is_down : t -> node:int -> Time.t -> bool
(** Whether [node] is inside a down window at the given instant. *)

val up_at : t -> node:int -> now:Time.t -> Time.t
(** The end of the down window containing [now] for [node], or [now] itself
    if the node is up — the instant a parked fiber should re-check. *)

val loses_message : t -> bool
(** Draws the next loss decision (one draw per call, in call order).  Never
    draws when [loss_pct] is zero, so a lossless plan stays schedule-neutral
    in the RNG stream sense. *)

val note_loss : t -> unit
val note_blackhole : t -> unit
(** Called by the network when it drops a message because of loss
    (respectively a crash window), so post-run reports can attribute
    drops. *)

val messages_lost : t -> int
val messages_blackholed : t -> int

val window_to_string : window -> string
val to_string : t -> string

open Dsmpm2_sim
open Dsmpm2_net
open Dsmpm2_core
open Dsmpm2_protocols

type config = {
  nodes : int;
  driver : Driver.t;
  protocol : string;
  color_costs : int array;
  refresh_period : int;
  expand_us : float;
  tie_seed : int option;  (* seeded engine tie-breaking, replayable *)
  observe : (Dsm.t -> unit) option;
      (* called with the runtime before any thread starts, so callers can
         enable monitoring or keep a handle for post-run export *)
}

let default =
  {
    nodes = 4;
    driver = Driver.sisci_sci;
    protocol = "java_pf";
    color_costs = [| 1; 2; 3; 4 |];
    refresh_period = 4000;
    expand_us = Workloads.coloring_expand_us;
    tie_seed = None;
    observe = None;
  }

type result = {
  time_ms : float;
  best_cost : int;
  expansions : int;
  gets : int;
  inline_checks : int;
  read_faults : int;
  write_faults : int;
  messages : int;
}

let order = Us_states.search_order

let rank =
  let r = Array.make Us_states.count 0 in
  Array.iteri (fun i s -> r.(s) <- i) order;
  r

(* Neighbors already coloured when a state is reached in search order. *)
let earlier_neighbors =
  Array.init Us_states.count (fun s ->
      List.filter (fun n -> rank.(n) < rank.(s)) (Us_states.neighbors s))

let upper_bound color_costs =
  (Us_states.count * Array.fold_left max 0 color_costs) + 1

let solve_sequential ?(color_costs = default.color_costs) () =
  let ncolors = Array.length color_costs in
  let assign = Array.make Us_states.count (-1) in
  let best = ref (upper_bound color_costs) in
  let rec dfs i cost =
    if i = Us_states.count then best := min !best cost
    else begin
      let s = order.(i) in
      let remaining = Us_states.count - i in
      if cost + remaining < !best then
        for c = 0 to ncolors - 1 do
          let feasible =
            List.for_all (fun n -> assign.(n) <> c) earlier_neighbors.(s)
          in
          if feasible then begin
            assign.(s) <- c;
            dfs (i + 1) (cost + color_costs.(c));
            assign.(s) <- -1
          end
        done
    end
  in
  dfs 0 0;
  !best

let run config =
  let dsm =
    Dsm.create ?tie_seed:config.tie_seed ~nodes:config.nodes ~driver:config.driver ()
  in
  let ids = Builtin.register_all dsm in
  ignore (Builtin.register_extras dsm);
  (match config.observe with Some f -> f dsm | None -> ());
  let proto =
    match config.protocol with
    | "java_ic" -> ids.Builtin.java_ic
    | "java_pf" -> ids.Builtin.java_pf
    | other -> (
        match Dsm.protocol_by_name dsm other with
        | Some p -> p
        | None -> invalid_arg ("Map_coloring.run: unknown protocol " ^ other))
  in
  let hyp = Dsmpm2_hyperion.Hyperion.create dsm ~protocol:proto in
  let module H = Dsmpm2_hyperion.Hyperion in
  let ncolors = Array.length config.color_costs in
  let nstates = Us_states.count in
  (* Shared objects: the graph (read-mostly, spread over the nodes), the
     colour costs, and the current best cost under its monitor. *)
  let adj_counts = H.new_array hyp ~home:0 ~len:nstates () in
  let adj_flat_len = max 1 (List.fold_left (fun a s -> a + List.length earlier_neighbors.(s)) 0 (Array.to_list order)) in
  let adj_flat = H.new_array hyp ~home:(min 1 (config.nodes - 1)) ~len:adj_flat_len () in
  let adj_offsets = H.new_array hyp ~home:0 ~len:nstates () in
  let costs_obj = H.new_array hyp ~home:(min 2 (config.nodes - 1)) ~len:ncolors () in
  let best_obj = H.new_obj hyp ~home:0 ~fields:1 () in
  let monitor = H.new_monitor hyp ~manager:0 () in
  let gets = ref 0 in
  let expansions = ref 0 in
  (* A setup thread fills main memory through the ordinary put path. *)
  ignore
    (Dsm.spawn dsm ~node:0 (fun () ->
         let off = ref 0 in
         Array.iter
           (fun s ->
             H.put hyp adj_offsets rank.(s) !off;
             H.put hyp adj_counts rank.(s) (List.length earlier_neighbors.(s));
             List.iter
               (fun n ->
                 H.put hyp adj_flat !off rank.(n);
                 incr off)
               earlier_neighbors.(s))
           order;
         Array.iteri (fun c v -> H.put hyp costs_obj c v) config.color_costs;
         H.put hyp best_obj 0 (upper_bound config.color_costs);
         H.main_memory_update hyp));
  Dsm.run dsm;
  (* Worker threads: one per node, Hyperion-compiled Java style. *)
  let worker node () =
    let get o i =
      incr gets;
      H.get hyp o i
    in
    (* The worker's own assignment array lives on its node: intensive local
       object usage (rank-indexed; value = colour + 1, 0 = unassigned). *)
    let assign = H.new_array hyp ~home:node ~len:nstates () in
    for i = 0 to nstates - 1 do
      H.put hyp assign i 0
    done;
    let local_best = ref (H.synchronized hyp monitor (fun () -> get best_obj 0)) in
    let since_refresh = ref 0 in
    let pending = ref 0 in
    let expand () =
      incr expansions;
      incr pending;
      incr since_refresh;
      if !pending >= 256 then begin
        Workloads.charge_batched dsm config.expand_us !pending;
        pending := 0
      end;
      if !since_refresh >= config.refresh_period then begin
        since_refresh := 0;
        Workloads.charge_batched dsm config.expand_us !pending;
        pending := 0;
        local_best := H.synchronized hyp monitor (fun () -> get best_obj 0)
      end
    in
    let publish cost =
      Workloads.charge_batched dsm config.expand_us !pending;
      pending := 0;
      H.synchronized hyp monitor (fun () ->
          let g = get best_obj 0 in
          if cost < g then H.put hyp best_obj 0 cost;
          local_best := min g cost)
    in
    let feasible i c =
      let off = get adj_offsets i and cnt = get adj_counts i in
      let rec check k =
        if k >= cnt then true
        else begin
          incr gets;
          if H.get hyp assign (H.get hyp adj_flat (off + k)) = c + 1 then false
          else check (k + 1)
        end
      in
      check 0
    in
    let rec dfs i cost =
      expand ();
      if i = nstates then begin
        if cost < !local_best then publish cost
      end
      else if cost + (nstates - i) < !local_best then
        for c = 0 to ncolors - 1 do
          if feasible i c then begin
            H.put hyp assign i (c + 1);
            dfs (i + 1) (cost + get costs_obj c);
            H.put hyp assign i 0
          end
        done
    in
    (* Static partitioning on the colours of the first two states in search
       order: 16 subtrees, round-robin over the workers. *)
    let combo = ref 0 in
    for c0 = 0 to ncolors - 1 do
      for c1 = 0 to ncolors - 1 do
        if !combo mod config.nodes = node then
          if feasible 0 c0 then begin
            H.put hyp assign 0 (c0 + 1);
            if feasible 1 c1 then begin
              H.put hyp assign 1 (c1 + 1);
              dfs 2 (get costs_obj c0 + get costs_obj c1);
              H.put hyp assign 1 0
            end;
            H.put hyp assign 0 0
          end;
        incr combo
      done
    done;
    Workloads.charge_batched dsm config.expand_us !pending;
    Dsm.compute dsm 0.1
  in
  for node = 0 to config.nodes - 1 do
    ignore (Dsm.spawn dsm ~node (worker node))
  done;
  Dsm.run dsm;
  let stats = Dsm.stats dsm in
  {
    time_ms = Dsm.now_us dsm /. 1000.;
    best_cost = H.peek_main_memory hyp best_obj 0;
    expansions = !expansions;
    gets = !gets;
    inline_checks = Stats.count stats Instrument.inline_checks;
    read_faults = Stats.count stats Instrument.read_faults;
    write_faults = Stats.count stats Instrument.write_faults;
    messages = Network.messages_sent (Dsmpm2_pm2.Pm2.network (Dsm.pm2 dsm));
  }

(** Parallel odd-even transposition sort over DSM.

    The fourth SPLASH-style kernel, with a sharing pattern none of the
    others exercise: {e pairwise neighbour exchange}.  The array is
    block-distributed; in each of the [2n] phases, adjacent blocks are
    merged pairwise (even phases pair blocks 0-1, 2-3, ...; odd phases pair
    1-2, 3-4, ...) with a barrier between phases.  The left partner of each
    pair reads the right partner's whole block, merge-splits, and writes
    both halves back — so pages flow back and forth between fixed neighbour
    pairs, a ping-pong that rewards protocols with cheap transfers and
    punishes whole-page bouncing. *)

open Dsmpm2_net

type config = {
  elements_per_node : int;
  nodes : int;
  driver : Driver.t;
  protocol : string;
  compare_us : float;
  seed : int;
  tie_seed : int option;
      (** seeded engine tie-breaking ({!Dsmpm2_core.Dsm.create}): each seed
          explores a distinct, replayable legal interleaving *)
  observe : (Dsmpm2_core.Dsm.t -> unit) option;
      (** called with the runtime before any thread starts — enable
          monitoring here and keep the handle for post-run export *)
}

val default : config

type result = {
  time_ms : float;
  sorted : bool;  (** the final array is globally sorted *)
  correct : bool;  (** and is a permutation of the input *)
  read_faults : int;
  write_faults : int;
  pages_transferred : int;
  messages : int;
}

val run : config -> result

(** LU-patterned Gaussian elimination over DSM: the third SPLASH-style
    kernel.

    Row-block distribution; at step [k] the pivot row is read by every node
    (a one-to-all sharing pattern, unlike Jacobi's neighbour halos) while
    each node updates its own rows, with a barrier per step.  The arithmetic
    is performed on a finite integer ring (values are reduced modulo a fixed
    bound after each update) so the DSM runs and the sequential oracle are
    exactly comparable — the numerical content is irrelevant to the protocol
    study, the access pattern is what matters. *)

open Dsmpm2_net

type config = {
  size : int;
  nodes : int;
  driver : Driver.t;
  protocol : string;
  op_us : float;
  seed : int;
  tie_seed : int option;
      (** seeded engine tie-breaking ({!Dsmpm2_core.Dsm.create}): each seed
          explores a distinct, replayable legal interleaving *)
  observe : (Dsmpm2_core.Dsm.t -> unit) option;
      (** called with the runtime before any thread starts — enable
          monitoring here and keep the handle for post-run export *)
}

val default : config

type result = {
  time_ms : float;
  checksum : int;
  read_faults : int;
  write_faults : int;
  pages_transferred : int;
  messages : int;
}

val run : config -> result
val checksum_sequential : size:int -> seed:int -> int

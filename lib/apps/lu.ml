open Dsmpm2_sim
open Dsmpm2_net
open Dsmpm2_core
open Dsmpm2_protocols

type config = {
  size : int;
  nodes : int;
  driver : Driver.t;
  protocol : string;
  op_us : float;
  seed : int;
  tie_seed : int option;  (* seeded engine tie-breaking, replayable *)
  observe : (Dsm.t -> unit) option;
      (* called with the runtime before any thread starts, so callers can
         enable monitoring or keep a handle for post-run export *)
}

let default =
  {
    size = 32;
    nodes = 4;
    driver = Driver.bip_myrinet;
    protocol = "li_hudak";
    op_us = Workloads.matmul_inner_us;
    seed = 11;
    tie_seed = None;
    observe = None;
  }

type result = {
  time_ms : float;
  checksum : int;
  read_faults : int;
  write_faults : int;
  pages_transferred : int;
  messages : int;
}

let ring = 1_000_003

let initial ~seed i j = (((i * 73) + (j * 37) + seed) mod 97) + 1

(* One elimination step on the ring; shared by the DSM and sequential
   versions so their results agree bit for bit. *)
let eliminate ~pivot ~pivot_row_j ~own_ik ~a_ij =
  let factor = own_ik * 1000 / max 1 pivot in
  (((a_ij * 1000) - (factor * pivot_row_j)) / 1000) mod ring

let checksum_sequential ~size ~seed =
  let a = Array.init size (fun i -> Array.init size (fun j -> initial ~seed i j)) in
  for k = 0 to size - 2 do
    for i = k + 1 to size - 1 do
      let own_ik = a.(i).(k) in
      for j = k to size - 1 do
        a.(i).(j) <- eliminate ~pivot:a.(k).(k) ~pivot_row_j:a.(k).(j) ~own_ik ~a_ij:a.(i).(j)
      done
    done
  done;
  Array.fold_left (fun acc row -> Array.fold_left ( + ) acc row) 0 a

let run config =
  let size = config.size in
  let dsm =
    Dsm.create ?tie_seed:config.tie_seed ~nodes:config.nodes ~driver:config.driver ()
  in
  ignore (Builtin.register_all dsm);
  ignore (Builtin.register_extras dsm);
  (match config.observe with Some f -> f dsm | None -> ());
  let proto =
    match Dsm.protocol_by_name dsm config.protocol with
    | Some p -> p
    | None -> invalid_arg ("Lu.run: unknown protocol " ^ config.protocol)
  in
  let a = Dsm.malloc dsm ~protocol:proto ~home:Dsm.Block (size * size * 8) in
  let addr i j = a + (((i * size) + j) * 8) in
  let barrier = Dsm.barrier_create dsm ~protocol:proto ~parties:config.nodes () in
  (* Rows are dealt to nodes in contiguous blocks, matching the Block page
     placement. *)
  let owner_of_row i = min (config.nodes - 1) (i * config.nodes / size) in
  let time_after_solve = ref 0. in
  let worker node () =
    for i = 0 to size - 1 do
      if owner_of_row i = node then
        for j = 0 to size - 1 do
          Dsm.write_int dsm (addr i j) (initial ~seed:config.seed i j)
        done
    done;
    Dsm.barrier_wait dsm barrier;
    for k = 0 to size - 2 do
      (* Everyone reads the pivot row (one-to-all), owners update their
         rows below it. *)
      let pivot = Dsm.read_int dsm (addr k k) in
      for i = k + 1 to size - 1 do
        if owner_of_row i = node then begin
          let own_ik = Dsm.read_int dsm (addr i k) in
          for j = k to size - 1 do
            let updated =
              eliminate ~pivot ~pivot_row_j:(Dsm.read_int dsm (addr k j)) ~own_ik
                ~a_ij:(Dsm.read_int dsm (addr i j))
            in
            Dsm.write_int dsm (addr i j) updated;
            Dsm.charge dsm config.op_us
          done
        end
      done;
      Dsm.barrier_wait dsm barrier
    done;
    if node = 0 then time_after_solve := Dsm.now_us dsm /. 1000.
  in
  for node = 0 to config.nodes - 1 do
    ignore (Dsm.spawn dsm ~node (worker node))
  done;
  Dsm.run dsm;
  let checksum = ref 0 in
  ignore
    (Dsm.spawn dsm ~node:0 (fun () ->
         for i = 0 to size - 1 do
           for j = 0 to size - 1 do
             checksum := !checksum + Dsm.read_int dsm (addr i j)
           done
         done));
  Dsm.run dsm;
  let stats = Dsm.stats dsm in
  {
    time_ms = !time_after_solve;
    checksum = !checksum;
    read_faults = Stats.count stats Instrument.read_faults;
    write_faults = Stats.count stats Instrument.write_faults;
    pages_transferred = Stats.count stats Instrument.pages_sent;
    messages = Network.messages_sent (Dsmpm2_pm2.Pm2.network (Dsm.pm2 dsm));
  }

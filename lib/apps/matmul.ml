open Dsmpm2_sim
open Dsmpm2_net
open Dsmpm2_core
open Dsmpm2_protocols

type config = {
  size : int;
  nodes : int;
  driver : Driver.t;
  protocol : string;
  inner_us : float;
  seed : int;
  tie_seed : int option;  (* seeded engine tie-breaking, replayable *)
  observe : (Dsm.t -> unit) option;
      (* called with the runtime before any thread starts, so callers can
         enable monitoring or keep a handle for post-run export *)
}

let default =
  {
    size = 32;
    nodes = 4;
    driver = Driver.bip_myrinet;
    protocol = "li_hudak";
    inner_us = Workloads.matmul_inner_us;
    seed = 7;
    tie_seed = None;
    observe = None;
  }

type result = {
  time_ms : float;
  checksum : int;
  read_faults : int;
  write_faults : int;
  pages_transferred : int;
  messages : int;
}

let element ~seed i j = ((i * 31) + (j * 17) + seed) mod 10

let checksum_sequential ~size ~seed =
  let c = ref 0 in
  for i = 0 to size - 1 do
    for j = 0 to size - 1 do
      let acc = ref 0 in
      for k = 0 to size - 1 do
        acc := !acc + (element ~seed i k * element ~seed k j)
      done;
      c := !c + !acc
    done
  done;
  !c

let row_range ~size ~nodes node =
  let rows = size / nodes in
  let lo = node * rows in
  let hi = if node = nodes - 1 then size - 1 else lo + rows - 1 in
  (lo, hi)

let run config =
  let size = config.size in
  let dsm =
    Dsm.create ?tie_seed:config.tie_seed ~nodes:config.nodes ~driver:config.driver ()
  in
  ignore (Builtin.register_all dsm);
  ignore (Builtin.register_extras dsm);
  (match config.observe with Some f -> f dsm | None -> ());
  let proto =
    match Dsm.protocol_by_name dsm config.protocol with
    | Some p -> p
    | None -> invalid_arg ("Matmul.run: unknown protocol " ^ config.protocol)
  in
  let bytes = size * size * 8 in
  let a = Dsm.malloc dsm ~protocol:proto ~home:Dsm.Block bytes in
  let b = Dsm.malloc dsm ~protocol:proto ~home:Dsm.Block bytes in
  let c = Dsm.malloc dsm ~protocol:proto ~home:Dsm.Block bytes in
  let addr m i j = m + (((i * size) + j) * 8) in
  let barrier = Dsm.barrier_create dsm ~protocol:proto ~parties:config.nodes () in
  let time_after_solve = ref 0. in
  let worker node () =
    let lo, hi = row_range ~size ~nodes:config.nodes node in
    (* Everybody initialises its own block of A and B locally. *)
    for i = lo to hi do
      for j = 0 to size - 1 do
        Dsm.write_int dsm (addr a i j) (element ~seed:config.seed i j);
        Dsm.write_int dsm (addr b i j) (element ~seed:config.seed i j)
      done
    done;
    Dsm.barrier_wait dsm barrier;
    for i = lo to hi do
      for j = 0 to size - 1 do
        let acc = ref 0 in
        for k = 0 to size - 1 do
          acc := !acc + (Dsm.read_int dsm (addr a i k) * Dsm.read_int dsm (addr b k j));
          Dsm.charge dsm config.inner_us
        done;
        Dsm.write_int dsm (addr c i j) !acc
      done
    done;
    Dsm.barrier_wait dsm barrier;
    if node = 0 then time_after_solve := Dsm.now_us dsm /. 1000.
  in
  for node = 0 to config.nodes - 1 do
    ignore (Dsm.spawn dsm ~node (worker node))
  done;
  Dsm.run dsm;
  let checksum = ref 0 in
  ignore
    (Dsm.spawn dsm ~node:0 (fun () ->
         for i = 0 to size - 1 do
           for j = 0 to size - 1 do
             checksum := !checksum + Dsm.read_int dsm (addr c i j)
           done
         done));
  Dsm.run dsm;
  let stats = Dsm.stats dsm in
  {
    time_ms = !time_after_solve;
    checksum = !checksum;
    read_faults = Stats.count stats Instrument.read_faults;
    write_faults = Stats.count stats Instrument.write_faults;
    pages_transferred = Stats.count stats Instrument.pages_sent;
    messages = Network.messages_sent (Dsmpm2_pm2.Pm2.network (Dsm.pm2 dsm));
  }

(** Travelling Salesman by branch-and-bound over DSM (paper Section 4,
    Figure 4).

    Solves TSP for [cities] randomly placed cities (random symmetric
    inter-city distances, seeded), with one application thread per node as
    in the paper.  The only intensively shared variable is the current
    shortest tour length, kept in one DSM word whose page lives on node 0;
    every access to it is lock protected.  Threads branch on the second city
    of the tour (round-robin over threads), prune with a
    minimum-outgoing-edge lower bound, refresh their cached bound under the
    lock every [refresh_period] expansions and publish improvements under
    the same lock.

    Under page-based protocols the bound page gets replicated to readers and
    re-fetched after updates; under [migrate_thread] every bound access
    migrates the worker to node 0, which ends up hosting — and serialising —
    every thread: the load-imbalance effect the paper's Figure 4 shows. *)

open Dsmpm2_net

type config = {
  cities : int;  (** 14 in the paper *)
  seed : int;
  nodes : int;
  driver : Driver.t;
  protocol : string;  (** a built-in protocol name *)
  refresh_period : int;  (** expansions between lock-protected bound reads *)
  expand_us : float;  (** simulated CPU cost per tree-node expansion *)
  balance : bool;
      (** run PM2's dynamic load balancer alongside the workers (paper
          section 2.1's motivating use of preemptive migration); workers
          are spawned migratable either way *)
  tie_seed : int option;
      (** seeded engine tie-breaking ({!Dsmpm2_core.Dsm.create}): each seed
          explores a distinct, replayable legal interleaving *)
  observe : (Dsmpm2_core.Dsm.t -> unit) option;
      (** called with the runtime before any thread starts — enable
          monitoring here and keep the handle for post-run export *)
}

val default : config
(** 14 cities, seed 42, 4 nodes, BIP/Myrinet, li_hudak, refresh 2000. *)

type result = {
  time_ms : float;  (** simulated wall-clock of the parallel solve *)
  best : int;  (** shortest tour length found *)
  expansions : int;  (** total tree nodes expanded, all threads *)
  migrations : int;  (** thread migrations (non-zero only for migrate_thread) *)
  read_faults : int;
  write_faults : int;
  messages : int;
  final_node_of_thread : int list;
      (** where each worker ended up — shows the migrate_thread pile-up *)
  balancer_moves : int;  (** migrations the balancer requested (0 if off) *)
}

val run : config -> result

val distances : cities:int -> seed:int -> int array array
(** The seeded random distance matrix (symmetric, 1..99), exposed for the
    sequential reference and tests. *)

val solve_sequential : int array array -> int
(** Exact sequential branch-and-bound, used as the correctness oracle. *)

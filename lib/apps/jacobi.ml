open Dsmpm2_sim
open Dsmpm2_net
open Dsmpm2_core
open Dsmpm2_protocols

type config = {
  size : int;
  iterations : int;
  nodes : int;
  driver : Driver.t;
  protocol : string;
  point_us : float;
  tie_seed : int option;
      (* seeded engine tie-breaking: [Some s] perturbs (deterministically)
         the legal interleaving, the macro-bench suite's repeat knob *)
  observe : (Dsm.t -> unit) option;
      (* called with the runtime before any thread starts, so callers can
         enable monitoring or keep a handle for post-run export *)
}

let default =
  {
    size = 48;
    iterations = 8;
    nodes = 4;
    driver = Driver.bip_myrinet;
    protocol = "hbrc_mw";
    point_us = Workloads.jacobi_point_us;
    tie_seed = None;
    observe = None;
  }

type result = {
  time_ms : float;
  checksum : int;
  read_faults : int;
  write_faults : int;
  pages_transferred : int;
  diff_bytes : int;
  messages : int;
}

(* A hot top edge over a deterministic pseudo-random interior, so every page
   changes on every sweep (and the multiple-writer protocols have real diffs
   to ship).  All arithmetic is integral so the DSM and sequential versions
   agree bit for bit. *)
let initial ~size:_ i j =
  if i = 0 then 1_000_000 else ((i * 131) + (j * 17)) mod 1_000

let checksum_sequential ~size ~iterations =
  let g = Array.init 2 (fun _ -> Array.make_matrix size size 0) in
  for i = 0 to size - 1 do
    for j = 0 to size - 1 do
      g.(0).(i).(j) <- initial ~size i j;
      g.(1).(i).(j) <- initial ~size i j
    done
  done;
  for it = 0 to iterations - 1 do
    let src = g.(it land 1) and dst = g.(1 - (it land 1)) in
    for i = 1 to size - 2 do
      for j = 1 to size - 2 do
        dst.(i).(j) <- (src.(i - 1).(j) + src.(i + 1).(j) + src.(i).(j - 1) + src.(i).(j + 1)) / 4
      done
    done
  done;
  let final = g.(iterations land 1) in
  Array.fold_left (fun acc row -> Array.fold_left ( + ) acc row) 0 final

(* Rows [lo, hi] (inclusive) handled by a worker. *)
let row_range ~size ~nodes node =
  let rows = size / nodes in
  let lo = node * rows in
  let hi = if node = nodes - 1 then size - 1 else lo + rows - 1 in
  (lo, hi)

let run config =
  let size = config.size in
  let dsm =
    Dsm.create ?tie_seed:config.tie_seed ~nodes:config.nodes ~driver:config.driver ()
  in
  ignore (Builtin.register_all dsm);
  ignore (Builtin.register_extras dsm);
  (match config.observe with Some f -> f dsm | None -> ());
  let proto =
    match Dsm.protocol_by_name dsm config.protocol with
    | Some p -> p
    | None -> invalid_arg ("Jacobi.run: unknown protocol " ^ config.protocol)
  in
  let bytes = size * size * 8 in
  let grid = [| Dsm.malloc dsm ~protocol:proto ~home:Dsm.Block bytes;
                Dsm.malloc dsm ~protocol:proto ~home:Dsm.Block bytes |] in
  let addr g i j = grid.(g) + (((i * size) + j) * 8) in
  let barrier = Dsm.barrier_create dsm ~protocol:proto ~parties:config.nodes () in
  let time_after_solve = ref 0. in
  let worker node () =
    let lo, hi = row_range ~size ~nodes:config.nodes node in
    (* Each worker initialises its own rows: local writes only. *)
    for g = 0 to 1 do
      for i = lo to hi do
        for j = 0 to size - 1 do
          Dsm.write_int dsm (addr g i j) (initial ~size i j)
        done
      done
    done;
    Dsm.barrier_wait dsm barrier;
    for it = 0 to config.iterations - 1 do
      let src = it land 1 and dst = 1 - (it land 1) in
      for i = max 1 lo to min (size - 2) hi do
        for j = 1 to size - 2 do
          let v =
            (Dsm.read_int dsm (addr src (i - 1) j)
            + Dsm.read_int dsm (addr src (i + 1) j)
            + Dsm.read_int dsm (addr src i (j - 1))
            + Dsm.read_int dsm (addr src i (j + 1)))
            / 4
          in
          Dsm.write_int dsm (addr dst i j) v;
          Dsm.charge dsm config.point_us
        done
      done;
      Dsm.barrier_wait dsm barrier
    done;
    if node = 0 then time_after_solve := Dsm.now_us dsm /. 1000.
  in
  for node = 0 to config.nodes - 1 do
    ignore (Dsm.spawn dsm ~node (worker node))
  done;
  Dsm.run dsm;
  (* A fresh reader computes the checksum through the DSM from node 0: the
     protocols must deliver a coherent final grid. *)
  let checksum = ref 0 in
  let final = config.iterations land 1 in
  ignore
    (Dsm.spawn dsm ~node:0 (fun () ->
         for i = 0 to size - 1 do
           for j = 0 to size - 1 do
             checksum := !checksum + Dsm.read_int dsm (addr final i j)
           done
         done));
  Dsm.run dsm;
  let stats = Dsm.stats dsm in
  {
    time_ms = !time_after_solve;
    checksum = !checksum;
    read_faults = Stats.count stats Instrument.read_faults;
    write_faults = Stats.count stats Instrument.write_faults;
    pages_transferred = Stats.count stats Instrument.pages_sent;
    diff_bytes = Stats.count stats Instrument.diff_bytes;
    messages = Network.messages_sent (Dsmpm2_pm2.Pm2.network (Dsm.pm2 dsm));
  }

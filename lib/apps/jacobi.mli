(** Jacobi relaxation over DSM: the regular, barrier-synchronised workload
    class the paper's conclusion targets with its planned SPLASH-2 study.

    A square grid (fixed-point values) is block-distributed by rows across
    the nodes; each node's worker relaxes its rows every iteration, reading
    one halo row from each neighbouring block, and all workers meet at a
    barrier between iterations.  The sharing pattern — producer/consumer on
    block-boundary pages with barrier synchronisation — discriminates
    protocols very differently from the lock-centric TSP: home-based diffs
    ([hbrc_mw]) ship only the few modified words of a boundary page, while
    the MRSW protocols bounce whole pages. *)

open Dsmpm2_net

type config = {
  size : int;  (** grid side; the grid is size x size *)
  iterations : int;
  nodes : int;
  driver : Driver.t;
  protocol : string;
  point_us : float;
  tie_seed : int option;
      (** seeded engine tie-breaking ({!Dsmpm2_core.Dsm.create}): each seed
          explores a distinct, replayable legal interleaving *)
  observe : (Dsmpm2_core.Dsm.t -> unit) option;
      (** called with the runtime before any thread starts — enable
          monitoring here and keep the handle for post-run export *)
}

val default : config

type result = {
  time_ms : float;
  checksum : int;  (** sum of the final grid, fixed-point *)
  read_faults : int;
  write_faults : int;
  pages_transferred : int;
  diff_bytes : int;
  messages : int;
}

val run : config -> result

val checksum_sequential : size:int -> iterations:int -> int
(** The same relaxation computed sequentially: the correctness oracle. *)

open Dsmpm2_sim
open Dsmpm2_net
open Dsmpm2_core
open Dsmpm2_protocols

type config = {
  elements_per_node : int;
  nodes : int;
  driver : Driver.t;
  protocol : string;
  compare_us : float;
  seed : int;
  tie_seed : int option;  (* seeded engine tie-breaking, replayable *)
  observe : (Dsm.t -> unit) option;
      (* called with the runtime before any thread starts, so callers can
         enable monitoring or keep a handle for post-run export *)
}

let default =
  {
    elements_per_node = 64;
    nodes = 4;
    driver = Driver.bip_myrinet;
    protocol = "li_hudak";
    compare_us = Workloads.matmul_inner_us;
    seed = 23;
    tie_seed = None;
    observe = None;
  }

type result = {
  time_ms : float;
  sorted : bool;
  correct : bool;
  read_faults : int;
  write_faults : int;
  pages_transferred : int;
  messages : int;
}

let run config =
  let n = config.nodes * config.elements_per_node in
  let dsm =
    Dsm.create ?tie_seed:config.tie_seed ~nodes:config.nodes ~driver:config.driver ()
  in
  ignore (Builtin.register_all dsm);
  ignore (Builtin.register_extras dsm);
  (match config.observe with Some f -> f dsm | None -> ());
  let proto =
    match Dsm.protocol_by_name dsm config.protocol with
    | Some p -> p
    | None -> invalid_arg ("Sort.run: unknown protocol " ^ config.protocol)
  in
  (* One page-aligned block per node, so block exchanges are page
     exchanges. *)
  let block_bytes = ((config.elements_per_node * 8 / 4096) + 1) * 4096 in
  let blocks =
    Array.init config.nodes (fun node ->
        Dsm.malloc dsm ~protocol:proto ~home:(Dsm.On_node node) block_bytes)
  in
  let addr block i = blocks.(block) + (i * 8) in
  let rng = Rng.create ~seed:config.seed in
  let input = Array.init n (fun _ -> Rng.int rng 100_000) in
  let barrier = Dsm.barrier_create dsm ~protocol:proto ~parties:config.nodes () in
  let k = config.elements_per_node in
  let worker node () =
    (* each node seeds its own block locally *)
    for i = 0 to k - 1 do
      Dsm.write_int dsm (addr node i) input.((node * k) + i)
    done;
    Dsm.barrier_wait dsm barrier;
    for phase = 0 to (2 * config.nodes) - 1 do
      (* the left partner of each adjacent pair does the merge-split *)
      let left = if phase land 1 = 0 then node - (node land 1) else node - ((node + 1) land 1) in
      let right = left + 1 in
      if node = left && right < config.nodes && left >= 0 then begin
        let merged = Array.make (2 * k) 0 in
        for i = 0 to k - 1 do
          merged.(i) <- Dsm.read_int dsm (addr left i);
          merged.(k + i) <- Dsm.read_int dsm (addr right i);
          Dsm.charge dsm config.compare_us
        done;
        Array.sort compare merged;
        Workloads.charge_batched dsm config.compare_us (2 * k * 8);
        for i = 0 to k - 1 do
          Dsm.write_int dsm (addr left i) merged.(i);
          Dsm.write_int dsm (addr right i) merged.(k + i)
        done
      end;
      Dsm.barrier_wait dsm barrier
    done
  in
  for node = 0 to config.nodes - 1 do
    ignore (Dsm.spawn dsm ~node (worker node))
  done;
  Dsm.run dsm;
  let time_ms = Dsm.now_us dsm /. 1000. in
  (* Read the result back through the DSM from node 0. *)
  let output = Array.make n 0 in
  ignore
    (Dsm.spawn dsm ~node:0 (fun () ->
         for i = 0 to n - 1 do
           output.(i) <- Dsm.read_int dsm (addr (i / k) (i mod k))
         done));
  Dsm.run dsm;
  let sorted = ref true in
  for i = 1 to n - 1 do
    if output.(i - 1) > output.(i) then sorted := false
  done;
  let correct =
    List.sort compare (Array.to_list input) = List.sort compare (Array.to_list output)
  in
  let stats = Dsm.stats dsm in
  {
    time_ms;
    sorted = !sorted;
    correct;
    read_faults = Stats.count stats Instrument.read_faults;
    write_faults = Stats.count stats Instrument.write_faults;
    pages_transferred = Stats.count stats Instrument.pages_sent;
    messages = Network.messages_sent (Dsmpm2_pm2.Pm2.network (Dsm.pm2 dsm));
  }

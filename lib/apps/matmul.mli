(** Blocked matrix multiplication over DSM.

    C = A x B with rows of A and C block-distributed across the nodes and B
    read-shared by everybody — a replication-friendly workload on which the
    page-based protocols behave almost identically (B's pages are fetched
    once each and never invalidated), while [migrate_thread] collapses:
    every worker chases B's pages to their owners.  Second member of the
    SPLASH-style extension suite. *)

open Dsmpm2_net

type config = {
  size : int;
  nodes : int;
  driver : Driver.t;
  protocol : string;
  inner_us : float;
  seed : int;
  tie_seed : int option;
      (** seeded engine tie-breaking ({!Dsmpm2_core.Dsm.create}): each seed
          explores a distinct, replayable legal interleaving *)
  observe : (Dsmpm2_core.Dsm.t -> unit) option;
      (** called with the runtime before any thread starts — enable
          monitoring here and keep the handle for post-run export *)
}

val default : config

type result = {
  time_ms : float;
  checksum : int;
  read_faults : int;
  write_faults : int;
  pages_transferred : int;
  messages : int;
}

val run : config -> result
val checksum_sequential : size:int -> seed:int -> int

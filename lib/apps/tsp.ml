open Dsmpm2_sim
open Dsmpm2_net
open Dsmpm2_core
open Dsmpm2_protocols

type config = {
  cities : int;
  seed : int;
  nodes : int;
  driver : Driver.t;
  protocol : string;
  refresh_period : int;
  expand_us : float;
  balance : bool;  (* run the PM2 load balancer alongside the workers *)
  tie_seed : int option;  (* seeded engine tie-breaking, replayable *)
  observe : (Dsm.t -> unit) option;
      (* called with the runtime before any thread starts, so callers can
         enable monitoring or keep a handle for post-run export *)
}

let default =
  {
    cities = 14;
    seed = 42;
    nodes = 4;
    driver = Driver.bip_myrinet;
    protocol = "li_hudak";
    refresh_period = 2000;
    expand_us = Workloads.tsp_expand_us;
    balance = false;
    tie_seed = None;
    observe = None;
  }

type result = {
  time_ms : float;
  best : int;
  expansions : int;
  migrations : int;
  read_faults : int;
  write_faults : int;
  messages : int;
  final_node_of_thread : int list;
  balancer_moves : int;
}

let distances ~cities ~seed =
  let rng = Rng.create ~seed in
  let d = Array.make_matrix cities cities 0 in
  for i = 0 to cities - 1 do
    for j = i + 1 to cities - 1 do
      let v = 1 + Rng.int rng 99 in
      d.(i).(j) <- v;
      d.(j).(i) <- v
    done
  done;
  d

let min_outgoing d =
  Array.map
    (fun row ->
      Array.fold_left (fun acc v -> if v > 0 && v < acc then v else acc) max_int row)
    d

(* A greedy nearest-neighbour tour provides the initial bound. *)
let greedy_bound d =
  let n = Array.length d in
  let visited = Array.make n false in
  visited.(0) <- true;
  let total = ref 0 in
  let current = ref 0 in
  for _ = 1 to n - 1 do
    let next = ref (-1) in
    for j = 0 to n - 1 do
      if (not visited.(j)) && (!next < 0 || d.(!current).(j) < d.(!current).(!next))
      then next := j
    done;
    total := !total + d.(!current).(!next);
    visited.(!next) <- true;
    current := !next
  done;
  !total + d.(!current).(0)

(* Sequential exact branch-and-bound: the oracle for the DSM runs. *)
let solve_sequential d =
  let n = Array.length d in
  let mins = min_outgoing d in
  let best = ref (greedy_bound d) in
  let visited = Array.make n false in
  visited.(0) <- true;
  let rec dfs current len count remaining_min =
    if count = n then begin
      let total = len + d.(current).(0) in
      if total < !best then best := total
    end
    else if len + remaining_min < !best then
      for next = 1 to n - 1 do
        if not visited.(next) then begin
          visited.(next) <- true;
          dfs next (len + d.(current).(next)) (count + 1) (remaining_min - mins.(next));
          visited.(next) <- false
        end
      done
  in
  let all_min = Array.fold_left ( + ) 0 mins - mins.(0) in
  dfs 0 0 1 all_min;
  !best

let run config =
  let dsm =
    Dsm.create ?tie_seed:config.tie_seed ~nodes:config.nodes ~driver:config.driver ()
  in
  let ids = Builtin.register_all dsm in
  ignore ids;
  ignore (Builtin.register_extras dsm);
  (match config.observe with Some f -> f dsm | None -> ());
  let proto =
    match Dsm.protocol_by_name dsm config.protocol with
    | Some p -> p
    | None -> invalid_arg ("Tsp.run: unknown protocol " ^ config.protocol)
  in
  let d = distances ~cities:config.cities ~seed:config.seed in
  let n = config.cities in
  let mins = min_outgoing d in
  let all_min = Array.fold_left ( + ) 0 mins - mins.(0) in
  (* The shared shortest-path variable: one word, page on node 0, always
     accessed under the lock (as in the paper's program). *)
  let best_addr = Dsm.malloc dsm ~protocol:proto ~home:(Dsm.On_node 0) 8 in
  let best_lock = Dsm.lock_create dsm ~protocol:proto ~manager:0 () in
  let expansions = ref 0 in
  let final_nodes = Array.make config.nodes (-1) in
  let worker node () =
    (* Initial bound: each thread starts from the greedy tour. *)
    Dsm.with_lock dsm best_lock (fun () ->
        if Dsm.read_int dsm best_addr = 0 then
          Dsm.write_int dsm best_addr (greedy_bound d));
    let local_best = ref (Dsm.with_lock dsm best_lock (fun () -> Dsm.read_int dsm best_addr)) in
    let since_refresh = ref 0 in
    let visited = Array.make n false in
    visited.(0) <- true;
    let pending_work = ref 0 in
    let expand () =
      incr expansions;
      incr pending_work;
      incr since_refresh;
      if !pending_work >= 256 then begin
        Workloads.charge_batched dsm config.expand_us !pending_work;
        pending_work := 0
      end;
      if !since_refresh >= config.refresh_period then begin
        since_refresh := 0;
        Workloads.charge_batched dsm config.expand_us !pending_work;
        pending_work := 0;
        Dsm.with_lock dsm best_lock (fun () ->
            local_best := Dsm.read_int dsm best_addr)
      end
    in
    let publish total =
      Workloads.charge_batched dsm config.expand_us !pending_work;
      pending_work := 0;
      Dsm.with_lock dsm best_lock (fun () ->
          let global = Dsm.read_int dsm best_addr in
          if total < global then Dsm.write_int dsm best_addr total;
          local_best := min global total)
    in
    let rec dfs current len count remaining_min =
      expand ();
      if count = n then begin
        let total = len + d.(current).(0) in
        if total < !local_best then publish total
      end
      else if len + remaining_min < !local_best then
        for next = 1 to n - 1 do
          if not visited.(next) then begin
            visited.(next) <- true;
            dfs next (len + d.(current).(next)) (count + 1) (remaining_min - mins.(next));
            visited.(next) <- false
          end
        done
    in
    (* Static partitioning: branch on the second city, round-robin. *)
    for second = 1 to n - 1 do
      if (second - 1) mod config.nodes = node then begin
        visited.(second) <- true;
        dfs second d.(0).(second) 2 (all_min - mins.(second));
        visited.(second) <- false
      end
    done;
    Workloads.charge_batched dsm config.expand_us !pending_work;
    Dsm.compute dsm 0.1;
    final_nodes.(node) <- Dsm.self_node dsm
  in
  for node = 0 to config.nodes - 1 do
    ignore (Dsm.spawn dsm ~migratable:true ~node (worker node))
  done;
  let balancer =
    if config.balance then Some (Dsmpm2_pm2.Balancer.start (Dsm.pm2 dsm)) else None
  in
  Dsm.run dsm;
  let stats = Dsm.stats dsm in
  let owner_best =
    (* The authoritative copy is wherever write access lives (the MRSW
       owner); home-based protocols keep it on the home, node 0. *)
    let rec find node =
      if node >= config.nodes then Dsm.unsafe_peek dsm ~node:0 best_addr
      else if Dsm.unsafe_rights dsm ~node ~addr:best_addr = Dsmpm2_mem.Access.Read_write
      then Dsm.unsafe_peek dsm ~node best_addr
      else find (node + 1)
    in
    find 0
  in
  {
    time_ms = Dsm.now_us dsm /. 1000.;
    best = owner_best;
    expansions = !expansions;
    migrations = Dsmpm2_pm2.Pm2.migrations (Dsm.pm2 dsm);
    read_faults = Stats.count stats Instrument.read_faults;
    write_faults = Stats.count stats Instrument.write_faults;
    messages = Network.messages_sent (Dsmpm2_pm2.Pm2.network (Dsm.pm2 dsm));
    final_node_of_thread = Array.to_list final_nodes;
    balancer_moves =
      (match balancer with
      | Some b -> Dsmpm2_pm2.Balancer.moves_requested b
      | None -> 0);
  }

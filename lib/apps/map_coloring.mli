(** Minimal-cost map colouring by branch-and-bound, compiled-Java style
    (paper Section 4, Figure 5).

    Colours the twenty-nine eastern-most US states with four colours of
    different costs, minimising the total cost, as a multithreaded
    Hyperion-style program: the adjacency data and each worker's colour
    assignment are DSM {e objects} accessed through the Hyperion [get]/[put]
    primitives, the current best cost is a shared object protected by a
    monitor, and one worker thread runs per node.

    Each worker's assignment objects are homed on its own node and the
    adjacency objects are touched constantly, so the program is exactly the
    access profile the paper describes: "local objects are intensively used,
    remote accesses are not very frequent".  Under [java_ic] every one of
    those millions of [get]/[put]s pays an inline locality check; under
    [java_pf] local accesses are free and only the rare remote miss pays a
    fault — which is why [java_pf] wins in Figure 5. *)

open Dsmpm2_net

type config = {
  nodes : int;  (** 4 in the paper *)
  driver : Driver.t;  (** SISCI/SCI in the paper *)
  protocol : string;  (** "java_ic" or "java_pf" *)
  color_costs : int array;  (** four colours with different costs *)
  refresh_period : int;  (** expansions between bound refreshes *)
  expand_us : float;
  tie_seed : int option;
      (** seeded engine tie-breaking ({!Dsmpm2_core.Dsm.create}): each seed
          explores a distinct, replayable legal interleaving *)
  observe : (Dsmpm2_core.Dsm.t -> unit) option;
      (** called with the runtime before any thread starts — enable
          monitoring here and keep the handle for post-run export *)
}

val default : config

type result = {
  time_ms : float;
  best_cost : int;
  expansions : int;
  gets : int;  (** Hyperion object accesses performed *)
  inline_checks : int;  (** locality checks charged (java_ic only) *)
  read_faults : int;
  write_faults : int;
  messages : int;
}

val run : config -> result

val solve_sequential : ?color_costs:int array -> unit -> int
(** Exact sequential solution: the correctness oracle. *)

open Dsmpm2_sim
open Dsmpm2_pm2
open Dsmpm2_core

let migrate_on_fault rt ~node ~page =
  let e = Runtime.entry rt ~node ~page in
  let dst = e.Page_table.prob_owner in
  let started = Engine.now (Runtime.engine rt) in
  Pm2.migrate rt.Runtime.pm2 ~dst;
  Stats.add_span rt.Runtime.instr Instrument.stage_migration
    Time.(Engine.now (Runtime.engine rt) - started);
  Protocol_lib.migration_overhead rt

(* Read service kept identical to li_hudak's owner-side replication (without
   downgrading the owner, whose write access is permanent here) so that
   hybrid protocols can replicate on read. *)
let read_server rt ~node ~page ~requester =
  if requester <> node then begin
    let e = Runtime.entry rt ~node ~page in
    Protocol_lib.with_entry rt e (fun () ->
        if e.Page_table.prob_owner = node then
          Li_hudak.serve_read rt ~node ~page ~requester ~grant_downgrades_owner:false
        else
          Dsm_comm.send_request rt ~to_:e.Page_table.prob_owner ~page
            ~mode:Dsmpm2_mem.Access.Read ~requester)
  end

let write_server _rt ~node ~page ~requester =
  failwith
    (Printf.sprintf
       "migrate_thread: node %d received a write request for page %d from %d \
        (pages never migrate under this protocol)"
       node page requester)

let invalidate_server rt ~node ~page ~sender:_ =
  let e = Runtime.entry rt ~node ~page in
  Protocol_lib.with_entry rt e (fun () ->
      if e.Page_table.prob_owner <> node then Protocol_lib.drop_copy rt ~node ~page)

let receive_page_server rt ~node ~msg =
  let e = Runtime.entry rt ~node ~page:msg.Protocol.page in
  Protocol_lib.with_entry rt e (fun () ->
      Protocol_lib.install_page rt ~node msg;
      Protocol_lib.client_overhead rt;
      Protocol_lib.complete_fault rt e)

let protocol =
  {
    Protocol.name = "migrate_thread";
    detection = Protocol.Page_fault;
    model = Protocol.Sequential;
    read_fault = migrate_on_fault;
    write_fault = migrate_on_fault;
    read_server;
    write_server;
    invalidate_server;
    receive_page_server;
    lock_acquire = Protocol.no_action;
    lock_release = Protocol.no_action;
    on_local_write = None;
    on_local_read = None;
    on_page_init = None;
  }

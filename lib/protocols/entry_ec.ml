open Dsmpm2_core

type binding = { mutable pages : int list }
type Page_table.ext += Ec_binding of binding

let protocol_id rt =
  match Protocol.find_by_name rt.Runtime.registry "entry_ec" with
  | Some (id, _) -> id
  | None -> failwith "entry_ec: protocol not registered"

let binding_of (ls : Runtime.lock_state) =
  match ls.Runtime.lock_ext with
  | Ec_binding b -> Some b
  | _ -> None

let bind rt ~lock ~addr ~size =
  let ls = Runtime.lock_state rt lock in
  let pages = Dsm.region_pages rt ~addr ~size in
  match binding_of ls with
  | Some b -> b.pages <- List.sort_uniq compare (pages @ b.pages)
  | None -> ls.Runtime.lock_ext <- Ec_binding { pages = List.sort_uniq compare pages }

let bound_pages rt ~lock =
  match binding_of (Runtime.lock_state rt lock) with
  | Some b -> b.pages
  | None -> []

(* The scope of a hook invocation: the lock's bound pages, or everything for
   unbound locks and for barriers.  Decoding through [Dsm_sync.hook_target]
   keeps barrier hook ids (a synthetic negative namespace) from ever being
   looked up in the lock directory. *)
let scope rt ~lock =
  match Dsm_sync.hook_target lock with
  | `Barrier _ -> None
  | `Lock lock -> (
      match binding_of (Runtime.lock_state rt lock) with
      | Some b -> Some b.pages
      | None -> None)

let lock_acquire rt ~node ~lock =
  Java_common.drop_selected rt ~node ~protocol:(protocol_id rt) ~only:(scope rt ~lock)

let lock_release rt ~node ~lock =
  Java_common.flush_selected rt ~node ~protocol:(protocol_id rt) ~only:(scope rt ~lock)

let protocol =
  {
    (Java_common.make ~name:"entry_ec" ~detection:Protocol.Page_fault) with
    Protocol.model = Protocol.Release;
    lock_acquire;
    lock_release;
  }

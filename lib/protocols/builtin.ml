open Dsmpm2_core

type ids = {
  li_hudak : int;
  migrate_thread : int;
  erc_sw : int;
  hbrc_mw : int;
  java_ic : int;
  java_pf : int;
}

let register_all dsm =
  let li_hudak = Dsm.create_protocol dsm Li_hudak.protocol in
  let migrate_thread = Dsm.create_protocol dsm Migrate_thread.protocol in
  let erc_sw = Dsm.create_protocol dsm Erc_sw.protocol in
  let hbrc_mw = Dsm.create_protocol dsm Hbrc_mw.protocol in
  let java_ic = Dsm.create_protocol dsm Java_ic.protocol in
  let java_pf = Dsm.create_protocol dsm Java_pf.protocol in
  Hbrc_mw.register_diff_handler dsm ~protocol:hbrc_mw;
  Dsm.set_default_protocol dsm li_hudak;
  { li_hudak; migrate_thread; erc_sw; hbrc_mw; java_ic; java_pf }

let summary =
  [
    ( "li_hudak",
      "Sequential",
      "MRSW protocol. Page replication on read access, page migration on \
       write access. Dynamic distributed manager." );
    ( "migrate_thread",
      "Sequential",
      "Uses thread migration on both read and write faults. Fixed \
       distributed manager." );
    ( "erc_sw",
      "Release",
      "MRSW protocol implementing eager release consistency. Dynamic \
       distributed manager." );
    ( "hbrc_mw",
      "Release",
      "MRMW protocol implementing home-based lazy release consistency. \
       Fixed distributed manager. Uses twins and on-release diffing." );
    ( "java_ic",
      "Java",
      "Home-based MRMW protocol, based on explicit inline checks (ic) for \
       locality. Fixed distributed manager. Uses on-the-fly diff recording." );
    ( "java_pf",
      "Java",
      "Home-based MRMW protocol, based on page faults (pf). Fixed \
       distributed manager. Uses on-the-fly diff recording." );
  ]

type extra_ids = {
  li_hudak_fixed : int;
  hybrid_rw : int;
  entry_ec : int;
  write_update : int;
  sc_abd : int;
}

let register_extras dsm =
  {
    li_hudak_fixed = Dsm.create_protocol dsm Li_hudak_fixed.protocol;
    hybrid_rw = Dsm.create_protocol dsm Hybrid_rw.protocol;
    entry_ec = Dsm.create_protocol dsm Entry_ec.protocol;
    write_update = Dsm.create_protocol dsm Write_update.protocol;
    sc_abd = Sc_abd.register dsm;
  }

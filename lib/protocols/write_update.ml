open Dsmpm2_mem
open Dsmpm2_core

(* Fault handling shares erc_sw's shape: replication on reads (owner keeps
   write access), ownership-plus-copyset migration on writes, previous
   owner demoted to a reader.  The difference is all in [on_local_write]:
   committed words are pushed to the copyset instead of copies being
   invalidated at synchronization points. *)

let read_fault rt ~node ~page =
  let e = Runtime.entry rt ~node ~page in
  Protocol_lib.fetch_page rt ~node ~page ~mode:Access.Read ~from:e.Page_table.prob_owner

let write_fault rt ~node ~page =
  let e = Runtime.entry rt ~node ~page in
  let action =
    Protocol_lib.with_entry rt e (fun () ->
        if e.Page_table.faulting then begin
          Protocol_lib.wait_while_faulting rt e;
          `Retry
        end
        else if Access.allows e.Page_table.rights Access.Write then `Done
        else if e.Page_table.prob_owner = node then begin
          (* owner demoted to reader never happens here (reads don't
             downgrade), but ownership received with a read grant does *)
          e.Page_table.rights <- Access.Read_write;
          `Done
        end
        else `Fetch)
  in
  match action with
  | `Done | `Retry -> ()
  | `Fetch ->
      Protocol_lib.fetch_page rt ~node ~page ~mode:Access.Write
        ~from:e.Page_table.prob_owner

let read_server rt ~node ~page ~requester =
  if requester <> node then begin
    let e = Runtime.entry rt ~node ~page in
    Protocol_lib.with_entry rt e (fun () ->
        Protocol_lib.wait_for_service rt e;
        if e.Page_table.prob_owner = node then
          (* the owner keeps writing; the new reader will be kept current
             by the update pushes *)
          Li_hudak.serve_read rt ~node ~page ~requester ~grant_downgrades_owner:false
        else
          Dsm_comm.send_request rt ~to_:e.Page_table.prob_owner ~page
            ~mode:Access.Read ~requester)
  end

let write_server rt ~node ~page ~requester =
  if requester <> node then begin
    let e = Runtime.entry rt ~node ~page in
    Protocol_lib.with_entry rt e (fun () ->
        Protocol_lib.wait_for_service rt e;
        if e.Page_table.prob_owner = node then begin
          Protocol_lib.server_overhead rt;
          let copyset =
            List.sort_uniq compare
              (node :: List.filter (fun n -> n <> requester) e.Page_table.copyset)
          in
          Dsm_comm.send_page rt ~to_:requester ~page ~grant:Access.Read_write
            ~ownership:true ~copyset ~req_mode:Access.Write;
          e.Page_table.prob_owner <- requester;
          e.Page_table.copyset <- [];
          e.Page_table.rights <- Access.Read_only
        end
        else begin
          Dsm_comm.send_request rt ~to_:e.Page_table.prob_owner ~page
            ~mode:Access.Write ~requester;
          e.Page_table.prob_owner <- requester
        end)
  end

let invalidate_server rt ~node ~page ~sender:_ =
  let e = Runtime.entry rt ~node ~page in
  Protocol_lib.with_entry rt e (fun () ->
      if e.Page_table.prob_owner <> node then Protocol_lib.drop_copy rt ~node ~page)

let receive_page_server rt ~node ~msg =
  let e = Runtime.entry rt ~node ~page:msg.Protocol.page in
  Protocol_lib.with_entry rt e (fun () ->
      Protocol_lib.install_page rt ~node msg;
      if msg.Protocol.ownership then begin
        e.Page_table.prob_owner <- node;
        e.Page_table.copyset <- List.filter (fun n -> n <> node) msg.Protocol.copyset
      end
      else e.Page_table.prob_owner <- msg.Protocol.sender;
      Protocol_lib.client_overhead rt;
      Protocol_lib.complete_fault rt e)

(* The update push: every committed word goes to every copy holder, and the
   writer blocks until all acknowledged — writes by one node are therefore
   seen everywhere in program order (FIFO links do the rest). *)
let on_local_write rt ~node ~page ~offset ~value =
  let e = Runtime.entry rt ~node ~page in
  if e.Page_table.prob_owner = node && e.Page_table.copyset <> [] then begin
    let diff = Diff.of_words ~geometry:rt.Runtime.geo ~page [ (offset, value) ] in
    Protocol_lib.push_diffs rt ~targets:e.Page_table.copyset ~diffs:[ diff ]
      ~release:false
  end

let protocol =
  {
    Protocol.name = "write_update";
    detection = Protocol.Page_fault;
    (* Processor consistency, checked under the release/happens-before rule:
       a remote replica serves (program-order-consistent) stale reads during
       the synchronous update push, so the per-location real-time rule of
       [Sequential] does not hold — see the litmus sweep, where MP is
       forbidden but SB is observable. *)
    model = Protocol.Release;
    read_fault;
    write_fault;
    read_server;
    write_server;
    invalidate_server;
    receive_page_server;
    lock_acquire = Protocol.no_action;
    lock_release = Protocol.no_action;
    on_local_write = Some on_local_write;
    on_local_read = None;
    on_page_init = None;
  }

(** Registration of the six built-in protocols (paper Table 2).

    Registering returns the protocol identifiers in one record, after which
    they can be used exactly like user-defined protocols: as the default
    protocol, as [dsm_malloc] attributes, or as components of hybrid
    protocols. *)

open Dsmpm2_core

type ids = {
  li_hudak : int;  (** sequential consistency, MRSW, dynamic manager *)
  migrate_thread : int;  (** sequential consistency via thread migration *)
  erc_sw : int;  (** eager release consistency, MRSW *)
  hbrc_mw : int;  (** home-based release consistency, MRMW, twins+diffs *)
  java_ic : int;  (** Java consistency, inline checks *)
  java_pf : int;  (** Java consistency, page faults *)
}

val register_all : Dsm.t -> ids
(** Registers the six protocols (and the home-side diff handler of
    [hbrc_mw]) and makes [li_hudak] the default protocol, as in the paper's
    example programs. *)

val summary : (string * string * string) list
(** [(name, consistency model, basic features)] — the rows of the paper's
    Table 2, for documentation and the bench inventory. *)

type extra_ids = {
  li_hudak_fixed : int;  (** fixed-manager variant of li_hudak *)
  hybrid_rw : int;  (** read-replicate / write-migrate hybrid (section 2.3) *)
  entry_ec : int;  (** Midway-style entry consistency *)
  write_update : int;  (** write-update protocol (processor consistency) *)
  sc_abd : int;  (** majority-quorum (ABD) sequential consistency, crash-tolerant *)
}

val register_extras : Dsm.t -> extra_ids
(** Registers the protocols this reproduction adds beyond the paper's Table
    2: the fixed-distributed-manager MRSW variant and the section-2.3 hybrid.
    Call after {!register_all}. *)

open Dsmpm2_mem
open Dsmpm2_core

type erc_state = { mutable written : int list }
type Page_table.ext += Erc_state of erc_state

let protocol_id rt =
  match Protocol.find_by_name rt.Runtime.registry "erc_sw" with
  | Some (id, _) -> id
  | None -> failwith "erc_sw: protocol not registered"

let state rt ~node =
  let table = Runtime.table rt node in
  let id = protocol_id rt in
  match Page_table.node_ext table ~protocol:id with
  | Erc_state s -> s
  | _ ->
      let s = { written = [] } in
      Page_table.set_node_ext table ~protocol:id (Erc_state s);
      s

let mark_written rt ~node ~page =
  let s = state rt ~node in
  if not (List.mem page s.written) then s.written <- page :: s.written

let pending_writes rt ~node = List.sort compare (state rt ~node).written

let read_fault rt ~node ~page =
  let e = Runtime.entry rt ~node ~page in
  Protocol_lib.fetch_page rt ~node ~page ~mode:Access.Read ~from:e.Page_table.prob_owner

let write_fault rt ~node ~page =
  let e = Runtime.entry rt ~node ~page in
  (* As in li_hudak, ownership is only trustworthy under the entry mutex:
     it may be shipped away while we block on it. *)
  let action =
    Protocol_lib.with_entry rt e (fun () ->
        if e.Page_table.faulting then begin
          Protocol_lib.wait_while_faulting rt e;
          `Retry
        end
        else if Access.allows e.Page_table.rights Access.Write then `Done
        else if e.Page_table.prob_owner = node then begin
          (* Upgrade in place without invalidating readers: their copies
             stay valid (stale) until our next release. *)
          e.Page_table.rights <- Access.Read_write;
          mark_written rt ~node ~page;
          `Done
        end
        else `Fetch)
  in
  match action with
  | `Done | `Retry -> ()
  | `Fetch ->
      Protocol_lib.fetch_page rt ~node ~page ~mode:Access.Write
        ~from:e.Page_table.prob_owner;
      if Access.allows e.Page_table.rights Access.Write then
        mark_written rt ~node ~page

let read_server rt ~node ~page ~requester =
  if requester <> node then begin
    let e = Runtime.entry rt ~node ~page in
    Protocol_lib.with_entry rt e (fun () ->
        Protocol_lib.wait_for_service rt e;
        if e.Page_table.prob_owner = node then begin
          (* The owner keeps its write access under release consistency: the
             new reader sees the page as of now and is invalidated at the
             owner's next release. *)
          Li_hudak.serve_read rt ~node ~page ~requester ~grant_downgrades_owner:false;
          if Access.allows e.Page_table.rights Access.Write then
            mark_written rt ~node ~page
        end
        else
          Dsm_comm.send_request rt ~to_:e.Page_table.prob_owner ~page
            ~mode:Access.Read ~requester)
  end

let write_server rt ~node ~page ~requester =
  if requester <> node then begin
    let e = Runtime.entry rt ~node ~page in
    Protocol_lib.with_entry rt e (fun () ->
        Protocol_lib.wait_for_service rt e;
        if e.Page_table.prob_owner = node then begin
          Protocol_lib.server_overhead rt;
          (* Ownership migrates with write access; no invalidations now.
             The copyset travels with the page, extended with ourselves —
             we keep a (possibly staling) read-only copy.  If we dirtied
             the page under a lock we have not released yet, we must also
             RETAIN the copyset: our release is still obliged to invalidate
             every copy that predates our writes, and the new owner's
             release may come too late for the next acquirer of our lock.
             Both sides flushing the same holder is harmless — a stale
             invalidation at a node that re-fetched (or became owner) is
             ignored or just forces a re-fetch. *)
          let others = List.filter (fun n -> n <> requester) e.Page_table.copyset in
          let copyset = List.sort_uniq compare (node :: others) in
          Dsm_comm.send_page rt ~to_:requester ~page ~grant:Access.Read_write
            ~ownership:true ~copyset ~req_mode:Access.Write;
          e.Page_table.prob_owner <- requester;
          e.Page_table.copyset <-
            (if List.mem page (state rt ~node).written then others else []);
          e.Page_table.rights <- Access.Read_only
        end
        else begin
          Dsm_comm.send_request rt ~to_:e.Page_table.prob_owner ~page
            ~mode:Access.Write ~requester;
          e.Page_table.prob_owner <- requester
        end)
  end

let invalidate_server rt ~node ~page ~sender:_ =
  let e = Runtime.entry rt ~node ~page in
  Protocol_lib.with_entry rt e (fun () ->
      if e.Page_table.prob_owner <> node then Protocol_lib.drop_copy rt ~node ~page)

let receive_page_server rt ~node ~msg =
  let e = Runtime.entry rt ~node ~page:msg.Protocol.page in
  Protocol_lib.with_entry rt e (fun () ->
      Protocol_lib.install_page rt ~node msg;
      if msg.Protocol.ownership then begin
        e.Page_table.prob_owner <- node;
        (* Merge rather than overwrite: a copyset retained across an
           ownership migration (dirty page, see [write_server]) must not be
           dropped when ownership bounces back before our release. *)
        e.Page_table.copyset <-
          List.sort_uniq compare
            (List.filter (fun n -> n <> node) msg.Protocol.copyset
            @ e.Page_table.copyset)
      end
      else e.Page_table.prob_owner <- msg.Protocol.sender;
      Protocol_lib.client_overhead rt;
      Protocol_lib.complete_fault rt e)

(* Release: flush the eager invalidations for every page written since the
   previous release.  Pages whose ownership has since moved on still carry
   the copyset we retained at migration time (see [write_server]), so our
   release invalidates every copy that predates our writes even when we are
   no longer the owner — the current owner simply ignores a stale
   invalidation.  The per-page copysets are collected under the entry
   mutexes first, then the whole release goes out as one batched
   invalidation RPC per copy holder — O(copyset) messages, not
   O(pages x copyset). *)
let lock_release rt ~node ~lock:_ =
  let s = state rt ~node in
  let written = List.sort compare s.written in
  let by_target = Hashtbl.create 8 in
  List.iter
    (fun page ->
      let e = Runtime.entry rt ~node ~page in
      Protocol_lib.with_entry rt e (fun () ->
          if e.Page_table.copyset <> [] then begin
            List.iter
              (fun target ->
                Hashtbl.replace by_target target
                  (page
                  :: Option.value ~default:[] (Hashtbl.find_opt by_target target)))
              e.Page_table.copyset;
            e.Page_table.copyset <- []
          end))
    written;
  (* Cleared only after the collection loop: a server fiber migrating one of
     these pages away mid-release must still see it as written so it retains
     the copyset (see [write_server]) instead of shipping our invalidation
     obligation to the new owner. *)
  s.written <- List.filter (fun p -> not (List.mem p written)) s.written;
  Protocol_lib.invalidate_copies_many rt
    ~pages_by_target:
      (Hashtbl.fold (fun target pages acc -> (target, pages) :: acc) by_target [])

let protocol =
  {
    Protocol.name = "erc_sw";
    detection = Protocol.Page_fault;
    model = Protocol.Release;
    read_fault;
    write_fault;
    read_server;
    write_server;
    invalidate_server;
    receive_page_server;
    lock_acquire = Protocol.no_action;
    lock_release;
    on_local_write = None;
    on_local_read = None;
    on_page_init = None;
  }

(* sc_abd: sequentially consistent pages by majority quorum (ABD).

   The Attiya–Bar-Noy–Dolev register emulation, applied per page: every
   replica keeps the page data plus a tag (a Lamport timestamp broken by the
   writer's node id), reads collect tags from a majority and write the
   winning value back to a majority before returning it, writes bump the
   winning tag and install the new value at a majority.  Because any two
   majorities intersect, the protocol stays sequentially consistent (in
   fact atomic) while any minority of nodes is crashed or partitioned —
   the first protocol in this code base that survives the fault plans of
   [Dsm.inject_faults], where the ownership-chain family stalls.

   The price is a quorum round per access: rights are revoked after every
   read ([on_local_read]) and every write ([on_local_write]), so each shared
   access faults and re-runs its round.  This is the classic
   replication/latency trade and the reason the paper's protocols chase
   ownership instead; sc_abd is here for what it tolerates, not its speed. *)

open Dsmpm2_sim
open Dsmpm2_net
open Dsmpm2_pm2
open Dsmpm2_mem
open Dsmpm2_core

(* (ts, origin), compared lexicographically: a writer picks ts one above the
   largest it saw at a majority, so tags totally order writes. *)
type tag = { mutable ts : int; mutable origin : int }
type Page_table.ext += Abd_tag of tag

(* The two quorum services, registered once per runtime by [register] and
   stashed in the per-(node 0, protocol) extension slot. *)
type services = { srv_get : Rpc.service; srv_put : Rpc.service }
type Page_table.ext += Abd_services of services

type Rpc.payload +=
  | Get of { page : int; requester : int }
  | Tag_val of { page : int; ts : int; origin : int; data : bytes }
  | Put of { page : int; ts : int; origin : int; data : bytes; requester : int }

exception
  Quorum_unreachable of { page : int; node : int; got : int; need : int }

let protocol_id rt =
  match Protocol.find_by_name rt.Runtime.registry "sc_abd" with
  | Some (id, _) -> id
  | None -> failwith "sc_abd: protocol not registered"

let services rt =
  match Page_table.node_ext (Runtime.table rt 0) ~protocol:(protocol_id rt) with
  | Abd_services s -> s
  | _ -> failwith "sc_abd: services not registered (use Sc_abd.register)"

let tag_of (e : Page_table.entry) =
  match e.Page_table.ext with
  | Abd_tag t -> t
  | _ ->
      let t = { ts = 0; origin = 0 } in
      e.Page_table.ext <- Abd_tag t;
      t

let quorum rt = (Runtime.nodes rt / 2) + 1

(* --- replica servers (run in a fresh Marcel thread on the replica) --- *)

let handler_node rt = Marcel.node (Marcel.self (Runtime.marcel rt))

(* A get never blocks: two nodes with rounds in flight on the same page must
   still answer each other's collect phases, or neither round finishes. *)
let on_get rt ~src:_ payload =
  match payload with
  | Get { page; requester = _ } ->
      let node = handler_node rt in
      let e = Runtime.entry rt ~node ~page in
      Protocol_lib.server_overhead rt;
      Protocol_lib.with_entry rt e (fun () ->
          let t = tag_of e in
          let data =
            Bytes.copy (Frame_store.frame (Runtime.store rt node) page)
          in
          ( Tag_val { page; ts = t.ts; origin = t.origin; data },
            Driver.Bulk (Bytes.length data) ))
  | _ -> invalid_arg "sc_abd: bad payload for get service"

(* A put is delayed only while a retry pin is in flight: between a fault
   completing and the faulting thread performing its access, the settled
   frame must not change under it.  The pin window contains no quorum
   traffic (it closes at the next local rights check), so this wait is
   bounded by local scheduling and can never join a distributed cycle.
   Crucially a put does NOT wait out a whole round ([e.faulting]): two
   nodes with rounds in flight on the same page must accept each other's
   propagate phases, or — with a third replica crashed — neither round
   could ever finish.  Installs are tag-guarded, hence monotone: applying
   them in any order leaves the maximum. *)
let on_put rt ~src:_ payload =
  match payload with
  | Put { page; ts; origin; data; requester = _ } ->
      let node = handler_node rt in
      let e = Runtime.entry rt ~node ~page in
      Protocol_lib.server_overhead rt;
      Protocol_lib.with_entry rt e (fun () ->
          let marcel = Runtime.marcel rt in
          while e.Page_table.pinned do
            Marcel.Cond.wait marcel e.Page_table.fault_done
              e.Page_table.entry_mutex
          done;
          let t = tag_of e in
          if (ts, origin) > (t.ts, t.origin) then begin
            Frame_store.install (Runtime.store rt node) page data;
            t.ts <- ts;
            t.origin <- origin
          end);
      (Rpc.Unit, Driver.Request)
  | _ -> invalid_arg "sc_abd: bad payload for put service"

(* --- quorum rounds (run in the faulting/writing thread) --- *)

(* Fans [make_call] out to every other node in parallel helper threads and
   blocks until [need] successes counting the local replica, or until too
   many helpers failed for [need] to remain reachable.  Helpers absorb
   {!Rpc.Timeout} (armed by [Dsm.inject_faults]); without a fault plan no
   reply is ever lost and every helper succeeds. *)
let quorum_round rt ~node ~page make_call =
  let n = Runtime.nodes rt in
  let need = quorum rt in
  let got = ref 1 (* the local replica *) in
  let failed = ref 0 in
  if !got < need then begin
    let eng = Runtime.engine rt in
    let marcel = Runtime.marcel rt in
    Engine.suspend eng (fun resume ->
        let settled = ref false in
        let check () =
          if
            (not !settled)
            && (!got >= need || !failed > n - need)
          then begin
            settled := true;
            resume ()
          end
        in
        for dst = 0 to n - 1 do
          if dst <> node then
            ignore
              (Marcel.spawn marcel ~node (fun () ->
                   (match make_call dst with
                   | true -> incr got
                   | false -> incr failed);
                   check ()))
        done)
  end;
  if !got < need then
    raise (Quorum_unreachable { page; node; got = !got; need })

(* Collect phase: the highest (tag, value) among a majority.  Replies land
   in helper threads; [best] is folded under the entry mutex of nobody —
   plain mutation is safe because the simulation is cooperative and each
   helper updates it in one slice. *)
let quorum_get rt ~node ~page =
  let srv = (services rt).srv_get in
  let e = Runtime.entry rt ~node ~page in
  let local = tag_of e in
  let best_ts = ref local.ts
  and best_origin = ref local.origin
  and best_data = ref None in
  quorum_round rt ~node ~page (fun dst ->
      match
        (try
           Some
             (Rpc.call (Runtime.rpc rt) ~dst ~service:srv ~cost:Driver.Request
                (Get { page; requester = node }))
         with Rpc.Timeout _ -> None)
      with
      | Some (Tag_val { ts; origin; data; _ }) ->
          if (ts, origin) > (!best_ts, !best_origin) then begin
            best_ts := ts;
            best_origin := origin;
            best_data := Some data
          end;
          true
      | Some _ -> false
      | None -> false);
  (!best_ts, !best_origin, !best_data)

(* Propagate phase: install (tag, value) at a majority.  The local replica
   is the caller's responsibility (it holds the entry mutex context). *)
let quorum_put rt ~node ~page ~ts ~origin ~data =
  let srv = (services rt).srv_put in
  quorum_round rt ~node ~page (fun dst ->
      try
        ignore
          (Rpc.call (Runtime.rpc rt) ~dst ~service:srv
             ~cost:(Driver.Bulk (Bytes.length data))
             (Put { page; ts; origin; data; requester = node }));
        true
      with Rpc.Timeout _ -> false)

(* Applies a collect result to the local replica (entry mutex held). *)
let adopt rt ~node (e : Page_table.entry) ~ts ~origin ~data =
  let t = tag_of e in
  if (ts, origin) > (t.ts, t.origin) then begin
    (match data with
    | Some d -> Frame_store.install (Runtime.store rt node) e.Page_table.page d
    | None -> ());
    t.ts <- ts;
    t.origin <- origin
  end

(* One coalesced fault transaction: collect from a majority, write the
   winner back to a majority (the ABD read's second phase — without it two
   successive reads could observe new-then-old), then grant [rights]. *)
let fault rt ~node ~page ~rights =
  let e = Runtime.entry rt ~node ~page in
  let action =
    Protocol_lib.with_entry rt e (fun () ->
        if e.Page_table.faulting then begin
          Protocol_lib.wait_while_faulting rt e;
          `Retry
        end
        else begin
          e.Page_table.faulting <- true;
          `Round
        end)
  in
  match action with
  | `Retry -> ()
  | `Round -> (
      let marcel = Runtime.marcel rt in
      let abort exn =
        Marcel.Mutex.lock marcel e.Page_table.entry_mutex;
        e.Page_table.faulting <- false;
        Marcel.Cond.broadcast marcel e.Page_table.fault_done;
        Marcel.Mutex.unlock marcel e.Page_table.entry_mutex;
        raise exn
      in
      match
        let ts, origin, data = quorum_get rt ~node ~page in
        (* Adopt before the writeback so the local replica counts toward
           the writeback majority with the winning value already in place. *)
        Protocol_lib.with_entry rt e (fun () -> adopt rt ~node e ~ts ~origin ~data);
        Protocol_lib.client_overhead rt;
        (* Propagate-until-stable: between the collect and the grant, a
           concurrent writer's put may install a newer tag in our frame.
           The access about to be granted will return whatever the frame
           holds at grant time, and ABD's guarantee is exactly that a read
           returns nothing it has not made majority-durable first.  So
           snapshot (tag, data) under the mutex, write that back to a
           majority, and grant only if the tag is still the one we
           propagated — otherwise write back the newer one and re-check.
           Each iteration propagates a strictly larger tag, so this
           terminates once writers quiesce. *)
        let rec stabilise () =
          let ts, origin, data =
            Protocol_lib.with_entry rt e (fun () ->
                let t = tag_of e in
                ( t.ts,
                  t.origin,
                  Bytes.copy (Frame_store.frame (Runtime.store rt node) page) ))
          in
          quorum_put rt ~node ~page ~ts ~origin ~data;
          let stable =
            Protocol_lib.with_entry rt e (fun () ->
                let t = tag_of e in
                if (t.ts, t.origin) = (ts, origin) then begin
                  e.Page_table.rights <- rights;
                  Protocol_lib.complete_fault rt e;
                  true
                end
                else false)
          in
          if not stable then stabilise ()
        in
        stabilise ()
      with
      | () -> ()
      | exception exn -> abort exn)

let read_fault rt ~node ~page = fault rt ~node ~page ~rights:Access.Read_only
let write_fault rt ~node ~page = fault rt ~node ~page ~rights:Access.Read_write

(* After the read lands, revoke: the next read must run its own round. *)
let on_local_read rt ~node ~page =
  let e = Runtime.entry rt ~node ~page in
  Protocol_lib.with_entry rt e (fun () ->
      e.Page_table.rights <- Access.No_access)

(* After the write lands in the local frame, stamp it one above the tag the
   write fault collected and install it at a majority; then revoke. *)
let on_local_write rt ~node ~page ~offset ~value =
  let e = Runtime.entry rt ~node ~page in
  let ts, origin, data =
    Protocol_lib.with_entry rt e (fun () ->
        let t = tag_of e in
        t.ts <- t.ts + 1;
        t.origin <- node;
        (* A concurrent writer's put may have replaced the frame between
           the word landing and this critical section; re-assert the word
           so the value this write propagates (and the frame it leaves
           behind, now bearing the higher tag) always contains it. *)
        Frame_store.write_int (Runtime.store rt node)
          ~addr:(Page.base_of_page rt.Runtime.geo page + offset)
          value;
        ( t.ts,
          node,
          Bytes.copy (Frame_store.frame (Runtime.store rt node) page) ))
  in
  quorum_put rt ~node ~page ~ts ~origin ~data;
  Protocol_lib.with_entry rt e (fun () ->
      e.Page_table.rights <- Access.No_access)

(* Fresh custody: no node holds standing rights (every access must run a
   round).  The quorum-intersection argument requires every tag a round can
   return to be held by a majority, so the initial state must be too: every
   replica receives a copy of the home's frame — zeroes at malloc, the
   consolidated area after a protocol switch — under the same tag (1, home).
   Init runs at a globally quiescent instant (malloc, or switch_protocol
   after its quiescence pass), so the copy is setup, not protocol traffic. *)
let on_page_init rt ~node ~page =
  let e = Runtime.entry rt ~node ~page in
  e.Page_table.rights <- Access.No_access;
  let home = e.Page_table.home in
  if node <> home then
    Frame_store.install (Runtime.store rt node) page
      (Bytes.copy (Frame_store.frame (Runtime.store rt home) page));
  e.Page_table.ext <- Abd_tag { ts = 1; origin = home }

let unused_server _ ~node:_ ~page:_ ~requester:_ =
  failwith "sc_abd: ownership request services are never used"

let protocol =
  {
    Protocol.name = "sc_abd";
    detection = Protocol.Page_fault;
    model = Protocol.Sequential;
    read_fault;
    write_fault;
    read_server = unused_server;
    write_server = unused_server;
    invalidate_server =
      (fun _ ~node:_ ~page:_ ~sender:_ ->
        failwith "sc_abd: invalidations are never used");
    receive_page_server =
      (fun _ ~node:_ ~msg:_ -> failwith "sc_abd: page pushes are never used");
    lock_acquire = Protocol.no_action;
    lock_release = Protocol.no_action;
    on_local_write = Some on_local_write;
    on_local_read = Some on_local_read;
    on_page_init = Some on_page_init;
  }

let register rt =
  let id = Dsm.create_protocol rt protocol in
  let rpc = Runtime.rpc rt in
  let srv_get = Rpc.register rpc ~name:"abd.get" (on_get rt) in
  let srv_put = Rpc.register rpc ~name:"abd.put" (on_put rt) in
  Page_table.set_node_ext (Runtime.table rt 0) ~protocol:id
    (Abd_services { srv_get; srv_put });
  id

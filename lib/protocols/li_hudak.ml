open Dsmpm2_mem
open Dsmpm2_core

let read_fault rt ~node ~page =
  let e = Runtime.entry rt ~node ~page in
  Protocol_lib.fetch_page rt ~node ~page ~mode:Access.Read ~from:e.Page_table.prob_owner

let write_fault rt ~node ~page =
  let e = Runtime.entry rt ~node ~page in
  (* Ownership must be validated *under* the entry mutex: a concurrent
     server thread may be shipping the page (and ownership) away while we
     block on the mutex, and upgrading a page we no longer hold would
     resurrect a stale (or empty) frame with write rights — a lost-update
     bug.  If ownership is gone by the time we hold the mutex, fall back to
     the ordinary fetch. *)
  let action =
    Protocol_lib.with_entry rt e (fun () ->
        if e.Page_table.faulting then begin
          Protocol_lib.wait_while_faulting rt e;
          `Retry
        end
        else if Access.allows e.Page_table.rights Access.Write then `Done
        else if e.Page_table.prob_owner = node then begin
          (* We own the page but readers hold copies: upgrade in place after
             invalidating every copy (sequential consistency).  The mutex is
             held throughout, so ownership cannot move under us. *)
          e.Page_table.faulting <- true;
          Protocol_lib.invalidate_copies rt ~page ~targets:e.Page_table.copyset;
          e.Page_table.copyset <- [];
          e.Page_table.rights <- Access.Read_write;
          Protocol_lib.complete_fault rt e;
          `Done
        end
        else `Fetch)
  in
  match action with
  | `Done | `Retry -> () (* ensure_access re-checks the rights either way *)
  | `Fetch ->
      Protocol_lib.fetch_page rt ~node ~page ~mode:Access.Write
        ~from:e.Page_table.prob_owner

let serve_read rt ~node ~page ~requester ~grant_downgrades_owner =
  let e = Runtime.entry rt ~node ~page in
  Protocol_lib.server_overhead rt;
  if grant_downgrades_owner then e.Page_table.rights <- Access.Read_only;
  Page_table.copyset_add e requester;
  Dsm_comm.send_page rt ~to_:requester ~page ~grant:Access.Read_only ~ownership:false
    ~copyset:[] ~req_mode:Access.Read

let read_server rt ~node ~page ~requester =
  if requester <> node then begin
    let e = Runtime.entry rt ~node ~page in
    Protocol_lib.with_entry rt e (fun () ->
        Protocol_lib.wait_for_service rt e;
        if e.Page_table.prob_owner = node then
          serve_read rt ~node ~page ~requester ~grant_downgrades_owner:true
        else
          (* Not the owner: forward along the probable-owner chain (the
             owner is unchanged by reads, so no path compression here). *)
          Dsm_comm.send_request rt ~to_:e.Page_table.prob_owner ~page
            ~mode:Access.Read ~requester)
  end

let write_server rt ~node ~page ~requester =
  if requester <> node then begin
    let e = Runtime.entry rt ~node ~page in
    Protocol_lib.with_entry rt e (fun () ->
        Protocol_lib.wait_for_service rt e;
        if e.Page_table.prob_owner = node then begin
          Protocol_lib.server_overhead rt;
          (* Invalidate every copy except the requester's own, then ship the
             page together with ownership. *)
          let targets =
            List.filter (fun n -> n <> requester) e.Page_table.copyset
          in
          Protocol_lib.invalidate_copies rt ~page ~targets;
          Dsm_comm.send_page rt ~to_:requester ~page ~grant:Access.Read_write
            ~ownership:true ~copyset:[] ~req_mode:Access.Write;
          e.Page_table.prob_owner <- requester;
          e.Page_table.copyset <- [];
          Protocol_lib.drop_copy rt ~node ~page
        end
        else begin
          (* Forward and compress the path: the requester is about to become
             the owner. *)
          Dsm_comm.send_request rt ~to_:e.Page_table.prob_owner ~page
            ~mode:Access.Write ~requester;
          e.Page_table.prob_owner <- requester
        end)
  end

let invalidate_server rt ~node ~page ~sender:_ =
  let e = Runtime.entry rt ~node ~page in
  Protocol_lib.with_entry rt e (fun () ->
      (* Never wait on an in-flight fault here (the owner blocks on our ack
         while our fault waits on the owner), and ignore stale invalidations
         that raced with an ownership grant to this node. *)
      if e.Page_table.prob_owner <> node then
        Protocol_lib.drop_copy rt ~node ~page)

let receive_page_server rt ~node ~msg =
  let e = Runtime.entry rt ~node ~page:msg.Protocol.page in
  Protocol_lib.with_entry rt e (fun () ->
      Protocol_lib.install_page rt ~node msg;
      if msg.Protocol.ownership then begin
        e.Page_table.prob_owner <- node;
        e.Page_table.copyset <- msg.Protocol.copyset
      end
      else e.Page_table.prob_owner <- msg.Protocol.sender;
      Protocol_lib.client_overhead rt;
      Protocol_lib.complete_fault rt e)

let protocol =
  {
    Protocol.name = "li_hudak";
    detection = Protocol.Page_fault;
    model = Protocol.Sequential;
    read_fault;
    write_fault;
    read_server;
    write_server;
    invalidate_server;
    receive_page_server;
    lock_acquire = Protocol.no_action;
    lock_release = Protocol.no_action;
    on_local_write = None;
    on_local_read = None;
    on_page_init = None;
  }

open Dsmpm2_core

(* On a write fault the thread first joins the data on the owning node; if
   reader replicas exist the owner holds only read rights there, and
   li_hudak's upgrade path invalidates the copyset before granting write
   access (preserving sequential consistency). *)
let write_fault rt ~node ~page =
  Migrate_thread.migrate_on_fault rt ~node ~page;
  let here = Runtime.self_node rt in
  let e = Runtime.entry rt ~node:here ~page in
  if e.Page_table.prob_owner = here then
    Li_hudak.protocol.Protocol.write_fault rt ~node:here ~page

let protocol =
  {
    Li_hudak.protocol with
    Protocol.name = "hybrid_rw";
    (* Declared release rather than sequential: the conformance table
       (PROTOCOLS.md) groups the hybrid with the sync-point protocols, and
       the weaker declaration keeps the checker sound if a variant relaxes
       the read path. *)
    model = Protocol.Release;
    write_fault;
    (* Reads replicate (and downgrade the owner) exactly as in li_hudak;
       write requests never arrive because write faults migrate instead. *)
    write_server = Migrate_thread.protocol.Protocol.write_server;
  }

(** sc_abd: sequentially consistent pages by majority quorum (ABD).

    The Attiya–Bar-Noy–Dolev atomic-register emulation applied per page:
    every replica stores the page plus a [(ts, origin)] tag; a read collects
    tags from a majority, writes the winner back to a majority and returns
    it; a write collects, bumps the winning timestamp and installs the new
    value at a majority.  Majorities intersect, so the protocol remains
    sequentially consistent while any {e minority} of nodes is crashed or
    partitioned ({!Dsm.inject_faults}) — unlike the ownership-chain
    protocols, which stall as soon as an owner or manager dies.

    Costs: a quorum round per shared access (rights are revoked after every
    read and write), each round being one parallel RPC fan-out awaiting
    [n/2 + 1] replies counting the local replica.  Helper threads absorb
    {!Rpc.Timeout}; when too many replicas are unreachable the access raises
    {!Quorum_unreachable} instead of hanging. *)

open Dsmpm2_core

exception
  Quorum_unreachable of { page : int; node : int; got : int; need : int }
(** An access could not reach a majority ([got] < [need] replicas, counting
    the local one).  Only possible under an installed fault plan with more
    than a minority unreachable — the run's workload is then considered
    crashed by the conformance harness, not inconsistent. *)

val protocol : Runtime.t Protocol.t
(** The bare record ({!Protocol.model} = [Sequential]).  Do not register it
    directly: the quorum RPC services must be registered alongside — use
    {!register}. *)

val register : Dsm.t -> int
(** Registers the protocol and its two quorum services ("abd.get",
    "abd.put") with the runtime; returns the protocol id.  Call once per
    {!Dsm.t} (the conformance harness and CLI do this for every run). *)

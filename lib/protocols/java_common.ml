open Dsmpm2_mem
open Dsmpm2_core

(* Per-node on-the-fly modification log: page -> (offset, value) records,
   newest first. *)
type java_state = { records : (int, (int * int) list) Hashtbl.t }
type Page_table.ext += Java_state of java_state

let state rt ~node ~protocol =
  let table = Runtime.table rt node in
  match Page_table.node_ext table ~protocol with
  | Java_state s -> s
  | _ ->
      let s = { records = Hashtbl.create 16 } in
      Page_table.set_node_ext table ~protocol (Java_state s);
      s

let id_of rt name =
  match Protocol.find_by_name rt.Runtime.registry name with
  | Some (id, _) -> id
  | None -> failwith (name ^ ": protocol not registered")

let recorded_words rt ~node ~page =
  (* Works for whichever java variant owns the page. *)
  let e = Runtime.entry rt ~node ~page in
  let s = state rt ~node ~protocol:e.Page_table.protocol in
  List.rev (Option.value ~default:[] (Hashtbl.find_opt s.records page))

let record_write rt ~node ~page ~offset ~value =
  let e = Runtime.entry rt ~node ~page in
  if node <> e.Page_table.home then begin
    let s = state rt ~node ~protocol:e.Page_table.protocol in
    let existing = Option.value ~default:[] (Hashtbl.find_opt s.records page) in
    Hashtbl.replace s.records page ((offset, value) :: existing)
  end

let flush_selected rt ~node ~protocol ~only =
  let s = state rt ~node ~protocol in
  let selected page =
    match only with None -> true | Some pages -> List.mem page pages
  in
  let pages =
    Hashtbl.fold
      (fun page records acc ->
        if selected page then (page, List.rev records) :: acc else acc)
      s.records []
    |> List.sort (fun (a, _) (b, _) -> compare a b)
  in
  List.iter (fun (page, _) -> Hashtbl.remove s.records page) pages;
  let diffs_with_home =
    List.filter_map
      (fun (page, words) ->
        let diff = Diff.of_words ~geometry:rt.Runtime.geo ~page words in
        if Diff.is_empty diff then None
        else
          let e = Runtime.entry rt ~node ~page in
          Some (e.Page_table.home, diff))
      pages
  in
  Protocol_lib.send_diffs_grouped rt ~release:false diffs_with_home

let flush_records rt ~node ~protocol = flush_selected rt ~node ~protocol ~only:None

let drop_selected rt ~node ~protocol ~only =
  flush_selected rt ~node ~protocol ~only;
  let selected page =
    match only with None -> true | Some pages -> List.mem page pages
  in
  let table = Runtime.table rt node in
  List.iter
    (fun (e : Page_table.entry) ->
      if
        e.Page_table.protocol = protocol
        && node <> e.Page_table.home
        && e.Page_table.rights <> Access.No_access
        && (not e.Page_table.faulting)
        && selected e.Page_table.page
      then
        Protocol_lib.with_entry rt e (fun () ->
            Protocol_lib.drop_copy rt ~node ~page:e.Page_table.page))
    (Page_table.entries table)

let fetch rt ~node ~page ~mode =
  let e = Runtime.entry rt ~node ~page in
  Protocol_lib.fetch_page rt ~node ~page ~mode ~from:e.Page_table.home

let read_fault rt ~node ~page = fetch rt ~node ~page ~mode:Access.Read
let write_fault rt ~node ~page = fetch rt ~node ~page ~mode:Access.Write

(* The home manages the reference copy and serves every request.  Caches are
   granted read-write: writes to cached objects are legal under the JMM and
   are captured by the modification log, not by further faults. *)
let serve rt ~node ~page ~requester ~mode =
  let e = Runtime.entry rt ~node ~page in
  Protocol_lib.with_entry rt e (fun () ->
      if node <> e.Page_table.home then
        Dsm_comm.send_request rt ~to_:e.Page_table.home ~page ~mode ~requester
      else begin
        Protocol_lib.server_overhead rt;
        Page_table.copyset_add e requester;
        Dsm_comm.send_page rt ~to_:requester ~page ~grant:Access.Read_write
          ~ownership:false ~copyset:[] ~req_mode:mode
      end)

let read_server rt ~node ~page ~requester =
  if requester <> node then serve rt ~node ~page ~requester ~mode:Access.Read

let write_server rt ~node ~page ~requester =
  if requester <> node then serve rt ~node ~page ~requester ~mode:Access.Write

let invalidate_server rt ~node ~page ~sender:_ =
  let e = Runtime.entry rt ~node ~page in
  Protocol_lib.with_entry rt e (fun () ->
      if node <> e.Page_table.home then Protocol_lib.drop_copy rt ~node ~page)

let receive_page_server rt ~node ~msg =
  let e = Runtime.entry rt ~node ~page:msg.Protocol.page in
  Protocol_lib.with_entry rt e (fun () ->
      Protocol_lib.install_page rt ~node msg;
      Protocol_lib.client_overhead rt;
      Protocol_lib.complete_fault rt e)

(* Monitor exit: transmit local modifications to main memory. *)
let lock_release ~name rt ~node ~lock:_ =
  flush_records rt ~node ~protocol:(id_of rt name)

(* Monitor entry: flush the node's object cache so subsequent accesses
   reload from main memory.  Pending records (writes performed outside any
   monitor) are transmitted first rather than lost. *)
let lock_acquire ~name rt ~node ~lock:_ =
  drop_selected rt ~node ~protocol:(id_of rt name) ~only:None

let on_local_write rt ~node ~page ~offset ~value =
  record_write rt ~node ~page ~offset ~value

let make ~name ~detection =
  {
    Protocol.name;
    detection;
    model = Protocol.Java;
    read_fault;
    write_fault;
    read_server;
    write_server;
    invalidate_server;
    receive_page_server;
    lock_acquire = lock_acquire ~name;
    lock_release = lock_release ~name;
    on_local_write = Some on_local_write;
    on_local_read = None;
    on_page_init = None;
  }

open Dsmpm2_mem
open Dsmpm2_core

type hbrc_state = { mutable dirty : int list }
type Page_table.ext += Hbrc_state of hbrc_state

let protocol_id rt =
  match Protocol.find_by_name rt.Runtime.registry "hbrc_mw" with
  | Some (id, _) -> id
  | None -> failwith "hbrc_mw: protocol not registered"

let state rt ~node =
  let table = Runtime.table rt node in
  let id = protocol_id rt in
  match Page_table.node_ext table ~protocol:id with
  | Hbrc_state s -> s
  | _ ->
      let s = { dirty = [] } in
      Page_table.set_node_ext table ~protocol:id (Hbrc_state s);
      s

let mark_dirty rt ~node ~page =
  let s = state rt ~node in
  if not (List.mem page s.dirty) then s.dirty <- page :: s.dirty

let clear_dirty rt ~node ~page =
  let s = state rt ~node in
  s.dirty <- List.filter (fun p -> p <> page) s.dirty

let dirty_pages rt ~node = List.sort compare (state rt ~node).dirty

let read_fault rt ~node ~page =
  let e = Runtime.entry rt ~node ~page in
  Protocol_lib.fetch_page rt ~node ~page ~mode:Access.Read ~from:e.Page_table.home

let write_fault rt ~node ~page =
  let e = Runtime.entry rt ~node ~page in
  if node = e.Page_table.home then
    failwith "hbrc_mw: write fault on the home node (home always has write access)";
  (* The local-copy check is only trustworthy under the entry mutex: an
     invalidation may drop the copy while we block on it, and twinning a
     vanished frame would manufacture a page of zeroes. *)
  let action =
    Protocol_lib.with_entry rt e (fun () ->
        if e.Page_table.faulting then begin
          Protocol_lib.wait_while_faulting rt e;
          `Retry
        end
        else if Access.allows e.Page_table.rights Access.Write then `Done
        else if Access.allows e.Page_table.rights Access.Read then begin
          (* A clean local copy: twin it and upgrade in place (multiple
             writers may do this concurrently on distinct nodes). *)
          Protocol_lib.make_twin rt ~node e;
          e.Page_table.rights <- Access.Read_write;
          mark_dirty rt ~node ~page;
          `Done
        end
        else `Fetch)
  in
  match action with
  | `Done | `Retry -> ()
  | `Fetch ->
      (* No copy at all: fetch one from the home; the receive action twins
         it when the fault was for write. *)
      Protocol_lib.fetch_page rt ~node ~page ~mode:Access.Write
        ~from:e.Page_table.home

(* The home serves every request (fixed distributed manager). *)
let serve_at_home rt ~node ~page ~requester ~mode =
  let e = Runtime.entry rt ~node ~page in
  Protocol_lib.with_entry rt e (fun () ->
      if node <> e.Page_table.home then
        Dsm_comm.send_request rt ~to_:e.Page_table.home ~page ~mode ~requester
      else begin
        Protocol_lib.server_overhead rt;
        Page_table.copyset_add e requester;
        let grant =
          match mode with
          | Access.Read -> Access.Read_only
          | Access.Write -> Access.Read_write
        in
        Dsm_comm.send_page rt ~to_:requester ~page ~grant ~ownership:false
          ~copyset:[] ~req_mode:mode
      end)

let read_server rt ~node ~page ~requester =
  if requester <> node then serve_at_home rt ~node ~page ~requester ~mode:Access.Read

let write_server rt ~node ~page ~requester =
  if requester <> node then serve_at_home rt ~node ~page ~requester ~mode:Access.Write

(* Flush this node's modifications of [page] to the home (if dirty) and
   forget the local copy.  Entry mutex must be held. *)
let flush_and_drop rt ~node (e : Page_table.entry) =
  let page = e.Page_table.page in
  (match Protocol_lib.diff_against_twin rt ~node e with
  | Some diff -> Dsm_comm.call_diffs rt ~to_:e.Page_table.home ~diffs:[ diff ] ~release:false
  | None -> ());
  clear_dirty rt ~node ~page;
  Protocol_lib.drop_copy rt ~node ~page

let invalidate_server rt ~node ~page ~sender:_ =
  let e = Runtime.entry rt ~node ~page in
  Protocol_lib.with_entry rt e (fun () ->
      if node <> e.Page_table.home then flush_and_drop rt ~node e)

let receive_page_server rt ~node ~msg =
  let e = Runtime.entry rt ~node ~page:msg.Protocol.page in
  Protocol_lib.with_entry rt e (fun () ->
      Protocol_lib.install_page rt ~node msg;
      (match msg.Protocol.req_mode with
      | Access.Write ->
          Protocol_lib.make_twin rt ~node e;
          mark_dirty rt ~node ~page:msg.Protocol.page
      | Access.Read -> ());
      Protocol_lib.client_overhead rt;
      Protocol_lib.complete_fault rt e)

(* Release: compute diffs of every dirty page and push them to the homes
   (release-tagged, so each home then invalidates third-party copies); keep
   our copy read-only with a fresh fault required before the next write. *)
let lock_release rt ~node ~lock:_ =
  let s = state rt ~node in
  let dirty = List.sort compare s.dirty in
  s.dirty <- [];
  let diffs_with_home =
    List.filter_map
      (fun page ->
        let e = Runtime.entry rt ~node ~page in
        Protocol_lib.with_entry rt e (fun () ->
            let diff = Protocol_lib.diff_against_twin rt ~node e in
            e.Page_table.twin <- None;
            if node <> e.Page_table.home then e.Page_table.rights <- Access.Read_only;
            Option.map (fun d -> (e.Page_table.home, d)) diff))
      dirty
  in
  Protocol_lib.send_diffs_grouped rt ~release:true diffs_with_home

(* Acquire: conservatively forget every cached hbrc page so the next access
   refetches the post-release reference copy from the home. *)
let lock_acquire rt ~node ~lock:_ =
  let id = protocol_id rt in
  let table = Runtime.table rt node in
  List.iter
    (fun (e : Page_table.entry) ->
      if
        e.Page_table.protocol = id
        && node <> e.Page_table.home
        && e.Page_table.rights <> Access.No_access
        && not e.Page_table.faulting
      then Protocol_lib.with_entry rt e (fun () -> flush_and_drop rt ~node e))
    (Page_table.entries table)

(* Home-side processing of release-tagged diff batches: apply every diff,
   then invalidate third-party copies (each of which flushes its own diffs
   back first).  The invalidations of the whole batch are coalesced into one
   RPC per copyset node — O(copyset) messages per release, not
   O(pages x copyset). *)
let on_diffs_batch rt ~node ~diffs ~sender ~release =
  List.iter (fun diff -> Dsm_comm.apply_diff_locally rt ~node diff) diffs;
  if release then begin
    let by_target = Hashtbl.create 8 in
    List.iter
      (fun diff ->
        let page = diff.Diff.page in
        let e = Runtime.entry rt ~node ~page in
        let targets =
          Protocol_lib.with_entry rt e (fun () ->
              let t =
                List.filter (fun n -> n <> sender && n <> node) e.Page_table.copyset
              in
              e.Page_table.copyset <-
                (if List.mem sender e.Page_table.copyset then [ sender ] else []);
              t)
        in
        List.iter
          (fun target ->
            Hashtbl.replace by_target target
              (page :: Option.value ~default:[] (Hashtbl.find_opt by_target target)))
          targets)
      diffs;
    Protocol_lib.invalidate_copies_many rt
      ~pages_by_target:
        (Hashtbl.fold (fun target pages acc -> (target, pages) :: acc) by_target [])
  end

let register_diff_handler rt ~protocol =
  Dsm_comm.set_diffs_handler rt ~protocol on_diffs_batch

let protocol =
  {
    Protocol.name = "hbrc_mw";
    detection = Protocol.Page_fault;
    model = Protocol.Release;
    read_fault;
    write_fault;
    read_server;
    write_server;
    invalidate_server;
    receive_page_server;
    lock_acquire;
    lock_release;
    on_local_write = None;
    on_local_read = None;
    on_page_init = None;
  }

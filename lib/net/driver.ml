open Dsmpm2_sim

type t = {
  name : string;
  null_rpc_us : float;
  request_us : float;
  byte_us : float;
  page_base_us : float;
  migration_base_us : float;
}

type cost = Null_rpc | Request | Bulk of int | Migration of int

(* Every message — control or bulk — carries a fixed software/wire header
   (RPC service id, source, destination, DSM opcode and page id all fit
   comfortably).  Byte accounting adds it uniformly so the table 3/4 byte
   columns compare like with like across message kinds; the *latency* of
   the header is already inside the per-kind base costs below, so [delay]
   does not charge it again. *)
let header_bytes = 32

let payload_bytes = function
  | Null_rpc | Request -> 0
  | Bulk n | Migration n -> n

let wire_bytes cost = header_bytes + payload_bytes cost

let delay d = function
  | Null_rpc -> Time.of_us d.null_rpc_us
  | Request -> Time.of_us d.request_us
  | Bulk n -> Time.of_us (d.page_base_us +. (float_of_int n *. d.byte_us))
  | Migration n -> Time.of_us (d.migration_base_us +. (float_of_int n *. d.byte_us))

(* Calibration (DESIGN.md section 6).  A 4 kB page transfer must cost the
   paper's Table 3 figure, and a minimal thread migration (1 kB stack + 256 B
   descriptor = 1280 B) the Table 4 figure:

     page_transfer  = page_base_us      + 4096 * byte_us
     migration      = migration_base_us + 1280 * byte_us

   byte_us is taken from the nominal link bandwidth; the base absorbs the
   software path (protocol stack traversal, DMA setup, handler dispatch). *)

let bip_myrinet =
  {
    name = "BIP/Myrinet";
    null_rpc_us = 8.;
    request_us = 23.;
    byte_us = 0.008;
    (* ~125 MB/s *)
    page_base_us = 138. -. (4096. *. 0.008);
    migration_base_us = 75. -. (1280. *. 0.008);
  }

let tcp_myrinet =
  {
    name = "TCP/Myrinet";
    null_rpc_us = 30.;
    request_us = 220.;
    byte_us = 0.025;
    (* ~40 MB/s *)
    page_base_us = 343. -. (4096. *. 0.025);
    migration_base_us = 280. -. (1280. *. 0.025);
  }

let tcp_fast_ethernet =
  {
    name = "TCP/FastEthernet";
    null_rpc_us = 60.;
    request_us = 220.;
    byte_us = 0.091;
    (* ~11 MB/s *)
    page_base_us = 736. -. (4096. *. 0.091);
    migration_base_us = 373. -. (1280. *. 0.091);
  }

let sisci_sci =
  {
    name = "SISCI/SCI";
    null_rpc_us = 6.;
    request_us = 38.;
    byte_us = 0.0125;
    (* ~80 MB/s *)
    page_base_us = 119. -. (4096. *. 0.0125);
    migration_base_us = 62. -. (1280. *. 0.0125);
  }

let all = [ bip_myrinet; tcp_myrinet; tcp_fast_ethernet; sisci_sci ]

let by_name name =
  List.find_opt (fun d -> String.equal d.name name) all

let pp ppf d =
  Format.fprintf ppf
    "%s (null_rpc %.1fus, request %.1fus, %.4fus/B, page_base %.1fus, mig_base %.1fus)"
    d.name d.null_rpc_us d.request_us d.byte_us d.page_base_us d.migration_base_us

(** Network cost models: the simulated counterpart of the Madeleine drivers.

    The paper runs on four cluster configurations; each becomes a [Driver.t]
    whose parameters are calibrated so that the model reproduces the paper's
    measured microsecond figures (Tables 3 and 4, and the null-RPC and
    thread-migration latencies of Section 2.1).  See DESIGN.md section 6 for
    the calibration procedure. *)

open Dsmpm2_sim

type t = {
  name : string;
  null_rpc_us : float;  (** minimal one-way RPC latency (paper section 2.1) *)
  request_us : float;  (** small control message incl. dispatch (Table 3) *)
  byte_us : float;  (** per-byte streaming cost, from nominal link bandwidth *)
  page_base_us : float;  (** fixed overhead of a bulk (page/diff) transfer *)
  migration_base_us : float;  (** fixed overhead of a thread migration *)
}

type cost =
  | Null_rpc  (** an empty RPC invocation *)
  | Request  (** a small protocol control message (page request, ack, ...) *)
  | Bulk of int  (** a data transfer of [n] bytes (page, diff, update) *)
  | Migration of int  (** a thread migration carrying [n] bytes of state *)

val delay : t -> cost -> Time.t
(** One-way latency of a message of the given kind on this driver. *)

val header_bytes : int
(** Fixed per-message header charged by the byte accounting for {e every}
    message kind (service id, endpoints, opcode, page id), so byte columns
    are comparable across control and bulk traffic.  Its latency is part of
    the per-kind base costs, so {!delay} does not charge it again. *)

val payload_bytes : cost -> int
(** Payload bytes of the message: 0 for control kinds, [n] for
    [Bulk n]/[Migration n]. *)

val wire_bytes : cost -> int
(** [header_bytes + payload_bytes cost] — what {!Network.bytes_sent}
    accumulates per message. *)

val bip_myrinet : t
val tcp_myrinet : t
val tcp_fast_ethernet : t
val sisci_sci : t

val all : t list
(** The four platforms of the paper's evaluation, in the column order of its
    Tables 3 and 4. *)

val by_name : string -> t option
val pp : Format.formatter -> t -> unit

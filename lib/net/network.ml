open Dsmpm2_sim

(* Interned per-kind instrumentation: one counter and one latency series per
   message kind, resolved once at [create] so the per-message cost is an
   array index and a cell bump, not a string hash. *)
type kind_handles = {
  k_count : Stats.counter;
  k_delay : Stats.histogram;
  k_dropped : Stats.counter; (* "<kind>.dropped": per-kind fault losses *)
}

type t = {
  eng : Engine.t;
  net_driver : Driver.t;
  nnodes : int;
  last_delivery : Time.t array;
      (* index src*nnodes+dst: latest delivery time scheduled on that link *)
  loop_last : Time.t array;
      (* per node: latest loopback delivery, for the same FIFO clamp *)
  jitter : (src:int -> dst:int -> Time.t -> Time.t) option;
  mutable plan : Fault_plan.t;
  mutable net_trace : Trace.t option;
      (* fault forensics: dropped messages become typed trace events *)
  mutable span_source : unit -> int;
      (* the active span of whoever is sending, resolved at drop time; wired
         by the PM2 layer which knows the fiber -> thread -> span chain *)
  mutable sent : int;
  mutable bytes : int;
  mutable loopback : int;
  mutable dropped : int;
  net_stats : Stats.t;
  net_metrics : Metrics.t;
  kinds : kind_handles array; (* indexed by [kind_index] *)
  h_delay : Stats.histogram; (* "net.delay" on [net_stats] *)
  c_loopback : Stats.counter; (* "net.loopback" on [net_stats] *)
  c_dropped : Stats.counter; (* "net.dropped" on [net_stats] *)
  node_sent : Stats.counter array; (* per source node: "net.sent" *)
  node_bytes : Stats.counter array; (* per source node: "net.bytes" *)
  node_delay : Stats.histogram array; (* per source node: "net.delay" *)
}

let kind_names = [| "msg.null_rpc"; "msg.request"; "msg.bulk"; "msg.migration" |]

let kind_index = function
  | Driver.Null_rpc -> 0
  | Driver.Request -> 1
  | Driver.Bulk _ -> 2
  | Driver.Migration _ -> 3

let create ?jitter eng ~driver ~nodes =
  if nodes <= 0 then invalid_arg "Network.create: nodes must be positive";
  let net_stats = Stats.create () in
  let net_metrics = Metrics.create () in
  let node_group node = Metrics.group net_metrics (Metrics.labels ~node ()) in
  {
    eng;
    net_driver = driver;
    nnodes = nodes;
    last_delivery = Array.make (nodes * nodes) Time.zero;
    (* Initialised one tick below zero so the first self-send still delivers
       at the current instant (loopback stays "free"), while later same-time
       self-sends are clamped strictly after it. *)
    loop_last = Array.make nodes (Time.of_ns (-1));
    jitter;
    plan = Fault_plan.none;
    net_trace = None;
    span_source = (fun () -> Trace.no_span);
    sent = 0;
    bytes = 0;
    loopback = 0;
    dropped = 0;
    net_stats;
    net_metrics;
    kinds =
      Array.map
        (fun name ->
          {
            k_count = Stats.counter net_stats name;
            k_delay = Stats.histogram net_stats (name ^ ".delay");
            k_dropped = Stats.counter net_stats (name ^ ".dropped");
          })
        kind_names;
    h_delay = Stats.histogram net_stats "net.delay";
    c_loopback = Stats.counter net_stats "net.loopback";
    c_dropped = Stats.counter net_stats "net.dropped";
    node_sent = Array.init nodes (fun n -> Stats.counter (node_group n) "net.sent");
    node_bytes = Array.init nodes (fun n -> Stats.counter (node_group n) "net.bytes");
    node_delay =
      Array.init nodes (fun n -> Stats.histogram (node_group n) "net.delay");
  }

let driver t = t.net_driver
let nodes t = t.nnodes
let messages_sent t = t.sent
let bytes_sent t = t.bytes
let loopback_sent t = t.loopback
let messages_dropped t = t.dropped
let stats t = t.net_stats
let metrics t = t.net_metrics
let set_fault_plan t plan = t.plan <- plan
let fault_plan t = t.plan

let set_trace t trace ~span =
  t.net_trace <- Some trace;
  t.span_source <- span

let dropped_by_kind t =
  Array.to_list
    (Array.map
       (fun name -> (name, Stats.count t.net_stats (name ^ ".dropped")))
       kind_names)

(* Seeded fault-injection jitter: every message pays a bounded random extra
   latency, and a small fraction take a much larger "spike" (a retransmission,
   a switch hiccup).  The stream is drawn from its own Rng in send order —
   deterministic for a given schedule, so a perturbed run replays exactly.
   Delays only grow, and the per-link arrival clamp in [send] preserves FIFO
   regardless, so this never reorders a link. *)
let seeded_jitter ?(extra_us = 40.) ?(spike_us = 400.) ?(spike_pct = 2) ~seed () =
  if extra_us < 0. || spike_us < 0. then
    invalid_arg "Network.seeded_jitter: bounds must be non-negative";
  if spike_pct < 0 || spike_pct > 100 then
    invalid_arg "Network.seeded_jitter: spike_pct must be in [0, 100]";
  (* Salt the seed so the jitter stream differs from an engine tie-break
     stream built from the same user-level seed. *)
  let rng = Rng.create ~seed:(Rng.int (Rng.create ~seed) 0x3FFFFFFF + 0x5bd1) in
  fun ~src:_ ~dst:_ delay ->
    let extra = Time.of_us (Rng.float rng extra_us) in
    let spike =
      if spike_pct > 0 && Rng.int rng 100 < spike_pct then Time.of_us spike_us
      else Time.zero
    in
    Time.(delay + extra + spike)

let send t ~src ~dst ~cost k =
  if src < 0 || src >= t.nnodes || dst < 0 || dst >= t.nnodes then
    invalid_arg "Network.send: node id out of range";
  if src = dst then begin
    (* Loopback never touches the wire: it is counted separately (the
       [messages_sent]/[bytes_sent] columns feed bench and app summaries as
       network traffic) and goes through the same monotonic-arrival clamp as
       a real link, so two same-time self-sends can never be reordered by an
       adversarial tie seed. *)
    t.loopback <- t.loopback + 1;
    Stats.bump t.c_loopback;
    let arrival =
      Time.max (Engine.now t.eng) Time.(t.loop_last.(src) + Time.of_ns 1)
    in
    t.loop_last.(src) <- arrival;
    Engine.at t.eng arrival k
  end
  else begin
    let wire = Driver.wire_bytes cost in
    let kh = t.kinds.(kind_index cost) in
    t.sent <- t.sent + 1;
    t.bytes <- t.bytes + wire;
    Stats.bump kh.k_count;
    Stats.bump t.node_sent.(src);
    Stats.bump_by t.node_bytes.(src) wire;
    (* Every drop is first-class in the trace: the event carries the link,
       the message kind and the sending operation's span, so the blame
       engine can walk from a stale read back to the exact loss.  [ev] is
       built lazily — the no-trace path allocates nothing. *)
    let drop ev =
      t.dropped <- t.dropped + 1;
      Stats.bump t.c_dropped;
      Stats.bump kh.k_dropped;
      match t.net_trace with
      | Some tr when Trace.enabled tr ->
          Trace.emit tr t.eng ~span:(t.span_source ()) (ev ())
      | _ -> ()
    in
    let kind_name = kind_names.(kind_index cost) in
    (* A crashed sender's traffic dies on the host; this is checked before
       the loss draw so blackholed messages never consume loss stream
       entropy a later run-with-different-windows would miss. *)
    if Fault_plan.is_down t.plan ~node:src (Engine.now t.eng) then begin
      Fault_plan.note_blackhole t.plan;
      drop (fun () -> Trace.Blackhole { src; dst; kind = kind_name; down = src })
    end
    else if Fault_plan.loses_message t.plan then begin
      Fault_plan.note_loss t.plan;
      drop (fun () -> Trace.Drop { src; dst; kind = kind_name })
    end
    else begin
      let delay = Driver.delay t.net_driver cost in
      let delay =
        match t.jitter with
        | None -> delay
        | Some f ->
            (* Clamp rather than raise: a buggy (or adversarial
               fault-injection) jitter function must never be able to
               schedule a delivery in the past and trip the engine's
               at-in-the-past assertion mid-run. *)
            Time.max (f ~src ~dst delay) Time.zero
      in
      let link = (src * t.nnodes) + dst in
      let arrival =
        Time.max
          Time.(Engine.now t.eng + delay)
          Time.(t.last_delivery.(link) + Time.of_ns 1)
      in
      if Fault_plan.is_down t.plan ~node:dst arrival then begin
        (* Delivered into a down window: the NIC is dead, the message is
           gone.  The link slot is not consumed by a vanished message. *)
        Fault_plan.note_blackhole t.plan;
        drop (fun () -> Trace.Blackhole { src; dst; kind = kind_name; down = dst })
      end
      else begin
        t.last_delivery.(link) <- arrival;
        (* The wire-plus-queueing latency this message actually experiences:
           the tail of these histograms is where link contention shows up. *)
        let latency = Time.(arrival - Engine.now t.eng) in
        Stats.record t.h_delay latency;
        Stats.record kh.k_delay latency;
        Stats.record t.node_delay.(src) latency;
        Engine.at t.eng arrival k
      end
    end
  end

open Dsmpm2_sim

type t = {
  eng : Engine.t;
  net_driver : Driver.t;
  nnodes : int;
  last_delivery : Time.t array;
      (* index src*nnodes+dst: latest delivery time scheduled on that link *)
  jitter : (src:int -> dst:int -> Time.t -> Time.t) option;
  mutable sent : int;
  mutable bytes : int;
  net_stats : Stats.t;
  net_metrics : Metrics.t;
}

let create ?jitter eng ~driver ~nodes =
  if nodes <= 0 then invalid_arg "Network.create: nodes must be positive";
  {
    eng;
    net_driver = driver;
    nnodes = nodes;
    last_delivery = Array.make (nodes * nodes) Time.zero;
    jitter;
    sent = 0;
    bytes = 0;
    net_stats = Stats.create ();
    net_metrics = Metrics.create ();
  }

let driver t = t.net_driver
let nodes t = t.nnodes
let messages_sent t = t.sent
let bytes_sent t = t.bytes
let stats t = t.net_stats
let metrics t = t.net_metrics

(* Seeded fault-injection jitter: every message pays a bounded random extra
   latency, and a small fraction take a much larger "spike" (a retransmission,
   a switch hiccup).  The stream is drawn from its own Rng in send order —
   deterministic for a given schedule, so a perturbed run replays exactly.
   Delays only grow, and the per-link arrival clamp in [send] preserves FIFO
   regardless, so this never reorders a link. *)
let seeded_jitter ?(extra_us = 40.) ?(spike_us = 400.) ?(spike_pct = 2) ~seed () =
  if extra_us < 0. || spike_us < 0. then
    invalid_arg "Network.seeded_jitter: bounds must be non-negative";
  if spike_pct < 0 || spike_pct > 100 then
    invalid_arg "Network.seeded_jitter: spike_pct must be in [0, 100]";
  (* Salt the seed so the jitter stream differs from an engine tie-break
     stream built from the same user-level seed. *)
  let rng = Rng.create ~seed:(Rng.int (Rng.create ~seed) 0x3FFFFFFF + 0x5bd1) in
  fun ~src:_ ~dst:_ delay ->
    let extra = Time.of_us (Rng.float rng extra_us) in
    let spike =
      if spike_pct > 0 && Rng.int rng 100 < spike_pct then Time.of_us spike_us
      else Time.zero
    in
    Time.(delay + extra + spike)

let kind_name = function
  | Driver.Null_rpc -> "msg.null_rpc"
  | Driver.Request -> "msg.request"
  | Driver.Bulk _ -> "msg.bulk"
  | Driver.Migration _ -> "msg.migration"

let payload_bytes = function
  | Driver.Null_rpc | Driver.Request -> 0
  | Driver.Bulk n | Driver.Migration n -> n

let send t ~src ~dst ~cost k =
  if src < 0 || src >= t.nnodes || dst < 0 || dst >= t.nnodes then
    invalid_arg "Network.send: node id out of range";
  t.sent <- t.sent + 1;
  t.bytes <- t.bytes + payload_bytes cost;
  Stats.incr t.net_stats (kind_name cost);
  Metrics.incr t.net_metrics ~node:src "net.sent";
  Metrics.add t.net_metrics ~node:src "net.bytes" (payload_bytes cost);
  if src = dst then Engine.after t.eng Time.zero k
  else begin
    let delay = Driver.delay t.net_driver cost in
    let delay =
      match t.jitter with
      | None -> delay
      | Some f ->
          (* Clamp rather than raise: a buggy (or adversarial fault-injection)
             jitter function must never be able to schedule a delivery in the
             past and trip the engine's at-in-the-past assertion mid-run. *)
          Time.max (f ~src ~dst delay) Time.zero
    in
    let link = (src * t.nnodes) + dst in
    let arrival =
      Time.max
        Time.(Engine.now t.eng + delay)
        Time.(t.last_delivery.(link) + Time.of_ns 1)
    in
    t.last_delivery.(link) <- arrival;
    (* The wire-plus-queueing latency this message actually experiences:
       the tail of these histograms is where link contention shows up. *)
    let latency = Time.(arrival - Engine.now t.eng) in
    Stats.add_span t.net_stats "net.delay" latency;
    Stats.add_span t.net_stats (kind_name cost ^ ".delay") latency;
    Metrics.observe t.net_metrics ~node:src "net.delay" latency;
    Engine.at t.eng arrival k
  end

(** Point-to-point message delivery between simulated nodes.

    Guarantees FIFO ordering per directed link (as TCP, BIP and SISCI all do
    for a connection), charges the driver's cost model for every message, and
    exposes traffic counters.  An optional jitter hook perturbs latencies for
    the failure-injection tests; jitter never reorders a link. *)

open Dsmpm2_sim

type t

val create :
  ?jitter:(src:int -> dst:int -> Time.t -> Time.t) ->
  Engine.t ->
  driver:Driver.t ->
  nodes:int ->
  t
(** [jitter] maps the nominal delay of each message to an effective delay.
    Negative results are clamped to zero at send time, so a misbehaving
    jitter function can slow or speed messages but never schedule a delivery
    in the past. *)

val seeded_jitter :
  ?extra_us:float ->
  ?spike_us:float ->
  ?spike_pct:int ->
  seed:int ->
  unit ->
  src:int ->
  dst:int ->
  Time.t ->
  Time.t
(** [seeded_jitter ~seed ()] builds a deterministic fault-injection jitter
    function for {!create}: every message pays a uniform extra latency in
    [0, extra_us] (default 40) and [spike_pct]% of messages (default 2) pay a
    further [spike_us] (default 400) spike.  Draws are made in send order
    from a private seeded stream, so a given seed replays the identical
    perturbation; combined with the per-link arrival clamp, it can delay but
    never reorder a FIFO link. *)

val driver : t -> Driver.t
val nodes : t -> int

val send : t -> src:int -> dst:int -> cost:Driver.cost -> (unit -> unit) -> unit
(** [send t ~src ~dst ~cost k] delivers the message after the modelled delay
    and then runs [k] (in event context, not in a fiber).  Loopback
    ([src = dst]) is free and still asynchronous.  Node ids must be in
    range. *)

val messages_sent : t -> int
val bytes_sent : t -> int
(** Wire bytes of every message: {!Driver.header_bytes} per message plus
    the payload of [Bulk] and [Migration] kinds.  Control traffic therefore
    shows up in byte columns too, making them comparable across message
    kinds. *)

val stats : t -> Stats.t
(** Per-kind message counters ("msg.request", "msg.bulk", ...) plus
    delivery-latency spans: "net.delay" overall and "<kind>.delay" per
    message kind, including FIFO queueing behind earlier link traffic. *)

val metrics : t -> Metrics.t
(** Per-source-node labeled series: "net.sent", "net.bytes" (wire bytes)
    counters and the "net.delay" latency histogram.  All series are
    interned once at {!create}; the per-message cost is a cell bump. *)

(** Point-to-point message delivery between simulated nodes.

    Guarantees FIFO ordering per directed link (as TCP, BIP and SISCI all do
    for a connection), charges the driver's cost model for every message, and
    exposes traffic counters.  An optional jitter hook perturbs latencies for
    the failure-injection tests; jitter never reorders a link. *)

open Dsmpm2_sim

type t

val create :
  ?jitter:(src:int -> dst:int -> Time.t -> Time.t) ->
  Engine.t ->
  driver:Driver.t ->
  nodes:int ->
  t
(** [jitter] maps the nominal delay of each message to an effective delay.
    Negative results are clamped to zero at send time, so a misbehaving
    jitter function can slow or speed messages but never schedule a delivery
    in the past. *)

val seeded_jitter :
  ?extra_us:float ->
  ?spike_us:float ->
  ?spike_pct:int ->
  seed:int ->
  unit ->
  src:int ->
  dst:int ->
  Time.t ->
  Time.t
(** [seeded_jitter ~seed ()] builds a deterministic fault-injection jitter
    function for {!create}: every message pays a uniform extra latency in
    [0, extra_us] (default 40) and [spike_pct]% of messages (default 2) pay a
    further [spike_us] (default 400) spike.  Draws are made in send order
    from a private seeded stream, so a given seed replays the identical
    perturbation; combined with the per-link arrival clamp, it can delay but
    never reorder a FIFO link. *)

val driver : t -> Driver.t
val nodes : t -> int

val send : t -> src:int -> dst:int -> cost:Driver.cost -> (unit -> unit) -> unit
(** [send t ~src ~dst ~cost k] delivers the message after the modelled delay
    and then runs [k] (in event context, not in a fiber).  Loopback
    ([src = dst]) is free and still asynchronous: it pays no wire delay, is
    counted in {!loopback_sent} rather than {!messages_sent}, and follows
    its own per-node monotonic-arrival clamp so two same-time self-sends
    deliver in send order under every tie seed (the same FIFO promise as a
    real link).  Node ids must be in range.  When a fault plan is installed
    ({!set_fault_plan}), cross-node messages may be dropped: blackholed if
    the source is inside a crash window at send time or the destination at
    arrival time, or lost by the plan's seeded per-message loss draw —
    dropped messages still count as sent (they hit the wire) and are
    tallied in {!messages_dropped}. *)

val messages_sent : t -> int
(** Cross-node messages only; self-sends never touch the wire and are
    counted in {!loopback_sent} instead. *)

val bytes_sent : t -> int
(** Wire bytes of every cross-node message: {!Driver.header_bytes} per
    message plus the payload of [Bulk] and [Migration] kinds.  Control
    traffic therefore shows up in byte columns too, making them comparable
    across message kinds. *)

val loopback_sent : t -> int
(** Self-sends ([src = dst]); also the "net.loopback" counter in
    {!stats}. *)

val messages_dropped : t -> int
(** Messages dropped by the installed fault plan (loss draws plus crash
    blackholes); also the "net.dropped" counter in {!stats}. *)

val set_trace : t -> Trace.t -> span:(unit -> int) -> unit
(** Wires fault forensics: once installed (and while the trace is enabled),
    every dropped cross-node message emits a typed [Trace.Drop] (seeded
    loss) or [Trace.Blackhole] (crash-window swallow) event carrying the
    link, the message-kind name and the span returned by [span] at drop
    time.  The PM2 layer installs a [span] that resolves the sending
    fiber's active operation span, so a lost invalidate lands in the same
    span as the write that sent it.  With no trace installed (the default)
    the drop paths allocate nothing. *)

val dropped_by_kind : t -> (string * int) list
(** Messages dropped by the fault plan per message kind, as
    [("msg.request", n); ...] in {!stats} kind order — the per-kind
    counters behind the "<kind>.dropped" series. *)

val set_fault_plan : t -> Fault_plan.t -> unit
(** Installs a fault schedule.  The default is {!Fault_plan.none};
    installing a plan with no windows and zero loss changes nothing — no
    drops, no RNG draws, bit-for-bit identical schedules. *)

val fault_plan : t -> Fault_plan.t

val stats : t -> Stats.t
(** Per-kind message counters ("msg.request", "msg.bulk", ...) plus
    delivery-latency spans: "net.delay" overall and "<kind>.delay" per
    message kind, including FIFO queueing behind earlier link traffic. *)

val metrics : t -> Metrics.t
(** Per-source-node labeled series: "net.sent", "net.bytes" (wire bytes)
    counters and the "net.delay" latency histogram.  All series are
    interned once at {!create}; the per-message cost is a cell bump. *)

(* The macro-benchmark observatory (`dsm bench`).

   Where the bechamel suite measures the *host* cost of simulator kernels,
   this suite measures the *simulated* systems themselves: every
   application kernel under a matrix of protocols and drivers, with fixed
   engine tie seeds so the numbers are bit-reproducible on any machine.
   Each (app, protocol, driver) case runs once per seed and records the
   virtual-time wall clock, message/byte counts, fault counts and the
   fault-latency tail from the runtime's Stats registry; the repeated-seed
   spread is the noise bound `dsm diff` uses to decide whether a delta is
   signal.  The whole result serializes to the stable, self-describing
   BENCH_macro.json schema (see {!schema_version}). *)

open Dsmpm2_sim
open Dsmpm2_net
open Dsmpm2_core

let schema_version = "dsm-bench-macro/1"
let default_seeds = [ 0; 1; 2 ]

(* --- cases --- *)

type case = {
  c_id : string;
  c_app : string;
  c_protocol : string;
  c_driver : string;
  c_nodes : int;
  c_params : (string * int) list;
  c_quick : bool;
}

type sample = {
  s_seed : int;
  s_time_us : float;
  s_messages : int;
  s_bytes : int;
  s_read_faults : int;
  s_write_faults : int;
  s_dropped : int;  (* messages lost to fault injection *)
  s_rpc_retries : int;  (* RPC retransmissions after deadline expiry *)
  s_fault_p50_us : float;
  s_fault_p90_us : float;
  s_fault_p99_us : float;
  s_fault_p999_us : float;
      (* extreme tail, from the online telemetry sketch (the Stats
         histogram's resolution is too coarse at p99.9) *)
}

type case_result = {
  cr_case : case;
  cr_meta : Run_meta.t;
  cr_samples : sample list;
}

type t = { bs_meta : Run_meta.t; bs_results : case_result list }

(* Driver names contain '/' (e.g. "BIP/Myrinet"); flatten them so case ids
   stay filesystem- and filter-friendly. *)
let slug s =
  String.map (fun c -> if c = '/' then '-' else Char.lowercase_ascii c) s

let make_id ~app ~protocol ~driver = Printf.sprintf "%s:%s:%s" app protocol (slug driver)

let case ?(nodes = 4) ?(params = []) ?(quick = false) ~app ~protocol driver =
  {
    c_id = make_id ~app ~protocol ~driver:driver.Driver.name;
    c_app = app;
    c_protocol = protocol;
    c_driver = driver.Driver.name;
    c_nodes = nodes;
    c_params = params;
    c_quick = quick;
  }

(* The committed matrix.  Sizes are deliberately small — a full sweep is a
   couple of minutes of host time — and FIXED: the same case id must mean
   the same workload forever, or baselines silently stop being comparable.
   Grow the matrix by adding cases, not by editing existing ones.

   jacobi and tsp run on two drivers (they are the ROADMAP's scale-out and
   adaptivity yardsticks); the rest pin one driver each to bound suite
   time.  `quick = true` marks the CI smoke subset. *)
let cases () =
  let j = [ ("size", 32); ("iterations", 4) ] in
  let t = [ ("cities", 12) ] in
  List.concat
    [
      List.map
        (fun (protocol, quick) ->
          case ~app:"jacobi" ~params:j ~quick ~protocol Driver.bip_myrinet)
        [ ("hbrc_mw", true); ("li_hudak_fixed", true); ("write_update", false);
          ("erc_sw", false) ];
      List.map
        (fun protocol -> case ~app:"jacobi" ~params:j ~protocol Driver.sisci_sci)
        [ "hbrc_mw"; "li_hudak_fixed"; "write_update"; "erc_sw" ];
      List.map
        (fun (protocol, quick) ->
          case ~app:"tsp" ~params:t ~quick ~protocol Driver.bip_myrinet)
        [ ("li_hudak", true); ("migrate_thread", true); ("hbrc_mw", false) ];
      List.map
        (fun protocol -> case ~app:"tsp" ~params:t ~protocol Driver.sisci_sci)
        [ "li_hudak"; "migrate_thread"; "hbrc_mw" ];
      List.map
        (fun protocol -> case ~app:"coloring" ~protocol Driver.sisci_sci)
        [ "java_pf"; "java_ic" ];
      List.map
        (fun protocol ->
          case ~app:"lu" ~params:[ ("size", 24) ] ~protocol Driver.bip_myrinet)
        [ "li_hudak_fixed"; "hbrc_mw" ];
      List.map
        (fun protocol ->
          case ~app:"matmul" ~params:[ ("size", 16) ] ~protocol Driver.bip_myrinet)
        [ "li_hudak"; "write_update" ];
      List.map
        (fun protocol ->
          case
            ~app:"sort"
            ~params:[ ("elements_per_node", 48) ]
            ~protocol Driver.tcp_fast_ethernet)
        [ "li_hudak_fixed"; "erc_sw" ];
    ]

(* --- running one case --- *)

let param case name ~default =
  match List.assoc_opt name case.c_params with Some v -> v | None -> default

let driver_of case =
  match Driver.by_name case.c_driver with
  | Some d -> d
  | None -> invalid_arg (Printf.sprintf "Bench_suite: unknown driver %S" case.c_driver)

(* Runs the case's app once under one tie seed, returning the finished
   runtime captured through the app's [observe] hook. *)
let run_app case ~seed =
  let driver = driver_of case in
  let captured = ref None in
  (* Attach the online telemetry engine for the p99.9 sketch.  The ring is
     kept tiny on purpose: the sketch reads the observer stream, which sees
     every emission regardless of storage, and a small ring bounds the
     suite's memory without costing accuracy. *)
  let observe =
    Some
      (fun dsm ->
        Monitor.enable dsm true;
        Trace.set_capacity (Monitor.trace dsm) 1024;
        ignore (Telemetry.attach dsm);
        captured := Some dsm)
  in
  let tie_seed = Some seed in
  let nodes = case.c_nodes in
  let protocol = case.c_protocol in
  (match case.c_app with
  | "jacobi" ->
      ignore
        (Dsmpm2_apps.Jacobi.run
           {
             Dsmpm2_apps.Jacobi.default with
             protocol;
             nodes;
             driver;
             size = param case "size" ~default:32;
             iterations = param case "iterations" ~default:4;
             tie_seed;
             observe;
           })
  | "tsp" ->
      ignore
        (Dsmpm2_apps.Tsp.run
           {
             Dsmpm2_apps.Tsp.default with
             protocol;
             nodes;
             driver;
             cities = param case "cities" ~default:12;
             tie_seed;
             observe;
           })
  | "coloring" ->
      ignore
        (Dsmpm2_apps.Map_coloring.run
           {
             Dsmpm2_apps.Map_coloring.default with
             protocol;
             nodes;
             driver;
             tie_seed;
             observe;
           })
  | "lu" ->
      ignore
        (Dsmpm2_apps.Lu.run
           {
             Dsmpm2_apps.Lu.default with
             protocol;
             nodes;
             driver;
             size = param case "size" ~default:24;
             tie_seed;
             observe;
           })
  | "matmul" ->
      ignore
        (Dsmpm2_apps.Matmul.run
           {
             Dsmpm2_apps.Matmul.default with
             protocol;
             nodes;
             driver;
             size = param case "size" ~default:16;
             tie_seed;
             observe;
           })
  | "sort" ->
      ignore
        (Dsmpm2_apps.Sort.run
           {
             Dsmpm2_apps.Sort.default with
             protocol;
             nodes;
             driver;
             elements_per_node = param case "elements_per_node" ~default:48;
             tie_seed;
             observe;
           })
  | app -> invalid_arg (Printf.sprintf "Bench_suite: unknown app %S" app));
  match !captured with
  | Some dsm -> dsm
  | None -> failwith (Printf.sprintf "Bench_suite: %s did not expose its runtime" case.c_app)

let measure case ~seed =
  let dsm = run_app case ~seed in
  let stats = Dsm.stats dsm in
  let net = Dsmpm2_pm2.Pm2.network (Dsm.pm2 dsm) in
  let pct p = Time.to_us (Stats.span_percentile stats Instrument.stage_total p) in
  {
    s_seed = seed;
    s_time_us = Dsm.now_us dsm;
    s_messages = Network.messages_sent net;
    s_bytes = Network.bytes_sent net;
    s_read_faults = Stats.count stats Instrument.read_faults;
    s_write_faults = Stats.count stats Instrument.write_faults;
    s_dropped = Network.messages_dropped net;
    s_rpc_retries = Dsmpm2_pm2.Rpc.retransmissions (Dsmpm2_pm2.Pm2.rpc (Dsm.pm2 dsm));
    s_fault_p50_us = pct 50.;
    s_fault_p90_us = pct 90.;
    s_fault_p99_us = pct 99.;
    s_fault_p999_us =
      (match Telemetry.find dsm with
      | Some tele -> Telemetry.fault_percentile tele 99.9
      | None -> 0.);
  }

let case_meta case =
  Run_meta.with_git
    (Run_meta.v ~driver:case.c_driver ~protocol:case.c_protocol
       ~nodes:case.c_nodes ~case:case.c_id ())

let run_case ?(seeds = default_seeds) case =
  {
    cr_case = case;
    cr_meta = case_meta case;
    cr_samples = List.map (fun seed -> measure case ~seed) seeds;
  }

(* --- the sweep --- *)

let filter_cases ?filter ?(quick = false) all =
  let contains ~sub s =
    let n = String.length sub and m = String.length s in
    let rec at i = i + n <= m && (String.sub s i n = sub || at (i + 1)) in
    n = 0 || at 0
  in
  List.filter
    (fun c ->
      ((not quick) || c.c_quick)
      && match filter with None -> true | Some sub -> contains ~sub c.c_id)
    all

let run ?(seeds = default_seeds) ?filter ?(quick = false)
    ?(progress = fun _ -> ()) () =
  let selected = filter_cases ?filter ~quick (cases ()) in
  let results =
    List.map
      (fun c ->
        let r = run_case ~seeds c in
        progress r;
        r)
      selected
  in
  { bs_meta = Run_meta.with_git (Run_meta.v ()); bs_results = results }

(* --- aggregates (shared with the differ) --- *)

let mean = function
  | [] -> 0.
  | xs -> List.fold_left ( +. ) 0. xs /. float_of_int (List.length xs)

let stddev xs =
  match xs with
  | [] | [ _ ] -> 0.
  | xs ->
      let m = mean xs in
      sqrt (mean (List.map (fun x -> (x -. m) ** 2.) xs))

let metric_names =
  [
    "time_us"; "messages"; "bytes"; "read_faults"; "write_faults";
    "dropped"; "rpc_retries";
    "fault_p50_us"; "fault_p90_us"; "fault_p99_us"; "fault_p999_us";
  ]

let metric name s =
  match name with
  | "time_us" -> s.s_time_us
  | "messages" -> float_of_int s.s_messages
  | "bytes" -> float_of_int s.s_bytes
  | "read_faults" -> float_of_int s.s_read_faults
  | "write_faults" -> float_of_int s.s_write_faults
  | "dropped" -> float_of_int s.s_dropped
  | "rpc_retries" -> float_of_int s.s_rpc_retries
  | "fault_p50_us" -> s.s_fault_p50_us
  | "fault_p90_us" -> s.s_fault_p90_us
  | "fault_p99_us" -> s.s_fault_p99_us
  | "fault_p999_us" -> s.s_fault_p999_us
  | _ -> invalid_arg (Printf.sprintf "Bench_suite.metric: unknown metric %S" name)

let metric_mean cr name = mean (List.map (metric name) cr.cr_samples)
let metric_stddev cr name = stddev (List.map (metric name) cr.cr_samples)

(* --- JSON --- *)

let sample_to_json s =
  Json.Obj
    [
      ("seed", Json.Int s.s_seed);
      ("time_us", Json.Float s.s_time_us);
      ("messages", Json.Int s.s_messages);
      ("bytes", Json.Int s.s_bytes);
      ("read_faults", Json.Int s.s_read_faults);
      ("write_faults", Json.Int s.s_write_faults);
      ("dropped", Json.Int s.s_dropped);
      ("rpc_retries", Json.Int s.s_rpc_retries);
      ("fault_p50_us", Json.Float s.s_fault_p50_us);
      ("fault_p90_us", Json.Float s.s_fault_p90_us);
      ("fault_p99_us", Json.Float s.s_fault_p99_us);
      ("fault_p999_us", Json.Float s.s_fault_p999_us);
    ]

let case_result_to_json cr =
  let c = cr.cr_case in
  Json.Obj
    [
      ("id", Json.String c.c_id);
      ("app", Json.String c.c_app);
      ("protocol", Json.String c.c_protocol);
      ("driver", Json.String c.c_driver);
      ("nodes", Json.Int c.c_nodes);
      ("quick", Json.Bool c.c_quick);
      ("params", Json.Obj (List.map (fun (k, v) -> (k, Json.Int v)) c.c_params));
      ("meta", Run_meta.to_json cr.cr_meta);
      ("samples", Json.List (List.map sample_to_json cr.cr_samples));
    ]

let to_json t =
  Json.Obj
    [
      ("schema", Json.String schema_version);
      ("meta", Run_meta.to_json t.bs_meta);
      ("cases", Json.List (List.map case_result_to_json t.bs_results));
    ]

(* --- parsing (the differ loads baselines through this) --- *)

let ( let* ) = Option.bind

let sample_of_json j =
  let int name = Option.bind (Json.member name j) Json.to_int in
  let flt name = Option.bind (Json.member name j) Json.to_float in
  let* s_seed = int "seed" in
  let* s_time_us = flt "time_us" in
  let* s_messages = int "messages" in
  let* s_bytes = int "bytes" in
  let* s_read_faults = int "read_faults" in
  let* s_write_faults = int "write_faults" in
  (* Fault counters joined the schema after the first baselines were
     committed; absent means a fault-free run, so default to zero. *)
  let s_dropped = Option.value (int "dropped") ~default:0 in
  let s_rpc_retries = Option.value (int "rpc_retries") ~default:0 in
  let* s_fault_p50_us = flt "fault_p50_us" in
  let* s_fault_p90_us = flt "fault_p90_us" in
  let* s_fault_p99_us = flt "fault_p99_us" in
  (* p99.9 joined with the telemetry sketches; absent in older baselines. *)
  let s_fault_p999_us = Option.value (flt "fault_p999_us") ~default:0. in
  Some
    {
      s_seed;
      s_time_us;
      s_messages;
      s_bytes;
      s_read_faults;
      s_write_faults;
      s_dropped;
      s_rpc_retries;
      s_fault_p50_us;
      s_fault_p90_us;
      s_fault_p99_us;
      s_fault_p999_us;
    }

let case_result_of_json j =
  let str name = Option.bind (Json.member name j) Json.to_str in
  let int name = Option.bind (Json.member name j) Json.to_int in
  let* c_id = str "id" in
  let* c_app = str "app" in
  let* c_protocol = str "protocol" in
  let* c_driver = str "driver" in
  let* c_nodes = int "nodes" in
  let c_quick =
    match Option.bind (Json.member "quick" j) Json.to_bool with
    | Some b -> b
    | None -> false
  in
  let* c_params =
    match Json.member "params" j with
    | Some (Json.Obj kvs) ->
        List.fold_left
          (fun acc (k, v) ->
            let* acc = acc in
            let* v = Json.to_int v in
            Some ((k, v) :: acc))
          (Some []) kvs
        |> Option.map List.rev
    | _ -> Some []
  in
  let* meta_json = Json.member "meta" j in
  let* cr_meta = Result.to_option (Run_meta.of_json meta_json) in
  let* samples_json = Option.bind (Json.member "samples" j) Json.to_list in
  let* cr_samples =
    List.fold_left
      (fun acc sj ->
        let* acc = acc in
        let* s = sample_of_json sj in
        Some (s :: acc))
      (Some []) samples_json
    |> Option.map List.rev
  in
  Some
    {
      cr_case =
        { c_id; c_app; c_protocol; c_driver; c_nodes; c_params; c_quick };
      cr_meta;
      cr_samples;
    }

let of_json j =
  match Option.bind (Json.member "schema" j) Json.to_str with
  | None -> Error "not a macro-bench snapshot (no schema field)"
  | Some s when s <> schema_version ->
      Error
        (Printf.sprintf "unsupported schema %S (this build reads %S)" s
           schema_version)
  | Some _ -> (
      let meta =
        match Json.member "meta" j with
        | Some mj -> Run_meta.of_json mj
        | None -> Ok Run_meta.empty
      in
      match meta with
      | Error msg -> Error msg
      | Ok bs_meta -> (
          match Option.bind (Json.member "cases" j) Json.to_list with
          | None -> Error "no cases array"
          | Some cs -> (
              let rec parse acc i = function
                | [] -> Ok { bs_meta; bs_results = List.rev acc }
                | cj :: rest -> (
                    match case_result_of_json cj with
                    | Some cr -> parse (cr :: acc) (i + 1) rest
                    | None -> Error (Printf.sprintf "malformed case at index %d" i))
              in
              parse [] 0 cs)))

let load path =
  match Dsmpm2_sim.Gzip.read_file path with
  | Error msg -> Error (Printf.sprintf "%s: %s" path msg)
  | Ok contents -> (
      match Json.of_string contents with
      | Error msg -> Error (Printf.sprintf "%s: %s" path msg)
      | Ok j -> (
          match of_json j with
          | Ok t -> Ok t
          | Error msg -> Error (Printf.sprintf "%s: %s" path msg)))

(* --- report --- *)

let print ppf t =
  Format.fprintf ppf "%-38s %5s %12s %10s %10s %8s %12s@." "case" "runs"
    "time(us)" "±σ" "msgs" "faults" "fault p99(us)";
  List.iter
    (fun cr ->
      let faults =
        metric_mean cr "read_faults" +. metric_mean cr "write_faults"
      in
      Format.fprintf ppf "%-38s %5d %12.1f %10.1f %10.0f %8.0f %12.1f@."
        cr.cr_case.c_id
        (List.length cr.cr_samples)
        (metric_mean cr "time_us")
        (metric_stddev cr "time_us")
        (metric_mean cr "messages")
        faults
        (metric_mean cr "fault_p99_us"))
    t.bs_results

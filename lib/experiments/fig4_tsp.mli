(** Figure 4: TSP with 14 random cities under 4 protocols (BIP/Myrinet).

    Reproduces the paper's comparison of the two sequential-consistency and
    two release-consistency protocols on the lock-centric TSP program, with
    one application thread per node.  The headline shape: all page-based
    protocols perform comparably, while [migrate_thread] is clearly slower
    because every worker migrates to the node holding the shared bound and
    overloads it. *)

type cell = {
  protocol : string;
  nodes : int;
  time_ms : float;
  best : int;
  migrations : int;
  workers_on_node0 : int;  (** how many workers finished on node 0 *)
}

type data = { cities : int; seed : int; sequential_best : int; cells : cell list }

val protocols : string list
(** The four protocols of the figure, in its order. *)

val run : ?cities:int -> ?seed:int -> ?node_counts:int list -> unit -> data
(** Defaults: 14 cities, seed 42, nodes [1; 2; 4; 8]. *)

val print : Format.formatter -> data -> unit

val to_json : data -> Dsmpm2_sim.Json.t

(** Ablation studies for the design discussion in the paper's Section 4.

    (a) Stack size: "the migration time is closely related to the stack size
    of the thread", so "choosing between the implementation based on page
    transfer and the one based on thread migration deserves careful
    attention".  We sweep the faulting thread's stack size on every driver
    and report the cold-read-fault cost under both policies, exposing the
    crossover the paper predicts.

    (b) Synchronization frequency: the TSP workers refresh their bound under
    the lock every [refresh_period] expansions; sweeping it shows how each
    protocol's cost scales with synchronization rate (and that
    [migrate_thread]'s pile-up is not an artefact of one setting).

    (c) Page-manager strategy: the generic page table supports both manager
    disciplines of Li & Hudak's classification.  A chain of successive
    writers moves ownership around; a late reader then faults.  We compare
    the dynamic distributed manager (probable-owner chains with path
    compression) against the fixed manager (two-hop via the home) in
    request traffic and read latency.

    (d) Dynamic load balancing: the paper presents preemptive thread
    migration as the vehicle for "generic policies for dynamic load
    balancing" (Section 2.1) and notes that [migrate_thread]'s TSP loss
    comes from every worker piling up on the bound's node.  Running PM2's
    load balancer alongside the same program measures how much of that loss
    generic balancing recovers. *)

type stack_row = {
  driver : string;
  stack_bytes : int;
  page_transfer_us : float;
  thread_migration_us : float;
}

type refresh_row = { protocol : string; refresh_period : int; time_ms : float }

type manager_row = {
  manager : string;  (** "dynamic" (li_hudak) or "fixed" (li_hudak_fixed) *)
  writers : int;  (** ownership hand-offs before the measured read *)
  request_messages : int;
  read_latency_us : float;  (** the late reader's cold fault *)
}

type balance_row = {
  balanced : bool;
  nodes_used : int;
  tsp_time_ms : float;
  thread_migrations : int;
  balancer_moves : int;
}

type data = {
  stack : stack_row list;
  refresh : refresh_row list;
  manager : manager_row list;
  balance : balance_row list;
}

val run : unit -> data
val print : Format.formatter -> data -> unit

val to_json : data -> Dsmpm2_sim.Json.t

(** Differential run comparison ([dsm diff]).

    Takes two observability artifacts — two [BENCH_macro.json] snapshots
    ({!Bench_suite}), or two JSONL trace dumps — and reports what actually
    changed between them:

    - {b per-case metric deltas} (bench mode), with a noise bound derived
      from each case's repeated-seed spread: a delta only counts when it
      clears both [noise_sigma]·σ and the relative threshold, so schedule
      sensitivity does not read as regression;
    - {b critical-path stage shifts} (trace mode), per protocol and stage,
      using the same stage arithmetic as {!Analyze};
    - {b per-page sharing-pattern drift} — pages whose {!Analyze.pattern}
      classification changed between the runs;
    - {b new and vanished watchdog alerts}, grouped by severity and kind.

    Comparisons are refused ({!diff} returns [Error]) when the two sides'
    {!Dsmpm2_sim.Run_meta} identities disagree — different tie seeds,
    drivers, protocols, node counts or case parameters are apples to
    oranges.  The git revision is exempt: comparing two code revisions is
    the point.  [~force:true] overrides the refusal.

    The verdict {!significant_regression} is what the CLI turns into exit
    code 1: some case's simulated wall clock regressed beyond noise, or
    some critical-path stage slowed beyond the threshold. *)

open Dsmpm2_sim

val default_threshold_pct : float
(** Relative significance threshold, percent ([2.0]). *)

val noise_sigma : float
(** The repeated-seed spread multiplier in the noise bound ([3.0]). *)

(** {2 Sources} *)

type source =
  | Bench of Bench_suite.t
  | Run of Run_meta.t * Analyze.t
      (** An analyzed trace dump; the metadata is whatever the artifact
          carried (a raw JSONL trace carries none). *)

val load_source : string -> (source, string) result
(** Reads an artifact from disk (gzip-transparent): a JSON document with
    the {!Bench_suite.schema_version} schema loads as [Bench]; anything
    else must parse as a JSONL trace dump and loads as [Run]. *)

(** {2 Deltas} *)

type direction = Better | Worse | Same

type metric_delta = {
  md_metric : string;  (** a {!Bench_suite.metric_names} member *)
  md_base : float;  (** baseline mean over seeds *)
  md_fresh : float;
  md_delta : float;  (** fresh - base *)
  md_pct : float;  (** relative to base; [0.] when base is 0 *)
  md_noise : float;  (** [noise_sigma]·max(σ_base, σ_fresh) *)
  md_significant : bool;
  md_direction : direction;  (** [Worse] = higher (all metrics are costs) *)
}

type case_delta = {
  cd_id : string;
  cd_metrics : metric_delta list;  (** in {!Bench_suite.metric_names} order *)
}

type stage_delta = {
  sd_protocol : string;
  sd_stage : string;  (** an {!Analyze.stage_order} member *)
  sd_base_mean_us : float;
  sd_fresh_mean_us : float;
  sd_base_p90_us : float;
  sd_fresh_p90_us : float;
  sd_base_samples : int;
  sd_fresh_samples : int;
  sd_pct : float;  (** mean shift relative to base *)
  sd_significant : bool;
  sd_direction : direction;
}

type pattern_drift = {
  pd_page : int;
  pd_base : string;  (** {!Analyze.pattern_to_string} of each side *)
  pd_fresh : string;
}

type alert_delta = {
  al_severity : string;
  al_kind : string;
  al_base : int;  (** occurrences on each side; 0 = new or vanished *)
  al_fresh : int;
}

type t = {
  rd_mode : [ `Bench | `Trace ];
  rd_threshold_pct : float;
  rd_cases : case_delta list;
  rd_only_baseline : string list;  (** case ids with no fresh counterpart *)
  rd_only_fresh : string list;
  rd_stages : stage_delta list;
  rd_patterns : pattern_drift list;
  rd_alerts : alert_delta list;
}

val diff :
  ?threshold_pct:float ->
  ?force:bool ->
  baseline:source ->
  fresh:source ->
  unit ->
  (t, string) result
(** [Error] on mixed source kinds or on a {!Dsmpm2_sim.Run_meta} identity
    mismatch (suite-level and per matched case) unless [force]. *)

val significant_regression : t -> bool
(** True when some case's [time_us] regressed significantly, or (trace
    mode) some stage's mean slowed beyond the threshold. *)

val regressions : t -> string list
(** One human-readable line per significant regression, for error output. *)

val improvements : t -> string list
(** The same for significant improvements — good news is reported too. *)

(** {2 Rendering} *)

val pp_text : Format.formatter -> t -> unit
val pp_markdown : Format.formatter -> t -> unit

val to_json : t -> Json.t
(** Machine-readable form of the whole comparison, including the verdict. *)

open Dsmpm2_sim
open Dsmpm2_net
open Dsmpm2_core
open Dsmpm2_protocols

type cell = {
  pattern : string;
  protocol : string;
  time_ms : float;
  correct : bool;
  read_faults : int;
  write_faults : int;
  pages_sent : int;
  diff_bytes : int;
  messages : int;
}

let patterns = [ "migratory"; "producer_consumer"; "read_mostly"; "false_sharing" ]

let protocols =
  [
    "li_hudak"; "li_hudak_fixed"; "migrate_thread"; "erc_sw"; "hbrc_mw";
    "java_pf"; "entry_ec"; "write_update";
  ]

let nodes = 4
let rounds = 20

(* The authoritative copy of [addr] at quiescence: the node holding write
   access (MRSW owner) if any, else the home's reference copy. *)
let authoritative dsm addr =
  let rec find n =
    if n >= nodes then Dsm.unsafe_peek dsm ~node:0 addr
    else if Dsm.unsafe_rights dsm ~node:n ~addr = Dsmpm2_mem.Access.Read_write then
      Dsm.unsafe_peek dsm ~node:n addr
    else find (n + 1)
  in
  find 0

(* One datum bounced around under a lock: each node increments it [rounds]
   times; the final count is the oracle. *)
let migratory dsm proto =
  let x = Dsm.malloc dsm ~protocol:proto ~home:(Dsm.On_node 0) 8 in
  let lock = Dsm.lock_create dsm ~protocol:proto () in
  for node = 0 to nodes - 1 do
    ignore
      (Dsm.spawn dsm ~node (fun () ->
           for _ = 1 to rounds do
             Dsm.with_lock dsm lock (fun () ->
                 Dsm.write_int dsm x (Dsm.read_int dsm x + 1));
             Dsm.compute dsm 100.
           done))
  done;
  fun () -> authoritative dsm x = nodes * rounds

(* Node 0 produces a 16-word block each phase; consumers read and sum it
   after the barrier. *)
let producer_consumer dsm proto =
  let words = 16 in
  let block = Dsm.malloc dsm ~protocol:proto ~home:(Dsm.On_node 0) (words * 8) in
  let barrier = Dsm.barrier_create dsm ~protocol:proto ~parties:nodes () in
  let ok = ref true in
  for node = 0 to nodes - 1 do
    ignore
      (Dsm.spawn dsm ~node (fun () ->
           for phase = 1 to rounds do
             if node = 0 then
               for w = 0 to words - 1 do
                 Dsm.write_int dsm (block + (w * 8)) ((phase * 100) + w)
               done;
             Dsm.barrier_wait dsm barrier;
             if node <> 0 then begin
               let sum = ref 0 in
               for w = 0 to words - 1 do
                 sum := !sum + Dsm.read_int dsm (block + (w * 8))
               done;
               let expected = (words * phase * 100) + (words * (words - 1) / 2) in
               if !sum <> expected then ok := false
             end;
             Dsm.barrier_wait dsm barrier
           done))
  done;
  fun () -> !ok

(* Everybody hammers reads; node 0 writes occasionally under a lock. *)
let read_mostly dsm proto =
  let x = Dsm.malloc dsm ~protocol:proto ~home:(Dsm.On_node 0) 8 in
  let lock = Dsm.lock_create dsm ~protocol:proto () in
  let monotone = ref true in
  for node = 0 to nodes - 1 do
    ignore
      (Dsm.spawn dsm ~node (fun () ->
           let last = ref 0 in
           for round = 1 to rounds * 4 do
             if node = 0 && round mod 16 = 0 then
               Dsm.with_lock dsm lock (fun () ->
                   Dsm.write_int dsm x (Dsm.read_int dsm x + 1))
             else begin
               let v = Dsm.with_lock dsm lock (fun () -> Dsm.read_int dsm x) in
               if v < !last then monotone := false;
               last := v
             end;
             Dsm.compute dsm 50.
           done))
  done;
  fun () -> !monotone && Dsm.unsafe_peek dsm ~node:0 x > 0

(* Disjoint words of one page written concurrently by all nodes: page-level
   false sharing, variable-level race freedom. *)
let false_sharing dsm proto =
  let page_addr = Dsm.malloc dsm ~protocol:proto ~home:(Dsm.On_node 0) 4096 in
  let barrier = Dsm.barrier_create dsm ~protocol:proto ~parties:nodes () in
  for node = 0 to nodes - 1 do
    ignore
      (Dsm.spawn dsm ~node (fun () ->
           let addr = page_addr + (node * 8) in
           for round = 1 to rounds do
             Dsm.write_int dsm addr ((node * 1000) + round);
             Dsm.compute dsm 100.;
             ignore round
           done;
           Dsm.barrier_wait dsm barrier))
  done;
  fun () ->
    (* after the final barrier every node's slot holds its last write *)
    let ok = ref true in
    for node = 0 to nodes - 1 do
      if authoritative dsm (page_addr + (node * 8)) <> (node * 1000) + rounds then
        ok := false
    done;
    !ok

let run_one ~pattern ~protocol =
  let dsm = Dsm.create ~nodes ~driver:Driver.bip_myrinet () in
  ignore (Builtin.register_all dsm);
  ignore (Builtin.register_extras dsm);
  let proto = Option.get (Dsm.protocol_by_name dsm protocol) in
  let check =
    match pattern with
    | "migratory" -> migratory dsm proto
    | "producer_consumer" -> producer_consumer dsm proto
    | "read_mostly" -> read_mostly dsm proto
    | "false_sharing" -> false_sharing dsm proto
    | other -> invalid_arg ("Sharing_patterns: unknown pattern " ^ other)
  in
  Dsm.run dsm;
  let stats = Dsm.stats dsm in
  {
    pattern;
    protocol;
    time_ms = Dsm.now_us dsm /. 1000.;
    correct = check ();
    read_faults = Stats.count stats Instrument.read_faults;
    write_faults = Stats.count stats Instrument.write_faults;
    pages_sent = Stats.count stats Instrument.pages_sent;
    diff_bytes = Stats.count stats Instrument.diff_bytes;
    messages = Network.messages_sent (Dsmpm2_pm2.Pm2.network (Dsm.pm2 dsm));
  }

let run () =
  List.concat_map
    (fun pattern -> List.map (fun protocol -> run_one ~pattern ~protocol) protocols)
    patterns

let print ppf cells =
  Format.fprintf ppf
    "Sharing-pattern study (4 nodes, BIP/Myrinet, %d rounds per node)@." rounds;
  List.iter
    (fun pattern ->
      Format.fprintf ppf "@.%s:@." pattern;
      Format.fprintf ppf "  %-16s %10s %8s %8s %8s %8s %10s@." "protocol" "time(ms)"
        "correct" "rfaults" "wfaults" "pages" "diffbytes";
      List.iter
        (fun c ->
          if c.pattern = pattern then
            Format.fprintf ppf "  %-16s %10.1f %8b %8d %8d %8d %10d@." c.protocol
              c.time_ms c.correct c.read_faults c.write_faults c.pages_sent
              c.diff_bytes)
        cells)
    patterns

let to_json cells =
  Json.List
    (List.map
       (fun c ->
         Json.Obj
           [
             ("pattern", Json.String c.pattern);
             ("protocol", Json.String c.protocol);
             ("time_ms", Json.Float c.time_ms);
             ("correct", Json.Bool c.correct);
             ("read_faults", Json.Int c.read_faults);
             ("write_faults", Json.Int c.write_faults);
             ("pages_sent", Json.Int c.pages_sent);
             ("diff_bytes", Json.Int c.diff_bytes);
             ("messages", Json.Int c.messages);
           ])
       cells)

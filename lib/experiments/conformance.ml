open Dsmpm2_sim
open Dsmpm2_net
open Dsmpm2_pm2
open Dsmpm2_core
open Dsmpm2_protocols

(* The `dsm check` conformance harness: run small shared-memory workloads
   under seeded schedule perturbation (Engine tie-breaking) plus seeded
   network jitter, record the execution history, and validate it against the
   consistency model each protocol declares.  Every seed is a distinct legal
   interleaving; every failure replays from its seed. *)

type workload = Lock_ladder | Barrier_phases | Racy_poll | Mixed_sync

let workloads = [ Lock_ladder; Barrier_phases; Racy_poll; Mixed_sync ]

let workload_name = function
  | Lock_ladder -> "lock_ladder"
  | Barrier_phases -> "barrier_phases"
  | Racy_poll -> "racy_poll"
  | Mixed_sync -> "mixed_sync"

let workload_by_name n =
  List.find_opt (fun w -> workload_name w = n) workloads

let all_protocols =
  [
    "li_hudak"; "migrate_thread"; "erc_sw"; "hbrc_mw"; "java_ic"; "java_pf";
    "li_hudak_fixed"; "hybrid_rw"; "entry_ec"; "write_update"; "sc_abd";
  ]
let nodes = 3

(* The post-mortem value of a word, per the recorded history: the last write
   in record order.  For lock- or barrier-ordered writes the record order is
   the synchronization order, so this is the value a correctly synchronized
   reader would observe next.  Peeking some node's frame instead would be
   unsound — java-family caches keep read-write rights on stale replicas
   that were simply never re-acquired. *)
let final_written hist addr =
  List.fold_left
    (fun acc (op : History.op) ->
      match op.History.kind with
      | History.Write { addr = a; value } when a = addr -> Some value
      | _ -> acc)
    None (History.ops hist)

(* A correct protocol must leave the final value on at least one node that
   still has rights to the page — the owner, or the home after the closing
   flush.  Catches a broken flush path that no later read happens to expose.
   The per-access quorum family is the exception: it revokes rights after
   every access, so at rest {e no} node holds rights — there the equivalent
   durability invariant is the final value at a majority of frames. *)
let some_replica_holds dsm addr value =
  let n = Dsm.nodes dsm in
  let rec find node =
    node < n
    && ((Dsm.unsafe_rights dsm ~node ~addr <> Dsmpm2_mem.Access.No_access
         && Dsm.unsafe_peek dsm ~node addr = value)
       || find (node + 1))
  in
  let any_rights =
    let rec some node =
      node < n
      && (Dsm.unsafe_rights dsm ~node ~addr <> Dsmpm2_mem.Access.No_access
         || some (node + 1))
    in
    some 0
  in
  if any_rights then find 0
  else begin
    let holders = ref 0 in
    for node = 0 to n - 1 do
      if Dsm.unsafe_peek dsm ~node addr = value then incr holders
    done;
    !holders >= (n / 2) + 1
  end

let check_var dsm hist ~what addr ~expected =
  let got = Option.value ~default:0 (final_written hist addr) in
  if got <> expected then
    Some (Printf.sprintf "%s: expected %d, final write is %d" what expected got)
  else if not (some_replica_holds dsm addr expected) then
    Some (Printf.sprintf "%s: no live replica holds final value %d" what expected)
  else None

let bind_if_entry_ec dsm ~protocol ~lock ~addr =
  if Dsm.protocol_name dsm protocol = "entry_ec" then
    Entry_ec.bind dsm ~lock ~addr ~size:8

(* Each builder wires the workload's threads into [dsm] and returns a
   post-run result check (None = result correct, Some msg = wrong answer —
   a violation even when the history itself is explainable). *)

let build_lock_ladder dsm ~protocol ~seed =
  let rng = Rng.create ~seed:(seed lxor 0x9e3779b9) in
  let nvars = 2 and ops = 4 in
  let vars =
    Array.init nvars (fun i ->
        Dsm.malloc dsm ~protocol ~home:(Dsm.On_node (i mod nodes)) 8)
  in
  let locks = Array.init nvars (fun _ -> Dsm.lock_create dsm ~protocol ()) in
  Array.iteri (fun i lock -> bind_if_entry_ec dsm ~protocol ~lock ~addr:vars.(i)) locks;
  let plans =
    Array.init nodes (fun _ -> Array.init ops (fun _ -> Rng.int rng nvars))
  in
  let expected = Array.make nvars 0 in
  Array.iter (Array.iter (fun v -> expected.(v) <- expected.(v) + 1)) plans;
  for node = 0 to nodes - 1 do
    ignore
      (Dsm.spawn dsm ~node (fun () ->
           Array.iter
             (fun v ->
               Dsm.with_lock dsm locks.(v) (fun () ->
                   Dsm.write_int dsm vars.(v) (Dsm.read_int dsm vars.(v) + 1));
               Dsm.compute dsm 80.)
             plans.(node)))
  done;
  fun hist ->
    let bad = ref None in
    Array.iteri
      (fun i v ->
        if !bad = None then
          bad :=
            check_var dsm hist
              ~what:(Printf.sprintf "var %d locked increments" i)
              v ~expected:expected.(i))
      vars;
    !bad

let build_barrier_phases dsm ~protocol ~seed:_ =
  let x = Dsm.malloc dsm ~protocol ~home:(Dsm.On_node 0) 8 in
  let barrier = Dsm.barrier_create dsm ~protocol ~parties:nodes () in
  let phases = 3 in
  for node = 0 to nodes - 1 do
    ignore
      (Dsm.spawn dsm ~node (fun () ->
           for p = 0 to phases - 1 do
             if p mod nodes = node then Dsm.write_int dsm x (p + 1);
             Dsm.barrier_wait dsm barrier;
             ignore (Dsm.read_int dsm x);
             Dsm.barrier_wait dsm barrier
           done))
  done;
  fun hist -> check_var dsm hist ~what:"final phase value" x ~expected:phases

let build_racy_poll dsm ~protocol ~seed:_ =
  (* Deliberately unsynchronized: one writer, two pollers.  No expected
     result — the point is what staleness the declared model tolerates. *)
  let x = Dsm.malloc dsm ~protocol ~home:(Dsm.On_node 0) 8 in
  ignore
    (Dsm.spawn dsm ~node:0 (fun () ->
         Dsm.compute dsm 500.;
         Dsm.write_int dsm x 1;
         Dsm.compute dsm 1_500.;
         Dsm.write_int dsm x 2));
  for node = 1 to nodes - 1 do
    ignore
      (Dsm.spawn dsm ~node (fun () ->
           for _ = 1 to 8 do
             ignore (Dsm.read_int dsm x);
             Dsm.compute dsm (float_of_int (250 + (70 * node)))
           done))
  done;
  fun _hist -> None

let build_mixed_sync dsm ~protocol ~seed:_ =
  (* Locks and barriers interleaved on one protocol: a lock-guarded counter
     incremented each phase, a barrier between phases, and unlocked reads of
     the counter right after the barrier (legal: the barrier publishes the
     increments of the previous phase). *)
  let c = Dsm.malloc dsm ~protocol ~home:(Dsm.On_node 0) 8 in
  let lock = Dsm.lock_create dsm ~protocol () in
  bind_if_entry_ec dsm ~protocol ~lock ~addr:c;
  let barrier = Dsm.barrier_create dsm ~protocol ~parties:nodes () in
  let phases = 2 in
  for node = 0 to nodes - 1 do
    ignore
      (Dsm.spawn dsm ~node (fun () ->
           for _ = 0 to phases - 1 do
             Dsm.with_lock dsm lock (fun () ->
                 Dsm.write_int dsm c (Dsm.read_int dsm c + 1));
             Dsm.barrier_wait dsm barrier;
             ignore (Dsm.read_int dsm c);
             Dsm.barrier_wait dsm barrier
           done))
  done;
  fun hist ->
    check_var dsm hist ~what:"locked increments" c ~expected:(nodes * phases)

let build dsm ~protocol workload ~seed =
  match workload with
  | Lock_ladder -> build_lock_ladder dsm ~protocol ~seed
  | Barrier_phases -> build_barrier_phases dsm ~protocol ~seed
  | Racy_poll -> build_racy_poll dsm ~protocol ~seed
  | Mixed_sync -> build_mixed_sync dsm ~protocol ~seed

type outcome = {
  o_seed : int;
  o_workload : string;
  o_driver : string;
  o_violations : History.violation list;
  o_wrong_result : string option;
  o_fingerprint : int;
  o_ops : int;
}

let outcome_failed o = o.o_violations <> [] || o.o_wrong_result <> None

let run_one_dsm ~monitor ~protocol ~driver ~workload ~seed =
  let jitter = Network.seeded_jitter ~seed () in
  let dsm = Dsm.create ~tie_seed:seed ~jitter ~nodes ~driver () in
  ignore (Builtin.register_all dsm);
  ignore (Builtin.register_extras dsm);
  (* Monitoring only records events — it never perturbs the schedule, so a
     traced replay is the same execution as the bare run.  The same holds
     for the watchdog: its sampler runs on observer events that never draw
     from the tie-key stream, so its invariant audits and alerts ride along
     without changing the fingerprint. *)
  if monitor then begin
    Monitor.enable dsm true;
    ignore (Watchdog.attach dsm)
  end;
  let proto_id =
    match Dsm.protocol_by_name dsm protocol with
    | Some id -> id
    | None -> invalid_arg (Printf.sprintf "Conformance: unknown protocol %s" protocol)
  in
  let hist = Dsm.enable_history dsm in
  let check_result = build dsm ~protocol:proto_id workload ~seed in
  Dsm.run dsm;
  let model = (Runtime.proto dsm proto_id).Protocol.model in
  ( {
      o_seed = seed;
      o_workload = workload_name workload;
      o_driver = driver.Driver.name;
      o_violations = History.check ~model hist;
      o_wrong_result = check_result hist;
      o_fingerprint = History.fingerprint hist;
      o_ops = History.length hist;
    },
    dsm )

let run_one ~protocol ~driver ~workload ~seed =
  fst (run_one_dsm ~monitor:false ~protocol ~driver ~workload ~seed)

let run_one_traced ~protocol ~driver ~workload ~seed =
  run_one_dsm ~monitor:true ~protocol ~driver ~workload ~seed

type verdict = {
  v_protocol : string;
  v_model : Protocol.model;
  v_runs : int;
  v_failures : int;
  v_first_failure : outcome option;
}

let model_of_protocol protocol =
  (* Registration is cheap; build a throw-away runtime to read the declared
     model off the registry. *)
  let dsm = Dsm.create ~nodes:1 ~driver:Driver.bip_myrinet () in
  ignore (Builtin.register_all dsm);
  ignore (Builtin.register_extras dsm);
  match Dsm.protocol_by_name dsm protocol with
  | Some id -> (Runtime.proto dsm id).Protocol.model
  | None -> invalid_arg (Printf.sprintf "Conformance: unknown protocol %s" protocol)

let sweep ?(protocols = all_protocols) ?(drivers = Driver.all)
    ?(workload_list = workloads) ?(progress = fun _ -> ()) ~seeds () =
  List.map
    (fun protocol ->
      let runs = ref 0 and failures = ref 0 in
      let first = ref None in
      List.iter
        (fun driver ->
          List.iter
            (fun workload ->
              for seed = 0 to seeds - 1 do
                incr runs;
                let o = run_one ~protocol ~driver ~workload ~seed in
                if outcome_failed o then begin
                  incr failures;
                  if !first = None then first := Some o
                end
              done;
              progress (Printf.sprintf "%s/%s/%s" protocol driver.Driver.name
                          (workload_name workload)))
            workload_list)
        drivers;
      {
        v_protocol = protocol;
        v_model = model_of_protocol protocol;
        v_runs = !runs;
        v_failures = !failures;
        v_first_failure = !first;
      })
    protocols

let print_outcome ppf o =
  Format.fprintf ppf "    seed %d, %s, %s (%d ops recorded)@." o.o_seed o.o_driver
    o.o_workload o.o_ops;
  (match o.o_wrong_result with
  | Some msg -> Format.fprintf ppf "    wrong result: %s@." msg
  | None -> ());
  List.iteri
    (fun i v ->
      if i < 3 then
        Format.fprintf ppf "    %s@." (History.violation_to_string v))
    o.o_violations;
  if List.length o.o_violations > 3 then
    Format.fprintf ppf "    ... and %d more violations@."
      (List.length o.o_violations - 3)

let print ppf verdicts =
  Format.fprintf ppf "Conformance sweep: perturbed schedules vs declared models@.";
  Format.fprintf ppf "%-16s %-11s %7s %9s  %s@." "Protocol" "Model" "Runs"
    "Failures" "Verdict";
  List.iter
    (fun v ->
      Format.fprintf ppf "%-16s %-11s %7d %9d  %s@." v.v_protocol
        (Protocol.model_to_string v.v_model)
        v.v_runs v.v_failures
        (if v.v_failures = 0 then "PASS" else "FAIL");
      match v.v_first_failure with
      | Some o when v.v_failures > 0 ->
          Format.fprintf ppf "  first failing seed (replay with --replay %d):@."
            o.o_seed;
          print_outcome ppf o
      | _ -> ())
    verdicts

let to_json verdicts =
  Json.List
    (List.map
       (fun v ->
         Json.Obj
           [
             ("protocol", Json.String v.v_protocol);
             ("model", Json.String (Protocol.model_to_string v.v_model));
             ("runs", Json.Int v.v_runs);
             ("failures", Json.Int v.v_failures);
             ( "first_failing_seed",
               match v.v_first_failure with
               | Some o -> Json.Int o.o_seed
               | None -> Json.Null );
           ])
       verdicts)

let failed verdicts = List.exists (fun v -> v.v_failures > 0) verdicts

(* --- fault sweeps: the same grid under seeded crash/loss schedules --- *)

type fault_spec = {
  f_crashes : int;
  f_loss_pct : float;
  f_down_us : float;
  f_horizon_us : float;
  f_protect : int list;
}

(* Nodes 0 and 1 are protected because the workloads' lock managers live on
   [id mod nodes] (lock_ladder's two locks -> nodes 0 and 1) and the barrier
   manager on node 0: no protocol, quorum or not, survives losing the
   centralized manager of a lock it needs.  Node 2 is the crash victim —
   exactly the minority a 3-node quorum tolerates. *)
let default_fault_spec =
  {
    f_crashes = 2;
    f_loss_pct = 1.0;
    f_down_us = 300.;
    f_horizon_us = 4000.;
    f_protect = [ 0; 1 ];
  }

let plan_of_spec spec ~seed =
  Fault_plan.seeded ~nodes ~seed ~crashes:spec.f_crashes
    ~loss_pct:spec.f_loss_pct ~protect:spec.f_protect ~down_us:spec.f_down_us
    ~horizon_us:spec.f_horizon_us ()

type fault_outcome = {
  fo_seed : int;
  fo_workload : string;
  fo_plan : string;
  fo_crashed : string option;
  fo_stalled : bool;
  fo_violations : History.violation list;
  fo_wrong_result : string option;
  fo_alert_kinds : string list;
  fo_dropped : int;
  fo_retransmissions : int;
  fo_fingerprint : int;
  fo_explanations : Explain.explanation list;
}

let fault_outcome_failed o =
  o.fo_crashed <> None || o.fo_stalled || o.fo_violations <> []
  || o.fo_wrong_result <> None

(* Generous: total RPC patience under the default retry policy is ~4.5 ms
   per call and crash windows live inside a 4 ms horizon, so a run that has
   not drained by 100 ms of simulated time is genuinely stuck. *)
let fault_run_limit = Time.of_us 100_000.

let run_one_faulted ?(spec = default_fault_spec) ?(explain = false)
    ?trace_capacity ~protocol ~driver ~workload ~seed () =
  let jitter = Network.seeded_jitter ~seed () in
  let dsm = Dsm.create ~tie_seed:seed ~jitter ~nodes ~driver () in
  ignore (Builtin.register_all dsm);
  ignore (Builtin.register_extras dsm);
  Monitor.enable dsm true;
  (match trace_capacity with
  | Some cap -> Trace.set_capacity (Monitor.trace dsm) cap
  | None -> ());
  let watchdog = Watchdog.attach dsm in
  let proto_id =
    match Dsm.protocol_by_name dsm protocol with
    | Some id -> id
    | None -> invalid_arg (Printf.sprintf "Conformance: unknown protocol %s" protocol)
  in
  let plan = plan_of_spec spec ~seed in
  Dsm.inject_faults dsm plan;
  let hist = Dsm.enable_history dsm in
  let check_result = build dsm ~protocol:proto_id workload ~seed in
  let crashed, engine_stalled =
    match Dsm.run ~limit:fault_run_limit dsm with
    | () -> (None, false)
    | exception Engine.Stalled _ -> (None, true)
    | exception exn -> (Some (Printexc.to_string exn), false)
  in
  let marcel = Runtime.marcel dsm in
  let live =
    List.concat
      (List.init nodes (fun node -> Marcel.live_threads marcel ~node))
  in
  let stalled = engine_stalled || (crashed = None && live <> []) in
  let complete = crashed = None && not stalled in
  let model = (Runtime.proto dsm proto_id).Protocol.model in
  let net = Pm2.network (Dsm.pm2 dsm) in
  (* History and result checks only mean something for a run that drained:
     an aborted or stalled run already failed louder. *)
  let violations = if complete then History.check ~model hist else [] in
  let explanations =
    if not explain then []
    else
      let tr = Monitor.trace dsm in
      match violations with
      | _ :: _ ->
          List.map
            (fun (v : History.violation) ->
              let op = v.History.v_op in
              let page =
                match op.History.kind with
                | History.Read { addr; _ } | History.Write { addr; _ } ->
                    Dsmpm2_mem.Page.page_of_addr dsm.Runtime.geo addr
                | _ -> -1
              in
              Explain.explain_violation ~trace:tr ~node:op.History.node ~page
                ~at:op.History.finish
                ~detail:(History.violation_to_string v))
            violations
      | [] when crashed <> None || stalled ->
          (* No checker verdict to blame, but the run still failed loudly:
             explain each critical watchdog alert instead (deadlock.stall,
             node.dead, ...) — the same targets [dsm explain] uses on a raw
             dump. *)
          Explain.explain_trace tr
      | [] -> []
  in
  {
    fo_seed = seed;
    fo_workload = workload_name workload;
    fo_plan = Fault_plan.to_string plan;
    fo_crashed = crashed;
    fo_stalled = stalled;
    fo_violations = violations;
    fo_wrong_result = (if complete then check_result hist else None);
    fo_alert_kinds =
      List.sort_uniq String.compare
        (List.map (fun a -> a.Watchdog.al_kind) (Watchdog.alerts watchdog));
    fo_dropped = Network.messages_dropped net;
    fo_retransmissions = Rpc.retransmissions (Runtime.rpc dsm);
    fo_fingerprint = History.fingerprint hist;
    fo_explanations = explanations;
  }

type fault_verdict = {
  fv_protocol : string;
  fv_model : Protocol.model;
  fv_runs : int;
  fv_failures : int;
  fv_stalls : int;
  fv_crashes : int;
  fv_alert_kinds : string list;
  fv_first_failure : fault_outcome option;
}

let fault_sweep ?(protocols = all_protocols) ?(drivers = [ Driver.bip_myrinet ])
    ?(workload_list = workloads) ?(spec = default_fault_spec)
    ?(progress = fun _ -> ()) ?(explain = false) ?(on_failure = fun _ _ -> ())
    ~seeds () =
  List.map
    (fun protocol ->
      let runs = ref 0 and failures = ref 0 in
      let stalls = ref 0 and crashes = ref 0 in
      let kinds = ref [] in
      let first = ref None in
      List.iter
        (fun driver ->
          List.iter
            (fun workload ->
              for seed = 0 to seeds - 1 do
                incr runs;
                let o =
                  run_one_faulted ~spec ~explain ~protocol ~driver ~workload
                    ~seed ()
                in
                kinds := List.rev_append o.fo_alert_kinds !kinds;
                if o.fo_stalled then incr stalls;
                if o.fo_crashed <> None then incr crashes;
                if fault_outcome_failed o then begin
                  incr failures;
                  if !first = None then first := Some o;
                  on_failure protocol o
                end
              done;
              progress (Printf.sprintf "%s/%s/%s" protocol driver.Driver.name
                          (workload_name workload)))
            workload_list)
        drivers;
      {
        fv_protocol = protocol;
        fv_model = model_of_protocol protocol;
        fv_runs = !runs;
        fv_failures = !failures;
        fv_stalls = !stalls;
        fv_crashes = !crashes;
        fv_alert_kinds = List.sort_uniq String.compare !kinds;
        fv_first_failure = !first;
      })
    protocols

let print_fault_outcome ppf o =
  Format.fprintf ppf "    seed %d, %s@." o.fo_seed o.fo_workload;
  Format.fprintf ppf "    plan: %s@." o.fo_plan;
  (match o.fo_crashed with
  | Some msg -> Format.fprintf ppf "    crashed: %s@." msg
  | None -> ());
  if o.fo_stalled then
    Format.fprintf ppf "    stalled: threads still blocked at the run limit@.";
  (match o.fo_wrong_result with
  | Some msg -> Format.fprintf ppf "    wrong result: %s@." msg
  | None -> ());
  List.iteri
    (fun i v ->
      if i < 3 then Format.fprintf ppf "    %s@." (History.violation_to_string v))
    o.fo_violations;
  List.iteri
    (fun i x ->
      if i < 3 then
        List.iter
          (fun c ->
            Format.fprintf ppf "      because: %s@." (Explain.cause_to_string c))
          (Explain.causes x))
    o.fo_explanations;
  Format.fprintf ppf "    alerts: [%s]; %d messages dropped, %d retransmissions@."
    (String.concat ", " o.fo_alert_kinds)
    o.fo_dropped o.fo_retransmissions

let print_faults ppf verdicts =
  Format.fprintf ppf
    "Fault sweep: seeded crash windows + message loss vs declared models@.";
  Format.fprintf ppf "%-16s %-11s %5s %9s %7s %8s  %s@." "Protocol" "Model"
    "Runs" "Failures" "Stalls" "Crashes" "Verdict";
  List.iter
    (fun v ->
      Format.fprintf ppf "%-16s %-11s %5d %9d %7d %8d  %s  [%s]@." v.fv_protocol
        (Protocol.model_to_string v.fv_model)
        v.fv_runs v.fv_failures v.fv_stalls v.fv_crashes
        (if v.fv_failures = 0 then "PASS" else "FAIL")
        (String.concat ", " v.fv_alert_kinds);
      match v.fv_first_failure with
      | Some o when v.fv_failures > 0 ->
          Format.fprintf ppf "  first failing seed:@.";
          print_fault_outcome ppf o
      | _ -> ())
    verdicts

let faults_to_json verdicts =
  Json.List
    (List.map
       (fun v ->
         Json.Obj
           [
             ("protocol", Json.String v.fv_protocol);
             ("model", Json.String (Protocol.model_to_string v.fv_model));
             ("runs", Json.Int v.fv_runs);
             ("failures", Json.Int v.fv_failures);
             ("stalls", Json.Int v.fv_stalls);
             ("crashes", Json.Int v.fv_crashes);
             ( "alert_kinds",
               Json.List (List.map (fun k -> Json.String k) v.fv_alert_kinds) );
             ( "first_failing_seed",
               match v.fv_first_failure with
               | Some o -> Json.Int o.fo_seed
               | None -> Json.Null );
           ])
       verdicts)

let faults_failed verdicts = List.exists (fun v -> v.fv_failures > 0) verdicts

(** Canonical sharing-pattern micro-applications across all protocols.

    The paper's evaluation ends: "a more complete analysis is necessary to
    study the behavior of the DSM-PM2 protocols with respect to different
    classes of applications illustrating various sharing patterns, access
    patterns, synchronization methods, etc.  This is part of our current
    work."  This experiment is that analysis, on four canonical patterns
    from the DSM literature:

    - {b migratory}: one datum read-modify-written by each node in turn
      under a lock (the classic ownership-chasing pattern);
    - {b producer/consumer}: one node writes a block each phase, every
      other node reads it after a barrier;
    - {b read-mostly}: everybody reads hot data continuously; a rare writer
      updates it;
    - {b false-sharing}: nodes concurrently write disjoint words of the
      same page (the multiple-writer protocols' home turf).

    For each (pattern, protocol) the harness reports simulated time,
    faults, page traffic and diff bytes — and checks the final memory
    against the pattern's oracle, so the matrix doubles as a correctness
    sweep. *)

type cell = {
  pattern : string;
  protocol : string;
  time_ms : float;
  correct : bool;
  read_faults : int;
  write_faults : int;
  pages_sent : int;
  diff_bytes : int;
  messages : int;
}

val patterns : string list
val protocols : string list
val run_one : pattern:string -> protocol:string -> cell
val run : unit -> cell list
val print : Format.formatter -> cell list -> unit

val to_json : cell list -> Dsmpm2_sim.Json.t

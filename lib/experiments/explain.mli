(** Causal blame engine: from a violating read or critical alert back to
    the injected fault that explains it.

    The fault layer stamps every injected event into the trace as typed
    events ([Trace.Drop]/[Blackhole] for lost messages — carrying the
    sending operation's span — [Crash]/[Restart] for crash-window bounds,
    [Rpc_retry] for retransmissions).  Protocol events already share a span
    id per logical operation, carried across nodes inside the messages.
    This module stitches the two into a causal DAG and slices backward from
    a target: the spans that touched the target's page before the target
    instant, the nodes those spans ran across, and the injected faults
    reachable from them.

    The primary causes are dropped messages inside a seed span (the exact
    message whose loss starved the target) and crash windows on involved
    nodes; retransmission storms are kept as supporting evidence.  When no
    span-attributed drop exists (retransmitted requests go out in timer
    context, span-less), drops on links between involved nodes are the
    fallback.  An explanation with an empty cause list means the slice
    reaches no injected fault — on an expected-vulnerable sweep that is a
    forensics bug, and the CLI treats it as one. *)

open Dsmpm2_sim

type target = {
  t_kind : string;  (** ["violation"] or ["alert:<kind>"] *)
  t_node : int;
  t_page : int;  (** [-1] when the target names no page *)
  t_at : Time.t;
  t_detail : string;
}

type cause =
  | Dropped_message of {
      c_at : Time.t;
      c_src : int;
      c_dst : int;
      c_kind : string;  (** message-kind name, e.g. ["msg.request"] *)
      c_span : int;  (** the operation that lost the message, or [no_span] *)
      c_blackhole : bool;  (** crash-window swallow vs. seeded loss *)
      c_down : int;  (** the crashed node for blackholes, [-1] otherwise *)
    }
  | Crash_window of { c_node : int; c_down : Time.t; c_up : Time.t }
  | Retry_storm of {
      c_service : string;
      c_src : int;
      c_dst : int;
      c_attempts : int;
      c_last : Time.t;
    }

type explanation = {
  x_target : target;
  x_causes : cause list;  (** drops first, then crash windows, then storms *)
  x_spans : int list;  (** the seed spans, ascending *)
  x_slice : (Trace.entry * Trace.event) list;  (** chronological *)
}

val causes : explanation -> cause list
val target : explanation -> target

val explain : trace:Trace.t -> target -> explanation

val explain_violation :
  trace:Trace.t ->
  node:int ->
  page:int ->
  at:Time.t ->
  detail:string ->
  explanation
(** Blame a checker violation: the read completed on [node] at [at] and
    touched [page]. *)

val explain_alert :
  trace:Trace.t -> kind:string -> node:int -> at:Time.t -> detail:string -> explanation
(** Blame a watchdog alert; the page is parsed from [detail] when it
    mentions one ("page 7"). *)

val explain_trace : Trace.t -> explanation list
(** One explanation per critical alert in the trace — the entry point for
    [dsm explain <dump>], where no checker verdict is available. *)

val cause_to_string : cause -> string

val to_text : Format.formatter -> explanation -> unit
(** Human-readable: the target, the cause list, then the causal slice. *)

val to_json : explanation -> Json.t
(** Stable machine form: target, causes, seed spans and the slice (as
    {!Trace.event_to_json} objects).  Deterministic for a given trace —
    the explain-determinism tests compare these byte-for-byte. *)

val to_dot : Format.formatter -> explanation -> unit
(** Graphviz: one box per slice event with program-order edges inside each
    span, causes highlighted red with dashed edges into the target. *)

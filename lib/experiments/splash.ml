open Dsmpm2_apps

type cell = {
  kernel : string;
  protocol : string;
  time_ms : float;
  correct : bool;
  read_faults : int;
  write_faults : int;
  pages : int;
  diff_bytes : int;
}

let protocols = [ "li_hudak"; "erc_sw"; "hbrc_mw"; "migrate_thread" ]

let run () =
  let jacobi_ref =
    Jacobi.checksum_sequential ~size:Jacobi.default.Jacobi.size
      ~iterations:Jacobi.default.Jacobi.iterations
  in
  let matmul_ref =
    Matmul.checksum_sequential ~size:Matmul.default.Matmul.size
      ~seed:Matmul.default.Matmul.seed
  in
  let lu_ref =
    Lu.checksum_sequential ~size:Lu.default.Lu.size ~seed:Lu.default.Lu.seed
  in
  List.concat_map
    (fun protocol ->
      let j = Jacobi.run { Jacobi.default with Jacobi.protocol } in
      let m = Matmul.run { Matmul.default with Matmul.protocol } in
      let l = Lu.run { Lu.default with Lu.protocol } in
      let s = Sort.run { Sort.default with Sort.protocol } in
      [
        {
          kernel = "jacobi";
          protocol;
          time_ms = j.Jacobi.time_ms;
          correct = j.Jacobi.checksum = jacobi_ref;
          read_faults = j.Jacobi.read_faults;
          write_faults = j.Jacobi.write_faults;
          pages = j.Jacobi.pages_transferred;
          diff_bytes = j.Jacobi.diff_bytes;
        };
        {
          kernel = "matmul";
          protocol;
          time_ms = m.Matmul.time_ms;
          correct = m.Matmul.checksum = matmul_ref;
          read_faults = m.Matmul.read_faults;
          write_faults = m.Matmul.write_faults;
          pages = m.Matmul.pages_transferred;
          diff_bytes = 0;
        };
        {
          kernel = "lu";
          protocol;
          time_ms = l.Lu.time_ms;
          correct = l.Lu.checksum = lu_ref;
          read_faults = l.Lu.read_faults;
          write_faults = l.Lu.write_faults;
          pages = l.Lu.pages_transferred;
          diff_bytes = 0;
        };
        {
          kernel = "sort";
          protocol;
          time_ms = s.Sort.time_ms;
          correct = s.Sort.sorted && s.Sort.correct;
          read_faults = s.Sort.read_faults;
          write_faults = s.Sort.write_faults;
          pages = s.Sort.pages_transferred;
          diff_bytes = 0;
        };
      ])
    protocols

let print ppf cells =
  Format.fprintf ppf
    "SPLASH-style kernels (48x48 Jacobi, 8 sweeps; 32x32 matmul; 32x32 LU; \
     256-element sort), 4 nodes, BIP/Myrinet@.";
  Format.fprintf ppf "%-8s %-16s %10s %8s %8s %8s %8s %10s@." "Kernel" "Protocol"
    "time(ms)" "correct" "rfaults" "wfaults" "pages" "diffbytes";
  List.iter
    (fun c ->
      Format.fprintf ppf "%-8s %-16s %10.1f %8b %8d %8d %8d %10d@." c.kernel
        c.protocol c.time_ms c.correct c.read_faults c.write_faults c.pages
        c.diff_bytes)
    cells

let to_json cells =
  let open Dsmpm2_sim in
  Json.List
    (List.map
       (fun c ->
         Json.Obj
           [
             ("kernel", Json.String c.kernel);
             ("protocol", Json.String c.protocol);
             ("time_ms", Json.Float c.time_ms);
             ("correct", Json.Bool c.correct);
             ("read_faults", Json.Int c.read_faults);
             ("write_faults", Json.Int c.write_faults);
             ("pages", Json.Int c.pages);
             ("diff_bytes", Json.Int c.diff_bytes);
           ])
       cells)

(** Table 2: the built-in protocol inventory, printed from the live registry
    so the documentation cannot drift from the code. *)

type row = { name : string; consistency : string; features : string; registered : bool }

val run : unit -> row list
val print : Format.formatter -> row list -> unit

val to_json : row list -> Dsmpm2_sim.Json.t

(** The SPLASH-2-style extension study the paper's conclusion announces as
    current work: regular kernels (Jacobi relaxation and blocked matrix
    multiplication) compared across the four general-purpose protocols. *)

type cell = {
  kernel : string;
  protocol : string;
  time_ms : float;
  correct : bool;
  read_faults : int;
  write_faults : int;
  pages : int;
  diff_bytes : int;
}

val run : unit -> cell list
val print : Format.formatter -> cell list -> unit

val to_json : cell list -> Dsmpm2_sim.Json.t

(* Causal forensics: slice a trace backward from a violating read or a
   critical alert to the injected faults that explain it.

   The trace already carries everything needed: protocol events share a
   span id per logical operation (carried across nodes inside the
   messages), dropped messages are typed [Drop]/[Blackhole] events stamped
   with the sending operation's span, crash windows appear as
   [Crash]/[Restart] pairs, and retransmissions as [Rpc_retry].  The blame
   engine stitches those into a causal DAG and extracts the minimal
   explanation: which concrete injected fault let this read return a stale
   value. *)

open Dsmpm2_sim

type target = {
  t_kind : string;
  t_node : int;
  t_page : int;
  t_at : Time.t;
  t_detail : string;
}

type cause =
  | Dropped_message of {
      c_at : Time.t;
      c_src : int;
      c_dst : int;
      c_kind : string;
      c_span : int;
      c_blackhole : bool;
      c_down : int;
    }
  | Crash_window of { c_node : int; c_down : Time.t; c_up : Time.t }
  | Retry_storm of {
      c_service : string;
      c_src : int;
      c_dst : int;
      c_attempts : int;
      c_last : Time.t;
    }

type explanation = {
  x_target : target;
  x_causes : cause list;
  x_spans : int list;
  x_slice : (Trace.entry * Trace.event) list;
}

let causes x = x.x_causes
let target x = x.x_target

(* The pages an event talks about; [] when it has none. *)
let event_pages = function
  | Trace.Fault { page; _ }
  | Trace.Page_request { page; _ }
  | Trace.Page_send { page; _ }
  | Trace.Page_install { page; _ }
  | Trace.Invalidate { page; _ } -> [ page ]
  | Trace.Diff { page_list; _ } -> page_list
  | _ -> []

(* Both endpoints of a message-shaped event, for the involved-node set. *)
let event_endpoints = function
  | Trace.Page_send { node; dst; _ } -> [ node; dst ]
  | Trace.Page_install { node; sender; _ } -> [ node; sender ]
  | Trace.Page_request { node; requester; _ } -> [ node; requester ]
  | Trace.Invalidate { node; sender; _ } -> [ node; sender ]
  | Trace.Diff { node; sender; _ } -> [ node; sender ]
  | Trace.Drop { src; dst; _ } | Trace.Blackhole { src; dst; _ } -> [ src; dst ]
  | Trace.Rpc_retry { src; dst; _ } -> [ src; dst ]
  | ev ->
      let n = Trace.event_node ev in
      if n < 0 then [] else [ n ]

module Int_set = Set.Make (Int)

(* "... page 7 ..." inside an alert detail string, or -1.  Good enough to
   focus an alert-seeded slice on the page the watchdog complained about. *)
let page_in_detail detail =
  let len = String.length detail in
  let needle = "page " in
  let rec find i =
    if i + String.length needle > len then -1
    else if String.sub detail i (String.length needle) = needle then begin
      let j = ref (i + String.length needle) in
      let v = ref 0 and seen = ref false in
      while !j < len && detail.[!j] >= '0' && detail.[!j] <= '9' do
        seen := true;
        v := (!v * 10) + (Char.code detail.[!j] - Char.code '0');
        incr j
      done;
      if !seen then !v else find (i + 1)
    end
    else find (i + 1)
  in
  find 0

let explain ~trace tgt =
  let evs = Trace.events trace in
  (* A target with neither a page nor a node (a system-wide alert like
     deadlock.stall) slices from the injected faults themselves: the spans
     they starved are the operations worth showing. *)
  let global = tgt.t_page < 0 && tgt.t_node < 0 in
  let is_fault_event = function
    | Trace.Drop _ | Trace.Blackhole _ | Trace.Crash _ | Trace.Restart _
    | Trace.Rpc_retry _ -> true
    | _ -> false
  in
  (* Pass 1 — seed spans: every span that touches the target page (or, with
     no page, the target node) at or before the target instant.  These are
     the logical operations the violating read causally depends on. *)
  let interesting ev =
    if global then is_fault_event ev
    else if tgt.t_page >= 0 then List.mem tgt.t_page (event_pages ev)
    else List.mem tgt.t_node (event_endpoints ev)
  in
  let seed_spans =
    List.fold_left
      (fun acc ((e : Trace.entry), ev) ->
        if e.Trace.at <= tgt.t_at && e.Trace.span <> Trace.no_span
           && interesting ev
        then Int_set.add e.Trace.span acc
        else acc)
      Int_set.empty evs
  in
  (* Pass 2 — involved nodes: every endpoint of a seed-span event, plus the
     target's own node.  Crash windows on these nodes are causal suspects
     even though a frozen node emits nothing while it is down. *)
  let involved =
    List.fold_left
      (fun acc ((e : Trace.entry), ev) ->
        if
          (e.Trace.span <> Trace.no_span
          && Int_set.mem e.Trace.span seed_spans)
          || (global && e.Trace.at <= tgt.t_at && is_fault_event ev)
        then List.fold_left (fun a n -> Int_set.add n a) acc (event_endpoints ev)
        else acc)
      (if tgt.t_node < 0 then Int_set.empty else Int_set.singleton tgt.t_node)
      evs
  in
  let in_seed (e : Trace.entry) = Int_set.mem e.Trace.span seed_spans in
  (* Pass 3 — the slice: seed-span events, page-matching span-less events,
     and Crash/Restart markers for involved nodes, all at or before the
     target. *)
  let slice =
    List.filter
      (fun ((e : Trace.entry), ev) ->
        e.Trace.at <= tgt.t_at
        &&
        match ev with
        | Trace.Crash { node; _ } | Trace.Restart { node } ->
            Int_set.mem node involved
        | _ -> in_seed e || (e.Trace.span = Trace.no_span && interesting ev))
      evs
  in
  (* Pass 4 — causes.  Primary: drops inside a seed span (the message the
     operation lost).  Fallback: drops on a link between involved nodes —
     retransmitted requests go out in timer context where no span is
     attached, so their losses are span-less but still on-link. *)
  let drop_cause ((e : Trace.entry), ev) =
    match ev with
    | Trace.Drop { src; dst; kind } ->
        Some
          (Dropped_message
             {
               c_at = e.Trace.at;
               c_src = src;
               c_dst = dst;
               c_kind = kind;
               c_span = e.Trace.span;
               c_blackhole = false;
               c_down = -1;
             })
    | Trace.Blackhole { src; dst; kind; down } ->
        Some
          (Dropped_message
             {
               c_at = e.Trace.at;
               c_src = src;
               c_dst = dst;
               c_kind = kind;
               c_span = e.Trace.span;
               c_blackhole = true;
               c_down = down;
             })
    | _ -> None
  in
  let before (e : Trace.entry) = e.Trace.at <= tgt.t_at in
  let span_drops =
    List.filter_map
      (fun ((e, _) as x) -> if before e && in_seed e then drop_cause x else None)
      evs
  in
  let drops =
    if span_drops <> [] then span_drops
    else
      List.filter_map
        (fun (((e : Trace.entry), ev) as x) ->
          match ev with
          | Trace.Drop { src; dst; _ } | Trace.Blackhole { src; dst; _ }
            when before e && Int_set.mem src involved && Int_set.mem dst involved
            -> drop_cause x
          | _ -> None)
        evs
  in
  let crash_windows =
    List.filter_map
      (fun ((e : Trace.entry), ev) ->
        match ev with
        | Trace.Crash { node; up }
          when before e && Int_set.mem node involved ->
            Some (Crash_window { c_node = node; c_down = e.Trace.at; c_up = up })
        | _ -> None)
      evs
  in
  (* Retransmission storms, aggregated per (service, link): the symptom of
     a drop or crash, kept as supporting evidence. *)
  let retries = Hashtbl.create 8 in
  let retry_order = ref [] in
  List.iter
    (fun ((e : Trace.entry), ev) ->
      match ev with
      | Trace.Rpc_retry { service; src; dst; attempt }
        when before e
             && (in_seed e || (Int_set.mem src involved && Int_set.mem dst involved))
        -> (
          let key = (service, src, dst) in
          match Hashtbl.find_opt retries key with
          | Some (attempts, _) ->
              Hashtbl.replace retries key (max attempts attempt, e.Trace.at)
          | None ->
              retry_order := key :: !retry_order;
              Hashtbl.replace retries key (attempt, e.Trace.at))
      | _ -> ())
    evs;
  let retry_causes =
    List.rev_map
      (fun ((service, src, dst) as key) ->
        let attempts, last = Hashtbl.find retries key in
        Retry_storm
          {
            c_service = service;
            c_src = src;
            c_dst = dst;
            c_attempts = attempts;
            c_last = last;
          })
      !retry_order
  in
  {
    x_target = tgt;
    x_causes = drops @ crash_windows @ retry_causes;
    x_spans = Int_set.elements seed_spans;
    x_slice = slice;
  }

let explain_violation ~trace ~node ~page ~at ~detail =
  explain ~trace
    { t_kind = "violation"; t_node = node; t_page = page; t_at = at; t_detail = detail }

let explain_alert ~trace ~kind ~node ~at ~detail =
  explain ~trace
    {
      t_kind = "alert:" ^ kind;
      t_node = node;
      t_page = page_in_detail detail;
      t_at = at;
      t_detail = detail;
    }

(* One explanation per critical alert in the dump — the `dsm explain
   trace.jsonl` entry point, where no checker verdicts are available. *)
let explain_trace trace =
  List.filter_map
    (fun ((e : Trace.entry), ev) ->
      match ev with
      | Trace.Alert { severity = "critical"; kind; node; detail } ->
          Some (explain_alert ~trace ~kind ~node ~at:e.Trace.at ~detail)
      | _ -> None)
    (Trace.events trace)

(* --- rendering --- *)

let cause_to_string = function
  | Dropped_message { c_at; c_src; c_dst; c_kind; c_span; c_blackhole; c_down } ->
      if c_blackhole then
        Printf.sprintf
          "%s on link %d->%d blackholed at t=%.0fus (node %d was crashed)%s"
          c_kind c_src c_dst (Time.to_us c_at) c_down
          (if c_span = Trace.no_span then ""
           else Printf.sprintf " [span %d]" c_span)
      else
        Printf.sprintf "%s on link %d->%d dropped at t=%.0fus (seeded loss)%s"
          c_kind c_src c_dst (Time.to_us c_at)
          (if c_span = Trace.no_span then ""
           else Printf.sprintf " [span %d]" c_span)
  | Crash_window { c_node; c_down; c_up } ->
      Printf.sprintf "node %d was crashed t=[%.0fus, %.0fus]" c_node
        (Time.to_us c_down) (Time.to_us c_up)
  | Retry_storm { c_service; c_src; c_dst; c_attempts; c_last } ->
      Printf.sprintf
        "rpc %s on link %d->%d needed %d attempts (last retransmission at \
         t=%.0fus)"
        c_service c_src c_dst c_attempts (Time.to_us c_last)

let to_text ppf x =
  let t = x.x_target in
  Format.fprintf ppf "%s on node %d%s at t=%.0fus: %s@." t.t_kind t.t_node
    (if t.t_page < 0 then "" else Printf.sprintf " (page %d)" t.t_page)
    (Time.to_us t.t_at) t.t_detail;
  (match x.x_causes with
  | [] ->
      Format.fprintf ppf
        "  no injected cause found in the causal slice (%d events, %d spans)@."
        (List.length x.x_slice) (List.length x.x_spans)
  | causes ->
      Format.fprintf ppf "  because:@.";
      List.iter (fun c -> Format.fprintf ppf "    - %s@." (cause_to_string c)) causes);
  Format.fprintf ppf "  causal slice (%d events across %d spans):@."
    (List.length x.x_slice) (List.length x.x_spans);
  List.iter
    (fun ((e : Trace.entry), _) ->
      Format.fprintf ppf "    [%a] s%-4d %-12s %s@." Time.pp e.Trace.at
        e.Trace.span e.Trace.category e.Trace.message)
    x.x_slice

let cause_to_json = function
  | Dropped_message { c_at; c_src; c_dst; c_kind; c_span; c_blackhole; c_down } ->
      Json.Obj
        [
          ("type", Json.String "dropped_message");
          ("at_ns", Json.Int c_at);
          ("src", Json.Int c_src);
          ("dst", Json.Int c_dst);
          ("kind", Json.String c_kind);
          ("span", Json.Int c_span);
          ("blackhole", Json.Bool c_blackhole);
          ("down", Json.Int c_down);
        ]
  | Crash_window { c_node; c_down; c_up } ->
      Json.Obj
        [
          ("type", Json.String "crash_window");
          ("node", Json.Int c_node);
          ("down_ns", Json.Int c_down);
          ("up_ns", Json.Int c_up);
        ]
  | Retry_storm { c_service; c_src; c_dst; c_attempts; c_last } ->
      Json.Obj
        [
          ("type", Json.String "retry_storm");
          ("service", Json.String c_service);
          ("src", Json.Int c_src);
          ("dst", Json.Int c_dst);
          ("attempts", Json.Int c_attempts);
          ("last_ns", Json.Int c_last);
        ]

let to_json x =
  let t = x.x_target in
  Json.Obj
    [
      ( "target",
        Json.Obj
          [
            ("kind", Json.String t.t_kind);
            ("node", Json.Int t.t_node);
            ("page", Json.Int t.t_page);
            ("at_ns", Json.Int t.t_at);
            ("detail", Json.String t.t_detail);
          ] );
      ("causes", Json.List (List.map cause_to_json x.x_causes));
      ("spans", Json.List (List.map (fun s -> Json.Int s) x.x_spans));
      ( "slice",
        Json.List
          (List.map
             (fun ((e : Trace.entry), ev) ->
               Trace.event_to_json ~at:e.Trace.at ~span:e.Trace.span ev)
             x.x_slice) );
    ]

(* Graphviz rendering of the slice: one box per event, program-order edges
   inside each span, dashed red edges from each cause event to the target.
   Causes that have no slice event of their own (crash windows) get
   synthetic nodes. *)

let dot_escape s =
  let b = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let to_dot ppf x =
  let t = x.x_target in
  Format.fprintf ppf "digraph explanation {@.";
  Format.fprintf ppf "  rankdir=LR;@.";
  Format.fprintf ppf "  node [shape=box, fontsize=9, fontname=\"monospace\"];@.";
  Format.fprintf ppf
    "  target [label=\"%s\\nnode %d%s\\nt=%.0fus\", color=red, penwidth=2];@."
    (dot_escape t.t_kind) t.t_node
    (if t.t_page < 0 then "" else Printf.sprintf " page %d" t.t_page)
    (Time.to_us t.t_at);
  let is_cause_event ((e : Trace.entry), ev) =
    match ev with
    | Trace.Drop _ | Trace.Blackhole _ | Trace.Crash _ | Trace.Rpc_retry _ ->
        List.exists
          (function
            | Dropped_message { c_at; _ }
            | Retry_storm { c_last = c_at; _ }
            | Crash_window { c_down = c_at; _ } -> c_at = e.Trace.at)
          x.x_causes
    | _ -> false
  in
  List.iteri
    (fun i ((e : Trace.entry), _ as ent) ->
      Format.fprintf ppf "  e%d [label=\"t=%.0fus %s\\n%s\"%s];@." i
        (Time.to_us e.Trace.at) (dot_escape e.Trace.category)
        (dot_escape e.Trace.message)
        (if is_cause_event ent then ", color=red, penwidth=2" else ""))
    x.x_slice;
  (* Program-order edges within each span. *)
  let last_in_span = Hashtbl.create 16 in
  List.iteri
    (fun i ((e : Trace.entry), _) ->
      if e.Trace.span <> Trace.no_span then begin
        (match Hashtbl.find_opt last_in_span e.Trace.span with
        | Some j -> Format.fprintf ppf "  e%d -> e%d;@." j i
        | None -> ());
        Hashtbl.replace last_in_span e.Trace.span i
      end)
    x.x_slice;
  (* Cause edges into the target. *)
  List.iteri
    (fun i ent ->
      if is_cause_event ent then
        Format.fprintf ppf "  e%d -> target [style=dashed, color=red];@." i)
    x.x_slice;
  (* Crash windows have no slice event when the node crashed outside the
     slice horizon; give them synthetic nodes so every cause is visible. *)
  let slice_crash_ats =
    List.filter_map
      (fun ((e : Trace.entry), ev) ->
        match ev with Trace.Crash _ -> Some e.Trace.at | _ -> None)
      x.x_slice
  in
  List.iteri
    (fun i c ->
      match c with
      | Crash_window { c_node; c_down; c_up }
        when not (List.mem c_down slice_crash_ats) ->
          Format.fprintf ppf
            "  c%d [label=\"node %d crashed\\nt=[%.0fus, %.0fus]\", color=red, \
             penwidth=2];@."
            i c_node (Time.to_us c_down) (Time.to_us c_up);
          Format.fprintf ppf "  c%d -> target [style=dashed, color=red];@." i
      | _ -> ())
    x.x_causes;
  Format.fprintf ppf "}@."

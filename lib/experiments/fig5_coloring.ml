open Dsmpm2_apps

type cell = {
  protocol : string;
  nodes : int;
  time_ms : float;
  best_cost : int;
  gets : int;
  inline_checks : int;
  read_faults : int;
}

type data = { sequential_best : int; cells : cell list }

let run ?(node_counts = [ 1; 2; 4 ]) () =
  let sequential_best = Map_coloring.solve_sequential () in
  let cells =
    List.concat_map
      (fun protocol ->
        List.map
          (fun nodes ->
            let r = Map_coloring.run { Map_coloring.default with protocol; nodes } in
            {
              protocol;
              nodes;
              time_ms = r.Map_coloring.time_ms;
              best_cost = r.Map_coloring.best_cost;
              gets = r.Map_coloring.gets;
              inline_checks = r.Map_coloring.inline_checks;
              read_faults = r.Map_coloring.read_faults;
            })
          node_counts)
      [ "java_ic"; "java_pf" ]
  in
  { sequential_best; cells }

let print ppf data =
  Format.fprintf ppf
    "Figure 5: minimal-cost map colouring (29 eastern US states, 4 colours), \
     SISCI/SCI; run time (ms)@.";
  let node_counts = List.sort_uniq compare (List.map (fun c -> c.nodes) data.cells) in
  Format.fprintf ppf "%-10s" "Protocol";
  List.iter (fun n -> Format.fprintf ppf " %7d-node" n) node_counts;
  Format.fprintf ppf "  %12s %12s@." "checks" "faults";
  List.iter
    (fun proto ->
      Format.fprintf ppf "%-10s" proto;
      List.iter
        (fun n ->
          let c = List.find (fun c -> c.protocol = proto && c.nodes = n) data.cells in
          Format.fprintf ppf " %12.1f" c.time_ms)
        node_counts;
      let last =
        List.find
          (fun c -> c.protocol = proto && c.nodes = List.fold_left max 0 node_counts)
          data.cells
      in
      Format.fprintf ppf "  %12d %12d@." last.inline_checks last.read_faults)
    [ "java_ic"; "java_pf" ];
  let check = List.for_all (fun c -> c.best_cost = data.sequential_best) data.cells in
  Format.fprintf ppf "All runs found the optimal colouring cost (%d): %b@."
    data.sequential_best check

let to_json t =
  let open Dsmpm2_sim in
  Json.Obj
    [
      ("sequential_best", Json.Int t.sequential_best);
      ( "cells",
        Json.List
          (List.map
             (fun c ->
               Json.Obj
                 [
                   ("protocol", Json.String c.protocol);
                   ("nodes", Json.Int c.nodes);
                   ("time_ms", Json.Float c.time_ms);
                   ("best_cost", Json.Int c.best_cost);
                   ("gets", Json.Int c.gets);
                   ("inline_checks", Json.Int c.inline_checks);
                   ("read_faults", Json.Int c.read_faults);
                 ])
             t.cells) );
    ]

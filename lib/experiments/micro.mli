(** Micro-benchmarks of the PM2 substrate (paper Section 2.1).

    The paper quotes two platform figures: the minimal RPC latency (6 us
    over SISCI/SCI, 8 us over BIP/Myrinet) and the cost of migrating a
    thread with a minimal stack and no attached data (62 us over SISCI/SCI,
    75 us over BIP/Myrinet).  This experiment measures both on every driver,
    inside the simulator, and reports them next to the paper's numbers. *)

type row = {
  driver : string;
  null_rpc_us : float;  (** measured one-way latency of an empty RPC *)
  paper_null_rpc_us : float option;  (** the paper's figure, when quoted *)
  migration_us : float;  (** measured migration of a minimal (1 kB) stack *)
  paper_migration_us : float option;
}

val run : unit -> row list
val print : Format.formatter -> row list -> unit

val to_json : row list -> Dsmpm2_sim.Json.t

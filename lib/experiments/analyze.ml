open Dsmpm2_sim

(* Post-mortem trace analyzer: turns a run's typed event trace (live
   [Monitor.trace] or a re-loaded [Trace.of_jsonl] dump) into the reports
   the paper attributes to PM2's "very precise post-mortem monitoring
   tools" — per-fault critical paths, per-page sharing-pattern profiles,
   lock/barrier contention, and a per-region protocol recommendation. *)

(* --- exact percentiles (post-mortem data is small; no bucketing) --- *)

type dist = {
  d_samples : int;
  d_total_us : float;
  d_mean_us : float;
  d_p50_us : float;
  d_p90_us : float;
  d_p99_us : float;
  d_max_us : float;
}

let dist_empty =
  {
    d_samples = 0;
    d_total_us = 0.;
    d_mean_us = 0.;
    d_p50_us = 0.;
    d_p90_us = 0.;
    d_p99_us = 0.;
    d_max_us = 0.;
  }

let dist_of_list us =
  match us with
  | [] -> dist_empty
  | us ->
      let a = Array.of_list us in
      Array.sort compare a;
      let n = Array.length a in
      let pct p = a.(min (n - 1) (max 0 (int_of_float (ceil (p /. 100. *. float_of_int n)) - 1))) in
      let total = Array.fold_left ( +. ) 0. a in
      {
        d_samples = n;
        d_total_us = total;
        d_mean_us = total /. float_of_int n;
        d_p50_us = pct 50.;
        d_p90_us = pct 90.;
        d_p99_us = pct 99.;
        d_max_us = a.(n - 1);
      }

let dist_to_json d =
  Json.Obj
    [
      ("samples", Json.Int d.d_samples);
      ("total_us", Json.Float d.d_total_us);
      ("mean_us", Json.Float d.d_mean_us);
      ("p50_us", Json.Float d.d_p50_us);
      ("p90_us", Json.Float d.d_p90_us);
      ("p99_us", Json.Float d.d_p99_us);
      ("max_us", Json.Float d.d_max_us);
    ]

(* --- critical paths --- *)

(* The stage model: a remote access's span stitches
     fault --(detect+request propagation)--> request at the server
           --(serve)--> page send --(transfer)--> install --(install)--> done.
   Thread-migration protocols replace the transfer chain with a [migrate]
   stage (fault to migration completion). *)
let stage_order = [ "request"; "serve"; "transfer"; "install"; "migrate" ]

type chain = {
  ch_span : int;
  ch_node : int;
  ch_page : int;
  ch_protocol : string;
  ch_mode : string;
  ch_start_us : float;
  ch_total_us : float;
  ch_stages : (string * float) list;  (* stage name -> us, only present stages *)
  ch_hops : int;
  ch_events : (Trace.entry * Trace.event) list;
}

let us_of t = Time.to_us t

let chain_of_span (span, evs) =
  let fault =
    List.find_map
      (fun ((e : Trace.entry), ev) ->
        match ev with
        | Trace.Fault { node; page; protocol; mode } ->
            Some (e.Trace.at, node, page, protocol, mode)
        | _ -> None)
      evs
  in
  match fault with
  | None -> None
  | Some (t0, node, page, protocol, mode) ->
      let ats p = List.filter_map (fun ((e : Trace.entry), ev) -> if p ev then Some e.Trace.at else None) evs in
      let requests = ats (function Trace.Page_request _ -> true | _ -> false) in
      let sends = ats (function Trace.Page_send _ -> true | _ -> false) in
      let installs = ats (function Trace.Page_install _ -> true | _ -> false) in
      let migrations = ats (function Trace.Migration _ -> true | _ -> false) in
      let last_at =
        List.fold_left
          (fun acc ((e : Trace.entry), _) -> Time.max acc e.Trace.at)
          t0 evs
      in
      let first = function [] -> None | x :: _ -> Some x in
      let last l = first (List.rev l) in
      let span_us a b = us_of Time.(b - a) in
      let stages = ref [] in
      let add name v = if v >= 0. then stages := (name, v) :: !stages in
      (match first requests with Some r -> add "request" (span_us t0 r) | None -> ());
      (match (last requests, first sends) with
      | Some r, Some s -> add "serve" (span_us r s)
      | _ -> ());
      (match (first sends, first installs) with
      | Some s, Some i -> add "transfer" (span_us s i)
      | _ -> ());
      (match first installs with
      | Some i -> add "install" (span_us i last_at)
      | None -> ());
      (if sends = [] then
         match first migrations with
         | Some m -> add "migrate" (span_us t0 m)
         | None -> ());
      Some
        {
          ch_span = span;
          ch_node = node;
          ch_page = page;
          ch_protocol = protocol;
          ch_mode = mode;
          ch_start_us = us_of t0;
          ch_total_us = span_us t0 last_at;
          ch_stages = List.rev !stages;
          ch_hops = List.length requests;
          ch_events = evs;
        }

(* --- per-page sharing patterns ---

   The classification logic itself lives in [Telemetry.Pages], the
   streaming accumulator shared with the online engine behind [dsm top]:
   one implementation backs both views, so the post-mortem heatmap and the
   live classification agree by construction. *)

module Tele = Dsmpm2_core.Telemetry

type pattern = Tele.pattern =
  | Private
  | Read_mostly
  | Single_writer
  | Producer_consumer
  | Migratory
  | False_sharing
  | Mixed

let pattern_to_string = Tele.pattern_to_string

type page_profile = {
  pg_page : int;
  pg_protocol : string;
  pg_pattern : pattern;
  pg_read_faults : int;
  pg_write_faults : int;
  pg_readers : int list;
  pg_writers : int list;
  pg_diff_senders : int list;
  pg_transfers : int;
  pg_bytes : int;  (* page-send bytes + attributed diff bytes *)
  pg_invalidations : int;
}

let page_stats events =
  let ps = Tele.Pages.create () in
  List.iter (fun (_, ev) -> Tele.Pages.feed ps ev) events;
  ps

let profile_of (p : Tele.profile) =
  {
    pg_page = p.Tele.pr_page;
    pg_protocol = p.Tele.pr_protocol;
    pg_pattern = p.Tele.pr_pattern;
    pg_read_faults = p.Tele.pr_read_faults;
    pg_write_faults = p.Tele.pr_write_faults;
    pg_readers = p.Tele.pr_readers;
    pg_writers = p.Tele.pr_writers;
    pg_diff_senders = p.Tele.pr_diff_senders;
    pg_transfers = p.Tele.pr_transfers;
    pg_bytes = p.Tele.pr_bytes;
    pg_invalidations = p.Tele.pr_invalidations;
  }

(* --- protocol advisor --- *)

let recommended_protocol = Tele.recommended_protocol

type advice = {
  ad_page : int;
  ad_pattern : pattern;
  ad_current : string;
  ad_recommended : string;
}

let advise profiles =
  List.filter_map
    (fun p ->
      match recommended_protocol p.pg_pattern with
      | Some r when r <> p.pg_protocol ->
          Some
            {
              ad_page = p.pg_page;
              ad_pattern = p.pg_pattern;
              ad_current = p.pg_protocol;
              ad_recommended = r;
            }
      | _ -> None)
    profiles

(* --- lock & barrier contention --- *)

type lock_profile = {
  lk_lock : int;
  lk_nodes : int;
  lk_acquisitions : int;
  lk_wait : dist;
  lk_hold : dist;
}

let lock_profiles events =
  (* Per (lock, node): chronological request / granted / released series;
     position i of each pairs into one acquisition. *)
  let series : (int * int, Time.t list ref * Time.t list ref * Time.t list ref) Hashtbl.t =
    Hashtbl.create 16
  in
  List.iter
    (fun ((e : Trace.entry), ev) ->
      match ev with
      | Trace.Lock { node; lock; op } when op = "request" || op = "granted" || op = "released" ->
          let req, grant, rel =
            match Hashtbl.find_opt series (lock, node) with
            | Some s -> s
            | None ->
                let s = (ref [], ref [], ref []) in
                Hashtbl.add series (lock, node) s;
                s
          in
          let cell =
            match op with "request" -> req | "granted" -> grant | _ -> rel
          in
          cell := e.Trace.at :: !cell
      | _ -> ())
    events;
  let by_lock : (int, float list ref * float list ref * int ref * int ref) Hashtbl.t =
    Hashtbl.create 16
  in
  Hashtbl.iter
    (fun (lock, _node) (req, grant, rel) ->
      let waits, holds, acquisitions, nodes =
        match Hashtbl.find_opt by_lock lock with
        | Some x -> x
        | None ->
            let x = (ref [], ref [], ref 0, ref 0) in
            Hashtbl.add by_lock lock x;
            x
      in
      incr nodes;
      let rec pair f xs ys =
        match (xs, ys) with
        | x :: xs, y :: ys ->
            f x y;
            pair f xs ys
        | _ -> ()
      in
      let req = List.rev !req and grant = List.rev !grant and rel = List.rev !rel in
      acquisitions := !acquisitions + List.length grant;
      pair (fun r g -> waits := us_of Time.(g - r) :: !waits) req grant;
      pair (fun g r -> holds := us_of Time.(r - g) :: !holds) grant rel)
    series;
  Hashtbl.fold
    (fun lock (waits, holds, acquisitions, nodes) acc ->
      {
        lk_lock = lock;
        lk_nodes = !nodes;
        lk_acquisitions = !acquisitions;
        lk_wait = dist_of_list !waits;
        lk_hold = dist_of_list !holds;
      }
      :: acc)
    by_lock []
  |> List.sort (fun a b -> compare (b.lk_wait.d_total_us, a.lk_lock) (a.lk_wait.d_total_us, b.lk_lock))

type barrier_profile = {
  br_barrier : int;
  br_parties : int;
  br_rounds : int;
  br_imbalance : dist;  (* last-minus-first arrival per completed round *)
}

let barrier_profiles events =
  let arrivals : (int, (Time.t * int) list ref) Hashtbl.t = Hashtbl.create 8 in
  List.iter
    (fun ((e : Trace.entry), ev) ->
      match ev with
      | Trace.Barrier { node; barrier } ->
          let cell =
            match Hashtbl.find_opt arrivals barrier with
            | Some c -> c
            | None ->
                let c = ref [] in
                Hashtbl.add arrivals barrier c;
                c
          in
          cell := (e.Trace.at, node) :: !cell
      | _ -> ())
    events;
  Hashtbl.fold
    (fun barrier cell acc ->
      let arr = List.rev !cell in
      let parties =
        List.length (List.sort_uniq compare (List.map snd arr))
      in
      let rec rounds acc = function
        | [] -> List.rev acc
        | l ->
            let rec take n acc = function
              | rest when n = 0 -> (List.rev acc, rest)
              | [] -> (List.rev acc, [])
              | x :: rest -> take (n - 1) (x :: acc) rest
            in
            let round, rest = take parties [] l in
            if List.length round = parties then rounds (round :: acc) rest
            else List.rev acc
      in
      let complete = if parties = 0 then [] else rounds [] arr in
      let imbalances =
        List.map
          (fun round ->
            let ats = List.map fst round in
            let first = List.fold_left min (List.hd ats) ats in
            let last = List.fold_left max (List.hd ats) ats in
            us_of Time.(last - first))
          complete
      in
      {
        br_barrier = barrier;
        br_parties = parties;
        br_rounds = List.length complete;
        br_imbalance = dist_of_list imbalances;
      }
      :: acc)
    arrivals []
  |> List.sort (fun a b -> compare a.br_barrier b.br_barrier)

(* --- watchdog alerts --- *)

type alert_line = {
  at_us : float;
  at_severity : string;
  at_kind : string;
  at_node : int;
  at_detail : string;
}

let alert_lines events =
  List.filter_map
    (fun ((e : Trace.entry), ev) ->
      match ev with
      | Trace.Alert { severity; kind; node; detail } ->
          Some
            {
              at_us = us_of e.Trace.at;
              at_severity = severity;
              at_kind = kind;
              at_node = node;
              at_detail = detail;
            }
      | _ -> None)
    events

(* Injected-fault footprint: how much the fault layer interfered with the
   run — the quick "was this run clean?" check before reaching for the
   blame engine. *)
type fault_summary = {
  fs_drops : int;  (* seeded per-message losses *)
  fs_blackholes : int;  (* messages swallowed by crash windows *)
  fs_crash_windows : int;
  fs_restarts : int;
  fs_rpc_retries : int;
}

let fault_summary events =
  List.fold_left
    (fun acc (_, ev) ->
      match ev with
      | Trace.Drop _ -> { acc with fs_drops = acc.fs_drops + 1 }
      | Trace.Blackhole _ -> { acc with fs_blackholes = acc.fs_blackholes + 1 }
      | Trace.Crash _ -> { acc with fs_crash_windows = acc.fs_crash_windows + 1 }
      | Trace.Restart _ -> { acc with fs_restarts = acc.fs_restarts + 1 }
      | Trace.Rpc_retry _ -> { acc with fs_rpc_retries = acc.fs_rpc_retries + 1 }
      | _ -> acc)
    {
      fs_drops = 0;
      fs_blackholes = 0;
      fs_crash_windows = 0;
      fs_restarts = 0;
      fs_rpc_retries = 0;
    }
    events

let fault_summary_empty fs =
  fs.fs_drops = 0 && fs.fs_blackholes = 0 && fs.fs_crash_windows = 0
  && fs.fs_restarts = 0 && fs.fs_rpc_retries = 0

(* --- the analysis --- *)

type t = {
  an_events : int;
  an_spans : int;
  an_duration_us : float;
  an_chains : chain list;  (* all fault chains, chronological *)
  an_stage_dists : (string * (string * dist) list) list;
      (* protocol -> stage -> distribution, stages in [stage_order] *)
  an_totals : (string * dist) list;  (* protocol -> whole-fault distribution *)
  an_top : chain list;  (* top-K slowest, slowest first *)
  an_pages : page_profile list;  (* ranked by (faults, bytes) desc *)
  an_locks : lock_profile list;
  an_barriers : barrier_profile list;
  an_advice : advice list;
  an_alerts : alert_line list;  (* watchdog findings, chronological *)
  an_faults : fault_summary;  (* injected-fault footprint *)
}

let analyze ?(top = 5) trace =
  let events = Trace.events trace in
  let span_groups = Trace.spans trace in
  let chains = List.filter_map chain_of_span span_groups in
  let protocols =
    List.sort_uniq compare (List.map (fun c -> c.ch_protocol) chains)
  in
  let stage_dists =
    List.map
      (fun proto ->
        let of_proto = List.filter (fun c -> c.ch_protocol = proto) chains in
        let per_stage =
          List.filter_map
            (fun stage ->
              let samples =
                List.filter_map (fun c -> List.assoc_opt stage c.ch_stages) of_proto
              in
              if samples = [] then None else Some (stage, dist_of_list samples))
            stage_order
        in
        (proto, per_stage))
      protocols
  in
  let totals =
    List.map
      (fun proto ->
        ( proto,
          dist_of_list
            (List.filter_map
               (fun c -> if c.ch_protocol = proto then Some c.ch_total_us else None)
               chains) ))
      protocols
  in
  let top_chains =
    let sorted =
      List.stable_sort (fun a b -> compare b.ch_total_us a.ch_total_us) chains
    in
    let rec take n = function
      | [] -> []
      | _ when n = 0 -> []
      | x :: rest -> x :: take (n - 1) rest
    in
    take top sorted
  in
  (* [Tele.Pages.profiles] already ranks by (faults, bytes) descending,
     the heatmap order. *)
  let pages = List.map profile_of (Tele.Pages.profiles (page_stats events)) in
  let duration =
    List.fold_left (fun acc ((e : Trace.entry), _) -> Time.max acc e.Trace.at) Time.zero events
  in
  {
    an_events = List.length events;
    an_spans = List.length span_groups;
    an_duration_us = us_of duration;
    an_chains = chains;
    an_stage_dists = stage_dists;
    an_totals = totals;
    an_top = top_chains;
    an_pages = pages;
    an_locks = lock_profiles events;
    an_barriers = barrier_profiles events;
    an_advice = advise pages;
    an_alerts = alert_lines events;
    an_faults = fault_summary events;
  }

let pages t = t.an_pages
let advice t = t.an_advice
let locks t = t.an_locks
let barriers t = t.an_barriers
let chains t = t.an_chains
let alerts t = t.an_alerts
let faults t = t.an_faults

let page_profile t ~page = List.find_opt (fun p -> p.pg_page = page) t.an_pages

(* --- text report --- *)

let nodes_str nodes =
  "[" ^ String.concat ";" (List.map string_of_int nodes) ^ "]"

let report
    ?(sections =
      [ `Alerts; `Faults; `Critical; `Pages; `Locks; `Barriers; `Advice ]) ppf
    t =
  let want s = List.mem s sections in
  Format.fprintf ppf "Trace analysis: %d events, %d spans, %.1f us@." t.an_events
    t.an_spans t.an_duration_us;
  if want `Faults && not (fault_summary_empty t.an_faults) then begin
    let f = t.an_faults in
    Format.fprintf ppf "@.== Injected faults ==@.";
    Format.fprintf ppf
      "  %d message(s) lost, %d blackholed; %d crash window(s), %d \
       restart(s); %d rpc retransmission(s)@."
      f.fs_drops f.fs_blackholes f.fs_crash_windows f.fs_restarts
      f.fs_rpc_retries
  end;
  if want `Alerts && t.an_alerts <> [] then begin
    Format.fprintf ppf "@.== Watchdog alerts ==@.";
    List.iter
      (fun a ->
        Format.fprintf ppf "  [%-8s] %10.1f us  %-18s %s@." a.at_severity a.at_us
          a.at_kind a.at_detail)
      t.an_alerts
  end;
  if want `Critical then begin
    Format.fprintf ppf "@.== Fault critical paths ==@.";
    Format.fprintf ppf "%-16s %-10s %7s %9s %9s %9s %9s@." "protocol" "stage"
      "faults" "p50(us)" "p90(us)" "p99(us)" "max(us)";
    List.iter
      (fun (proto, per_stage) ->
        List.iter
          (fun (stage, d) ->
            Format.fprintf ppf "%-16s %-10s %7d %9.1f %9.1f %9.1f %9.1f@." proto
              stage d.d_samples d.d_p50_us d.d_p90_us d.d_p99_us d.d_max_us)
          per_stage;
        match List.assoc_opt proto t.an_totals with
        | Some d when d.d_samples > 0 ->
            Format.fprintf ppf "%-16s %-10s %7d %9.1f %9.1f %9.1f %9.1f@." proto
              "total" d.d_samples d.d_p50_us d.d_p90_us d.d_p99_us d.d_max_us
        | _ -> ())
      t.an_stage_dists;
    if t.an_top <> [] then begin
      Format.fprintf ppf "@.Top %d slowest faults:@." (List.length t.an_top);
      List.iter
        (fun c ->
          Format.fprintf ppf
            "  span %d: %s %s fault on page %d by node %d, %.1f us (%d hop%s)@."
            c.ch_span c.ch_protocol c.ch_mode c.ch_page c.ch_node c.ch_total_us
            c.ch_hops
            (if c.ch_hops = 1 then "" else "s");
          List.iter
            (fun (stage, us) -> Format.fprintf ppf "    %-10s %9.1f us@." stage us)
            c.ch_stages;
          List.iter
            (fun ((e : Trace.entry), _) ->
              Format.fprintf ppf "    [%a] %-12s %s@." Time.pp e.Trace.at
                e.Trace.category e.Trace.message)
            c.ch_events)
        t.an_top
    end
  end;
  if want `Pages then begin
    Format.fprintf ppf "@.== Page heatmap (by faults, bytes) ==@.";
    Format.fprintf ppf "%-6s %-16s %-17s %6s %6s %6s %9s %6s %-10s %-10s@." "page"
      "protocol" "pattern" "rf" "wf" "xfers" "bytes" "inval" "readers" "writers";
    List.iter
      (fun p ->
        Format.fprintf ppf "%-6d %-16s %-17s %6d %6d %6d %9d %6d %-10s %-10s@."
          p.pg_page p.pg_protocol
          (pattern_to_string p.pg_pattern)
          p.pg_read_faults p.pg_write_faults p.pg_transfers p.pg_bytes
          p.pg_invalidations (nodes_str p.pg_readers) (nodes_str p.pg_writers))
      t.an_pages
  end;
  if want `Locks && t.an_locks <> [] then begin
    Format.fprintf ppf "@.== Lock contention ==@.";
    Format.fprintf ppf "%-6s %6s %6s %9s %9s %9s %9s %9s@." "lock" "nodes" "acq"
      "wait p50" "wait p99" "wait max" "hold p50" "hold max";
    List.iter
      (fun l ->
        Format.fprintf ppf "%-6d %6d %6d %9.1f %9.1f %9.1f %9.1f %9.1f@."
          l.lk_lock l.lk_nodes l.lk_acquisitions l.lk_wait.d_p50_us
          l.lk_wait.d_p99_us l.lk_wait.d_max_us l.lk_hold.d_p50_us
          l.lk_hold.d_max_us)
      t.an_locks
  end;
  if want `Barriers && t.an_barriers <> [] then begin
    Format.fprintf ppf "@.== Barrier imbalance ==@.";
    Format.fprintf ppf "%-8s %8s %7s %10s %10s@." "barrier" "parties" "rounds"
      "mean(us)" "max(us)";
    List.iter
      (fun b ->
        Format.fprintf ppf "%-8d %8d %7d %10.1f %10.1f@." b.br_barrier
          b.br_parties b.br_rounds b.br_imbalance.d_mean_us b.br_imbalance.d_max_us)
      t.an_barriers
  end;
  if want `Advice then begin
    Format.fprintf ppf "@.== Protocol advisor (dsm_malloc attribute suggestions) ==@.";
    if t.an_advice = [] then
      Format.fprintf ppf "  every page already runs a protocol matching its pattern@."
    else
      List.iter
        (fun a ->
          Format.fprintf ppf
            "  page %d: %s under %s -> allocate with ~protocol:%s@." a.ad_page
            (pattern_to_string a.ad_pattern)
            a.ad_current a.ad_recommended)
        t.an_advice
  end

(* --- stable JSON --- *)

let chain_to_json c =
  Json.Obj
    [
      ("span", Json.Int c.ch_span);
      ("node", Json.Int c.ch_node);
      ("page", Json.Int c.ch_page);
      ("protocol", Json.String c.ch_protocol);
      ("mode", Json.String c.ch_mode);
      ("start_us", Json.Float c.ch_start_us);
      ("total_us", Json.Float c.ch_total_us);
      ("hops", Json.Int c.ch_hops);
      ( "stages",
        Json.Obj (List.map (fun (s, us) -> (s, Json.Float us)) c.ch_stages) );
      ( "events",
        Json.List
          (List.map
             (fun ((e : Trace.entry), ev) ->
               Trace.event_to_json ~at:e.Trace.at ~span:e.Trace.span ev)
             c.ch_events) );
    ]

let to_json ?meta t =
  Json.Obj
    [
      ( "meta",
        Run_meta.to_json
          (Run_meta.with_git (Option.value meta ~default:Run_meta.empty)) );
      ("events", Json.Int t.an_events);
      ("spans", Json.Int t.an_spans);
      ("duration_us", Json.Float t.an_duration_us);
      ( "critical_path",
        Json.Obj
          (List.map
             (fun (proto, per_stage) ->
               ( proto,
                 Json.Obj
                   (List.map (fun (s, d) -> (s, dist_to_json d)) per_stage
                   @
                   match List.assoc_opt proto t.an_totals with
                   | Some d -> [ ("total", dist_to_json d) ]
                   | None -> []) ))
             t.an_stage_dists) );
      ("top_spans", Json.List (List.map chain_to_json t.an_top));
      ( "pages",
        Json.List
          (List.map
             (fun p ->
               Json.Obj
                 [
                   ("page", Json.Int p.pg_page);
                   ("protocol", Json.String p.pg_protocol);
                   ("pattern", Json.String (pattern_to_string p.pg_pattern));
                   ("read_faults", Json.Int p.pg_read_faults);
                   ("write_faults", Json.Int p.pg_write_faults);
                   ("readers", Json.List (List.map (fun n -> Json.Int n) p.pg_readers));
                   ("writers", Json.List (List.map (fun n -> Json.Int n) p.pg_writers));
                   ( "diff_senders",
                     Json.List (List.map (fun n -> Json.Int n) p.pg_diff_senders) );
                   ("transfers", Json.Int p.pg_transfers);
                   ("bytes", Json.Int p.pg_bytes);
                   ("invalidations", Json.Int p.pg_invalidations);
                 ])
             t.an_pages) );
      ( "locks",
        Json.List
          (List.map
             (fun l ->
               Json.Obj
                 [
                   ("lock", Json.Int l.lk_lock);
                   ("nodes", Json.Int l.lk_nodes);
                   ("acquisitions", Json.Int l.lk_acquisitions);
                   ("wait", dist_to_json l.lk_wait);
                   ("hold", dist_to_json l.lk_hold);
                 ])
             t.an_locks) );
      ( "barriers",
        Json.List
          (List.map
             (fun b ->
               Json.Obj
                 [
                   ("barrier", Json.Int b.br_barrier);
                   ("parties", Json.Int b.br_parties);
                   ("rounds", Json.Int b.br_rounds);
                   ("imbalance", dist_to_json b.br_imbalance);
                 ])
             t.an_barriers) );
      ( "advice",
        Json.List
          (List.map
             (fun a ->
               Json.Obj
                 [
                   ("page", Json.Int a.ad_page);
                   ("pattern", Json.String (pattern_to_string a.ad_pattern));
                   ("current", Json.String a.ad_current);
                   ("recommended", Json.String a.ad_recommended);
                 ])
             t.an_advice) );
      ( "alerts",
        Json.List
          (List.map
             (fun a ->
               Json.Obj
                 [
                   ("at_us", Json.Float a.at_us);
                   ("severity", Json.String a.at_severity);
                   ("kind", Json.String a.at_kind);
                   ("node", Json.Int a.at_node);
                   ("detail", Json.String a.at_detail);
                 ])
             t.an_alerts) );
      ( "faults",
        Json.Obj
          [
            ("drops", Json.Int t.an_faults.fs_drops);
            ("blackholes", Json.Int t.an_faults.fs_blackholes);
            ("crash_windows", Json.Int t.an_faults.fs_crash_windows);
            ("restarts", Json.Int t.an_faults.fs_restarts);
            ("rpc_retries", Json.Int t.an_faults.fs_rpc_retries);
          ] );
    ]

(* --- folded stacks (flamegraph.pl / speedscope input) --- *)

(* One line per (protocol, stage) with the total time attributed, plus the
   per-fault residual (total minus accounted stages) as [other]; values in
   integer microseconds as flamegraph folded format expects. *)
let folded ppf t =
  List.iter
    (fun (proto, per_stage) ->
      let accounted = ref 0. in
      List.iter
        (fun (stage, d) ->
          accounted := !accounted +. d.d_total_us;
          Format.fprintf ppf "dsmpm2;%s;fault;%s %d@." proto stage
            (int_of_float (Float.round d.d_total_us)))
        per_stage;
      match List.assoc_opt proto t.an_totals with
      | Some d when d.d_total_us -. !accounted > 0.5 ->
          Format.fprintf ppf "dsmpm2;%s;fault;other %d@." proto
            (int_of_float (Float.round (d.d_total_us -. !accounted)))
      | _ -> ())
    t.an_stage_dists;
  List.iter
    (fun l ->
      if l.lk_wait.d_total_us >= 0.5 then
        Format.fprintf ppf "dsmpm2;locks;lock_%d;wait %d@." l.lk_lock
          (int_of_float (Float.round l.lk_wait.d_total_us));
      if l.lk_hold.d_total_us >= 0.5 then
        Format.fprintf ppf "dsmpm2;locks;lock_%d;hold %d@." l.lk_lock
          (int_of_float (Float.round l.lk_hold.d_total_us)))
    t.an_locks;
  List.iter
    (fun b ->
      if b.br_imbalance.d_total_us >= 0.5 then
        Format.fprintf ppf "dsmpm2;barriers;barrier_%d;imbalance %d@." b.br_barrier
          (int_of_float (Float.round b.br_imbalance.d_total_us)))
    t.an_barriers

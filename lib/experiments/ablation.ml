open Dsmpm2_sim
open Dsmpm2_net
open Dsmpm2_core
open Dsmpm2_protocols
open Dsmpm2_apps

type stack_row = {
  driver : string;
  stack_bytes : int;
  page_transfer_us : float;
  thread_migration_us : float;
}

type refresh_row = { protocol : string; refresh_period : int; time_ms : float }

type manager_row = {
  manager : string;
  writers : int;
  request_messages : int;
  read_latency_us : float;
}

type balance_row = {
  balanced : bool;
  nodes_used : int;
  tsp_time_ms : float;
  thread_migrations : int;
  balancer_moves : int;
}

type data = {
  stack : stack_row list;
  refresh : refresh_row list;
  manager : manager_row list;
  balance : balance_row list;
}

let fault_total ~driver ~protocol_of ~stack_bytes =
  let dsm = Dsm.create ~nodes:2 ~driver () in
  let ids = Builtin.register_all dsm in
  let x = Dsm.malloc dsm ~protocol:(protocol_of ids) ~home:(Dsm.On_node 1) 8 in
  ignore (Dsm.spawn dsm ~node:0 ~stack_bytes (fun () -> ignore (Dsm.read_int dsm x)));
  Dsm.run dsm;
  Time.to_us (Stats.span_mean (Dsm.stats dsm) Instrument.stage_total)

let stack_sizes = [ 1024; 4096; 16384; 65536 ]

let run_stack () =
  List.concat_map
    (fun driver ->
      List.map
        (fun stack_bytes ->
          {
            driver = driver.Driver.name;
            stack_bytes;
            page_transfer_us =
              fault_total ~driver ~protocol_of:(fun i -> i.Builtin.li_hudak) ~stack_bytes;
            thread_migration_us =
              fault_total ~driver
                ~protocol_of:(fun i -> i.Builtin.migrate_thread)
                ~stack_bytes;
          })
        stack_sizes)
    Driver.all

let refresh_periods = [ 500; 2000; 8000 ]

let run_refresh () =
  List.concat_map
    (fun protocol ->
      List.map
        (fun refresh_period ->
          let r = Tsp.run { Tsp.default with Tsp.protocol; refresh_period } in
          { protocol; refresh_period; time_ms = r.Tsp.time_ms })
        refresh_periods)
    [ "li_hudak"; "erc_sw"; "hbrc_mw"; "migrate_thread" ]

(* A reader caches a copy early, then ownership walks through [writers]
   nodes (staggered in virtual time so each transfer completes before the
   next), and finally the reader takes a cold read fault.  Under the dynamic
   manager its stale probable-owner hint sends the request down the whole
   hand-off chain; under the fixed manager the home forwards it in two
   hops. *)
let manager_scenario ~manager ~writers =
  let nodes = writers + 2 in
  let reader = writers + 1 in
  let dsm = Dsm.create ~nodes ~driver:Driver.bip_myrinet () in
  let ids = Builtin.register_all dsm in
  let extras = Builtin.register_extras dsm in
  let protocol =
    match manager with
    | "dynamic" -> ids.Builtin.li_hudak
    | "fixed" -> extras.Builtin.li_hudak_fixed
    | other -> invalid_arg ("Ablation.manager_scenario: " ^ other)
  in
  let x = Dsm.malloc dsm ~protocol ~home:(Dsm.On_node 0) 8 in
  let net = Dsmpm2_pm2.Pm2.network (Dsm.pm2 dsm) in
  let step_us = 50_000. in
  for w = 1 to writers do
    ignore
      (Dsm.spawn dsm ~node:w (fun () ->
           Dsm.compute dsm (float_of_int w *. step_us);
           (* read first: the write request then goes straight to the
              previous owner, leaving the home's hint stale (this is what
              lets probable-owner chains actually grow) *)
           ignore (Dsm.read_int dsm x);
           Dsm.write_int dsm x w))
  done;
  let requests = ref 0 and latency = ref 0. in
  ignore
    (Dsm.spawn dsm ~node:reader (fun () ->
         ignore (Dsm.read_int dsm x);
         (* cache a copy before the hand-offs *)
         Dsm.compute dsm (float_of_int (writers + 1) *. step_us);
         let req0 = Stats.count (Network.stats net) "msg.request" in
         let t0 = Dsm.now_us dsm in
         ignore (Dsm.read_int dsm x);
         latency := Dsm.now_us dsm -. t0;
         requests := Stats.count (Network.stats net) "msg.request" - req0));
  Dsm.run dsm;
  ({ manager; writers; request_messages = !requests; read_latency_us = !latency }
    : manager_row)

let manager_writer_counts = [ 1; 3; 6 ]

let run_manager () =
  List.concat_map
    (fun writers ->
      [
        manager_scenario ~manager:"dynamic" ~writers;
        manager_scenario ~manager:"fixed" ~writers;
      ])
    manager_writer_counts

let run_balance () =
  List.concat_map
    (fun nodes ->
      List.map
        (fun balanced ->
          let r =
            Tsp.run
              { Tsp.default with Tsp.protocol = "migrate_thread"; nodes; balance = balanced }
          in
          {
            balanced;
            nodes_used = nodes;
            tsp_time_ms = r.Tsp.time_ms;
            thread_migrations = r.Tsp.migrations;
            balancer_moves = r.Tsp.balancer_moves;
          })
        [ false; true ])
    [ 4; 8 ]

let run () =
  {
    stack = run_stack ();
    refresh = run_refresh ();
    manager = run_manager ();
    balance = run_balance ();
  }

let print ppf data =
  Format.fprintf ppf
    "Ablation (a): cold read-fault cost vs faulting thread's stack size (us)@.";
  Format.fprintf ppf "%-18s %10s %15s %17s %10s@." "Driver" "stack(B)"
    "page transfer" "thread migration" "winner";
  List.iter
    (fun r ->
      Format.fprintf ppf "%-18s %10d %15.1f %17.1f %10s@." r.driver r.stack_bytes
        r.page_transfer_us r.thread_migration_us
        (if r.thread_migration_us < r.page_transfer_us then "migrate" else "page"))
    data.stack;
  Format.fprintf ppf
    "@.Ablation (b): TSP run time (ms) vs bound-refresh period (expansions)@.";
  Format.fprintf ppf "%-16s" "Protocol";
  List.iter (fun p -> Format.fprintf ppf " %10d" p) refresh_periods;
  Format.fprintf ppf "@.";
  List.iter
    (fun proto ->
      Format.fprintf ppf "%-16s" proto;
      List.iter
        (fun period ->
          let c =
            List.find
              (fun r -> r.protocol = proto && r.refresh_period = period)
              data.refresh
          in
          Format.fprintf ppf " %10.1f" c.time_ms)
        refresh_periods;
      Format.fprintf ppf "@.")
    [ "li_hudak"; "erc_sw"; "hbrc_mw"; "migrate_thread" ];
  Format.fprintf ppf
    "@.Ablation (c): dynamic vs fixed distributed manager (late read after \
     ownership hand-offs)@.";
  Format.fprintf ppf "%-10s %10s %18s %18s@." "Manager" "hand-offs"
    "request msgs" "read latency(us)";
  List.iter
    (fun (r : manager_row) ->
      Format.fprintf ppf "%-10s %10d %18d %18.1f@." r.manager r.writers
        r.request_messages r.read_latency_us)
    data.manager;
  Format.fprintf ppf
    "@.Ablation (d): TSP under migrate_thread, with and without the PM2 load \
     balancer@.";
  Format.fprintf ppf "%-8s %10s %12s %14s %16s@." "nodes" "balancer" "time(ms)"
    "migrations" "balancer moves";
  List.iter
    (fun (r : balance_row) ->
      Format.fprintf ppf "%-8d %10s %12.1f %14d %16d@." r.nodes_used
        (if r.balanced then "on" else "off")
        r.tsp_time_ms r.thread_migrations r.balancer_moves)
    data.balance

let to_json t =
  Json.Obj
    [
      ( "stack",
        Json.List
          (List.map
             (fun r ->
               Json.Obj
                 [
                   ("driver", Json.String r.driver);
                   ("stack_bytes", Json.Int r.stack_bytes);
                   ("page_transfer_us", Json.Float r.page_transfer_us);
                   ("thread_migration_us", Json.Float r.thread_migration_us);
                 ])
             t.stack) );
      ( "refresh",
        Json.List
          (List.map
             (fun r ->
               Json.Obj
                 [
                   ("protocol", Json.String r.protocol);
                   ("refresh_period", Json.Int r.refresh_period);
                   ("time_ms", Json.Float r.time_ms);
                 ])
             t.refresh) );
      ( "manager",
        Json.List
          (List.map
             (fun (r : manager_row) ->
               Json.Obj
                 [
                   ("manager", Json.String r.manager);
                   ("writers", Json.Int r.writers);
                   ("request_messages", Json.Int r.request_messages);
                   ("read_latency_us", Json.Float r.read_latency_us);
                 ])
             t.manager) );
      ( "balance",
        Json.List
          (List.map
             (fun r ->
               Json.Obj
                 [
                   ("balanced", Json.Bool r.balanced);
                   ("nodes_used", Json.Int r.nodes_used);
                   ("tsp_time_ms", Json.Float r.tsp_time_ms);
                   ("thread_migrations", Json.Int r.thread_migrations);
                   ("balancer_moves", Json.Int r.balancer_moves);
                 ])
             t.balance) );
    ]

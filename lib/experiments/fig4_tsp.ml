open Dsmpm2_apps

type cell = {
  protocol : string;
  nodes : int;
  time_ms : float;
  best : int;
  migrations : int;
  workers_on_node0 : int;
}

type data = { cities : int; seed : int; sequential_best : int; cells : cell list }

let protocols = [ "li_hudak"; "migrate_thread"; "erc_sw"; "hbrc_mw" ]

let run ?(cities = 14) ?(seed = 42) ?(node_counts = [ 1; 2; 4; 8 ]) () =
  let sequential_best = Tsp.solve_sequential (Tsp.distances ~cities ~seed) in
  let cells =
    List.concat_map
      (fun protocol ->
        List.map
          (fun nodes ->
            let r = Tsp.run { Tsp.default with Tsp.cities; seed; nodes; protocol } in
            {
              protocol;
              nodes;
              time_ms = r.Tsp.time_ms;
              best = r.Tsp.best;
              migrations = r.Tsp.migrations;
              workers_on_node0 =
                List.length (List.filter (fun n -> n = 0) r.Tsp.final_node_of_thread);
            })
          node_counts)
      protocols
  in
  { cities; seed; sequential_best; cells }

let print ppf data =
  Format.fprintf ppf
    "Figure 4: TSP, %d cities (seed %d), BIP/Myrinet, 1 thread/node; run time (ms)@."
    data.cities data.seed;
  let node_counts =
    List.sort_uniq compare (List.map (fun c -> c.nodes) data.cells)
  in
  Format.fprintf ppf "%-16s" "Protocol";
  List.iter (fun n -> Format.fprintf ppf " %7d-node" n) node_counts;
  Format.fprintf ppf "@.";
  List.iter
    (fun proto ->
      Format.fprintf ppf "%-16s" proto;
      List.iter
        (fun n ->
          let c = List.find (fun c -> c.protocol = proto && c.nodes = n) data.cells in
          Format.fprintf ppf " %12.1f" c.time_ms)
        node_counts;
      Format.fprintf ppf "@.")
    protocols;
  let check =
    List.for_all (fun c -> c.best = data.sequential_best) data.cells
  in
  Format.fprintf ppf "All runs found the optimal tour (%d): %b@." data.sequential_best
    check;
  let mt =
    List.filter (fun c -> c.protocol = "migrate_thread" && c.nodes > 1) data.cells
  in
  List.iter
    (fun c ->
      Format.fprintf ppf
        "migrate_thread, %d nodes: %d migrations, %d/%d workers ended on node 0@."
        c.nodes c.migrations c.workers_on_node0 c.nodes)
    mt

let to_json t =
  let open Dsmpm2_sim in
  Json.Obj
    [
      ("cities", Json.Int t.cities);
      ("seed", Json.Int t.seed);
      ("sequential_best", Json.Int t.sequential_best);
      ( "cells",
        Json.List
          (List.map
             (fun c ->
               Json.Obj
                 [
                   ("protocol", Json.String c.protocol);
                   ("nodes", Json.Int c.nodes);
                   ("time_ms", Json.Float c.time_ms);
                   ("best", Json.Int c.best);
                   ("migrations", Json.Int c.migrations);
                   ("workers_on_node0", Json.Int c.workers_on_node0);
                 ])
             t.cells) );
    ]

open Dsmpm2_net
open Dsmpm2_core
open Dsmpm2_protocols

type row = { name : string; consistency : string; features : string; registered : bool }

let run () =
  let dsm = Dsm.create ~nodes:2 ~driver:Driver.bip_myrinet () in
  ignore (Builtin.register_all dsm);
  List.map
    (fun (name, consistency, features) ->
      { name; consistency; features; registered = Dsm.protocol_by_name dsm name <> None })
    Builtin.summary

let print ppf rows =
  Format.fprintf ppf "Table 2: consistency protocols available in the library@.";
  Format.fprintf ppf "%-16s %-12s %s@." "Protocol" "Consistency" "Basic features";
  List.iter
    (fun r ->
      Format.fprintf ppf "%-16s %-12s %s%s@." r.name r.consistency r.features
        (if r.registered then "" else "  [NOT REGISTERED!]"))
    rows

let to_json rows =
  let open Dsmpm2_sim in
  Json.List
    (List.map
       (fun r ->
         Json.Obj
           [
             ("name", Json.String r.name);
             ("consistency", Json.String r.consistency);
             ("features", Json.String r.features);
             ("registered", Json.Bool r.registered);
           ])
       rows)

open Dsmpm2_sim
open Dsmpm2_net
open Dsmpm2_pm2

type row = {
  driver : string;
  null_rpc_us : float;
  paper_null_rpc_us : float option;
  migration_us : float;
  paper_migration_us : float option;
}

type Rpc.payload += Ping

let measure_null_rpc driver =
  let pm2 = Pm2.create ~nodes:2 ~driver () in
  let rpc = Pm2.rpc pm2 in
  let received_at = ref Time.zero in
  let service =
    Rpc.register rpc ~name:"ping" (fun ~src:_ _payload ->
        received_at := Engine.now (Pm2.engine pm2);
        (Rpc.Unit, Driver.Null_rpc))
  in
  let sent_at = ref Time.zero in
  ignore
    (Pm2.spawn pm2 ~node:0 (fun () ->
         sent_at := Engine.now (Pm2.engine pm2);
         Rpc.oneway rpc ~dst:1 ~service ~cost:Driver.Null_rpc Ping));
  Pm2.run pm2;
  Time.to_us Time.(!received_at - !sent_at)

let measure_migration driver =
  let pm2 = Pm2.create ~nodes:2 ~driver () in
  let started = ref Time.zero and finished = ref Time.zero in
  ignore
    (Pm2.spawn pm2 ~node:0 ~stack_bytes:1024 (fun () ->
         started := Engine.now (Pm2.engine pm2);
         Pm2.migrate pm2 ~dst:1;
         finished := Engine.now (Pm2.engine pm2)));
  Pm2.run pm2;
  Time.to_us Time.(!finished - !started)

(* The paper quotes null-RPC and migration figures for its two
   high-performance interconnects only. *)
let paper_numbers = function
  | "BIP/Myrinet" -> (Some 8., Some 75.)
  | "SISCI/SCI" -> (Some 6., Some 62.)
  | "TCP/Myrinet" -> (None, Some 280.)
  | "TCP/FastEthernet" -> (None, Some 373.)
  | _ -> (None, None)

let run () =
  List.map
    (fun driver ->
      let paper_null_rpc_us, paper_migration_us = paper_numbers driver.Driver.name in
      {
        driver = driver.Driver.name;
        null_rpc_us = measure_null_rpc driver;
        paper_null_rpc_us;
        migration_us = measure_migration driver;
        paper_migration_us;
      })
    Driver.all

let pp_opt ppf = function
  | None -> Format.fprintf ppf "%8s" "-"
  | Some v -> Format.fprintf ppf "%8.1f" v

let print ppf rows =
  Format.fprintf ppf "PM2 substrate micro-benchmarks (paper section 2.1)@.";
  Format.fprintf ppf "%-18s %10s %10s %12s %12s@." "Driver" "null RPC" "(paper)"
    "migration" "(paper)";
  List.iter
    (fun r ->
      Format.fprintf ppf "%-18s %10.1f %a %12.1f %a@." r.driver r.null_rpc_us
        pp_opt r.paper_null_rpc_us r.migration_us pp_opt r.paper_migration_us)
    rows

let to_json rows =
  let opt = function Some x -> Json.Float x | None -> Json.Null in
  Json.List
    (List.map
       (fun r ->
         Json.Obj
           [
             ("driver", Json.String r.driver);
             ("null_rpc_us", Json.Float r.null_rpc_us);
             ("paper_null_rpc_us", opt r.paper_null_rpc_us);
             ("migration_us", Json.Float r.migration_us);
             ("paper_migration_us", opt r.paper_migration_us);
           ])
       rows)

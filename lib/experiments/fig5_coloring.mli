(** Figure 5: Java consistency — page faults vs inline checks.

    The minimal-cost map-colouring program (29 eastern US states, 4 colours
    with different costs) compiled Hyperion-style, run on SISCI/SCI with one
    worker per node, under [java_ic] and [java_pf].  The paper's result:
    [java_pf] clearly outperforms [java_ic], because every get/put pays a
    locality check under [java_ic] while faults are rare under [java_pf]
    (local objects are used intensively, remote accesses are not). *)

type cell = {
  protocol : string;
  nodes : int;
  time_ms : float;
  best_cost : int;
  gets : int;
  inline_checks : int;
  read_faults : int;
}

type data = { sequential_best : int; cells : cell list }

val run : ?node_counts:int list -> unit -> data
(** Default node counts: [1; 2; 4] (the paper uses a four-node cluster). *)

val print : Format.formatter -> data -> unit

val to_json : data -> Dsmpm2_sim.Json.t

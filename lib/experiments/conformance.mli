(** Schedule-exploration conformance checker ([dsm check]).

    Sweeps every builtin protocol over a grid of seeds, drivers and small
    shared-memory workloads.  Each seed perturbs the legal event
    interleaving (engine tie-breaking, {!Dsmpm2_sim.Engine.create}) and the
    network latencies ({!Dsmpm2_net.Network.seeded_jitter}) without ever
    breaking FIFO link order, so every run is an execution the real system
    could produce.  The recorded history ({!Dsmpm2_core.History}) is then
    validated against the consistency model the protocol declares
    ({!Dsmpm2_core.Protocol.model}), and lock-protected workloads also check
    their final computed values.

    A failing run is reported with its seed; re-running the same seed
    replays the identical schedule, so verdicts are actionable. *)

open Dsmpm2_net
open Dsmpm2_core

(** {1 Workloads} *)

type workload =
  | Lock_ladder  (** seeded random lock-protected increments over two vars *)
  | Barrier_phases  (** rotating writer, double-barrier phases *)
  | Racy_poll  (** unsynchronized writer vs bounded pollers *)
  | Mixed_sync  (** lock-guarded counter with barriers between phases *)

val workloads : workload list
val workload_name : workload -> string
val workload_by_name : string -> workload option

val all_protocols : string list
(** Names of every registered builtin protocol, in registration order. *)

(** {1 Single runs} *)

type outcome = {
  o_seed : int;
  o_workload : string;
  o_driver : string;
  o_violations : History.violation list;
  o_wrong_result : string option;
      (** the workload's own result check, when the final values are wrong *)
  o_fingerprint : int;  (** order-sensitive hash of the recorded history *)
  o_ops : int;  (** number of recorded operations *)
}

val outcome_failed : outcome -> bool

val run_one :
  protocol:string -> driver:Driver.t -> workload:workload -> seed:int -> outcome
(** Run one workload under one protocol, driver and seed, with history
    recording enabled, and check the history against the protocol's declared
    model.  Deterministic: the same arguments replay the same schedule. *)

val run_one_traced :
  protocol:string ->
  driver:Driver.t ->
  workload:workload ->
  seed:int ->
  outcome * Dsm.t
(** Like {!run_one} but with the post-mortem monitor and the live watchdog
    ({!Dsmpm2_core.Watchdog}) enabled, returning the finished runtime so the
    caller can analyze its trace ({!Dsmpm2_core.Monitor.trace},
    {!Analyze.analyze} — watchdog alerts appear in the analyzer's alert
    section).  Monitoring only records and the watchdog samples on
    schedule-neutral observer events — the schedule is the one {!run_one}
    replays. *)

(** {1 Sweeps} *)

type verdict = {
  v_protocol : string;
  v_model : Protocol.model;
  v_runs : int;
  v_failures : int;
  v_first_failure : outcome option;
}

val sweep :
  ?protocols:string list ->
  ?drivers:Driver.t list ->
  ?workload_list:workload list ->
  ?progress:(string -> unit) ->
  seeds:int ->
  unit ->
  verdict list
(** [sweep ~seeds ()] runs seeds 0..[seeds-1] for every protocol, driver and
    workload (defaults: all of each) and aggregates per-protocol verdicts.
    [progress] is called after each protocol/driver/workload cell. *)

val print : Format.formatter -> verdict list -> unit
val to_json : verdict list -> Dsmpm2_sim.Json.t
val failed : verdict list -> bool

(** {1 Fault sweeps}

    The same grid re-run under seeded fault schedules
    ({!Dsmpm2_sim.Fault_plan.seeded} + {!Dsm.inject_faults}): crash/restart
    windows, message loss, RPC retry with timeouts, and the watchdog's typed
    fault alerts.  A fault-tolerant protocol ([sc_abd]) must drain cleanly
    and still satisfy its declared model; the ownership-chain family is
    {e expected} to stall or crash here — that contrast (visible failure
    with a typed alert, never silent corruption) is what the sweep
    demonstrates. *)

type fault_spec = {
  f_crashes : int;  (** crash windows per schedule *)
  f_loss_pct : float;  (** seeded cross-node message loss percentage *)
  f_down_us : float;  (** length of each crash window *)
  f_horizon_us : float;  (** windows are placed within [0, horizon) *)
  f_protect : int list;  (** nodes never crashed (lock/barrier managers) *)
}

val default_fault_spec : fault_spec
(** 2 windows of 300 us in a 4 ms horizon, 1% loss, nodes 0 and 1 protected
    (the workloads' lock and barrier managers live there; node 2 is the
    victim — exactly the minority a 3-node quorum tolerates). *)

type fault_outcome = {
  fo_seed : int;
  fo_workload : string;
  fo_plan : string;  (** human-readable fault schedule *)
  fo_crashed : string option;  (** exception that aborted the run *)
  fo_stalled : bool;  (** threads still blocked at the run limit *)
  fo_violations : History.violation list;
  fo_wrong_result : string option;
  fo_alert_kinds : string list;  (** distinct watchdog alert kinds, sorted *)
  fo_dropped : int;  (** messages the fault plan dropped *)
  fo_retransmissions : int;  (** RPC retransmissions sent *)
  fo_fingerprint : int;
      (** order-sensitive history hash, as in {!outcome}; with a zero-fault
          spec it equals the {!run_one} fingerprint for the same arguments —
          the bit-for-bit neutrality guarantee of a disabled fault layer *)
  fo_explanations : Explain.explanation list;
      (** one blame-engine explanation per violation, in order; for a run
          that stalled or crashed without a checker verdict, one per
          critical watchdog alert instead.  [] unless the run was made with
          [~explain:true] *)
}

val fault_outcome_failed : fault_outcome -> bool

val run_one_faulted :
  ?spec:fault_spec ->
  ?explain:bool ->
  ?trace_capacity:int ->
  protocol:string ->
  driver:Driver.t ->
  workload:workload ->
  seed:int ->
  unit ->
  fault_outcome
(** One workload under one seeded fault schedule (monitor and watchdog
    always on — the alerts are part of the verdict).  Deterministic: seed
    drives tie-breaking, jitter, loss draws and window placement.
    [explain] (default false) runs the {!Explain} blame engine over each
    violation and fills [fo_explanations].  [trace_capacity] bounds the
    trace as a flight-recorder ring ({!Dsmpm2_sim.Trace.set_capacity});
    attaching it never changes the schedule or the fingerprint. *)

type fault_verdict = {
  fv_protocol : string;
  fv_model : Protocol.model;
  fv_runs : int;
  fv_failures : int;
  fv_stalls : int;
  fv_crashes : int;
  fv_alert_kinds : string list;  (** distinct alert kinds across all runs *)
  fv_first_failure : fault_outcome option;
}

val fault_sweep :
  ?protocols:string list ->
  ?drivers:Driver.t list ->
  ?workload_list:workload list ->
  ?spec:fault_spec ->
  ?progress:(string -> unit) ->
  ?explain:bool ->
  ?on_failure:(string -> fault_outcome -> unit) ->
  seeds:int ->
  unit ->
  fault_verdict list
(** Like {!sweep} under fault schedules.  Defaults to a single driver
    (bip_myrinet): fault tolerance is a protocol property, not a
    driver-latency property, and faulted runs are slower.  [explain] is
    passed through to {!run_one_faulted}; [on_failure] is called with the
    protocol name and every failing outcome (not just the first), so
    callers can render or archive each explanation. *)

val print_faults : Format.formatter -> fault_verdict list -> unit
val faults_to_json : fault_verdict list -> Dsmpm2_sim.Json.t
val faults_failed : fault_verdict list -> bool

(** Tables 3 and 4: cost breakdown of processing a read fault.

    One cold remote read fault is taken on each of the paper's four
    platforms, under the page-transfer policy ([li_hudak], Table 3) and the
    thread-migration policy ([migrate_thread], Table 4); the instrumented
    per-stage costs are reported next to the paper's measurements. *)

type policy = Page_transfer | Thread_migration

type row = {
  operation : string;
  measured_us : float array;  (** one column per driver, Table 3/4 order *)
  paper_us : float array;
}

type table = {
  policy : policy;
  drivers : string list;
  rows : row list;
  summaries : (string * Dsmpm2_sim.Stats.span_summary list) list;
      (** per-driver stage latency distributions (p50/p90/p99/max) *)
}

val run : policy -> table

val print : Format.formatter -> table -> unit

val to_json : table -> Dsmpm2_sim.Json.t
(** Stable snapshot of the table, including per-stage percentile
    latencies under ["stage_latencies"], keyed by driver name. *)

val total : table -> driver:int -> float
(** Measured total (last row) for a driver column; for tests. *)

val paper_total : table -> driver:int -> float

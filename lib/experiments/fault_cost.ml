open Dsmpm2_sim
open Dsmpm2_net
open Dsmpm2_core
open Dsmpm2_protocols

type policy = Page_transfer | Thread_migration

type row = {
  operation : string;
  measured_us : float array;
  paper_us : float array;
}

type table = {
  policy : policy;
  drivers : string list;
  rows : row list;
  summaries : (string * Stats.span_summary list) list;
}

(* One cold read fault: the page lives on node 1, a thread on node 0 reads
   it.  Returns the stage spans (in us) and the full stage distributions. *)
let one_fault ~driver ~policy =
  let dsm = Dsm.create ~nodes:2 ~driver () in
  let ids = Builtin.register_all dsm in
  let protocol =
    match policy with
    | Page_transfer -> ids.Builtin.li_hudak
    | Thread_migration -> ids.Builtin.migrate_thread
  in
  let x = Dsm.malloc dsm ~protocol ~home:(Dsm.On_node 1) 8 in
  ignore (Dsm.spawn dsm ~node:0 ~stack_bytes:1024 (fun () -> ignore (Dsm.read_int dsm x)));
  Dsm.run dsm;
  let stats = Dsm.stats dsm in
  let mean key = Time.to_us (Stats.span_mean stats key) in
  ( ( mean Instrument.stage_fault,
      mean Instrument.stage_request,
      mean Instrument.stage_transfer,
      mean Instrument.stage_migration,
      mean Instrument.stage_overhead_server +. mean Instrument.stage_overhead_client,
      mean Instrument.stage_total ),
    List.map (Stats.span_summary stats) Instrument.stages )

(* The paper's Tables 3 and 4, in the same column order as Driver.all. *)
let paper_page_transfer =
  [
    ("Page fault", [| 11.; 11.; 11.; 11. |]);
    ("Request page", [| 23.; 220.; 220.; 38. |]);
    ("Page transfer", [| 138.; 343.; 736.; 119. |]);
    ("Protocol overhead", [| 26.; 26.; 26.; 26. |]);
    ("Total", [| 198.; 600.; 993.; 194. |]);
  ]

let paper_thread_migration =
  [
    ("Page fault", [| 11.; 11.; 11.; 11. |]);
    ("Thread migration", [| 75.; 280.; 373.; 62. |]);
    ("Protocol overhead", [| 1.; 1.; 1.; 1. |]);
    ("Total", [| 87.; 292.; 385.; 74. |]);
  ]

let run policy =
  let measured = List.map (fun driver -> one_fault ~driver ~policy) Driver.all in
  let columns = List.map fst measured in
  let summaries =
    List.map2 (fun d (_, s) -> (d.Driver.name, s)) Driver.all measured
  in
  let col f = Array.of_list (List.map f columns) in
  let rows =
    match policy with
    | Page_transfer ->
        [
          ("Page fault", col (fun (f, _, _, _, _, _) -> f));
          ("Request page", col (fun (_, r, _, _, _, _) -> r));
          ("Page transfer", col (fun (_, _, t, _, _, _) -> t));
          ("Protocol overhead", col (fun (_, _, _, _, o, _) -> o));
          ("Total", col (fun (_, _, _, _, _, t) -> t));
        ]
    | Thread_migration ->
        [
          ("Page fault", col (fun (f, _, _, _, _, _) -> f));
          ("Thread migration", col (fun (_, _, _, m, _, _) -> m));
          ("Protocol overhead", col (fun (_, _, _, _, o, _) -> o));
          ("Total", col (fun (_, _, _, _, _, t) -> t));
        ]
  in
  let paper =
    match policy with
    | Page_transfer -> paper_page_transfer
    | Thread_migration -> paper_thread_migration
  in
  {
    policy;
    drivers = List.map (fun d -> d.Driver.name) Driver.all;
    rows =
      List.map2
        (fun (operation, measured_us) (_, paper_us) -> { operation; measured_us; paper_us })
        rows paper;
    summaries;
  }

let print ppf t =
  let title =
    match t.policy with
    | Page_transfer ->
        "Table 3: read fault under page-migration policy (us, measured / paper)"
    | Thread_migration ->
        "Table 4: read fault under thread-migration policy (us, measured / paper)"
  in
  Format.fprintf ppf "%s@." title;
  Format.fprintf ppf "%-20s" "Operation";
  List.iter (fun d -> Format.fprintf ppf " %18s" d) t.drivers;
  Format.fprintf ppf "@.";
  List.iter
    (fun row ->
      Format.fprintf ppf "%-20s" row.operation;
      Array.iteri
        (fun i m -> Format.fprintf ppf " %9.1f /%7.1f" m row.paper_us.(i))
        row.measured_us;
      Format.fprintf ppf "@.")
    t.rows

let policy_name = function
  | Page_transfer -> "page_transfer"
  | Thread_migration -> "thread_migration"

let to_json t =
  Json.Obj
    [
      ("policy", Json.String (policy_name t.policy));
      ("drivers", Json.List (List.map (fun d -> Json.String d) t.drivers));
      ( "rows",
        Json.List
          (List.map
             (fun row ->
               Json.Obj
                 [
                   ("operation", Json.String row.operation);
                   ( "measured_us",
                     Json.List
                       (Array.to_list
                          (Array.map (fun x -> Json.Float x) row.measured_us)) );
                   ( "paper_us",
                     Json.List
                       (Array.to_list
                          (Array.map (fun x -> Json.Float x) row.paper_us)) );
                 ])
             t.rows) );
      ( "stage_latencies",
        Json.Obj
          (List.map
             (fun (driver, summaries) ->
               ( driver,
                 Json.List
                   (List.filter_map
                      (fun s ->
                        if s.Stats.sm_samples = 0 then None
                        else Some (Stats.summary_to_json s))
                      summaries) ))
             t.summaries) );
    ]

let last_row t =
  match List.rev t.rows with
  | row :: _ -> row
  | [] -> invalid_arg "Fault_cost: empty table"

let total t ~driver = (last_row t).measured_us.(driver)
let paper_total t ~driver = (last_row t).paper_us.(driver)

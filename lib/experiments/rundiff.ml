(* Differential run comparison (`dsm diff`).

   The macro-bench suite gives every case a repeated-seed spread; this
   module turns that spread into a noise bound so a delta between two
   snapshots only reads as signal when it clears both noise_sigma·σ and a
   relative threshold.  Trace dumps are compared through Analyze — the same
   stage arithmetic, page classification and alert extraction the
   post-mortem report uses — so `dsm analyze` and `dsm diff` never disagree
   about what a stage or a pattern is. *)

open Dsmpm2_sim
module B = Bench_suite

let default_threshold_pct = 2.0
let noise_sigma = 3.0

(* --- sources --- *)

type source = Bench of B.t | Run of Run_meta.t * Analyze.t

let load_source path =
  match Gzip.read_file path with
  | Error msg -> Error (Printf.sprintf "%s: %s" path msg)
  | Ok contents -> (
      (* A macro-bench snapshot is one JSON document with a schema field; a
         trace dump is JSONL whose lines have no schema.  Sniff, don't
         trust extensions. *)
      let as_bench =
        match Json.of_string contents with
        | Ok j when Json.member "schema" j <> None -> Some (B.of_json j)
        | _ -> None
      in
      match as_bench with
      | Some (Ok t) -> Ok (Bench t)
      | Some (Error msg) -> Error (Printf.sprintf "%s: %s" path msg)
      | None -> (
          match Trace.of_jsonl contents with
          | Ok tr -> Ok (Run (Run_meta.empty, Analyze.analyze tr))
          | Error msg ->
              Error
                (Printf.sprintf
                   "%s: neither a macro-bench snapshot nor a trace dump (%s)"
                   path msg)))

(* --- deltas --- *)

type direction = Better | Worse | Same

type metric_delta = {
  md_metric : string;
  md_base : float;
  md_fresh : float;
  md_delta : float;
  md_pct : float;
  md_noise : float;
  md_significant : bool;
  md_direction : direction;
}

type case_delta = { cd_id : string; cd_metrics : metric_delta list }

type stage_delta = {
  sd_protocol : string;
  sd_stage : string;
  sd_base_mean_us : float;
  sd_fresh_mean_us : float;
  sd_base_p90_us : float;
  sd_fresh_p90_us : float;
  sd_base_samples : int;
  sd_fresh_samples : int;
  sd_pct : float;
  sd_significant : bool;
  sd_direction : direction;
}

type pattern_drift = { pd_page : int; pd_base : string; pd_fresh : string }

type alert_delta = {
  al_severity : string;
  al_kind : string;
  al_base : int;
  al_fresh : int;
}

type t = {
  rd_mode : [ `Bench | `Trace ];
  rd_threshold_pct : float;
  rd_cases : case_delta list;
  rd_only_baseline : string list;
  rd_only_fresh : string list;
  rd_stages : stage_delta list;
  rd_patterns : pattern_drift list;
  rd_alerts : alert_delta list;
}

let direction_of delta =
  if delta > 0. then Worse else if delta < 0. then Better else Same

let pct_of ~base delta = if base = 0. then 0. else 100. *. delta /. base

(* Signal = clears the seed-noise bound AND the relative threshold.  With a
   zero base the relative term vanishes, so any above-noise delta counts
   (a metric appearing from nothing is always news). *)
let clears ~threshold_pct ~noise ~base delta =
  delta <> 0.
  && Float.abs delta > noise
  && Float.abs delta >= threshold_pct /. 100. *. Float.abs base

(* --- bench mode --- *)

let case_delta ~threshold_pct base fresh =
  let metrics =
    List.map
      (fun name ->
        let b = B.metric_mean base name and f = B.metric_mean fresh name in
        let sb = B.metric_stddev base name
        and sf = B.metric_stddev fresh name in
        let delta = f -. b in
        let noise = noise_sigma *. Float.max sb sf in
        {
          md_metric = name;
          md_base = b;
          md_fresh = f;
          md_delta = delta;
          md_pct = pct_of ~base:b delta;
          md_noise = noise;
          md_significant = clears ~threshold_pct ~noise ~base:b delta;
          md_direction = direction_of delta;
        })
      B.metric_names
  in
  { cd_id = base.B.cr_case.B.c_id; cd_metrics = metrics }

let find_case t id =
  List.find_opt (fun cr -> cr.B.cr_case.B.c_id = id) t.B.bs_results

let seeds_of cr = List.map (fun s -> s.B.s_seed) cr.B.cr_samples

let seeds_str seeds =
  "[" ^ String.concat " " (List.map string_of_int seeds) ^ "]"

(* Apples-to-oranges detection: suite metadata, then per matched case the
   full identity — Run_meta (driver/protocol/nodes/case; git exempt), the
   workload parameters, and the tie-seed list (the noise bound is only
   meaningful over the same seeds). *)
let bench_compat a b =
  let errs = ref [] in
  let push e = errs := e :: !errs in
  (match Run_meta.compatible ~baseline:a.B.bs_meta ~fresh:b.B.bs_meta with
  | Ok () -> ()
  | Error m -> push m);
  List.iter
    (fun cra ->
      let id = cra.B.cr_case.B.c_id in
      match find_case b id with
      | None -> ()
      | Some crb ->
          (match
             Run_meta.compatible ~baseline:cra.B.cr_meta ~fresh:crb.B.cr_meta
           with
          | Ok () -> ()
          | Error m -> push (Printf.sprintf "%s: %s" id m));
          let pa = List.sort compare cra.B.cr_case.B.c_params
          and pb = List.sort compare crb.B.cr_case.B.c_params in
          if pa <> pb then push (id ^ ": case parameters differ");
          let sa = seeds_of cra and sb = seeds_of crb in
          if sa <> sb then
            push
              (Printf.sprintf "%s: tie seeds differ (%s vs %s)" id
                 (seeds_str sa) (seeds_str sb)))
    a.B.bs_results;
  match List.rev !errs with
  | [] -> Ok ()
  | es -> Error (String.concat "; " es)

let diff_bench ~threshold_pct a b =
  let matched, only_baseline =
    List.fold_left
      (fun (m, o) cra ->
        let id = cra.B.cr_case.B.c_id in
        match find_case b id with
        | Some crb -> (case_delta ~threshold_pct cra crb :: m, o)
        | None -> (m, id :: o))
      ([], []) a.B.bs_results
  in
  let only_fresh =
    List.filter_map
      (fun crb ->
        let id = crb.B.cr_case.B.c_id in
        match find_case a id with None -> Some id | Some _ -> None)
      b.B.bs_results
  in
  {
    rd_mode = `Bench;
    rd_threshold_pct = threshold_pct;
    rd_cases = List.rev matched;
    rd_only_baseline = List.rev only_baseline;
    rd_only_fresh = only_fresh;
    rd_stages = [];
    rd_patterns = [];
    rd_alerts = [];
  }

(* --- trace mode --- *)

(* Per (protocol, stage) duration samples, straight from the analyzer's
   fault chains — its stage arithmetic, not a reimplementation. *)
let stage_samples a =
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun ch ->
      List.iter
        (fun (stage, us) ->
          let key = (ch.Analyze.ch_protocol, stage) in
          let prev = try Hashtbl.find tbl key with Not_found -> [] in
          Hashtbl.replace tbl key (us :: prev))
        ch.Analyze.ch_stages)
    (Analyze.chains a);
  tbl

let stage_rank stage =
  let rec idx i = function
    | [] -> i
    | s :: rest -> if s = stage then i else idx (i + 1) rest
  in
  idx 0 Analyze.stage_order

let diff_stages ~threshold_pct base fresh =
  let tb = stage_samples base and tf = stage_samples fresh in
  let keys = Hashtbl.create 16 in
  Hashtbl.iter (fun k _ -> Hashtbl.replace keys k ()) tb;
  Hashtbl.iter (fun k _ -> Hashtbl.replace keys k ()) tf;
  Hashtbl.fold (fun k () acc -> k :: acc) keys []
  |> List.sort (fun (pa, sa) (pb, sb) ->
         match compare pa pb with
         | 0 -> compare (stage_rank sa) (stage_rank sb)
         | c -> c)
  |> List.map (fun ((protocol, stage) as key) ->
         let samples tbl = try Hashtbl.find tbl key with Not_found -> [] in
         let sb = samples tb and sf = samples tf in
         let stats = function
           | [] -> (0., 0., 0)
           | xs ->
               let d = Analyze.dist_of_list xs in
               (d.Analyze.d_mean_us, d.Analyze.d_p90_us, d.Analyze.d_samples)
         in
         let bm, bp90, bn = stats sb and fm, fp90, fn = stats sf in
         let delta = fm -. bm in
         let pct = pct_of ~base:bm delta in
         {
           sd_protocol = protocol;
           sd_stage = stage;
           sd_base_mean_us = bm;
           sd_fresh_mean_us = fm;
           sd_base_p90_us = bp90;
           sd_fresh_p90_us = fp90;
           sd_base_samples = bn;
           sd_fresh_samples = fn;
           sd_pct = pct;
           (* No repeat spread in a single trace, so the threshold alone
              separates signal from float dust; one-sided stages are
              reported but never gate. *)
           sd_significant =
             bn > 0 && fn > 0
             && clears ~threshold_pct ~noise:0. ~base:bm delta;
           sd_direction = direction_of delta;
         })

let diff_patterns base fresh =
  let patterns a =
    List.map
      (fun p -> (p.Analyze.pg_page, Analyze.pattern_to_string p.Analyze.pg_pattern))
      (Analyze.pages a)
  in
  let pf = patterns fresh in
  List.filter_map
    (fun (page, pb) ->
      match List.assoc_opt page pf with
      | Some p when p <> pb -> Some { pd_page = page; pd_base = pb; pd_fresh = p }
      | _ -> None)
    (patterns base)
  |> List.sort (fun a b -> compare a.pd_page b.pd_page)

let severity_rank s =
  (* critical first in reports *)
  let rec idx i = function
    | [] -> i
    | x :: rest -> if x = s then i else idx (i + 1) rest
  in
  -idx 0 Trace.alert_severities

let diff_alerts base fresh =
  let counts a =
    let tbl = Hashtbl.create 8 in
    List.iter
      (fun al ->
        let key = (al.Analyze.at_severity, al.Analyze.at_kind) in
        let n = try Hashtbl.find tbl key with Not_found -> 0 in
        Hashtbl.replace tbl key (n + 1))
      (Analyze.alerts a);
    tbl
  in
  let tb = counts base and tf = counts fresh in
  let keys = Hashtbl.create 8 in
  Hashtbl.iter (fun k _ -> Hashtbl.replace keys k ()) tb;
  Hashtbl.iter (fun k _ -> Hashtbl.replace keys k ()) tf;
  Hashtbl.fold (fun k () acc -> k :: acc) keys []
  |> List.sort (fun (sa, ka) (sb, kb) ->
         match compare (severity_rank sa) (severity_rank sb) with
         | 0 -> compare ka kb
         | c -> c)
  |> List.filter_map (fun ((severity, kind) as key) ->
         let n tbl = try Hashtbl.find tbl key with Not_found -> 0 in
         let b = n tb and f = n tf in
         if b = f then None
         else
           Some { al_severity = severity; al_kind = kind; al_base = b; al_fresh = f })

let diff_trace ~threshold_pct base fresh =
  {
    rd_mode = `Trace;
    rd_threshold_pct = threshold_pct;
    rd_cases = [];
    rd_only_baseline = [];
    rd_only_fresh = [];
    rd_stages = diff_stages ~threshold_pct base fresh;
    rd_patterns = diff_patterns base fresh;
    rd_alerts = diff_alerts base fresh;
  }

(* --- entry point --- *)

let diff ?(threshold_pct = default_threshold_pct) ?(force = false) ~baseline
    ~fresh () =
  let checked compat result =
    if force then Ok result
    else
      match compat with
      | Ok () -> Ok result
      | Error m ->
          Error
            (Printf.sprintf "refusing apples-to-oranges comparison: %s" m)
  in
  match (baseline, fresh) with
  | Bench a, Bench b ->
      checked (bench_compat a b) (diff_bench ~threshold_pct a b)
  | Run (ma, aa), Run (mb, ab) ->
      checked
        (Run_meta.compatible ~baseline:ma ~fresh:mb)
        (diff_trace ~threshold_pct aa ab)
  | Bench _, Run _ | Run _, Bench _ ->
      Error "cannot compare a macro-bench snapshot with a trace dump"

(* --- verdict --- *)

let time_delta cd = List.find_opt (fun m -> m.md_metric = "time_us") cd.cd_metrics

let gate_cases dir t =
  List.filter_map
    (fun cd ->
      match time_delta cd with
      | Some m when m.md_significant && m.md_direction = dir -> Some (cd, m)
      | _ -> None)
    t.rd_cases

let gate_stages dir t =
  List.filter
    (fun sd -> sd.sd_significant && sd.sd_direction = dir)
    t.rd_stages

let describe dir t =
  List.map
    (fun (cd, m) ->
      Printf.sprintf "%s: time %.1fus -> %.1fus (%+.1f%%, noise ±%.1f)"
        cd.cd_id m.md_base m.md_fresh m.md_pct m.md_noise)
    (gate_cases dir t)
  @ List.map
      (fun sd ->
        Printf.sprintf "%s/%s: stage mean %.1fus -> %.1fus (%+.1f%%)"
          sd.sd_protocol sd.sd_stage sd.sd_base_mean_us sd.sd_fresh_mean_us
          sd.sd_pct)
      (gate_stages dir t)

let regressions t = describe Worse t
let improvements t = describe Better t
let significant_regression t = regressions t <> []

(* --- rendering --- *)

let mode_str = function `Bench -> "macro-bench" | `Trace -> "trace"

let verdict_str m =
  if not m.md_significant then "ok"
  else match m.md_direction with
    | Worse -> "REGRESSED"
    | Better -> "improved"
    | Same -> "ok"

let alert_note al =
  if al.al_base = 0 then "new"
  else if al.al_fresh = 0 then "vanished"
  else Printf.sprintf "%+d" (al.al_fresh - al.al_base)

let summary_line t =
  let r = List.length (regressions t)
  and i = List.length (improvements t) in
  if r > 0 then
    Printf.sprintf "%d significant regression%s, %d improvement%s" r
      (if r = 1 then "" else "s")
      i
      (if i = 1 then "" else "s")
  else if i > 0 then
    Printf.sprintf "no regressions, %d significant improvement%s" i
      (if i = 1 then "" else "s")
  else "no significant change"

let pp_text ppf t =
  Format.fprintf ppf "run diff: %s mode, threshold %.1f%%%s@."
    (mode_str t.rd_mode) t.rd_threshold_pct
    (match t.rd_mode with
    | `Bench -> Printf.sprintf " + %.0f sigma seed noise" noise_sigma
    | `Trace -> "");
  if t.rd_cases <> [] then begin
    Format.fprintf ppf "%-38s %12s %12s %9s  %s@." "case" "base(us)"
      "fresh(us)" "time Δ" "verdict";
    List.iter
      (fun cd ->
        (match time_delta cd with
        | Some m ->
            Format.fprintf ppf "%-38s %12.1f %12.1f %+8.1f%%  %s@." cd.cd_id
              m.md_base m.md_fresh m.md_pct (verdict_str m)
        | None -> Format.fprintf ppf "%-38s (no time metric)@." cd.cd_id);
        List.iter
          (fun m ->
            if m.md_significant && m.md_metric <> "time_us" then
              Format.fprintf ppf "    ! %-14s %.1f -> %.1f (%+.1f%%, noise ±%.1f)@."
                m.md_metric m.md_base m.md_fresh m.md_pct m.md_noise)
          cd.cd_metrics)
      t.rd_cases
  end;
  if t.rd_only_baseline <> [] then
    Format.fprintf ppf "only in baseline: %s@."
      (String.concat ", " t.rd_only_baseline);
  if t.rd_only_fresh <> [] then
    Format.fprintf ppf "only in fresh: %s@." (String.concat ", " t.rd_only_fresh);
  if t.rd_stages <> [] then begin
    Format.fprintf ppf "critical-path stages (mean us):@.";
    List.iter
      (fun sd ->
        Format.fprintf ppf "  %-28s %10.1f -> %-10.1f %+7.1f%%  p90 %.1f -> %.1f (%d/%d spans)%s@."
          (sd.sd_protocol ^ "/" ^ sd.sd_stage)
          sd.sd_base_mean_us sd.sd_fresh_mean_us sd.sd_pct sd.sd_base_p90_us
          sd.sd_fresh_p90_us sd.sd_base_samples sd.sd_fresh_samples
          (if sd.sd_significant then
             match sd.sd_direction with
             | Worse -> "  REGRESSED"
             | Better -> "  improved"
             | Same -> ""
           else ""))
      t.rd_stages
  end;
  if t.rd_patterns <> [] then begin
    Format.fprintf ppf "page sharing-pattern drift:@.";
    List.iter
      (fun pd ->
        Format.fprintf ppf "  page %d: %s -> %s@." pd.pd_page pd.pd_base
          pd.pd_fresh)
      t.rd_patterns
  end;
  if t.rd_alerts <> [] then begin
    Format.fprintf ppf "watchdog alerts:@.";
    List.iter
      (fun al ->
        Format.fprintf ppf "  %-8s %-20s %d -> %d (%s)@." al.al_severity
          al.al_kind al.al_base al.al_fresh (alert_note al))
      t.rd_alerts
  end;
  Format.fprintf ppf "verdict: %s@." (summary_line t)

let pp_markdown ppf t =
  Format.fprintf ppf "## Run diff (%s mode, threshold %.1f%%)@.@."
    (mode_str t.rd_mode) t.rd_threshold_pct;
  if t.rd_cases <> [] then begin
    Format.fprintf ppf "| case | base time (us) | fresh time (us) | Δ | verdict |@.";
    Format.fprintf ppf "|---|---:|---:|---:|---|@.";
    List.iter
      (fun cd ->
        match time_delta cd with
        | Some m ->
            Format.fprintf ppf "| %s | %.1f | %.1f | %+.1f%% | %s |@." cd.cd_id
              m.md_base m.md_fresh m.md_pct (verdict_str m)
        | None -> ())
      t.rd_cases;
    Format.fprintf ppf "@.";
    let extras =
      List.concat_map
        (fun cd ->
          List.filter_map
            (fun m ->
              if m.md_significant && m.md_metric <> "time_us" then
                Some (cd.cd_id, m)
              else None)
            cd.cd_metrics)
        t.rd_cases
    in
    if extras <> [] then begin
      Format.fprintf ppf "Other significant metric shifts:@.@.";
      List.iter
        (fun (id, m) ->
          Format.fprintf ppf "- `%s` %s: %.1f -> %.1f (%+.1f%%)@." id
            m.md_metric m.md_base m.md_fresh m.md_pct)
        extras;
      Format.fprintf ppf "@."
    end
  end;
  if t.rd_only_baseline <> [] || t.rd_only_fresh <> [] then begin
    List.iter
      (fun id -> Format.fprintf ppf "- only in baseline: `%s`@." id)
      t.rd_only_baseline;
    List.iter
      (fun id -> Format.fprintf ppf "- only in fresh: `%s`@." id)
      t.rd_only_fresh;
    Format.fprintf ppf "@."
  end;
  if t.rd_stages <> [] then begin
    Format.fprintf ppf "| protocol/stage | base mean (us) | fresh mean (us) | Δ | spans |@.";
    Format.fprintf ppf "|---|---:|---:|---:|---|@.";
    List.iter
      (fun sd ->
        Format.fprintf ppf "| %s/%s | %.1f | %.1f | %+.1f%% | %d/%d |@."
          sd.sd_protocol sd.sd_stage sd.sd_base_mean_us sd.sd_fresh_mean_us
          sd.sd_pct sd.sd_base_samples sd.sd_fresh_samples)
      t.rd_stages;
    Format.fprintf ppf "@."
  end;
  if t.rd_patterns <> [] then begin
    Format.fprintf ppf "Pattern drift:@.@.";
    List.iter
      (fun pd ->
        Format.fprintf ppf "- page %d: %s -> %s@." pd.pd_page pd.pd_base
          pd.pd_fresh)
      t.rd_patterns;
    Format.fprintf ppf "@."
  end;
  if t.rd_alerts <> [] then begin
    Format.fprintf ppf "Alert changes:@.@.";
    List.iter
      (fun al ->
        Format.fprintf ppf "- **%s** `%s`: %d -> %d (%s)@." al.al_severity
          al.al_kind al.al_base al.al_fresh (alert_note al))
      t.rd_alerts;
    Format.fprintf ppf "@."
  end;
  Format.fprintf ppf "**Verdict:** %s@." (summary_line t)

(* --- JSON --- *)

let direction_to_string = function
  | Better -> "better"
  | Worse -> "worse"
  | Same -> "same"

let metric_delta_to_json m =
  Json.Obj
    [
      ("metric", Json.String m.md_metric);
      ("base", Json.Float m.md_base);
      ("fresh", Json.Float m.md_fresh);
      ("delta", Json.Float m.md_delta);
      ("pct", Json.Float m.md_pct);
      ("noise", Json.Float m.md_noise);
      ("significant", Json.Bool m.md_significant);
      ("direction", Json.String (direction_to_string m.md_direction));
    ]

let stage_delta_to_json sd =
  Json.Obj
    [
      ("protocol", Json.String sd.sd_protocol);
      ("stage", Json.String sd.sd_stage);
      ("base_mean_us", Json.Float sd.sd_base_mean_us);
      ("fresh_mean_us", Json.Float sd.sd_fresh_mean_us);
      ("base_p90_us", Json.Float sd.sd_base_p90_us);
      ("fresh_p90_us", Json.Float sd.sd_fresh_p90_us);
      ("base_samples", Json.Int sd.sd_base_samples);
      ("fresh_samples", Json.Int sd.sd_fresh_samples);
      ("pct", Json.Float sd.sd_pct);
      ("significant", Json.Bool sd.sd_significant);
      ("direction", Json.String (direction_to_string sd.sd_direction));
    ]

let to_json t =
  Json.Obj
    [
      ("mode", Json.String (mode_str t.rd_mode));
      ("threshold_pct", Json.Float t.rd_threshold_pct);
      ( "cases",
        Json.List
          (List.map
             (fun cd ->
               Json.Obj
                 [
                   ("id", Json.String cd.cd_id);
                   ( "metrics",
                     Json.List (List.map metric_delta_to_json cd.cd_metrics) );
                 ])
             t.rd_cases) );
      ( "only_baseline",
        Json.List (List.map (fun s -> Json.String s) t.rd_only_baseline) );
      ( "only_fresh",
        Json.List (List.map (fun s -> Json.String s) t.rd_only_fresh) );
      ("stages", Json.List (List.map stage_delta_to_json t.rd_stages));
      ( "patterns",
        Json.List
          (List.map
             (fun pd ->
               Json.Obj
                 [
                   ("page", Json.Int pd.pd_page);
                   ("base", Json.String pd.pd_base);
                   ("fresh", Json.String pd.pd_fresh);
                 ])
             t.rd_patterns) );
      ( "alerts",
        Json.List
          (List.map
             (fun al ->
               Json.Obj
                 [
                   ("severity", Json.String al.al_severity);
                   ("kind", Json.String al.al_kind);
                   ("base", Json.Int al.al_base);
                   ("fresh", Json.Int al.al_fresh);
                 ])
             t.rd_alerts) );
      ("regressions", Json.List (List.map (fun s -> Json.String s) (regressions t)));
      ( "improvements",
        Json.List (List.map (fun s -> Json.String s) (improvements t)) );
      ("significant_regression", Json.Bool (significant_regression t));
    ]

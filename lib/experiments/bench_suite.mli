(** The macro-benchmark observatory ([dsm bench]).

    Runs every application kernel under a fixed matrix of consistency
    protocols and network drivers, once per engine tie seed, and records
    what the {e simulated} system did: virtual-time wall clock, message and
    byte counts, fault counts, and the fault-latency tail (p50/p90/p99 from
    the runtime's {!Dsmpm2_sim.Stats} histograms).  Because the simulation
    is deterministic given a tie seed, every number is bit-reproducible on
    any host — the committed [BENCH_macro.json] baseline is a statement
    about the system, not about CI hardware.

    The repeated-seed spread per case is the noise bound {!Rundiff} uses to
    separate real regressions from schedule sensitivity.  Case parameters
    are part of the schema: a case id must mean the same workload forever,
    so grow the matrix by adding cases rather than editing existing ones. *)

open Dsmpm2_sim

val schema_version : string
(** ["dsm-bench-macro/1"], stored in the snapshot's ["schema"] field. *)

val default_seeds : int list
(** The tie seeds each case runs under ([[0; 1; 2]]). *)

(** {2 Cases} *)

type case = {
  c_id : string;  (** ["app:protocol:driver-slug"], stable forever *)
  c_app : string;  (** jacobi, tsp, coloring, lu, matmul or sort *)
  c_protocol : string;
  c_driver : string;  (** the driver's full name, e.g. ["BIP/Myrinet"] *)
  c_nodes : int;
  c_params : (string * int) list;  (** app-specific sizes, part of the schema *)
  c_quick : bool;  (** member of the CI smoke subset *)
}

val cases : unit -> case list
(** The committed matrix, in stable order. *)

val filter_cases : ?filter:string -> ?quick:bool -> case list -> case list
(** [filter] keeps cases whose id contains the substring; [quick] keeps
    only the CI smoke subset.  Both compose. *)

(** {2 Measurements} *)

type sample = {
  s_seed : int;
  s_time_us : float;  (** simulated wall clock of the whole run *)
  s_messages : int;
  s_bytes : int;
  s_read_faults : int;
  s_write_faults : int;
  s_dropped : int;  (** messages lost to fault injection (0 without a plan) *)
  s_rpc_retries : int;  (** RPC retransmissions after deadline expiry *)
  s_fault_p50_us : float;
  s_fault_p90_us : float;
  s_fault_p99_us : float;
  s_fault_p999_us : float;
      (** extreme fault-latency tail from the online telemetry sketch
          ({!Dsmpm2_core.Telemetry.fault_percentile}) — the Stats
          histogram's fixed buckets are too coarse at p99.9.  0 in
          snapshots written before the sketch joined the schema. *)
}

type case_result = {
  cr_case : case;
  cr_meta : Run_meta.t;  (** driver/protocol/nodes/case identity *)
  cr_samples : sample list;  (** one per seed, in seed order *)
}

type t = { bs_meta : Run_meta.t; bs_results : case_result list }

val run_case : ?seeds:int list -> case -> case_result
(** Runs one case under each seed.  Deterministic: the same case and seeds
    reproduce the same samples exactly. *)

val run :
  ?seeds:int list ->
  ?filter:string ->
  ?quick:bool ->
  ?progress:(case_result -> unit) ->
  unit ->
  t
(** The sweep over {!cases} (after {!filter_cases}); [progress] fires after
    each case completes. *)

(** {2 Aggregates} *)

val metric_names : string list
(** Every per-sample metric, in schema order: [time_us], [messages],
    [bytes], [read_faults], [write_faults], [dropped], [rpc_retries],
    [fault_p50_us], [fault_p90_us], [fault_p99_us], [fault_p999_us].
    [dropped], [rpc_retries] and [fault_p999_us] joined after the first
    baselines; snapshots without them parse as zero. *)

val metric : string -> sample -> float
(** A sample's value for a {!metric_names} member (counts as floats). *)

val metric_mean : case_result -> string -> float
val metric_stddev : case_result -> string -> float
(** Population standard deviation over the case's seeds — the repeat-noise
    estimate. 0 with fewer than two samples. *)

(** {2 Snapshot I/O} *)

val to_json : t -> Json.t
(** The stable [BENCH_macro.json] document: schema version, suite metadata,
    one object per case with its parameters, identity metadata and
    per-seed samples. *)

val of_json : Json.t -> (t, string) result
(** Inverse of {!to_json}; rejects unknown schema versions by name. *)

val load : string -> (t, string) result
(** Reads a snapshot from a file (gzip-transparent, like every observability
    loader) and parses it. *)

val print : Format.formatter -> t -> unit
(** A per-case summary table (mean over seeds, with the time noise bound). *)

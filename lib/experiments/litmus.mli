(** Memory-model litmus tests, run against every protocol.

    The platform's purpose is to let protocol designers "compare their
    protocols within a common environment"; litmus tests are the sharpest
    such comparison.  Three classics, each swept over thread start offsets
    and initial cache states (a deterministic simulator explores one
    interleaving per configuration, so the sweep is what surfaces
    relaxations):

    - {b MP} (message passing): T0 writes [x:=1] then [flag:=1]; T1 reads
      [flag] then [x].  Sequential consistency forbids seeing [flag = 1]
      with [x = 0]; protocols that defer invalidation (eager/lazy release
      consistency, Java consistency) exhibit it when T1 holds a stale cached
      copy of [x].
    - {b SB} (store buffering): T0 does [x:=1; r1:=y], T1 does [y:=1;
      r2:=x].  SC forbids [r1 = r2 = 0]; stale caches allow it.
    - {b CoRR} (coherence of read-read): T1 reads [x] twice while T0 writes
      it; no protocol may let the two reads go backwards ([r1 = 1] then
      [r2 = 0]) — per-location coherence holds even for the weak models.

    [x] and [flag]/[y] live on different pages so the per-page protocols
    treat them independently. *)

type kind = Mp | Sb | Corr

type observation = { r1 : int; r2 : int }

val violates : kind -> observation -> bool
(** Whether the observation is forbidden under sequential consistency (MP,
    SB) or under cache coherence (CoRR). *)

type cell = {
  protocol : string;
  kind : kind;
  configurations : int;  (** sweep size *)
  violations : int;  (** configurations whose observation was forbidden *)
}

type cache_mode = No_cache | Cache_all | Cache_payload_only

val run_one :
  protocol:string -> kind:kind -> cache:cache_mode -> offset_us:float -> observation
(** One configuration: [cache] controls which variables the observer caches
    before the writer starts ([Cache_payload_only] caches [x] but not the
    flag — the configuration that exposes MP violations in the relaxed
    models); [offset_us] delays the observer. *)

val sweep : protocol:string -> kind:kind -> cell
(** Runs the standard sweep (3 cache modes x offsets 0..1000 us). *)

val run : unit -> cell list
(** Every kind under every registered protocol. *)

val sequentially_consistent_protocols : string list
(** The protocols for which the harness must observe zero MP/SB
    violations. *)

val print : Format.formatter -> cell list -> unit

val to_json : cell list -> Dsmpm2_sim.Json.t

(** Post-mortem trace analyzer.

    Reconstructs what a run actually did from its typed event trace — the
    paper's "very precise post-mortem monitoring tools" turned into a
    queryable report.  Feed it a live runtime's trace ({!Dsmpm2_core.Monitor.trace})
    or a JSONL dump re-loaded with {!Dsmpm2_sim.Trace.of_jsonl}; get back:

    - {b fault critical paths}: each fault span's
      fault → request → send → install chain cut into stages
      (request propagation, remote serve, wire transfer, local install, or a
      thread-migration leg), with exact p50/p90/p99 per protocol and the
      top-K slowest spans including their full event chains;
    - {b per-page profiles}: sharing-pattern classification (private,
      read-mostly, single-writer, producer-consumer, migratory,
      false-sharing) and a heatmap ranked by faults and bytes moved;
    - {b lock and barrier contention}: per-lock wait/hold distributions
      from the client-side request/granted/released events, per-barrier
      arrival imbalance;
    - {b a protocol advisor}: pattern → recommended built-in protocol, as a
      [dsm_malloc ~protocol] attribute suggestion per page.

    Per-driver comparisons come from analyzing one trace per driver — the
    network driver is a property of the run, not of individual events. *)

open Dsmpm2_sim

(** {2 Latency distributions} *)

type dist = {
  d_samples : int;
  d_total_us : float;
  d_mean_us : float;
  d_p50_us : float;
  d_p90_us : float;
  d_p99_us : float;
  d_max_us : float;
}
(** Exact percentiles over all samples (post-mortem data is small). *)

val dist_of_list : float list -> dist

(** {2 Fault critical paths} *)

val stage_order : string list
(** [["request"; "serve"; "transfer"; "install"; "migrate"]] — the stage
    names in causal order.  [migrate] replaces the transfer chain for
    thread-migration protocols (spans with a migration and no page send). *)

type chain = {
  ch_span : int;
  ch_node : int;  (** faulting node *)
  ch_page : int;
  ch_protocol : string;
  ch_mode : string;  (** "read" or "write" *)
  ch_start_us : float;
  ch_total_us : float;
  ch_stages : (string * float) list;  (** only the stages present, in order *)
  ch_hops : int;  (** page requests in the span (forwarding chain length) *)
  ch_events : (Trace.entry * Trace.event) list;
}

(** {2 Per-page sharing patterns} *)

type pattern = Dsmpm2_core.Telemetry.pattern =
  | Private  (** one accessing node *)
  | Read_mostly  (** replicated, never written remotely *)
  | Single_writer  (** one writer, occasional remote readers *)
  | Producer_consumer  (** one writer, readers repeatedly re-fetch *)
  | Migratory  (** write access hands off between nodes serially *)
  | False_sharing  (** concurrent diffs from distinct nodes on one page *)
  | Mixed  (** multiple writers without a clean handoff pattern *)
(** Re-export of the canonical type: the classifier is
    {!Dsmpm2_core.Telemetry.Pages}, shared between this post-mortem view
    and the online engine, so the two always agree. *)

val pattern_to_string : pattern -> string

val recommended_protocol : pattern -> string option
(** The advisor's mapping: migratory data wants the thread moved to it
    ([migrate_thread]), tolerated false sharing wants multiple-writer diffs
    ([hbrc_mw]), read-mostly and producer-consumer pages want updates pushed
    ([write_update]), a single writer fits eager release consistency
    ([erc_sw]).  [None] for private/mixed: keep the current protocol. *)

type page_profile = {
  pg_page : int;
  pg_protocol : string;
  pg_pattern : pattern;
  pg_read_faults : int;
  pg_write_faults : int;
  pg_readers : int list;  (** nodes that read-faulted, sorted *)
  pg_writers : int list;  (** nodes that write-faulted or sent diffs, sorted *)
  pg_diff_senders : int list;  (** distinct nodes whose diffs touched the page *)
  pg_transfers : int;  (** whole-page sends *)
  pg_bytes : int;  (** page-send bytes plus attributed diff bytes *)
  pg_invalidations : int;
}

type advice = {
  ad_page : int;
  ad_pattern : pattern;
  ad_current : string;
  ad_recommended : string;
}

(** {2 Synchronization contention} *)

type lock_profile = {
  lk_lock : int;
  lk_nodes : int;  (** distinct client nodes *)
  lk_acquisitions : int;
  lk_wait : dist;  (** request → granted, per acquisition *)
  lk_hold : dist;  (** granted → released *)
}

type barrier_profile = {
  br_barrier : int;
  br_parties : int;  (** distinct arriving nodes *)
  br_rounds : int;  (** completed rounds observed *)
  br_imbalance : dist;  (** last minus first arrival, per round *)
}

(** {2 Injected faults} *)

type fault_summary = {
  fs_drops : int;  (** seeded message losses ({!Trace.Drop}) *)
  fs_blackholes : int;  (** crash-window swallows ({!Trace.Blackhole}) *)
  fs_crash_windows : int;  (** {!Trace.Crash} window starts *)
  fs_restarts : int;  (** {!Trace.Restart} events *)
  fs_rpc_retries : int;  (** {!Trace.Rpc_retry} retransmissions *)
}
(** Counts of the fault layer's typed trace events — zero everywhere for an
    unfaulted run. *)

(** {2 Watchdog alerts} *)

type alert_line = {
  at_us : float;
  at_severity : string;
  at_kind : string;
  at_node : int;
  at_detail : string;
}
(** One [Trace.Alert] event from a run monitored by the live watchdog
    ({!Dsmpm2_core.Watchdog}), as found in the trace. *)

(** {2 Analysis} *)

type t

val analyze : ?top:int -> Trace.t -> t
(** Runs every analysis over the trace.  [top] (default 5) bounds the
    slowest-spans list. *)

val chains : t -> chain list
(** All fault-rooted spans, chronological. *)

val pages : t -> page_profile list
(** The heatmap: ranked by total faults, then bytes moved, descending. *)

val page_profile : t -> page:int -> page_profile option
val locks : t -> lock_profile list

val barriers : t -> barrier_profile list
val advice : t -> advice list
(** Only pages whose recommended protocol differs from the one they ran. *)

val alerts : t -> alert_line list
(** Watchdog findings recorded in the trace, chronological. *)

val faults : t -> fault_summary
(** Injected-fault event counts found in the trace. *)

val report :
  ?sections:
    [ `Alerts | `Faults | `Critical | `Pages | `Locks | `Barriers | `Advice ]
    list ->
  Format.formatter ->
  t ->
  unit
(** The human-readable report; [sections] defaults to all of them (the
    alert summary is printed only when the trace contains alerts). *)

val to_json : ?meta:Run_meta.t -> t -> Json.t
(** Stable machine-readable form of the whole analysis.  [meta] is the
    run's identity (driver, protocol, seed, ...) when the caller knows it —
    a trace re-loaded from JSONL carries none, so it defaults to just the
    git revision. *)

val folded : Format.formatter -> t -> unit
(** Folded-stack lines ([dsmpm2;<proto>;fault;<stage> <us>] plus lock and
    barrier frames) for flamegraph.pl or speedscope. *)

open Dsmpm2_net
open Dsmpm2_core
open Dsmpm2_protocols

type kind = Mp | Sb | Corr
type observation = { r1 : int; r2 : int }

let violates kind obs =
  match kind with
  | Mp -> obs.r1 = 1 && obs.r2 = 0 (* saw the flag but not the payload *)
  | Sb -> obs.r1 = 0 && obs.r2 = 0 (* both reads missed both writes *)
  | Corr -> obs.r1 = 1 && obs.r2 = 0 (* reads of one location went backwards *)

type cell = {
  protocol : string;
  kind : kind;
  configurations : int;
  violations : int;
}

let all_protocols =
  [
    "li_hudak"; "migrate_thread"; "erc_sw"; "hbrc_mw"; "java_ic"; "java_pf";
    "li_hudak_fixed"; "hybrid_rw"; "entry_ec"; "write_update";
  ]

let sequentially_consistent_protocols =
  [ "li_hudak"; "migrate_thread"; "li_hudak_fixed"; "hybrid_rw" ]

type cache_mode = No_cache | Cache_all | Cache_payload_only

let run_one ~protocol ~kind ~cache ~offset_us =
  let dsm = Dsm.create ~nodes:2 ~driver:Driver.bip_myrinet () in
  ignore (Builtin.register_all dsm);
  ignore (Builtin.register_extras dsm);
  let proto = Option.get (Dsm.protocol_by_name dsm protocol) in
  (* Two variables on two distinct pages, both homed on the writer's node so
     the observer's copies are genuine remote caches. *)
  let x = Dsm.malloc dsm ~protocol:proto ~home:(Dsm.On_node 0) 8 in
  let y = Dsm.malloc dsm ~protocol:proto ~home:(Dsm.On_node 0) 8 in
  let r1 = ref (-1) and r2 = ref (-1) in
  let cache_x = cache <> No_cache in
  let cache_y = cache = Cache_all in
  (match kind with
  | Mp ->
      (* T0: x := 1; flag(y) := 1.      T1: r1 := flag; r2 := x. *)
      ignore
        (Dsm.spawn dsm ~node:0 (fun () ->
             Dsm.compute dsm 500.;
             Dsm.write_int dsm x 1;
             Dsm.write_int dsm y 1));
      ignore
        (Dsm.spawn dsm ~node:1 (fun () ->
             if cache_x then ignore (Dsm.read_int dsm x);
             if cache_y then ignore (Dsm.read_int dsm y);
             Dsm.compute dsm (500. +. offset_us);
             r1 := Dsm.read_int dsm y;
             r2 := Dsm.read_int dsm x))
  | Sb ->
      (* T0: x := 1; r1 := y.           T1: y := 1; r2 := x. *)
      ignore
        (Dsm.spawn dsm ~node:0 (fun () ->
             if cache_y then ignore (Dsm.read_int dsm y);
             Dsm.compute dsm 500.;
             Dsm.write_int dsm x 1;
             r1 := Dsm.read_int dsm y));
      ignore
        (Dsm.spawn dsm ~node:1 (fun () ->
             if cache_x then ignore (Dsm.read_int dsm x);
             if cache_y then ignore (Dsm.read_int dsm y);
             Dsm.compute dsm (500. +. offset_us);
             Dsm.write_int dsm y 1;
             r2 := Dsm.read_int dsm x))
  | Corr ->
      (* T0: x := 1.                    T1: r1 := x; r2 := x. *)
      ignore
        (Dsm.spawn dsm ~node:0 (fun () ->
             Dsm.compute dsm 500.;
             Dsm.write_int dsm x 1));
      ignore
        (Dsm.spawn dsm ~node:1 (fun () ->
             if cache_x then ignore (Dsm.read_int dsm x);
             Dsm.compute dsm (400. +. offset_us);
             r1 := Dsm.read_int dsm x;
             Dsm.compute dsm 50.;
             r2 := Dsm.read_int dsm x)));
  Dsm.run dsm;
  { r1 = !r1; r2 = !r2 }

let offsets = [ 0.; 100.; 200.; 400.; 700.; 1_000. ]

let sweep ~protocol ~kind =
  let configurations = ref 0 and violations = ref 0 in
  List.iter
    (fun cache ->
      List.iter
        (fun offset_us ->
          incr configurations;
          let obs = run_one ~protocol ~kind ~cache ~offset_us in
          if violates kind obs then incr violations)
        offsets)
    [ No_cache; Cache_all; Cache_payload_only ];
  { protocol; kind; configurations = !configurations; violations = !violations }

let run () =
  List.concat_map
    (fun protocol ->
      List.map (fun kind -> sweep ~protocol ~kind) [ Mp; Sb; Corr ])
    all_protocols

let kind_name = function Mp -> "MP" | Sb -> "SB" | Corr -> "CoRR"

let print ppf cells =
  Format.fprintf ppf
    "Litmus tests: forbidden-outcome observations over the sweep (18 \
     configurations each)@.";
  Format.fprintf ppf "%-16s %8s %8s %8s@." "Protocol" "MP" "SB" "CoRR";
  List.iter
    (fun protocol ->
      Format.fprintf ppf "%-16s" protocol;
      List.iter
        (fun kind ->
          let c =
            List.find (fun c -> c.protocol = protocol && c.kind = kind) cells
          in
          Format.fprintf ppf " %4d/%-3d" c.violations c.configurations)
        [ Mp; Sb; Corr ];
      Format.fprintf ppf "%s@."
        (if List.mem protocol sequentially_consistent_protocols then
           "   (sequential consistency: must be 0)"
         else if protocol = "write_update" then
           "   (processor consistency: MP forbidden, SB allowed)"
         else "   (relaxed model: stale reads allowed without sync)"))
    all_protocols

let to_json cells =
  let open Dsmpm2_sim in
  Json.List
    (List.map
       (fun c ->
         Json.Obj
           [
             ("protocol", Json.String c.protocol);
             ("kind", Json.String (kind_name c.kind));
             ("configurations", Json.Int c.configurations);
             ("violations", Json.Int c.violations);
           ])
       cells)

(** PM2's Remote Procedure Call mechanism, on top of the network layer.

    A service is a named handler; invoking it sends a request message (whose
    cost on the wire is chosen by the caller: a control message, a bulk
    transfer, ...) to the destination node, where the handler runs in a
    freshly spawned Marcel thread — the paper's "invocations can involve the
    creation of a new thread".  [call] blocks the calling thread until the
    reply arrives; [oneway] returns immediately.

    Payloads use an extensible variant so that each subsystem (DSM
    communication, locks, barriers, Hyperion) declares its own message
    constructors without this module knowing about them. *)

open Dsmpm2_net

type payload = ..
type payload += Unit

type t

type handler = src:int -> payload -> payload * Driver.cost
(** Runs on the destination node in a new thread; returns the reply and its
    wire cost. *)

type service

type retry_policy = {
  timeout_us : float;  (** first attempt's reply deadline *)
  retries : int;  (** maximum retransmissions after the first attempt *)
  backoff : float;  (** deadline multiplier per attempt (>= 1) *)
  jitter_us : float;  (** seeded uniform extra per deadline, in [0, jitter_us) *)
}

val default_retry : retry_policy
(** 600 us deadline, 3 retransmissions, exponential backoff x2, 40 us
    jitter: with the drivers' sub-10 us latencies, a healthy reply always
    beats the first deadline, while total patience (~ 4.5 ms) stays well
    under typical crash windows so a call into a dead node fails fast. *)

exception Timeout of { service : string; dst : int; attempts : int }
(** Raised in the calling thread when every attempt's deadline expired. *)

val create : Marcel.t -> Network.t -> t
val marcel : t -> Marcel.t
val network : t -> Network.t

val set_retry : t -> ?seed:int -> retry_policy option -> unit
(** Arms (or with [None] disarms) reply deadlines and retransmission for
    every subsequent {!call}.  Without a policy, [call] suspends forever if
    the reply is lost — the historical behaviour, kept as the default
    because deadline timers add events and RNG draws that would perturb
    existing seeded schedules.  With a policy, each call sends the request
    with a fresh request id, arms a deadline of
    [timeout_us * backoff^(attempt-1) + jitter] (jitter drawn from a stream
    salted from [seed], in call order), retransmits while attempts remain
    and raises {!Timeout} in the calling thread once they run out.  The
    server suppresses duplicate executions by request id ({e at-least-once
    delivery, at-most-once execution}): a retransmission of a request whose
    handler already ran gets the cached reply resent, one still running is
    answered by the original's reply.  Lock, barrier and page services are
    therefore safe under retransmission without their own idempotence
    logic. *)

val retry : t -> retry_policy option

val set_trace : t -> Dsmpm2_sim.Trace.t -> unit
(** Wires fault forensics: once installed (and while the trace is enabled),
    every retransmission emits a typed [Trace.Rpc_retry] event carrying the
    service name, the link and the attempt count, stamped with the calling
    thread's operation span (captured at call time, since the retry timer
    fires outside fiber context). *)

val retransmissions : t -> int
(** Retransmissions sent so far — the watchdog's retry-storm feed.  The
    per-call waiting times are recorded in the "rpc.retry.delay" histogram
    on {!Network.stats}. *)

val duplicates_served : t -> int
(** Duplicate requests answered from the server-side request-id cache. *)

val register : t -> name:string -> handler -> service
val service_name : t -> service -> string

val call : t -> dst:int -> service:service -> cost:Driver.cost -> payload -> payload
(** Blocking invocation from the calling Marcel thread.  Pending CPU charges
    are flushed first.  [dst] may equal the caller's node (loopback). *)

val oneway : t -> dst:int -> service:service -> cost:Driver.cost -> payload -> unit
(** Fire-and-forget invocation; the handler still runs (its reply is
    discarded).  May also be called from plain event context by giving the
    source node explicitly with [oneway_from]. *)

val oneway_from :
  t -> src:int -> dst:int -> service:service -> cost:Driver.cost -> payload -> unit

val calls_made : t -> int

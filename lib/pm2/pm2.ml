open Dsmpm2_sim
open Dsmpm2_net

type t = {
  eng : Engine.t;
  marcel : Marcel.t;
  rpc : Rpc.t;
  net : Network.t;
  iso : Isoalloc.t;
  pm2_trace : Trace.t;
  mutable migrations : int;
}

let create ?tie_seed ?jitter ?(page_size = 4096) ~nodes ~driver () =
  let eng = Engine.create ?tie_seed () in
  let marcel = Marcel.create eng ~nodes in
  let net = Network.create ?jitter eng ~driver ~nodes in
  let rpc = Rpc.create marcel net in
  let pm2_trace = Trace.create () in
  (* Fault forensics: the network and RPC layers emit Drop/Blackhole and
     Rpc_retry events into the shared trace.  The span source walks
     fiber -> Marcel thread -> active span, so a message dropped while an
     operation's thread is sending lands in that operation's span. *)
  Network.set_trace net pm2_trace ~span:(fun () ->
      match Engine.current_fiber eng with
      | None -> Trace.no_span
      | Some fid -> (
          match Marcel.tid_of_fiber marcel fid with
          | None -> Trace.no_span
          | Some tid -> Trace.thread_span pm2_trace ~tid));
  Rpc.set_trace rpc pm2_trace;
  {
    eng;
    marcel;
    rpc;
    net;
    iso = Isoalloc.create ~page_size ();
    pm2_trace;
    migrations = 0;
  }

let engine t = t.eng
let marcel t = t.marcel
let rpc t = t.rpc
let network t = t.net
let iso t = t.iso
let nodes t = Marcel.node_count t.marcel
let driver t = Network.driver t.net
let trace t = t.pm2_trace
let migrations t = t.migrations

let spawn t ?stack_bytes ?attached_bytes ?migratable ~node f =
  Marcel.spawn t.marcel ?stack_bytes ?attached_bytes ?migratable ~node f

let self_node t = Marcel.node (Marcel.self t.marcel)

let migrate t ~dst =
  let th = Marcel.self t.marcel in
  let src = Marcel.node th in
  if src <> dst then begin
    Marcel.flush_charges t.marcel;
    t.migrations <- t.migrations + 1;
    if Trace.enabled t.pm2_trace then
      Trace.emit t.pm2_trace t.eng
        ~span:(Trace.thread_span t.pm2_trace ~tid:(Marcel.tid th))
        (Trace.Migration { thread = Marcel.tid th; src; dst });
    Engine.suspend t.eng (fun resume ->
        Network.send t.net ~src ~dst
          ~cost:(Driver.Migration (Marcel.footprint_bytes th))
          (fun () ->
            Marcel.set_node t.marcel th dst;
            resume ()))
  end

let migrate_if_requested t =
  let th = Marcel.self t.marcel in
  match Marcel.pending_move th with
  | Some dst ->
      Marcel.clear_move th;
      if dst <> Marcel.node th then migrate t ~dst
  | None -> ()

let run ?limit t = Engine.run ?limit t.eng
let now_us t = Time.to_us (Engine.now t.eng)

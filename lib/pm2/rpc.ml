open Dsmpm2_sim
open Dsmpm2_net

type payload = ..
type payload += Unit

type handler = src:int -> payload -> payload * Driver.cost
type service = int

type retry_policy = {
  timeout_us : float;
  retries : int;
  backoff : float;
  jitter_us : float;
}

let default_retry =
  { timeout_us = 600.; retries = 3; backoff = 2.; jitter_us = 40. }

exception Timeout of { service : string; dst : int; attempts : int }

(* Server-side memory of one request id: [Running] while the handler thread
   is still executing (a duplicate arriving now is satisfied by the reply the
   original will send), [Done] afterwards (a duplicate triggers a cached
   resend without re-running the handler).  This is what makes every service
   — including the non-idempotent lock/barrier managers — safe under
   at-least-once retransmission. *)
type seen = Running | Done of payload * Driver.cost

type t = {
  marcel : Marcel.t;
  net : Network.t;
  mutable services : (string * handler) array;
  mutable calls : int;
  mutable retry : retry_policy option;
  mutable retry_rng : Rng.t;
  mutable retransmissions : int;
  mutable rpc_trace : Trace.t option;
      (* fault forensics: retransmissions become typed trace events *)
  mutable duplicates : int;
  mutable next_rid : int;
  seen : (int, seen) Hashtbl.t;
  seen_order : int Queue.t; (* FIFO eviction of settled request ids *)
  h_retry_delay : Stats.histogram;
      (* "rpc.retry.delay" on the network stats: time already waited when
         each retransmission goes out *)
}

let seen_cap = 4096

let create marcel net =
  {
    marcel;
    net;
    services = [||];
    calls = 0;
    retry = None;
    retry_rng = Rng.create ~seed:0;
    retransmissions = 0;
    rpc_trace = None;
    duplicates = 0;
    next_rid = 0;
    seen = Hashtbl.create 64;
    seen_order = Queue.create ();
    h_retry_delay = Stats.histogram (Network.stats net) "rpc.retry.delay";
  }

let marcel t = t.marcel
let network t = t.net
let calls_made t = t.calls
let retransmissions t = t.retransmissions
let duplicates_served t = t.duplicates
let retry t = t.retry
let set_trace t trace = t.rpc_trace <- Some trace

let set_retry t ?(seed = 0) policy =
  (match policy with
  | Some p ->
      if p.timeout_us <= 0. then invalid_arg "Rpc.set_retry: timeout_us <= 0";
      if p.retries < 0 then invalid_arg "Rpc.set_retry: negative retries";
      if p.backoff < 1. then invalid_arg "Rpc.set_retry: backoff < 1";
      if p.jitter_us < 0. then invalid_arg "Rpc.set_retry: negative jitter_us"
  | None -> ());
  (* Same salting discipline as Network.seeded_jitter, with its own constant,
     so the deadline stream is independent of tie/jitter/loss streams built
     from the same user seed. *)
  t.retry_rng <- Rng.create ~seed:(Rng.int (Rng.create ~seed) 0x3FFFFFFF + 0x2e1b);
  t.retry <- policy

let register t ~name handler =
  let id = Array.length t.services in
  t.services <- Array.append t.services [| (name, handler) |];
  id

let service_name t s = fst t.services.(s)

let remember t rid state =
  (if not (Hashtbl.mem t.seen rid) then begin
     Queue.add rid t.seen_order;
     if Queue.length t.seen_order > seen_cap then
       Hashtbl.remove t.seen (Queue.pop t.seen_order)
   end);
  Hashtbl.replace t.seen rid state

(* Delivers the request on [dst]: a fresh handler thread runs the service
   body, then sends the reply back (or drops it for one-way requests).
   [rid], present on retryable calls, keys the duplicate-suppression cache:
   at-least-once delivery needs at-most-once execution on the server. *)
let serve t ?rid ~src ~dst ~service ~reply payload =
  let _, handler = t.services.(service) in
  let run () =
    ignore
      (Marcel.spawn t.marcel ~node:dst (fun () ->
           let result, reply_cost = handler ~src payload in
           Marcel.flush_charges t.marcel;
           (match rid with
           | Some rid -> remember t rid (Done (result, reply_cost))
           | None -> ());
           match reply with
           | None -> ()
           | Some k ->
               Network.send t.net ~src:dst ~dst:src ~cost:reply_cost (fun () ->
                   k result)))
  in
  match rid with
  | None -> run ()
  | Some rid -> (
      match Hashtbl.find_opt t.seen rid with
      | None ->
          remember t rid Running;
          run ()
      | Some Running ->
          (* The original handler is still executing (perhaps blocked inside
             a lock manager); its completion will answer this duplicate. *)
          t.duplicates <- t.duplicates + 1
      | Some (Done (result, cost)) -> (
          t.duplicates <- t.duplicates + 1;
          match reply with
          | None -> ()
          | Some k ->
              Network.send t.net ~src:dst ~dst:src ~cost (fun () -> k result)))

let call t ~dst ~service ~cost payload =
  let th = Marcel.self t.marcel in
  let src = Marcel.node th in
  Marcel.flush_charges t.marcel;
  t.calls <- t.calls + 1;
  match t.retry with
  | None ->
      (* The historical path: no timers, no request ids, no extra events —
         a run without a retry policy is bit-for-bit the run this module
         always produced. *)
      let result = ref Unit in
      Engine.suspend (Marcel.engine t.marcel) (fun resume ->
          Network.send t.net ~src ~dst ~cost (fun () ->
              serve t ~src ~dst ~service
                ~reply:
                  (Some
                     (fun reply ->
                       result := reply;
                       resume ()))
                payload));
      !result
  | Some pol ->
      let eng = Marcel.engine t.marcel in
      (* The caller's operation span, captured now while still in fiber
         context: the retransmission timer below fires in plain event
         context, where the sending thread's span is unreachable. *)
      let span =
        match t.rpc_trace with
        | Some tr when Trace.enabled tr ->
            Trace.thread_span tr ~tid:(Marcel.tid th)
        | _ -> Trace.no_span
      in
      let rid = t.next_rid in
      t.next_rid <- rid + 1;
      let status = ref `Pending in
      let attempts = ref 0 in
      let started = Engine.now eng in
      Engine.suspend eng (fun resume ->
          let rec attempt () =
            incr attempts;
            Network.send t.net ~src ~dst ~cost (fun () ->
                serve t ~rid ~src ~dst ~service
                  ~reply:
                    (Some
                       (fun reply ->
                         match !status with
                         | `Pending ->
                             status := `Reply reply;
                             resume ()
                         | _ -> () (* late duplicate reply: drop *)))
                  payload);
            let deadline =
              pol.timeout_us
              *. (pol.backoff ** float_of_int (!attempts - 1))
              +. (if pol.jitter_us > 0. then Rng.float t.retry_rng pol.jitter_us
                  else 0.)
            in
            Engine.after eng (Time.of_us deadline) (fun () ->
                match !status with
                | `Pending ->
                    if !attempts > pol.retries then begin
                      status := `Timed_out;
                      resume ()
                    end
                    else begin
                      t.retransmissions <- t.retransmissions + 1;
                      (* How long this call has already waited when the
                         retransmission goes out: the latency penalty the
                         fault is costing us, fed to bench/analyze. *)
                      Stats.record t.h_retry_delay
                        Time.(Engine.now eng - started);
                      (match t.rpc_trace with
                      | Some tr when Trace.enabled tr ->
                          Trace.emit tr eng ~span
                            (Trace.Rpc_retry
                               {
                                 service = service_name t service;
                                 src;
                                 dst;
                                 attempt = !attempts;
                               })
                      | _ -> ());
                      attempt ()
                    end
                | _ -> ())
          in
          attempt ());
      (match !status with
      | `Reply r -> r
      | `Timed_out ->
          raise
            (Timeout { service = service_name t service; dst; attempts = !attempts })
      | `Pending -> assert false)

let oneway_from t ~src ~dst ~service ~cost payload =
  t.calls <- t.calls + 1;
  Network.send t.net ~src ~dst ~cost (fun () ->
      serve t ~src ~dst ~service ~reply:None payload)

let oneway t ~dst ~service ~cost payload =
  let th = Marcel.self t.marcel in
  Marcel.flush_charges t.marcel;
  oneway_from t ~src:(Marcel.node th) ~dst ~service ~cost payload

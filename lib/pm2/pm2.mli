(** The PM2 runtime facade: threads + network + RPC + iso-address allocation
    + preemptive thread migration.

    This bundles the pieces the paper's Section 2.1 describes into one
    runtime value, mirroring the [pm2_*] API.  The DSM layers are built
    exclusively against this module and {!Rpc}/{!Marcel}. *)

open Dsmpm2_sim
open Dsmpm2_net

type t

val create :
  ?tie_seed:int ->
  ?jitter:(src:int -> dst:int -> Time.t -> Time.t) ->
  ?page_size:int ->
  nodes:int ->
  driver:Driver.t ->
  unit ->
  t
(** Builds a fresh engine, [nodes] single-CPU nodes, a network using
    [driver], an RPC runtime and an iso-address allocator ([page_size]
    defaults to 4096, the paper's page size).  [tie_seed] turns on the
    engine's schedule-perturbation mode (see {!Engine.create}). *)

val engine : t -> Engine.t
val marcel : t -> Marcel.t
val rpc : t -> Rpc.t
val network : t -> Network.t
val iso : t -> Isoalloc.t
val nodes : t -> int
val driver : t -> Driver.t
val trace : t -> Trace.t

val spawn :
  t ->
  ?stack_bytes:int ->
  ?attached_bytes:int ->
  ?migratable:bool ->
  node:int ->
  (unit -> unit) ->
  Marcel.thread

val self_node : t -> int
(** Node of the calling thread. *)

val migrate : t -> dst:int -> unit
(** Preemptively migrates the calling thread to node [dst]: its continuation
    is shipped over the network at the driver's migration cost (a function of
    the thread's footprint: stack + descriptor + attached data) and resumes
    on [dst].  A migration to the current node is a no-op.  This is the
    primitive the [migrate_thread] DSM protocol is built on. *)

val migrate_if_requested : t -> unit
(** The preemptive-migration safe point: if the load balancer has requested
    that the calling thread move, performs the migration now.  Called
    automatically by {!Marcel.compute} boundaries via the balancer's
    instrumentation wrapper and freely insertable in application loops. *)

val migrations : t -> int

val run : ?limit:Time.t -> t -> unit
(** Runs the simulation to completion (or to [limit]). *)

val now_us : t -> float

(** Marcel: the simulated user-level thread package of PM2.

    Threads are engine fibers with node affinity and a stack-size attribute
    (which determines the cost of migrating them, see {!Pm2.migrate}).  Each
    node has a single CPU; [compute] occupies it, and the [charge]/[flush]
    pair lets compute-bound application code accumulate virtual CPU time
    cheaply and pay it in one chunk before its next interaction.

    Mutexes and condition variables have POSIX semantics.  In the real system
    they only synchronise threads of one node; here all simulated state lives
    in one OCaml heap, so they work anywhere, but the DSM layers use them
    node-locally, as Marcel does. *)

open Dsmpm2_sim

type t
(** A Marcel runtime: an engine plus one CPU per node. *)

type thread

val create : Engine.t -> nodes:int -> t
val engine : t -> Engine.t
val node_count : t -> int
val cpu : t -> int -> Cpu.t

val spawn :
  t ->
  ?stack_bytes:int ->
  ?attached_bytes:int ->
  ?migratable:bool ->
  node:int ->
  (unit -> unit) ->
  thread
(** Starts a thread on [node].  [stack_bytes] defaults to 1024 (the "minimal
    stack" of the paper's migration measurements); [attached_bytes] models
    private iso-allocated data that travels with the thread on migration
    (default 0).  [migratable] (default false) marks the thread as a
    candidate for preemptive migration by the load balancer — application
    workers are migratable, protocol handler threads are not. *)

val self : t -> thread
(** The calling thread.  Raises [Failure] outside of a Marcel thread. *)

val self_opt : t -> thread option

val node_of_fiber : t -> int -> int option
(** The hosting node of the Marcel thread running on engine fiber [fid], or
    [None] for fibers that are not Marcel threads.  This is the fault
    injector's fiber -> node map ({!Dsmpm2_sim.Engine.set_gate}): the gate is
    consulted at event execution time, by which point [spawn] has registered
    the mapping. *)

val tid_of_fiber : t -> int -> int option
(** The tid of the Marcel thread running on engine fiber [fid], or [None]
    for fibers that are not Marcel threads.  The PM2 layer composes this
    with [Trace.thread_span] so the network can attribute a dropped message
    to the operation of whoever is sending. *)

val tid : thread -> int
val node : thread -> int
val stack_bytes : thread -> int
val attached_bytes : thread -> int
val set_attached_bytes : thread -> int -> unit
val footprint_bytes : thread -> int
(** Stack + descriptor (256 B) + attached data: the payload size of a
    migration. *)

val is_alive : thread -> bool
val is_migratable : thread -> bool

val request_move : thread -> dst:int -> unit
(** Asks a migratable thread to move to [dst]; honoured at its next safe
    point (see {!Pm2.migrate_if_requested}).  Ignored for non-migratable
    threads. *)

val pending_move : thread -> int option
val clear_move : thread -> unit

val live_threads : t -> node:int -> thread list
(** The live threads currently hosted by [node], by ascending tid. *)

val join : t -> thread -> unit
(** Blocks the calling thread until [thread] terminates. *)

val yield : t -> unit
(** Relinquishes control; the thread is rescheduled at the current time. *)

val compute : t -> float -> unit
(** [compute t us] occupies the calling thread's node CPU for [us]
    microseconds of virtual time (plus queueing), after first paying any
    pending [charge]d work. *)

val charge : t -> float -> unit
(** Accumulates [us] microseconds of pending CPU work on the calling thread
    without touching the event queue. *)

val flush_charges : t -> unit
(** Pays all pending [charge]d work as a single [compute].  Called
    automatically by the communication layers before any interaction. *)

val set_node : t -> thread -> int -> unit
(** Re-homes a thread; used by the migration machinery only.  Pending charges
    must have been flushed first. *)

module Mutex : sig
  type marcel = t
  type t

  val create : unit -> t
  val lock : marcel -> t -> unit
  val try_lock : marcel -> t -> bool
  val unlock : marcel -> t -> unit
  val locked : t -> bool
end

module Cond : sig
  type marcel = t
  type t

  val create : unit -> t
  val wait : marcel -> t -> Mutex.t -> unit
  val signal : marcel -> t -> unit
  val broadcast : marcel -> t -> unit
end

module Sem : sig
  type marcel = t
  type t

  val create : int -> t
  val acquire : marcel -> t -> unit
  val release : marcel -> t -> unit
  val value : t -> int
end

open Dsmpm2_sim

let descriptor_bytes = 256

type thread = {
  tid : int;
  mutable node : int;
  mutable stack_bytes : int;
  mutable attached_bytes : int;
  mutable alive : bool;
  mutable pending_us : float;
  mutable joiners : (unit -> unit) list;
  migratable : bool;
  mutable requested_node : int option;
      (* set by the load balancer; honoured at the next safe point *)
}

type t = {
  eng : Engine.t;
  cpus : Cpu.t array;
  mutable next_tid : int;
  by_fiber : (int, thread) Hashtbl.t;
}

let create eng ~nodes =
  if nodes <= 0 then invalid_arg "Marcel.create: nodes must be positive";
  {
    eng;
    cpus = Array.init nodes (fun i -> Cpu.create ~name:(Printf.sprintf "node%d" i) ());
    next_tid = 0;
    by_fiber = Hashtbl.create 64;
  }

let engine t = t.eng
let node_count t = Array.length t.cpus
let cpu t i = t.cpus.(i)

let self_opt t =
  match Engine.current_fiber t.eng with
  | None -> None
  | Some fid -> Hashtbl.find_opt t.by_fiber fid

let self t =
  match self_opt t with
  | Some th -> th
  | None -> failwith "Marcel.self: not running inside a Marcel thread"

let node_of_fiber t fid =
  Option.map (fun th -> th.node) (Hashtbl.find_opt t.by_fiber fid)

let tid_of_fiber t fid =
  Option.map (fun th -> th.tid) (Hashtbl.find_opt t.by_fiber fid)

let tid th = th.tid
let node th = th.node
let is_migratable th = th.migratable
let request_move th ~dst = if th.migratable then th.requested_node <- Some dst
let pending_move th = th.requested_node
let clear_move th = th.requested_node <- None

let live_threads t ~node =
  Hashtbl.fold
    (fun _ th acc -> if th.alive && th.node = node then th :: acc else acc)
    t.by_fiber []
  |> List.sort (fun a b -> compare a.tid b.tid)
let stack_bytes th = th.stack_bytes
let attached_bytes th = th.attached_bytes
let set_attached_bytes th n = th.attached_bytes <- n
let footprint_bytes th = th.stack_bytes + descriptor_bytes + th.attached_bytes
let is_alive th = th.alive

let spawn t ?(stack_bytes = 1024) ?(attached_bytes = 0) ?(migratable = false) ~node f =
  if node < 0 || node >= Array.length t.cpus then
    invalid_arg "Marcel.spawn: node out of range";
  let th =
    {
      tid = t.next_tid;
      node;
      stack_bytes;
      attached_bytes;
      alive = true;
      pending_us = 0.;
      joiners = [];
      migratable;
      requested_node = None;
    }
  in
  t.next_tid <- t.next_tid + 1;
  let fid =
    Engine.spawn t.eng (fun () ->
        Fun.protect
          ~finally:(fun () ->
            (* Pay any outstanding lazily-charged CPU work before dying so
               accounting is complete, then wake the joiners. *)
            (if th.pending_us > 0. then begin
               let us = th.pending_us in
               th.pending_us <- 0.;
               Cpu.compute t.eng t.cpus.(th.node) (Time.of_us us)
             end);
            th.alive <- false;
            let joiners = th.joiners in
            th.joiners <- [];
            List.iter (fun resume -> resume ()) joiners)
          f)
  in
  Hashtbl.replace t.by_fiber fid th;
  th

let join t th =
  if th.alive then
    Engine.suspend t.eng (fun resume -> th.joiners <- resume :: th.joiners)

let yield t = Engine.suspend t.eng (fun resume -> resume ())

let compute t us =
  if us < 0. then invalid_arg "Marcel.compute: negative duration";
  let th = self t in
  let total = us +. th.pending_us in
  th.pending_us <- 0.;
  if total > 0. then Cpu.compute t.eng t.cpus.(th.node) (Time.of_us total)

let charge t us =
  if us < 0. then invalid_arg "Marcel.charge: negative duration";
  let th = self t in
  th.pending_us <- th.pending_us +. us

let flush_charges t =
  match self_opt t with
  | None -> ()
  | Some th ->
      if th.pending_us > 0. then begin
        let us = th.pending_us in
        th.pending_us <- 0.;
        Cpu.compute t.eng t.cpus.(th.node) (Time.of_us us)
      end

let set_node t th node =
  if node < 0 || node >= Array.length t.cpus then
    invalid_arg "Marcel.set_node: node out of range";
  if th.pending_us > 0. then
    invalid_arg "Marcel.set_node: thread has unflushed CPU charges";
  th.node <- node

module Mutex = struct
  type marcel = t
  type t = { mutable locked : bool; waiting : (unit -> unit) Queue.t }

  let create () = { locked = false; waiting = Queue.create () }

  let lock (m : marcel) t =
    if t.locked then Engine.suspend m.eng (fun resume -> Queue.add resume t.waiting)
    else t.locked <- true

  let try_lock (_ : marcel) t =
    if t.locked then false
    else begin
      t.locked <- true;
      true
    end

  let unlock (_ : marcel) t =
    if not t.locked then invalid_arg "Marcel.Mutex.unlock: not locked";
    match Queue.take_opt t.waiting with
    | None -> t.locked <- false
    | Some resume -> resume () (* ownership passes directly to the waiter *)

  let locked t = t.locked
end

module Cond = struct
  type marcel = t
  type t = { waiting : (unit -> unit) Queue.t }

  let create () = { waiting = Queue.create () }

  let wait (m : marcel) t mutex =
    Engine.suspend m.eng (fun resume ->
        Queue.add resume t.waiting;
        Mutex.unlock m mutex);
    Mutex.lock m mutex

  let signal (_ : marcel) t =
    match Queue.take_opt t.waiting with None -> () | Some resume -> resume ()

  let broadcast (_ : marcel) t =
    let rec drain () =
      match Queue.take_opt t.waiting with
      | None -> ()
      | Some resume ->
          resume ();
          drain ()
    in
    drain ()
end

module Sem = struct
  type marcel = t
  type t = { mutable value : int; waiting : (unit -> unit) Queue.t }

  let create n =
    if n < 0 then invalid_arg "Marcel.Sem.create: negative initial value";
    { value = n; waiting = Queue.create () }

  let acquire (m : marcel) t =
    if t.value > 0 then t.value <- t.value - 1
    else Engine.suspend m.eng (fun resume -> Queue.add resume t.waiting)

  let release (_ : marcel) t =
    match Queue.take_opt t.waiting with
    | None -> t.value <- t.value + 1
    | Some resume -> resume ()

  let value t = t.value
end

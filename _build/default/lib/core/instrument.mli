(** Well-known instrumentation keys and report formatting.

    The DSM layers time each stage of a remote access with the names below;
    the Table 3 / Table 4 benches print breakdowns straight from these
    counters.  All stages are {!Dsmpm2_sim.Stats} duration spans. *)

open Dsmpm2_sim

val stage_fault : string
(** Page-fault detection (signal catch + decode in the paper): 11 us. *)

val stage_request : string
(** Page request propagation, including forwarding hops. *)

val stage_transfer : string
(** Page (or migration payload) transfer time. *)

val stage_overhead_server : string
(** Owner/home-side protocol processing. *)

val stage_overhead_client : string
(** Requester-side page installation and table update. *)

val stage_migration : string
(** Thread-migration time (Table 4). *)

val stage_total : string
(** Whole fault, detection to resumed access. *)

val read_faults : string
val write_faults : string
val pages_sent : string
val invalidations : string
val diffs_sent : string
val diff_bytes : string
val check_misses : string
val inline_checks : string

val pp_page_breakdown : Format.formatter -> Stats.t -> unit
(** Mean per-stage costs in the row layout of the paper's Table 3. *)

val pp_migration_breakdown : Format.formatter -> Stats.t -> unit
(** Mean per-stage costs in the row layout of the paper's Table 4. *)

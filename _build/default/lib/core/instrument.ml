open Dsmpm2_sim

let stage_fault = "stage.fault"
let stage_request = "stage.request"
let stage_transfer = "stage.transfer"
let stage_overhead_server = "stage.overhead_server"
let stage_overhead_client = "stage.overhead_client"
let stage_migration = "stage.migration"
let stage_total = "stage.total"
let read_faults = "fault.read"
let write_faults = "fault.write"
let pages_sent = "page.sent"
let invalidations = "invalidate.sent"
let diffs_sent = "diff.sent"
let diff_bytes = "diff.bytes"
let check_misses = "check.miss"
let inline_checks = "check.count"

let row ppf stats name key =
  Format.fprintf ppf "%-20s %8.1f@." name (Time.to_us (Stats.span_mean stats key))

let pp_page_breakdown ppf stats =
  row ppf stats "Page fault" stage_fault;
  row ppf stats "Request page" stage_request;
  row ppf stats "Page transfer" stage_transfer;
  Format.fprintf ppf "%-20s %8.1f@." "Protocol overhead"
    (Time.to_us (Stats.span_mean stats stage_overhead_server)
    +. Time.to_us (Stats.span_mean stats stage_overhead_client));
  row ppf stats "Total" stage_total

let pp_migration_breakdown ppf stats =
  row ppf stats "Page fault" stage_fault;
  row ppf stats "Thread migration" stage_migration;
  row ppf stats "Protocol overhead" stage_overhead_client;
  row ppf stats "Total" stage_total

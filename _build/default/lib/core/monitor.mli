(** Post-mortem monitoring, the PM2 feature the paper's evaluation leans on:
    "very precise post-mortem monitoring tools are available in the PM2
    platform, providing the user with valuable information on the time spent
    within each elementary function".

    When enabled, the DSM layers record every protocol-level event (faults,
    requests served, pages sent, invalidations, diffs, lock and barrier
    traffic) into the runtime's trace; after the run, [report] summarises
    them per category, and the raw trace remains available for fine-grained
    inspection. *)

val enable : Runtime.t -> bool -> unit
val enabled : Runtime.t -> bool

val trace : Runtime.t -> Dsmpm2_sim.Trace.t
(** The raw event log (chronological). *)

val record :
  Runtime.t -> category:string -> ('a, Format.formatter, unit, unit) format4 -> 'a
(** Used by the core and the protocol library; free when disabled. *)

type summary_line = {
  category : string;
  events : int;
  first_us : float;
  last_us : float;
}

val summary : Runtime.t -> summary_line list
(** Event counts and activity window per category, sorted by count. *)

val report : Format.formatter -> Runtime.t -> unit
(** The post-mortem report: the per-category summary followed by the
    per-stage mean costs accumulated by the instrumentation layer. *)

open Dsmpm2_sim
open Dsmpm2_pm2

let trace rt = Pm2.trace rt.Runtime.pm2
let enable rt on = Trace.enable (trace rt) on
let enabled rt = Trace.enabled (trace rt)

let record rt ~category fmt =
  Trace.recordf (trace rt) (Runtime.engine rt) ~category fmt

type summary_line = {
  category : string;
  events : int;
  first_us : float;
  last_us : float;
}

let summary rt =
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun e ->
      let cat = e.Trace.category in
      let first, last, n =
        match Hashtbl.find_opt tbl cat with
        | Some (f, l, n) -> (min f e.Trace.at, max l e.Trace.at, n + 1)
        | None -> (e.Trace.at, e.Trace.at, 1)
      in
      Hashtbl.replace tbl cat (first, last, n))
    (Trace.entries (trace rt));
  Hashtbl.fold
    (fun category (first, last, events) acc ->
      { category; events; first_us = Time.to_us first; last_us = Time.to_us last } :: acc)
    tbl []
  |> List.sort (fun a b -> compare (b.events, b.category) (a.events, a.category))

let report ppf rt =
  Format.fprintf ppf "Post-mortem monitoring report@.";
  Format.fprintf ppf "%-16s %8s %12s %12s@." "category" "events" "first(us)" "last(us)";
  List.iter
    (fun l ->
      Format.fprintf ppf "%-16s %8d %12.1f %12.1f@." l.category l.events l.first_us
        l.last_us)
    (summary rt);
  Format.fprintf ppf "@.Per-stage costs (mean):@.";
  List.iter
    (fun (name, total, n) ->
      if n > 0 then
        Format.fprintf ppf "%-28s %10.1f us x %d@." name
          (Time.to_us total /. float_of_int n)
          n)
    (Stats.spans rt.Runtime.instr)

lib/core/dsm_sync.mli: Runtime

lib/core/dsm_comm.ml: Access Bytes Diff Driver Dsmpm2_mem Dsmpm2_net Dsmpm2_pm2 Dsmpm2_sim Engine Frame_store Hashtbl Instrument List Marcel Monitor Page_table Printf Protocol Rpc Runtime Stats Time

lib/core/protocol.ml: Access Array Dsmpm2_mem Dsmpm2_sim Printf String Time

lib/core/runtime.mli: Diff Dsmpm2_mem Dsmpm2_pm2 Dsmpm2_sim Engine Frame_store Hashtbl Marcel Page Page_table Pm2 Protocol Rpc Stats

lib/core/protocol_lib.ml: Access Diff Dsm_comm Dsmpm2_mem Dsmpm2_pm2 Dsmpm2_sim Frame_store Fun Hashtbl Instrument List Marcel Option Page_table Protocol Runtime Stats Time

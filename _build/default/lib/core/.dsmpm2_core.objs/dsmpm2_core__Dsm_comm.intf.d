lib/core/dsm_comm.mli: Access Diff Dsmpm2_mem Dsmpm2_pm2 Dsmpm2_sim Protocol Rpc Runtime Time

lib/core/instrument.mli: Dsmpm2_sim Format Stats

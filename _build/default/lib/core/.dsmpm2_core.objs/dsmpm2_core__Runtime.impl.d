lib/core/runtime.ml: Array Diff Dsmpm2_mem Dsmpm2_pm2 Dsmpm2_sim Frame_store Hashtbl Isoalloc Marcel Page Page_table Pm2 Printf Protocol Rpc Stats

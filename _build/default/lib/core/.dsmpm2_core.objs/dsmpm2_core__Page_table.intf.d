lib/core/page_table.mli: Dsmpm2_mem Dsmpm2_pm2 Marcel

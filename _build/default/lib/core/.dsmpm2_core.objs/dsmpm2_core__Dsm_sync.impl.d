lib/core/dsm_sync.ml: Driver Dsm_comm Dsmpm2_net Dsmpm2_pm2 Fun Hashtbl Marcel Page_table Protocol Rpc Runtime

lib/core/monitor.ml: Dsmpm2_pm2 Dsmpm2_sim Format Hashtbl List Pm2 Runtime Stats Time Trace

lib/core/monitor.mli: Dsmpm2_sim Format Runtime

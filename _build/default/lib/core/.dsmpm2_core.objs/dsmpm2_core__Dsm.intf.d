lib/core/dsm.mli: Access Driver Dsmpm2_mem Dsmpm2_net Dsmpm2_pm2 Dsmpm2_sim Engine Marcel Pm2 Protocol Runtime Stats Time

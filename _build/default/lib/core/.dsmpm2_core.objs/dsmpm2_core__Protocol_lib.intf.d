lib/core/protocol_lib.mli: Access Diff Dsmpm2_mem Page_table Protocol Runtime

lib/core/page_table.ml: Dsmpm2_mem Dsmpm2_pm2 Hashtbl List Marcel Printf

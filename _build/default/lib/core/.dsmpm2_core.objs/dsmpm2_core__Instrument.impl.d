lib/core/instrument.ml: Dsmpm2_sim Format Stats Time

lib/core/protocol.mli: Access Dsmpm2_mem Dsmpm2_sim Time

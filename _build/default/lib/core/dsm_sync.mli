(** DSM synchronization objects with consistency hooks.

    Locks and barriers are the synchronization points at which weak
    consistency models take their consistency actions (paper Section 2.2).
    Each object lives on a manager node and is driven by RPC; around every
    operation the protocol's [lock_acquire]/[lock_release] actions run on
    the {e client} node:

    - lock acquire: manager grant first, then the [lock_acquire] action;
    - lock release: the [lock_release] action first, then the manager
      release;
    - barrier: [lock_release] before arriving, [lock_acquire] after the
      barrier opens (a barrier is a release followed by an acquire).

    The hook receives a synthetic negative id for barriers so protocols can
    tell the two apart if they care. *)

val lock_create : Runtime.t -> ?protocol:int -> ?manager:int -> unit -> int
(** [manager] defaults to [id mod nodes]; [protocol] (whose hooks the lock
    triggers) defaults to the runtime's default protocol at creation time. *)

val lock_acquire : Runtime.t -> int -> unit
val lock_release : Runtime.t -> int -> unit
val with_lock : Runtime.t -> int -> (unit -> 'a) -> 'a

val lock_acquisitions : Runtime.t -> int -> int
(** How many times the lock was granted (for tests and reports). *)

val barrier_create : Runtime.t -> ?protocol:int -> ?manager:int -> parties:int -> unit -> int
val barrier_wait : Runtime.t -> int -> unit

val barrier_hook_id : int -> int
(** The synthetic lock id passed to protocol hooks for barrier [bid]. *)

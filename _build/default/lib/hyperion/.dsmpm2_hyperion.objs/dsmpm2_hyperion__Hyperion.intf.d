lib/hyperion/hyperion.mli: Dsm Dsmpm2_core

lib/hyperion/hyperion.ml: Dsm Dsmpm2_core Dsmpm2_mem Dsmpm2_pm2 Dsmpm2_protocols Hashtbl Java_common List Page Page_table Printf Runtime

open Dsmpm2_mem
open Dsmpm2_core
open Dsmpm2_protocols

(* Per-home bump allocator over dsm_malloc'd pages. *)
type arena = { mutable cursor : int; mutable remaining : int }

type t = {
  dsm : Dsm.t;
  proto : int;
  arenas : (int, arena) Hashtbl.t; (* home node -> current arena *)
  page_bytes : int;
}

type obj = { obj_addr : int; obj_fields : int }
type monitor = int

let create dsm ~protocol =
  ignore (Dsm.protocol_name dsm protocol);
  {
    dsm;
    proto = protocol;
    arenas = Hashtbl.create 8;
    page_bytes = Page.default_size;
  }

let dsm t = t.dsm
let protocol t = t.proto

let alloc_words t ~home nwords =
  let bytes = nwords * Page.word_bytes in
  if bytes > t.page_bytes then
    invalid_arg "Hyperion: object larger than a page is not supported";
  let arena =
    match Hashtbl.find_opt t.arenas home with
    | Some a when a.remaining >= bytes -> a
    | _ ->
        let addr = Dsm.malloc t.dsm ~protocol:t.proto ~home:(Dsm.On_node home) t.page_bytes in
        let a = { cursor = addr; remaining = t.page_bytes } in
        Hashtbl.replace t.arenas home a;
        a
  in
  let addr = arena.cursor in
  arena.cursor <- arena.cursor + bytes;
  arena.remaining <- arena.remaining - bytes;
  addr

let default_home t =
  match Dsmpm2_pm2.Marcel.self_opt (Runtime.marcel t.dsm) with
  | Some th -> Dsmpm2_pm2.Marcel.node th
  | None -> 0

let new_obj t ?home ~fields () =
  if fields <= 0 then invalid_arg "Hyperion.new_obj: fields must be positive";
  let home = match home with Some h -> h | None -> default_home t in
  { obj_addr = alloc_words t ~home fields; obj_fields = fields }

let new_array t ?home ~len () = new_obj t ?home ~fields:len ()
let addr o = o.obj_addr
let field_count o = o.obj_fields

let home t o =
  let page = List.hd (Dsm.region_pages t.dsm ~addr:o.obj_addr ~size:8) in
  (Runtime.entry t.dsm ~node:0 ~page).Page_table.home

let check_field o i =
  if i < 0 || i >= o.obj_fields then
    invalid_arg
      (Printf.sprintf "Hyperion: field %d out of range (object has %d fields)" i
         o.obj_fields)

let get t o i =
  check_field o i;
  Dsm.read_int t.dsm (o.obj_addr + (i * Page.word_bytes))

let put t o i v =
  check_field o i;
  Dsm.write_int t.dsm (o.obj_addr + (i * Page.word_bytes)) v

let new_monitor t ?manager () = Dsm.lock_create t.dsm ~protocol:t.proto ?manager ()
let monitor_enter t m = Dsm.lock_acquire t.dsm m
let monitor_exit t m = Dsm.lock_release t.dsm m
let synchronized t m f = Dsm.with_lock t.dsm m f

let main_memory_update t =
  let node = Dsm.self_node t.dsm in
  Java_common.flush_records t.dsm ~node ~protocol:t.proto

let peek_main_memory t o i =
  check_field o i;
  let addr = o.obj_addr + (i * Page.word_bytes) in
  let page = List.hd (Dsm.region_pages t.dsm ~addr ~size:8) in
  let home = (Runtime.entry t.dsm ~node:0 ~page).Page_table.home in
  Dsm.unsafe_peek t.dsm ~node:home addr

(** A miniature Hyperion runtime: the Java-object memory module that the
    paper's Section 3.3 co-designs with the [java_ic]/[java_pf] protocols.

    Hyperion compiles threaded Java to C over DSM-PM2; its memory module
    sees the world as {e objects} with word-sized fields, allocated on a
    {e home} node (the "main memory" of the JMM), cached at most once per
    node, and accessed through [get]/[put] primitives.  Monitors provide
    mutual exclusion and the JMM consistency actions: entering a monitor
    flushes the node's object cache, exiting transmits recorded local
    modifications to main memory.

    This module is a thin veneer over {!Dsm}: objects are carved out of
    [dsm_malloc]'d pages homed on the requested node; [get]/[put] go through
    the DSM access path, so the per-access inline-check cost (under
    [java_ic]) or page-fault cost (under [java_pf]) is charged exactly as
    the protocol prescribes. *)

open Dsmpm2_core

type t

val create : Dsm.t -> protocol:int -> t
(** [protocol] must be one of the two Java protocols (or a user protocol
    with the same contract). *)

val dsm : t -> Dsm.t
val protocol : t -> int

type obj
(** A handle on a shared object: an iso-address plus a field count. *)

val new_obj : t -> ?home:int -> fields:int -> unit -> obj
(** Allocates an object of [fields] word-sized fields on [home] (default:
    the calling thread's node — objects are initially stored on their home
    node).  Objects are packed into pages per home node, so a node's objects
    share pages; objects never straddle a page. *)

val new_array : t -> ?home:int -> len:int -> unit -> obj
(** An array object: [len] word elements. *)

val addr : obj -> int
val field_count : obj -> int
val home : t -> obj -> int

val get : t -> obj -> int -> int
(** [get t o i] reads field [i].  The Hyperion access primitive: under
    [java_ic] this pays an inline locality check; under [java_pf] a fault is
    taken only when the object's page is absent. *)

val put : t -> obj -> int -> int -> unit
(** [put t o i v] writes field [i] and records the modification on the fly
    (object-field granularity) for the next main-memory update. *)

type monitor

val new_monitor : t -> ?manager:int -> unit -> monitor

val monitor_enter : t -> monitor -> unit
(** JMM entry action: acquires the monitor's lock, then flushes the node's
    object cache. *)

val monitor_exit : t -> monitor -> unit
(** JMM exit action: transmits local modifications to main memory, then
    releases the lock. *)

val synchronized : t -> monitor -> (unit -> 'a) -> 'a
val main_memory_update : t -> unit
(** Explicitly transmit pending modification records (normally done by
    [monitor_exit]); the primitive Hyperion's runtime calls. *)

val peek_main_memory : t -> obj -> int -> int
(** Test/debug view: the field value in the reference copy on the object's
    home node. *)

lib/sim/cpu.ml: Engine Queue Time

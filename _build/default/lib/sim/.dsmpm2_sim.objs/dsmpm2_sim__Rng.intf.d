lib/sim/rng.mli:

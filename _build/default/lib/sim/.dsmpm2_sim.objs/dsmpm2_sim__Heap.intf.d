lib/sim/heap.mli:

lib/sim/trace.ml: Engine Format Hashtbl List String Time

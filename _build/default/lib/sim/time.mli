(** Virtual time for the discrete-event simulator.

    Time is an integer number of nanoseconds since the start of the
    simulation.  The paper reports all costs in microseconds; nanosecond
    resolution keeps sub-microsecond costs (such as inline locality checks)
    exact without floating-point drift. *)

type t = int

val zero : t
val ( + ) : t -> t -> t
val ( - ) : t -> t -> t
val max : t -> t -> t

val of_us : float -> t
(** [of_us x] is [x] microseconds, rounded to the nearest nanosecond. *)

val of_ns : int -> t
val to_us : t -> float
val to_ms : t -> float

val pp : Format.formatter -> t -> unit
(** Prints with an adaptive unit, e.g. ["198.0us"] or ["12.3ms"]. *)

val pp_us : Format.formatter -> t -> unit
(** Prints in microseconds with one decimal, e.g. ["198.0"]. *)

(** A simulated single-core CPU, modelled as a non-preemptive FIFO resource.

    Each simulated node owns one CPU (the paper's testbed uses one 450 MHz
    Pentium II per node).  [compute] occupies the CPU for a span of virtual
    time; fibers contending for the same CPU queue up in FIFO order.  This is
    what makes load imbalance observable: in the TSP experiment of the paper's
    Figure 4, the [migrate_thread] protocol funnels every worker onto the node
    owning the shared bound, whose CPU then serialises them. *)

type t

val create : ?quantum:Time.t -> name:string -> unit -> t
(** [quantum] (default 50 us) is the round-robin time slice: a computation
    holds the CPU for at most one quantum before requeueing behind waiters,
    modelling Marcel's preemptive user-level scheduling — protocol handler
    threads are never starved by long application compute bursts. *)

val name : t -> string

val compute : Engine.t -> t -> Time.t -> unit
(** [compute eng cpu dt] blocks the calling fiber while it occupies [cpu] for
    [dt] of virtual time (plus any queueing delay).  [dt = 0] is a no-op. *)

val busy_time : t -> Time.t
(** Cumulated occupied time, for utilisation reports. *)

val queue_length : t -> int
(** Fibers currently waiting for the CPU (excluding the holder). *)

type t = {
  counts : (string, int ref) Hashtbl.t;
  durations : (string, (Time.t * int) ref) Hashtbl.t;
}

let create () = { counts = Hashtbl.create 16; durations = Hashtbl.create 16 }

let counter t name =
  match Hashtbl.find_opt t.counts name with
  | Some r -> r
  | None ->
      let r = ref 0 in
      Hashtbl.add t.counts name r;
      r

let incr t name = Stdlib.incr (counter t name)
let add t name n = counter t name := !(counter t name) + n
let count t name = match Hashtbl.find_opt t.counts name with Some r -> !r | None -> 0

let span t name =
  match Hashtbl.find_opt t.durations name with
  | Some r -> r
  | None ->
      let r = ref (Time.zero, 0) in
      Hashtbl.add t.durations name r;
      r

let add_span t name dt =
  let r = span t name in
  let total, n = !r in
  r := (Time.(total + dt), n + 1)

let span_total t name =
  match Hashtbl.find_opt t.durations name with Some r -> fst !r | None -> Time.zero

let span_mean t name =
  match Hashtbl.find_opt t.durations name with
  | None -> Time.zero
  | Some r ->
      let total, n = !r in
      if n = 0 then Time.zero else total / n

let counters t =
  Hashtbl.fold (fun k r acc -> (k, !r) :: acc) t.counts []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let spans t =
  Hashtbl.fold (fun k r acc -> (k, fst !r, snd !r) :: acc) t.durations []
  |> List.sort (fun (a, _, _) (b, _, _) -> String.compare a b)

let reset t =
  Hashtbl.reset t.counts;
  Hashtbl.reset t.durations

let pp ppf t =
  List.iter (fun (k, v) -> Format.fprintf ppf "%-32s %d@." k v) (counters t);
  List.iter
    (fun (k, total, n) ->
      Format.fprintf ppf "%-32s %a (%d samples)@." k Time.pp total n)
    (spans t)

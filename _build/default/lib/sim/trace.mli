(** Post-mortem event trace.

    The paper highlights PM2's "very precise post-mortem monitoring tools"
    as part of the platform's value; this module is their equivalent.  When
    enabled, components record timestamped events; after the run the trace
    can be dumped, filtered by category, or hashed (the hash is used by the
    determinism tests: same seed => same trace). *)

type t

type entry = { at : Time.t; category : string; message : string }

val create : ?enabled:bool -> unit -> t
val enable : t -> bool -> unit
val enabled : t -> bool

val record : t -> Engine.t -> category:string -> string -> unit
(** No-op when the trace is disabled. *)

val recordf :
  t -> Engine.t -> category:string -> ('a, Format.formatter, unit, unit) format4 -> 'a
(** Like [record] with a format string; the message is only built when the
    trace is enabled. *)

val entries : t -> entry list
(** In chronological order. *)

val by_category : t -> string -> entry list
val length : t -> int
val hash : t -> int
(** Order-sensitive digest of the whole trace. *)

val pp : Format.formatter -> t -> unit
val clear : t -> unit

(** Array-based binary min-heap, parameterised by an ordering on elements.

    Used as the event queue of the simulator; the ordering must be total for
    the simulation to be deterministic (ties are broken by the caller with a
    sequence number). *)

type 'a t

val create : cmp:('a -> 'a -> int) -> 'a t
val length : 'a t -> int
val is_empty : 'a t -> bool
val add : 'a t -> 'a -> unit
val peek : 'a t -> 'a option

val pop : 'a t -> 'a option
(** Removes and returns the minimum element. *)

val clear : 'a t -> unit

type t = {
  cpu_name : string;
  quantum : Time.t;
  mutable busy : bool;
  pending : (Time.t * (unit -> unit)) Queue.t;
  mutable busy_ns : Time.t;
}

let default_quantum = Time.of_us 50.

let create ?(quantum = default_quantum) ~name () =
  if quantum <= 0 then invalid_arg "Cpu.create: quantum must be positive";
  { cpu_name = name; quantum; busy = false; pending = Queue.create (); busy_ns = 0 }

let name t = t.cpu_name
let busy_time t = t.busy_ns
let queue_length t = Queue.length t.pending

(* Round-robin time slicing: a computation occupies the CPU for at most one
   quantum at a time, then requeues behind any waiter.  This models Marcel's
   preemptive user-level scheduling: a long-running application thread cannot
   starve the protocol handler threads that serve incoming DSM requests. *)
let rec grant eng cpu dt resume =
  cpu.busy <- true;
  let slice = min dt cpu.quantum in
  cpu.busy_ns <- Time.(cpu.busy_ns + slice);
  Engine.after eng slice (fun () ->
      let remaining = Time.(dt - slice) in
      if remaining > 0 then
        if Queue.is_empty cpu.pending then grant eng cpu remaining resume
        else begin
          Queue.add (remaining, resume) cpu.pending;
          match Queue.take_opt cpu.pending with
          | Some (dt', resume') -> grant eng cpu dt' resume'
          | None -> assert false
        end
      else begin
        (match Queue.take_opt cpu.pending with
        | None -> cpu.busy <- false
        | Some (dt', resume') -> grant eng cpu dt' resume');
        resume ()
      end)

let compute eng cpu dt =
  if dt > 0 then
    Engine.suspend eng (fun resume ->
        if cpu.busy then Queue.add (dt, resume) cpu.pending
        else grant eng cpu dt resume)

type entry = { at : Time.t; category : string; message : string }

type t = { mutable on : bool; mutable entries : entry list (* newest first *) }

let create ?(enabled = false) () = { on = enabled; entries = [] }
let enable t b = t.on <- b
let enabled t = t.on

let record t eng ~category message =
  if t.on then t.entries <- { at = Engine.now eng; category; message } :: t.entries

let recordf t eng ~category fmt =
  if t.on then
    Format.kasprintf
      (fun message ->
        t.entries <- { at = Engine.now eng; category; message } :: t.entries)
      fmt
  else Format.ikfprintf (fun _ -> ()) Format.str_formatter fmt

let entries t = List.rev t.entries
let by_category t c = List.filter (fun e -> String.equal e.category c) (entries t)
let length t = List.length t.entries

let hash t =
  List.fold_left
    (fun acc e -> Hashtbl.hash (acc, e.at, e.category, e.message))
    0 t.entries

let pp ppf t =
  List.iter
    (fun e -> Format.fprintf ppf "[%a] %-12s %s@." Time.pp e.at e.category e.message)
    (entries t)

let clear t = t.entries <- []

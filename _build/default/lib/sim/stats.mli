(** Named counters and duration accumulators.

    Used by the DSM instrumentation layer to reproduce the per-step cost
    breakdowns of the paper's Tables 3 and 4, and by benches for message and
    fault counts. *)

type t

val create : unit -> t

val incr : t -> string -> unit
val add : t -> string -> int -> unit
val count : t -> string -> int
(** 0 when the counter was never touched. *)

val add_span : t -> string -> Time.t -> unit
(** Accumulates a duration under [name] and bumps its sample count. *)

val span_total : t -> string -> Time.t
val span_mean : t -> string -> Time.t
(** 0 when no samples were recorded. *)

val counters : t -> (string * int) list
(** Sorted by name. *)

val spans : t -> (string * Time.t * int) list
(** [(name, total, samples)], sorted by name. *)

val reset : t -> unit
val pp : Format.formatter -> t -> unit

type t = int

let zero = 0
let ( + ) = Stdlib.( + )
let ( - ) = Stdlib.( - )
let max = Stdlib.max
let of_us x = int_of_float (Float.round (x *. 1_000.))
let of_ns n = n
let to_us t = float_of_int t /. 1_000.
let to_ms t = float_of_int t /. 1_000_000.

let pp ppf t =
  if t >= 1_000_000_000 then Format.fprintf ppf "%.3fs" (float_of_int t /. 1e9)
  else if t >= 1_000_000 then Format.fprintf ppf "%.3fms" (to_ms t)
  else Format.fprintf ppf "%.1fus" (to_us t)

let pp_us ppf t = Format.fprintf ppf "%.1f" (to_us t)

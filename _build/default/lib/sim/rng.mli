(** Deterministic pseudo-random number generator (SplitMix64).

    The simulator never uses [Stdlib.Random]; every source of randomness is an
    explicit, seeded [Rng.t] so that runs are reproducible and independent
    streams can be split off for independent components. *)

type t

val create : seed:int -> t
val split : t -> t
(** A statistically independent stream derived from [t]. *)

val bits64 : t -> int64
val int : t -> int -> int
(** [int t n] is uniform in [\[0, n)]. Requires [n > 0]. *)

val float : t -> float -> float
(** [float t x] is uniform in [\[0, x)]. *)

val bool : t -> bool
val shuffle : t -> 'a array -> unit

open Dsmpm2_sim

type config = { interval_us : float; threshold : int }

let default_config = { interval_us = 5_000.; threshold = 1 }

type t = {
  pm2 : Pm2.t;
  config : config;
  mutable running : bool;
  mutable moves : int;
  mutable tick_count : int;
}

let moves_requested t = t.moves
let ticks t = t.tick_count
let stop t = t.running <- false

(* Load of a node: its migratable threads that are not already scheduled to
   leave, plus any CPU backlog as a tie-breaker signal. *)
let load marcel node =
  let movable =
    List.filter
      (fun th -> Marcel.is_migratable th && Marcel.pending_move th = None)
      (Marcel.live_threads marcel ~node)
  in
  (List.length movable, movable)

let rebalance t =
  let marcel = Pm2.marcel t.pm2 in
  let nodes = Pm2.nodes t.pm2 in
  let loads = Array.init nodes (fun node -> load marcel node) in
  let weight node = fst loads.(node) + min 1 (Cpu.queue_length (Marcel.cpu marcel node)) in
  let busiest = ref 0 and idlest = ref 0 in
  for node = 1 to nodes - 1 do
    if weight node > weight !busiest then busiest := node;
    if weight node < weight !idlest then idlest := node
  done;
  if weight !busiest - weight !idlest > t.config.threshold then begin
    match snd loads.(!busiest) with
    | th :: _ ->
        Marcel.request_move th ~dst:!idlest;
        t.moves <- t.moves + 1
    | [] -> ()
  end

let any_migratable_alive t =
  let marcel = Pm2.marcel t.pm2 in
  let rec scan node =
    node < Pm2.nodes t.pm2
    && (List.exists Marcel.is_migratable (Marcel.live_threads marcel ~node)
       || scan (node + 1))
  in
  scan 0

let start ?(config = default_config) pm2 =
  if config.interval_us <= 0. then invalid_arg "Balancer: interval must be positive";
  let t = { pm2; config; running = true; moves = 0; tick_count = 0 } in
  let eng = Pm2.engine pm2 in
  let rec tick first =
    Engine.after eng (Time.of_us config.interval_us) (fun () ->
        if t.running then begin
          t.tick_count <- t.tick_count + 1;
          if any_migratable_alive t then begin
            rebalance t;
            tick false
          end
          else if first then tick false (* grace tick: workers may not have started *)
        end)
  in
  tick true;
  t

type t = { page : int; mutable next : int; mutable total : int }

let is_power_of_two n = n > 0 && n land (n - 1) = 0

let create ?base ~page_size () =
  if not (is_power_of_two page_size) then
    invalid_arg "Isoalloc.create: page_size must be a power of two";
  let base = match base with Some b -> b | None -> page_size in
  if base <= 0 then invalid_arg "Isoalloc.create: base must be positive";
  { page = page_size; next = base; total = 0 }

let page_size t = t.page

let align_up addr a = (addr + a - 1) land lnot (a - 1)

let alloc t n =
  if n <= 0 then invalid_arg "Isoalloc.alloc: size must be positive";
  let addr = align_up t.next 8 in
  t.next <- addr + n;
  t.total <- t.total + n;
  addr

let alloc_pages t n =
  if n <= 0 then invalid_arg "Isoalloc.alloc_pages: count must be positive";
  let addr = align_up t.next t.page in
  t.next <- addr + (n * t.page);
  t.total <- t.total + (n * t.page);
  addr

let allocated_bytes t = t.total
let end_address t = t.next

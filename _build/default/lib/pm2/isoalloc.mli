(** Iso-address allocation (PM2's [isomalloc]).

    The allocator hands out ranges of a single global virtual address space;
    because every node draws from the same allocator state, an address range
    allocated anywhere is by construction free — and means the same thing —
    on every other node.  This is the property that makes thread migration
    transparent in the paper (Section 2.1): a migrated thread retries its
    access at the same address and finds the same datum.

    Addresses are plain integers (byte addresses); there is no real memory
    behind them — the frame stores of [Dsmpm2_mem] provide backing on demand. *)

type t

val create : ?base:int -> page_size:int -> unit -> t
(** [base] defaults to one page (so that address 0 is never valid and can
    serve as a null pointer). [page_size] must be a power of two. *)

val page_size : t -> int

val alloc : t -> int -> int
(** [alloc t n] reserves [n] bytes ([n > 0]) and returns the start address.
    Allocations never overlap and are aligned to 8 bytes. *)

val alloc_pages : t -> int -> int
(** [alloc_pages t n] reserves [n] whole pages, page-aligned; returns the
    start address.  Used by [dsm_malloc] so that distinct shared regions
    never share a page (and hence can carry distinct protocols). *)

val allocated_bytes : t -> int
val end_address : t -> int
(** First address beyond any allocation so far. *)

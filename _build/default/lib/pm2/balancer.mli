(** Dynamic load balancing by preemptive thread migration.

    The paper motivates PM2's migration mechanism with exactly this
    (Section 2.1): "the load of each processing node can be evaluated
    according to some measure, and balanced using preemptive migration",
    independently of the application.  This daemon samples every node's
    load — its migratable (application) threads, breaking ties with CPU
    queue length — at a fixed period, and when the spread exceeds a
    threshold asks threads on the most loaded node to move to the least
    loaded one.  The move itself happens at the thread's next safe point
    ({!Pm2.migrate_if_requested}, reached through the DSM compute hooks),
    which is how "preemptive" user-level migration works in practice.

    The daemon terminates itself once no migratable thread remains alive,
    so simulations still run to completion. *)

type config = {
  interval_us : float;  (** sampling period (default 5000 us) *)
  threshold : int;  (** act when max load - min load exceeds this (default 1) *)
}

val default_config : config

type t

val start : ?config:config -> Pm2.t -> t
(** Launches the daemon fiber.  Call before [Pm2.run]/[Dsm.run]. *)

val stop : t -> unit
(** Makes the daemon exit at its next tick. *)

val moves_requested : t -> int
val ticks : t -> int

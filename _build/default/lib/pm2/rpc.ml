open Dsmpm2_sim
open Dsmpm2_net

type payload = ..
type payload += Unit

type handler = src:int -> payload -> payload * Driver.cost
type service = int

type t = {
  marcel : Marcel.t;
  net : Network.t;
  mutable services : (string * handler) array;
  mutable calls : int;
}

let create marcel net = { marcel; net; services = [||]; calls = 0 }
let marcel t = t.marcel
let network t = t.net
let calls_made t = t.calls

let register t ~name handler =
  let id = Array.length t.services in
  t.services <- Array.append t.services [| (name, handler) |];
  id

let service_name t s = fst t.services.(s)

(* Delivers the request on [dst]: a fresh handler thread runs the service
   body, then sends the reply back (or drops it for one-way requests). *)
let serve t ~src ~dst ~service ~reply payload =
  let _, handler = t.services.(service) in
  ignore
    (Marcel.spawn t.marcel ~node:dst (fun () ->
         let result, reply_cost = handler ~src payload in
         Marcel.flush_charges t.marcel;
         match reply with
         | None -> ()
         | Some k -> Network.send t.net ~src:dst ~dst:src ~cost:reply_cost (fun () -> k result)))

let call t ~dst ~service ~cost payload =
  let th = Marcel.self t.marcel in
  let src = Marcel.node th in
  Marcel.flush_charges t.marcel;
  t.calls <- t.calls + 1;
  let result = ref Unit in
  Engine.suspend (Marcel.engine t.marcel) (fun resume ->
      Network.send t.net ~src ~dst ~cost (fun () ->
          serve t ~src ~dst ~service
            ~reply:
              (Some
                 (fun reply ->
                   result := reply;
                   resume ()))
            payload));
  !result

let oneway_from t ~src ~dst ~service ~cost payload =
  t.calls <- t.calls + 1;
  Network.send t.net ~src ~dst ~cost (fun () ->
      serve t ~src ~dst ~service ~reply:None payload)

let oneway t ~dst ~service ~cost payload =
  let th = Marcel.self t.marcel in
  Marcel.flush_charges t.marcel;
  oneway_from t ~src:(Marcel.node th) ~dst ~service ~cost payload

lib/pm2/isoalloc.mli:

lib/pm2/marcel.ml: Array Cpu Dsmpm2_sim Engine Fun Hashtbl List Printf Queue Time

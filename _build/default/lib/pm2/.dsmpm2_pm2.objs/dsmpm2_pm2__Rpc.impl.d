lib/pm2/rpc.ml: Array Driver Dsmpm2_net Dsmpm2_sim Engine Marcel Network

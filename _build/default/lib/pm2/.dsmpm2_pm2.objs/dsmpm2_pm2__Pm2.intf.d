lib/pm2/pm2.mli: Driver Dsmpm2_net Dsmpm2_sim Engine Isoalloc Marcel Network Rpc Time Trace

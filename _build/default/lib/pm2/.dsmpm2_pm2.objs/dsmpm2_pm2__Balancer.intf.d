lib/pm2/balancer.mli: Pm2

lib/pm2/marcel.mli: Cpu Dsmpm2_sim Engine

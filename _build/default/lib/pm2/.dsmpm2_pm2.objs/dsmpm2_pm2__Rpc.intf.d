lib/pm2/rpc.mli: Driver Dsmpm2_net Marcel Network

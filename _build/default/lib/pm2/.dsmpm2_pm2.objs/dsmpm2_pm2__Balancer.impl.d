lib/pm2/balancer.ml: Array Cpu Dsmpm2_sim Engine List Marcel Pm2 Time

lib/pm2/isoalloc.ml:

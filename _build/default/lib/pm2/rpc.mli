(** PM2's Remote Procedure Call mechanism, on top of the network layer.

    A service is a named handler; invoking it sends a request message (whose
    cost on the wire is chosen by the caller: a control message, a bulk
    transfer, ...) to the destination node, where the handler runs in a
    freshly spawned Marcel thread — the paper's "invocations can involve the
    creation of a new thread".  [call] blocks the calling thread until the
    reply arrives; [oneway] returns immediately.

    Payloads use an extensible variant so that each subsystem (DSM
    communication, locks, barriers, Hyperion) declares its own message
    constructors without this module knowing about them. *)

open Dsmpm2_net

type payload = ..
type payload += Unit

type t

type handler = src:int -> payload -> payload * Driver.cost
(** Runs on the destination node in a new thread; returns the reply and its
    wire cost. *)

type service

val create : Marcel.t -> Network.t -> t
val marcel : t -> Marcel.t
val network : t -> Network.t

val register : t -> name:string -> handler -> service
val service_name : t -> service -> string

val call : t -> dst:int -> service:service -> cost:Driver.cost -> payload -> payload
(** Blocking invocation from the calling Marcel thread.  Pending CPU charges
    are flushed first.  [dst] may equal the caller's node (loopback). *)

val oneway : t -> dst:int -> service:service -> cost:Driver.cost -> payload -> unit
(** Fire-and-forget invocation; the handler still runs (its reply is
    discarded).  May also be called from plain event context by giving the
    source node explicitly with [oneway_from]. *)

val oneway_from :
  t -> src:int -> dst:int -> service:service -> cost:Driver.cost -> payload -> unit

val calls_made : t -> int

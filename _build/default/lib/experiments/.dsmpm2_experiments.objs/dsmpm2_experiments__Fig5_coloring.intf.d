lib/experiments/fig5_coloring.mli: Format

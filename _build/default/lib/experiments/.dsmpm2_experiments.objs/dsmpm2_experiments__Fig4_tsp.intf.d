lib/experiments/fig4_tsp.mli: Format

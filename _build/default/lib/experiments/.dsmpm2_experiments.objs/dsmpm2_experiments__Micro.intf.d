lib/experiments/micro.mli: Format

lib/experiments/sharing_patterns.mli: Format

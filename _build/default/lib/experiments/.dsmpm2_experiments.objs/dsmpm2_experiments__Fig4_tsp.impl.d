lib/experiments/fig4_tsp.ml: Dsmpm2_apps Format List Tsp

lib/experiments/table2_inventory.mli: Format

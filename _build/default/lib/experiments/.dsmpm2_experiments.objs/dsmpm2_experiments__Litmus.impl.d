lib/experiments/litmus.ml: Builtin Driver Dsm Dsmpm2_core Dsmpm2_net Dsmpm2_protocols Format List Option

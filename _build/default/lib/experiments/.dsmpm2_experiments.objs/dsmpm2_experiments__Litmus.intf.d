lib/experiments/litmus.mli: Format

lib/experiments/splash.mli: Format

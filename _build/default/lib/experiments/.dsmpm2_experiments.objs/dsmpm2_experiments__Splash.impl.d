lib/experiments/splash.ml: Dsmpm2_apps Format Jacobi List Lu Matmul Sort

lib/experiments/fault_cost.mli: Format

lib/experiments/fault_cost.ml: Array Builtin Driver Dsm Dsmpm2_core Dsmpm2_net Dsmpm2_protocols Dsmpm2_sim Format Instrument List Stats Time

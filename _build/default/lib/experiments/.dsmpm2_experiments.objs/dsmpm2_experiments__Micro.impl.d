lib/experiments/micro.ml: Driver Dsmpm2_net Dsmpm2_pm2 Dsmpm2_sim Engine Format List Pm2 Rpc Time

lib/experiments/ablation.ml: Builtin Driver Dsm Dsmpm2_apps Dsmpm2_core Dsmpm2_net Dsmpm2_pm2 Dsmpm2_protocols Dsmpm2_sim Format Instrument List Network Stats Time Tsp

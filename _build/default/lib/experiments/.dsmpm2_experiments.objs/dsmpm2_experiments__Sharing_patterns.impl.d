lib/experiments/sharing_patterns.ml: Builtin Driver Dsm Dsmpm2_core Dsmpm2_mem Dsmpm2_net Dsmpm2_pm2 Dsmpm2_protocols Dsmpm2_sim Format Instrument List Network Option Stats

lib/experiments/fig5_coloring.ml: Dsmpm2_apps Format List Map_coloring

(** Shared cost constants of the application workloads.

    All simulated CPU costs of the example applications live here so the
    communication/computation ratios are set (and documented) in one place.
    They model a 450 MHz Pentium II (the paper's nodes): very roughly 450
    simple operations per microsecond; a branch-and-bound node expansion or
    a grid-point relaxation each cost on the order of a microsecond. *)

val tsp_expand_us : float
(** One TSP search-tree node expansion (bound computation included). *)

val coloring_expand_us : float
(** One map-colouring assignment step, excluding its object accesses (those
    are charged by the DSM access path itself). *)

val jacobi_point_us : float
(** Relaxing one grid point. *)

val matmul_inner_us : float
(** One fused multiply-add of the matrix-multiply inner loop. *)

val charge_batched : Dsmpm2_core.Dsm.t -> float -> int -> unit
(** [charge_batched dsm unit_us n] accrues [n] work units lazily (see
    {!Dsmpm2_pm2.Marcel.charge}). *)

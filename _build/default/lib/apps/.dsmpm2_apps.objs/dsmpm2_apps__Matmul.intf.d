lib/apps/matmul.mli: Driver Dsmpm2_net

lib/apps/map_coloring.mli: Driver Dsmpm2_net

lib/apps/us_states.mli:

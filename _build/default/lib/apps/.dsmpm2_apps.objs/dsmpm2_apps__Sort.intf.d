lib/apps/sort.mli: Driver Dsmpm2_net

lib/apps/us_states.ml: Array List

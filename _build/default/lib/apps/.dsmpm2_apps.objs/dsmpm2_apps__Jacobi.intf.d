lib/apps/jacobi.mli: Driver Dsmpm2_net

lib/apps/tsp.mli: Driver Dsmpm2_net

lib/apps/workloads.mli: Dsmpm2_core

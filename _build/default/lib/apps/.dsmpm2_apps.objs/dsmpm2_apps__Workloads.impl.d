lib/apps/workloads.ml: Dsmpm2_core

lib/apps/map_coloring.ml: Array Builtin Driver Dsm Dsmpm2_core Dsmpm2_hyperion Dsmpm2_net Dsmpm2_pm2 Dsmpm2_protocols Dsmpm2_sim Instrument List Network Stats Us_states Workloads

lib/apps/lu.mli: Driver Dsmpm2_net

lib/apps/jacobi.ml: Array Builtin Driver Dsm Dsmpm2_core Dsmpm2_net Dsmpm2_pm2 Dsmpm2_protocols Dsmpm2_sim Instrument Network Stats Workloads

let tsp_expand_us = 1.0
let coloring_expand_us = 0.5
let jacobi_point_us = 0.2
let matmul_inner_us = 0.05

let charge_batched dsm unit_us n =
  if n > 0 then Dsmpm2_core.Dsm.charge dsm (unit_us *. float_of_int n)

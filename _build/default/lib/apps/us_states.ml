let names =
  [|
    "ME"; "NH"; "VT"; "MA"; "RI"; "CT"; "NY"; "NJ"; "PA"; "DE"; "MD"; "VA";
    "WV"; "NC"; "SC"; "GA"; "FL"; "AL"; "MS"; "TN"; "KY"; "OH"; "MI"; "IN";
    "IL"; "WI"; "LA"; "AR"; "MO";
  |]

let count = Array.length names

let id name =
  let rec find i = if names.(i) = name then i else find (i + 1) in
  find 0

let adjacency_names =
  [
    ("ME", "NH");
    ("NH", "VT"); ("NH", "MA");
    ("VT", "MA"); ("VT", "NY");
    ("MA", "RI"); ("MA", "CT"); ("MA", "NY");
    ("RI", "CT");
    ("CT", "NY");
    ("NY", "NJ"); ("NY", "PA");
    ("NJ", "PA"); ("NJ", "DE");
    ("PA", "DE"); ("PA", "MD"); ("PA", "WV"); ("PA", "OH");
    ("DE", "MD");
    ("MD", "VA"); ("MD", "WV");
    ("VA", "WV"); ("VA", "KY"); ("VA", "TN"); ("VA", "NC");
    ("WV", "KY"); ("WV", "OH");
    ("NC", "TN"); ("NC", "GA"); ("NC", "SC");
    ("SC", "GA");
    ("GA", "FL"); ("GA", "AL"); ("GA", "TN");
    ("FL", "AL");
    ("AL", "MS"); ("AL", "TN");
    ("MS", "TN"); ("MS", "LA"); ("MS", "AR");
    ("TN", "KY"); ("TN", "MO"); ("TN", "AR");
    ("KY", "OH"); ("KY", "IN"); ("KY", "IL"); ("KY", "MO");
    ("OH", "IN"); ("OH", "MI");
    ("MI", "IN"); ("MI", "WI");
    ("IN", "IL");
    ("IL", "WI"); ("IL", "MO");
    ("LA", "AR");
    ("AR", "MO");
  ]

let adjacency =
  List.map
    (fun (a, b) ->
      let a = id a and b = id b in
      (min a b, max a b))
    adjacency_names

let neighbor_table =
  let t = Array.make count [] in
  List.iter
    (fun (a, b) ->
      t.(a) <- b :: t.(a);
      t.(b) <- a :: t.(b))
    adjacency;
  Array.map (List.sort compare) t

let neighbors s = neighbor_table.(s)

(* Order states so each one touches as many already-placed states as
   possible: conflicts surface early and pruning bites. *)
let search_order =
  let placed = Array.make count false in
  let order = Array.make count 0 in
  (* Start from the state with the highest degree. *)
  let degree s = List.length neighbor_table.(s) in
  let first = ref 0 in
  for s = 1 to count - 1 do
    if degree s > degree !first then first := s
  done;
  order.(0) <- !first;
  placed.(!first) <- true;
  for i = 1 to count - 1 do
    let best = ref (-1) in
    let best_score = ref (-1) in
    for s = 0 to count - 1 do
      if not placed.(s) then begin
        let score =
          (100 * List.length (List.filter (fun n -> placed.(n)) neighbor_table.(s)))
          + degree s
        in
        if score > !best_score then begin
          best := s;
          best_score := score
        end
      end
    done;
    order.(i) <- !best;
    placed.(!best) <- true
  done;
  order

(** The twenty-nine eastern-most US states and their adjacency map.

    The paper's Figure 5 experiment "solves the problem of coloring the
    twenty-nine eastern-most states in the USA using four colors with
    different costs".  This module provides that graph: the 26 states east
    of the Mississippi plus Louisiana, Arkansas and Missouri, with their
    real land borders. *)

val names : string array
(** 29 postal codes; index = state id. *)

val count : int

val adjacency : (int * int) list
(** Border pairs [(a, b)] with [a < b]. *)

val neighbors : int -> int list
(** Sorted neighbor ids of a state. *)

val search_order : int array
(** A connectivity-driven ordering (each state is adjacent to at least one
    earlier state) that makes branch-and-bound pruning effective. *)

lib/net/network.mli: Driver Dsmpm2_sim Engine Stats Time

lib/net/driver.mli: Dsmpm2_sim Format Time

lib/net/network.ml: Array Driver Dsmpm2_sim Engine Stats Time

lib/net/driver.ml: Dsmpm2_sim Format List String Time

(** Page geometry and address arithmetic.

    The DSM address space is a flat range of byte addresses split into
    fixed-size pages; the paper (and this reproduction) uses 4 kB pages. *)

val default_size : int
(** 4096 bytes. *)

type geometry

val geometry : size:int -> geometry
(** [size] must be a power of two. *)

val size : geometry -> int

val page_of_addr : geometry -> int -> int
(** Page number containing the address. *)

val offset_of_addr : geometry -> int -> int
val base_of_page : geometry -> int -> int
(** First address of the page. *)

val pages_of_range : geometry -> addr:int -> len:int -> int list
(** All page numbers overlapping [addr, addr+len). [len > 0]. *)

val word_bytes : int
(** Width of a DSM word: 8 bytes.  Word accesses must not straddle a page
    boundary (guaranteed by 8-byte allocation alignment). *)

let default_size = 4096
let word_bytes = 8

type geometry = { size : int; shift : int; mask : int }

let geometry ~size =
  if size <= 0 || size land (size - 1) <> 0 then
    invalid_arg "Page.geometry: size must be a power of two";
  let rec log2 n acc = if n = 1 then acc else log2 (n lsr 1) (acc + 1) in
  { size; shift = log2 size 0; mask = size - 1 }

let size g = g.size
let page_of_addr g addr = addr asr g.shift
let offset_of_addr g addr = addr land g.mask
let base_of_page g page = page lsl g.shift

let pages_of_range g ~addr ~len =
  if len <= 0 then invalid_arg "Page.pages_of_range: len must be positive";
  let first = page_of_addr g addr and last = page_of_addr g (addr + len - 1) in
  List.init (last - first + 1) (fun i -> first + i)

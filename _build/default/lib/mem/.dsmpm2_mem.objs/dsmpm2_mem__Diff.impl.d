lib/mem/diff.ml: Array Bytes Format Int64 List Page

lib/mem/page.ml: List

lib/mem/access.ml: Format

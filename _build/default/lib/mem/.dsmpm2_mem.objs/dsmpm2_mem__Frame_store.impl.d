lib/mem/frame_store.ml: Bytes Char Hashtbl Int64 Page Printf

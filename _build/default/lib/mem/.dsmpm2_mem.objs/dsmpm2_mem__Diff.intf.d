lib/mem/diff.mli: Format Page

lib/mem/frame_store.mli: Page

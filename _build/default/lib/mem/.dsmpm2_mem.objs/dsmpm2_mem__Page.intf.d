lib/mem/page.mli:

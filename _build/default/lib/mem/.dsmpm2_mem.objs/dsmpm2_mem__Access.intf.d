lib/mem/access.mli: Format

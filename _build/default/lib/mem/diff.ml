type t = { page : int; ranges : (int * bytes) list }

let make_twin = Bytes.copy

let compute ~page ~twin ~current =
  let n = Bytes.length twin in
  if Bytes.length current <> n then invalid_arg "Diff.compute: length mismatch";
  (* Scan for maximal runs of differing bytes. *)
  let rec scan i acc =
    if i >= n then List.rev acc
    else if Bytes.get twin i = Bytes.get current i then scan (i + 1) acc
    else begin
      let j = ref i in
      while !j < n && Bytes.get twin !j <> Bytes.get current !j do incr j done;
      let data = Bytes.sub current i (!j - i) in
      scan !j ((i, data) :: acc)
    end
  in
  { page; ranges = scan 0 [] }

(* Normalises a list of (offset, data) patches into sorted, coalesced,
   non-overlapping ranges; later patches win where they overlap earlier
   ones. *)
let normalise patches =
  match patches with
  | [] -> []
  | _ ->
      let min_off = List.fold_left (fun a (o, _) -> min a o) max_int patches in
      let max_end =
        List.fold_left (fun a (o, d) -> max a (o + Bytes.length d)) 0 patches
      in
      let width = max_end - min_off in
      let buf = Bytes.make width '\000' in
      let touched = Array.make width false in
      List.iter
        (fun (o, d) ->
          Bytes.blit d 0 buf (o - min_off) (Bytes.length d);
          for k = o - min_off to o - min_off + Bytes.length d - 1 do
            touched.(k) <- true
          done)
        patches;
      let rec scan i acc =
        if i >= width then List.rev acc
        else if not touched.(i) then scan (i + 1) acc
        else begin
          let j = ref i in
          while !j < width && touched.(!j) do incr j done;
          let data = Bytes.sub buf i (!j - i) in
          scan !j ((i + min_off, data) :: acc)
        end
      in
      scan 0 []

let of_words ~geometry ~page words =
  let size = Page.size geometry in
  let patches =
    List.map
      (fun (off, v) ->
        if off land 7 <> 0 || off < 0 || off + 8 > size then
          invalid_arg "Diff.of_words: bad offset";
        let d = Bytes.create 8 in
        Bytes.set_int64_le d 0 (Int64.of_int v);
        (off, d))
      words
  in
  { page; ranges = normalise patches }

let apply t target =
  List.iter
    (fun (off, data) ->
      if off < 0 || off + Bytes.length data > Bytes.length target then
        invalid_arg "Diff.apply: range out of bounds";
      Bytes.blit data 0 target off (Bytes.length data))
    t.ranges

let merge older newer =
  if older.page <> newer.page then invalid_arg "Diff.merge: page mismatch";
  { page = older.page; ranges = normalise (older.ranges @ newer.ranges) }

let is_empty t = t.ranges = []
let range_count t = List.length t.ranges
let payload_bytes t = List.fold_left (fun a (_, d) -> a + Bytes.length d) 0 t.ranges
let wire_bytes t = payload_bytes t + (8 * range_count t)

let pp ppf t =
  Format.fprintf ppf "diff(page %d:" t.page;
  List.iter (fun (o, d) -> Format.fprintf ppf " %d+%d" o (Bytes.length d)) t.ranges;
  Format.fprintf ppf ")"

(** Page access rights, the lattice maintained by the page manager.

    This is the software equivalent of the [mprotect] settings of a real
    page-based DSM: [No_access] makes any access fault, [Read_only] makes
    writes fault, [Read_write] never faults. *)

type t = No_access | Read_only | Read_write

type mode = Read | Write
(** The kind of access being attempted (or requested from a remote node). *)

val allows : t -> mode -> bool
val includes : t -> t -> bool
(** [includes a b] iff rights [a] permit everything [b] permits. *)

val merge : t -> t -> t
(** Least upper bound. *)

val to_string : t -> string
val mode_to_string : mode -> string
val pp : Format.formatter -> t -> unit

type t = No_access | Read_only | Read_write
type mode = Read | Write

let allows t mode =
  match (t, mode) with
  | No_access, (Read | Write) -> false
  | Read_only, Read -> true
  | Read_only, Write -> false
  | Read_write, (Read | Write) -> true

let rank = function No_access -> 0 | Read_only -> 1 | Read_write -> 2
let includes a b = rank a >= rank b
let merge a b = if rank a >= rank b then a else b

let to_string = function
  | No_access -> "none"
  | Read_only -> "read"
  | Read_write -> "read-write"

let mode_to_string = function Read -> "read" | Write -> "write"
let pp ppf t = Format.pp_print_string ppf (to_string t)

(** [hybrid_rw]: page replication on read faults, thread migration on write
    faults — the mixed approach of the paper's Section 2.3 ("one may thus
    consider hybrid approaches such as page replication on read fault (like
    in the li_hudak protocol) and thread migration on write fault (like in
    the migrate_thread protocol)"), assembled entirely from routines the two
    built-in protocols export.

    The page itself never moves: its home node keeps ownership forever, so
    writers jump to the data while readers pull copies to themselves.
    Sequential consistency holds because the owner downgrades itself when
    serving a read copy, which forces its next write to fault and invalidate
    every replica (li_hudak's upgrade path).  Good for read-mostly data with
    occasional writers; see the ablation bench. *)

open Dsmpm2_core

val protocol : Runtime.t Protocol.t

(** [li_hudak_fixed]: sequential consistency, MRSW, {e fixed} distributed
    manager.

    The paper's page-manager layer "could be exploited to implement
    protocols which need a fixed page manager, as well as protocols based on
    a dynamic page manager" (Section 2.2, citing Li & Hudak's
    classification).  This protocol is the fixed-manager counterpart of
    {!Li_hudak}: every fault sends its request to the page's {e home} node
    (the manager), which forwards it to the current owner recorded in its
    table.  Requests therefore take at most two hops, at the price of
    funnelling all of a page's traffic through its manager — the classic
    trade-off against the dynamic manager's probable-owner chains.

    Owner-side behaviour (replication on reads, page-plus-ownership
    migration on writes, eager invalidation) is shared with {!Li_hudak}. *)

open Dsmpm2_core

val protocol : Runtime.t Protocol.t

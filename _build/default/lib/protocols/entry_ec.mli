(** [entry_ec]: entry consistency, Midway-style (Bershad et al.), built to
    demonstrate the platform's extensibility.

    The paper's generic core was designed so that "weaker consistency
    models, like release, entry, or scope consistency" can associate their
    consistency actions with synchronization objects (Section 2.2).  Entry
    consistency is the strongest test of that claim: shared data is
    explicitly {e bound} to a lock, and synchronization only makes the
    {e bound} data consistent — an acquire invalidates only the pages bound
    to that lock, a release pushes only their modifications, and everything
    else stays untouched (no whole-cache flushes, no global diffs).

    Mechanically the protocol is home-based MRMW with on-the-fly write
    recording (shared with the Java protocols); only the lock hooks differ.
    Locks with no binding degrade to Java-consistency behaviour (flush
    everything), which is always safe.  Barrier hooks also flush everything:
    a barrier is a global synchronization point. *)

open Dsmpm2_core

val protocol : Runtime.t Protocol.t

val bind : Runtime.t -> lock:int -> addr:int -> size:int -> unit
(** Associates the pages of [addr, addr+size) with [lock]; cumulative over
    multiple calls.  The region should be allocated under this protocol. *)

val bound_pages : Runtime.t -> lock:int -> int list
(** Sorted; empty when the lock has no binding. *)

(** [li_hudak]: sequential consistency, MRSW, dynamic distributed manager.

    The paper's default protocol (Table 2): a variant of Li & Hudak's
    dynamic distributed manager algorithm, as adapted to multithreading by
    Mueller for DSM-Threads.  Page replication on read faults, page
    migration (with ownership) on write faults; requests chase the
    probable-owner chain with path compression on write requests.

    Multithreading adaptation: the "single writer" is a node, not a thread —
    all threads of the owning node share the same writable copy — and
    concurrent faults on one page coalesce per node while faults on distinct
    pages proceed in parallel. *)

open Dsmpm2_core

val protocol : Runtime.t Protocol.t

val serve_read :
  Runtime.t -> node:int -> page:int -> requester:int -> grant_downgrades_owner:bool -> unit
(** The owner-side read service, exposed for reuse: adds the requester to the
    copyset and ships a read-only copy.  When [grant_downgrades_owner] is
    true the owner drops to read-only rights (sequential consistency); the
    eager-release-consistency protocol reuses this with [false]. *)

lib/protocols/builtin.ml: Dsm Dsmpm2_core Entry_ec Erc_sw Hbrc_mw Hybrid_rw Java_ic Java_pf Li_hudak Li_hudak_fixed Migrate_thread Write_update

lib/protocols/hbrc_mw.mli: Dsmpm2_core Protocol Runtime

lib/protocols/java_ic.ml: Dsmpm2_core Java_common Protocol

lib/protocols/li_hudak_fixed.ml: Access Dsmpm2_core Dsmpm2_mem Li_hudak Page_table Protocol Protocol_lib Runtime

lib/protocols/builtin.mli: Dsm Dsmpm2_core

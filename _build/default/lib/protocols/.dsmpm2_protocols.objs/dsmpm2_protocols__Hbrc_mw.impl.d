lib/protocols/hbrc_mw.ml: Access Diff Dsm_comm Dsmpm2_core Dsmpm2_mem Hashtbl List Option Page_table Protocol Protocol_lib Runtime

lib/protocols/erc_sw.mli: Dsmpm2_core Protocol Runtime

lib/protocols/write_update.mli: Dsmpm2_core Protocol Runtime

lib/protocols/java_ic.mli: Dsmpm2_core Protocol Runtime

lib/protocols/java_common.mli: Dsmpm2_core Protocol Runtime

lib/protocols/entry_ec.mli: Dsmpm2_core Protocol Runtime

lib/protocols/li_hudak.ml: Access Dsm_comm Dsmpm2_core Dsmpm2_mem List Page_table Protocol Protocol_lib Runtime

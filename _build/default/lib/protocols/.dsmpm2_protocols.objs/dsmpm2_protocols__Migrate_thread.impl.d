lib/protocols/migrate_thread.ml: Dsm_comm Dsmpm2_core Dsmpm2_mem Dsmpm2_pm2 Dsmpm2_sim Engine Instrument Li_hudak Page_table Pm2 Printf Protocol Protocol_lib Runtime Stats Time

lib/protocols/li_hudak.mli: Dsmpm2_core Protocol Runtime

lib/protocols/migrate_thread.mli: Dsmpm2_core Protocol Runtime

lib/protocols/hybrid_rw.ml: Dsmpm2_core Li_hudak Migrate_thread Page_table Protocol Runtime

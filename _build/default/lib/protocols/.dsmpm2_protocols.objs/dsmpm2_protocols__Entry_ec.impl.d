lib/protocols/entry_ec.ml: Dsm Dsmpm2_core Java_common List Page_table Protocol Runtime

lib/protocols/li_hudak_fixed.mli: Dsmpm2_core Protocol Runtime

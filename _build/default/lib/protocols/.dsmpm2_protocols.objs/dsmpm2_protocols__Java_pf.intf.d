lib/protocols/java_pf.mli: Dsmpm2_core Protocol Runtime

lib/protocols/hybrid_rw.mli: Dsmpm2_core Protocol Runtime

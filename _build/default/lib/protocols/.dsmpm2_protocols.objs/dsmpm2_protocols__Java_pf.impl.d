lib/protocols/java_pf.ml: Dsmpm2_core Java_common Protocol

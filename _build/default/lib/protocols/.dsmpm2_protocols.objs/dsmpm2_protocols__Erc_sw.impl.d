lib/protocols/erc_sw.ml: Access Dsm_comm Dsmpm2_core Dsmpm2_mem Li_hudak List Page_table Protocol Protocol_lib Runtime

lib/protocols/write_update.ml: Access Diff Dsm_comm Dsmpm2_core Dsmpm2_mem Dsmpm2_pm2 Li_hudak List Marcel Page_table Protocol Protocol_lib Runtime

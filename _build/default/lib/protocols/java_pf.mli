(** [java_pf]: Java consistency with page-fault access detection.

    Same home-based MRMW protocol as {!Java_ic}, but accesses to non-local
    objects are detected through page faults: local accesses are free, and
    only genuine misses pay the fault cost.  The paper's Figure 5 shows this
    wins when locality is good (local objects are used intensively, remote
    accesses are rare). *)

open Dsmpm2_core

val protocol : Runtime.t Protocol.t

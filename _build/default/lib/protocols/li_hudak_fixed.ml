open Dsmpm2_mem
open Dsmpm2_core

(* Faults differ from li_hudak in one way only: requests go to the fixed
   manager (the home) rather than chasing the local probable-owner hint.
   The manager's own [prob_owner] field is authoritative: li_hudak's
   write-forwarding path compression keeps it pointing at the current owner
   (the manager forwards every write request and records the requester as
   the new owner), and the shared server actions do the rest. *)

let read_fault rt ~node ~page =
  let e = Runtime.entry rt ~node ~page in
  if node = e.Page_table.home then
    (* The manager itself faulted: its table points straight at the owner. *)
    Protocol_lib.fetch_page rt ~node ~page ~mode:Access.Read
      ~from:e.Page_table.prob_owner
  else
    Protocol_lib.fetch_page rt ~node ~page ~mode:Access.Read ~from:e.Page_table.home

let write_fault rt ~node ~page =
  let e = Runtime.entry rt ~node ~page in
  if e.Page_table.prob_owner = node then
    (* Already the owner: reuse li_hudak's in-place upgrade. *)
    Li_hudak.protocol.Protocol.write_fault rt ~node ~page
  else if node = e.Page_table.home then
    Protocol_lib.fetch_page rt ~node ~page ~mode:Access.Write
      ~from:e.Page_table.prob_owner
  else
    Protocol_lib.fetch_page rt ~node ~page ~mode:Access.Write ~from:e.Page_table.home

let protocol =
  {
    Li_hudak.protocol with
    Protocol.name = "li_hudak_fixed";
    read_fault;
    write_fault;
  }

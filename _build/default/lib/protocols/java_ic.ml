open Dsmpm2_core

let protocol = Java_common.make ~name:"java_ic" ~detection:Protocol.Inline_check

(** [java_ic]: Java consistency with inline locality checks.

    The variant used when the Hyperion compiler emits explicit [get]/[put]
    access primitives: every shared access pays an explicit check for a
    local copy, bypassing the page-fault mechanism entirely (paper Section
    3.3).  Cheap faults, but a per-access tax — the trade-off the paper's
    Figure 5 measures against {!Java_pf}. *)

open Dsmpm2_core

val protocol : Runtime.t Protocol.t

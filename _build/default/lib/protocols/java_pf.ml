open Dsmpm2_core

let protocol = Java_common.make ~name:"java_pf" ~detection:Protocol.Page_fault

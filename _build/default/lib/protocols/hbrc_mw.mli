(** [hbrc_mw]: home-based (lazy) release consistency, multiple writers.

    The paper's Section 3.2: each page has a fixed home node where the
    reference copy lives and where threads always have write access.  A
    non-home node faults a copy in from the home; on a write fault it makes
    a {e twin} of the page before writing.  At lock release, diffs (current
    page vs twin) are computed and sent to the home, which applies them and
    then invalidates third-party nodes holding copies; an invalidated node
    that is itself dirty first computes and sends its own diffs to the home
    (the "twinning technique" of Keleher et al.).

    Two deliberate simplifications over the literature, documented in
    DESIGN.md: the home's own writes are not twinned (home threads write the
    reference copy directly), and acquires conservatively flush all locally
    cached copies of hbrc pages instead of tracking per-interval write
    notices.  Both preserve release consistency for data-race-free
    programs. *)

open Dsmpm2_core

val protocol : Runtime.t Protocol.t

val register_diff_handler : Runtime.t -> protocol:int -> unit
(** Installs the home-side release processing (apply diffs, then invalidate
    third parties).  {!Builtin.register_all} calls this. *)

val dirty_pages : Runtime.t -> node:int -> int list
(** Pages with a live twin on this node (written since the last flush);
    sorted, for tests. *)

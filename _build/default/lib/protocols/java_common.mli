(** Common machinery of the two Java-consistency protocols (paper Section
    3.3).

    Both are home-based MRMW protocols implementing the Java Memory Model's
    main-memory contract: objects live on their home node (the "main
    memory"); other nodes cache at most one copy per node, shared by all
    their threads; local modifications are {e recorded on the fly} with
    object-field (word) granularity and transmitted to the home when a
    thread exits a monitor; a thread's (node's) object cache is flushed when
    it enters a monitor.

    The two registered variants differ only in access detection:
    [java_ic] checks locality explicitly on every access (inline check, the
    Hyperion get/put path), [java_pf] relies on page faults. *)

open Dsmpm2_core

val make : name:string -> detection:Protocol.detection -> Runtime.t Protocol.t

val recorded_words : Runtime.t -> node:int -> page:int -> (int * int) list
(** The (offset, value) modification records not yet transmitted for this
    page, oldest first; for tests. *)

val flush_records : Runtime.t -> node:int -> protocol:int -> unit
(** Sends all pending records to their homes (the "main memory update"
    primitive Hyperion calls on monitor exit). *)

val flush_selected : Runtime.t -> node:int -> protocol:int -> only:int list option -> unit
(** Like {!flush_records}, restricted to the pages in [only] (all pages when
    [None]).  Building block for selective-consistency protocols such as
    entry consistency. *)

val drop_selected : Runtime.t -> node:int -> protocol:int -> only:int list option -> unit
(** Drops this node's cached (non-home) copies of the given protocol's
    pages, restricted to [only]; pending records of the dropped pages are
    transmitted first. *)

val record_write : Runtime.t -> node:int -> page:int -> offset:int -> value:int -> unit
(** The on-the-fly modification recording (a no-op on the page's home). *)

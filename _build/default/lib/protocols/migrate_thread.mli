(** [migrate_thread]: sequential consistency through thread migration.

    The paper's novel protocol (Section 3.1, Figure 3): pages never move —
    each page has a unique node holding it with read-write access, recorded
    in a fixed distributed manager — and a faulting thread simply migrates
    to the node owning the data, then retries the access, which the
    iso-address property makes transparent.  The whole protocol is
    essentially one call to PM2's thread-migration primitive, which is why
    its protocol overhead is under a microsecond (Table 4).

    The server actions still serve read-only replicas so that hybrid
    protocols ("replicate on read fault, migrate on write fault", Section
    2.3) can be assembled from this module and {!Li_hudak}. *)

open Dsmpm2_core

val protocol : Runtime.t Protocol.t

val migrate_on_fault : Runtime.t -> node:int -> page:int -> unit
(** The fault action itself (migrate to the page's owner and charge the
    migration-protocol overhead), exposed for hybrid protocols. *)

(** [write_update]: a write-update protocol (Firefly/Dragon lineage).

    Instead of invalidating reader copies, the owning node pushes every
    committed word to its copyset and waits for the acknowledgements, so
    replicas never go stale and read-mostly data is never re-fetched.
    Ownership still migrates MRSW-style on write faults (dynamic
    distributed manager), with the copyset travelling along; the previous
    owner keeps its copy and joins the copyset.

    The model this buys is {e processor consistency}, not sequential
    consistency: writes by one node are seen in order everywhere (FIFO
    links + synchronous update), and the message-passing (MP) litmus shape
    is therefore forbidden, but two nodes writing concurrently can each
    read their own write before the other's update lands, so store
    buffering (SB) is observable.  The litmus bench measures exactly this
    signature.

    The write path pays one update round per word written while copies
    exist — the classic write-update trade-off against invalidation
    protocols; see the read-mostly row of the sharing-pattern study where
    it shines. *)

open Dsmpm2_core

val protocol : Runtime.t Protocol.t

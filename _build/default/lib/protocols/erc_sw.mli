(** [erc_sw]: eager release consistency, MRSW, dynamic distributed manager.

    Fault handling follows the same dynamic-distributed-manager scheme as
    {!Li_hudak} — replication on read faults, page-plus-ownership migration
    on write faults — but consistency actions are deferred to release
    points: writers do not invalidate reader copies when they gain write
    access; instead, "pages in the copyset get invalidated on lock release"
    (paper Section 3.2).  The owner also keeps writing while read copies
    exist (single writer per node, readers possibly stale until the writer's
    next release), which is exactly the relaxation release consistency
    permits for data-race-free programs. *)

open Dsmpm2_core

val protocol : Runtime.t Protocol.t

val pending_writes : Runtime.t -> node:int -> int list
(** Pages this node has written (or could have written) since its last
    release: the set the next release will invalidate.  Sorted; exposed for
    tests. *)

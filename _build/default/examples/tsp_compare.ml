(* Comparing consistency protocols on one application without touching its
   code — the platform's whole point (paper Sections 2.3 and 4, Figure 4).

   Solves TSP for 14 random cities on a simulated 4-node BIP/Myrinet cluster
   under each of the four general-purpose built-in protocols and prints a
   comparison, including where each worker thread physically ended up (the
   migrate_thread pile-up is visible in the last column).

     dune exec examples/tsp_compare.exe [cities] *)

open Dsmpm2_apps

let () =
  let cities =
    if Array.length Sys.argv > 1 then int_of_string Sys.argv.(1) else 14
  in
  let optimal = Tsp.solve_sequential (Tsp.distances ~cities ~seed:42) in
  Printf.printf "TSP, %d cities, optimal tour length %d (sequential oracle)\n\n"
    cities optimal;
  Printf.printf "%-16s %10s %8s %12s %8s  %s\n" "protocol" "time(ms)" "best"
    "expansions" "faults" "workers ended on";
  List.iter
    (fun protocol ->
      let r = Tsp.run { Tsp.default with Tsp.cities; protocol } in
      Printf.printf "%-16s %10.1f %8d %12d %8d  [%s]%s\n" protocol r.Tsp.time_ms
        r.Tsp.best r.Tsp.expansions
        (r.Tsp.read_faults + r.Tsp.write_faults)
        (String.concat ";" (List.map string_of_int r.Tsp.final_node_of_thread))
        (if r.Tsp.best = optimal then "" else "  <-- SUBOPTIMAL!"))
    [ "li_hudak"; "migrate_thread"; "erc_sw"; "hbrc_mw" ]

(* Quickstart: the OCaml equivalent of the paper's Figure 2.

   A four-node BIP/Myrinet cluster shares one integer under the built-in
   li_hudak protocol (the default, as in the paper); every node increments
   it under a DSM lock, and the program prints the faults the protocol took
   along the way.

     dune exec examples/quickstart.exe *)

open Dsmpm2_net
open Dsmpm2_core
open Dsmpm2_protocols

let () =
  (* pm2_init: build the runtime for a 4-node cluster. *)
  let dsm = Dsm.create ~nodes:4 ~driver:Driver.bip_myrinet () in
  let ids = Builtin.register_all dsm in
  (* pm2_dsm_set_default_protocol(li_hudak) *)
  Dsm.set_default_protocol dsm ids.Builtin.li_hudak;
  (* BEGIN_DSM_DATA int x = 34 END_DSM_DATA *)
  let x = Dsm.malloc dsm ~home:(Dsm.On_node 0) 8 in
  let lock = Dsm.lock_create dsm () in
  let threads =
    List.init 4 (fun node ->
        Dsm.spawn dsm ~node (fun () ->
            (* node 0 initialises x to 34, everyone increments it *)
            Dsm.with_lock dsm lock (fun () ->
                if node = 0 then Dsm.write_int dsm x 34);
            Dsm.with_lock dsm lock (fun () ->
                let v = Dsm.read_int dsm x in
                Dsm.write_int dsm x (v + 1);
                Printf.printf "node %d: x = %d -> %d (at t = %.1f us)\n" node v (v + 1)
                  (Dsm.now_us dsm))))
  in
  Dsm.run dsm;
  List.iter (fun th -> assert (not (Dsmpm2_pm2.Marcel.is_alive th))) threads;
  let stats = Dsm.stats dsm in
  Printf.printf "final x = %d (expected 38)\n"
    (let rec owner n =
       if Dsm.unsafe_rights dsm ~node:n ~addr:x = Dsmpm2_mem.Access.Read_write then n
       else owner (n + 1)
     in
     Dsm.unsafe_peek dsm ~node:(owner 0) x);
  Printf.printf "read faults: %d, write faults: %d, pages sent: %d\n"
    (Dsmpm2_sim.Stats.count stats Instrument.read_faults)
    (Dsmpm2_sim.Stats.count stats Instrument.write_faults)
    (Dsmpm2_sim.Stats.count stats Instrument.pages_sent)

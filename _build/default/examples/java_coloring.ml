(* Running a compiled-Java-style program on the DSM: the paper's Hyperion
   scenario (Section 3.3, Figure 5).

   The minimal-cost map-colouring branch-and-bound runs over Hyperion
   objects (states, adjacency, shared best cost) under both Java-consistency
   protocols, showing the inline-check vs page-fault access-detection
   trade-off on a 4-node SISCI/SCI cluster.

     dune exec examples/java_coloring.exe *)

open Dsmpm2_apps

let () =
  let optimal = Map_coloring.solve_sequential () in
  Printf.printf
    "Minimal-cost colouring of the 29 eastern-most US states, 4 colours \
     (costs 1,2,3,4)\noptimal cost %d (sequential oracle)\n\n"
    optimal;
  Printf.printf "%-10s %10s %8s %12s %14s %8s\n" "protocol" "time(ms)" "cost"
    "object gets" "inline checks" "faults";
  List.iter
    (fun protocol ->
      let r = Map_coloring.run { Map_coloring.default with Map_coloring.protocol } in
      Printf.printf "%-10s %10.1f %8d %12d %14d %8d%s\n" protocol
        r.Map_coloring.time_ms r.Map_coloring.best_cost r.Map_coloring.gets
        r.Map_coloring.inline_checks
        (r.Map_coloring.read_faults + r.Map_coloring.write_faults)
        (if r.Map_coloring.best_cost = optimal then "" else "  <-- SUBOPTIMAL!"))
    [ "java_ic"; "java_pf" ];
  Printf.printf
    "\njava_pf wins when locality is good: local accesses are free, and only\n\
     the rare remote miss pays a fault (paper, Figure 5).\n"

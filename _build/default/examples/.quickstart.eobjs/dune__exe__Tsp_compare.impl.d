examples/tsp_compare.ml: Array Dsmpm2_apps List Printf String Sys Tsp

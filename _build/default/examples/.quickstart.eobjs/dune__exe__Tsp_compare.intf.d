examples/tsp_compare.mli:

examples/entry_consistency.mli:

examples/quickstart.mli:

examples/quickstart.ml: Builtin Driver Dsm Dsmpm2_core Dsmpm2_mem Dsmpm2_net Dsmpm2_pm2 Dsmpm2_protocols Dsmpm2_sim Instrument List Printf

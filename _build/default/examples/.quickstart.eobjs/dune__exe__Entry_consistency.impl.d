examples/entry_consistency.ml: Builtin Driver Dsm Dsmpm2_core Dsmpm2_net Dsmpm2_pm2 Dsmpm2_protocols Entry_ec Format List Monitor Printf

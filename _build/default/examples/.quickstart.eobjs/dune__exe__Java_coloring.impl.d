examples/java_coloring.ml: Dsmpm2_apps List Map_coloring Printf

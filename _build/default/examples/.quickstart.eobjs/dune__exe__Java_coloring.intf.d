examples/java_coloring.mli:

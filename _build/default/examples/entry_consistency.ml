(* Entry consistency and post-mortem monitoring.

   Two independent shared accounts, each bound to its own lock under the
   entry_ec protocol: synchronizing on one account touches only that
   account's pages (unlike the Java protocols' whole-cache flush).  The
   post-mortem monitoring report — the paper's Section 4 closes on the value
   of exactly this tooling — shows what the protocol did.

     dune exec examples/entry_consistency.exe *)

open Dsmpm2_net
open Dsmpm2_core
open Dsmpm2_protocols

let () =
  let dsm = Dsm.create ~nodes:3 ~driver:Driver.sisci_sci () in
  ignore (Builtin.register_all dsm);
  let extras = Builtin.register_extras dsm in
  let ec = extras.Builtin.entry_ec in
  Monitor.enable dsm true;

  (* Two accounts on separate pages, each guarded by its own bound lock. *)
  let checking = Dsm.malloc dsm ~protocol:ec ~home:(Dsm.On_node 0) 8 in
  let savings = Dsm.malloc dsm ~protocol:ec ~home:(Dsm.On_node 1) 8 in
  let checking_lock = Dsm.lock_create dsm ~protocol:ec () in
  let savings_lock = Dsm.lock_create dsm ~protocol:ec () in
  Entry_ec.bind dsm ~lock:checking_lock ~addr:checking ~size:8;
  Entry_ec.bind dsm ~lock:savings_lock ~addr:savings ~size:8;

  let deposit lock addr amount =
    Dsm.with_lock dsm lock (fun () ->
        Dsm.write_int dsm addr (Dsm.read_int dsm addr + amount))
  in
  let threads =
    List.init 3 (fun node ->
        Dsm.spawn dsm ~node (fun () ->
            for _ = 1 to 10 do
              deposit checking_lock checking 5;
              deposit savings_lock savings 7;
              Dsm.compute dsm 50.
            done))
  in
  Dsm.run dsm;
  List.iter (fun th -> assert (not (Dsmpm2_pm2.Marcel.is_alive th))) threads;

  Printf.printf "checking = %d (expected %d)\n"
    (Dsm.unsafe_peek dsm ~node:0 checking)
    (3 * 10 * 5);
  Printf.printf "savings  = %d (expected %d)\n\n"
    (Dsm.unsafe_peek dsm ~node:1 savings)
    (3 * 10 * 7);
  (* The paper: "very precise post-mortem monitoring tools ... prove very
     helpful for understanding and improving protocol performance." *)
  Monitor.report Format.std_formatter dsm

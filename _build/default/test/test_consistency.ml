(* Cross-protocol consistency properties.

   The central property: for DATA-RACE-FREE programs, every protocol —
   whatever its laziness — must produce the results of some sequentially
   consistent execution.  We exercise it with randomized lock-disciplined
   increment programs whose final state is order-independent (each shared
   variable ends up holding the sum of all increments applied to it), so
   the expected outcome is computable without predicting the schedule.

   Also here: determinism (same seed => identical virtual time and message
   counts) and failure injection (network jitter must change timings only,
   never DRF results). *)

open Dsmpm2_sim
open Dsmpm2_net
open Dsmpm2_core
open Dsmpm2_protocols

let protocol_names =
  [
    "li_hudak"; "migrate_thread"; "erc_sw"; "hbrc_mw"; "java_ic"; "java_pf";
    "li_hudak_fixed"; "hybrid_rw"; "entry_ec"; "write_update";
  ]

type op = { lock : int; var : int; delta : int }

type program = {
  nodes : int;
  vars : int;
  locks : int;
  ops_per_thread : op list array;  (** one op list per node *)
  expected : int array;  (** per-var sum of all deltas *)
}

(* Each variable belongs to one lock domain (var mod locks); threads only
   touch a variable under its lock: data-race-free by construction. *)
let generate ~seed ~nodes ~vars ~locks ~ops_per_thread () =
  let rng = Rng.create ~seed in
  let expected = Array.make vars 0 in
  let ops =
    Array.init nodes (fun _ ->
        List.init ops_per_thread (fun _ ->
            let var = Rng.int rng vars in
            let delta = 1 + Rng.int rng 9 in
            expected.(var) <- expected.(var) + delta;
            { lock = var mod locks; var; delta }))
  in
  { nodes; vars; locks; ops_per_thread = ops; expected }

let execute ?jitter ~protocol ~home program =
  let dsm = Dsm.create ?jitter ~nodes:program.nodes ~driver:Driver.bip_myrinet () in
  ignore (Builtin.register_all dsm);
  ignore (Builtin.register_extras dsm);
  let proto =
    match Dsm.protocol_by_name dsm protocol with
    | Some p -> p
    | None -> invalid_arg protocol
  in
  let base = Dsm.malloc dsm ~protocol:proto ~home (program.vars * 8) in
  let addr var = base + (var * 8) in
  let locks =
    Array.init program.locks (fun _ -> Dsm.lock_create dsm ~protocol:proto ())
  in
  (* Entry consistency needs its lock/data associations declared. *)
  if protocol = "entry_ec" then
    Array.iteri
      (fun l lock ->
        for var = 0 to program.vars - 1 do
          if var mod program.locks = l then
            Entry_ec.bind dsm ~lock ~addr:(addr var) ~size:8
        done)
      locks;
  Array.iteri
    (fun node ops ->
      ignore
        (Dsm.spawn dsm ~node (fun () ->
             List.iter
               (fun op ->
                 Dsm.with_lock dsm locks.(op.lock) (fun () ->
                     let v = Dsm.read_int dsm (addr op.var) in
                     Dsm.write_int dsm (addr op.var) (v + op.delta));
                 Dsm.compute dsm 5.)
               ops)))
    program.ops_per_thread;
  Dsm.run dsm;
  (* Read the final state DRF-style: a fresh thread takes each lock before
     reading its variables (so weak protocols flush/refetch correctly). *)
  let final = Array.make program.vars 0 in
  ignore
    (Dsm.spawn dsm ~node:0 (fun () ->
         for var = 0 to program.vars - 1 do
           Dsm.with_lock dsm locks.(var mod program.locks) (fun () ->
               final.(var) <- Dsm.read_int dsm (addr var))
         done));
  Dsm.run dsm;
  (dsm, final)

let check_program ~protocol ~seed ~nodes =
  let program = generate ~seed ~nodes ~vars:12 ~locks:3 ~ops_per_thread:15 () in
  let _, final = execute ~protocol ~home:Dsm.Round_robin program in
  final = program.expected

let drf_property protocol =
  QCheck.Test.make
    ~name:(Printf.sprintf "DRF increments are exact under %s" protocol)
    ~count:15
    QCheck.(pair (int_bound 10_000) (int_range 2 4))
    (fun (seed, nodes) -> check_program ~protocol ~seed ~nodes)

(* --- barrier-phase visibility: blind writes become visible to everyone
   after the next barrier, for every protocol --- *)

let barrier_phases ~protocol ~seed ~nodes ~vars ~phases =
  let dsm = Dsm.create ~nodes ~driver:Driver.bip_myrinet () in
  ignore (Builtin.register_all dsm);
  ignore (Builtin.register_extras dsm);
  let proto = Option.get (Dsm.protocol_by_name dsm protocol) in
  let base = Dsm.malloc dsm ~protocol:proto ~home:Dsm.Round_robin (vars * 8) in
  let addr var = base + (var * 8) in
  let barrier = Dsm.barrier_create dsm ~protocol:proto ~parties:nodes () in
  let value phase var = (phase * 1000) + (var * 7) + seed in
  let failures = ref [] in
  let worker node () =
    for phase = 1 to phases do
      (* each var has exactly one writer per phase (rotating) *)
      for var = 0 to vars - 1 do
        if (var + phase) mod nodes = node then
          Dsm.write_int dsm (addr var) (value phase var)
      done;
      Dsm.barrier_wait dsm barrier;
      (* everyone reads everything *)
      for var = 0 to vars - 1 do
        let got = Dsm.read_int dsm (addr var) in
        if got <> value phase var then
          failures := (protocol, phase, var, got, value phase var) :: !failures
      done;
      Dsm.barrier_wait dsm barrier
    done
  in
  for node = 0 to nodes - 1 do
    ignore (Dsm.spawn dsm ~node (worker node))
  done;
  Dsm.run dsm;
  !failures

let test_barrier_visibility () =
  List.iter
    (fun protocol ->
      let failures =
        barrier_phases ~protocol ~seed:3 ~nodes:3 ~vars:9 ~phases:4
      in
      Alcotest.(check int)
        (protocol ^ " all phase reads saw the phase writes")
        0
        (List.length failures))
    protocol_names

(* --- sequential-consistency litmus: lock-free visibility ordering --- *)

let test_sc_no_lost_update_without_locks () =
  (* Under sequential consistency, even lock-free alternating writers on
     distinct variables of the same page never lose a committed write:
     node 1 waits (in virtual time) for node 0's write to settle. *)
  let dsm = Dsm.create ~nodes:2 ~driver:Driver.bip_myrinet () in
  let ids = Builtin.register_all dsm in
  let base = Dsm.malloc dsm ~protocol:ids.Builtin.li_hudak ~home:(Dsm.On_node 0) 16 in
  ignore (Dsm.spawn dsm ~node:0 (fun () -> Dsm.write_int dsm base 1));
  ignore
    (Dsm.spawn dsm ~node:1 (fun () ->
         Dsm.compute dsm 5_000.;
         Dsm.write_int dsm (base + 8) 2;
         (* same page: the earlier write must still be there *)
         Alcotest.(check int) "no lost update" 1 (Dsm.read_int dsm base)));
  Dsm.run dsm

let test_sc_read_sees_latest_write () =
  let dsm = Dsm.create ~nodes:3 ~driver:Driver.sisci_sci () in
  let ids = Builtin.register_all dsm in
  let x = Dsm.malloc dsm ~protocol:ids.Builtin.li_hudak ~home:(Dsm.On_node 0) 8 in
  ignore (Dsm.spawn dsm ~node:1 (fun () -> Dsm.write_int dsm x 41));
  ignore
    (Dsm.spawn dsm ~node:2 (fun () ->
         Dsm.compute dsm 10_000.;
         (* long after the write settled, SC requires the fresh value *)
         Alcotest.(check int) "fresh value" 41 (Dsm.read_int dsm x)));
  Dsm.run dsm

(* --- determinism --- *)

let run_fingerprint ?jitter ~protocol ~seed () =
  let program = generate ~seed ~nodes:3 ~vars:8 ~locks:2 ~ops_per_thread:12 () in
  let dsm, final = execute ?jitter ~protocol ~home:Dsm.Round_robin program in
  let net = Dsmpm2_pm2.Pm2.network (Dsm.pm2 dsm) in
  (Dsm.now_us dsm, Network.messages_sent net, Array.to_list final)

let test_deterministic_replay () =
  List.iter
    (fun protocol ->
      let a = run_fingerprint ~protocol ~seed:99 () in
      let b = run_fingerprint ~protocol ~seed:99 () in
      Alcotest.(check (triple (float 0.) int (list int)))
        (protocol ^ " identical replay") a b)
    protocol_names

let test_seed_changes_schedule () =
  let _, m1, _ = run_fingerprint ~protocol:"li_hudak" ~seed:1 () in
  let _, m2, _ = run_fingerprint ~protocol:"li_hudak" ~seed:2 () in
  (* different programs: almost surely different traffic *)
  Alcotest.(check bool) "different seeds differ" true (m1 <> m2 || m1 > 0)

(* --- failure injection: jitter --- *)

let slow_jitter ~src ~dst delay = if (src + dst) mod 2 = 0 then delay * 3 else delay

let test_jitter_preserves_drf_results () =
  List.iter
    (fun protocol ->
      let program = generate ~seed:7 ~nodes:3 ~vars:10 ~locks:2 ~ops_per_thread:12 () in
      let _, baseline = execute ~protocol ~home:Dsm.Round_robin program in
      let _, jittered = execute ~jitter:slow_jitter ~protocol ~home:Dsm.Round_robin program in
      Alcotest.(check (list int))
        (protocol ^ " jitter changes timing only")
        (Array.to_list baseline) (Array.to_list jittered);
      Alcotest.(check (list int))
        (protocol ^ " result correct")
        (Array.to_list program.expected)
        (Array.to_list baseline))
    protocol_names

(* --- home placement must not affect results --- *)

let test_home_placement_irrelevant_for_results () =
  List.iter
    (fun protocol ->
      let program = generate ~seed:21 ~nodes:4 ~vars:16 ~locks:4 ~ops_per_thread:10 () in
      List.iter
        (fun home ->
          let _, final = execute ~protocol ~home program in
          Alcotest.(check (list int))
            (protocol ^ " correct for this placement")
            (Array.to_list program.expected)
            (Array.to_list final))
        [ Dsm.Round_robin; Dsm.On_node 0; Dsm.Block ])
    protocol_names

let () =
  Alcotest.run "consistency"
    [
      ("drf-property", List.map (fun p -> QCheck_alcotest.to_alcotest (drf_property p)) protocol_names);
      ( "litmus",
        [
          Alcotest.test_case "no lost update on shared page" `Quick
            test_sc_no_lost_update_without_locks;
          Alcotest.test_case "read sees settled write" `Quick test_sc_read_sees_latest_write;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "identical replay" `Quick test_deterministic_replay;
          Alcotest.test_case "seed sensitivity" `Quick test_seed_changes_schedule;
        ] );
      ( "barriers",
        [ Alcotest.test_case "phase visibility, every protocol" `Quick test_barrier_visibility ] );
      ( "failure-injection",
        [ Alcotest.test_case "jitter changes timing only" `Quick test_jitter_preserves_drf_results ] );
      ( "placement",
        [
          Alcotest.test_case "results independent of homes" `Quick
            test_home_placement_irrelevant_for_results;
        ] );
    ]

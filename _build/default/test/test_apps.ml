(* Tests of the application workloads: correctness against sequential
   oracles under every protocol, plus graph/data sanity. *)

open Dsmpm2_apps

(* --- US states graph --- *)

let test_us_states_graph_sane () =
  Alcotest.(check int) "29 states" 29 Us_states.count;
  Alcotest.(check int) "29 names" 29 (Array.length Us_states.names);
  (* adjacency is symmetric by construction; check it is loop-free, within
     range, and connected enough to be interesting *)
  List.iter
    (fun (a, b) ->
      Alcotest.(check bool) "no self loop" true (a <> b);
      Alcotest.(check bool) "in range" true (a >= 0 && b < Us_states.count))
    Us_states.adjacency;
  Array.iteri
    (fun s _ ->
      Alcotest.(check bool)
        (Us_states.names.(s) ^ " has a neighbour")
        true
        (Us_states.neighbors s <> []))
    Us_states.names;
  (* spot-check real borders *)
  let id name =
    let rec find i = if Us_states.names.(i) = name then i else find (i + 1) in
    find 0
  in
  Alcotest.(check bool) "ME-NH" true (List.mem (id "NH") (Us_states.neighbors (id "ME")));
  Alcotest.(check bool) "FL-GA" true (List.mem (id "GA") (Us_states.neighbors (id "FL")));
  Alcotest.(check bool) "ME not adjacent to FL" false
    (List.mem (id "FL") (Us_states.neighbors (id "ME")))

let test_us_states_search_order_connected () =
  (* every state (after the first) touches at least one earlier state, the
     property the branch-and-bound ordering relies on *)
  let order = Us_states.search_order in
  Alcotest.(check (list int)) "a permutation"
    (List.init Us_states.count Fun.id)
    (List.sort compare (Array.to_list order));
  let placed = Hashtbl.create 32 in
  Hashtbl.add placed order.(0) ();
  Array.iteri
    (fun i s ->
      if i > 0 then begin
        Alcotest.(check bool)
          (Printf.sprintf "state %s touches the placed region" Us_states.names.(s))
          true
          (List.exists (Hashtbl.mem placed) (Us_states.neighbors s));
        Hashtbl.add placed s ()
      end)
    order

let test_four_colorable () =
  (* the sequential solver must find a proper colouring with 4 colours:
     cost upper bound 29 * 4 means "coloured at all" *)
  let cost = Map_coloring.solve_sequential () in
  Alcotest.(check bool) "4-colourable" true (cost <= 29 * 4);
  Alcotest.(check bool) "cost at least 29" true (cost >= 29)

(* --- TSP --- *)

let test_tsp_distances_symmetric () =
  let d = Tsp.distances ~cities:10 ~seed:5 in
  for i = 0 to 9 do
    Alcotest.(check int) "zero diagonal" 0 d.(i).(i);
    for j = 0 to 9 do
      Alcotest.(check int) "symmetric" d.(i).(j) d.(j).(i)
    done
  done

let test_tsp_deterministic_per_seed () =
  let a = Tsp.distances ~cities:8 ~seed:1 and b = Tsp.distances ~cities:8 ~seed:1 in
  Alcotest.(check bool) "same seed same matrix" true (a = b);
  let c = Tsp.distances ~cities:8 ~seed:2 in
  Alcotest.(check bool) "different seed differs" true (a <> c)

let test_tsp_all_protocols_find_optimum () =
  let cities = 11 in
  let optimal = Tsp.solve_sequential (Tsp.distances ~cities ~seed:42) in
  List.iter
    (fun protocol ->
      let r = Tsp.run { Tsp.default with Tsp.cities; protocol; nodes = 3 } in
      Alcotest.(check int) (protocol ^ " optimal") optimal r.Tsp.best;
      Alcotest.(check bool) (protocol ^ " did work") true (r.Tsp.expansions > 0))
    [ "li_hudak"; "migrate_thread"; "erc_sw"; "hbrc_mw" ]

let test_tsp_deterministic_replay () =
  let run () = Tsp.run { Tsp.default with Tsp.cities = 10 } in
  let a = run () and b = run () in
  Alcotest.(check (float 0.)) "same virtual time" a.Tsp.time_ms b.Tsp.time_ms;
  Alcotest.(check int) "same expansions" a.Tsp.expansions b.Tsp.expansions;
  Alcotest.(check int) "same messages" a.Tsp.messages b.Tsp.messages

let test_tsp_migrate_thread_piles_up () =
  let r = Tsp.run { Tsp.default with Tsp.cities = 11; protocol = "migrate_thread" } in
  Alcotest.(check (list int)) "all workers end on node 0" [ 0; 0; 0; 0 ]
    r.Tsp.final_node_of_thread;
  Alcotest.(check bool) "migrations happened" true (r.Tsp.migrations > 0)

let test_tsp_page_protocols_beat_migration () =
  let time protocol =
    (Tsp.run { Tsp.default with Tsp.cities = 11; protocol }).Tsp.time_ms
  in
  let page = time "li_hudak" and migrate = time "migrate_thread" in
  Alcotest.(check bool)
    (Printf.sprintf "page-based (%.1fms) beats thread migration (%.1fms)" page migrate)
    true (page < migrate)

(* --- Jacobi --- *)

let test_jacobi_matches_sequential () =
  let size = 32 and iterations = 4 in
  let reference = Jacobi.checksum_sequential ~size ~iterations in
  List.iter
    (fun protocol ->
      let r = Jacobi.run { Jacobi.default with Jacobi.size; iterations; protocol; nodes = 4 } in
      Alcotest.(check int) (protocol ^ " checksum") reference r.Jacobi.checksum)
    [ "li_hudak"; "erc_sw"; "hbrc_mw"; "migrate_thread" ]

let test_jacobi_hbrc_ships_diffs () =
  let r = Jacobi.run { Jacobi.default with Jacobi.protocol = "hbrc_mw" } in
  Alcotest.(check bool) "diffs were shipped" true (r.Jacobi.diff_bytes > 0);
  Alcotest.(check bool) "diffs smaller than whole-page traffic" true
    (r.Jacobi.diff_bytes < r.Jacobi.pages_transferred * 4096)

let test_jacobi_single_node_degenerate () =
  let size = 16 and iterations = 3 in
  let reference = Jacobi.checksum_sequential ~size ~iterations in
  let r = Jacobi.run { Jacobi.default with Jacobi.size; iterations; nodes = 1 } in
  Alcotest.(check int) "single node correct" reference r.Jacobi.checksum

(* --- Matmul --- *)

let test_matmul_matches_sequential () =
  let size = 16 in
  let reference = Matmul.checksum_sequential ~size ~seed:7 in
  List.iter
    (fun protocol ->
      let r = Matmul.run { Matmul.default with Matmul.size; protocol; nodes = 4 } in
      Alcotest.(check int) (protocol ^ " checksum") reference r.Matmul.checksum)
    [ "li_hudak"; "erc_sw"; "hbrc_mw"; "migrate_thread" ]

(* --- map colouring over DSM --- *)

let test_coloring_both_protocols_optimal () =
  let optimal = Map_coloring.solve_sequential () in
  List.iter
    (fun protocol ->
      let r = Map_coloring.run { Map_coloring.default with Map_coloring.protocol; nodes = 2 } in
      Alcotest.(check int) (protocol ^ " optimal cost") optimal r.Map_coloring.best_cost)
    [ "java_ic"; "java_pf" ]

let test_coloring_ic_pays_checks () =
  let ic = Map_coloring.run { Map_coloring.default with Map_coloring.protocol = "java_ic"; nodes = 2 } in
  let pf = Map_coloring.run { Map_coloring.default with Map_coloring.protocol = "java_pf"; nodes = 2 } in
  Alcotest.(check bool) "ic counts checks" true (ic.Map_coloring.inline_checks > 1000);
  Alcotest.(check int) "pf never checks" 0 pf.Map_coloring.inline_checks;
  Alcotest.(check bool) "pf faults a little" true (pf.Map_coloring.read_faults > 0);
  Alcotest.(check bool)
    (Printf.sprintf "pf (%.0fms) faster than ic (%.0fms)" pf.Map_coloring.time_ms
       ic.Map_coloring.time_ms)
    true
    (pf.Map_coloring.time_ms < ic.Map_coloring.time_ms)

let () =
  Alcotest.run "apps"
    [
      ( "us_states",
        [
          Alcotest.test_case "graph sanity" `Quick test_us_states_graph_sane;
          Alcotest.test_case "search order connected" `Quick
            test_us_states_search_order_connected;
          Alcotest.test_case "four colourable" `Quick test_four_colorable;
        ] );
      ( "tsp",
        [
          Alcotest.test_case "distances symmetric" `Quick test_tsp_distances_symmetric;
          Alcotest.test_case "deterministic per seed" `Quick test_tsp_deterministic_per_seed;
          Alcotest.test_case "all protocols optimal" `Slow test_tsp_all_protocols_find_optimum;
          Alcotest.test_case "deterministic replay" `Slow test_tsp_deterministic_replay;
          Alcotest.test_case "migrate_thread pile-up" `Slow test_tsp_migrate_thread_piles_up;
          Alcotest.test_case "page beats migration" `Slow test_tsp_page_protocols_beat_migration;
        ] );
      ( "jacobi",
        [
          Alcotest.test_case "matches sequential" `Slow test_jacobi_matches_sequential;
          Alcotest.test_case "hbrc ships diffs" `Slow test_jacobi_hbrc_ships_diffs;
          Alcotest.test_case "single node" `Quick test_jacobi_single_node_degenerate;
        ] );
      ( "matmul",
        [ Alcotest.test_case "matches sequential" `Slow test_matmul_matches_sequential ] );
      ( "coloring",
        [
          Alcotest.test_case "both protocols optimal" `Slow test_coloring_both_protocols_optimal;
          Alcotest.test_case "ic pays checks, pf pays faults" `Slow test_coloring_ic_pays_checks;
        ] );
    ]

(* Tests of the experiment harness itself: the reproduced numbers must match
   the paper where the paper gives numbers, and match its qualitative claims
   where it gives shapes. *)

open Dsmpm2_experiments

let close ?(tolerance = 0.02) name expected actual =
  let ok = Float.abs (actual -. expected) <= tolerance *. Float.abs expected in
  Alcotest.(check bool)
    (Printf.sprintf "%s: %.1f within %.0f%% of paper's %.1f" name actual
       (100. *. tolerance) expected)
    true ok

let test_table3_matches_paper () =
  let t = Fault_cost.run Fault_cost.Page_transfer in
  List.iteri
    (fun i driver ->
      close
        (driver ^ " Table 3 total")
        (Fault_cost.paper_total t ~driver:i)
        (Fault_cost.total t ~driver:i))
    t.Fault_cost.drivers

let test_table4_matches_paper () =
  let t = Fault_cost.run Fault_cost.Thread_migration in
  List.iteri
    (fun i driver ->
      close
        (driver ^ " Table 4 total")
        (Fault_cost.paper_total t ~driver:i)
        (Fault_cost.total t ~driver:i))
    t.Fault_cost.drivers

let test_table3_stage_rows_match () =
  let t = Fault_cost.run Fault_cost.Page_transfer in
  List.iter
    (fun row ->
      Array.iteri
        (fun i paper -> close (row.Fault_cost.operation ^ Printf.sprintf " col %d" i) paper row.Fault_cost.measured_us.(i))
        row.Fault_cost.paper_us)
    t.Fault_cost.rows

let test_micro_matches_paper () =
  let rows = Micro.run () in
  List.iter
    (fun r ->
      Option.iter (fun p -> close (r.Micro.driver ^ " null RPC") p r.Micro.null_rpc_us) r.Micro.paper_null_rpc_us;
      Option.iter (fun p -> close (r.Micro.driver ^ " migration") p r.Micro.migration_us) r.Micro.paper_migration_us)
    rows

let test_table2_all_registered () =
  let rows = Table2_inventory.run () in
  Alcotest.(check int) "six protocols" 6 (List.length rows);
  List.iter
    (fun r ->
      Alcotest.(check bool) (r.Table2_inventory.name ^ " registered") true
        r.Table2_inventory.registered)
    rows

(* Figure 4's qualitative claim: "all protocols based on page migration
   perform better than the protocol using thread migration". *)
let test_fig4_shape () =
  let data = Fig4_tsp.run ~cities:11 ~node_counts:[ 4 ] () in
  let time proto =
    (List.find (fun c -> c.Fig4_tsp.protocol = proto) data.Fig4_tsp.cells)
      .Fig4_tsp.time_ms
  in
  let mt = time "migrate_thread" in
  List.iter
    (fun proto ->
      Alcotest.(check bool)
        (Printf.sprintf "%s (%.1fms) beats migrate_thread (%.1fms)" proto (time proto) mt)
        true
        (time proto < mt))
    [ "li_hudak"; "erc_sw"; "hbrc_mw" ];
  Alcotest.(check bool) "everyone found the optimum" true
    (List.for_all (fun c -> c.Fig4_tsp.best = data.Fig4_tsp.sequential_best) data.Fig4_tsp.cells)

(* Figure 5's qualitative claim: java_pf outperforms java_ic. *)
let test_fig5_shape () =
  let data = Fig5_coloring.run ~node_counts:[ 2 ] () in
  let cell proto = List.find (fun c -> c.Fig5_coloring.protocol = proto) data.Fig5_coloring.cells in
  let ic = cell "java_ic" and pf = cell "java_pf" in
  Alcotest.(check bool)
    (Printf.sprintf "pf (%.1fms) beats ic (%.1fms)" pf.Fig5_coloring.time_ms
       ic.Fig5_coloring.time_ms)
    true
    (pf.Fig5_coloring.time_ms < ic.Fig5_coloring.time_ms);
  Alcotest.(check bool) "ic paid checks" true (ic.Fig5_coloring.inline_checks > 0);
  Alcotest.(check int) "pf paid none" 0 pf.Fig5_coloring.inline_checks;
  Alcotest.(check bool) "both optimal" true
    (ic.Fig5_coloring.best_cost = data.Fig5_coloring.sequential_best
    && pf.Fig5_coloring.best_cost = data.Fig5_coloring.sequential_best)

(* The ablation's crossover claim: thread migration wins for small stacks,
   page transfer wins for large ones (paper section 4 discussion). *)
let test_ablation_stack_crossover () =
  let data = Ablation.run () in
  List.iter
    (fun driver ->
      let rows =
        List.filter (fun r -> r.Ablation.driver = driver.Dsmpm2_net.Driver.name) data.Ablation.stack
      in
      let small = List.find (fun r -> r.Ablation.stack_bytes = 1024) rows in
      let large = List.find (fun r -> r.Ablation.stack_bytes = 65536) rows in
      Alcotest.(check bool)
        (driver.Dsmpm2_net.Driver.name ^ ": migration wins small stacks")
        true
        (small.Ablation.thread_migration_us < small.Ablation.page_transfer_us);
      Alcotest.(check bool)
        (driver.Dsmpm2_net.Driver.name ^ ": page transfer wins large stacks")
        true
        (large.Ablation.page_transfer_us < large.Ablation.thread_migration_us))
    Dsmpm2_net.Driver.all

(* --- litmus tests --- *)

let test_litmus_sc_protocols_never_violate () =
  List.iter
    (fun protocol ->
      List.iter
        (fun kind ->
          let c = Litmus.sweep ~protocol ~kind in
          Alcotest.(check int)
            (Printf.sprintf "%s: no forbidden outcomes" protocol)
            0 c.Litmus.violations)
        [ Litmus.Mp; Litmus.Sb; Litmus.Corr ])
    Litmus.sequentially_consistent_protocols

let test_litmus_weak_protocols_relax () =
  (* Every relaxed protocol must exhibit the stale-read outcomes somewhere
     in the sweep — that IS the relaxation. *)
  List.iter
    (fun protocol ->
      let mp = Litmus.sweep ~protocol ~kind:Litmus.Mp in
      let sb = Litmus.sweep ~protocol ~kind:Litmus.Sb in
      Alcotest.(check bool) (protocol ^ " exhibits MP relaxation") true
        (mp.Litmus.violations > 0);
      Alcotest.(check bool) (protocol ^ " exhibits SB relaxation") true
        (sb.Litmus.violations > 0))
    [ "erc_sw"; "hbrc_mw"; "java_ic"; "java_pf"; "entry_ec" ]

let test_litmus_coherence_holds_for_all () =
  List.iter
    (fun protocol ->
      let c = Litmus.sweep ~protocol ~kind:Litmus.Corr in
      Alcotest.(check int) (protocol ^ " reads never go backwards") 0
        c.Litmus.violations)
    [
      "li_hudak"; "migrate_thread"; "erc_sw"; "hbrc_mw"; "java_ic"; "java_pf";
      "li_hudak_fixed"; "hybrid_rw"; "entry_ec";
    ]

(* The relaxed outcomes disappear once the accesses are synchronized: the
   same MP shape with a lock around each side observes only SC results. *)
let test_litmus_locks_restore_sc () =
  List.iter
    (fun protocol ->
      let dsm =
        Dsmpm2_core.Dsm.create ~nodes:2 ~driver:Dsmpm2_net.Driver.bip_myrinet ()
      in
      ignore (Dsmpm2_protocols.Builtin.register_all dsm);
      ignore (Dsmpm2_protocols.Builtin.register_extras dsm);
      let module Dsm = Dsmpm2_core.Dsm in
      let proto = Option.get (Dsm.protocol_by_name dsm protocol) in
      let x = Dsm.malloc dsm ~protocol:proto ~home:(Dsm.On_node 0) 8 in
      let y = Dsm.malloc dsm ~protocol:proto ~home:(Dsm.On_node 0) 8 in
      let lock = Dsm.lock_create dsm ~protocol:proto () in
      (if protocol = "entry_ec" then begin
         Dsmpm2_protocols.Entry_ec.bind dsm ~lock ~addr:x ~size:8;
         Dsmpm2_protocols.Entry_ec.bind dsm ~lock ~addr:y ~size:8
       end);
      let r1 = ref (-1) and r2 = ref (-1) in
      ignore
        (Dsm.spawn dsm ~node:0 (fun () ->
             Dsm.compute dsm 500.;
             Dsm.with_lock dsm lock (fun () ->
                 Dsm.write_int dsm x 1;
                 Dsm.write_int dsm y 1)));
      ignore
        (Dsm.spawn dsm ~node:1 (fun () ->
             (* adversarial pre-caching of the payload only *)
             Dsm.with_lock dsm lock (fun () -> ignore (Dsm.read_int dsm x));
             Dsm.compute dsm 700.;
             Dsm.with_lock dsm lock (fun () ->
                 r1 := Dsm.read_int dsm y;
                 r2 := Dsm.read_int dsm x)));
      Dsm.run dsm;
      Alcotest.(check bool)
        (Printf.sprintf "%s: locked MP never shows flag without payload" protocol)
        false
        (!r1 = 1 && !r2 = 0))
    [ "erc_sw"; "hbrc_mw"; "java_ic"; "java_pf"; "entry_ec" ]

(* --- sharing patterns --- *)

let test_patterns_all_correct () =
  let cells = Sharing_patterns.run () in
  List.iter
    (fun c ->
      Alcotest.(check bool)
        (Printf.sprintf "%s under %s" c.Sharing_patterns.pattern
           c.Sharing_patterns.protocol)
        true c.Sharing_patterns.correct)
    cells

let test_patterns_shapes () =
  let cell ~pattern ~protocol =
    Sharing_patterns.run_one ~pattern ~protocol
  in
  (* Multiple-writer protocols crush MRSW on false sharing. *)
  let fs_mrsw = cell ~pattern:"false_sharing" ~protocol:"li_hudak" in
  let fs_mw = cell ~pattern:"false_sharing" ~protocol:"hbrc_mw" in
  Alcotest.(check bool)
    (Printf.sprintf "false sharing: hbrc (%.1fms) beats li_hudak (%.1fms)"
       fs_mw.Sharing_patterns.time_ms fs_mrsw.Sharing_patterns.time_ms)
    true
    (fs_mw.Sharing_patterns.time_ms < 0.5 *. fs_mrsw.Sharing_patterns.time_ms);
  (* Thread migration is the natural protocol for migratory data. *)
  let mig_mt = cell ~pattern:"migratory" ~protocol:"migrate_thread" in
  let mig_li = cell ~pattern:"migratory" ~protocol:"li_hudak" in
  Alcotest.(check bool)
    (Printf.sprintf "migratory: migrate_thread (%.1fms) beats li_hudak (%.1fms)"
       mig_mt.Sharing_patterns.time_ms mig_li.Sharing_patterns.time_ms)
    true
    (mig_mt.Sharing_patterns.time_ms < mig_li.Sharing_patterns.time_ms);
  (* Replication shines on read-mostly data: the SC protocols keep their
     copies valid, the weak ones re-fetch after every acquire. *)
  let rm_li = cell ~pattern:"read_mostly" ~protocol:"li_hudak" in
  let rm_hbrc = cell ~pattern:"read_mostly" ~protocol:"hbrc_mw" in
  Alcotest.(check bool)
    (Printf.sprintf "read-mostly: li_hudak (%.1fms) beats hbrc (%.1fms)"
       rm_li.Sharing_patterns.time_ms rm_hbrc.Sharing_patterns.time_ms)
    true
    (rm_li.Sharing_patterns.time_ms < rm_hbrc.Sharing_patterns.time_ms)

let () =
  Alcotest.run "experiments"
    [
      ( "paper-numbers",
        [
          Alcotest.test_case "Table 3 totals" `Quick test_table3_matches_paper;
          Alcotest.test_case "Table 4 totals" `Quick test_table4_matches_paper;
          Alcotest.test_case "Table 3 all stages" `Quick test_table3_stage_rows_match;
          Alcotest.test_case "micro (RPC, migration)" `Quick test_micro_matches_paper;
          Alcotest.test_case "Table 2 inventory" `Quick test_table2_all_registered;
        ] );
      ( "paper-shapes",
        [
          Alcotest.test_case "Figure 4 shape" `Slow test_fig4_shape;
          Alcotest.test_case "Figure 5 shape" `Slow test_fig5_shape;
          Alcotest.test_case "stack-size crossover" `Slow test_ablation_stack_crossover;
        ] );
      ( "litmus",
        [
          Alcotest.test_case "SC protocols never violate" `Quick
            test_litmus_sc_protocols_never_violate;
          Alcotest.test_case "weak protocols relax" `Quick
            test_litmus_weak_protocols_relax;
          Alcotest.test_case "coherence holds for all" `Quick
            test_litmus_coherence_holds_for_all;
          Alcotest.test_case "locks restore SC outcomes" `Quick
            test_litmus_locks_restore_sc;
        ] );
      ( "sharing-patterns",
        [
          Alcotest.test_case "all cells correct" `Quick test_patterns_all_correct;
          Alcotest.test_case "qualitative shapes" `Quick test_patterns_shapes;
        ] );
    ]

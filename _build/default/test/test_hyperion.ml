(* Tests of the Hyperion object runtime over the Java protocols. *)

open Dsmpm2_net
open Dsmpm2_core
open Dsmpm2_protocols
module H = Dsmpm2_hyperion.Hyperion

let make ?(nodes = 3) ?(protocol = `Pf) () =
  let dsm = Dsm.create ~nodes ~driver:Driver.sisci_sci () in
  let ids = Builtin.register_all dsm in
  let proto =
    match protocol with `Pf -> ids.Builtin.java_pf | `Ic -> ids.Builtin.java_ic
  in
  (dsm, H.create dsm ~protocol:proto)

let run_one dsm ~node f =
  ignore (Dsm.spawn dsm ~node f);
  Dsm.run dsm

let test_objects_pack_per_home () =
  let dsm, hyp = make () in
  let a = H.new_obj hyp ~home:1 ~fields:4 () in
  let b = H.new_obj hyp ~home:1 ~fields:4 () in
  let c = H.new_obj hyp ~home:2 ~fields:4 () in
  let page_of o = List.hd (Dsm.region_pages dsm ~addr:(H.addr o) ~size:8) in
  Alcotest.(check int) "same home shares a page" (page_of a) (page_of b);
  Alcotest.(check bool) "different homes, different pages" true (page_of a <> page_of c);
  Alcotest.(check int) "home recorded" 1 (H.home hyp a);
  Alcotest.(check int) "field count" 4 (H.field_count a)

let test_get_put_local () =
  let dsm, hyp = make () in
  let o = H.new_obj hyp ~home:0 ~fields:2 () in
  run_one dsm ~node:0 (fun () ->
      H.put hyp o 0 10;
      H.put hyp o 1 20;
      Alcotest.(check int) "field 0" 10 (H.get hyp o 0);
      Alcotest.(check int) "field 1" 20 (H.get hyp o 1))

let test_field_bounds_checked () =
  let dsm, hyp = make () in
  let o = H.new_obj hyp ~home:0 ~fields:2 () in
  run_one dsm ~node:0 (fun () ->
      Alcotest.check_raises "out of bounds"
        (Invalid_argument "Hyperion: field 2 out of range (object has 2 fields)")
        (fun () -> ignore (H.get hyp o 2)))

let test_monitor_publishes_to_main_memory () =
  let dsm, hyp = make () in
  let o = H.new_obj hyp ~home:0 ~fields:1 () in
  let m = H.new_monitor hyp () in
  run_one dsm ~node:1 (fun () ->
      H.synchronized hyp m (fun () -> H.put hyp o 0 777));
  Alcotest.(check int) "main memory updated on exit" 777 (H.peek_main_memory hyp o 0)

let test_writes_cached_until_exit () =
  let dsm, hyp = make () in
  let o = H.new_obj hyp ~home:0 ~fields:1 () in
  let m = H.new_monitor hyp () in
  let main_before = ref (-1) in
  run_one dsm ~node:1 (fun () ->
      H.monitor_enter hyp m;
      H.put hyp o 0 5;
      main_before := H.peek_main_memory hyp o 0;
      H.monitor_exit hyp m);
  Alcotest.(check int) "main memory unchanged inside monitor" 0 !main_before;
  Alcotest.(check int) "flushed at exit" 5 (H.peek_main_memory hyp o 0)

let test_cache_flushed_on_enter () =
  let dsm, hyp = make ~nodes:2 () in
  let o = H.new_obj hyp ~home:0 ~fields:1 () in
  let m = H.new_monitor hyp () in
  let stale = ref (-1) and fresh = ref (-1) in
  ignore
    (Dsm.spawn dsm ~node:1 (fun () ->
         ignore (H.get hyp o 0);
         (* cache a copy *)
         Dsm.compute dsm 5_000.;
         stale := H.get hyp o 0;
         (* plain read: may be stale *)
         Dsm.compute dsm 5_000.;
         H.synchronized hyp m (fun () -> fresh := H.get hyp o 0)));
  ignore
    (Dsm.spawn dsm ~node:0 (fun () ->
         Dsm.compute dsm 1_000.;
         H.synchronized hyp m (fun () -> H.put hyp o 0 9)));
  Dsm.run dsm;
  Alcotest.(check int) "unsynchronized read stale" 0 !stale;
  Alcotest.(check int) "monitor entry flushes the cache" 9 !fresh

let test_counter_through_monitors () =
  List.iter
    (fun protocol ->
      let dsm, hyp = make ~nodes:4 ~protocol () in
      let o = H.new_obj hyp ~home:0 ~fields:1 () in
      let m = H.new_monitor hyp () in
      let threads =
        List.init 4 (fun node ->
            Dsm.spawn dsm ~node (fun () ->
                for _ = 1 to 5 do
                  H.synchronized hyp m (fun () -> H.put hyp o 0 (H.get hyp o 0 + 1))
                done))
      in
      Dsm.run dsm;
      ignore threads;
      Alcotest.(check int) "4x5 increments" 20 (H.peek_main_memory hyp o 0))
    [ `Pf; `Ic ]

let test_arrays () =
  let dsm, hyp = make () in
  let arr = H.new_array hyp ~home:2 ~len:10 () in
  run_one dsm ~node:2 (fun () ->
      for i = 0 to 9 do
        H.put hyp arr i (i * i)
      done;
      let sum = ref 0 in
      for i = 0 to 9 do
        sum := !sum + H.get hyp arr i
      done;
      Alcotest.(check int) "sum of squares" 285 !sum)

let test_explicit_main_memory_update () =
  let dsm, hyp = make () in
  let o = H.new_obj hyp ~home:0 ~fields:1 () in
  run_one dsm ~node:1 (fun () ->
      H.put hyp o 0 31;
      Alcotest.(check int) "not yet in main memory" 0 (H.peek_main_memory hyp o 0);
      H.main_memory_update hyp;
      Alcotest.(check int) "pushed explicitly" 31 (H.peek_main_memory hyp o 0))

let test_object_too_large_rejected () =
  let _, hyp = make () in
  Alcotest.check_raises "page-sized max"
    (Invalid_argument "Hyperion: object larger than a page is not supported")
    (fun () -> ignore (H.new_obj hyp ~home:0 ~fields:513 ()))

let test_default_home_is_allocating_node () =
  let dsm, hyp = make () in
  let homes = Array.make 3 (-1) in
  for node = 0 to 2 do
    ignore
      (Dsm.spawn dsm ~node (fun () ->
           let o = H.new_obj hyp ~fields:1 () in
           homes.(node) <- H.home hyp o))
  done;
  Dsm.run dsm;
  Alcotest.(check (list int)) "objects live where they were created" [ 0; 1; 2 ]
    (Array.to_list homes)

let test_arena_rolls_to_new_page () =
  let dsm, hyp = make () in
  (* 512 words per page: two 300-word arrays cannot share one. *)
  let a = H.new_array hyp ~home:1 ~len:300 () in
  let b = H.new_array hyp ~home:1 ~len:300 () in
  let page_of o = List.hd (Dsm.region_pages dsm ~addr:(H.addr o) ~size:8) in
  Alcotest.(check bool) "second array on a fresh page" true (page_of a <> page_of b)

let test_records_visible_through_api () =
  let dsm, hyp = make () in
  let o = H.new_obj hyp ~home:0 ~fields:2 () in
  run_one dsm ~node:1 (fun () ->
      H.put hyp o 0 1;
      H.put hyp o 1 2;
      let page = List.hd (Dsm.region_pages dsm ~addr:(H.addr o) ~size:8) in
      Alcotest.(check int) "two pending records" 2
        (List.length (Java_common.recorded_words dsm ~node:1 ~page));
      H.main_memory_update hyp;
      Alcotest.(check int) "cleared after update" 0
        (List.length (Java_common.recorded_words dsm ~node:1 ~page)))

let () =
  Alcotest.run "hyperion"
    [
      ( "objects",
        [
          Alcotest.test_case "packing per home" `Quick test_objects_pack_per_home;
          Alcotest.test_case "get/put local" `Quick test_get_put_local;
          Alcotest.test_case "field bounds" `Quick test_field_bounds_checked;
          Alcotest.test_case "arrays" `Quick test_arrays;
          Alcotest.test_case "oversized rejected" `Quick test_object_too_large_rejected;
          Alcotest.test_case "default home" `Quick test_default_home_is_allocating_node;
          Alcotest.test_case "arena rolls pages" `Quick test_arena_rolls_to_new_page;
        ] );
      ( "jmm",
        [
          Alcotest.test_case "monitor exit publishes" `Quick
            test_monitor_publishes_to_main_memory;
          Alcotest.test_case "writes cached until exit" `Quick test_writes_cached_until_exit;
          Alcotest.test_case "cache flushed on enter" `Quick test_cache_flushed_on_enter;
          Alcotest.test_case "counter through monitors" `Quick test_counter_through_monitors;
          Alcotest.test_case "explicit main-memory update" `Quick
            test_explicit_main_memory_update;
          Alcotest.test_case "records API" `Quick test_records_visible_through_api;
        ] );
    ]

test/test_mem.ml: Access Alcotest Bytes Char Diff Dsmpm2_mem Frame_store List Page QCheck QCheck_alcotest

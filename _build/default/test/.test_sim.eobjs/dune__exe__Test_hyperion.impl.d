test/test_hyperion.ml: Alcotest Array Builtin Driver Dsm Dsmpm2_core Dsmpm2_hyperion Dsmpm2_net Dsmpm2_protocols Java_common List

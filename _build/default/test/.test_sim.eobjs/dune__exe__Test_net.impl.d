test/test_net.ml: Alcotest Driver Dsmpm2_net Dsmpm2_sim Engine List Network Stats Time

test/test_apps.ml: Alcotest Array Dsmpm2_apps Fun Hashtbl Jacobi List Map_coloring Matmul Printf Tsp Us_states

test/test_consistency.ml: Alcotest Array Builtin Driver Dsm Dsmpm2_core Dsmpm2_net Dsmpm2_pm2 Dsmpm2_protocols Dsmpm2_sim Entry_ec List Network Option Printf QCheck QCheck_alcotest Rng

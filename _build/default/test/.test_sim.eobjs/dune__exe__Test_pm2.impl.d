test/test_pm2.ml: Alcotest Array Balancer Cpu Driver Dsmpm2_net Dsmpm2_pm2 Dsmpm2_sim Isoalloc List Marcel Pm2 Printf QCheck QCheck_alcotest Rpc Time

test/test_hyperion.mli:

test/test_sim.ml: Alcotest Array Cpu Dsmpm2_sim Engine Format Fun Heap List QCheck QCheck_alcotest Rng Stats Time Trace

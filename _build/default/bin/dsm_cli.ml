(* dsm-cli: run DSM-PM2 reproduction experiments and ad-hoc application
   configurations from the command line.

     dune exec bin/dsm_cli.exe -- table3
     dune exec bin/dsm_cli.exe -- tsp --protocol migrate_thread --nodes 8
     dune exec bin/dsm_cli.exe -- jacobi --protocol hbrc_mw --size 64
     dune exec bin/dsm_cli.exe -- coloring --protocol java_ic --nodes 2 *)

open Cmdliner
open Dsmpm2_experiments

let ppf = Format.std_formatter

let driver_conv =
  let parse s =
    match Dsmpm2_net.Driver.by_name s with
    | Some d -> Ok d
    | None ->
        Error
          (`Msg
            (Printf.sprintf "unknown driver %S (known: %s)" s
               (String.concat ", "
                  (List.map (fun d -> d.Dsmpm2_net.Driver.name) Dsmpm2_net.Driver.all))))
  in
  let print fmt d = Format.pp_print_string fmt d.Dsmpm2_net.Driver.name in
  Arg.conv (parse, print)

let driver_arg =
  Arg.(
    value
    & opt driver_conv Dsmpm2_net.Driver.bip_myrinet
    & info [ "driver" ] ~docv:"DRIVER" ~doc:"Network driver (e.g. BIP/Myrinet, SISCI/SCI).")

let nodes_arg =
  Arg.(value & opt int 4 & info [ "nodes" ] ~docv:"N" ~doc:"Cluster size.")

let protocol_arg default =
  Arg.(
    value & opt string default
    & info [ "protocol" ] ~docv:"PROTO" ~doc:"Consistency protocol name.")

let seed_arg = Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc:"Random seed.")

let experiment name doc f =
  Cmd.v (Cmd.info name ~doc) Term.(const (fun () -> f ()) $ const ())

let tsp_cmd =
  let run protocol nodes driver seed cities balance =
    let r =
      Dsmpm2_apps.Tsp.run
        { Dsmpm2_apps.Tsp.default with protocol; nodes; driver; seed; cities; balance }
    in
    Format.fprintf ppf
      "tsp: protocol=%s nodes=%d cities=%d time=%.1fms best=%d expansions=%d \
       migrations=%d balancer_moves=%d faults=%d messages=%d workers=[%s]@."
      protocol nodes cities r.Dsmpm2_apps.Tsp.time_ms r.Dsmpm2_apps.Tsp.best
      r.Dsmpm2_apps.Tsp.expansions r.Dsmpm2_apps.Tsp.migrations
      r.Dsmpm2_apps.Tsp.balancer_moves
      (r.Dsmpm2_apps.Tsp.read_faults + r.Dsmpm2_apps.Tsp.write_faults)
      r.Dsmpm2_apps.Tsp.messages
      (String.concat ";" (List.map string_of_int r.Dsmpm2_apps.Tsp.final_node_of_thread))
  in
  let cities =
    Arg.(value & opt int 14 & info [ "cities" ] ~docv:"N" ~doc:"Number of cities.")
  in
  let balance =
    Arg.(value & flag & info [ "balance" ] ~doc:"Run the PM2 load balancer.")
  in
  Cmd.v
    (Cmd.info "tsp" ~doc:"Run the TSP branch-and-bound application.")
    Term.(
      const run $ protocol_arg "li_hudak" $ nodes_arg $ driver_arg $ seed_arg $ cities
      $ balance)

let jacobi_cmd =
  let run protocol nodes driver size iterations =
    let r =
      Dsmpm2_apps.Jacobi.run
        { Dsmpm2_apps.Jacobi.default with protocol; nodes; driver; size; iterations }
    in
    let reference = Dsmpm2_apps.Jacobi.checksum_sequential ~size ~iterations in
    Format.fprintf ppf
      "jacobi: protocol=%s nodes=%d size=%d iters=%d time=%.1fms checksum=%s \
       faults=%d pages=%d diff_bytes=%d@."
      protocol nodes size iterations r.Dsmpm2_apps.Jacobi.time_ms
      (if r.Dsmpm2_apps.Jacobi.checksum = reference then "OK" else "WRONG")
      (r.Dsmpm2_apps.Jacobi.read_faults + r.Dsmpm2_apps.Jacobi.write_faults)
      r.Dsmpm2_apps.Jacobi.pages_transferred r.Dsmpm2_apps.Jacobi.diff_bytes
  in
  let size = Arg.(value & opt int 48 & info [ "size" ] ~docv:"N" ~doc:"Grid side.") in
  let iters =
    Arg.(value & opt int 8 & info [ "iterations" ] ~docv:"N" ~doc:"Sweeps.")
  in
  Cmd.v
    (Cmd.info "jacobi" ~doc:"Run the Jacobi relaxation kernel.")
    Term.(const run $ protocol_arg "hbrc_mw" $ nodes_arg $ driver_arg $ size $ iters)

let coloring_cmd =
  let run protocol nodes driver =
    let r =
      Dsmpm2_apps.Map_coloring.run
        { Dsmpm2_apps.Map_coloring.default with protocol; nodes; driver }
    in
    Format.fprintf ppf
      "coloring: protocol=%s nodes=%d time=%.1fms cost=%d gets=%d checks=%d faults=%d@."
      protocol nodes r.Dsmpm2_apps.Map_coloring.time_ms
      r.Dsmpm2_apps.Map_coloring.best_cost r.Dsmpm2_apps.Map_coloring.gets
      r.Dsmpm2_apps.Map_coloring.inline_checks
      (r.Dsmpm2_apps.Map_coloring.read_faults + r.Dsmpm2_apps.Map_coloring.write_faults)
  in
  Cmd.v
    (Cmd.info "coloring" ~doc:"Run the Hyperion-style map-colouring application.")
    Term.(const run $ protocol_arg "java_pf" $ nodes_arg $ driver_arg)

let experiments =
  [
    experiment "micro" "PM2 micro-benchmarks (paper section 2.1)." (fun () ->
        Micro.print ppf (Micro.run ()));
    experiment "table2" "Protocol inventory (paper Table 2)." (fun () ->
        Table2_inventory.print ppf (Table2_inventory.run ()));
    experiment "table3" "Read-fault breakdown, page transfer (paper Table 3)." (fun () ->
        Fault_cost.print ppf (Fault_cost.run Fault_cost.Page_transfer));
    experiment "table4" "Read-fault breakdown, thread migration (paper Table 4)."
      (fun () -> Fault_cost.print ppf (Fault_cost.run Fault_cost.Thread_migration));
    experiment "fig4" "TSP protocol comparison (paper Figure 4)." (fun () ->
        Fig4_tsp.print ppf (Fig4_tsp.run ()));
    experiment "fig5" "Java consistency comparison (paper Figure 5)." (fun () ->
        Fig5_coloring.print ppf (Fig5_coloring.run ()));
    experiment "splash" "SPLASH-style kernel study (paper section 5)." (fun () ->
        Splash.print ppf (Splash.run ()));
    experiment "ablation" "Stack-size and sync-frequency ablations." (fun () ->
        Ablation.print ppf (Ablation.run ()));
    experiment "litmus" "Memory-model litmus tests across all protocols." (fun () ->
        Litmus.print ppf (Litmus.run ()));
    experiment "patterns" "Sharing-pattern study across all protocols." (fun () ->
        Sharing_patterns.print ppf (Sharing_patterns.run ()));
  ]

let () =
  let info =
    Cmd.info "dsm-cli" ~version:"1.0.0"
      ~doc:"DSM-PM2 reproduction: experiments and applications."
  in
  exit (Cmd.eval (Cmd.group info (experiments @ [ tsp_cmd; jacobi_cmd; coloring_cmd ])))

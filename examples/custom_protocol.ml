(* Building a new protocol out of library routines (paper Section 2.3).

   The paper suggests a hybrid: "page replication on read fault (like in the
   li_hudak protocol) and thread migration on write fault (like in the
   migrate_thread protocol)".  This example assembles exactly that protocol
   from the exported pieces of the two built-in ones, registers it with
   dsm_create_protocol, and runs a small producer/consumers workload where
   the hybrid pays off: readers replicate the page locally, while the rare
   writers jump to the owner instead of bouncing the page around.

     dune exec examples/custom_protocol.exe *)

open Dsmpm2_net
open Dsmpm2_core
open Dsmpm2_protocols

let hybrid : Runtime.t Protocol.t =
  {
    Protocol.name = "hybrid_read_repl_write_migrate";
    detection = Protocol.Page_fault;
    model = Protocol.Sequential;
    (* replicate on read fault, like li_hudak *)
    read_fault = Li_hudak.protocol.Protocol.read_fault;
    (* migrate the thread on write fault, like migrate_thread *)
    write_fault = Migrate_thread.migrate_on_fault;
    (* the owner serves read copies (downgrading itself to read-only, so
       its next write faults and invalidates the replicas: sequential
       consistency is preserved) but never gives the page away *)
    read_server = Li_hudak.protocol.Protocol.read_server;
    write_server = Migrate_thread.protocol.Protocol.write_server;
    invalidate_server = Li_hudak.protocol.Protocol.invalidate_server;
    receive_page_server = Li_hudak.protocol.Protocol.receive_page_server;
    lock_acquire = Protocol.no_action;
    lock_release = Protocol.no_action;
    on_local_write = None;
    on_local_read = None;
    on_page_init = None;
  }

(* Writes must invalidate reader replicas to stay sequentially consistent:
   wrap the write fault so the (post-migration) owner-side upgrade also
   clears its copyset, reusing the li_hudak upgrade logic. *)
let hybrid =
  {
    hybrid with
    Protocol.write_fault =
      (fun rt ~node ~page ->
        Migrate_thread.migrate_on_fault rt ~node ~page;
        (* After the migration the thread sits on the owning node; the only
           missing right is write access while replicas exist. *)
        let here = Runtime.self_node rt in
        Li_hudak.protocol.Protocol.write_fault rt ~node:here ~page);
  }

let () =
  let dsm = Dsm.create ~nodes:4 ~driver:Driver.sisci_sci () in
  ignore (Builtin.register_all dsm);
  (* dsm_create_protocol: the new protocol is a first-class citizen. *)
  let proto = Dsm.create_protocol dsm hybrid in
  Printf.printf "registered protocol %d: %s\n\n" proto (Dsm.protocol_name dsm proto);
  let x = Dsm.malloc dsm ~protocol:proto ~home:(Dsm.On_node 1) 8 in
  let lock = Dsm.lock_create dsm ~protocol:proto () in
  (* One writer on node 0 publishes values (its first write migrates it to
     the page's node); readers on the other nodes poll replicated copies. *)
  let sum = Array.make 4 0 in
  let threads =
    List.init 4 (fun node ->
        Dsm.spawn dsm ~node (fun () ->
            if node = 0 then
              for v = 1 to 5 do
                Dsm.with_lock dsm lock (fun () -> Dsm.write_int dsm x v);
                Dsm.compute dsm 500.
              done
            else
              for _ = 1 to 10 do
                Dsm.with_lock dsm lock (fun () ->
                    sum.(node) <- sum.(node) + Dsm.read_int dsm x);
                Dsm.compute dsm 200.
              done))
  in
  Dsm.run dsm;
  List.iter (fun th -> assert (not (Dsmpm2_pm2.Marcel.is_alive th))) threads;
  Array.iteri
    (fun node s -> if node > 0 then Printf.printf "reader on node %d: sum of polls = %d\n" node s)
    sum;
  let stats = Dsm.stats dsm in
  Printf.printf
    "migrations: %d (writers jumped to the data), pages sent: %d (read replicas), \
     invalidations: %d\n"
    (Dsmpm2_pm2.Pm2.migrations (Dsm.pm2 dsm))
    (Dsmpm2_sim.Stats.count stats Instrument.pages_sent)
    (Dsmpm2_sim.Stats.count stats Instrument.invalidations)

(* dsm-cli: run DSM-PM2 reproduction experiments and ad-hoc application
   configurations from the command line.

     dune exec bin/dsm_cli.exe -- table3
     dune exec bin/dsm_cli.exe -- tsp --protocol migrate_thread --nodes 8
     dune exec bin/dsm_cli.exe -- jacobi --protocol hbrc_mw --size 64
     dune exec bin/dsm_cli.exe -- coloring --protocol java_ic --nodes 2

   Every subcommand accepts the observability flags:

     --trace-out FILE     Chrome trace_event JSON (chrome://tracing, Perfetto)
     --trace-jsonl FILE   one typed event per line; FILE.gz gzip-compresses
     --metrics-out FILE   stable JSON metrics snapshot
     --metrics-prom FILE  Prometheus text exposition of the metrics registry
     --report             post-mortem per-category / per-stage report
     --health             live watchdog + end-of-run health summary

   For the application subcommands these export the live trace of the run;
   for the table/figure experiments (which run many simulations internally)
   the trace flags are not applicable and --metrics-out / --report operate
   on the experiment's result table. *)

open Cmdliner
open Dsmpm2_sim
open Dsmpm2_core
open Dsmpm2_experiments

let ppf = Format.std_formatter

let driver_conv =
  let parse s =
    match Dsmpm2_net.Driver.by_name s with
    | Some d -> Ok d
    | None ->
        Error
          (`Msg
            (Printf.sprintf "unknown driver %S (known: %s)" s
               (String.concat ", "
                  (List.map (fun d -> d.Dsmpm2_net.Driver.name) Dsmpm2_net.Driver.all))))
  in
  let print fmt d = Format.pp_print_string fmt d.Dsmpm2_net.Driver.name in
  Arg.conv (parse, print)

let driver_arg =
  Arg.(
    value
    & opt driver_conv Dsmpm2_net.Driver.bip_myrinet
    & info [ "driver" ] ~docv:"DRIVER" ~doc:"Network driver (e.g. BIP/Myrinet, SISCI/SCI).")

let nodes_arg =
  Arg.(value & opt int 4 & info [ "nodes" ] ~docv:"N" ~doc:"Cluster size.")

let protocol_arg default =
  Arg.(
    value & opt string default
    & info [ "protocol" ] ~docv:"PROTO" ~doc:"Consistency protocol name.")

let seed_arg = Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc:"Random seed.")

(* --- observability flags, shared by every subcommand --- *)

type obs = {
  trace_out : string option;
  trace_jsonl : string option;
  trace_cap : int option;
  trace_dump : string option;
  sample_pct : float option;
  sample_seed : int;
  metrics_out : string option;
  metrics_prom : string option;
  report : bool;
  health : bool;
}

let obs_term =
  let trace_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace-out" ] ~docv:"FILE"
          ~doc:"Write the event trace as Chrome trace_event JSON to $(docv).")
  in
  let trace_jsonl =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace-jsonl" ] ~docv:"FILE"
          ~doc:"Write the event trace as JSON Lines (one event per line) to $(docv).")
  in
  let trace_cap =
    Arg.(
      value
      & opt (some int) None
      & info [ "trace-cap" ] ~docv:"N"
          ~doc:
            "Flight-recorder mode: keep only the newest $(docv) trace events \
             in a bounded ring (evictions are counted, the schedule is \
             unchanged).")
  in
  let trace_dump =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace-dump" ] ~docv:"FILE"
          ~doc:
            "Auto-dump the trace ring as JSONL to $(docv) the first time a \
             critical alert is recorded (a .gz suffix gzip-compresses).")
  in
  let sample_pct =
    Arg.(
      value
      & opt (some float) None
      & info [ "sample-pct" ] ~docv:"PCT"
          ~doc:
            "Deterministic head-based trace sampling: store roughly $(docv)% \
             of fault spans (whole spans are kept or dropped together; \
             alerts and injected-fault events are always kept; the schedule \
             and the online telemetry are unchanged).")
  in
  let sample_seed =
    Arg.(
      value & opt int 0
      & info [ "sample-seed" ] ~docv:"SEED"
          ~doc:
            "Seed for $(b,--sample-pct) keep decisions (same seed, same \
             spans kept).")
  in
  let metrics_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "metrics-out" ] ~docv:"FILE"
          ~doc:"Write a JSON metrics snapshot to $(docv).")
  in
  let metrics_prom =
    Arg.(
      value
      & opt (some string) None
      & info [ "metrics-prom" ] ~docv:"FILE"
          ~doc:"Write the metrics registry in Prometheus text exposition format to $(docv).")
  in
  let report =
    Arg.(
      value & flag
      & info [ "report" ] ~doc:"Print the post-mortem monitoring report after the run.")
  in
  let health =
    Arg.(
      value & flag
      & info [ "health" ]
          ~doc:
            "Attach the live watchdog (invariant audits, deadlock/stall/thrash \
             detection) and print its health summary after the run.")
  in
  Term.(
    const
      (fun trace_out trace_jsonl trace_cap trace_dump sample_pct sample_seed
           metrics_out metrics_prom report health ->
        {
          trace_out;
          trace_jsonl;
          trace_cap;
          trace_dump;
          sample_pct;
          sample_seed;
          metrics_out;
          metrics_prom;
          report;
          health;
        })
    $ trace_out $ trace_jsonl $ trace_cap $ trace_dump $ sample_pct
    $ sample_seed $ metrics_out $ metrics_prom $ report $ health)

let obs_wants_monitor o =
  o.trace_out <> None || o.trace_jsonl <> None || o.trace_cap <> None
  || o.trace_dump <> None || o.sample_pct <> None || o.report || o.health

let to_formatter file f =
  let oc = open_out file in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      let fmt = Format.formatter_of_out_channel oc in
      f fmt;
      Format.pp_print_flush fmt ())

(* Export hook for the application subcommands: enables the monitor before
   the run via the app's [observe] hook and dumps everything afterwards. *)
let app_observe obs =
  let captured = ref None in
  let watchdog = ref None in
  let observe dsm =
    captured := Some dsm;
    if obs_wants_monitor obs then Monitor.enable dsm true;
    let tr = Monitor.trace dsm in
    Option.iter (Trace.set_capacity tr) obs.trace_cap;
    Option.iter (Trace.set_autodump tr) obs.trace_dump;
    Option.iter
      (fun pct -> Trace.set_sampling tr ~seed:obs.sample_seed ~keep_pct:pct)
      obs.sample_pct;
    if obs.health then watchdog := Some (Watchdog.attach dsm)
  in
  let export ~name ?protocol () =
    match !captured with
    | None -> ()
    | Some dsm ->
        let tr = Monitor.trace dsm in
        Option.iter (fun file -> to_formatter file (fun fmt -> Trace.to_chrome fmt tr))
          obs.trace_out;
        Option.iter (fun file -> Trace.save_jsonl file tr) obs.trace_jsonl;
        Option.iter
          (fun file ->
            let meta = Monitor.run_meta ?protocol ~case:name dsm in
            Json.to_file file (Monitor.to_json ~experiment:name ~meta dsm))
          obs.metrics_out;
        Option.iter
          (fun file -> to_formatter file (fun fmt -> Monitor.to_prometheus fmt dsm))
          obs.metrics_prom;
        if obs.report then Monitor.report ppf dsm;
        Option.iter (fun w -> Format.fprintf ppf "%a@." Watchdog.pp_summary w) !watchdog;
        if Trace.autodump_fired tr then
          Format.fprintf ppf
            "flight recorder: critical alert — dumped trace ring to %s@."
            (Option.value ~default:"?" (Trace.autodump_path tr))
  in
  (observe, export)

(* The table/figure experiments run many simulations internally, so there is
   no single trace to export; --metrics-out and --report operate on the
   result table instead. *)
let experiment_obs obs ~name json =
  if obs.trace_out <> None || obs.trace_jsonl <> None || obs.trace_cap <> None
     || obs.trace_dump <> None || obs.sample_pct <> None
     || obs.metrics_prom <> None || obs.health
  then
    Format.fprintf ppf
      "%s: --trace-out/--trace-jsonl/--trace-cap/--trace-dump/--metrics-prom/\
       --health only apply to application subcommands (tsp, jacobi, coloring); \
       ignoring@."
      name;
  Option.iter (fun file -> Json.to_file file json) obs.metrics_out;
  if obs.report then Format.fprintf ppf "%a@." Json.pp json

let experiment name doc f =
  let run obs = experiment_obs obs ~name (f ()) in
  Cmd.v (Cmd.info name ~doc) Term.(const run $ obs_term)

let tsp_cmd =
  let run protocol nodes driver seed cities balance obs =
    let observe, export = app_observe obs in
    let r =
      Dsmpm2_apps.Tsp.run
        {
          Dsmpm2_apps.Tsp.default with
          protocol;
          nodes;
          driver;
          seed;
          cities;
          balance;
          observe = Some observe;
        }
    in
    Format.fprintf ppf
      "tsp: protocol=%s nodes=%d cities=%d time=%.1fms best=%d expansions=%d \
       migrations=%d balancer_moves=%d faults=%d messages=%d workers=[%s]@."
      protocol nodes cities r.Dsmpm2_apps.Tsp.time_ms r.Dsmpm2_apps.Tsp.best
      r.Dsmpm2_apps.Tsp.expansions r.Dsmpm2_apps.Tsp.migrations
      r.Dsmpm2_apps.Tsp.balancer_moves
      (r.Dsmpm2_apps.Tsp.read_faults + r.Dsmpm2_apps.Tsp.write_faults)
      r.Dsmpm2_apps.Tsp.messages
      (String.concat ";" (List.map string_of_int r.Dsmpm2_apps.Tsp.final_node_of_thread));
    export ~name:"tsp" ~protocol ()
  in
  let cities =
    Arg.(value & opt int 14 & info [ "cities" ] ~docv:"N" ~doc:"Number of cities.")
  in
  let balance =
    Arg.(value & flag & info [ "balance" ] ~doc:"Run the PM2 load balancer.")
  in
  Cmd.v
    (Cmd.info "tsp" ~doc:"Run the TSP branch-and-bound application.")
    Term.(
      const run $ protocol_arg "li_hudak" $ nodes_arg $ driver_arg $ seed_arg $ cities
      $ balance $ obs_term)

let jacobi_cmd =
  let run protocol nodes driver size iterations obs =
    let observe, export = app_observe obs in
    let r =
      Dsmpm2_apps.Jacobi.run
        {
          Dsmpm2_apps.Jacobi.default with
          protocol;
          nodes;
          driver;
          size;
          iterations;
          observe = Some observe;
        }
    in
    let reference = Dsmpm2_apps.Jacobi.checksum_sequential ~size ~iterations in
    Format.fprintf ppf
      "jacobi: protocol=%s nodes=%d size=%d iters=%d time=%.1fms checksum=%s \
       faults=%d pages=%d diff_bytes=%d@."
      protocol nodes size iterations r.Dsmpm2_apps.Jacobi.time_ms
      (if r.Dsmpm2_apps.Jacobi.checksum = reference then "OK" else "WRONG")
      (r.Dsmpm2_apps.Jacobi.read_faults + r.Dsmpm2_apps.Jacobi.write_faults)
      r.Dsmpm2_apps.Jacobi.pages_transferred r.Dsmpm2_apps.Jacobi.diff_bytes;
    export ~name:"jacobi" ~protocol ()
  in
  let size = Arg.(value & opt int 48 & info [ "size" ] ~docv:"N" ~doc:"Grid side.") in
  let iters =
    Arg.(value & opt int 8 & info [ "iterations" ] ~docv:"N" ~doc:"Sweeps.")
  in
  Cmd.v
    (Cmd.info "jacobi" ~doc:"Run the Jacobi relaxation kernel.")
    Term.(
      const run $ protocol_arg "hbrc_mw" $ nodes_arg $ driver_arg $ size $ iters
      $ obs_term)

let coloring_cmd =
  let run protocol nodes driver obs =
    let observe, export = app_observe obs in
    let r =
      Dsmpm2_apps.Map_coloring.run
        {
          Dsmpm2_apps.Map_coloring.default with
          protocol;
          nodes;
          driver;
          observe = Some observe;
        }
    in
    Format.fprintf ppf
      "coloring: protocol=%s nodes=%d time=%.1fms cost=%d gets=%d checks=%d faults=%d@."
      protocol nodes r.Dsmpm2_apps.Map_coloring.time_ms
      r.Dsmpm2_apps.Map_coloring.best_cost r.Dsmpm2_apps.Map_coloring.gets
      r.Dsmpm2_apps.Map_coloring.inline_checks
      (r.Dsmpm2_apps.Map_coloring.read_faults + r.Dsmpm2_apps.Map_coloring.write_faults);
    export ~name:"coloring" ~protocol ()
  in
  Cmd.v
    (Cmd.info "coloring" ~doc:"Run the Hyperion-style map-colouring application.")
    Term.(const run $ protocol_arg "java_pf" $ nodes_arg $ driver_arg $ obs_term)

let experiments =
  [
    experiment "micro" "PM2 micro-benchmarks (paper section 2.1)." (fun () ->
        let t = Micro.run () in
        Micro.print ppf t;
        Micro.to_json t);
    experiment "table2" "Protocol inventory (paper Table 2)." (fun () ->
        let t = Table2_inventory.run () in
        Table2_inventory.print ppf t;
        Table2_inventory.to_json t);
    experiment "table3" "Read-fault breakdown, page transfer (paper Table 3)." (fun () ->
        let t = Fault_cost.run Fault_cost.Page_transfer in
        Fault_cost.print ppf t;
        Fault_cost.to_json t);
    experiment "table4" "Read-fault breakdown, thread migration (paper Table 4)."
      (fun () ->
        let t = Fault_cost.run Fault_cost.Thread_migration in
        Fault_cost.print ppf t;
        Fault_cost.to_json t);
    experiment "fig4" "TSP protocol comparison (paper Figure 4)." (fun () ->
        let t = Fig4_tsp.run () in
        Fig4_tsp.print ppf t;
        Fig4_tsp.to_json t);
    experiment "fig5" "Java consistency comparison (paper Figure 5)." (fun () ->
        let t = Fig5_coloring.run () in
        Fig5_coloring.print ppf t;
        Fig5_coloring.to_json t);
    experiment "splash" "SPLASH-style kernel study (paper section 5)." (fun () ->
        let t = Splash.run () in
        Splash.print ppf t;
        Splash.to_json t);
    experiment "ablation" "Stack-size and sync-frequency ablations." (fun () ->
        let t = Ablation.run () in
        Ablation.print ppf t;
        Ablation.to_json t);
    experiment "litmus" "Memory-model litmus tests across all protocols." (fun () ->
        let t = Litmus.run () in
        Litmus.print ppf t;
        Litmus.to_json t);
    experiment "patterns" "Sharing-pattern study across all protocols." (fun () ->
        let t = Sharing_patterns.run () in
        Sharing_patterns.print ppf t;
        Sharing_patterns.to_json t);
  ]

(* --- dsm analyze: the post-mortem trace analyzer --- *)

let analyze_cmd =
  let run workload trace_jsonl protocol nodes driver seed top out folded_file =
    let live_trace w =
      (* Run the application with monitoring on and analyze its live trace. *)
      let captured = ref None in
      let observe dsm =
        captured := Some dsm;
        Monitor.enable dsm true
      in
      let proto default = Option.value ~default protocol in
      (match w with
      | "tsp" ->
          ignore
            (Dsmpm2_apps.Tsp.run
               {
                 Dsmpm2_apps.Tsp.default with
                 protocol = proto "li_hudak";
                 nodes;
                 driver;
                 seed;
                 observe = Some observe;
               })
      | "jacobi" ->
          ignore
            (Dsmpm2_apps.Jacobi.run
               {
                 Dsmpm2_apps.Jacobi.default with
                 protocol = proto "hbrc_mw";
                 nodes;
                 driver;
                 observe = Some observe;
               })
      | "coloring" ->
          ignore
            (Dsmpm2_apps.Map_coloring.run
               {
                 Dsmpm2_apps.Map_coloring.default with
                 protocol = proto "java_pf";
                 nodes;
                 driver;
                 observe = Some observe;
               })
      | w ->
          Format.fprintf ppf
            "analyze: unknown workload %S (known: tsp, jacobi, coloring)@." w;
          exit 2);
      match !captured with
      | Some dsm ->
          (Monitor.trace dsm, Some (Monitor.run_meta ?protocol ~case:w dsm))
      | None ->
          Format.fprintf ppf "analyze: %s did not expose its runtime@." w;
          exit 2
    in
    let trace, meta =
      match (trace_jsonl, workload) with
      | Some file, _ -> (
          (* A dump re-loaded from disk carries no identity metadata. *)
          match Trace.load_jsonl file with
          | Ok t -> (t, None)
          | Error msg ->
              Format.fprintf ppf "analyze: %s@." msg;
              exit 2)
      | None, Some w -> live_trace w
      | None, None ->
          Format.fprintf ppf
            "analyze: give a workload (tsp, jacobi, coloring) or --trace-jsonl FILE@.";
          exit 2
    in
    let a = Analyze.analyze ~top trace in
    Analyze.report ppf a;
    Option.iter (fun file -> Json.to_file file (Analyze.to_json ?meta a)) out;
    Option.iter
      (fun file -> to_formatter file (fun fmt -> Analyze.folded fmt a))
      folded_file
  in
  let workload =
    Arg.(
      value
      & pos 0 (some string) None
      & info [] ~docv:"WORKLOAD"
          ~doc:"Application to run and analyze live: tsp, jacobi or coloring.")
  in
  let trace_jsonl =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace-jsonl" ] ~docv:"FILE"
          ~doc:"Analyze a previously exported JSONL trace instead of running.")
  in
  let protocol =
    Arg.(
      value
      & opt (some string) None
      & info [ "protocol" ] ~docv:"PROTO"
          ~doc:"Consistency protocol (default: the workload's own default).")
  in
  let top =
    Arg.(
      value & opt int 5
      & info [ "top" ] ~docv:"K" ~doc:"How many slowest fault spans to detail.")
  in
  let out =
    Arg.(
      value
      & opt (some string) None
      & info [ "out" ] ~docv:"FILE" ~doc:"Write the analysis as stable JSON to $(docv).")
  in
  let folded_file =
    Arg.(
      value
      & opt (some string) None
      & info [ "folded" ] ~docv:"FILE"
          ~doc:"Write folded-stack lines (flamegraph.pl input) to $(docv).")
  in
  Cmd.v
    (Cmd.info "analyze"
       ~doc:
         "Post-mortem trace analysis: fault critical paths, per-page sharing \
          patterns, lock/barrier contention, protocol advice.")
    Term.(
      const run $ workload $ trace_jsonl $ protocol $ nodes_arg $ driver_arg
      $ seed_arg $ top $ out $ folded_file)

let check_cmd =
  let run seeds protocols workload replay verbose faults loss crashes explain
      expect_vulnerable obs =
    let protocols =
      match protocols with [] -> Conformance.all_protocols | ps -> ps
    in
    let workload_list =
      match workload with
      | None -> Conformance.workloads
      | Some w -> (
          match Conformance.workload_by_name w with
          | Some w -> [ w ]
          | None ->
              Format.fprintf ppf "check: unknown workload %S (known: %s)@." w
                (String.concat ", "
                   (List.map Conformance.workload_name Conformance.workloads));
              exit 2)
    in
    if faults then begin
      (* The same grid under seeded crash/loss schedules.  With
         --expect-vulnerable the sweep is the CI smoke for the legacy
         protocols: it succeeds only when every swept protocol visibly
         fails (stall or typed crash) AND the watchdog attributed the
         failure with a typed fault alert — loud failure, never silent
         corruption. *)
      let spec =
        {
          Conformance.default_fault_spec with
          Conformance.f_loss_pct = loss;
          f_crashes = crashes;
        }
      in
      let progress =
        if verbose then fun cell -> Format.fprintf ppf "  done %s@." cell
        else fun _ -> ()
      in
      (* With --explain every failing outcome's violations are run through
         the blame engine; explanations land next to the run as
         explain_<proto>_<workload>_seed<N>.json/.dot artifacts.  An
         explanation whose causal chain is empty means the forensics lost
         the thread back to the injected fault — that is itself a failure. *)
      let empty_chains = ref [] in
      let on_failure protocol (o : Conformance.fault_outcome) =
        match o.Conformance.fo_explanations with
        | [] -> ()
        | xs ->
            let base =
              Printf.sprintf "explain_%s_%s_seed%d" protocol
                o.Conformance.fo_workload o.Conformance.fo_seed
            in
            Json.to_file (base ^ ".json")
              (Json.List (List.map Explain.to_json xs));
            to_formatter (base ^ ".dot") (fun fmt ->
                Explain.to_dot fmt (List.hd xs));
            List.iter
              (fun x ->
                if verbose then Format.fprintf ppf "%a@." Explain.to_text x;
                if Explain.causes x = [] then
                  empty_chains :=
                    (protocol, o.Conformance.fo_seed) :: !empty_chains)
              xs;
            Format.fprintf ppf "explain: wrote %s.json and %s.dot (%d explanation(s))@."
              base base (List.length xs)
      in
      let verdicts =
        Conformance.fault_sweep ~protocols ~workload_list ~spec ~progress
          ~explain ~on_failure ~seeds ()
      in
      Conformance.print_faults ppf verdicts;
      experiment_obs obs ~name:"check-faults"
        (Conformance.faults_to_json verdicts);
      if explain && !empty_chains <> [] then begin
        List.iter
          (fun (p, s) ->
            Format.fprintf ppf
              "explain: %s seed %d: violation with an empty causal chain — \
               the blame engine reached no injected fault@."
              p s)
          (List.rev !empty_chains);
        exit 1
      end;
      if expect_vulnerable then begin
        let fault_kinds =
          [ "node.dead"; "node.restart"; "node.partitioned"; "rpc.retry_storm" ]
        in
        let shielded =
          List.filter
            (fun v ->
              v.Conformance.fv_failures = 0
              || not
                   (List.exists
                      (fun k -> List.mem k v.Conformance.fv_alert_kinds)
                      fault_kinds))
            verdicts
        in
        match shielded with
        | [] ->
            Format.fprintf ppf
              "all %d protocols failed visibly with typed fault alerts, as \
               expected@."
              (List.length verdicts)
        | vs ->
            List.iter
              (fun v ->
                Format.fprintf ppf
                  "%s: expected a visible fault-induced failure with a typed \
                   alert, got %d failures (alerts: %s)@."
                  v.Conformance.fv_protocol v.Conformance.fv_failures
                  (String.concat ", " v.Conformance.fv_alert_kinds))
              vs;
            exit 1
      end
      else if Conformance.faults_failed verdicts then exit 1
    end
    else
    match replay with
    | Some seed ->
        (* Replay one seed across the selected grid and dump each failing
           outcome in full — the debugging entry point for a sweep failure. *)
        let any = ref false in
        List.iter
          (fun protocol ->
            List.iter
              (fun driver ->
                List.iter
                  (fun workload ->
                    let o = Conformance.run_one ~protocol ~driver ~workload ~seed in
                    if Conformance.outcome_failed o || verbose then begin
                      Format.fprintf ppf "%s / %s / %s / seed %d: %s@." protocol
                        driver.Dsmpm2_net.Driver.name
                        (Conformance.workload_name workload)
                        seed
                        (if Conformance.outcome_failed o then "FAIL" else "pass");
                      if Conformance.outcome_failed o then begin
                        any := true;
                        (match o.Conformance.o_wrong_result with
                        | Some msg -> Format.fprintf ppf "  wrong result: %s@." msg
                        | None -> ());
                        List.iter
                          (fun v ->
                            Format.fprintf ppf "  %s@."
                              (History.violation_to_string v))
                          o.Conformance.o_violations;
                        (* Re-run the same schedule with monitoring on and
                           show what the failing run actually did: its fault
                           critical paths and per-page profiles. *)
                        let _, dsm =
                          Conformance.run_one_traced ~protocol ~driver ~workload
                            ~seed
                        in
                        Analyze.report
                          ~sections:[ `Alerts; `Critical; `Pages ]
                          ppf
                          (Analyze.analyze ~top:3 (Monitor.trace dsm))
                      end
                    end)
                  workload_list)
              Dsmpm2_net.Driver.all)
          protocols;
        if !any then exit 1
    | None ->
        let progress =
          if verbose then fun cell -> Format.fprintf ppf "  done %s@." cell
          else fun _ -> ()
        in
        let verdicts =
          Conformance.sweep ~protocols ~workload_list ~progress ~seeds ()
        in
        Conformance.print ppf verdicts;
        experiment_obs obs ~name:"check" (Conformance.to_json verdicts);
        if Conformance.failed verdicts then exit 1
  in
  let seeds =
    Arg.(
      value & opt int 25
      & info [ "seeds" ] ~docv:"N" ~doc:"Number of perturbation seeds per cell.")
  in
  let protocols =
    Arg.(
      value
      & opt_all string []
      & info [ "protocol" ] ~docv:"PROTO"
          ~doc:"Check only $(docv) (repeatable; default: all builtins).")
  in
  let workload =
    Arg.(
      value
      & opt (some string) None
      & info [ "workload" ] ~docv:"NAME" ~doc:"Run a single workload by name.")
  in
  let replay =
    Arg.(
      value
      & opt (some int) None
      & info [ "replay" ] ~docv:"SEED"
          ~doc:"Replay one seed and print failing traces instead of sweeping.")
  in
  let verbose =
    Arg.(value & flag & info [ "verbose" ] ~doc:"Print per-cell progress.")
  in
  let faults =
    Arg.(
      value & flag
      & info [ "faults" ]
          ~doc:
            "Sweep seeded fault schedules (crash/restart windows plus \
             message loss) instead of fault-free perturbation.")
  in
  let loss =
    Arg.(
      value & opt float 1.0
      & info [ "loss" ] ~docv:"PCT"
          ~doc:"Cross-node message loss percentage for $(b,--faults).")
  in
  let crashes =
    Arg.(
      value & opt int 2
      & info [ "crashes" ] ~docv:"N"
          ~doc:"Crash windows per fault schedule for $(b,--faults).")
  in
  let explain =
    Arg.(
      value & flag
      & info [ "explain" ]
          ~doc:
            "With $(b,--faults): run the causal blame engine over every \
             checker violation, print each cause, and write \
             explain_*.json/.dot artifacts.  Fails (exit 1) if any \
             explanation has an empty causal chain.")
  in
  let expect_vulnerable =
    Arg.(
      value & flag
      & info [ "expect-vulnerable" ]
          ~doc:
            "Invert the $(b,--faults) verdict: succeed only when every swept \
             protocol fails visibly (stall or crash) with a typed watchdog \
             fault alert — the CI smoke for non-fault-tolerant protocols.")
  in
  Cmd.v
    (Cmd.info "check"
       ~doc:
         "Conformance-check every protocol against its declared consistency \
          model under perturbed schedules, optionally with fault injection.")
    Term.(
      const run $ seeds $ protocols $ workload $ replay $ verbose $ faults
      $ loss $ crashes $ explain $ expect_vulnerable $ obs_term)

(* --- dsm watch: live health dashboard over a running application --- *)

let watch_cmd =
  let run workload protocol nodes driver seed interval_us stall_us out quiet =
    let tty = Unix.isatty Unix.stdout in
    let wd = ref None in
    let observe dsm =
      Monitor.enable dsm true;
      let config =
        Watchdog.
          {
            default_config with
            interval = Time.of_us interval_us;
            stall = Time.of_us stall_us;
          }
      in
      let w = Watchdog.attach ~config dsm in
      wd := Some w;
      if not quiet then
        Watchdog.set_on_sample w (fun s ->
            (* On a terminal each frame repaints in place; piped output gets
               one frame per sample. *)
            if tty then Format.fprintf ppf "\027[H\027[2J";
            Format.fprintf ppf "%a@." Watchdog.pp_sample (w, s))
    in
    let proto default = Option.value ~default protocol in
    let run_app () =
      match workload with
      | "tsp" ->
          ignore
            (Dsmpm2_apps.Tsp.run
               {
                 Dsmpm2_apps.Tsp.default with
                 protocol = proto "li_hudak";
                 nodes;
                 driver;
                 seed;
                 observe = Some observe;
               })
      | "jacobi" ->
          ignore
            (Dsmpm2_apps.Jacobi.run
               {
                 Dsmpm2_apps.Jacobi.default with
                 protocol = proto "hbrc_mw";
                 nodes;
                 driver;
                 observe = Some observe;
               })
      | "coloring" ->
          ignore
            (Dsmpm2_apps.Map_coloring.run
               {
                 Dsmpm2_apps.Map_coloring.default with
                 protocol = proto "java_pf";
                 nodes;
                 driver;
                 observe = Some observe;
               })
      | w ->
          Format.fprintf ppf "watch: unknown workload %S (known: tsp, jacobi, coloring)@." w;
          exit 2
    in
    (try run_app ()
     with Engine.Stalled live ->
       Format.fprintf ppf "watch: run deadlocked with %d live fiber(s)@." live);
    match !wd with
    | None ->
        Format.fprintf ppf "watch: %s did not expose its runtime@." workload;
        exit 2
    | Some w ->
        Format.fprintf ppf "%a@." Watchdog.pp_summary w;
        Option.iter (fun file -> Json.to_file file (Watchdog.health_json w)) out;
        let _, _, critical = Watchdog.alert_counts w in
        if critical > 0 then exit 1
  in
  let workload =
    Arg.(
      value & opt string "jacobi"
      & info [ "workload" ] ~docv:"NAME"
          ~doc:"Application to watch: tsp, jacobi or coloring.")
  in
  let protocol =
    Arg.(
      value
      & opt (some string) None
      & info [ "protocol" ] ~docv:"PROTO"
          ~doc:"Consistency protocol (default: the workload's own default).")
  in
  let interval =
    Arg.(
      value
      & opt float (Time.to_us Watchdog.default_config.Watchdog.interval)
      & info [ "interval" ] ~docv:"US"
          ~doc:"Sampling period in simulated microseconds.")
  in
  let stall_us =
    Arg.(
      value
      & opt float (Time.to_us Watchdog.default_config.Watchdog.stall)
      & info [ "stall-us" ] ~docv:"US"
          ~doc:"Report threads blocked longer than $(docv) simulated microseconds.")
  in
  let out =
    Arg.(
      value
      & opt (some string) None
      & info [ "out" ] ~docv:"FILE"
          ~doc:"Write the stable JSON health report to $(docv).")
  in
  let quiet =
    Arg.(
      value & flag
      & info [ "quiet" ] ~doc:"Skip the live dashboard; print only the final summary.")
  in
  Cmd.v
    (Cmd.info "watch"
       ~doc:
         "Run an application under the live watchdog: periodic invariant \
          audits, deadlock/stall detection, thrash detection and a \
          refreshing rate dashboard.  Exits non-zero on critical alerts.")
    Term.(
      const run $ workload $ protocol $ nodes_arg $ driver_arg $ seed_arg $ interval
      $ stall_us $ out $ quiet)

(* --- dsm top: live hot-page telemetry over a running application ---

   Where `dsm watch` shows health (rates, audits, alerts), `dsm top` shows
   the memory: hierarchical rollups of the online telemetry engine —
   cluster-wide fault-latency sketch percentiles, per-protocol and per-node
   fault counts, and the hottest pages with their streaming sharing
   classification and protocol advice.  Because telemetry reads the trace
   observer stream, the dashboard stays exact under --trace-cap rings and
   --sample-pct sampling. *)

let top_cmd =
  let run workload protocol nodes driver seed size iterations interval_us
      sample_pct sample_seed trace_cap top out quiet =
    let tty = Unix.isatty Unix.stdout in
    let wd = ref None in
    let observe dsm =
      Monitor.enable dsm true;
      let tr = Monitor.trace dsm in
      Option.iter (Trace.set_capacity tr) trace_cap;
      Option.iter
        (fun pct -> Trace.set_sampling tr ~seed:sample_seed ~keep_pct:pct)
        sample_pct;
      let config =
        Watchdog.{ default_config with interval = Time.of_us interval_us }
      in
      let w = Watchdog.attach ~config dsm in
      wd := Some w;
      if not quiet then
        Watchdog.set_on_sample w (fun _ ->
            (* Frames ride the watchdog's schedule-neutral sampling tick. *)
            if tty then Format.fprintf ppf "\027[H\027[2J";
            Format.fprintf ppf "%a@." (Telemetry.pp_top ~top)
              (Watchdog.telemetry w))
    in
    let proto default = Option.value ~default protocol in
    let run_app () =
      match workload with
      | "tsp" ->
          ignore
            (Dsmpm2_apps.Tsp.run
               {
                 Dsmpm2_apps.Tsp.default with
                 protocol = proto "li_hudak";
                 nodes;
                 driver;
                 seed;
                 observe = Some observe;
               })
      | "jacobi" ->
          ignore
            (Dsmpm2_apps.Jacobi.run
               {
                 Dsmpm2_apps.Jacobi.default with
                 protocol = proto "hbrc_mw";
                 nodes;
                 driver;
                 size;
                 iterations;
                 tie_seed = Some seed;
                 observe = Some observe;
               })
      | "coloring" ->
          ignore
            (Dsmpm2_apps.Map_coloring.run
               {
                 Dsmpm2_apps.Map_coloring.default with
                 protocol = proto "java_pf";
                 nodes;
                 driver;
                 observe = Some observe;
               })
      | w ->
          Format.fprintf ppf "top: unknown workload %S (known: tsp, jacobi, coloring)@." w;
          exit 2
    in
    (try run_app ()
     with Engine.Stalled live ->
       Format.fprintf ppf "top: run deadlocked with %d live fiber(s)@." live);
    match !wd with
    | None ->
        Format.fprintf ppf "top: %s did not expose its runtime@." workload;
        exit 2
    | Some w ->
        let tele = Watchdog.telemetry w in
        if tty && not quiet then Format.fprintf ppf "\027[H\027[2J";
        Format.fprintf ppf "%a@." (Telemetry.pp_top ~top) tele;
        Format.fprintf ppf "%a@." Watchdog.pp_summary w;
        Option.iter (fun file -> Json.to_file file (Telemetry.to_json tele)) out;
        let _, _, critical = Watchdog.alert_counts w in
        if critical > 0 then exit 1
  in
  let workload =
    Arg.(
      value & opt string "jacobi"
      & info [ "workload" ] ~docv:"NAME"
          ~doc:"Application to profile: tsp, jacobi or coloring.")
  in
  let protocol =
    Arg.(
      value
      & opt (some string) None
      & info [ "protocol" ] ~docv:"PROTO"
          ~doc:"Consistency protocol (default: the workload's own default).")
  in
  let size =
    Arg.(
      value & opt int 32
      & info [ "size" ] ~docv:"N" ~doc:"Jacobi grid side (jacobi only).")
  in
  let iterations =
    Arg.(
      value & opt int 4
      & info [ "iterations" ] ~docv:"N" ~doc:"Jacobi sweeps (jacobi only).")
  in
  let interval =
    Arg.(
      value
      & opt float (Time.to_us Watchdog.default_config.Watchdog.interval)
      & info [ "interval" ] ~docv:"US"
          ~doc:"Refresh period in simulated microseconds.")
  in
  let sample_pct =
    Arg.(
      value
      & opt (some float) None
      & info [ "sample-pct" ] ~docv:"PCT"
          ~doc:
            "Store only ~$(docv)% of fault spans in the trace (deterministic \
             head-based sampling; the telemetry dashboard still sees every \
             event).")
  in
  let sample_seed =
    Arg.(
      value & opt int 0
      & info [ "sample-seed" ] ~docv:"SEED"
          ~doc:"Seed for $(b,--sample-pct) keep decisions.")
  in
  let trace_cap =
    Arg.(
      value
      & opt (some int) None
      & info [ "trace-cap" ] ~docv:"N"
          ~doc:"Keep only the newest $(docv) trace events (flight recorder).")
  in
  let top =
    Arg.(
      value & opt int 10
      & info [ "top" ] ~docv:"K" ~doc:"Hottest pages shown per frame.")
  in
  let out =
    Arg.(
      value
      & opt (some string) None
      & info [ "out" ] ~docv:"FILE"
          ~doc:"Write the stable JSON telemetry snapshot to $(docv).")
  in
  let quiet =
    Arg.(
      value & flag
      & info [ "quiet" ] ~doc:"Skip the live frames; print only the final one.")
  in
  Cmd.v
    (Cmd.info "top"
       ~doc:
         "Run an application under the online telemetry engine and show live \
          hierarchical rollups: cluster fault-latency sketch percentiles, \
          per-protocol and per-node fault counts, and the hottest pages with \
          streaming sharing classifications and protocol advice.  Exact even \
          under $(b,--trace-cap) and $(b,--sample-pct).  Exits non-zero on \
          critical alerts.")
    Term.(
      const run $ workload $ protocol $ nodes_arg $ driver_arg $ seed_arg
      $ size $ iterations $ interval $ sample_pct $ sample_seed $ trace_cap
      $ top $ out $ quiet)

(* --- dsm bench: the seeded macro-benchmark observatory --- *)

let bench_cmd =
  let run seeds filter quick out quiet =
    let seeds = match seeds with [] -> Bench_suite.default_seeds | s -> s in
    let selected =
      Bench_suite.filter_cases ?filter ~quick (Bench_suite.cases ())
    in
    if selected = [] then begin
      Format.fprintf ppf "bench: no case matches the filter@.";
      exit 2
    end;
    let progress cr =
      if not quiet then
        Format.fprintf ppf "bench: done %s (%d seeds)@."
          cr.Bench_suite.cr_case.Bench_suite.c_id
          (List.length cr.Bench_suite.cr_samples)
    in
    let t = Bench_suite.run ~seeds ?filter ~quick ~progress () in
    Bench_suite.print ppf t;
    Option.iter
      (fun file ->
        (* write_file gzip-compresses when the path ends in .gz *)
        Gzip.write_file file
          (Json.to_string_pretty (Bench_suite.to_json t) ^ "\n");
        if not quiet then Format.fprintf ppf "bench: wrote %s@." file)
      out
  in
  let seeds =
    Arg.(
      value
      & opt_all int []
      & info [ "seeds" ] ~docv:"SEED"
          ~doc:
            "Engine tie seed (repeatable; default: the suite's committed \
             seed list).  Baselines are only comparable over the same seeds.")
  in
  let filter =
    Arg.(
      value
      & opt (some string) None
      & info [ "filter" ] ~docv:"SUBSTR"
          ~doc:"Run only cases whose id contains $(docv), e.g. jacobi or hbrc_mw.")
  in
  let quick =
    Arg.(
      value & flag
      & info [ "quick" ] ~doc:"Run only the CI smoke subset of the matrix.")
  in
  let out =
    Arg.(
      value
      & opt (some string) None
      & info [ "out" ] ~docv:"FILE"
          ~doc:
            "Write the BENCH_macro.json snapshot to $(docv) (a .gz suffix \
             gzip-compresses).")
  in
  let quiet =
    Arg.(value & flag & info [ "quiet" ] ~doc:"Skip per-case progress lines.")
  in
  Cmd.v
    (Cmd.info "bench"
       ~doc:
         "Run the seeded macro-benchmark suite: every application kernel \
          under a fixed protocol/driver matrix, recording simulated time, \
          traffic, faults and fault-latency tails.  Deterministic per tie \
          seed, so snapshots diff exactly across code revisions.")
    Term.(const run $ seeds $ filter $ quick $ out $ quiet)

(* --- dsm diff: differential comparison of two runs --- *)

let diff_cmd =
  let run baseline fresh threshold force format out =
    let load what path =
      match Rundiff.load_source path with
      | Ok s -> s
      | Error msg ->
          Format.fprintf ppf "diff: %s: %s@." what msg;
          exit 2
    in
    let b = load "baseline" baseline and f = load "fresh" fresh in
    match Rundiff.diff ~threshold_pct:threshold ~force ~baseline:b ~fresh:f () with
    | Error msg ->
        Format.fprintf ppf "diff: %s@." msg;
        exit 2
    | Ok d ->
        let render fmt =
          match format with
          | `Text -> Rundiff.pp_text fmt d
          | `Markdown -> Rundiff.pp_markdown fmt d
          | `Json -> Format.fprintf fmt "%a@." Json.pp (Rundiff.to_json d)
        in
        (match out with
        | None -> render ppf
        | Some file ->
            to_formatter file render;
            Format.fprintf ppf "diff: wrote %s@." file);
        List.iter
          (fun line -> Format.fprintf ppf "regression: %s@." line)
          (Rundiff.regressions d);
        if Rundiff.significant_regression d then exit 1
  in
  let baseline =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"BASELINE"
          ~doc:"Baseline artifact: a BENCH_macro.json snapshot or a JSONL \
                trace dump (gzip-transparent).")
  in
  let fresh =
    Arg.(
      required
      & pos 1 (some string) None
      & info [] ~docv:"FRESH" ~doc:"The artifact to compare against the baseline.")
  in
  let threshold =
    Arg.(
      value
      & opt float Rundiff.default_threshold_pct
      & info [ "threshold" ] ~docv:"PCT"
          ~doc:"Relative significance threshold in percent.")
  in
  let force =
    Arg.(
      value & flag
      & info [ "force" ]
          ~doc:
            "Compare even when the run metadata disagrees (different seeds, \
             drivers, protocols or node counts).")
  in
  let format =
    Arg.(
      value
      & opt (enum [ ("text", `Text); ("json", `Json); ("markdown", `Markdown) ]) `Text
      & info [ "format" ] ~docv:"FMT" ~doc:"Output format: text, json or markdown.")
  in
  let out =
    Arg.(
      value
      & opt (some string) None
      & info [ "out" ] ~docv:"FILE" ~doc:"Write the report to $(docv) instead of stdout.")
  in
  Cmd.v
    (Cmd.info "diff"
       ~doc:
         "Compare two observability artifacts — macro-bench snapshots or \
          trace dumps — and report per-case metric deltas (with seed-noise \
          bounds), critical-path stage shifts, sharing-pattern drift and \
          alert changes.  Exits 1 on a significant regression, 2 on \
          incomparable inputs.")
    Term.(const run $ baseline $ fresh $ threshold $ force $ format $ out)

(* --- dsm explain: causal forensics over a trace dump --- *)

let explain_cmd =
  let run file json_out dot_out =
    match Trace.load_jsonl file with
    | Error msg ->
        Format.fprintf ppf "explain: %s@." msg;
        exit 2
    | Ok trace ->
        let xs = Explain.explain_trace trace in
        (match xs with
        | [] ->
            Format.fprintf ppf
              "explain: no critical alert in %s — nothing to explain@." file
        | xs ->
            List.iter (fun x -> Format.fprintf ppf "%a@." Explain.to_text x) xs);
        Option.iter
          (fun f -> Json.to_file f (Json.List (List.map Explain.to_json xs)))
          json_out;
        Option.iter
          (fun f ->
            match xs with
            | [] ->
                Format.fprintf ppf "explain: no explanation to render as DOT@."
            | x :: _ -> to_formatter f (fun fmt -> Explain.to_dot fmt x))
          dot_out
  in
  let file =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"TRACE"
          ~doc:
            "A JSONL trace dump (gzip-transparent), e.g. a --trace-jsonl \
             export or a flight-recorder auto-dump.")
  in
  let json_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "json" ] ~docv:"FILE"
          ~doc:"Write the explanations as stable JSON to $(docv).")
  in
  let dot_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "dot" ] ~docv:"FILE"
          ~doc:
            "Write the first explanation's causal graph as Graphviz DOT to \
             $(docv).")
  in
  Cmd.v
    (Cmd.info "explain"
       ~doc:
         "Causal forensics: slice a trace dump backward from each critical \
          alert to the injected faults (dropped/blackholed messages, crash \
          windows, retry storms) that explain it.")
    Term.(const run $ file $ json_out $ dot_out)

let () =
  let info =
    Cmd.info "dsm-cli" ~version:"1.0.0"
      ~doc:"DSM-PM2 reproduction: experiments and applications."
  in
  exit
    (Cmd.eval
       (Cmd.group info
          (experiments
          @ [ tsp_cmd; jacobi_cmd; coloring_cmd; analyze_cmd; check_cmd;
              explain_cmd; watch_cmd; top_cmd; bench_cmd; diff_cmd ])))

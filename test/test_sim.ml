(* Unit and property tests of the discrete-event engine. *)

open Dsmpm2_sim

(* --- Time --- *)

let test_time_conversions () =
  Alcotest.(check int) "1 us = 1000 ns" 1_000 (Time.of_us 1.);
  Alcotest.(check (float 1e-9)) "round trip" 42.5 (Time.to_us (Time.of_us 42.5));
  Alcotest.(check (float 1e-9)) "ms" 1.5 (Time.to_ms (Time.of_us 1_500.));
  Alcotest.(check int) "rounding" 11 (Time.of_ns 11);
  Alcotest.(check string) "pp us" "42.0us" (Format.asprintf "%a" Time.pp (Time.of_us 42.))

(* --- Heap --- *)

let test_heap_basic () =
  let h = Heap.create ~cmp:compare in
  Alcotest.(check bool) "empty" true (Heap.is_empty h);
  List.iter (Heap.add h) [ 5; 3; 8; 1; 9; 2 ];
  Alcotest.(check int) "length" 6 (Heap.length h);
  Alcotest.(check (option int)) "peek min" (Some 1) (Heap.peek h);
  Alcotest.(check (option int)) "pop min" (Some 1) (Heap.pop h);
  Alcotest.(check (option int)) "next" (Some 2) (Heap.pop h);
  Heap.clear h;
  Alcotest.(check (option int)) "cleared" None (Heap.pop h)

let prop_heap_sorted =
  QCheck.Test.make ~name:"heap pops in sorted order" ~count:200
    QCheck.(list int)
    (fun xs ->
      let h = Heap.create ~cmp:compare in
      List.iter (Heap.add h) xs;
      let rec drain acc =
        match Heap.pop h with None -> List.rev acc | Some x -> drain (x :: acc)
      in
      drain [] = List.sort compare xs)

(* --- Rng --- *)

let test_rng_deterministic () =
  let a = Rng.create ~seed:1 and b = Rng.create ~seed:1 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Rng.bits64 a) (Rng.bits64 b)
  done

let test_rng_seed_sensitivity () =
  let a = Rng.create ~seed:1 and b = Rng.create ~seed:2 in
  Alcotest.(check bool) "different seeds differ" false (Rng.bits64 a = Rng.bits64 b)

let test_rng_split_independent () =
  let a = Rng.create ~seed:1 in
  let c = Rng.split a in
  Alcotest.(check bool) "split stream differs" false (Rng.bits64 a = Rng.bits64 c)

let prop_rng_int_bounds =
  QCheck.Test.make ~name:"Rng.int in bounds" ~count:500
    QCheck.(pair small_int (int_bound 1000))
    (fun (seed, n) ->
      let n = n + 1 in
      let rng = Rng.create ~seed in
      let v = Rng.int rng n in
      v >= 0 && v < n)

let test_rng_shuffle_permutes () =
  let rng = Rng.create ~seed:3 in
  let a = Array.init 50 Fun.id in
  Rng.shuffle rng a;
  Alcotest.(check (list int)) "same multiset" (List.init 50 Fun.id)
    (List.sort compare (Array.to_list a))

(* --- Engine --- *)

let test_engine_event_order () =
  let eng = Engine.create () in
  let log = ref [] in
  Engine.at eng (Time.of_us 30.) (fun () -> log := 3 :: !log);
  Engine.at eng (Time.of_us 10.) (fun () -> log := 1 :: !log);
  Engine.at eng (Time.of_us 20.) (fun () -> log := 2 :: !log);
  Engine.run eng;
  Alcotest.(check (list int)) "time order" [ 1; 2; 3 ] (List.rev !log);
  Alcotest.(check int) "events executed" 3 (Engine.events_executed eng)

let test_engine_tie_break_fifo () =
  let eng = Engine.create () in
  let log = ref [] in
  for i = 1 to 5 do
    Engine.at eng (Time.of_us 5.) (fun () -> log := i :: !log)
  done;
  Engine.run eng;
  Alcotest.(check (list int)) "same-time events run FIFO" [ 1; 2; 3; 4; 5 ]
    (List.rev !log)

let test_engine_past_event_rejected () =
  let eng = Engine.create () in
  Engine.at eng (Time.of_us 10.) (fun () ->
      Alcotest.check_raises "past is rejected"
        (Invalid_argument "Engine.at: time 5000 is in the past (now 10000)")
        (fun () -> Engine.at eng (Time.of_us 5.) ignore));
  Engine.run eng

let test_engine_sleep_advances_clock () =
  let eng = Engine.create () in
  let woke_at = ref Time.zero in
  ignore
    (Engine.spawn eng (fun () ->
         Engine.sleep eng (Time.of_us 100.);
         woke_at := Engine.now eng));
  Engine.run eng;
  Alcotest.(check int) "slept 100us" (Time.of_us 100.) !woke_at

let test_engine_stalled_detection () =
  let eng = Engine.create () in
  ignore (Engine.spawn eng (fun () -> Engine.suspend eng (fun _resume -> ())));
  Alcotest.check_raises "deadlock detected" (Engine.Stalled 1) (fun () ->
      Engine.run eng)

let test_engine_current_fiber () =
  let eng = Engine.create () in
  let inside = ref None and outside = ref (Some 0) in
  let fid = Engine.spawn eng (fun () -> inside := Engine.current_fiber eng) in
  Engine.at eng (Time.of_us 1.) (fun () -> outside := Engine.current_fiber eng);
  Engine.run eng;
  Alcotest.(check (option int)) "inside fiber" (Some fid) !inside;
  Alcotest.(check (option int)) "event context has no fiber" None !outside

let test_engine_resume_twice_rejected () =
  let eng = Engine.create () in
  let saved = ref ignore in
  ignore (Engine.spawn eng (fun () -> Engine.suspend eng (fun resume -> saved := resume)));
  Engine.at eng (Time.of_us 1.) (fun () -> !saved ());
  Engine.at eng (Time.of_us 2.) (fun () ->
      Alcotest.check_raises "double resume"
        (Invalid_argument "Engine: fiber resumed twice") (fun () -> !saved ()));
  Engine.run eng

let test_engine_run_limit () =
  let eng = Engine.create () in
  let ran = ref 0 in
  Engine.at eng (Time.of_us 10.) (fun () -> incr ran);
  Engine.at eng (Time.of_us 1_000.) (fun () -> incr ran);
  Engine.run ~limit:(Time.of_us 100.) eng;
  Alcotest.(check int) "only early event ran" 1 !ran

(* --- schedule perturbation --- *)

let perturbed_order ?tie_seed () =
  (* Ten same-time events plus two at a later time; returns execution order. *)
  let eng = Engine.create ?tie_seed () in
  let log = ref [] in
  for i = 1 to 10 do
    Engine.at eng (Time.of_us 5.) (fun () -> log := i :: !log)
  done;
  Engine.at eng (Time.of_us 9.) (fun () -> log := 11 :: !log);
  Engine.at eng (Time.of_us 7.) (fun () -> log := 12 :: !log);
  Engine.run eng;
  List.rev !log

let test_engine_perturbation_replays () =
  let a = perturbed_order ~tie_seed:42 () and b = perturbed_order ~tie_seed:42 () in
  Alcotest.(check (list int)) "same seed, same schedule" a b

let test_engine_perturbation_diverges () =
  (* Some seed in a small range must shuffle the ties away from FIFO order;
     10! orderings make a full miss astronomically unlikely. *)
  let fifo = perturbed_order () in
  let seeds = List.init 10 (fun s -> s + 1) in
  Alcotest.(check bool) "some seed deviates from FIFO" true
    (List.exists (fun s -> perturbed_order ~tie_seed:s () <> fifo) seeds)

let test_engine_perturbation_respects_time () =
  (* Tie-breaking shuffles only same-time events: the 7us and 9us events
     always run after all ten 5us events, in time order. *)
  List.iter
    (fun s ->
      match List.rev (perturbed_order ~tie_seed:s ()) with
      | 11 :: 12 :: rest ->
          Alcotest.(check (list int)) "5us events complete" (List.init 10 (fun i -> i + 1))
            (List.sort compare rest)
      | _ -> Alcotest.fail "later events ran out of time order")
    (List.init 20 (fun s -> s))

let test_engine_no_seed_is_fifo () =
  Alcotest.(check (list int)) "unseeded engine keeps FIFO ties"
    [ 1; 2; 3; 4; 5; 6; 7; 8; 9; 10; 12; 11 ]
    (perturbed_order ());
  Alcotest.(check (option int)) "tie_seed absent" None
    (Engine.tie_seed (Engine.create ()));
  Alcotest.(check (option int)) "tie_seed stored" (Some 7)
    (Engine.tie_seed (Engine.create ~tie_seed:7 ()))

let test_engine_live_fibers () =
  let eng = Engine.create () in
  ignore (Engine.spawn eng (fun () -> Engine.sleep eng (Time.of_us 5.)));
  Alcotest.(check int) "live before run" 1 (Engine.live_fibers eng);
  Engine.run eng;
  Alcotest.(check int) "none after" 0 (Engine.live_fibers eng)

(* --- Cpu --- *)

let test_cpu_serialises () =
  let eng = Engine.create () in
  let cpu = Cpu.create ~name:"c" () in
  let done_at = Array.make 2 Time.zero in
  for i = 0 to 1 do
    ignore
      (Engine.spawn eng (fun () ->
           Cpu.compute eng cpu (Time.of_us 100.);
           done_at.(i) <- Engine.now eng))
  done;
  Engine.run eng;
  (* Round-robin slicing: both 100us jobs share the CPU and finish around
     200us total; the CPU was busy for exactly the sum of the work. *)
  Alcotest.(check int) "total busy time" (Time.of_us 200.) (Cpu.busy_time cpu);
  let finish = max done_at.(0) done_at.(1) in
  Alcotest.(check int) "makespan = serial sum" (Time.of_us 200.) finish

let test_cpu_quantum_preempts () =
  let eng = Engine.create () in
  let cpu = Cpu.create ~quantum:(Time.of_us 50.) ~name:"c" () in
  let long_done = ref Time.zero and short_done = ref Time.zero in
  ignore
    (Engine.spawn eng (fun () ->
         Cpu.compute eng cpu (Time.of_us 1_000.);
         long_done := Engine.now eng));
  ignore
    (Engine.spawn eng (fun () ->
         Engine.sleep eng (Time.of_us 10.);
         Cpu.compute eng cpu (Time.of_us 20.);
         short_done := Engine.now eng));
  Engine.run eng;
  (* The short job arrives while the long one computes; slicing lets it
     finish long before the 1000us job completes. *)
  Alcotest.(check bool) "short job not starved" true (!short_done < Time.of_us 200.);
  Alcotest.(check bool) "long job finishes last" true (!long_done >= Time.of_us 1_000.)

let test_cpu_zero_compute_is_free () =
  let eng = Engine.create () in
  let cpu = Cpu.create ~name:"c" () in
  ignore (Engine.spawn eng (fun () -> Cpu.compute eng cpu Time.zero));
  Engine.run eng;
  Alcotest.(check int) "no busy time" Time.zero (Cpu.busy_time cpu)

let test_engine_fiber_spawns_fiber () =
  let eng = Engine.create () in
  let inner_ran = ref false in
  ignore
    (Engine.spawn eng (fun () ->
         Engine.sleep eng (Time.of_us 5.);
         ignore (Engine.spawn eng (fun () -> inner_ran := true))));
  Engine.run eng;
  Alcotest.(check bool) "nested spawn runs" true !inner_ran

(* --- fault-injection gate --- *)

let test_engine_gate_parks_and_resumes () =
  let eng = Engine.create () in
  let log = ref [] in
  let victim = ref (-1) in
  (* Park the victim fiber's slices until t=50us; everyone else runs free. *)
  Engine.set_gate eng (fun fid now ->
      if fid = !victim && now < Time.of_us 50. then Some (Time.of_us 50.)
      else None);
  victim :=
    Engine.spawn eng (fun () -> log := ("victim", Engine.now eng) :: !log);
  ignore (Engine.spawn eng (fun () -> log := ("free", Engine.now eng) :: !log));
  Engine.run eng;
  Alcotest.(check (list (pair string int)))
    "victim frozen until the window ends"
    [ ("free", Time.zero); ("victim", Time.of_us 50.) ]
    (List.rev !log);
  Alcotest.(check bool) "parks were counted" true (Engine.parked_count eng >= 1)

let test_engine_gate_covers_resumed_slices () =
  (* The gate must intercept continuations, not just fiber bodies: a fiber
     that suspends before the window and is resumed inside it may only run
     its next slice once the window ends. *)
  let eng = Engine.create () in
  let woke_at = ref Time.zero in
  let victim = ref (-1) in
  Engine.set_gate eng (fun fid now ->
      if
        fid = !victim
        && now >= Time.of_us 10.
        && now < Time.of_us 80.
      then Some (Time.of_us 80.)
      else None);
  victim :=
    Engine.spawn eng (fun () ->
        Engine.sleep eng (Time.of_us 20.);
        (* resumed at 20us, inside the window *)
        woke_at := Engine.now eng);
  Engine.run eng;
  Alcotest.(check int) "continuation held until restart" (Time.of_us 80.)
    !woke_at

let test_engine_gate_clear_and_neutral () =
  (* A gate that always answers None must leave a seeded schedule untouched,
     and clear_gate must restore the un-gated behavior. *)
  let order gate =
    let eng = Engine.create ~tie_seed:9 () in
    (match gate with
    | `None -> ()
    | `Quiescent -> Engine.set_gate eng (fun _ _ -> None)
    | `Cleared ->
        Engine.set_gate eng (fun _ _ -> Some (Time.of_us 1_000.));
        Engine.clear_gate eng);
    let log = ref [] in
    for i = 1 to 8 do
      ignore (Engine.spawn eng (fun () -> log := i :: !log))
    done;
    Engine.run eng;
    (List.rev !log, Engine.parked_count eng)
  in
  let plain = order `None in
  Alcotest.(check (pair (list int) int))
    "quiescent gate is schedule-neutral" plain (order `Quiescent);
  Alcotest.(check (pair (list int) int))
    "cleared gate is schedule-neutral" plain (order `Cleared)

let test_cpu_fifo_order () =
  let eng = Engine.create () in
  let cpu = Cpu.create ~quantum:(Time.of_us 1_000.) ~name:"c" () in
  let order = ref [] in
  for i = 1 to 3 do
    ignore
      (Engine.spawn eng (fun () ->
           Engine.sleep eng (Time.of_ns i);
           (* stagger arrival *)
           Cpu.compute eng cpu (Time.of_us 10.);
           order := i :: !order))
  done;
  Engine.run eng;
  Alcotest.(check (list int)) "grants follow arrival order" [ 1; 2; 3 ]
    (List.rev !order)

let test_cpu_busy_time_exact_under_slicing () =
  let eng = Engine.create () in
  let cpu = Cpu.create ~quantum:(Time.of_us 7.) ~name:"c" () in
  for _ = 1 to 3 do
    ignore (Engine.spawn eng (fun () -> Cpu.compute eng cpu (Time.of_us 33.)))
  done;
  Engine.run eng;
  Alcotest.(check int) "slices add up exactly" (Time.of_us 99.) (Cpu.busy_time cpu)

let test_rng_float_bounds () =
  let rng = Rng.create ~seed:9 in
  for _ = 1 to 1000 do
    let v = Rng.float rng 2.5 in
    Alcotest.(check bool) "in [0, 2.5)" true (v >= 0. && v < 2.5)
  done

let test_rng_bool_takes_both_values () =
  let rng = Rng.create ~seed:11 in
  let trues = ref 0 in
  for _ = 1 to 200 do
    if Rng.bool rng then incr trues
  done;
  Alcotest.(check bool) "mixed" true (!trues > 50 && !trues < 150)

(* --- Trace and Stats --- *)

let test_trace_records_in_order () =
  let eng = Engine.create () in
  let trace = Trace.create ~enabled:true () in
  Engine.at eng (Time.of_us 2.) (fun () -> Trace.record trace eng ~category:"b" "two");
  Engine.at eng (Time.of_us 1.) (fun () -> Trace.record trace eng ~category:"a" "one");
  Engine.run eng;
  let entries = Trace.entries trace in
  Alcotest.(check int) "two entries" 2 (List.length entries);
  Alcotest.(check (list string)) "chronological" [ "one"; "two" ]
    (List.map (fun e -> e.Trace.message) entries);
  Alcotest.(check int) "by category" 1 (List.length (Trace.by_category trace "a"))

let test_trace_disabled_is_free () =
  let eng = Engine.create () in
  let trace = Trace.create () in
  Trace.record trace eng ~category:"x" "ignored";
  Trace.recordf trace eng ~category:"x" "also %d" 42;
  Alcotest.(check int) "nothing recorded" 0 (Trace.length trace)

let test_trace_hash_distinguishes () =
  let eng = Engine.create () in
  let t1 = Trace.create ~enabled:true () and t2 = Trace.create ~enabled:true () in
  Trace.record t1 eng ~category:"x" "a";
  Trace.record t2 eng ~category:"x" "b";
  Alcotest.(check bool) "different traces, different hash" false
    (Trace.hash t1 = Trace.hash t2)

let test_stats_counters_and_spans () =
  let s = Stats.create () in
  Stats.incr s "a";
  Stats.incr s "a";
  Stats.add s "b" 5;
  Alcotest.(check int) "count a" 2 (Stats.count s "a");
  Alcotest.(check int) "count b" 5 (Stats.count s "b");
  Alcotest.(check int) "absent is 0" 0 (Stats.count s "zzz");
  Stats.add_span s "t" (Time.of_us 10.);
  Stats.add_span s "t" (Time.of_us 20.);
  Alcotest.(check int) "span total" (Time.of_us 30.) (Stats.span_total s "t");
  Alcotest.(check int) "span mean" (Time.of_us 15.) (Stats.span_mean s "t");
  Stats.reset s;
  Alcotest.(check int) "reset" 0 (Stats.count s "a")

let test_stats_interned_handles () =
  let s = Stats.create () in
  (* A handle and the string API address the same cell. *)
  let c = Stats.counter s "a" in
  Stats.bump c;
  Stats.incr s "a";
  Stats.bump_by c 3;
  Alcotest.(check int) "handle and string share the cell" 5 (Stats.count s "a");
  Alcotest.(check int) "counter_value agrees" 5 (Stats.counter_value c);
  let h = Stats.histogram s "t" in
  Stats.record h (Time.of_us 10.);
  Stats.add_span s "t" (Time.of_us 20.);
  Alcotest.(check int) "span total via both routes" (Time.of_us 30.)
    (Stats.span_total s "t");
  Alcotest.(check int) "two samples" 2 (Stats.span_samples s "t");
  (* Reset zeroes in place: handles interned before the reset stay live. *)
  Stats.reset s;
  Alcotest.(check int) "counter zeroed" 0 (Stats.counter_value c);
  Stats.bump c;
  Stats.record h (Time.of_us 7.);
  Alcotest.(check int) "stale handle still counts" 1 (Stats.count s "a");
  Alcotest.(check int) "stale histogram still records" 1 (Stats.span_samples s "t")

let test_stats_zero_sample_edges () =
  let s = Stats.create () in
  (* A span key that was never observed must read as zero everywhere, not
     divide by zero. *)
  Alcotest.(check int) "absent mean is 0" Time.zero (Stats.span_mean s "absent");
  Alcotest.(check int) "absent p99 is 0" Time.zero (Stats.span_percentile s "absent" 99.);
  Alcotest.(check int) "absent samples" 0 (Stats.span_samples s "absent");
  let summary = Stats.span_summary s "absent" in
  Alcotest.(check int) "absent summary mean" Time.zero summary.Stats.sm_mean;
  Alcotest.(check int) "absent summary max" Time.zero summary.Stats.sm_max

let test_stats_reset_clears_histograms () =
  let s = Stats.create () in
  Stats.add_span s "t" (Time.of_us 10.);
  Stats.add_span s "t" (Time.of_us 500.);
  Alcotest.(check bool) "histogram populated" true
    (Array.exists (fun (_, count) -> count > 0) (Stats.span_histogram s "t"));
  Alcotest.(check bool) "p50 positive" true (Stats.span_percentile s "t" 50. > 0);
  Stats.reset s;
  Alcotest.(check int) "samples cleared" 0 (Stats.span_samples s "t");
  Alcotest.(check int) "mean cleared" Time.zero (Stats.span_mean s "t");
  Alcotest.(check int) "p99 cleared" Time.zero (Stats.span_percentile s "t" 99.);
  Alcotest.(check bool) "buckets cleared" true
    (Array.for_all (fun (_, count) -> count = 0) (Stats.span_histogram s "t"))

let test_stats_percentiles () =
  let s = Stats.create () in
  (* 100 samples, 1..100 us: p50 lands in the bucket holding 50 us, p99 in
     the one holding 99 us, and every percentile is capped at the max. *)
  for i = 1 to 100 do
    Stats.add_span s "t" (Time.of_us (float_of_int i))
  done;
  let p50 = Stats.span_percentile s "t" 50. in
  let p99 = Stats.span_percentile s "t" 99. in
  Alcotest.(check bool) "p50 within bucket" true
    (p50 >= Time.of_us 50. && p50 <= Time.of_us 100.);
  Alcotest.(check bool) "p99 <= max" true (p99 <= Stats.span_max s "t");
  Alcotest.(check int) "p100 is max" (Stats.span_max s "t")
    (Stats.span_percentile s "t" 100.)

(* --- Gzip --- *)

let prop_gzip_roundtrip =
  QCheck.Test.make ~name:"gzip round-trips any payload" ~count:200
    QCheck.(string_gen_of_size Gen.(0 -- 200_000) Gen.char)
    (fun s ->
      match Gzip.decompress (Gzip.compress s) with
      | Ok s' -> String.equal s s'
      | Error _ -> false)

let test_gzip_sniff () =
  let z = Gzip.compress "hello" in
  Alcotest.(check bool) "compressed sniffs as gzip" true (Gzip.is_gzip z);
  Alcotest.(check bool) "plain text does not" false (Gzip.is_gzip "hello");
  Alcotest.(check bool) "gz path" true (Gzip.gzip_path "trace.jsonl.gz");
  Alcotest.(check bool) "plain path" false (Gzip.gzip_path "trace.jsonl");
  Alcotest.(check bool) "corrupt trailer rejected" true
    (let n = String.length z in
     let bad = Bytes.of_string z in
     Bytes.set bad (n - 1) (Char.chr (Char.code z.[n - 1] lxor 0xff));
     match Gzip.decompress (Bytes.to_string bad) with
     | Error _ -> true
     | Ok _ -> false)

let test_gzip_files () =
  let payload = String.init 10_000 (fun i -> Char.chr (i * 7 mod 256)) in
  let check_path path =
    Gzip.write_file path payload;
    let back =
      match Gzip.read_file path with
      | Ok s -> s
      | Error msg -> Alcotest.failf "read %s: %s" path msg
    in
    Sys.remove path;
    Alcotest.(check string) (path ^ " round-trips") payload back
  in
  let tmp = Filename.temp_file "dsm_gzip" ".bin" in
  check_path tmp;
  let tmpgz = Filename.temp_file "dsm_gzip" ".bin.gz" in
  (* the .gz path must actually hold gzip bytes on disk *)
  Gzip.write_file tmpgz payload;
  let raw = In_channel.with_open_bin tmpgz In_channel.input_all in
  Alcotest.(check bool) "on-disk bytes are gzip" true (Gzip.is_gzip raw);
  check_path tmpgz

(* --- Run_meta --- *)

let test_run_meta_roundtrip () =
  let m =
    Run_meta.v ~git_rev:"abc123" ~tie_seed:7 ~driver:"BIP/Myrinet"
      ~protocol:"hbrc_mw" ~nodes:4 ~case:"jacobi:hbrc_mw:bip-myrinet" ()
  in
  (match Run_meta.of_json (Run_meta.to_json m) with
  | Ok m' -> Alcotest.(check bool) "round-trips" true (Run_meta.equal m m')
  | Error msg -> Alcotest.fail msg);
  match Run_meta.of_json (Run_meta.to_json Run_meta.empty) with
  | Ok m' -> Alcotest.(check bool) "empty round-trips" true (Run_meta.equal Run_meta.empty m')
  | Error msg -> Alcotest.fail msg

let test_run_meta_compatible () =
  let m ?seed ?drv () = Run_meta.v ?tie_seed:seed ?driver:drv ~nodes:4 () in
  (match Run_meta.compatible ~baseline:(m ~seed:1 ()) ~fresh:(m ~seed:1 ()) with
  | Ok () -> ()
  | Error msg -> Alcotest.failf "same identity rejected: %s" msg);
  (* a field present on one side only is not a mismatch *)
  (match Run_meta.compatible ~baseline:(m ()) ~fresh:(m ~seed:1 ()) with
  | Ok () -> ()
  | Error msg -> Alcotest.failf "one-sided field rejected: %s" msg);
  (match Run_meta.compatible ~baseline:(m ~seed:1 ()) ~fresh:(m ~seed:2 ()) with
  | Ok () -> Alcotest.fail "tie-seed mismatch accepted"
  | Error _ -> ());
  (* git revisions never participate: diffing revisions is the point *)
  match
    Run_meta.compatible
      ~baseline:(Run_meta.v ~git_rev:"aaa" ())
      ~fresh:(Run_meta.v ~git_rev:"bbb" ())
  with
  | Ok () -> ()
  | Error msg -> Alcotest.failf "git rev participated: %s" msg

let () =
  Alcotest.run "sim"
    [
      ( "time",
        [ Alcotest.test_case "conversions" `Quick test_time_conversions ] );
      ( "heap",
        [
          Alcotest.test_case "basic operations" `Quick test_heap_basic;
          QCheck_alcotest.to_alcotest prop_heap_sorted;
        ] );
      ( "rng",
        [
          Alcotest.test_case "deterministic" `Quick test_rng_deterministic;
          Alcotest.test_case "seed sensitivity" `Quick test_rng_seed_sensitivity;
          Alcotest.test_case "split independence" `Quick test_rng_split_independent;
          Alcotest.test_case "shuffle permutes" `Quick test_rng_shuffle_permutes;
          Alcotest.test_case "float bounds" `Quick test_rng_float_bounds;
          Alcotest.test_case "bool mixes" `Quick test_rng_bool_takes_both_values;
          QCheck_alcotest.to_alcotest prop_rng_int_bounds;
        ] );
      ( "engine",
        [
          Alcotest.test_case "event order" `Quick test_engine_event_order;
          Alcotest.test_case "FIFO tie-break" `Quick test_engine_tie_break_fifo;
          Alcotest.test_case "past rejected" `Quick test_engine_past_event_rejected;
          Alcotest.test_case "sleep advances clock" `Quick test_engine_sleep_advances_clock;
          Alcotest.test_case "stall detection" `Quick test_engine_stalled_detection;
          Alcotest.test_case "current fiber" `Quick test_engine_current_fiber;
          Alcotest.test_case "double resume rejected" `Quick
            test_engine_resume_twice_rejected;
          Alcotest.test_case "run limit" `Quick test_engine_run_limit;
          Alcotest.test_case "perturbation replays" `Quick
            test_engine_perturbation_replays;
          Alcotest.test_case "perturbation diverges" `Quick
            test_engine_perturbation_diverges;
          Alcotest.test_case "perturbation respects time" `Quick
            test_engine_perturbation_respects_time;
          Alcotest.test_case "no seed keeps FIFO" `Quick test_engine_no_seed_is_fifo;
          Alcotest.test_case "live fibers" `Quick test_engine_live_fibers;
          Alcotest.test_case "fiber spawns fiber" `Quick test_engine_fiber_spawns_fiber;
          Alcotest.test_case "gate parks and resumes" `Quick
            test_engine_gate_parks_and_resumes;
          Alcotest.test_case "gate covers resumed slices" `Quick
            test_engine_gate_covers_resumed_slices;
          Alcotest.test_case "gate neutral when quiescent" `Quick
            test_engine_gate_clear_and_neutral;
        ] );
      ( "cpu",
        [
          Alcotest.test_case "serialises work" `Quick test_cpu_serialises;
          Alcotest.test_case "quantum preemption" `Quick test_cpu_quantum_preempts;
          Alcotest.test_case "zero compute free" `Quick test_cpu_zero_compute_is_free;
          Alcotest.test_case "FIFO grant order" `Quick test_cpu_fifo_order;
          Alcotest.test_case "busy time exact under slicing" `Quick
            test_cpu_busy_time_exact_under_slicing;
        ] );
      ( "trace+stats",
        [
          Alcotest.test_case "trace order" `Quick test_trace_records_in_order;
          Alcotest.test_case "trace disabled" `Quick test_trace_disabled_is_free;
          Alcotest.test_case "trace hash" `Quick test_trace_hash_distinguishes;
          Alcotest.test_case "stats" `Quick test_stats_counters_and_spans;
          Alcotest.test_case "stats interned handles" `Quick
            test_stats_interned_handles;
          Alcotest.test_case "stats zero-sample edges" `Quick
            test_stats_zero_sample_edges;
          Alcotest.test_case "stats reset clears histograms" `Quick
            test_stats_reset_clears_histograms;
          Alcotest.test_case "stats percentiles" `Quick test_stats_percentiles;
        ] );
      ( "gzip",
        [
          QCheck_alcotest.to_alcotest prop_gzip_roundtrip;
          Alcotest.test_case "magic sniffing + corruption" `Quick test_gzip_sniff;
          Alcotest.test_case "file round-trip, plain and .gz" `Quick
            test_gzip_files;
        ] );
      ( "run_meta",
        [
          Alcotest.test_case "json round-trip" `Quick test_run_meta_roundtrip;
          Alcotest.test_case "compatibility" `Quick test_run_meta_compatible;
        ] );
    ]

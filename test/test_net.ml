(* Tests of the network layer: driver calibration and delivery semantics. *)

open Dsmpm2_sim
open Dsmpm2_net

let us = Alcotest.float 0.01

(* The drivers are calibrated against the paper's tables; these tests pin
   the calibration down so a drive-by edit cannot silently skew every
   experiment. *)
let test_driver_calibration () =
  let check_page d expected =
    Alcotest.check us
      (d.Driver.name ^ " 4kB page transfer")
      expected
      (Time.to_us (Driver.delay d (Driver.Bulk 4096)))
  in
  check_page Driver.bip_myrinet 138.;
  check_page Driver.tcp_myrinet 343.;
  check_page Driver.tcp_fast_ethernet 736.;
  check_page Driver.sisci_sci 119.;
  let check_req d expected =
    Alcotest.check us (d.Driver.name ^ " request") expected
      (Time.to_us (Driver.delay d Driver.Request))
  in
  check_req Driver.bip_myrinet 23.;
  check_req Driver.tcp_myrinet 220.;
  check_req Driver.tcp_fast_ethernet 220.;
  check_req Driver.sisci_sci 38.;
  let check_mig d expected =
    (* 1 kB stack + 256 B descriptor *)
    Alcotest.check us (d.Driver.name ^ " migration") expected
      (Time.to_us (Driver.delay d (Driver.Migration 1280)))
  in
  check_mig Driver.bip_myrinet 75.;
  check_mig Driver.tcp_myrinet 280.;
  check_mig Driver.tcp_fast_ethernet 373.;
  check_mig Driver.sisci_sci 62.;
  Alcotest.check us "BIP null rpc" 8. (Time.to_us (Driver.delay Driver.bip_myrinet Driver.Null_rpc));
  Alcotest.check us "SCI null rpc" 6. (Time.to_us (Driver.delay Driver.sisci_sci Driver.Null_rpc))

let test_driver_by_name () =
  Alcotest.(check bool) "found" true (Driver.by_name "SISCI/SCI" <> None);
  Alcotest.(check bool) "not found" true (Driver.by_name "Carrier/Pigeon" = None);
  Alcotest.(check int) "four platforms" 4 (List.length Driver.all)

let test_driver_size_monotone () =
  let d = Driver.bip_myrinet in
  Alcotest.(check bool) "bigger bulk costs more" true
    (Driver.delay d (Driver.Bulk 8192) > Driver.delay d (Driver.Bulk 4096));
  Alcotest.(check bool) "bigger migration costs more" true
    (Driver.delay d (Driver.Migration 64_000) > Driver.delay d (Driver.Migration 1280))

let test_network_delivery_delay () =
  let eng = Engine.create () in
  let net = Network.create eng ~driver:Driver.bip_myrinet ~nodes:2 in
  let delivered_at = ref Time.zero in
  Network.send net ~src:0 ~dst:1 ~cost:Driver.Request (fun () ->
      delivered_at := Engine.now eng);
  Engine.run eng;
  Alcotest.check us "request delay" 23. (Time.to_us !delivered_at)

let test_network_fifo_per_link () =
  let eng = Engine.create () in
  let net = Network.create eng ~driver:Driver.bip_myrinet ~nodes:2 in
  let log = ref [] in
  (* A slow bulk then a fast request on the same link: FIFO must hold. *)
  Network.send net ~src:0 ~dst:1 ~cost:(Driver.Bulk 4096) (fun () -> log := "bulk" :: !log);
  Network.send net ~src:0 ~dst:1 ~cost:Driver.Request (fun () -> log := "req" :: !log);
  Engine.run eng;
  Alcotest.(check (list string)) "in-order delivery" [ "bulk"; "req" ] (List.rev !log)

let test_network_loopback_free () =
  let eng = Engine.create () in
  let net = Network.create eng ~driver:Driver.tcp_fast_ethernet ~nodes:2 in
  let at = ref (Time.of_us 999.) in
  Network.send net ~src:1 ~dst:1 ~cost:(Driver.Bulk 4096) (fun () -> at := Engine.now eng);
  Engine.run eng;
  Alcotest.(check int) "loopback costs nothing" Time.zero !at

let test_network_counters () =
  let eng = Engine.create () in
  let net = Network.create eng ~driver:Driver.bip_myrinet ~nodes:3 in
  Network.send net ~src:0 ~dst:1 ~cost:Driver.Request ignore;
  Network.send net ~src:1 ~dst:2 ~cost:(Driver.Bulk 100) ignore;
  Network.send net ~src:2 ~dst:0 ~cost:(Driver.Migration 50) ignore;
  Engine.run eng;
  Alcotest.(check int) "messages" 3 (Network.messages_sent net);
  (* Each message carries the uniform wire header on top of its payload, so
     control traffic shows up in the byte column too. *)
  Alcotest.(check int)
    "wire bytes" (150 + (3 * Driver.header_bytes))
    (Network.bytes_sent net);
  Alcotest.(check int) "request counter" 1 (Stats.count (Network.stats net) "msg.request");
  Alcotest.(check int) "bulk counter" 1 (Stats.count (Network.stats net) "msg.bulk")

let test_network_out_of_range () =
  let eng = Engine.create () in
  let net = Network.create eng ~driver:Driver.bip_myrinet ~nodes:2 in
  Alcotest.check_raises "bad node"
    (Invalid_argument "Network.send: node id out of range") (fun () ->
      Network.send net ~src:0 ~dst:5 ~cost:Driver.Request ignore)

let test_network_jitter_applies () =
  let eng = Engine.create () in
  let jitter ~src:_ ~dst:_ d = 2 * d in
  let net = Network.create ~jitter eng ~driver:Driver.bip_myrinet ~nodes:2 in
  let at = ref Time.zero in
  Network.send net ~src:0 ~dst:1 ~cost:Driver.Request (fun () -> at := Engine.now eng);
  Engine.run eng;
  Alcotest.check us "doubled delay" 46. (Time.to_us !at)

let test_bulk_zero_is_base_cost () =
  List.iter
    (fun d ->
      Alcotest.(check bool)
        (d.Driver.name ^ " zero-byte bulk costs only the base")
        true
        (Time.to_us (Driver.delay d (Driver.Bulk 0)) = d.Driver.page_base_us))
    Driver.all

(* Self-sends never touch the wire: they must not inflate the traffic
   counters the experiments compare against the paper's tables.  They are
   tallied separately in [loopback_sent] / "net.loopback". *)
let test_network_self_send_not_counted () =
  let eng = Engine.create () in
  let net = Network.create eng ~driver:Driver.bip_myrinet ~nodes:2 in
  Network.send net ~src:0 ~dst:1 ~cost:Driver.Request ignore;
  Network.send net ~src:1 ~dst:1 ~cost:(Driver.Bulk 64) ignore;
  Engine.run eng;
  Alcotest.(check int) "wire messages unchanged by self-send" 1
    (Network.messages_sent net);
  Alcotest.(check int) "wire bytes unchanged by self-send" Driver.header_bytes
    (Network.bytes_sent net);
  Alcotest.(check int) "no per-kind counter for loopback" 0
    (Stats.count (Network.stats net) "msg.bulk");
  Alcotest.(check int) "loopback counter bumps" 1 (Network.loopback_sent net);
  Alcotest.(check int) "net.loopback stat" 1
    (Stats.count (Network.stats net) "net.loopback")

(* Two same-time self-sends must deliver in send order under every tie seed:
   the loopback path has its own monotonic-arrival clamp, so the engine's
   seeded tie-breaking can never invert them. *)
let test_network_loopback_fifo_under_tie_seeds () =
  for seed = 0 to 49 do
    let eng = Engine.create ~tie_seed:seed () in
    let net = Network.create eng ~driver:Driver.bip_myrinet ~nodes:2 in
    let log = ref [] in
    for i = 1 to 6 do
      Network.send net ~src:1 ~dst:1 ~cost:Driver.Request (fun () ->
          log := i :: !log)
    done;
    Engine.run eng;
    Alcotest.(check (list int))
      (Printf.sprintf "loopback FIFO, tie seed %d" seed)
      [ 1; 2; 3; 4; 5; 6 ] (List.rev !log)
  done

let test_fault_plan_deterministic () =
  let plan seed =
    Fault_plan.seeded ~nodes:4 ~seed ~crashes:3 ~loss_pct:2. ~protect:[ 0 ] ()
  in
  let a = plan 7 and b = plan 7 and c = plan 8 in
  Alcotest.(check string)
    "same seed, same schedule"
    (Fault_plan.to_string a) (Fault_plan.to_string b);
  Alcotest.(check bool) "same windows" true
    (Fault_plan.windows a = Fault_plan.windows b);
  Alcotest.(check bool) "different seed perturbs the schedule" true
    (Fault_plan.windows a <> Fault_plan.windows c);
  List.iter
    (fun w ->
      Alcotest.(check bool) "protected node never crashes" true
        (w.Fault_plan.w_node <> 0);
      Alcotest.(check bool) "window is non-empty" true
        (w.Fault_plan.w_up > w.Fault_plan.w_down))
    (Fault_plan.windows a);
  (* Windows never overlap in time: at most one node down at any instant. *)
  let sorted = Fault_plan.windows a in
  ignore
    (List.fold_left
       (fun prev_up w ->
         Alcotest.(check bool) "windows do not overlap" true
           (w.Fault_plan.w_down >= prev_up);
         w.Fault_plan.w_up)
       Time.zero sorted);
  Alcotest.(check bool) "seeded plan has faults" true (Fault_plan.has_faults a);
  Alcotest.(check bool) "empty plan has none" false
    (Fault_plan.has_faults Fault_plan.none)

(* Installing the empty fault plan must be invisible: no drops, no RNG
   draws, bit-for-bit the same delivery schedule as no plan at all. *)
let test_fault_plan_none_schedule_neutral () =
  let deliveries with_plan =
    let eng = Engine.create ~tie_seed:3 () in
    let jitter = Network.seeded_jitter ~extra_us:25. ~seed:11 () in
    let net = Network.create ~jitter eng ~driver:Driver.tcp_myrinet ~nodes:3 in
    if with_plan then Network.set_fault_plan net Fault_plan.none;
    let log = ref [] in
    for i = 1 to 15 do
      let src = i mod 3 and dst = (i + 1) mod 3 in
      Network.send net ~src ~dst ~cost:(Driver.Bulk (i * 10)) (fun () ->
          log := (i, Engine.now eng) :: !log)
    done;
    Engine.run eng;
    (List.rev !log, Network.messages_sent net, Network.messages_dropped net)
  in
  let plain = deliveries false and neutral = deliveries true in
  Alcotest.(check bool) "bit-for-bit identical schedule" true (plain = neutral);
  let _, _, dropped = neutral in
  Alcotest.(check int) "empty plan drops nothing" 0 dropped

let test_driver_wire_bytes () =
  Alcotest.(check int) "request is header-only" Driver.header_bytes
    (Driver.wire_bytes Driver.Request);
  Alcotest.(check int) "null rpc is header-only" Driver.header_bytes
    (Driver.wire_bytes Driver.Null_rpc);
  Alcotest.(check int) "bulk adds payload" (Driver.header_bytes + 4096)
    (Driver.wire_bytes (Driver.Bulk 4096));
  Alcotest.(check int) "migration adds payload" (Driver.header_bytes + 50)
    (Driver.wire_bytes (Driver.Migration 50));
  Alcotest.(check int) "control payload is zero" 0
    (Driver.payload_bytes Driver.Request)

let test_network_jitter_never_reorders () =
  let eng = Engine.create () in
  (* Adversarial jitter: shrink the delay of every second message. *)
  let flip = ref false in
  let jitter ~src:_ ~dst:_ d =
    flip := not !flip;
    if !flip then d else d / 10
  in
  let net = Network.create ~jitter eng ~driver:Driver.tcp_fast_ethernet ~nodes:2 in
  let log = ref [] in
  for i = 1 to 6 do
    Network.send net ~src:0 ~dst:1 ~cost:(Driver.Bulk 4096) (fun () -> log := i :: !log)
  done;
  Engine.run eng;
  Alcotest.(check (list int)) "FIFO survives jitter" [ 1; 2; 3; 4; 5; 6 ] (List.rev !log)

let test_network_negative_jitter_clamped () =
  let eng = Engine.create () in
  (* A jitter function violating the non-negative contract: the send layer
     must clamp the delay to zero instead of scheduling into the past. *)
  let jitter ~src:_ ~dst:_ _d = Time.of_us (-50.) in
  let net = Network.create ~jitter eng ~driver:Driver.bip_myrinet ~nodes:2 in
  let at = ref (Time.of_us 999.) in
  Network.send net ~src:0 ~dst:1 ~cost:Driver.Request (fun () -> at := Engine.now eng);
  Engine.run eng;
  (* Clamped to zero delay; the per-link FIFO floor still adds its epsilon. *)
  Alcotest.(check bool) "delivery not in the past" true (!at >= Time.zero);
  Alcotest.(check bool) "clamped near zero" true (!at <= Time.of_ns 1)

let test_seeded_jitter_deterministic_and_bounded () =
  let deliveries seed =
    let eng = Engine.create () in
    let jitter = Network.seeded_jitter ~extra_us:30. ~spike_us:0. ~spike_pct:0 ~seed () in
    let net = Network.create ~jitter eng ~driver:Driver.bip_myrinet ~nodes:2 in
    let log = ref [] in
    for i = 1 to 20 do
      Network.send net ~src:0 ~dst:1 ~cost:Driver.Request (fun () ->
          log := (i, Engine.now eng) :: !log)
    done;
    Engine.run eng;
    List.rev !log
  in
  let a = deliveries 5 and b = deliveries 5 and c = deliveries 6 in
  Alcotest.(check bool) "same seed replays identically" true (a = b);
  Alcotest.(check bool) "different seed perturbs differently" true (a <> c);
  (* All twenty sends left at t=0: each delay is base + extra in [0, 30us],
     plus FIFO queueing behind at most 19 earlier messages. *)
  let base = Time.to_us (Driver.delay Driver.bip_myrinet Driver.Request) in
  List.iter
    (fun (_, t) ->
      let t = Time.to_us t in
      Alcotest.(check bool) "at least base delay" true (t >= base);
      Alcotest.(check bool) "bounded" true (t <= base +. 30.))
    a;
  Alcotest.(check (list int)) "FIFO order preserved" (List.init 20 (fun i -> i + 1))
    (List.map fst a)

let test_seeded_jitter_spikes () =
  let rng_jitter = Network.seeded_jitter ~extra_us:0. ~spike_us:100. ~spike_pct:50 ~seed:1 () in
  let spikes = ref 0 in
  for _ = 1 to 200 do
    if rng_jitter ~src:0 ~dst:1 Time.zero >= Time.of_us 100. then incr spikes
  done;
  Alcotest.(check bool) "spike rate near 50%" true (!spikes > 60 && !spikes < 140);
  Alcotest.check_raises "negative bound rejected"
    (Invalid_argument "Network.seeded_jitter: bounds must be non-negative")
    (fun () ->
      ignore (Network.seeded_jitter ~extra_us:(-1.) ~seed:1 () ~src:0 ~dst:1 Time.zero));
  Alcotest.check_raises "bad percentage rejected"
    (Invalid_argument "Network.seeded_jitter: spike_pct must be in [0, 100]")
    (fun () ->
      ignore (Network.seeded_jitter ~spike_pct:101 ~seed:1 () ~src:0 ~dst:1 Time.zero))

let () =
  Alcotest.run "net"
    [
      ( "driver",
        [
          Alcotest.test_case "paper calibration" `Quick test_driver_calibration;
          Alcotest.test_case "by_name" `Quick test_driver_by_name;
          Alcotest.test_case "size monotone" `Quick test_driver_size_monotone;
          Alcotest.test_case "wire bytes" `Quick test_driver_wire_bytes;
        ] );
      ( "network",
        [
          Alcotest.test_case "delivery delay" `Quick test_network_delivery_delay;
          Alcotest.test_case "FIFO per link" `Quick test_network_fifo_per_link;
          Alcotest.test_case "loopback free" `Quick test_network_loopback_free;
          Alcotest.test_case "counters" `Quick test_network_counters;
          Alcotest.test_case "out of range" `Quick test_network_out_of_range;
          Alcotest.test_case "jitter applies" `Quick test_network_jitter_applies;
          Alcotest.test_case "jitter never reorders" `Quick
            test_network_jitter_never_reorders;
          Alcotest.test_case "negative jitter clamped" `Quick
            test_network_negative_jitter_clamped;
          Alcotest.test_case "seeded jitter deterministic" `Quick
            test_seeded_jitter_deterministic_and_bounded;
          Alcotest.test_case "seeded jitter spikes" `Quick test_seeded_jitter_spikes;
          Alcotest.test_case "zero-byte bulk" `Quick test_bulk_zero_is_base_cost;
          Alcotest.test_case "self send not counted" `Quick
            test_network_self_send_not_counted;
          Alcotest.test_case "loopback FIFO under tie seeds" `Quick
            test_network_loopback_fifo_under_tie_seeds;
        ] );
      ( "faults",
        [
          Alcotest.test_case "fault plan deterministic" `Quick
            test_fault_plan_deterministic;
          Alcotest.test_case "empty plan schedule neutral" `Quick
            test_fault_plan_none_schedule_neutral;
        ] );
    ]

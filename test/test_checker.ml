(* Unit tests for the execution-history checker (History.check) on hand-built
   histories, plus end-to-end runs where a deliberately broken protocol must
   be caught and the real one must pass. *)

open Dsmpm2_sim
open Dsmpm2_net
open Dsmpm2_core
open Dsmpm2_protocols

let us = Time.of_us
let x = 64 (* the shared address used by the hand-built histories *)

(* Record [kind] for thread [tid] over [start, finish] (microseconds). *)
let rec_op h ~tid ?(node = 0) ~s ~f kind =
  History.record h ~tid ~node ~start:(us s) ~finish:(us f) kind

let violations ~model h = List.length (History.check ~model h)

let check_violations name ~model h expected =
  Alcotest.(check int) name expected (violations ~model h)

(* --- per-location real-time rule (Sequential only) --- *)

let stale_read_history () =
  let h = History.create () in
  rec_op h ~tid:0 ~s:0. ~f:1. (History.Write { addr = x; value = 1 });
  rec_op h ~tid:1 ~s:2. ~f:3. (History.Write { addr = x; value = 2 });
  (* Unsynchronized third thread reads the overwritten value long after
     both writes completed. *)
  rec_op h ~tid:2 ~s:10. ~f:11. (History.Read { addr = x; value = 1 });
  h

let test_sequential_rejects_stale_read () =
  check_violations "stale read flagged under sequential" ~model:Protocol.Sequential
    (stale_read_history ()) 1

let test_release_allows_racy_stale_read () =
  (* No happens-before edge reaches the reader: under release consistency
     the stale value is a legal race. *)
  check_violations "racy read legal under release" ~model:Protocol.Release
    (stale_read_history ()) 0;
  check_violations "racy read legal under java" ~model:Protocol.Java
    (stale_read_history ()) 0

let test_current_read_passes_everywhere () =
  let h = History.create () in
  rec_op h ~tid:0 ~s:0. ~f:1. (History.Write { addr = x; value = 1 });
  rec_op h ~tid:1 ~s:2. ~f:3. (History.Write { addr = x; value = 2 });
  rec_op h ~tid:2 ~s:10. ~f:11. (History.Read { addr = x; value = 2 });
  check_violations "latest value legal under sequential" ~model:Protocol.Sequential h 0;
  check_violations "latest value legal under release" ~model:Protocol.Release h 0

(* --- lock release-to-acquire edges (all models) --- *)

let test_lock_edge_makes_stale_read_illegal () =
  let h = History.create () in
  rec_op h ~tid:0 ~s:0. ~f:1. (History.Write { addr = x; value = 1 });
  rec_op h ~tid:0 ~s:2. ~f:3. (History.Release { lock = 0 });
  rec_op h ~tid:1 ~s:4. ~f:5. (History.Acquire { lock = 0 });
  rec_op h ~tid:1 ~s:6. ~f:7. (History.Read { addr = x; value = 0 });
  (* The initial zero is overwritten by a write that happens-before the
     read via the lock hand-off: illegal under every model. *)
  check_violations "lock edge enforced under release" ~model:Protocol.Release h 1;
  check_violations "lock edge enforced under java" ~model:Protocol.Java h 1;
  check_violations "lock edge enforced under sequential" ~model:Protocol.Sequential h 1

let test_unrelated_lock_carries_no_edge () =
  let h = History.create () in
  rec_op h ~tid:0 ~s:0. ~f:1. (History.Write { addr = x; value = 1 });
  rec_op h ~tid:0 ~s:2. ~f:3. (History.Release { lock = 0 });
  rec_op h ~tid:1 ~s:4. ~f:5. (History.Acquire { lock = 9 });
  rec_op h ~tid:1 ~s:6. ~f:7. (History.Read { addr = x; value = 0 });
  check_violations "different lock, read stays racy-legal" ~model:Protocol.Release h 0

(* --- barrier generations --- *)

let test_barrier_publishes_writes () =
  let h = History.create () in
  let b parties = History.Barrier { barrier = 0; parties } in
  rec_op h ~tid:0 ~s:0. ~f:1. (History.Write { addr = x; value = 5 });
  rec_op h ~tid:0 ~s:2. ~f:4. (b 2);
  rec_op h ~tid:1 ~s:3. ~f:4. (b 2);
  rec_op h ~tid:1 ~s:6. ~f:7. (History.Read { addr = x; value = 0 });
  check_violations "pre-barrier write visible after barrier" ~model:Protocol.Release h 1;
  (* The same history with the read seeing the published value is clean. *)
  let h2 = History.create () in
  rec_op h2 ~tid:0 ~s:0. ~f:1. (History.Write { addr = x; value = 5 });
  rec_op h2 ~tid:0 ~s:2. ~f:4. (b 2);
  rec_op h2 ~tid:1 ~s:3. ~f:4. (b 2);
  rec_op h2 ~tid:1 ~s:6. ~f:7. (History.Read { addr = x; value = 5 });
  check_violations "published value legal" ~model:Protocol.Release h2 0

let test_barrier_generations_are_ordered () =
  (* Two generations of a 2-party barrier: a write between the generations
     must be visible after the second one. *)
  let h = History.create () in
  let b parties = History.Barrier { barrier = 0; parties } in
  rec_op h ~tid:0 ~s:0. ~f:1. (b 2);
  rec_op h ~tid:1 ~s:0. ~f:1. (b 2);
  rec_op h ~tid:0 ~s:2. ~f:3. (History.Write { addr = x; value = 9 });
  rec_op h ~tid:0 ~s:4. ~f:5. (b 2);
  rec_op h ~tid:1 ~s:4. ~f:5. (b 2);
  rec_op h ~tid:1 ~s:6. ~f:7. (History.Read { addr = x; value = 0 });
  check_violations "second generation publishes the write" ~model:Protocol.Release h 1

(* --- reads-from causality (CoRR) --- *)

let test_read_cannot_step_backwards () =
  let h = History.create () in
  rec_op h ~tid:0 ~s:0. ~f:1. (History.Write { addr = x; value = 1 });
  rec_op h ~tid:0 ~s:2. ~f:3. (History.Write { addr = x; value = 2 });
  rec_op h ~tid:1 ~s:10. ~f:11. (History.Read { addr = x; value = 2 });
  rec_op h ~tid:1 ~s:12. ~f:13. (History.Read { addr = x; value = 1 });
  (* Having observed the second write, the thread may not then read the
     first: coherence of reads on one location. *)
  check_violations "CoRR step-back flagged under release" ~model:Protocol.Release h 1

let test_read_of_unwritten_value () =
  let h = History.create () in
  rec_op h ~tid:0 ~s:0. ~f:1. (History.Read { addr = x; value = 7 });
  check_violations "no write can explain the value" ~model:Protocol.Release h 1

let test_initial_zero_is_legal () =
  let h = History.create () in
  rec_op h ~tid:0 ~s:0. ~f:1. (History.Read { addr = x; value = 0 });
  check_violations "initial zero readable" ~model:Protocol.Sequential h 0

(* --- fingerprint --- *)

let test_fingerprint_deterministic () =
  let build () =
    let h = History.create () in
    rec_op h ~tid:0 ~s:0. ~f:1. (History.Write { addr = x; value = 1 });
    rec_op h ~tid:1 ~s:2. ~f:3. (History.Read { addr = x; value = 1 });
    h
  in
  Alcotest.(check int) "same records, same fingerprint"
    (History.fingerprint (build ()))
    (History.fingerprint (build ()));
  let h2 = build () in
  rec_op h2 ~tid:1 ~s:4. ~f:5. (History.Read { addr = x; value = 0 });
  Alcotest.(check bool) "extra record changes fingerprint" true
    (History.fingerprint (build ()) <> History.fingerprint h2)

(* --- end to end: a broken protocol is caught, the real one is not --- *)

(* li_hudak with invalidations disabled: a writer upgrades in place while
   readers keep stale replicas — the classic lost-invalidation bug. *)
let broken_li_hudak =
  {
    Li_hudak.protocol with
    Protocol.name = "broken_li";
    invalidate_server = (fun _rt ~node:_ ~page:_ ~sender:_ -> ());
  }

let stale_replica_run ~protocol_of =
  let dsm = Dsm.create ~nodes:2 ~driver:Driver.bip_myrinet () in
  ignore (Builtin.register_all dsm);
  let protocol = protocol_of dsm in
  let hist = Dsm.enable_history dsm in
  let a = Dsm.malloc dsm ~protocol ~home:(Dsm.On_node 0) 8 in
  (* Node 1 replicates the page, then node 0 upgrades (invalidating — or
     failing to invalidate — node 1's copy), then node 1 reads again well
     after the write completed: sequential consistency forbids the stale
     zero. *)
  ignore
    (Dsm.spawn dsm ~node:1 (fun () ->
         ignore (Dsm.read_int dsm a);
         Dsm.compute dsm 2_000.;
         ignore (Dsm.read_int dsm a)));
  ignore
    (Dsm.spawn dsm ~node:0 (fun () ->
         Dsm.compute dsm 500.;
         Dsm.write_int dsm a 1));
  Dsm.run dsm;
  History.check ~model:Protocol.Sequential hist

let test_broken_protocol_is_caught () =
  let vs =
    stale_replica_run ~protocol_of:(fun dsm -> Dsm.create_protocol dsm broken_li_hudak)
  in
  Alcotest.(check bool) "missing invalidation flagged" true (vs <> []);
  (* The minimized evidence names the stale read and the overwriting
     write. *)
  match vs with
  | v :: _ ->
      Alcotest.(check bool) "witnesses include the write" true
        (List.exists
           (fun (o : History.op) ->
             match o.History.kind with
             | History.Write { value = 1; _ } -> true
             | _ -> false)
           v.History.v_witnesses)
  | [] -> ()

let test_real_protocol_passes () =
  let vs =
    stale_replica_run ~protocol_of:(fun dsm ->
        match Dsm.protocol_by_name dsm "li_hudak" with
        | Some id -> id
        | None -> Alcotest.fail "li_hudak not registered")
  in
  Alcotest.(check int) "no violations for li_hudak" 0 (List.length vs)

(* --- end to end: conformance harness replay determinism --- *)

let test_conformance_replay_deterministic () =
  let run () =
    Dsmpm2_experiments.Conformance.run_one ~protocol:"li_hudak"
      ~driver:Driver.bip_myrinet
      ~workload:Dsmpm2_experiments.Conformance.Lock_ladder ~seed:11
  in
  let a = run () and b = run () in
  Alcotest.(check int) "same seed, same fingerprint"
    a.Dsmpm2_experiments.Conformance.o_fingerprint
    b.Dsmpm2_experiments.Conformance.o_fingerprint;
  Alcotest.(check int) "same seed, same op count"
    a.Dsmpm2_experiments.Conformance.o_ops b.Dsmpm2_experiments.Conformance.o_ops;
  Alcotest.(check bool) "clean run" false
    (Dsmpm2_experiments.Conformance.outcome_failed a)

let test_conformance_perturbation_varies_schedule () =
  (* Different seeds must explore different interleavings at least once
     over a small seed range (fingerprints differ). *)
  let fp seed =
    (Dsmpm2_experiments.Conformance.run_one ~protocol:"li_hudak"
       ~driver:Driver.bip_myrinet
       ~workload:Dsmpm2_experiments.Conformance.Lock_ladder ~seed)
      .Dsmpm2_experiments.Conformance.o_fingerprint
  in
  let base = fp 0 in
  Alcotest.(check bool) "some seed diverges" true
    (List.exists (fun s -> fp s <> base) [ 1; 2; 3; 4; 5 ])

(* --- end to end: fault tolerance --- *)

module C = Dsmpm2_experiments.Conformance

let test_sc_abd_survives_faults () =
  (* The quorum protocol must drain cleanly and keep sequential consistency
     under crash windows and message loss, across several fault seeds. *)
  List.iter
    (fun seed ->
      let o =
        C.run_one_faulted ~protocol:"sc_abd" ~driver:Driver.bip_myrinet
          ~workload:C.Lock_ladder ~seed ()
      in
      let label what = Printf.sprintf "%s (seed %d)" what seed in
      Alcotest.(check (option string)) (label "no crash") None o.C.fo_crashed;
      Alcotest.(check bool) (label "no stall") false o.C.fo_stalled;
      Alcotest.(check int) (label "no violations") 0
        (List.length o.C.fo_violations);
      Alcotest.(check (option string)) (label "right result") None
        o.C.fo_wrong_result;
      Alcotest.(check bool) (label "sweep verdict") false
        (C.fault_outcome_failed o))
    [ 0; 1; 2; 3 ]

let test_legacy_protocol_fails_visibly_under_faults () =
  (* The ownership-chain family has no redundancy: under the same schedules
     it must fail loudly — stall or typed crash, never silent corruption —
     and the watchdog must name the dead node. *)
  let outcomes =
    List.map
      (fun seed ->
        C.run_one_faulted ~protocol:"li_hudak" ~driver:Driver.bip_myrinet
          ~workload:C.Lock_ladder ~seed ())
      [ 0; 1; 2; 3 ]
  in
  Alcotest.(check bool) "some schedule defeats li_hudak" true
    (List.exists C.fault_outcome_failed outcomes);
  List.iter
    (fun o ->
      if C.fault_outcome_failed o then begin
        Alcotest.(check bool)
          (Printf.sprintf "failure is loud (seed %d)" o.C.fo_seed)
          true
          (o.C.fo_stalled || o.C.fo_crashed <> None);
        Alcotest.(check bool)
          (Printf.sprintf "typed node.dead alert (seed %d)" o.C.fo_seed)
          true
          (List.mem "node.dead" o.C.fo_alert_kinds)
      end)
    outcomes

let test_zero_fault_spec_is_schedule_neutral () =
  (* A fault layer that is installed but empty (no windows, no loss) must
     replay the exact histories the plain checker records. *)
  let spec =
    { C.default_fault_spec with C.f_crashes = 0; f_loss_pct = 0. }
  in
  List.iter
    (fun (protocol, seed) ->
      let plain =
        C.run_one ~protocol ~driver:Driver.bip_myrinet ~workload:C.Lock_ladder
          ~seed
      in
      let faultless =
        C.run_one_faulted ~spec ~protocol ~driver:Driver.bip_myrinet
          ~workload:C.Lock_ladder ~seed ()
      in
      Alcotest.(check int)
        (Printf.sprintf "%s seed %d: identical history" protocol seed)
        plain.C.o_fingerprint faultless.C.fo_fingerprint;
      Alcotest.(check int)
        (Printf.sprintf "%s seed %d: nothing dropped" protocol seed)
        0 faultless.C.fo_dropped;
      Alcotest.(check int)
        (Printf.sprintf "%s seed %d: nothing retransmitted" protocol seed)
        0 faultless.C.fo_retransmissions)
    [ ("li_hudak", 4); ("erc_sw", 7); ("sc_abd", 4) ]

let () =
  Alcotest.run "checker"
    [
      ( "real-time rule",
        [
          Alcotest.test_case "sequential rejects stale read" `Quick
            test_sequential_rejects_stale_read;
          Alcotest.test_case "release allows racy stale read" `Quick
            test_release_allows_racy_stale_read;
          Alcotest.test_case "current read passes" `Quick
            test_current_read_passes_everywhere;
        ] );
      ( "lock edges",
        [
          Alcotest.test_case "release-acquire edge" `Quick
            test_lock_edge_makes_stale_read_illegal;
          Alcotest.test_case "unrelated lock" `Quick test_unrelated_lock_carries_no_edge;
        ] );
      ( "barriers",
        [
          Alcotest.test_case "barrier publishes writes" `Quick
            test_barrier_publishes_writes;
          Alcotest.test_case "generations ordered" `Quick
            test_barrier_generations_are_ordered;
        ] );
      ( "reads-from",
        [
          Alcotest.test_case "CoRR step-back" `Quick test_read_cannot_step_backwards;
          Alcotest.test_case "unwritten value" `Quick test_read_of_unwritten_value;
          Alcotest.test_case "initial zero" `Quick test_initial_zero_is_legal;
        ] );
      ( "fingerprint",
        [ Alcotest.test_case "deterministic" `Quick test_fingerprint_deterministic ] );
      ( "end-to-end",
        [
          Alcotest.test_case "broken protocol caught" `Quick
            test_broken_protocol_is_caught;
          Alcotest.test_case "real protocol passes" `Quick test_real_protocol_passes;
          Alcotest.test_case "replay deterministic" `Quick
            test_conformance_replay_deterministic;
          Alcotest.test_case "perturbation varies schedule" `Quick
            test_conformance_perturbation_varies_schedule;
        ] );
      ( "fault tolerance",
        [
          Alcotest.test_case "sc_abd survives faults" `Quick
            test_sc_abd_survives_faults;
          Alcotest.test_case "legacy fails visibly" `Quick
            test_legacy_protocol_fails_visibly_under_faults;
          Alcotest.test_case "zero-fault spec neutral" `Quick
            test_zero_fault_spec_is_schedule_neutral;
        ] );
    ]

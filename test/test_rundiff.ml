(* Tests of the differential comparator: injected deltas are detected, the
   noise bound suppresses within-spread wobble, identical runs diff clean,
   and incompatible metadata is refused. *)

open Dsmpm2_sim
open Dsmpm2_core
open Dsmpm2_experiments
module B = Bench_suite

(* --- synthetic snapshots (no simulation needed) --- *)

let sample ~seed ~time ?(messages = 100) ?(dropped = 0) ?(rpc_retries = 0) () =
  {
    B.s_seed = seed;
    s_time_us = time;
    s_messages = messages;
    s_bytes = 4096;
    s_read_faults = 10;
    s_write_faults = 5;
    s_dropped = dropped;
    s_rpc_retries = rpc_retries;
    s_fault_p50_us = 50.;
    s_fault_p90_us = 90.;
    s_fault_p99_us = 99.;
    s_fault_p999_us = 99.9;
  }

let snapshot ?(id = "app:proto:drv") ?(driver = "BIP/Myrinet") samples =
  let case =
    {
      B.c_id = id;
      c_app = "app";
      c_protocol = "proto";
      c_driver = driver;
      c_nodes = 4;
      c_params = [ ("size", 16) ];
      c_quick = true;
    }
  in
  {
    B.bs_meta = Run_meta.v ~git_rev:"base" ();
    bs_results =
      [
        {
          B.cr_case = case;
          cr_meta =
            Run_meta.v ~git_rev:"base" ~driver ~protocol:"proto" ~nodes:4
              ~case:id ();
          cr_samples = samples;
        };
      ];
  }

let scale_times factor t =
  {
    t with
    B.bs_results =
      List.map
        (fun cr ->
          {
            cr with
            B.cr_samples =
              List.map
                (fun s -> { s with B.s_time_us = s.B.s_time_us *. factor })
                cr.B.cr_samples;
          })
        t.B.bs_results;
  }

let base_snapshot () =
  snapshot
    [ sample ~seed:0 ~time:1000. (); sample ~seed:1 ~time:1010. ();
      sample ~seed:2 ~time:1020. () ]

let diff_exn ?threshold_pct ?force a b =
  match
    Rundiff.diff ?threshold_pct ?force ~baseline:(Rundiff.Bench a)
      ~fresh:(Rundiff.Bench b) ()
  with
  | Ok d -> d
  | Error msg -> Alcotest.failf "diff refused: %s" msg

(* --- verdicts --- *)

let test_identical_is_clean () =
  let t = base_snapshot () in
  let d = diff_exn t t in
  Alcotest.(check bool) "no regression" false (Rundiff.significant_regression d);
  Alcotest.(check (list string)) "no regression lines" [] (Rundiff.regressions d);
  Alcotest.(check (list string)) "no improvement lines" [] (Rundiff.improvements d);
  List.iter
    (fun cd ->
      List.iter
        (fun m ->
          Alcotest.(check bool)
            (m.Rundiff.md_metric ^ " insignificant")
            false m.Rundiff.md_significant)
        cd.Rundiff.cd_metrics)
    d.Rundiff.rd_cases

let test_injected_regression_detected () =
  let t = base_snapshot () in
  let d = diff_exn t (scale_times 1.5 t) in
  Alcotest.(check bool) "regression found" true (Rundiff.significant_regression d);
  Alcotest.(check int) "one regression line" 1
    (List.length (Rundiff.regressions d));
  let time =
    List.find
      (fun m -> m.Rundiff.md_metric = "time_us")
      (List.hd d.Rundiff.rd_cases).Rundiff.cd_metrics
  in
  Alcotest.(check bool) "direction worse" true
    (time.Rundiff.md_direction = Rundiff.Worse);
  (* only time moved, so nothing else may fire *)
  List.iter
    (fun m ->
      if m.Rundiff.md_metric <> "time_us" then
        Alcotest.(check bool) (m.Rundiff.md_metric ^ " quiet") false
          m.Rundiff.md_significant)
    (List.hd d.Rundiff.rd_cases).Rundiff.cd_metrics

let test_improvement_is_not_a_regression () =
  let t = base_snapshot () in
  let d = diff_exn t (scale_times 0.5 t) in
  Alcotest.(check bool) "no regression" false (Rundiff.significant_regression d);
  Alcotest.(check int) "one improvement line" 1
    (List.length (Rundiff.improvements d))

let test_noise_bound_suppresses () =
  (* spread 1000/1010/1020 gives sigma ~8.2, noise ~24.5; a +5us shift is
     0.5% and inside the bound on both axes, so it must stay quiet *)
  let a = base_snapshot () in
  let b =
    snapshot
      [ sample ~seed:0 ~time:1005. (); sample ~seed:1 ~time:1015. ();
        sample ~seed:2 ~time:1025. () ]
  in
  let d = diff_exn a b in
  Alcotest.(check bool) "inside noise" false (Rundiff.significant_regression d);
  (* the same shift on a zero-spread case clears 3 sigma = 0 but not the
     relative threshold, so it is still quiet at 2% ... *)
  let a0 = snapshot [ sample ~seed:0 ~time:1000. () ] in
  let b0 = snapshot [ sample ~seed:0 ~time:1005. () ] in
  Alcotest.(check bool) "under relative threshold" false
    (Rundiff.significant_regression (diff_exn a0 b0));
  (* ... and loud once it crosses it *)
  let b1 = snapshot [ sample ~seed:0 ~time:1030. () ] in
  Alcotest.(check bool) "over relative threshold" true
    (Rundiff.significant_regression (diff_exn a0 b1))

let test_messages_delta_reported_not_gating () =
  let a = snapshot [ sample ~seed:0 ~time:1000. ~messages:100 () ] in
  let b = snapshot [ sample ~seed:0 ~time:1000. ~messages:200 () ] in
  let d = diff_exn a b in
  let msgs =
    List.find
      (fun m -> m.Rundiff.md_metric = "messages")
      (List.hd d.Rundiff.rd_cases).Rundiff.cd_metrics
  in
  Alcotest.(check bool) "messages delta significant" true
    msgs.Rundiff.md_significant;
  Alcotest.(check bool) "but the gate is simulated time" false
    (Rundiff.significant_regression d)

let test_fault_metrics_advisory () =
  (* A fault-injection delta — more drops, more retransmissions — is
     surfaced per metric but never gates the exit code: only simulated time
     does. *)
  let a = snapshot [ sample ~seed:0 ~time:1000. () ] in
  let b =
    snapshot [ sample ~seed:0 ~time:1000. ~dropped:7 ~rpc_retries:21 () ]
  in
  let d = diff_exn a b in
  let metric name =
    List.find
      (fun m -> m.Rundiff.md_metric = name)
      (List.hd d.Rundiff.rd_cases).Rundiff.cd_metrics
  in
  List.iter
    (fun name ->
      let m = metric name in
      Alcotest.(check bool) (name ^ " delta significant") true
        m.Rundiff.md_significant;
      Alcotest.(check bool) (name ^ " direction worse") true
        (m.Rundiff.md_direction = Rundiff.Worse))
    [ "dropped"; "rpc_retries" ];
  Alcotest.(check bool) "advisory only — no exit-1 regression" false
    (Rundiff.significant_regression d);
  (* ...and the deltas are visible in the rendered report. *)
  let buf = Buffer.create 512 in
  let fmt = Format.formatter_of_buffer buf in
  Rundiff.pp_text fmt d;
  Format.pp_print_flush fmt ();
  let text = Buffer.contents buf in
  let contains sub =
    let n = String.length sub and m = String.length text in
    let rec go i = i + n <= m && (String.sub text i n = sub || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "dropped in report" true (contains "dropped");
  Alcotest.(check bool) "rpc_retries in report" true (contains "rpc_retries")

(* --- metadata refusal --- *)

let test_mismatch_refused () =
  let a = base_snapshot () in
  (* same case id recorded under a different driver *)
  let b =
    {
      (snapshot ~driver:"SISCI/SCI"
         [ sample ~seed:0 ~time:1000. (); sample ~seed:1 ~time:1010. ();
           sample ~seed:2 ~time:1020. () ])
      with
      B.bs_meta = Run_meta.v ~git_rev:"fresh" ();
    }
  in
  (match
     Rundiff.diff ~baseline:(Rundiff.Bench a) ~fresh:(Rundiff.Bench b) ()
   with
  | Ok _ -> Alcotest.fail "driver mismatch accepted"
  | Error _ -> ());
  (* --force compares anyway *)
  (match
     Rundiff.diff ~force:true ~baseline:(Rundiff.Bench a)
       ~fresh:(Rundiff.Bench b) ()
   with
  | Ok _ -> ()
  | Error msg -> Alcotest.failf "force did not override: %s" msg);
  (* differing seed lists are apples to oranges too *)
  let b' = snapshot [ sample ~seed:7 ~time:1000. () ] in
  match Rundiff.diff ~baseline:(Rundiff.Bench a) ~fresh:(Rundiff.Bench b') () with
  | Ok _ -> Alcotest.fail "seed-list mismatch accepted"
  | Error _ -> ()

let test_git_rev_exempt () =
  let a = base_snapshot () in
  let b =
    {
      (base_snapshot ()) with
      B.bs_meta = Run_meta.v ~git_rev:"other-revision" ();
    }
  in
  match Rundiff.diff ~baseline:(Rundiff.Bench a) ~fresh:(Rundiff.Bench b) () with
  | Ok _ -> ()
  | Error msg -> Alcotest.failf "git revision participated: %s" msg

let test_mixed_kinds_refused () =
  let a = base_snapshot () in
  let tr =
    Rundiff.Run (Run_meta.empty, Analyze.analyze (Trace.create ()))
  in
  match Rundiff.diff ~baseline:(Rundiff.Bench a) ~fresh:tr () with
  | Ok _ -> Alcotest.fail "bench vs trace accepted"
  | Error _ -> ()

(* --- trace mode, over a real (tiny) run --- *)

let jacobi_trace ~protocol =
  let captured = ref None in
  ignore
    (Dsmpm2_apps.Jacobi.run
       {
         Dsmpm2_apps.Jacobi.default with
         protocol;
         size = 16;
         iterations = 2;
         tie_seed = Some 0;
         observe =
           Some
             (fun dsm ->
               captured := Some dsm;
               Monitor.enable dsm true);
       });
  match !captured with
  | Some dsm -> Monitor.trace dsm
  | None -> Alcotest.fail "jacobi did not expose its runtime"

let test_trace_self_diff_clean () =
  let tr = jacobi_trace ~protocol:"hbrc_mw" in
  let src () = Rundiff.Run (Run_meta.empty, Analyze.analyze tr) in
  match Rundiff.diff ~baseline:(src ()) ~fresh:(src ()) () with
  | Error msg -> Alcotest.failf "diff refused: %s" msg
  | Ok d ->
      Alcotest.(check bool) "stages compared" true (d.Rundiff.rd_stages <> []);
      Alcotest.(check bool) "no regression" false
        (Rundiff.significant_regression d);
      Alcotest.(check (list string)) "no pattern drift" []
        (List.map
           (fun p -> string_of_int p.Rundiff.pd_page)
           d.Rundiff.rd_patterns)

let test_load_source_sniffs () =
  (* a gzipped trace dump loads as Run; a bench snapshot as Bench *)
  let tr = jacobi_trace ~protocol:"hbrc_mw" in
  let path = Filename.temp_file "dsm_trace" ".jsonl.gz" in
  Trace.save_jsonl path tr;
  (match Rundiff.load_source path with
  | Ok (Rundiff.Run _) -> ()
  | Ok (Rundiff.Bench _) -> Alcotest.fail "trace loaded as bench"
  | Error msg -> Alcotest.failf "load_source trace: %s" msg);
  Sys.remove path;
  let bench_path = Filename.temp_file "dsm_macro" ".json" in
  Gzip.write_file bench_path
    (Json.to_string_pretty (B.to_json (base_snapshot ())));
  (match Rundiff.load_source bench_path with
  | Ok (Rundiff.Bench _) -> ()
  | Ok (Rundiff.Run _) -> Alcotest.fail "bench loaded as trace"
  | Error msg -> Alcotest.failf "load_source bench: %s" msg);
  Sys.remove bench_path

let () =
  Alcotest.run "rundiff"
    [
      ( "verdicts",
        [
          Alcotest.test_case "identical runs diff clean" `Quick
            test_identical_is_clean;
          Alcotest.test_case "injected regression detected" `Quick
            test_injected_regression_detected;
          Alcotest.test_case "improvement is not a regression" `Quick
            test_improvement_is_not_a_regression;
          Alcotest.test_case "noise bound suppresses wobble" `Quick
            test_noise_bound_suppresses;
          Alcotest.test_case "traffic deltas report, time gates" `Quick
            test_messages_delta_reported_not_gating;
          Alcotest.test_case "fault metrics advisory" `Quick
            test_fault_metrics_advisory;
        ] );
      ( "metadata",
        [
          Alcotest.test_case "mismatch refused, force overrides" `Quick
            test_mismatch_refused;
          Alcotest.test_case "git revision exempt" `Quick test_git_rev_exempt;
          Alcotest.test_case "mixed kinds refused" `Quick
            test_mixed_kinds_refused;
        ] );
      ( "traces",
        [
          Alcotest.test_case "self-diff clean" `Quick test_trace_self_diff_clean;
          Alcotest.test_case "load_source sniffs kinds" `Quick
            test_load_source_sniffs;
        ] );
    ]

(* The observability layer: typed events, JSONL round-trip, causal span
   linkage across nodes, determinism of the exported trace, and the JSON
   metrics snapshot. *)

open Dsmpm2_sim
open Dsmpm2_net
open Dsmpm2_core
open Dsmpm2_protocols

(* --- typed-event JSONL round-trip --- *)

let sample_events =
  [
    Trace.Fault { node = 1; page = 3; protocol = "li_hudak"; mode = "read" };
    Trace.Page_request
      { node = 0; page = 3; protocol = "li_hudak"; mode = "write"; requester = 1 };
    Trace.Page_send
      { node = 0; page = 3; protocol = "li_hudak"; dst = 1; bytes = 4096; grant = "RW" };
    Trace.Page_install
      { node = 1; page = 3; protocol = "li_hudak"; sender = 0; grant = "R" };
    Trace.Invalidate { node = 2; page = 7; protocol = "hbrc_mw"; sender = 0 };
    Trace.Diff
      {
        node = 0;
        pages = 2;
        page_list = [ 4; 9 ];
        bytes = 96;
        sender = 3;
        release = true;
        protocol = "hbrc_mw";
      };
    Trace.Lock { node = 1; lock = 4; op = "acquire" };
    Trace.Barrier { node = 2; barrier = 0 };
    Trace.Migration { thread = 9; src = 0; dst = 3 };
    Trace.Message { category = "custom"; message = "free-form \"quoted\" text" };
    Trace.Alert
      {
        severity = "critical";
        kind = "deadlock.cycle";
        node = 1;
        detail = "thread 3 (node 1) waits for lock 0";
      };
    Trace.Drop { src = 0; dst = 2; kind = "msg.request" };
    Trace.Blackhole { src = 1; dst = 2; kind = "msg.bulk"; down = 2 };
    Trace.Crash { node = 2; up = Time.of_us 368. };
    Trace.Restart { node = 2 };
    Trace.Rpc_retry { service = "dsm.page_fetch"; src = 0; dst = 2; attempt = 3 };
  ]

let test_event_json_round_trip () =
  List.iteri
    (fun i ev ->
      let at = Time.of_us (float_of_int (i * 10)) in
      let span = if i mod 2 = 0 then i else Trace.no_span in
      let json = Trace.event_to_json ~at ~span ev in
      let line = Json.to_string json in
      match Json.of_string line with
      | Error msg -> Alcotest.failf "event %d: unparseable JSON %s: %s" i line msg
      | Ok parsed -> (
          match Trace.event_of_json parsed with
          | None -> Alcotest.failf "event %d: did not decode from %s" i line
          | Some (at', span', ev') ->
              Alcotest.(check int) "timestamp survives" at at';
              Alcotest.(check int) "span survives" span span';
              Alcotest.(check bool) "event survives" true (ev = ev')))
    sample_events

let test_jsonl_export_shape () =
  let eng = Engine.create () in
  let trace = Trace.create ~enabled:true () in
  List.iter (fun ev -> Trace.emit trace eng ev) sample_events;
  let buf = Buffer.create 256 in
  let fmt = Format.formatter_of_buffer buf in
  Trace.to_jsonl fmt trace;
  Format.pp_print_flush fmt ();
  let lines =
    List.filter (fun l -> l <> "") (String.split_on_char '\n' (Buffer.contents buf))
  in
  Alcotest.(check int) "one line per event" (List.length sample_events)
    (List.length lines);
  List.iter
    (fun line ->
      match Json.of_string line with
      | Error msg -> Alcotest.failf "bad JSONL line %s: %s" line msg
      | Ok json ->
          Alcotest.(check bool) "line decodes to an event" true
            (Trace.event_of_json json <> None))
    lines

(* --- watchdog alerts in the JSONL format --- *)

let contains s sub =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
  n = 0 || go 0

let test_alert_round_trip () =
  (* Every legal severity survives the JSONL round-trip with every field
     intact. *)
  List.iter
    (fun severity ->
      Alcotest.(check bool) "severity is legal" true (Trace.valid_severity severity);
      let ev =
        Trace.Alert
          { severity; kind = "invariant.owner"; node = 3; detail = "page 7: no owner" }
      in
      let json = Trace.event_to_json ~at:(Time.of_us 12.) ~span:Trace.no_span ev in
      match Json.of_string (Json.to_string json) with
      | Error msg -> Alcotest.failf "alert (%s) unparseable: %s" severity msg
      | Ok parsed -> (
          match Trace.event_of_json parsed with
          | Some (at, span, (Trace.Alert a as ev')) ->
              Alcotest.(check int) "timestamp survives" (Time.of_us 12.) at;
              Alcotest.(check int) "span survives" Trace.no_span span;
              Alcotest.(check string) "severity survives" severity a.severity;
              Alcotest.(check string) "kind survives" "invariant.owner" a.kind;
              Alcotest.(check int) "node survives" 3 a.node;
              Alcotest.(check string) "detail survives" "page 7: no owner" a.detail;
              Alcotest.(check bool) "whole event equal" true (ev = ev')
          | _ -> Alcotest.failf "alert (%s) did not decode" severity))
    Trace.alert_severities

let test_alert_rejects_bad_severity () =
  let ev =
    Trace.Alert { severity = "warning"; kind = "thrash.page"; node = 0; detail = "d" }
  in
  let json = Trace.event_to_json ~at:0 ~span:Trace.no_span ev in
  let patched =
    match json with
    | Json.Obj kvs ->
        Json.Obj
          (List.map
             (fun (k, v) -> if k = "severity" then (k, Json.String "fatal") else (k, v))
             kvs)
    | _ -> Alcotest.fail "alert JSON is not an object"
  in
  Alcotest.(check bool) "made-up severity rejected" true
    (Trace.event_of_json patched = None);
  match Trace.of_jsonl (Json.to_string patched) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "of_jsonl accepted an alert with a made-up severity"

(* --- QCheck: mixed event streams round-trip through JSONL --- *)

let gen_event =
  let open QCheck.Gen in
  let name = string_size ~gen:(char_range 'a' 'z') (int_range 1 8) in
  let text =
    string_size ~gen:(oneofl [ 'a'; 'z'; ' '; '"'; '\\'; '/' ]) (int_range 0 12)
  in
  oneof
    [
      (let* node = int_bound 7 and* page = int_bound 99 and* protocol = name in
       let* mode = oneofl [ "read"; "write" ] in
       return (Trace.Fault { node; page; protocol; mode }));
      (let* node = int_bound 7 and* lock = int_bound 9 in
       let* op = oneofl [ "acquire"; "granted"; "released" ] in
       return (Trace.Lock { node; lock; op }));
      (let* node = int_bound 7 and* barrier = int_bound 9 in
       return (Trace.Barrier { node; barrier }));
      (let* thread = int_bound 31 and* src = int_bound 7 and* dst = int_bound 7 in
       return (Trace.Migration { thread; src; dst }));
      (let* category = name and* message = text in
       return (Trace.Message { category; message }));
      (let* severity = oneofl Trace.alert_severities in
       let* kind = name and* node = int_bound 7 and* detail = text in
       return (Trace.Alert { severity; kind; node; detail }));
      (let* src = int_bound 7 and* dst = int_bound 7 and* kind = name in
       return (Trace.Drop { src; dst; kind }));
      (let* src = int_bound 7 and* dst = int_bound 7 and* kind = name in
       let* down = int_bound 7 in
       return (Trace.Blackhole { src; dst; kind; down }));
      (let* node = int_bound 7 and* up_us = int_bound 5000 in
       return (Trace.Crash { node; up = Time.of_us (float_of_int up_us) }));
      (let* node = int_bound 7 in
       return (Trace.Restart { node }));
      (let* service = name and* src = int_bound 7 and* dst = int_bound 7 in
       let* attempt = int_range 1 9 in
       return (Trace.Rpc_retry { service; src; dst; attempt }));
    ]

let prop_jsonl_round_trip =
  QCheck.Test.make ~name:"mixed event streams round-trip through JSONL" ~count:100
    (QCheck.make
       ~print:(fun evs -> Printf.sprintf "<%d events>" (List.length evs))
       QCheck.Gen.(list_size (int_range 0 20) gen_event))
    (fun evs ->
      let eng = Engine.create () in
      let tr = Trace.create ~enabled:true () in
      List.iter (fun ev -> Trace.emit tr eng ev) evs;
      let buf = Buffer.create 256 in
      let fmt = Format.formatter_of_buffer buf in
      Trace.to_jsonl fmt tr;
      Format.pp_print_flush fmt ();
      match Trace.of_jsonl (Buffer.contents buf) with
      | Error _ -> false
      | Ok tr' ->
          List.map snd (Trace.events tr') = List.map snd (Trace.events tr))

(* --- span linkage: one cold li_hudak read fault on 2 nodes --- *)

let cold_fault_dsm () =
  let dsm = Dsm.create ~nodes:2 ~driver:Driver.bip_myrinet () in
  let ids = Builtin.register_all dsm in
  Monitor.enable dsm true;
  let x = Dsm.malloc dsm ~protocol:ids.Builtin.li_hudak ~home:(Dsm.On_node 1) 8 in
  ignore (Dsm.spawn dsm ~node:0 (fun () -> ignore (Dsm.read_int dsm x)));
  Dsm.run dsm;
  dsm

let test_span_links_cold_fault () =
  let dsm = cold_fault_dsm () in
  let trace = Monitor.trace dsm in
  (* Exactly one fault, so exactly one span; every stage of the access must
     carry it, across both nodes. *)
  let faults = Trace.by_category trace "fault" in
  Alcotest.(check int) "one fault" 1 (List.length faults);
  let span = (List.hd faults).Trace.span in
  Alcotest.(check bool) "fault has a real span" true (span <> Trace.no_span);
  let chain = Trace.by_span trace span in
  let category (e, _) = e.Trace.category in
  let has cat = List.exists (fun x -> category x = cat) chain in
  Alcotest.(check bool) "request in span" true (has "request");
  Alcotest.(check bool) "send in span" true (has "page.send");
  Alcotest.(check bool) "install in span" true (has "page");
  (* The request is served on node 1 while the fault is on node 0: the span
     crosses the node boundary. *)
  let nodes =
    List.sort_uniq compare
      (List.filter (fun n -> n >= 0) (List.map (fun (_, ev) -> Trace.event_node ev) chain))
  in
  Alcotest.(check (list int)) "span crosses nodes" [ 0; 1 ] nodes;
  (* Causal order within the span: fault <= request <= send <= install. *)
  let at cat =
    match List.find_opt (fun x -> category x = cat) chain with
    | Some (e, _) -> e.Trace.at
    | None -> Alcotest.failf "missing %s event" cat
  in
  Alcotest.(check bool) "fault before request" true (at "fault" <= at "request");
  Alcotest.(check bool) "request before send" true (at "request" <= at "page.send");
  Alcotest.(check bool) "send before install" true (at "page.send" <= at "page")

(* --- determinism: same seed, same exported trace --- *)

let exported_trace () =
  let dsm = cold_fault_dsm () in
  let buf = Buffer.create 1024 in
  let fmt = Format.formatter_of_buffer buf in
  Trace.to_jsonl fmt (Monitor.trace dsm);
  Format.pp_print_flush fmt ();
  Buffer.contents buf

let test_trace_deterministic () =
  Alcotest.(check string) "same seed, same trace" (exported_trace ()) (exported_trace ())

let test_chrome_export_valid () =
  let dsm = cold_fault_dsm () in
  let json = Trace.chrome_json (Monitor.trace dsm) in
  (* The export must survive its own parser and keep the trace_event
     required fields on every event. *)
  match Json.of_string (Json.to_string json) with
  | Error msg -> Alcotest.failf "chrome export is not valid JSON: %s" msg
  | Ok parsed ->
      let events =
        match Json.member "traceEvents" parsed with
        | Some (Json.List evs) -> evs
        | _ -> Alcotest.fail "no traceEvents array"
      in
      Alcotest.(check bool) "has events" true (events <> []);
      List.iter
        (fun ev ->
          List.iter
            (fun field ->
              Alcotest.(check bool) ("event has " ^ field) true
                (Json.member field ev <> None))
            [ "name"; "ph"; "ts"; "pid"; "args" ])
        events

(* --- metrics snapshot --- *)

let test_metrics_snapshot () =
  let dsm = cold_fault_dsm () in
  let json = Monitor.to_json ~experiment:"cold_fault" dsm in
  (match Json.member "experiment" json with
  | Some (Json.String s) -> Alcotest.(check string) "experiment label" "cold_fault" s
  | _ -> Alcotest.fail "missing experiment label");
  (* The labeled registry recorded the read fault on node 0 under li_hudak. *)
  let m = Monitor.metrics dsm in
  Alcotest.(check int) "read fault counted" 1
    (Metrics.count m ~node:0 ~protocol:"li_hudak" Instrument.m_read_faults);
  Alcotest.(check int) "page send counted" 1
    (Metrics.count m ~node:1 ~protocol:"li_hudak" Instrument.m_pages_sent);
  Alcotest.(check bool) "fault latency observed" true
    (Metrics.percentile m ~node:0 ~protocol:"li_hudak" Instrument.m_fault_latency 99.
    > 0);
  (* And the snapshot round-trips through the JSON printer/parser. *)
  match Json.of_string (Json.to_string json) with
  | Error msg -> Alcotest.failf "snapshot is not valid JSON: %s" msg
  | Ok _ -> ()

let test_prometheus_export () =
  let dsm = cold_fault_dsm () in
  let buf = Buffer.create 1024 in
  let fmt = Format.formatter_of_buffer buf in
  Metrics.to_prometheus fmt (Monitor.metrics dsm);
  Format.pp_print_flush fmt ();
  let text = Buffer.contents buf in
  let lines = String.split_on_char '\n' text in
  let has l = List.mem l lines in
  (* Counters: sanitized name, _total suffix, node/protocol labels. *)
  Alcotest.(check bool) "counter TYPE line" true
    (has "# TYPE dsm_fault_read_total counter");
  Alcotest.(check bool) "read-fault sample" true
    (has {|dsm_fault_read_total{node="0",protocol="li_hudak"} 1|});
  Alcotest.(check bool) "page-send sample" true
    (has {|dsm_page_sent_total{node="1",protocol="li_hudak"} 1|});
  (* Durations: true histograms in microseconds with cumulative buckets
     and _sum/_count — histogram_quantile-aggregatable across nodes. *)
  Alcotest.(check bool) "histogram TYPE line" true
    (has "# TYPE dsm_fault_latency_us histogram");
  Alcotest.(check bool) "cumulative bucket sample" true
    (List.exists
       (fun l ->
         contains l "dsm_fault_latency_us_bucket{" && contains l {|le="|})
       lines);
  Alcotest.(check bool) "+Inf bucket closes the histogram" true
    (has {|dsm_fault_latency_us_bucket{node="0",protocol="li_hudak",le="+Inf"} 1|});
  Alcotest.(check bool) "count sample" true
    (has {|dsm_fault_latency_us_count{node="0",protocol="li_hudak"} 1|});
  (* Names already starting with dsm_ are not double-prefixed. *)
  Alcotest.(check bool) "no doubled dsm_ prefix" false (contains text "dsm_dsm_")

(* --- Monitor.summary: deterministic ordering on tied counts --- *)

let test_summary_tie_order () =
  let dsm = Dsm.create ~nodes:1 ~driver:Driver.bip_myrinet () in
  Monitor.enable dsm true;
  (* Three categories, one event each: a three-way tie that hashtable
     iteration order used to break arbitrarily. *)
  List.iter
    (fun cat -> Monitor.record dsm ~category:cat "x")
    [ "zeta"; "alpha"; "mid" ];
  Monitor.record dsm ~category:"busy" "x";
  Monitor.record dsm ~category:"busy" "x";
  let order = List.map (fun l -> l.Monitor.category) (Monitor.summary dsm) in
  Alcotest.(check (list string))
    "count descending, name ascending on ties"
    [ "busy"; "alpha"; "mid"; "zeta" ]
    order

(* --- flight recorder: bounded ring, eviction accounting, autodump --- *)

let test_ring_eviction_bounds () =
  let eng = Engine.create () in
  let tr = Trace.create ~enabled:true () in
  Trace.set_capacity tr 64;
  Alcotest.(check (option int)) "capacity readable" (Some 64) (Trace.capacity tr);
  for i = 0 to 199 do
    Trace.emit tr eng (Trace.Barrier { node = 0; barrier = i })
  done;
  Alcotest.(check int) "ring holds exactly the capacity" 64 (Trace.length tr);
  Alcotest.(check int) "every emit was recorded" 200 (Trace.recorded tr);
  Alcotest.(check int) "the rest were evicted" 136 (Trace.evicted tr);
  (* The survivors are the newest 64, still in chronological order. *)
  let barriers =
    List.filter_map
      (fun (_, ev) ->
        match ev with Trace.Barrier { barrier; _ } -> Some barrier | _ -> None)
      (Trace.events tr)
  in
  Alcotest.(check (list int)) "newest events kept, in order"
    (List.init 64 (fun i -> 136 + i))
    barriers

let test_ring_shrink_drops_oldest () =
  let eng = Engine.create () in
  let tr = Trace.create ~enabled:true () in
  for i = 0 to 9 do
    Trace.emit tr eng (Trace.Barrier { node = 0; barrier = i })
  done;
  Trace.set_capacity tr 3;
  Alcotest.(check int) "shrunk to the new bound" 3 (Trace.length tr);
  Alcotest.(check int) "evictions counted" 7 (Trace.evicted tr);
  let barriers =
    List.filter_map
      (fun (_, ev) ->
        match ev with Trace.Barrier { barrier; _ } -> Some barrier | _ -> None)
      (Trace.events tr)
  in
  Alcotest.(check (list int)) "newest three kept" [ 7; 8; 9 ] barriers

let test_recent_cursor_across_eviction () =
  let eng = Engine.create () in
  let tr = Trace.create ~enabled:true () in
  Trace.set_capacity tr 4;
  for i = 0 to 5 do
    Trace.emit tr eng (Trace.Barrier { node = 0; barrier = i })
  done;
  (* Cursor 0 predates the eviction horizon: overwritten events are silently
     skipped, not resurrected. *)
  Alcotest.(check int) "clamped to what is stored" 4
    (List.length (Trace.recent tr ~since:0));
  Alcotest.(check int) "cursor counts recorded events" 2
    (List.length (Trace.recent tr ~since:4));
  Alcotest.(check int) "caught-up cursor sees nothing" 0
    (List.length (Trace.recent tr ~since:6))

let test_recent_no_fresh_allocates_nothing () =
  let eng = Engine.create () in
  let tr = Trace.create ~enabled:true () in
  Trace.set_capacity tr 128;
  for i = 0 to 499 do
    Trace.emit tr eng (Trace.Barrier { node = 0; barrier = i })
  done;
  let since = Trace.recorded tr in
  let before = Gc.minor_words () in
  for _ = 1 to 1000 do
    ignore (Trace.recent tr ~since)
  done;
  let after = Gc.minor_words () in
  Alcotest.(check bool) "caught-up polling is allocation-free" true
    (after -. before < 256.)

let test_autodump_on_critical_alert () =
  let eng = Engine.create () in
  let tr = Trace.create ~enabled:true () in
  Trace.set_capacity tr 16;
  let path = Filename.temp_file "dsm_autodump" ".jsonl.gz" in
  Trace.set_autodump tr path;
  Alcotest.(check bool) "armed but not fired" false (Trace.autodump_fired tr);
  for i = 0 to 39 do
    Trace.emit tr eng (Trace.Barrier { node = 0; barrier = i })
  done;
  Trace.emit tr eng
    (Trace.Alert
       { severity = "warning"; kind = "thrash.page"; node = 0; detail = "w" });
  Alcotest.(check bool) "warnings do not trip the recorder" false
    (Trace.autodump_fired tr);
  Trace.emit tr eng
    (Trace.Alert
       { severity = "critical"; kind = "deadlock.stall"; node = 1; detail = "c" });
  Alcotest.(check bool) "critical alert dumps" true (Trace.autodump_fired tr);
  (* The dump is the ring at the instant of the alert, re-loadable, ending
     with the alert itself. *)
  (match Trace.load_jsonl path with
  | Error msg -> Alcotest.failf "autodump unreadable: %s" msg
  | Ok dumped ->
      Alcotest.(check int) "dump is the ring" 16 (Trace.length dumped);
      let last =
        match List.rev (Trace.events dumped) with
        | (_, ev) :: _ -> ev
        | [] -> Alcotest.fail "empty dump"
      in
      Alcotest.(check bool) "last event is the critical alert" true
        (match last with
        | Trace.Alert { severity = "critical"; kind = "deadlock.stall"; _ } ->
            true
        | _ -> false));
  (* Second critical alert while fired: no re-dump (the file keeps the first
     incident). *)
  Sys.remove path;
  Trace.emit tr eng
    (Trace.Alert
       { severity = "critical"; kind = "deadlock.stall"; node = 1; detail = "again" });
  Alcotest.(check bool) "disarmed after firing" false (Sys.file_exists path)

(* --- Monitor.to_prometheus: runtime + network + derived counters --- *)

let test_monitor_prometheus_export () =
  let dsm = cold_fault_dsm () in
  let buf = Buffer.create 4096 in
  let fmt = Format.formatter_of_buffer buf in
  Monitor.to_prometheus fmt dsm;
  Format.pp_print_flush fmt ();
  let text = Buffer.contents buf in
  let lines = String.split_on_char '\n' text in
  let has l = List.mem l lines in
  (* The runtime registry is still there... *)
  Alcotest.(check bool) "runtime counter present" true
    (has {|dsm_fault_read_total{node="0",protocol="li_hudak"} 1|});
  (* ...plus the derived network and trace gauges of Monitor.to_json. *)
  Alcotest.(check bool) "loopback counter" true
    (List.exists (fun l -> contains l "dsm_net_loopback_total") lines);
  Alcotest.(check bool) "drop counter" true
    (List.exists (fun l -> contains l "dsm_net_dropped_total") lines);
  Alcotest.(check bool) "per-kind drop counter" true
    (List.exists (fun l -> contains l "dsm_msg_request_dropped_total") lines);
  Alcotest.(check bool) "trace eviction counter" true
    (List.exists (fun l -> contains l "dsm_trace_evicted_total") lines);
  Alcotest.(check bool) "no doubled dsm_ prefix" false (contains text "dsm_dsm_")

let test_monitor_json_network_fields () =
  let dsm = cold_fault_dsm () in
  let json = Monitor.to_json ~experiment:"cold_fault" dsm in
  let net =
    match Json.member "network" json with
    | Some n -> n
    | None -> Alcotest.fail "no network object"
  in
  List.iter
    (fun field ->
      Alcotest.(check bool) ("network has " ^ field) true
        (Json.member field net <> None))
    [ "loopback"; "dropped"; "dropped_by_kind" ];
  let tr =
    match Json.member "trace" json with
    | Some t -> t
    | None -> Alcotest.fail "no trace object"
  in
  List.iter
    (fun field ->
      Alcotest.(check bool) ("trace has " ^ field) true
        (Json.member field tr <> None))
    [ "events"; "recorded"; "evicted"; "capacity" ]

let test_disabled_monitor_no_events () =
  let dsm = Dsm.create ~nodes:2 ~driver:Driver.bip_myrinet () in
  let ids = Builtin.register_all dsm in
  let x = Dsm.malloc dsm ~protocol:ids.Builtin.li_hudak ~home:(Dsm.On_node 1) 8 in
  ignore (Dsm.spawn dsm ~node:0 (fun () -> ignore (Dsm.read_int dsm x)));
  Dsm.run dsm;
  Alcotest.(check int) "no events recorded" 0 (Trace.length (Monitor.trace dsm));
  Alcotest.(check int) "spans not minted" 0
    (List.length (Trace.by_span (Monitor.trace dsm) 0))

let () =
  Alcotest.run "observability"
    [
      ( "jsonl",
        [
          Alcotest.test_case "event round-trip" `Quick test_event_json_round_trip;
          Alcotest.test_case "export shape" `Quick test_jsonl_export_shape;
          Alcotest.test_case "alert round-trip" `Quick test_alert_round_trip;
          Alcotest.test_case "alert rejects bad severity" `Quick
            test_alert_rejects_bad_severity;
          QCheck_alcotest.to_alcotest prop_jsonl_round_trip;
        ] );
      ( "spans",
        [
          Alcotest.test_case "cold fault linkage" `Quick test_span_links_cold_fault;
          Alcotest.test_case "disabled records nothing" `Quick
            test_disabled_monitor_no_events;
        ] );
      ( "determinism",
        [ Alcotest.test_case "same seed same trace" `Quick test_trace_deterministic ] );
      ( "exporters",
        [
          Alcotest.test_case "chrome trace valid" `Quick test_chrome_export_valid;
          Alcotest.test_case "metrics snapshot" `Quick test_metrics_snapshot;
          Alcotest.test_case "prometheus text format" `Quick test_prometheus_export;
          Alcotest.test_case "monitor prometheus export" `Quick
            test_monitor_prometheus_export;
          Alcotest.test_case "monitor json network fields" `Quick
            test_monitor_json_network_fields;
          Alcotest.test_case "summary tie order" `Quick test_summary_tie_order;
        ] );
      ( "flight recorder",
        [
          Alcotest.test_case "ring eviction bounds" `Quick test_ring_eviction_bounds;
          Alcotest.test_case "shrink drops oldest" `Quick
            test_ring_shrink_drops_oldest;
          Alcotest.test_case "recent cursor across eviction" `Quick
            test_recent_cursor_across_eviction;
          Alcotest.test_case "caught-up recent allocates nothing" `Quick
            test_recent_no_fresh_allocates_nothing;
          Alcotest.test_case "autodump on critical alert" `Quick
            test_autodump_on_critical_alert;
        ] );
    ]

(* The observability layer: typed events, JSONL round-trip, causal span
   linkage across nodes, determinism of the exported trace, and the JSON
   metrics snapshot. *)

open Dsmpm2_sim
open Dsmpm2_net
open Dsmpm2_core
open Dsmpm2_protocols

(* --- typed-event JSONL round-trip --- *)

let sample_events =
  [
    Trace.Fault { node = 1; page = 3; protocol = "li_hudak"; mode = "read" };
    Trace.Page_request
      { node = 0; page = 3; protocol = "li_hudak"; mode = "write"; requester = 1 };
    Trace.Page_send
      { node = 0; page = 3; protocol = "li_hudak"; dst = 1; bytes = 4096; grant = "RW" };
    Trace.Page_install
      { node = 1; page = 3; protocol = "li_hudak"; sender = 0; grant = "R" };
    Trace.Invalidate { node = 2; page = 7; protocol = "hbrc_mw"; sender = 0 };
    Trace.Diff
      {
        node = 0;
        pages = 2;
        page_list = [ 4; 9 ];
        bytes = 96;
        sender = 3;
        release = true;
        protocol = "hbrc_mw";
      };
    Trace.Lock { node = 1; lock = 4; op = "acquire" };
    Trace.Barrier { node = 2; barrier = 0 };
    Trace.Migration { thread = 9; src = 0; dst = 3 };
    Trace.Message { category = "custom"; message = "free-form \"quoted\" text" };
  ]

let test_event_json_round_trip () =
  List.iteri
    (fun i ev ->
      let at = Time.of_us (float_of_int (i * 10)) in
      let span = if i mod 2 = 0 then i else Trace.no_span in
      let json = Trace.event_to_json ~at ~span ev in
      let line = Json.to_string json in
      match Json.of_string line with
      | Error msg -> Alcotest.failf "event %d: unparseable JSON %s: %s" i line msg
      | Ok parsed -> (
          match Trace.event_of_json parsed with
          | None -> Alcotest.failf "event %d: did not decode from %s" i line
          | Some (at', span', ev') ->
              Alcotest.(check int) "timestamp survives" at at';
              Alcotest.(check int) "span survives" span span';
              Alcotest.(check bool) "event survives" true (ev = ev')))
    sample_events

let test_jsonl_export_shape () =
  let eng = Engine.create () in
  let trace = Trace.create ~enabled:true () in
  List.iter (fun ev -> Trace.emit trace eng ev) sample_events;
  let buf = Buffer.create 256 in
  let fmt = Format.formatter_of_buffer buf in
  Trace.to_jsonl fmt trace;
  Format.pp_print_flush fmt ();
  let lines =
    List.filter (fun l -> l <> "") (String.split_on_char '\n' (Buffer.contents buf))
  in
  Alcotest.(check int) "one line per event" (List.length sample_events)
    (List.length lines);
  List.iter
    (fun line ->
      match Json.of_string line with
      | Error msg -> Alcotest.failf "bad JSONL line %s: %s" line msg
      | Ok json ->
          Alcotest.(check bool) "line decodes to an event" true
            (Trace.event_of_json json <> None))
    lines

(* --- span linkage: one cold li_hudak read fault on 2 nodes --- *)

let cold_fault_dsm () =
  let dsm = Dsm.create ~nodes:2 ~driver:Driver.bip_myrinet () in
  let ids = Builtin.register_all dsm in
  Monitor.enable dsm true;
  let x = Dsm.malloc dsm ~protocol:ids.Builtin.li_hudak ~home:(Dsm.On_node 1) 8 in
  ignore (Dsm.spawn dsm ~node:0 (fun () -> ignore (Dsm.read_int dsm x)));
  Dsm.run dsm;
  dsm

let test_span_links_cold_fault () =
  let dsm = cold_fault_dsm () in
  let trace = Monitor.trace dsm in
  (* Exactly one fault, so exactly one span; every stage of the access must
     carry it, across both nodes. *)
  let faults = Trace.by_category trace "fault" in
  Alcotest.(check int) "one fault" 1 (List.length faults);
  let span = (List.hd faults).Trace.span in
  Alcotest.(check bool) "fault has a real span" true (span <> Trace.no_span);
  let chain = Trace.by_span trace span in
  let category (e, _) = e.Trace.category in
  let has cat = List.exists (fun x -> category x = cat) chain in
  Alcotest.(check bool) "request in span" true (has "request");
  Alcotest.(check bool) "send in span" true (has "page.send");
  Alcotest.(check bool) "install in span" true (has "page");
  (* The request is served on node 1 while the fault is on node 0: the span
     crosses the node boundary. *)
  let nodes =
    List.sort_uniq compare
      (List.filter (fun n -> n >= 0) (List.map (fun (_, ev) -> Trace.event_node ev) chain))
  in
  Alcotest.(check (list int)) "span crosses nodes" [ 0; 1 ] nodes;
  (* Causal order within the span: fault <= request <= send <= install. *)
  let at cat =
    match List.find_opt (fun x -> category x = cat) chain with
    | Some (e, _) -> e.Trace.at
    | None -> Alcotest.failf "missing %s event" cat
  in
  Alcotest.(check bool) "fault before request" true (at "fault" <= at "request");
  Alcotest.(check bool) "request before send" true (at "request" <= at "page.send");
  Alcotest.(check bool) "send before install" true (at "page.send" <= at "page")

(* --- determinism: same seed, same exported trace --- *)

let exported_trace () =
  let dsm = cold_fault_dsm () in
  let buf = Buffer.create 1024 in
  let fmt = Format.formatter_of_buffer buf in
  Trace.to_jsonl fmt (Monitor.trace dsm);
  Format.pp_print_flush fmt ();
  Buffer.contents buf

let test_trace_deterministic () =
  Alcotest.(check string) "same seed, same trace" (exported_trace ()) (exported_trace ())

let test_chrome_export_valid () =
  let dsm = cold_fault_dsm () in
  let json = Trace.chrome_json (Monitor.trace dsm) in
  (* The export must survive its own parser and keep the trace_event
     required fields on every event. *)
  match Json.of_string (Json.to_string json) with
  | Error msg -> Alcotest.failf "chrome export is not valid JSON: %s" msg
  | Ok parsed ->
      let events =
        match Json.member "traceEvents" parsed with
        | Some (Json.List evs) -> evs
        | _ -> Alcotest.fail "no traceEvents array"
      in
      Alcotest.(check bool) "has events" true (events <> []);
      List.iter
        (fun ev ->
          List.iter
            (fun field ->
              Alcotest.(check bool) ("event has " ^ field) true
                (Json.member field ev <> None))
            [ "name"; "ph"; "ts"; "pid"; "args" ])
        events

(* --- metrics snapshot --- *)

let test_metrics_snapshot () =
  let dsm = cold_fault_dsm () in
  let json = Monitor.to_json ~experiment:"cold_fault" dsm in
  (match Json.member "experiment" json with
  | Some (Json.String s) -> Alcotest.(check string) "experiment label" "cold_fault" s
  | _ -> Alcotest.fail "missing experiment label");
  (* The labeled registry recorded the read fault on node 0 under li_hudak. *)
  let m = Monitor.metrics dsm in
  Alcotest.(check int) "read fault counted" 1
    (Metrics.count m ~node:0 ~protocol:"li_hudak" Instrument.m_read_faults);
  Alcotest.(check int) "page send counted" 1
    (Metrics.count m ~node:1 ~protocol:"li_hudak" Instrument.m_pages_sent);
  Alcotest.(check bool) "fault latency observed" true
    (Metrics.percentile m ~node:0 ~protocol:"li_hudak" Instrument.m_fault_latency 99.
    > 0);
  (* And the snapshot round-trips through the JSON printer/parser. *)
  match Json.of_string (Json.to_string json) with
  | Error msg -> Alcotest.failf "snapshot is not valid JSON: %s" msg
  | Ok _ -> ()

let test_disabled_monitor_no_events () =
  let dsm = Dsm.create ~nodes:2 ~driver:Driver.bip_myrinet () in
  let ids = Builtin.register_all dsm in
  let x = Dsm.malloc dsm ~protocol:ids.Builtin.li_hudak ~home:(Dsm.On_node 1) 8 in
  ignore (Dsm.spawn dsm ~node:0 (fun () -> ignore (Dsm.read_int dsm x)));
  Dsm.run dsm;
  Alcotest.(check int) "no events recorded" 0 (Trace.length (Monitor.trace dsm));
  Alcotest.(check int) "spans not minted" 0
    (List.length (Trace.by_span (Monitor.trace dsm) 0))

let () =
  Alcotest.run "observability"
    [
      ( "jsonl",
        [
          Alcotest.test_case "event round-trip" `Quick test_event_json_round_trip;
          Alcotest.test_case "export shape" `Quick test_jsonl_export_shape;
        ] );
      ( "spans",
        [
          Alcotest.test_case "cold fault linkage" `Quick test_span_links_cold_fault;
          Alcotest.test_case "disabled records nothing" `Quick
            test_disabled_monitor_no_events;
        ] );
      ( "determinism",
        [ Alcotest.test_case "same seed same trace" `Quick test_trace_deterministic ] );
      ( "exporters",
        [
          Alcotest.test_case "chrome trace valid" `Quick test_chrome_export_valid;
          Alcotest.test_case "metrics snapshot" `Quick test_metrics_snapshot;
        ] );
    ]

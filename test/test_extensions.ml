(* Tests of the features beyond the minimal reproduction: post-mortem
   monitoring, protocol switching, allocation attributes, the extra
   protocols (fixed manager, hybrid) and the LU kernel. *)

open Dsmpm2_sim
open Dsmpm2_net
open Dsmpm2_mem
open Dsmpm2_core
open Dsmpm2_protocols
open Dsmpm2_apps

let make ?(nodes = 4) ?(driver = Driver.bip_myrinet) () =
  let dsm = Dsm.create ~nodes ~driver () in
  let ids = Builtin.register_all dsm in
  let extras = Builtin.register_extras dsm in
  (dsm, ids, extras)

let run_one dsm ~node f =
  ignore (Dsm.spawn dsm ~node f);
  Dsm.run dsm

(* --- monitoring --- *)

let test_monitor_records_protocol_events () =
  let dsm, _, _ = make ~nodes:2 () in
  Monitor.enable dsm true;
  let x = Dsm.malloc dsm ~home:(Dsm.On_node 1) 8 in
  let lock = Dsm.lock_create dsm () in
  run_one dsm ~node:0 (fun () ->
      Dsm.with_lock dsm lock (fun () -> Dsm.write_int dsm x 3));
  let categories = List.map (fun l -> l.Monitor.category) (Monitor.summary dsm) in
  List.iter
    (fun c ->
      Alcotest.(check bool) ("category " ^ c ^ " present") true (List.mem c categories))
    [ "fault"; "request"; "page"; "lock" ];
  Alcotest.(check bool) "report prints" true
    (String.length (Format.asprintf "%a" Monitor.report dsm) > 0)

let test_monitor_disabled_records_nothing () =
  let dsm, _, _ = make ~nodes:2 () in
  let x = Dsm.malloc dsm ~home:(Dsm.On_node 1) 8 in
  run_one dsm ~node:0 (fun () -> Dsm.write_int dsm x 3);
  Alcotest.(check int) "no events" 0 (Trace.length (Monitor.trace dsm))

(* --- attrs --- *)

let test_malloc_attr () =
  let dsm, ids, _ = make () in
  let a = Dsm.attr ~protocol:ids.Builtin.hbrc_mw ~home:(Dsm.On_node 2) () in
  let addr = Dsm.malloc_attr dsm a 8 in
  let page = List.hd (Dsm.region_pages dsm ~addr ~size:8) in
  let e = Runtime.entry dsm ~node:0 ~page in
  Alcotest.(check int) "attr protocol used" ids.Builtin.hbrc_mw e.Page_table.protocol;
  Alcotest.(check int) "attr home used" 2 e.Page_table.home

(* --- switch_protocol --- *)

let test_switch_protocol_moves_data_and_id () =
  let dsm, ids, _ = make () in
  let x = Dsm.malloc dsm ~protocol:ids.Builtin.li_hudak ~home:(Dsm.On_node 0) 8 in
  (* write from node 2: li_hudak migrates the page (owner = 2) *)
  run_one dsm ~node:2 (fun () -> Dsm.write_int dsm x 17);
  Dsm.switch_protocol dsm ~addr:x ~size:8 ~protocol:ids.Builtin.migrate_thread;
  let page = List.hd (Dsm.region_pages dsm ~addr:x ~size:8) in
  for node = 0 to 3 do
    let e = Runtime.entry dsm ~node ~page in
    Alcotest.(check int) "new protocol installed" ids.Builtin.migrate_thread
      e.Page_table.protocol;
    Alcotest.(check int) "owner reset to home" 0 e.Page_table.prob_owner
  done;
  (* the authoritative value moved back to the home *)
  Alcotest.(check int) "data consolidated at home" 17 (Dsm.unsafe_peek dsm ~node:0 x);
  (* and the new protocol drives subsequent accesses *)
  let landed = ref (-1) in
  run_one dsm ~node:3 (fun () ->
      ignore (Dsm.read_int dsm x);
      landed := Dsm.self_node dsm);
  Alcotest.(check int) "thread migrated under new protocol" 0 !landed

let test_switch_protocol_rejects_unflushed_twin () =
  let dsm, ids, _ = make () in
  let x = Dsm.malloc dsm ~protocol:ids.Builtin.hbrc_mw ~home:(Dsm.On_node 0) 8 in
  let lock = Dsm.lock_create dsm ~protocol:ids.Builtin.hbrc_mw () in
  (* leave a twin behind: write inside a lock and switch before release *)
  ignore
    (Dsm.spawn dsm ~node:1 (fun () ->
         Dsm.lock_acquire dsm lock;
         Dsm.write_int dsm x 5
         (* no release: twin stays *)));
  Dsm.run dsm;
  Alcotest.(check bool) "raises on unflushed twin" true
    (try
       Dsm.switch_protocol dsm ~addr:x ~size:8 ~protocol:ids.Builtin.li_hudak;
       false
     with Invalid_argument _ -> true)

let test_switch_protocol_end_to_end () =
  (* li_hudak -> hbrc_mw mid-program, with a barrier as the quiescence
     point; counters must survive the switch. *)
  let dsm, ids, _ = make ~nodes:2 () in
  let x = Dsm.malloc dsm ~protocol:ids.Builtin.li_hudak ~home:(Dsm.On_node 0) 8 in
  let lock = Dsm.lock_create dsm ~protocol:ids.Builtin.hbrc_mw () in
  let phase1 = Dsm.barrier_create dsm ~protocol:ids.Builtin.li_hudak ~parties:2 () in
  let switched = ref false in
  let worker _node () =
    for _ = 1 to 3 do
      Dsm.with_lock dsm lock (fun () ->
          Dsm.write_int dsm x (Dsm.read_int dsm x + 1))
    done;
    Dsm.barrier_wait dsm phase1;
    if not !switched then begin
      switched := true;
      Dsm.switch_protocol dsm ~addr:x ~size:8 ~protocol:ids.Builtin.hbrc_mw
    end;
    Dsm.barrier_wait dsm phase1;
    for _ = 1 to 3 do
      Dsm.with_lock dsm lock (fun () ->
          Dsm.write_int dsm x (Dsm.read_int dsm x + 1))
    done
  in
  ignore (Dsm.spawn dsm ~node:0 (worker 0));
  ignore (Dsm.spawn dsm ~node:1 (worker 1));
  Dsm.run dsm;
  (* final flush: hbrc keeps the reference at the home *)
  Alcotest.(check int) "12 increments across the switch" 12
    (Dsm.unsafe_peek dsm ~node:0 x)

(* --- li_hudak_fixed --- *)

let test_fixed_manager_counter () =
  let dsm, _, extras = make () in
  let x = Dsm.malloc dsm ~protocol:extras.Builtin.li_hudak_fixed ~home:(Dsm.On_node 0) 8 in
  let lock = Dsm.lock_create dsm () in
  let threads =
    List.init 4 (fun node ->
        Dsm.spawn dsm ~node (fun () ->
            for _ = 1 to 5 do
              Dsm.with_lock dsm lock (fun () ->
                  Dsm.write_int dsm x (Dsm.read_int dsm x + 1))
            done))
  in
  Dsm.run dsm;
  ignore threads;
  let rec owner n =
    if Dsm.unsafe_rights dsm ~node:n ~addr:x = Access.Read_write then n else owner (n + 1)
  in
  Alcotest.(check int) "no increment lost" 20 (Dsm.unsafe_peek dsm ~node:(owner 0) x)

let test_fixed_manager_two_hops () =
  (* After several ownership hand-offs, a late reader reaches the owner in
     two request messages (home forward), unlike the dynamic chain. *)
  let dsm, _, extras = make ~nodes:4 () in
  let x = Dsm.malloc dsm ~protocol:extras.Builtin.li_hudak_fixed ~home:(Dsm.On_node 0) 8 in
  let net = Dsmpm2_pm2.Pm2.network (Dsm.pm2 dsm) in
  for w = 1 to 2 do
    ignore
      (Dsm.spawn dsm ~node:w (fun () ->
           Dsm.compute dsm (float_of_int w *. 10_000.);
           ignore (Dsm.read_int dsm x);
           Dsm.write_int dsm x w))
  done;
  let requests = ref 0 in
  ignore
    (Dsm.spawn dsm ~node:3 (fun () ->
         Dsm.compute dsm 50_000.;
         let before = Stats.count (Network.stats net) "msg.request" in
         ignore (Dsm.read_int dsm x);
         requests := Stats.count (Network.stats net) "msg.request" - before));
  Dsm.run dsm;
  Alcotest.(check int) "two hops via the manager" 2 !requests

(* --- hybrid_rw --- *)

let test_hybrid_readers_replicate_writers_migrate () =
  let dsm, _, extras = make () in
  let x = Dsm.malloc dsm ~protocol:extras.Builtin.hybrid_rw ~home:(Dsm.On_node 1) 8 in
  let landed = ref (-1) in
  ignore
    (Dsm.spawn dsm ~node:0 (fun () ->
         Dsm.write_int dsm x 5;
         landed := Dsm.self_node dsm));
  ignore
    (Dsm.spawn dsm ~node:2 (fun () ->
         Dsm.compute dsm 10_000.;
         Alcotest.(check int) "reader sees the write" 5 (Dsm.read_int dsm x);
         Alcotest.(check int) "reader stayed put" 2 (Dsm.self_node dsm)));
  Dsm.run dsm;
  Alcotest.(check int) "writer migrated to the page" 1 !landed;
  Alcotest.check (Alcotest.testable Access.pp ( = )) "reader got a replica"
    Access.Read_only
    (Dsm.unsafe_rights dsm ~node:2 ~addr:x)

let test_hybrid_is_sequentially_consistent () =
  let dsm, _, extras = make () in
  let x = Dsm.malloc dsm ~protocol:extras.Builtin.hybrid_rw ~home:(Dsm.On_node 0) 8 in
  let lock = Dsm.lock_create dsm () in
  let threads =
    List.init 4 (fun node ->
        Dsm.spawn dsm ~node (fun () ->
            for _ = 1 to 4 do
              Dsm.with_lock dsm lock (fun () ->
                  Dsm.write_int dsm x (Dsm.read_int dsm x + 1))
            done))
  in
  Dsm.run dsm;
  ignore threads;
  Alcotest.(check int) "16 increments, page never moved" 16
    (Dsm.unsafe_peek dsm ~node:0 x)

let test_hybrid_stale_replica_invalidated () =
  let dsm, _, extras = make ~nodes:3 () in
  let x = Dsm.malloc dsm ~protocol:extras.Builtin.hybrid_rw ~home:(Dsm.On_node 0) 8 in
  ignore
    (Dsm.spawn dsm ~node:1 (fun () ->
         ignore (Dsm.read_int dsm x);
         (* replica *)
         Dsm.compute dsm 20_000.;
         Alcotest.(check int) "fresh after writer's invalidation" 9
           (Dsm.read_int dsm x)));
  ignore
    (Dsm.spawn dsm ~node:2 (fun () ->
         Dsm.compute dsm 5_000.;
         Dsm.write_int dsm x 9));
  Dsm.run dsm

(* --- entry_ec --- *)

let test_entry_ec_bound_counter () =
  let dsm, _, extras = make () in
  let x = Dsm.malloc dsm ~protocol:extras.Builtin.entry_ec ~home:(Dsm.On_node 0) 8 in
  let lock = Dsm.lock_create dsm ~protocol:extras.Builtin.entry_ec () in
  Entry_ec.bind dsm ~lock ~addr:x ~size:8;
  Alcotest.(check int) "one bound page" 1 (List.length (Entry_ec.bound_pages dsm ~lock));
  let threads =
    List.init 4 (fun node ->
        Dsm.spawn dsm ~node (fun () ->
            for _ = 1 to 5 do
              Dsm.with_lock dsm lock (fun () ->
                  Dsm.write_int dsm x (Dsm.read_int dsm x + 1))
            done))
  in
  Dsm.run dsm;
  ignore threads;
  Alcotest.(check int) "20 increments via entry consistency" 20
    (Dsm.unsafe_peek dsm ~node:0 x)

let test_entry_ec_acquire_is_selective () =
  (* Acquiring a lock bound to region A must not invalidate a cached copy
     of region B (unlike the Java protocols' whole-cache flush). *)
  let dsm, _, extras = make ~nodes:2 () in
  let a = Dsm.malloc dsm ~protocol:extras.Builtin.entry_ec ~home:(Dsm.On_node 0) 8 in
  let b = Dsm.malloc dsm ~protocol:extras.Builtin.entry_ec ~home:(Dsm.On_node 0) 8 in
  let lock_a = Dsm.lock_create dsm ~protocol:extras.Builtin.entry_ec () in
  Entry_ec.bind dsm ~lock:lock_a ~addr:a ~size:8;
  let rights_of_b_after = ref Access.No_access in
  run_one dsm ~node:1 (fun () ->
      ignore (Dsm.read_int dsm b);
      (* cache B *)
      Dsm.with_lock dsm lock_a (fun () -> ignore (Dsm.read_int dsm a));
      rights_of_b_after := Dsm.unsafe_rights dsm ~node:1 ~addr:b);
  Alcotest.(check bool) "B's copy survived the acquire of lock(A)" true
    (!rights_of_b_after <> Access.No_access);
  (* A's copy was dropped by the (second) acquire-flush... it was fetched
     inside the section, so it is present now; what matters is B. *)
  ()

let test_entry_ec_release_pushes_only_bound () =
  let dsm, _, extras = make ~nodes:2 () in
  let a = Dsm.malloc dsm ~protocol:extras.Builtin.entry_ec ~home:(Dsm.On_node 0) 8 in
  let b = Dsm.malloc dsm ~protocol:extras.Builtin.entry_ec ~home:(Dsm.On_node 0) 8 in
  let lock_a = Dsm.lock_create dsm ~protocol:extras.Builtin.entry_ec () in
  Entry_ec.bind dsm ~lock:lock_a ~addr:a ~size:8;
  run_one dsm ~node:1 (fun () ->
      Dsm.lock_acquire dsm lock_a;
      Dsm.write_int dsm a 1;
      Dsm.write_int dsm b 2;
      (* unbound write *)
      Dsm.lock_release dsm lock_a;
      Alcotest.(check int) "bound page flushed home" 1 (Dsm.unsafe_peek dsm ~node:0 a);
      Alcotest.(check int) "unbound page NOT flushed" 0 (Dsm.unsafe_peek dsm ~node:0 b))

let test_entry_ec_unbound_lock_degrades_to_java () =
  let dsm, _, extras = make ~nodes:2 () in
  let a = Dsm.malloc dsm ~protocol:extras.Builtin.entry_ec ~home:(Dsm.On_node 0) 8 in
  let lock = Dsm.lock_create dsm ~protocol:extras.Builtin.entry_ec () in
  (* no bind: release must flush everything *)
  run_one dsm ~node:1 (fun () ->
      Dsm.lock_acquire dsm lock;
      Dsm.write_int dsm a 7;
      Dsm.lock_release dsm lock);
  Alcotest.(check int) "flushed like java" 7 (Dsm.unsafe_peek dsm ~node:0 a)

let test_entry_ec_mixed_lock_and_barrier () =
  (* Barrier hooks reach the protocol through a synthetic negative id; a
     conflation with real lock ids would either crash the hook (unknown lock
     lookup) or apply a lock's page scope to the barrier.  Mixing a bound
     lock and a barrier in one run pins the decoded behaviour: lock release
     flushes only the bound page, barrier release flushes everything. *)
  let dsm, _, extras = make ~nodes:2 () in
  let a = Dsm.malloc dsm ~protocol:extras.Builtin.entry_ec ~home:(Dsm.On_node 0) 8 in
  let b = Dsm.malloc dsm ~protocol:extras.Builtin.entry_ec ~home:(Dsm.On_node 0) 8 in
  let lock = Dsm.lock_create dsm ~protocol:extras.Builtin.entry_ec () in
  Entry_ec.bind dsm ~lock ~addr:a ~size:8;
  let barrier =
    Dsm.barrier_create dsm ~protocol:extras.Builtin.entry_ec ~parties:2 ()
  in
  ignore
    (Dsm.spawn dsm ~node:1 (fun () ->
         Dsm.lock_acquire dsm lock;
         Dsm.write_int dsm a 1;
         Dsm.write_int dsm b 2;
         Dsm.lock_release dsm lock;
         Alcotest.(check int) "lock release flushed only its binding" 0
           (Dsm.unsafe_peek dsm ~node:0 b);
         Dsm.barrier_wait dsm barrier;
         Alcotest.(check int) "barrier release flushed the rest" 2
           (Dsm.unsafe_peek dsm ~node:0 b)));
  ignore (Dsm.spawn dsm ~node:0 (fun () -> Dsm.barrier_wait dsm barrier));
  Dsm.run dsm;
  Alcotest.(check int) "bound page flushed at lock release" 1
    (Dsm.unsafe_peek dsm ~node:0 a)

(* --- write_update --- *)

let test_write_update_keeps_replicas_fresh () =
  let dsm, _, extras = make ~nodes:3 () in
  let x = Dsm.malloc dsm ~protocol:extras.Builtin.write_update ~home:(Dsm.On_node 0) 8 in
  ignore
    (Dsm.spawn dsm ~node:1 (fun () ->
         ignore (Dsm.read_int dsm x);
         (* replica *)
         Dsm.compute dsm 10_000.;
         (* no fault, yet the pushed update is visible *)
         let faults_before =
           Dsmpm2_sim.Stats.count (Dsm.stats dsm) Instrument.read_faults
         in
         Alcotest.(check int) "replica already updated" 42 (Dsm.read_int dsm x);
         Alcotest.(check int) "without a new fault" faults_before
           (Dsmpm2_sim.Stats.count (Dsm.stats dsm) Instrument.read_faults)));
  ignore
    (Dsm.spawn dsm ~node:0 (fun () ->
         Dsm.compute dsm 2_000.;
         Dsm.write_int dsm x 42));
  Dsm.run dsm

let test_write_update_locked_counter () =
  let dsm, _, extras = make () in
  let x = Dsm.malloc dsm ~protocol:extras.Builtin.write_update ~home:(Dsm.On_node 0) 8 in
  let lock = Dsm.lock_create dsm ~protocol:extras.Builtin.write_update () in
  let threads =
    List.init 4 (fun node ->
        Dsm.spawn dsm ~node (fun () ->
            for _ = 1 to 5 do
              Dsm.with_lock dsm lock (fun () ->
                  Dsm.write_int dsm x (Dsm.read_int dsm x + 1))
            done))
  in
  Dsm.run dsm;
  ignore threads;
  let rec owner n =
    if Dsm.unsafe_rights dsm ~node:n ~addr:x = Access.Read_write then n else owner (n + 1)
  in
  Alcotest.(check int) "no increment lost" 20 (Dsm.unsafe_peek dsm ~node:(owner 0) x)

(* --- LU --- *)

let test_lu_matches_sequential () =
  let size = 16 in
  let reference = Lu.checksum_sequential ~size ~seed:11 in
  List.iter
    (fun protocol ->
      let r = Lu.run { Lu.default with Lu.size; protocol; nodes = 4 } in
      Alcotest.(check int) (protocol ^ " checksum") reference r.Lu.checksum)
    [ "li_hudak"; "erc_sw"; "hbrc_mw" ]

let test_sort_all_protocols () =
  List.iter
    (fun protocol ->
      let r = Sort.run { Sort.default with Sort.protocol; elements_per_node = 32 } in
      Alcotest.(check bool) (protocol ^ " sorted") true r.Sort.sorted;
      Alcotest.(check bool) (protocol ^ " permutation") true r.Sort.correct)
    [ "li_hudak"; "li_hudak_fixed"; "erc_sw"; "hbrc_mw"; "java_ic"; "java_pf" ]

let test_lu_deterministic () =
  let a = Lu.run { Lu.default with Lu.size = 16 } in
  let b = Lu.run { Lu.default with Lu.size = 16 } in
  Alcotest.(check int) "same checksum" a.Lu.checksum b.Lu.checksum;
  Alcotest.(check (float 0.)) "same virtual time" a.Lu.time_ms b.Lu.time_ms

let () =
  Alcotest.run "extensions"
    [
      ( "monitoring",
        [
          Alcotest.test_case "records protocol events" `Quick
            test_monitor_records_protocol_events;
          Alcotest.test_case "disabled records nothing" `Quick
            test_monitor_disabled_records_nothing;
        ] );
      ("attr", [ Alcotest.test_case "malloc with attributes" `Quick test_malloc_attr ]);
      ( "switch_protocol",
        [
          Alcotest.test_case "moves data and id" `Quick
            test_switch_protocol_moves_data_and_id;
          Alcotest.test_case "rejects unflushed twin" `Quick
            test_switch_protocol_rejects_unflushed_twin;
          Alcotest.test_case "end to end" `Quick test_switch_protocol_end_to_end;
        ] );
      ( "li_hudak_fixed",
        [
          Alcotest.test_case "locked counter" `Quick test_fixed_manager_counter;
          Alcotest.test_case "two-hop requests" `Quick test_fixed_manager_two_hops;
        ] );
      ( "hybrid_rw",
        [
          Alcotest.test_case "readers replicate, writers migrate" `Quick
            test_hybrid_readers_replicate_writers_migrate;
          Alcotest.test_case "sequentially consistent" `Quick
            test_hybrid_is_sequentially_consistent;
          Alcotest.test_case "stale replica invalidated" `Quick
            test_hybrid_stale_replica_invalidated;
        ] );
      ( "entry_ec",
        [
          Alcotest.test_case "bound counter" `Quick test_entry_ec_bound_counter;
          Alcotest.test_case "selective acquire" `Quick test_entry_ec_acquire_is_selective;
          Alcotest.test_case "selective release" `Quick
            test_entry_ec_release_pushes_only_bound;
          Alcotest.test_case "unbound degrades to java" `Quick
            test_entry_ec_unbound_lock_degrades_to_java;
          Alcotest.test_case "mixed lock and barrier" `Quick
            test_entry_ec_mixed_lock_and_barrier;
        ] );
      ( "lu",
        [
          Alcotest.test_case "matches sequential" `Slow test_lu_matches_sequential;
          Alcotest.test_case "deterministic" `Slow test_lu_deterministic;
        ] );
      ( "sort",
        [ Alcotest.test_case "all protocols sort correctly" `Quick test_sort_all_protocols ] );
      ( "write_update",
        [
          Alcotest.test_case "replicas stay fresh without faults" `Quick
            test_write_update_keeps_replicas_fresh;
          Alcotest.test_case "locked counter" `Quick test_write_update_locked_counter;
        ] );
    ]

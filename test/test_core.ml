(* Tests of the generic DSM core: page table, allocation, access detection,
   synchronization objects, protocol registry. *)

open Dsmpm2_sim
open Dsmpm2_net
open Dsmpm2_mem
open Dsmpm2_core
open Dsmpm2_protocols

let access = Alcotest.testable Access.pp ( = )

let make ?(nodes = 4) ?(driver = Driver.bip_myrinet) () =
  let dsm = Dsm.create ~nodes ~driver () in
  let ids = Builtin.register_all dsm in
  (dsm, ids)

let run_one dsm ~node f =
  ignore (Dsm.spawn dsm ~node f);
  Dsm.run dsm

(* --- page table --- *)

let test_page_table_declare_find () =
  let t = Page_table.create ~node:1 in
  let e = Page_table.declare t ~page:7 ~home:0 ~owner:0 ~protocol:3 ~rights:Access.No_access in
  Alcotest.(check int) "page" 7 e.Page_table.page;
  Alcotest.(check bool) "mem" true (Page_table.mem t 7);
  Alcotest.(check bool) "same entry" true (Page_table.find t 7 == e);
  Alcotest.check_raises "unmapped page" (Page_table.Not_mapped 8) (fun () ->
      ignore (Page_table.find t 8));
  Alcotest.check_raises "double declare"
    (Invalid_argument "Page_table.declare: page 7 already mapped") (fun () ->
      ignore (Page_table.declare t ~page:7 ~home:0 ~owner:0 ~protocol:0 ~rights:Access.No_access))

let test_page_table_copyset () =
  let t = Page_table.create ~node:0 in
  let e = Page_table.declare t ~page:1 ~home:0 ~owner:0 ~protocol:0 ~rights:Access.Read_write in
  Page_table.copyset_add e 3;
  Page_table.copyset_add e 1;
  Page_table.copyset_add e 3;
  Alcotest.(check (list int)) "sorted unique" [ 1; 3 ] e.Page_table.copyset;
  Page_table.copyset_remove e 1;
  Alcotest.(check (list int)) "removed" [ 3 ] e.Page_table.copyset

let test_page_table_entries_sorted () =
  let t = Page_table.create ~node:0 in
  List.iter
    (fun p -> ignore (Page_table.declare t ~page:p ~home:0 ~owner:0 ~protocol:0 ~rights:Access.No_access))
    [ 5; 1; 3 ];
  Alcotest.(check (list int)) "sorted" [ 1; 3; 5 ]
    (List.map (fun e -> e.Page_table.page) (Page_table.entries t))

(* --- allocation --- *)

let test_malloc_round_robin_homes () =
  let dsm, _ = make () in
  let addr = Dsm.malloc dsm ~home:Dsm.Round_robin (4 * 4096) in
  let pages = Dsm.region_pages dsm ~addr ~size:(4 * 4096) in
  Alcotest.(check int) "four pages" 4 (List.length pages);
  List.iteri
    (fun i page ->
      let e = Runtime.entry dsm ~node:0 ~page in
      Alcotest.(check int) "home round robin" (i mod 4) e.Page_table.home)
    pages

let test_malloc_on_node_rights () =
  let dsm, _ = make () in
  let addr = Dsm.malloc dsm ~home:(Dsm.On_node 2) 8 in
  Alcotest.check access "home gets RW" Access.Read_write (Dsm.unsafe_rights dsm ~node:2 ~addr);
  Alcotest.check access "others get nothing" Access.No_access (Dsm.unsafe_rights dsm ~node:0 ~addr)

let test_malloc_block_homes_monotone () =
  let dsm, _ = make () in
  let size = 10 * 4096 in
  let addr = Dsm.malloc dsm ~home:Dsm.Block size in
  let homes =
    List.map
      (fun page -> (Runtime.entry dsm ~node:0 ~page).Page_table.home)
      (Dsm.region_pages dsm ~addr ~size)
  in
  Alcotest.(check bool) "monotone" true (List.sort compare homes = homes);
  Alcotest.(check int) "starts at node 0" 0 (List.hd homes);
  Alcotest.(check int) "ends at last node" 3 (List.nth homes 9)

let test_malloc_regions_never_share_pages () =
  let dsm, _ = make () in
  let a = Dsm.malloc dsm 100 in
  let b = Dsm.malloc dsm 100 in
  let pa = Dsm.region_pages dsm ~addr:a ~size:100 in
  let pb = Dsm.region_pages dsm ~addr:b ~size:100 in
  List.iter (fun p -> Alcotest.(check bool) "disjoint" false (List.mem p pb)) pa

let test_malloc_rejects_bad_input () =
  let dsm, _ = make () in
  Alcotest.check_raises "size positive" (Invalid_argument "Dsm.malloc: size must be positive")
    (fun () -> ignore (Dsm.malloc dsm 0));
  Alcotest.check_raises "home in range"
    (Invalid_argument "Dsm.malloc: home node out of range") (fun () ->
      ignore (Dsm.malloc dsm ~home:(Dsm.On_node 9) 8))

let test_unmapped_access_fails () =
  let dsm, _ = make () in
  let failed = ref false in
  run_one dsm ~node:0 (fun () ->
      try ignore (Dsm.read_int dsm 123456888) with
      | Page_table.Not_mapped _ -> failed := true);
  Alcotest.(check bool) "segfault equivalent" true !failed

(* --- access detection --- *)

let test_local_access_costs_nothing () =
  let dsm, _ = make () in
  let x = Dsm.malloc dsm ~home:(Dsm.On_node 0) 8 in
  let took = ref 1. in
  run_one dsm ~node:0 (fun () ->
      let t0 = Dsm.now_us dsm in
      Dsm.write_int dsm x 5;
      ignore (Dsm.read_int dsm x);
      took := Dsm.now_us dsm -. t0);
  Alcotest.(check (float 0.001)) "free" 0. !took;
  Alcotest.(check int) "no faults" 0 (Stats.count (Dsm.stats dsm) Instrument.read_faults)

let test_remote_read_costs_paper_total () =
  let dsm, _ = make ~nodes:2 () in
  let x = Dsm.malloc dsm ~home:(Dsm.On_node 1) 8 in
  let took = ref 0. in
  run_one dsm ~node:0 (fun () ->
      let t0 = Dsm.now_us dsm in
      ignore (Dsm.read_int dsm x);
      took := Dsm.now_us dsm -. t0);
  (* Table 3, BIP/Myrinet column: 198 us *)
  Alcotest.(check (float 0.5)) "198us" 198. !took

let test_fault_counters () =
  let dsm, _ = make ~nodes:2 () in
  let x = Dsm.malloc dsm ~home:(Dsm.On_node 1) 8 in
  run_one dsm ~node:0 (fun () ->
      ignore (Dsm.read_int dsm x);
      Dsm.write_int dsm x 1;
      ignore (Dsm.read_int dsm x));
  let stats = Dsm.stats dsm in
  Alcotest.(check int) "one read fault" 1 (Stats.count stats Instrument.read_faults);
  Alcotest.(check int) "one write fault" 1 (Stats.count stats Instrument.write_faults)

let test_byte_accessors () =
  let dsm, _ = make ~nodes:2 () in
  let x = Dsm.malloc dsm ~home:(Dsm.On_node 0) 16 in
  run_one dsm ~node:0 (fun () ->
      Dsm.write_byte dsm (x + 3) 200;
      Alcotest.(check int) "byte round trip" 200 (Dsm.read_byte dsm (x + 3)))

(* --- locks --- *)

let test_lock_mutual_exclusion () =
  let dsm, _ = make () in
  let lock = Dsm.lock_create dsm () in
  let inside = ref 0 and max_inside = ref 0 in
  let threads =
    List.init 4 (fun node ->
        Dsm.spawn dsm ~node (fun () ->
            for _ = 1 to 3 do
              Dsm.with_lock dsm lock (fun () ->
                  incr inside;
                  max_inside := max !max_inside !inside;
                  Dsm.compute dsm 50.;
                  decr inside)
            done))
  in
  Dsm.run dsm;
  ignore threads;
  Alcotest.(check int) "mutual exclusion" 1 !max_inside;
  Alcotest.(check int) "12 grants" 12 (Dsm_sync.lock_acquisitions dsm lock)

let test_lock_release_by_other_thread_fails () =
  (* The manager rejects the bad release over the RPC reply: the offending
     thread gets Lock_error in its own fiber, the holder is undisturbed, and
     the rest of the cluster keeps running. *)
  let dsm, _ = make ~nodes:3 () in
  let lock = Dsm.lock_create dsm () in
  let caught = ref None in
  let holder_released = ref false and bystander_done = ref false in
  ignore
    (Dsm.spawn dsm ~node:0 (fun () ->
         Dsm.lock_acquire dsm lock;
         Dsm.compute dsm 5_000.;
         Dsm.lock_release dsm lock;
         holder_released := true));
  ignore
    (Dsm.spawn dsm ~node:1 (fun () ->
         Dsm.compute dsm 1_000.;
         try Dsm.lock_release dsm lock
         with Dsm_sync.Lock_error msg -> caught := Some msg));
  ignore
    (Dsm.spawn dsm ~node:2 (fun () ->
         Dsm.compute dsm 2_000.;
         (* Queues behind the holder and still gets the lock afterwards. *)
         Dsm.with_lock dsm lock (fun () -> ());
         bystander_done := true));
  Dsm.run dsm;
  (match !caught with
  | Some msg ->
      Alcotest.(check bool) "names the real holder" true
        (String.length msg > 0
        && String.sub msg 0 8 = "DSM lock")
  | None -> Alcotest.fail "bad release was not rejected");
  Alcotest.(check bool) "holder released normally" true !holder_released;
  Alcotest.(check bool) "other nodes keep running" true !bystander_done;
  Alcotest.(check int) "both legitimate grants happened" 2
    (Dsm_sync.lock_acquisitions dsm lock)

let test_lock_release_while_free_fails () =
  let dsm, _ = make ~nodes:2 () in
  let lock = Dsm.lock_create dsm () in
  let caught = ref false and other_ran = ref false in
  ignore
    (Dsm.spawn dsm ~node:0 (fun () ->
         try Dsm.lock_release dsm lock
         with Dsm_sync.Lock_error _ -> caught := true));
  ignore
    (Dsm.spawn dsm ~node:1 (fun () ->
         Dsm.compute dsm 2_000.;
         Dsm.with_lock dsm lock (fun () -> ());
         other_ran := true));
  Dsm.run dsm;
  Alcotest.(check bool) "release-while-free rejected" true !caught;
  Alcotest.(check bool) "simulation survives" true !other_ran

let test_lock_survives_migration () =
  (* A thread acquires on one node, migrates, and releases from another. *)
  let dsm, ids = make () in
  let x = Dsm.malloc dsm ~protocol:ids.Builtin.migrate_thread ~home:(Dsm.On_node 3) 8 in
  let lock = Dsm.lock_create dsm () in
  run_one dsm ~node:0 (fun () ->
      Dsm.lock_acquire dsm lock;
      Dsm.write_int dsm x 1;
      (* now on node 3 *)
      Alcotest.(check int) "migrated" 3 (Dsm.self_node dsm);
      Dsm.lock_release dsm lock)

(* --- barriers --- *)

let test_barrier_gathers_all () =
  let dsm, _ = make () in
  let barrier = Dsm.barrier_create dsm ~parties:4 () in
  let after = Array.make 4 0. in
  let threads =
    List.init 4 (fun node ->
        Dsm.spawn dsm ~node (fun () ->
            Dsm.compute dsm (float_of_int (100 * (node + 1)));
            Dsm.barrier_wait dsm barrier;
            after.(node) <- Dsm.now_us dsm))
  in
  Dsm.run dsm;
  ignore threads;
  (* Nobody passes before the slowest (400us) arrives. *)
  Array.iter (fun t -> Alcotest.(check bool) "gated by slowest" true (t >= 400.)) after

let test_barrier_reusable_across_generations () =
  let dsm, _ = make ~nodes:2 () in
  let barrier = Dsm.barrier_create dsm ~parties:2 () in
  let rounds = Array.make 2 0 in
  let threads =
    List.init 2 (fun node ->
        Dsm.spawn dsm ~node (fun () ->
            for _ = 1 to 5 do
              Dsm.barrier_wait dsm barrier;
              rounds.(node) <- rounds.(node) + 1
            done))
  in
  Dsm.run dsm;
  ignore threads;
  Alcotest.(check (list int)) "five rounds each" [ 5; 5 ] (Array.to_list rounds)

let test_barrier_rejects_zero_parties () =
  let dsm, _ = make () in
  Alcotest.check_raises "parties > 0"
    (Invalid_argument "Dsm_sync.barrier_create: parties must be positive") (fun () ->
      ignore (Dsm.barrier_create dsm ~parties:0 ()))

(* --- protocol registry --- *)

let test_registry_lookup () =
  let dsm, ids = make () in
  Alcotest.(check (option int)) "by name" (Some ids.Builtin.hbrc_mw)
    (Dsm.protocol_by_name dsm "hbrc_mw");
  Alcotest.(check (option int)) "unknown" None (Dsm.protocol_by_name dsm "nope");
  Alcotest.(check string) "name" "java_pf" (Dsm.protocol_name dsm ids.Builtin.java_pf);
  Alcotest.(check int) "li_hudak is the default" ids.Builtin.li_hudak
    (Dsm.default_protocol dsm)

let test_registry_user_protocol () =
  let dsm, ids = make () in
  let clone = { Li_hudak.protocol with Protocol.name = "my_proto" } in
  let id = Dsm.create_protocol dsm clone in
  Alcotest.(check bool) "new id" true (id <> ids.Builtin.li_hudak);
  Dsm.set_default_protocol dsm id;
  Alcotest.(check int) "default switched" id (Dsm.default_protocol dsm);
  (* the user protocol actually drives memory *)
  let x = Dsm.malloc dsm ~home:(Dsm.On_node 1) 8 in
  run_one dsm ~node:0 (fun () ->
      Dsm.write_int dsm x 5;
      Alcotest.(check int) "works" 5 (Dsm.read_int dsm x))

let test_set_default_validates () =
  let dsm, _ = make () in
  Alcotest.check_raises "unknown id"
    (Invalid_argument "Protocol.find: unknown protocol id 99") (fun () ->
      Dsm.set_default_protocol dsm 99)

(* --- different protocols per lock --- *)

let test_lock_protocol_hooks_fire () =
  let dsm, _ = make ~nodes:2 () in
  let acquires = ref 0 and releases = ref 0 in
  let spy =
    {
      Li_hudak.protocol with
      Protocol.name = "spy";
      lock_acquire = (fun _ ~node:_ ~lock:_ -> incr acquires);
      lock_release = (fun _ ~node:_ ~lock:_ -> incr releases);
    }
  in
  let id = Dsm.create_protocol dsm spy in
  let lock = Dsm.lock_create dsm ~protocol:id () in
  let barrier = Dsm.barrier_create dsm ~protocol:id ~parties:1 () in
  run_one dsm ~node:0 (fun () ->
      Dsm.with_lock dsm lock (fun () -> ());
      Dsm.barrier_wait dsm barrier);
  Alcotest.(check int) "acquire hooks (lock + barrier)" 2 !acquires;
  Alcotest.(check int) "release hooks (lock + barrier)" 2 !releases

(* --- cost model and diagnostics --- *)

let test_custom_costs () =
  (* Doubling the fault cost must show up in the measured total. *)
  let costs = { Runtime.default_costs with Runtime.page_fault_us = 22. } in
  let dsm = Dsm.create ~costs ~nodes:2 ~driver:Driver.bip_myrinet () in
  ignore (Builtin.register_all dsm);
  let x = Dsm.malloc dsm ~home:(Dsm.On_node 1) 8 in
  let took = ref 0. in
  run_one dsm ~node:0 (fun () ->
      let t0 = Dsm.now_us dsm in
      ignore (Dsm.read_int dsm x);
      took := Dsm.now_us dsm -. t0);
  Alcotest.(check (float 0.5)) "11us extra fault cost" 209. !took

let test_fault_storm_guard () =
  let dsm, _ = make ~nodes:2 () in
  (* A protocol whose fault handler never grants anything must be caught by
     the retry guard rather than looping forever. *)
  let broken =
    {
      Li_hudak.protocol with
      Protocol.name = "broken";
      read_fault = (fun _rt ~node:_ ~page:_ -> ());
    }
  in
  let id = Dsm.create_protocol dsm broken in
  let x = Dsm.malloc dsm ~protocol:id ~home:(Dsm.On_node 1) 8 in
  (dsm : Dsm.t).Runtime.fault_loop_limit <- 5;
  let stormed = ref false in
  run_one dsm ~node:0 (fun () ->
      try ignore (Dsm.read_int dsm x)
      with Dsm.Fault_storm { attempts; _ } ->
        stormed := true;
        Alcotest.(check int) "caught at the limit" 6 attempts);
  Alcotest.(check bool) "storm detected" true !stormed

let test_ensure_access_public_path () =
  (* The compiler-target entry point: after ensure_access, the access is
     local and free. *)
  let dsm, _ = make ~nodes:2 () in
  let x = Dsm.malloc dsm ~home:(Dsm.On_node 1) 8 in
  run_one dsm ~node:0 (fun () ->
      Dsm.ensure_access dsm ~addr:x ~mode:Access.Read;
      let t0 = Dsm.now_us dsm in
      ignore (Dsm.read_int dsm x);
      Alcotest.(check (float 0.001)) "read after ensure is free" 0.
        (Dsm.now_us dsm -. t0))

let test_lock_manager_placement () =
  let dsm, _ = make () in
  let l0 = Dsm.lock_create dsm () in
  let l1 = Dsm.lock_create dsm () in
  Alcotest.(check int) "round robin managers" 0 (Runtime.lock_state dsm l0).Runtime.lock_manager;
  Alcotest.(check int) "second lock on node 1" 1 (Runtime.lock_state dsm l1).Runtime.lock_manager;
  let l9 = Dsm.lock_create dsm ~manager:3 () in
  Alcotest.(check int) "explicit manager" 3 (Runtime.lock_state dsm l9).Runtime.lock_manager

let test_monitor_summary_counts () =
  let dsm, _ = make ~nodes:2 () in
  Monitor.enable dsm true;
  let x = Dsm.malloc dsm ~home:(Dsm.On_node 1) 8 in
  run_one dsm ~node:0 (fun () -> ignore (Dsm.read_int dsm x));
  let faults =
    List.find (fun l -> l.Monitor.category = "fault") (Monitor.summary dsm)
  in
  Alcotest.(check int) "one fault event" 1 faults.Monitor.events

let () =
  Alcotest.run "core"
    [
      ( "page_table",
        [
          Alcotest.test_case "declare/find" `Quick test_page_table_declare_find;
          Alcotest.test_case "copyset" `Quick test_page_table_copyset;
          Alcotest.test_case "entries sorted" `Quick test_page_table_entries_sorted;
        ] );
      ( "malloc",
        [
          Alcotest.test_case "round robin homes" `Quick test_malloc_round_robin_homes;
          Alcotest.test_case "on-node rights" `Quick test_malloc_on_node_rights;
          Alcotest.test_case "block homes" `Quick test_malloc_block_homes_monotone;
          Alcotest.test_case "regions never share pages" `Quick
            test_malloc_regions_never_share_pages;
          Alcotest.test_case "input validation" `Quick test_malloc_rejects_bad_input;
          Alcotest.test_case "unmapped access" `Quick test_unmapped_access_fails;
        ] );
      ( "access",
        [
          Alcotest.test_case "local access free" `Quick test_local_access_costs_nothing;
          Alcotest.test_case "remote read = Table 3 total" `Quick
            test_remote_read_costs_paper_total;
          Alcotest.test_case "fault counters" `Quick test_fault_counters;
          Alcotest.test_case "byte accessors" `Quick test_byte_accessors;
        ] );
      ( "locks",
        [
          Alcotest.test_case "mutual exclusion" `Quick test_lock_mutual_exclusion;
          Alcotest.test_case "foreign release detected" `Quick
            test_lock_release_by_other_thread_fails;
          Alcotest.test_case "release while free detected" `Quick
            test_lock_release_while_free_fails;
          Alcotest.test_case "survives migration" `Quick test_lock_survives_migration;
        ] );
      ( "barriers",
        [
          Alcotest.test_case "gathers all parties" `Quick test_barrier_gathers_all;
          Alcotest.test_case "reusable" `Quick test_barrier_reusable_across_generations;
          Alcotest.test_case "zero parties rejected" `Quick test_barrier_rejects_zero_parties;
        ] );
      ( "registry",
        [
          Alcotest.test_case "lookup" `Quick test_registry_lookup;
          Alcotest.test_case "user protocol" `Quick test_registry_user_protocol;
          Alcotest.test_case "set default validates" `Quick test_set_default_validates;
          Alcotest.test_case "lock hooks fire" `Quick test_lock_protocol_hooks_fire;
        ] );
      ( "diagnostics",
        [
          Alcotest.test_case "custom cost model" `Quick test_custom_costs;
          Alcotest.test_case "fault-storm guard" `Quick test_fault_storm_guard;
          Alcotest.test_case "public ensure_access" `Quick test_ensure_access_public_path;
          Alcotest.test_case "lock manager placement" `Quick test_lock_manager_placement;
          Alcotest.test_case "monitor summary counts" `Quick test_monitor_summary_counts;
        ] );
    ]
